(* Tests for the telemetry subsystem (lib/obs): histogram edge cases,
   registry merge algebra, ring wraparound, span exception safety, sink
   stride gating, JSONL export shape — and the load-bearing guarantee that
   instrumentation is inert: scheduler output is bit-identical with an
   active sink and with the no-op sink. *)

open Agrid_obs

(* ---- hist ---- *)

let test_hist_buckets () =
  let h = Hist.make ~bounds:[| 1.; 2.; 4. |] in
  List.iter (Hist.observe h) [ 0.5; 1.5; 3.0; 3.9 ];
  Alcotest.(check (array int)) "bucket counts" [| 1; 1; 2; 0 |] (Hist.counts h);
  Alcotest.(check int) "count" 4 (Hist.count h);
  Testlib.close "sum" 8.9 (Hist.sum h)

let test_hist_underflow_overflow () =
  let h = Hist.make ~bounds:[| 1.; 2. |] in
  Hist.observe h (-5.);
  Hist.observe h 2.;
  Hist.observe h 1e9;
  (* below the first bound -> bucket 0; at/above the last bound -> the
     overflow bucket *)
  Alcotest.(check (array int)) "under/overflow" [| 1; 0; 2 |] (Hist.counts h);
  Alcotest.(check int) "count includes extremes" 3 (Hist.count h)

let test_hist_nan_quarantined () =
  let h = Hist.make ~bounds:[| 1.; 2. |] in
  Hist.observe h Float.nan;
  Hist.observe h 1.5;
  Alcotest.(check int) "nan not counted" 1 (Hist.count h);
  Alcotest.(check int) "nan quarantined" 1 (Hist.nan_count h);
  Testlib.close "sum untouched by nan" 1.5 (Hist.sum h)

let test_hist_quantile_empty_and_order () =
  let h = Hist.make ~bounds:[| 1.; 2.; 4.; 8. |] in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Hist.quantile h 0.5));
  for i = 1 to 100 do
    Hist.observe h (float_of_int i /. 100. *. 7.)
  done;
  let p10 = Hist.quantile h 0.1 and p50 = Hist.quantile h 0.5 and p95 = Hist.quantile h 0.95 in
  Alcotest.(check bool) "quantiles ordered" true (p10 <= p50 && p50 <= p95);
  Alcotest.(check bool) "p95 within range" true (p95 <= 8.)

let test_hist_negative_bound_quantile () =
  (* all mass in the underflow bucket of a negative-bound histogram: the
     quantile must interpolate inside a synthesized bucket below the
     first bound, not collapse onto the old zero-width [min 0 b0] edge *)
  let h = Hist.make ~bounds:[| -2.; -1.; 1. |] in
  List.iter (Hist.observe h) [ -5.; -4.; -3. ];
  let p25 = Hist.quantile h 0.25 and p75 = Hist.quantile h 0.75 in
  Alcotest.(check bool) "p25 finite" true (Float.is_finite p25);
  Alcotest.(check bool) "p75 at most the first bound" true (p75 <= -2.);
  Alcotest.(check bool) "p25 above the synthesized edge" true (p25 >= -3.);
  Alcotest.(check bool) "interpolation is not degenerate" true (p25 < p75)

let test_hist_quantile_negative_bounds_property () =
  (* random bounds (often spanning zero) and observations: quantiles are
     never NaN on a populated histogram and are monotone in q *)
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 5) (float_range (-100.) 100.))
        (list_size (int_range 1 60) (float_range (-200.) 200.)))
  in
  let prop (raw_bounds, obs) =
    match Array.of_list (List.sort_uniq compare raw_bounds) with
    | bounds when Array.length bounds >= 2 ->
        let h = Hist.make ~bounds in
        List.iter (Hist.observe h) obs;
        let vs = List.map (Hist.quantile h) [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ] in
        List.iter
          (fun v -> if Float.is_nan v then failwith "NaN quantile on populated hist")
          vs;
        let rec mono = function
          | a :: b :: tl -> a <= b && mono (b :: tl)
          | _ -> true
        in
        mono vs
    | _ -> true
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:300 ~name:"quantile total and monotone over signed bounds"
       gen prop)

let test_hist_max_value () =
  let h = Hist.make ~bounds:[| 1.; 2. |] in
  Alcotest.(check bool) "empty max is nan" true (Float.is_nan (Hist.max_value h));
  List.iter (Hist.observe h) [ 0.5; 7.5; 3.0 ];
  Testlib.close "max tracked" 7.5 (Hist.max_value h);
  Hist.observe h Float.nan;
  Testlib.close "nan does not disturb max" 7.5 (Hist.max_value h);
  let other = Hist.make ~bounds:[| 1.; 2. |] in
  Hist.observe other 9.25;
  Hist.merge_into ~into:h other;
  Testlib.close "merge takes the larger max" 9.25 (Hist.max_value h)

let test_hist_invalid_bounds () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Hist.make: bounds must be strictly increasing")
    (fun () -> ignore (Hist.make ~bounds:[| 2.; 1. |]))

let test_hist_merge_bounds_mismatch () =
  let a = Hist.make ~bounds:[| 1.; 2. |] in
  let b = Hist.make ~bounds:[| 1.; 3. |] in
  Alcotest.(check bool) "merge with other bounds raises" true
    (try
       Hist.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

(* ---- registry merge algebra ---- *)

let metric_repr (name, m) =
  match m with
  | Registry.Counter c -> (name, "c", float_of_int c, [])
  | Registry.Gauge g -> (name, "g", g, [])
  | Registry.Histogram h ->
      (name, "h", Hist.sum h, Array.to_list (Hist.counts h))

let registry_repr r = List.map metric_repr (Registry.to_alist r)
let registry_repr_of_sink s = List.map metric_repr (Sink.metrics s)

let sample_registry ~counter ~gauge ~obs_list () =
  let r = Registry.create () in
  Registry.add r "n" counter;
  Registry.set_gauge r "g" gauge;
  List.iter (Registry.observe r "h" ~bounds:[| 1.; 10. |]) obs_list;
  r

let test_registry_merge_commutative () =
  let spec1 = (3, 5., [ 0.5; 2. ]) and spec2 = (4, 9., [ 20. ]) in
  let build (c, g, o) = sample_registry ~counter:c ~gauge:g ~obs_list:o () in
  let ab = build spec1 in
  Registry.merge_into ~into:ab (build spec2);
  let ba = build spec2 in
  Registry.merge_into ~into:ba (build spec1);
  Alcotest.(check bool) "a+b = b+a" true (registry_repr ab = registry_repr ba);
  (match Registry.find ab "n" with
  | Some (Registry.Counter c) -> Alcotest.(check int) "counters add" 7 c
  | _ -> Alcotest.fail "counter missing");
  match Registry.find ab "g" with
  | Some (Registry.Gauge g) -> Testlib.close "gauges max-merge" 9. g
  | _ -> Alcotest.fail "gauge missing"

let test_registry_merge_associative () =
  let specs = [ (1, 2., [ 0.1 ]); (10, 1., [ 5.; 50. ]); (100, 7., []) ] in
  let build (c, g, o) = sample_registry ~counter:c ~gauge:g ~obs_list:o () in
  let left =
    match List.map build specs with
    | [ a; b; c ] ->
        Registry.merge_into ~into:a b;
        Registry.merge_into ~into:a c;
        a
    | _ -> assert false
  in
  let right =
    match List.map build specs with
    | [ a; b; c ] ->
        Registry.merge_into ~into:b c;
        Registry.merge_into ~into:a b;
        a
    | _ -> assert false
  in
  Alcotest.(check bool) "(a+b)+c = a+(b+c)" true (registry_repr left = registry_repr right)

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  Registry.incr r "x";
  Alcotest.(check bool) "gauge write to counter raises" true
    (try
       Registry.set_gauge r "x" 1.;
       false
     with Invalid_argument _ -> true);
  let other = Registry.create () in
  Registry.set_gauge other "x" 1.;
  Alcotest.(check bool) "merge kind clash raises" true
    (try
       Registry.merge_into ~into:r other;
       false
     with Invalid_argument _ -> true)

(* ---- snapshot ring ---- *)

let test_ring_wraparound () =
  let r = Snapshot.Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Snapshot.Ring.push r i
  done;
  Alcotest.(check int) "length capped" 4 (Snapshot.Ring.length r);
  Alcotest.(check int) "pushed counts all" 10 (Snapshot.Ring.pushed r);
  Alcotest.(check int) "dropped" 6 (Snapshot.Ring.dropped r);
  Alcotest.(check (list int)) "oldest first, newest kept" [ 6; 7; 8; 9 ]
    (Snapshot.Ring.to_list r)

let test_ring_partial_fill () =
  let r = Snapshot.Ring.create ~capacity:8 in
  Snapshot.Ring.push r "a";
  Snapshot.Ring.push r "b";
  Alcotest.(check (list string)) "insertion order" [ "a"; "b" ] (Snapshot.Ring.to_list r);
  Alcotest.(check int) "nothing dropped" 0 (Snapshot.Ring.dropped r)

(* Stride-gated sampling into a ring whose capacity does not divide the
   sample count: the ring must keep the newest samples and report the
   exact drop count even when the wrap point lands mid-stride. *)
let test_ring_wraparound_nondivisible_stride () =
  let s = Sink.create ~stride:3 ~capacity:4 () in
  for i = 0 to 19 do
    ignore
      (Sink.tick_snapshot s ~make:(fun () ->
           {
             Snapshot.clock = i;
             mapped = 0;
             t100 = 0;
             pools_built = 0;
             pool_candidates = 0;
             energy = [||];
           }))
  done;
  (* sampled ticks: 0 3 6 9 12 15 18 — seven samples into four slots *)
  Alcotest.(check int) "ring holds capacity" 4 (Sink.n_snapshots s);
  Alcotest.(check int) "three oldest dropped" 3 (Sink.snapshots_dropped s);
  Alcotest.(check (list int)) "newest samples kept, oldest first" [ 9; 12; 15; 18 ]
    (List.map (fun (x : Snapshot.t) -> x.Snapshot.clock) (Sink.snapshots s))

(* ---- span ---- *)

let test_span_records_on_raise () =
  let t = Span.create () in
  (try Span.time t "boom" (fun () -> failwith "boom") with Failure _ -> ());
  ignore (Span.time t "boom" (fun () -> 42));
  match Span.stats t with
  | [ s ] ->
      Alcotest.(check string) "name" "boom" s.Span.name;
      Alcotest.(check int) "raise still recorded" 2 s.Span.count;
      Alcotest.(check bool) "durations nonnegative" true (s.Span.total_s >= 0.)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

(* ---- sink ---- *)

let test_sink_noop_inert () =
  let s = Sink.noop in
  Alcotest.(check bool) "not enabled" false (Sink.enabled s);
  Sink.incr s "x";
  Sink.observe s "h" ~bounds:[| 1. |] 0.5;
  Alcotest.(check int) "span passes value through" 9 (Sink.span s "sp" (fun () -> 9));
  Alcotest.(check bool) "tick never samples" false
    (Sink.tick_snapshot s ~make:(fun () -> Alcotest.fail "thunk must not run"));
  Alcotest.(check int) "no metrics" 0 (Sink.n_metrics s);
  Alcotest.(check int) "no spans" 0 (Sink.n_spans s)

let snap clock =
  {
    Snapshot.clock;
    mapped = 0;
    t100 = 0;
    pools_built = 0;
    pool_candidates = 0;
    energy = [||];
  }

let test_sink_stride () =
  let s = Sink.create ~stride:3 ~capacity:16 () in
  let sampled = ref 0 in
  for i = 0 to 7 do
    if Sink.tick_snapshot s ~make:(fun () -> snap i) then incr sampled
  done;
  (* ticks 0, 3, 6 *)
  Alcotest.(check int) "sampled every third tick" 3 !sampled;
  Alcotest.(check (list int)) "sampled clocks" [ 0; 3; 6 ]
    (List.map (fun (x : Snapshot.t) -> x.Snapshot.clock) (Sink.snapshots s))

let test_sink_merge () =
  let a = Sink.create () and b = Sink.create () in
  Sink.add a "n" 2;
  Sink.add b "n" 5;
  Sink.record_span b "sp" 0.25;
  Sink.push_snapshot b (snap 7);
  Sink.merge_into ~into:a b;
  (match List.assoc "n" (Sink.metrics a) with
  | Registry.Counter c -> Alcotest.(check int) "counters add" 7 c
  | _ -> Alcotest.fail "expected counter");
  Alcotest.(check int) "spans merged" 1 (Sink.n_spans a);
  Alcotest.(check int) "snapshots merged" 1 (Sink.n_snapshots a);
  Alcotest.(check bool) "active into noop raises" true
    (try
       Sink.merge_into ~into:Sink.noop b;
       false
     with Invalid_argument _ -> true)

(* ---- instrumentation is inert: bit-identical scheduler output ---- *)

open Agrid_core

let schedule_fingerprint sched =
  ( Array.to_list (Agrid_sched.Schedule.placements sched),
    Array.to_list (Agrid_sched.Schedule.transfers sched),
    Agrid_sched.Schedule.tec sched,
    Agrid_sched.Schedule.aet sched,
    Agrid_sched.Schedule.n_primary sched )

let params_with obs =
  let weights = Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  { (Slrh.default_params weights) with Slrh.obs }

let test_slrh_bit_identical_with_obs () =
  let workload = Testlib.small_workload () in
  let plain = Slrh.run (params_with Sink.noop) workload in
  let sink = Sink.create () in
  let obs = Slrh.run (params_with sink) workload in
  Alcotest.(check bool) "identical schedules" true
    (schedule_fingerprint plain.Slrh.schedule = schedule_fingerprint obs.Slrh.schedule);
  Alcotest.(check bool) "identical stats" true (plain.Slrh.stats = obs.Slrh.stats);
  Alcotest.(check int) "identical final clock" plain.Slrh.final_clock obs.Slrh.final_clock;
  (* and the sink actually saw the run *)
  Alcotest.(check bool) "spans recorded" true (Sink.n_spans sink >= 3);
  Alcotest.(check bool) "metrics recorded" true (Sink.n_metrics sink >= 5);
  Alcotest.(check bool) "snapshots recorded" true (Sink.n_snapshots sink >= 1)

let test_churn_bit_identical_with_obs () =
  let workload = Testlib.small_workload () in
  let tau = Agrid_workload.Workload.tau workload in
  let events =
    [
      { Agrid_churn.Event.at = tau / 8; kind = Agrid_churn.Event.Leave 1 };
      { Agrid_churn.Event.at = tau / 2; kind = Agrid_churn.Event.Rejoin 1 };
    ]
  in
  let plain = Dynamic.run_churn (params_with Sink.noop) workload events in
  let sink = Sink.create () in
  let obs = Dynamic.run_churn (params_with sink) workload events in
  Alcotest.(check bool) "identical schedules" true
    (schedule_fingerprint plain.Agrid_churn.Engine.schedule
    = schedule_fingerprint obs.Agrid_churn.Engine.schedule);
  Testlib.close "identical sunk energy" plain.Agrid_churn.Engine.sunk_energy
    obs.Agrid_churn.Engine.sunk_energy;
  Alcotest.(check int) "identical discards" plain.Agrid_churn.Engine.n_discarded
    obs.Agrid_churn.Engine.n_discarded;
  Alcotest.(check bool) "churn spans present" true
    (List.exists
       (fun (s : Span.stats) -> s.Span.name = "churn/phase")
       (Sink.span_stats sink))

let test_parallel_scoring_same_metrics () =
  let workload = Testlib.small_workload () in
  let seq_sink = Sink.create () in
  ignore (Slrh.run (params_with seq_sink) workload);
  let par_sink = Sink.create () in
  let par_params =
    { (params_with par_sink) with Slrh.parallel_scoring = Some 2 }
  in
  ignore (Slrh.run par_params workload);
  Alcotest.(check bool) "sequential and parallel scoring record the same metrics"
    true
    (registry_repr_of_sink seq_sink = registry_repr_of_sink par_sink)

(* ---- export ---- *)

let test_jsonl_shape () =
  let workload = Testlib.small_workload () in
  let sink = Sink.create ~stride:4 () in
  ignore (Slrh.run (params_with sink) workload);
  let lines =
    String.split_on_char '\n' (Export.to_jsonl sink)
    |> List.filter (fun l -> l <> "")
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  (match lines with
  | meta :: _ ->
      Alcotest.(check bool) "meta first" true (Testlib.contains meta "\"type\":\"meta\"");
      Alcotest.(check bool) "schema tagged" true (Testlib.contains meta Export.schema)
  | [] -> Alcotest.fail "no lines");
  let count tag =
    List.length
      (List.filter (fun l -> Testlib.contains l (Fmt.str "\"type\":%S" tag)) lines)
  in
  Alcotest.(check bool) "some spans" true (count "span" >= 3);
  Alcotest.(check bool) "some metrics" true
    (count "counter" + count "gauge" + count "histogram" >= 5);
  Alcotest.(check bool) "some snapshots" true (count "snapshot" >= 1)

let test_summary_json_counters () =
  let sink = Sink.create () in
  Sink.add sink "a/b" 3;
  Sink.record_span sink "sp" 0.5;
  let s = Export.summary_json ~total_seconds:1.25 sink in
  Alcotest.(check bool) "total" true (Testlib.contains s "\"total_seconds\": 1.25");
  Alcotest.(check bool) "counter" true (Testlib.contains s "\"a/b\": 3");
  Alcotest.(check bool) "span name" true (Testlib.contains s "\"name\":\"sp\"")

let test_nonfinite_floats_export_null () =
  let sink = Sink.create () in
  Sink.set_gauge sink "g" Float.infinity;
  let s = Export.to_jsonl sink in
  Alcotest.(check bool) "infinity becomes null" true
    (Testlib.contains s "\"value\":null")

(* nan/inf emit as null and read back as nan through the in-tree parser —
   the telemetry JSONL must survive a full export -> parse cycle without
   an external JSON package. *)
let test_json_nan_inf_round_trip () =
  List.iter
    (fun x ->
      let line = Json.to_string (Json.Obj [ ("value", Json.Flt x) ]) in
      Alcotest.(check string) "non-finite emits null" "{\"value\":null}" line;
      match Option.bind (Json.member "value" (Json.parse line)) Json.to_float with
      | Some v -> Alcotest.(check bool) "null parses back to nan" true (Float.is_nan v)
      | None -> Alcotest.fail "value field lost in round trip")
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* finite floats survive to 9 significant digits, ints exactly *)
  let line = Json.to_string (Json.Obj [ ("f", Json.Flt 0.123456789); ("i", Json.Int 42) ]) in
  let doc = Json.parse line in
  Alcotest.(check (option int)) "int exact" (Some 42) (Json.get_int "i" doc);
  (match Json.get_float "f" doc with
  | Some f -> Alcotest.(check bool) "float to 1e-9" true (Float.abs (f -. 0.123456789) < 1e-12)
  | None -> Alcotest.fail "float field lost");
  (* and a whole exported sink parses line by line *)
  let sink = Sink.create () in
  Sink.set_gauge sink "g" Float.nan;
  Sink.add sink "c" 7;
  Sink.record_span sink "sp" 0.25;
  String.split_on_char '\n' (Export.to_jsonl sink)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun l ->
         match Json.parse_opt l with
         | Some (Json.Obj _) -> ()
         | Some _ | None -> Alcotest.failf "export line is not a JSON object: %s" l)

(* ---- rolling windows ---- *)

let test_window_rolling () =
  let w = Window.create ~slots:4 ~slot_s:1. () in
  for i = 0 to 7 do
    Window.incr w ~now:(0.5 +. float_of_int i) "completed"
  done;
  (* 8 increments, but only the last 4 slots are live at now = 7.5 *)
  Alcotest.(check int) "total is rolling, not lifetime" 4
    (Window.total w ~now:7.5 "completed");
  Alcotest.(check int) "fully aged out" 0 (Window.total w ~now:50. "completed")

let test_window_quantile_ages_out () =
  let w = Window.create ~slots:3 ~slot_s:2. () in
  let bounds = [| 0.1; 1.0; 10.0 |] in
  List.iter
    (fun v -> Window.observe w ~now:1.0 "latency_s" ~bounds v)
    [ 0.5; 0.5; 0.5; 5.0 ];
  let p50 = Window.quantile w ~now:1.5 "latency_s" 0.5 in
  Alcotest.(check bool) "live p50 in covering bucket" true (p50 > 0.1 && p50 <= 1.0);
  Alcotest.(check int) "live count" 4 (Window.count w ~now:1.5 "latency_s");
  Alcotest.(check bool) "aged-out quantile is NaN" true
    (Float.is_nan (Window.quantile w ~now:100. "latency_s" 0.5));
  Alcotest.(check int) "aged-out count" 0 (Window.count w ~now:100. "latency_s")

let test_window_rate_early_life () =
  let w = Window.create ~slots:12 ~slot_s:5. () in
  Window.add w ~now:0.2 "jobs" 3;
  (* only one 5 s slot is live: the divisor is the covered 5 s, not the
     nominal 60 s window *)
  Testlib.close "early rate uses covered time" (3. /. 5.) (Window.rate w ~now:0.2 "jobs");
  Alcotest.(check bool) "covered below nominal" true
    (Window.covered_s w ~now:0.2 < Window.window_s w)

let test_window_merge () =
  let a = Window.create ~slots:4 ~slot_s:1. () in
  let b = Window.create ~slots:4 ~slot_s:1. () in
  Window.incr a ~now:1.5 "c";
  Window.incr b ~now:1.5 "c";
  Window.incr b ~now:2.5 "c";
  Window.merge_into ~into:a b;
  Alcotest.(check int) "slot-aligned merge" 3 (Window.total a ~now:2.9 "c");
  let bad = Window.create ~slots:5 ~slot_s:1. () in
  Alcotest.(check bool) "geometry mismatch raises" true
    (try
       Window.merge_into ~into:a bad;
       false
     with Invalid_argument _ -> true)

(* ---- trace collector ---- *)

(* [open Agrid_core] above pulls in the scheduler's decision tracer,
   also called Trace; rebind the request tracer explicitly. *)
module Trace = Agrid_obs.Trace

let test_trace_ids () =
  Alcotest.(check string) "id is a pure function"
    (Trace.id_of ~nonce:42 ~job:7)
    (Trace.id_of ~nonce:42 ~job:7);
  Alcotest.(check bool) "nonce separates runs" true
    (Trace.id_of ~nonce:1 ~job:7 <> Trace.id_of ~nonce:2 ~job:7);
  Alcotest.(check bool) "zero nonce, zero job is not all-zeros" true
    (Trace.id_of ~nonce:0 ~job:0 <> "0000000000000000");
  let t = Trace.create ~nonce:42 () in
  Alcotest.(check string) "id_for matches id_of" (Trace.id_of ~nonce:42 ~job:7)
    (Trace.id_for t 7);
  (* a backend adopts the id stamped by its router *)
  Trace.record ~id:"deadbeefdeadbeef" t ~job:7 Trace.Enqueue;
  (match Trace.events t with
  | [ e ] -> Alcotest.(check string) "stamped id wins" "deadbeefdeadbeef" e.Trace.ev_trace
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_trace_ring_bounded () =
  let t = Trace.create ~nonce:1 ~capacity:8 () in
  for j = 0 to 19 do
    Trace.record t ~job:j Trace.Enqueue
  done;
  Alcotest.(check int) "ring holds capacity" 8 (Trace.length t);
  Alcotest.(check int) "pushed counts all" 20 (Trace.pushed t);
  Alcotest.(check int) "dropped = pushed - kept" 12 (Trace.dropped t);
  (match Trace.events t with
  | { Trace.ev_job; _ } :: _ -> Alcotest.(check int) "oldest survivor" 12 ev_job
  | [] -> Alcotest.fail "ring empty")

let test_trace_exemplars_and_pending () =
  let t = Trace.create ~nonce:3 ~exemplars:2 ~pending_cap:2 () in
  for j = 0 to 4 do
    Trace.record t ~job:j Trace.Enqueue;
    Trace.record t ~job:j (Trace.Dispatch { backend = "b"; attempt = 1 });
    Trace.record t ~job:j (Trace.Respond { outcome = "result" })
  done;
  let xs = Trace.exemplars t in
  Alcotest.(check int) "exemplar buffer bounded" 2 (List.length xs);
  List.iter
    (fun (x : Trace.exemplar) ->
      Alcotest.(check bool) "duration nonnegative" true (x.Trace.x_duration_s >= 0.);
      (match x.Trace.x_events with
      | { Trace.ev_kind = Trace.Enqueue; _ } :: _ -> ()
      | _ -> Alcotest.fail "exemplar does not start with enqueue");
      match List.rev x.Trace.x_events with
      | { Trace.ev_kind = Trace.Respond _; _ } :: _ -> ()
      | _ -> Alcotest.fail "exemplar does not end with respond")
    xs;
  (* open timelines are bounded too: 5 enqueues, cap 2 *)
  let u = Trace.create ~nonce:3 ~pending_cap:2 () in
  for j = 0 to 4 do
    Trace.record u ~job:j Trace.Enqueue
  done;
  Alcotest.(check bool) "pending table bounded" true (Trace.n_pending u <= 2)

let test_trace_jsonl_round_trip () =
  let t = Trace.create ~nonce:9 () in
  Trace.record t ~job:0 Trace.Enqueue;
  Trace.record t ~job:0 (Trace.Dispatch { backend = "b0"; attempt = 1 });
  Trace.record t ~job:0 (Trace.Retry { attempt = 1; delay_s = 0.25 });
  Trace.record t ~job:0 (Trace.Failover { backend = "b0" });
  Trace.record t ~job:0 (Trace.Death { backend = "b0" });
  Trace.record t ~job:0 (Trace.Exec { queue_wait_s = 0.125 });
  Trace.record t ~job:0 (Trace.Respond { outcome = "maybe_executed" });
  let lines = Trace.jsonl_lines t in
  (match Trace.parse_jsonl lines with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok parsed ->
      Alcotest.(check int) "line count preserved" (List.length lines)
        (List.length parsed);
      (* print . parse is a fixed point on every line *)
      List.iter2
        (fun raw p -> Alcotest.(check string) "fixed point" raw (Trace.line_to_string p))
        lines parsed);
  (* totality on hostile bytes *)
  List.iter
    (fun junk ->
      match Trace.parse_line junk with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "junk parsed: %s" junk)
    [ "not json"; "{}"; "{\"type\":\"event\"}"; "{\"type\":\"nope\"}"; "[1,2]" ]

let test_trace_chrome_export () =
  let t = Trace.create ~nonce:5 () in
  Trace.record t ~job:1 Trace.Enqueue;
  Trace.record t ~job:1 (Trace.Dispatch { backend = "b0"; attempt = 1 });
  Trace.record t ~job:1 (Trace.Respond { outcome = "result" });
  match Json.parse_opt (Trace.chrome_json t) with
  | Some (Json.Obj fields) -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Json.Arr evs) ->
          Alcotest.(check bool) "has trace events" true (List.length evs > 0)
      | _ -> Alcotest.fail "traceEvents missing or not an array")
  | _ -> Alcotest.fail "chrome export is not a JSON object"

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
        Alcotest.test_case "hist under/overflow" `Quick test_hist_underflow_overflow;
        Alcotest.test_case "hist nan quarantined" `Quick test_hist_nan_quarantined;
        Alcotest.test_case "hist quantiles" `Quick test_hist_quantile_empty_and_order;
        Alcotest.test_case "hist negative-bound quantile" `Quick
          test_hist_negative_bound_quantile;
        Alcotest.test_case "hist quantile property (signed bounds)" `Quick
          test_hist_quantile_negative_bounds_property;
        Alcotest.test_case "hist max value" `Quick test_hist_max_value;
        Alcotest.test_case "hist invalid bounds" `Quick test_hist_invalid_bounds;
        Alcotest.test_case "hist merge mismatch" `Quick test_hist_merge_bounds_mismatch;
        Alcotest.test_case "registry merge commutative" `Quick test_registry_merge_commutative;
        Alcotest.test_case "registry merge associative" `Quick test_registry_merge_associative;
        Alcotest.test_case "registry kind mismatch" `Quick test_registry_kind_mismatch;
        Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "ring partial fill" `Quick test_ring_partial_fill;
        Alcotest.test_case "ring wraparound at non-divisible stride" `Quick
          test_ring_wraparound_nondivisible_stride;
        Alcotest.test_case "span records on raise" `Quick test_span_records_on_raise;
        Alcotest.test_case "sink noop inert" `Quick test_sink_noop_inert;
        Alcotest.test_case "sink stride" `Quick test_sink_stride;
        Alcotest.test_case "sink merge" `Quick test_sink_merge;
        Alcotest.test_case "slrh bit-identical with obs" `Quick test_slrh_bit_identical_with_obs;
        Alcotest.test_case "churn bit-identical with obs" `Quick test_churn_bit_identical_with_obs;
        Alcotest.test_case "parallel scoring same metrics" `Quick test_parallel_scoring_same_metrics;
        Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
        Alcotest.test_case "summary json" `Quick test_summary_json_counters;
        Alcotest.test_case "non-finite floats null" `Quick test_nonfinite_floats_export_null;
        Alcotest.test_case "json nan/inf round trip" `Quick test_json_nan_inf_round_trip;
        Alcotest.test_case "window rolling totals" `Quick test_window_rolling;
        Alcotest.test_case "window quantile ages out" `Quick test_window_quantile_ages_out;
        Alcotest.test_case "window early-life rate" `Quick test_window_rate_early_life;
        Alcotest.test_case "window merge" `Quick test_window_merge;
        Alcotest.test_case "trace ids" `Quick test_trace_ids;
        Alcotest.test_case "trace ring bounded" `Quick test_trace_ring_bounded;
        Alcotest.test_case "trace exemplars and pending caps" `Quick
          test_trace_exemplars_and_pending;
        Alcotest.test_case "trace jsonl round trip" `Quick test_trace_jsonl_round_trip;
        Alcotest.test_case "trace chrome export" `Quick test_trace_chrome_export;
      ] );
  ]
