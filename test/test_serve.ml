(* Tier-1 coverage of the scenario service ([Agrid_serve]): the request
   codec, the in-process server driven through [Server.submit] (no socket
   — the transport is just line framing on top of what these tests pin),
   backpressure, deadlines, both shutdown modes, and the telemetry merge.

   Response collection: [respond] callbacks fire on worker domains, so
   every test funnels them through one mutex-guarded list. *)

module Json = Agrid_obs.Json
module Sink = Agrid_obs.Sink
module Registry = Agrid_obs.Registry
module Serialize = Agrid_workload.Serialize
module Job = Agrid_serve.Job
module Codec = Agrid_serve.Codec
module Server = Agrid_serve.Server

let tiny ?(seed = 2004) () =
  Serialize.Generated
    { seed; scale = 0.03; etc_index = 0; dag_index = 0; case = Agrid_platform.Grid.A }

let job_line ?(tag = None) ?(deadline_ms = None) ?(events = []) ?(seed = 2004) () =
  Json.to_string
    (Codec.job_to_json { (Job.default (tiny ~seed ())) with Job.tag; deadline_ms; events })

type collector = { lock : Mutex.t; mutable lines : string list }

let collector () = { lock = Mutex.create (); lines = [] }

let respond_to c line =
  Mutex.lock c.lock;
  c.lines <- line :: c.lines;
  Mutex.unlock c.lock

let collected c = List.rev c.lines

let parse_line line =
  match Json.parse line with
  | j -> j
  | exception Json.Parse_error msg -> Alcotest.failf "bad response %S: %s" line msg

let get_int name j =
  match Json.get_int name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing int %S: %s" name (Json.to_string j)

let get_str name j =
  match Json.get_string name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing string %S: %s" name (Json.to_string j)

let counter_of sink name =
  match List.assoc_opt name (Sink.metrics sink) with
  | Some (Registry.Counter c) -> c
  | _ -> 0

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

(* ---- codec ---- *)

let test_codec_rejections () =
  let err line =
    match Codec.parse_request line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  Alcotest.(check bool) "not json" true
    (String.length (err "{nope") > 0);
  let missing_schema = err "{\"kind\":\"job\"}" in
  Alcotest.(check bool) "names the schema field" true
    (contains ~affix:"schema" missing_schema);
  let bad_kind = err "{\"schema\":\"agrid-job/1\",\"kind\":\"dance\"}" in
  Alcotest.(check bool) "names the kind" true
    (contains ~affix:"dance" bad_kind);
  let no_scenario = err "{\"schema\":\"agrid-job/1\",\"kind\":\"job\"}" in
  Alcotest.(check bool) "names the scenario field" true
    (contains ~affix:"scenario" no_scenario);
  (* mistyped optional fields are errors, not silent defaults *)
  let mistyped =
    err
      "{\"schema\":\"agrid-job/1\",\"kind\":\"job\",\"scenario\":{\"kind\":\"generated\",\"seed\":1,\"scale\":0.03,\"etc\":0,\"dag\":0,\"case\":\"A\"},\"delta_t\":\"ten\"}"
  in
  Alcotest.(check bool) "mistyped delta_t rejected" true
    (contains ~affix:"delta_t" mistyped);
  match Codec.parse_request "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}" with
  | Ok Codec.Health -> ()
  | _ -> Alcotest.fail "health request did not parse"

(* ---- queue overflow is deterministic with the pool not yet started ---- *)

let test_backpressure () =
  let c = collector () in
  let server = Server.create ~workers:2 ~queue_capacity:2 () in
  for _ = 1 to 3 do
    Server.submit server ~respond:(respond_to c) (job_line ())
  done;
  (* pool never started: exactly the third submit overflowed, synchronously *)
  (match collected c with
  | [ line ] ->
      let j = parse_line line in
      Alcotest.(check string) "type" "rejected" (get_str "type" j);
      Alcotest.(check string) "reason" "queue_full" (get_str "reason" j);
      Alcotest.(check int) "id" 2 (get_int "id" j)
  | lines -> Alcotest.failf "expected one synchronous rejection, got %d" (List.length lines));
  Server.drain server;
  let lines = collected c in
  Alcotest.(check int) "zero lost responses" 3 (List.length lines);
  let stats = Server.stats server in
  Alcotest.(check int) "accepted" 2 stats.Server.s_accepted;
  Alcotest.(check int) "queue_full" 1 stats.Server.s_queue_full;
  Alcotest.(check int) "completed" 2 stats.Server.s_completed;
  (* after drain the server rejects instead of buffering *)
  Server.submit server ~respond:(respond_to c) (job_line ());
  match parse_line (List.nth (collected c) 3) with
  | j -> Alcotest.(check string) "draining" "draining" (get_str "reason" j)

let test_monotone_ids () =
  let c = collector () in
  let server = Server.create ~workers:2 ~queue_capacity:16 () in
  Server.start server;
  for i = 0 to 9 do
    let line =
      if i mod 4 = 3 then "garbage line " ^ string_of_int i
      else job_line ~seed:(100 + i) ()
    in
    Server.submit server ~respond:(respond_to c) line
  done;
  Server.drain server;
  let lines = collected c in
  Alcotest.(check int) "every request answered" 10 (List.length lines);
  let ids = List.map (fun l -> get_int "id" (parse_line l)) lines in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check (list int)) "ids are exactly 0..9" (List.init 10 Fun.id) sorted

(* ---- deadlines ---- *)

let test_impossible_deadline () =
  let c = collector () in
  let server = Server.create ~workers:1 ~queue_capacity:4 () in
  Server.submit server ~respond:(respond_to c)
    (job_line ~tag:(Some "doomed") ~deadline_ms:(Some 0.) ());
  Server.drain server;
  match collected c with
  | [ line ] ->
      let j = parse_line line in
      Alcotest.(check string) "status" "deadline_missed" (get_str "status" j);
      Alcotest.(check string) "tag echoed" "doomed" (get_str "tag" j);
      Alcotest.(check int) "nothing mapped" 0 (get_int "mapped" j);
      let stats = Server.stats server in
      Alcotest.(check int) "deadline_missed counted" 1 stats.Server.s_deadline_missed
  | lines -> Alcotest.failf "expected one response, got %d" (List.length lines)

(* the cooperative deadline in Job.run directly, without the server *)
let test_job_deadline_direct () =
  let r = Job.run { (Job.default (tiny ())) with Job.deadline_ms = Some 0. } in
  Alcotest.(check string) "status" "deadline_missed" (Job.status_to_string r.Job.status);
  Alcotest.(check bool) "not completed" false r.Job.completed;
  Alcotest.(check int) "final clock untouched" 0 r.Job.final_clock

let test_job_errored () =
  let r = Job.run (Job.default (Serialize.Pinned "not a scenario")) in
  (match r.Job.status with
  | Job.Errored msg ->
      Alcotest.(check bool) "diagnostic mentions the parse" true
        (contains ~affix:"parse" msg)
  | _ -> Alcotest.fail "expected Errored");
  (* and through the server it becomes an "errored" result line *)
  let c = collector () in
  let server = Server.create ~workers:1 ~queue_capacity:4 () in
  Server.submit server ~respond:(respond_to c)
    (Json.to_string (Codec.job_to_json (Job.default (Serialize.Pinned "still not"))));
  Server.drain server;
  match collected c with
  | [ line ] ->
      Alcotest.(check string) "status" "errored" (get_str "status" (parse_line line))
  | lines -> Alcotest.failf "expected one response, got %d" (List.length lines)

(* ---- health ---- *)

let test_health () =
  let c = collector () in
  let server = Server.create ~workers:3 ~queue_capacity:8 () in
  Server.submit server ~respond:(respond_to c)
    "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}";
  (match collected c with
  | [ line ] ->
      let j = parse_line line in
      Alcotest.(check string) "type" "health" (get_str "type" j);
      Alcotest.(check int) "workers" 3 (get_int "workers" j);
      Alcotest.(check int) "queue empty" 0 (get_int "queue_depth" j);
      Alcotest.(check bool) "uptime present" true (Json.get_float "uptime_s" j <> None)
  | lines -> Alcotest.failf "expected one response, got %d" (List.length lines));
  Server.drain server

(* ---- stats request: rolling snapshot, answered synchronously ---- *)

let test_stats_request () =
  let c = collector () in
  let tracer = Agrid_obs.Trace.create ~nonce:0 () in
  let server = Server.create ~trace:tracer ~workers:2 ~queue_capacity:8 () in
  for i = 0 to 2 do
    Server.submit server ~respond:(respond_to c) (job_line ~seed:(400 + i) ())
  done;
  Server.drain server;
  let sc = collector () in
  Server.submit server ~respond:(respond_to sc)
    "{\"schema\":\"agrid-job/1\",\"kind\":\"stats\"}";
  (match collected sc with
  | [ line ] -> (
      match Codec.parse_stats line with
      | Error msg -> Alcotest.failf "stats line rejected: %s on %S" msg line
      | Ok s ->
          Alcotest.(check string) "role" "serve" s.Codec.ss_role;
          Alcotest.(check int) "workers" 2 s.Codec.ss_workers;
          Alcotest.(check int) "accepted" 3 s.Codec.ss_accepted;
          Alcotest.(check int) "completed" 3 s.Codec.ss_completed;
          Alcotest.(check int) "drained: nothing queued" 0 s.Codec.ss_queue_depth;
          Alcotest.(check (list (triple string string int))) "no backends on serve"
            [] s.Codec.ss_backends;
          (* jobs just completed, so the rolling window is live *)
          Alcotest.(check bool) "window rate positive" true (s.Codec.ss_rate > 0.);
          Alcotest.(check bool) "rolling p95 is finite" true
            (Float.is_finite s.Codec.ss_p95_s);
          Alcotest.(check bool) "quantiles ordered" true
            (s.Codec.ss_p50_s <= s.Codec.ss_p95_s
            && s.Codec.ss_p95_s <= s.Codec.ss_p99_s);
          Alcotest.(check bool) "trace ring populated" true
            (s.Codec.ss_trace_events > 0);
          Alcotest.(check int) "nothing dropped" 0 s.Codec.ss_trace_dropped)
  | lines -> Alcotest.failf "expected one stats response, got %d" (List.length lines));
  let stats = Server.stats server in
  Alcotest.(check int) "stats requests counted" 1 stats.Server.s_stats;
  Server.drain server;
  (* without a tracer the snapshot still answers, with zero occupancy —
     and synchronously even when the worker pool never started *)
  let bare = Server.create ~workers:2 ~queue_capacity:8 () in
  let bc = collector () in
  Server.submit bare ~respond:(respond_to bc)
    "{\"schema\":\"agrid-job/1\",\"kind\":\"stats\"}";
  (match collected bc with
  | [ line ] -> (
      match Codec.parse_stats line with
      | Ok s ->
          Alcotest.(check int) "no tracer: zero events" 0 s.Codec.ss_trace_events;
          Alcotest.(check bool) "idle window: NaN p50" true
            (Float.is_nan s.Codec.ss_p50_s)
      | Error msg -> Alcotest.failf "bare stats rejected: %s" msg)
  | lines -> Alcotest.failf "expected one response, got %d" (List.length lines));
  ignore (Server.stop bare)

(* ---- hard shutdown answers queued jobs as dropped ---- *)

let test_stop_drops_queued () =
  let c = collector () in
  let server = Server.create ~workers:2 ~queue_capacity:8 () in
  (* pool intentionally not started: everything stays queued *)
  for i = 0 to 4 do
    Server.submit server ~respond:(respond_to c) (job_line ~tag:(Some (Fmt.str "q%d" i)) ())
  done;
  let dropped = Server.stop server in
  Alcotest.(check int) "all five dropped" 5 dropped;
  let lines = collected c in
  Alcotest.(check int) "every job answered" 5 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check string) "dropped line" "dropped" (get_str "type" (parse_line l)))
    lines;
  let stats = Server.stats server in
  Alcotest.(check int) "dropped counted" 5 stats.Server.s_dropped;
  Alcotest.(check int) "stop is idempotent" 0 (Server.stop server)

(* ---- served results are bit-identical to one-shot runs ---- *)

let test_bit_identical_to_oneshot () =
  let specs =
    [
      Job.default (tiny ());
      { (Job.default (tiny ~seed:31 ())) with Job.mode = `Rescan };
      {
        (Job.default (tiny ~seed:8 ())) with
        Job.events = Agrid_churn.Event.parse_trace "leave@40:1,rejoin@90:1";
      };
    ]
  in
  let c = collector () in
  let server = Server.create ~workers:3 ~queue_capacity:8 () in
  List.iter
    (fun s ->
      Server.submit server ~respond:(respond_to c)
        (Json.to_string (Codec.job_to_json s)))
    specs;
  Server.drain server;
  let by_id = List.map (fun l -> parse_line l) (collected c) in
  List.iteri
    (fun i spec ->
      let j = List.find (fun j -> get_int "id" j = i) by_id in
      let oneshot = Job.run spec in
      Alcotest.(check string)
        (Fmt.str "job %d status" i)
        (Job.status_to_string oneshot.Job.status)
        (get_str "status" j);
      Alcotest.(check int) (Fmt.str "job %d t100" i) oneshot.Job.t100 (get_int "t100" j);
      Alcotest.(check int) (Fmt.str "job %d aet" i) oneshot.Job.aet (get_int "aet" j);
      Alcotest.(check int)
        (Fmt.str "job %d final_clock" i)
        oneshot.Job.final_clock (get_int "final_clock" j);
      Alcotest.(check string)
        (Fmt.str "job %d tec bits" i)
        (Fmt.str "%Lx" (Int64.bits_of_float oneshot.Job.tec))
        (get_str "tec_bits" j))
    specs;
  (* and Job.run itself is reproducible run-to-run *)
  let s = List.nth specs 2 in
  Alcotest.(check bool) "Job.run deterministic" true
    (Job.equal_modulo_wall (Job.run s) (Job.run s))

(* ---- per-job sinks merge into the pool sink ---- *)

let test_obs_merge () =
  let sink = Sink.create ~stride:1 () in
  let c = collector () in
  let server = Server.create ~obs:sink ~workers:2 ~queue_capacity:8 () in
  Server.submit server ~respond:(respond_to c) (job_line ());
  Server.submit server ~respond:(respond_to c) (job_line ~seed:31 ());
  Server.submit server ~respond:(respond_to c) (job_line ~deadline_ms:(Some 0.) ());
  Server.submit server ~respond:(respond_to c) "garbage";
  Server.submit server ~respond:(respond_to c)
    "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}";
  Server.drain server;
  Alcotest.(check int) "serve/accepted" 3 (counter_of sink "serve/accepted");
  Alcotest.(check int) "serve/completed" 2 (counter_of sink "serve/completed");
  Alcotest.(check int) "serve/deadline_missed" 1 (counter_of sink "serve/deadline_missed");
  Alcotest.(check int) "serve/malformed" 1 (counter_of sink "serve/malformed");
  Alcotest.(check int) "serve/health" 1 (counter_of sink "serve/health");
  (* the two completed jobs' SLRH telemetry landed in the pool sink *)
  Alcotest.(check bool) "slrh counters merged" true
    (counter_of sink "slrh/clock_steps" > 0);
  (* per-job latency histogram covers every finished job *)
  (match List.assoc_opt "serve/latency_s" (Sink.metrics sink) with
  | Some (Registry.Histogram h) ->
      Alcotest.(check int) "latency observations" 3 (Agrid_obs.Hist.count h)
  | _ -> Alcotest.fail "serve/latency_s histogram missing");
  (* responses all arrived too *)
  Alcotest.(check int) "responses" 5 (List.length (collected c))

(* ---- the hardened socket transport survives hostile clients ---- *)

let test_transport_survives_abrupt_disconnects () =
  let sink = Sink.create () in
  let server = Server.create ~workers:2 ~queue_capacity:8 () in
  Server.start server;
  let path = Filename.temp_file "agrid_transport" ".sock" in
  let tr =
    match Agrid_serve.Transport.listen ~path with
    | Ok tr -> tr
    | Error msg -> Alcotest.failf "listen: %s" msg
  in
  let stop = Atomic.make false in
  let loop =
    Thread.create
      (fun () ->
        Agrid_serve.Transport.accept_loop ~obs:sink
          ~stop:(fun () -> Atomic.get stop)
          ~handle:(fun ~respond ~ic ->
            let r =
              Agrid_serve.Transport.pump
                ~stop:(fun () -> Atomic.get stop)
                ~on_line:(fun line -> Server.submit server ~respond line)
                ic
            in
            Server.quiesce server;
            r)
          tr)
      ()
  in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* connection 1: shut our receive side before submitting, so the
     daemon's response write hits a broken pipe — it must count the error
     and keep serving, not die of SIGPIPE or an exception *)
  let fd1 = connect () in
  Unix.shutdown fd1 Unix.SHUTDOWN_RECEIVE;
  let line = job_line () ^ "\n" in
  ignore (Unix.write_substring fd1 line 0 (String.length line));
  Unix.close fd1;
  (* connection 2 (after the carnage): a normal request/response works *)
  let fd2 = connect () in
  let health = "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}\n" in
  ignore (Unix.write_substring fd2 health 0 (String.length health));
  let ic2 = Unix.in_channel_of_descr fd2 in
  let answer =
    match input_line ic2 with
    | l -> l
    | exception End_of_file -> Alcotest.fail "no response on the clean connection"
  in
  Alcotest.(check string) "health answered" "health"
    (get_str "type" (parse_line answer));
  Unix.close fd2;
  Atomic.set stop true;
  Agrid_serve.Transport.shutdown tr;
  Thread.join loop;
  Server.drain server;
  Alcotest.(check bool) "conn error counted" true
    (counter_of sink "serve/conn_errors" >= 1);
  Alcotest.(check int) "both requests reached the server" 2
    (Server.stats server).Server.s_requests

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "codec: typed rejections" `Quick test_codec_rejections;
        Alcotest.test_case "queue overflow -> queue_full (deterministic)" `Quick
          test_backpressure;
        Alcotest.test_case "monotone ids, zero lost responses" `Quick
          test_monotone_ids;
        Alcotest.test_case "impossible deadline -> deadline_missed" `Quick
          test_impossible_deadline;
        Alcotest.test_case "Job.run deadline, directly" `Quick
          test_job_deadline_direct;
        Alcotest.test_case "bad scenario -> errored result" `Quick test_job_errored;
        Alcotest.test_case "health request" `Quick test_health;
        Alcotest.test_case "stats request: rolling snapshot" `Quick
          test_stats_request;
        Alcotest.test_case "hard stop answers queued jobs as dropped" `Quick
          test_stop_drops_queued;
        Alcotest.test_case "served results bit-identical to one-shot" `Quick
          test_bit_identical_to_oneshot;
        Alcotest.test_case "telemetry merges into the pool sink" `Quick
          test_obs_merge;
        Alcotest.test_case "transport survives abrupt disconnects" `Quick
          test_transport_survives_abrupt_disconnects;
      ] );
  ]
