(* Standalone validator for an --obs JSONL file, run by CI after
   `agrid run --obs`. Checks the structural contract without a JSON
   dependency: every line is a JSON object carrying a "type" field, the
   first line is the meta record with the expected schema, and the file
   holds at least 3 span aggregates, 5 metrics and 1 snapshot (the
   acceptance floor for an instrumented run). An optional second
   argument names an agrid-trace/1 JSONL file (from --trace or the
   fleet soak) validated in the same pass through the real codec:
   every line must parse, the meta record must lead, and every event
   timeline must be internally consistent. Exits nonzero with a
   diagnostic on any violation. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_obs: " ^ msg); exit 1) fmt

let read_lines path =
  let ic = try open_in path with Sys_error e -> fail "%s" e in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev (List.filter (fun l -> String.trim l <> "") !lines)

(* agrid-trace/1 pass: the trace file goes through the real codec, so a
   parse failure here is exactly the failure `agrid trace export` would
   hit on the same artifact. *)
let check_trace path =
  let module Trace = Agrid_obs.Trace in
  let lines = read_lines path in
  if lines = [] then fail "%s is empty" path;
  match Trace.parse_jsonl lines with
  | Error e -> fail "%s: %s" path e
  | Ok parsed ->
      (match parsed with
      | Trace.Meta _ :: _ -> ()
      | _ -> fail "%s: first line is not the agrid-trace/1 meta record" path);
      let n_events = ref 0 and n_exemplars = ref 0 in
      List.iter
        (function
          | Trace.Meta _ -> ()
          | Trace.Event e ->
              incr n_events;
              if String.length e.Trace.ev_trace <> 16 then
                fail "%s: event for job %d has malformed trace id %S" path
                  e.Trace.ev_job e.Trace.ev_trace
          | Trace.Exemplar x ->
              incr n_exemplars;
              List.iter
                (fun (e : Trace.event) ->
                  if e.Trace.ev_trace <> x.Trace.x_trace then
                    fail "%s: exemplar for job %d mixes trace ids" path
                      x.Trace.x_job)
                x.Trace.x_events)
        parsed;
      if !n_events = 0 then fail "%s: no trace events" path;
      Printf.printf "check_obs: %s ok (%d lines, %d events, %d exemplars)\n"
        path (List.length lines) !n_events !n_exemplars

let () =
  let path, trace_path =
    match Sys.argv with
    | [| _; p |] -> (p, None)
    | [| _; p; t |] -> (p, Some t)
    | _ ->
        prerr_endline "usage: check_obs FILE.jsonl [TRACE.jsonl]";
        exit 2
  in
  let lines = read_lines path in
  if lines = [] then fail "%s is empty" path;
  List.iteri
    (fun i l ->
      let n = String.length l in
      if n < 2 || l.[0] <> '{' || l.[n - 1] <> '}' then
        fail "line %d is not a JSON object: %s" (i + 1) l;
      if not (contains l "\"type\":") then fail "line %d has no \"type\" field" (i + 1))
    lines;
  (match lines with
  | meta :: _ ->
      if not (contains meta "\"type\":\"meta\"") then
        fail "first line is not the meta record";
      if not (contains meta "\"schema\":\"agrid-obs/1\"") then
        fail "meta line lacks schema agrid-obs/1"
  | [] -> assert false);
  let count tag =
    List.length (List.filter (fun l -> contains l (Printf.sprintf "\"type\":\"%s\"" tag)) lines)
  in
  let spans = count "span" in
  let metrics = count "counter" + count "gauge" + count "histogram" in
  let snapshots = count "snapshot" in
  if spans < 3 then fail "expected >= 3 spans, found %d" spans;
  if metrics < 5 then fail "expected >= 5 metrics, found %d" metrics;
  if snapshots < 1 then fail "expected >= 1 snapshot, found %d" snapshots;
  Printf.printf "check_obs: %s ok (%d lines, %d spans, %d metrics, %d snapshots)\n"
    path (List.length lines) spans metrics snapshots;
  match trace_path with None -> () | Some t -> check_trace t
