(* Standalone validator for an --obs JSONL file, run by CI after
   `agrid run --obs`. Checks the structural contract without a JSON
   dependency: every line is a JSON object carrying a "type" field, the
   first line is the meta record with the expected schema, and the file
   holds at least 3 span aggregates, 5 metrics and 1 snapshot (the
   acceptance floor for an instrumented run). Exits nonzero with a
   diagnostic on any violation. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_obs: " ^ msg); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: check_obs FILE.jsonl";
        exit 2
  in
  let ic = try open_in path with Sys_error e -> fail "%s" e in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev (List.filter (fun l -> String.trim l <> "") !lines) in
  if lines = [] then fail "%s is empty" path;
  List.iteri
    (fun i l ->
      let n = String.length l in
      if n < 2 || l.[0] <> '{' || l.[n - 1] <> '}' then
        fail "line %d is not a JSON object: %s" (i + 1) l;
      if not (contains l "\"type\":") then fail "line %d has no \"type\" field" (i + 1))
    lines;
  (match lines with
  | meta :: _ ->
      if not (contains meta "\"type\":\"meta\"") then
        fail "first line is not the meta record";
      if not (contains meta "\"schema\":\"agrid-obs/1\"") then
        fail "meta line lacks schema agrid-obs/1"
  | [] -> assert false);
  let count tag =
    List.length (List.filter (fun l -> contains l (Printf.sprintf "\"type\":\"%s\"" tag)) lines)
  in
  let spans = count "span" in
  let metrics = count "counter" + count "gauge" + count "histogram" in
  let snapshots = count "snapshot" in
  if spans < 3 then fail "expected >= 3 spans, found %d" spans;
  if metrics < 5 then fail "expected >= 5 metrics, found %d" metrics;
  if snapshots < 1 then fail "expected >= 1 snapshot, found %d" snapshots;
  Printf.printf "check_obs: %s ok (%d lines, %d spans, %d metrics, %d snapshots)\n"
    path (List.length lines) spans metrics snapshots
