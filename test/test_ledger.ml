(* Decision-ledger tests: the no-op/ledger-off/ledger-on runs must be
   bit-identical (the ledger only observes), the recorded stream must
   answer the explain queries, JSONL must round-trip through the in-tree
   parser, and ledger-diff must localise the first divergent decision
   between runs with different objective weights. *)

open Agrid_obs
open Agrid_core

let fingerprint sched =
  ( Array.to_list (Agrid_sched.Schedule.placements sched),
    Array.to_list (Agrid_sched.Schedule.transfers sched),
    Agrid_sched.Schedule.tec sched,
    Agrid_sched.Schedule.aet sched,
    Agrid_sched.Schedule.n_primary sched )

let params_with ?(alpha = 0.3) ?(beta = 0.3) obs =
  let weights = Objective.make_weights ~alpha ~beta in
  { (Slrh.default_params weights) with Slrh.obs }

let ledger_of sink =
  match Sink.ledger sink with
  | Some led -> led
  | None -> Alcotest.fail "sink created with ~ledger:true carries no ledger"

let run_with_ledger ?alpha ?beta workload =
  let sink = Sink.create ~ledger:true () in
  let o = Slrh.run (params_with ?alpha ?beta sink) workload in
  (o, ledger_of sink)

let count_entries pred led =
  let n = ref 0 in
  Ledger.iter (fun e -> if pred e then incr n) led;
  !n

(* ---- recording is pure observation ---- *)

let test_bit_identical_with_ledger () =
  let workload = Testlib.small_workload () in
  let plain = Slrh.run (params_with Sink.noop) workload in
  let o, led = run_with_ledger workload in
  Alcotest.(check bool) "identical schedules" true
    (fingerprint plain.Slrh.schedule = fingerprint o.Slrh.schedule);
  Alcotest.(check bool) "identical stats" true (plain.Slrh.stats = o.Slrh.stats);
  (* and the ledger actually saw the run: one commit per assignment *)
  Alcotest.(check int) "one commit per assignment" o.Slrh.stats.Slrh.assignments
    (count_entries (function Ledger.Commit _ -> true | _ -> false) led);
  Alcotest.(check bool) "candidate fates recorded" true
    (count_entries (function Ledger.Candidate _ -> true | _ -> false) led > 0)

let test_ledger_off_sink_records_nothing () =
  let workload = Testlib.small_workload () in
  let sink = Sink.create () in
  ignore (Slrh.run (params_with sink) workload);
  Alcotest.(check bool) "plain active sink carries no ledger" true
    (Sink.ledger sink = None)

(* ---- explain queries ---- *)

let test_explain_task () =
  let workload = Testlib.small_workload () in
  let _, led = run_with_ledger workload in
  let committed =
    Array.to_list (Ledger.entries led)
    |> List.filter_map (function Ledger.Commit { task; _ } -> Some task | _ -> None)
  in
  (match committed with
  | [] -> Alcotest.fail "no commits recorded"
  | task :: _ -> (
      match Ledger.explain_task led ~task with
      | None -> Alcotest.failf "no explanation for committed subtask %d" task
      | Some report ->
          Alcotest.(check bool) "report names the commit" true
            (Testlib.contains report "COMMIT");
          Alcotest.(check bool) "report decomposes the score" true
            (Testlib.contains report "alpha")));
  Alcotest.(check (option string)) "unseen task has no record" None
    (Ledger.explain_task led ~task:100000)

let test_explain_idle () =
  let workload = Testlib.small_workload () in
  let _, led = run_with_ledger workload in
  let idles =
    Array.to_list (Ledger.entries led)
    |> List.filter_map (function
         | Ledger.Idle { clock; machine; _ } -> Some (clock, machine)
         | _ -> None)
  in
  (match idles with
  | [] -> Alcotest.fail "no idle entries recorded"
  | (clock, machine) :: _ -> (
      match Ledger.explain_idle led ~machine ~clock with
      | None -> Alcotest.failf "no explanation for machine %d at clock %d" machine clock
      | Some report ->
          Alcotest.(check bool) "report mentions idling" true
            (Testlib.contains report "idle")));
  Alcotest.(check (option string)) "unrecorded step has no explanation" None
    (Ledger.explain_idle led ~machine:0 ~clock:max_int)

(* ---- JSONL round trip ---- *)

let test_jsonl_round_trip () =
  let workload = Testlib.small_workload () in
  let _, led = run_with_ledger workload in
  let text = Ledger.to_jsonl led in
  let back = Ledger.of_jsonl text in
  Alcotest.(check int) "entry count survives" (Ledger.length led) (Ledger.length back);
  (* floats pass through %.9g, so re-serialisation is the fixed point *)
  Alcotest.(check bool) "serialisation is stable" true (Ledger.to_jsonl back = text);
  (* the decision stream survives exactly (it holds no floats) *)
  Alcotest.(check (option int)) "no divergence against itself" None
    (Option.map (fun d -> d.Ledger.div_index) (Ledger.first_divergence led back))

let test_of_jsonl_malformed () =
  Alcotest.(check bool) "malformed line is reported with its number" true
    (try
       ignore (Ledger.of_jsonl "{\"type\":\"commit\"\n");
       false
     with Invalid_argument msg -> Testlib.contains msg "line 1")

(* ---- diff localisation ---- *)

let test_diff_localises_weight_change () =
  let workload = Testlib.small_workload () in
  let _, led_a = run_with_ledger ~alpha:0.3 ~beta:0.3 workload in
  let _, led_a' = run_with_ledger ~alpha:0.3 ~beta:0.3 workload in
  let _, led_b = run_with_ledger ~alpha:0.7 ~beta:0.1 workload in
  Alcotest.(check (option int)) "same weights, identical decision stream" None
    (Option.map (fun d -> d.Ledger.div_index) (Ledger.first_divergence led_a led_a'));
  match Ledger.first_divergence led_a led_b with
  | None -> Alcotest.fail "different weights must diverge somewhere"
  | Some d ->
      Alcotest.(check bool) "divergence has both sides" true
        (d.Ledger.div_left <> None && d.Ledger.div_right <> None);
      Alcotest.(check bool) "divergence lies within both streams" true
        (d.Ledger.div_index >= 0
        && d.Ledger.div_index < List.length (Ledger.decisions led_a)
        && d.Ledger.div_index < List.length (Ledger.decisions led_b));
      (* diffing is symmetric in where the streams part ways *)
      (match Ledger.first_divergence led_b led_a with
      | None -> Alcotest.fail "reversed diff must also diverge"
      | Some d' ->
          Alcotest.(check int) "symmetric divergence index" d.Ledger.div_index
            d'.Ledger.div_index);
      (* the report renders both sides *)
      let report = Fmt.str "%a" Ledger.pp_divergence d in
      Alcotest.(check bool) "report shows the divergence index" true
        (Testlib.contains report (string_of_int d.Ledger.div_index))

(* ---- churn integration ---- *)

let test_churn_ledger_entries () =
  let workload = Testlib.small_workload () in
  let tau = Agrid_workload.Workload.tau workload in
  let events =
    [
      { Agrid_churn.Event.at = tau / 8; kind = Agrid_churn.Event.Leave 1 };
      { Agrid_churn.Event.at = tau / 2; kind = Agrid_churn.Event.Rejoin 1 };
    ]
  in
  let plain = Dynamic.run_churn (params_with Sink.noop) workload events in
  let sink = Sink.create ~ledger:true () in
  let o = Dynamic.run_churn (params_with sink) workload events in
  Alcotest.(check bool) "identical schedules" true
    (fingerprint plain.Agrid_churn.Engine.schedule
    = fingerprint o.Agrid_churn.Engine.schedule);
  let led = ledger_of sink in
  Alcotest.(check int) "both grid transitions recorded" 2
    (count_entries (function Ledger.Churn _ -> true | _ -> false) led);
  Alcotest.(check bool) "down machine recorded idle" true
    (count_entries
       (function Ledger.Idle { cause = Ledger.Down; machine = 1; _ } -> true | _ -> false)
       led
    > 0)

let suites =
  [
    ( "ledger",
      [
        Alcotest.test_case "bit-identical with ledger on" `Quick test_bit_identical_with_ledger;
        Alcotest.test_case "ledger-off sink records nothing" `Quick test_ledger_off_sink_records_nothing;
        Alcotest.test_case "explain task" `Quick test_explain_task;
        Alcotest.test_case "explain idle" `Quick test_explain_idle;
        Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
        Alcotest.test_case "of_jsonl malformed line" `Quick test_of_jsonl_malformed;
        Alcotest.test_case "diff localises weight change" `Quick test_diff_localises_weight_change;
        Alcotest.test_case "churn ledger entries" `Quick test_churn_ledger_entries;
      ] );
  ]
