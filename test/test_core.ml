open Agrid_workload
open Agrid_sched
open Agrid_core

(* ---- objective ---- *)

let w331 = Objective.make_weights ~alpha:0.4 ~beta:0.3 (* gamma 0.3 *)

let test_weights_construction () =
  let w = Objective.make_weights ~alpha:0.5 ~beta:0.2 in
  Testlib.close "gamma" 0.3 w.Objective.gamma;
  Alcotest.check_raises "negative"
    (Invalid_argument "Objective.make_weights: weights must be nonnegative") (fun () ->
      ignore (Objective.make_weights ~alpha:(-0.1) ~beta:0.2));
  Alcotest.check_raises "sum > 1"
    (Invalid_argument "Objective.make_weights: alpha + beta must not exceed 1")
    (fun () -> ignore (Objective.make_weights ~alpha:0.9 ~beta:0.2))

let test_weights_exact () =
  let w = Objective.weights_exact ~alpha:0.2 ~beta:0.3 ~gamma:0.5 in
  Testlib.close "alpha" 0.2 w.Objective.alpha;
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Objective.weights_exact: weights must sum to 1") (fun () ->
      ignore (Objective.weights_exact ~alpha:0.2 ~beta:0.3 ~gamma:0.6))

let test_objective_formula () =
  (* hand evaluation: alpha*T100/|T| - beta*TEC/TSE + gamma*AET/tau *)
  let v =
    Objective.value w331 ~t100:512 ~n_tasks:1024 ~tec:100. ~tse:1000. ~aet:5000
      ~tau:10000
  in
  Testlib.close "formula" ((0.4 *. 0.5) -. (0.3 *. 0.1) +. (0.3 *. 0.5)) v

let test_objective_monotonicity () =
  (* more primaries -> higher; more energy -> lower; later AET -> higher *)
  let base =
    Objective.value w331 ~t100:10 ~n_tasks:100 ~tec:50. ~tse:500. ~aet:100 ~tau:1000
  in
  let more_t100 =
    Objective.value w331 ~t100:11 ~n_tasks:100 ~tec:50. ~tse:500. ~aet:100 ~tau:1000
  in
  let more_tec =
    Objective.value w331 ~t100:10 ~n_tasks:100 ~tec:60. ~tse:500. ~aet:100 ~tau:1000
  in
  let later_aet =
    Objective.value w331 ~t100:10 ~n_tasks:100 ~tec:50. ~tse:500. ~aet:200 ~tau:1000
  in
  Alcotest.(check bool) "t100 up" true (more_t100 > base);
  Alcotest.(check bool) "tec down" true (more_tec < base);
  Alcotest.(check bool) "aet up (positive gamma term)" true (later_aet > base)

let test_objective_bounded () =
  (* all terms normalised: value within [-1, 1] for sane inputs *)
  let gen =
    QCheck2.Gen.(
      let* a = float_range 0. 1. in
      let* b = float_range 0. (1. -. a) in
      let* t100 = int_range 0 1024 in
      let* tec = float_range 0. 1000. in
      let* aet = int_range 0 10_000 in
      return (a, b, t100, tec, aet))
  in
  let prop (a, b, t100, tec, aet) =
    let w = Objective.make_weights ~alpha:a ~beta:b in
    let v =
      Objective.value w ~t100 ~n_tasks:1024 ~tec ~tse:1000. ~aet ~tau:10_000
    in
    v >= -1.0000001 && v <= 1.0000001
  in
  QCheck2.Test.check_exn (QCheck2.Test.make ~count:500 ~name:"objective bounded" gen prop)

let test_estimate_vs_after_plan () =
  (* on an empty machine with mapped parents the estimate and the exact plan
     agree for the diamond root *)
  let s = Schedule.create (Testlib.diamond_workload ()) in
  let est = Objective.estimate w331 s ~task:0 ~version:Version.Primary ~machine:0 ~now:0 in
  let p = Schedule.plan s ~task:0 ~version:Version.Primary ~machine:0 ~not_before:0 in
  let exact = Objective.after_plan w331 s p in
  Testlib.close "estimate = exact for root" exact est

let test_best_version_prefers_primary_when_cheap () =
  let s = Schedule.create (Testlib.diamond_workload ()) in
  let v, _ = Objective.best_version w331 s ~task:0 ~machine:0 ~now:0 in
  Alcotest.(check bool) "primary" true (Version.is_primary v)

let test_best_version_beta_dominant () =
  (* with beta ~ 1 energy dominates: secondary wins *)
  let w = Objective.make_weights ~alpha:0.0 ~beta:1.0 in
  let s = Schedule.create (Testlib.diamond_workload ()) in
  let v, _ = Objective.best_version w s ~task:0 ~machine:0 ~now:0 in
  Alcotest.(check bool) "secondary" true (not (Version.is_primary v))

let test_aet_sign_paper_claim () =
  (* paper Section IV: the negative AET sign produces very short AET
     solutions with lower T100 *)
  let wl = Testlib.small_workload () in
  let run sign =
    let weights =
      Objective.with_aet_sign sign (Objective.make_weights ~alpha:0.4 ~beta:0.3)
    in
    let o = Slrh.run (Slrh.default_params weights) wl in
    (Schedule.n_primary o.Slrh.schedule, Schedule.aet o.Slrh.schedule)
  in
  let t100_reward, aet_reward = run Objective.Reward in
  let t100_penalise, aet_penalise = run Objective.Penalise in
  Alcotest.(check bool) "penalise -> shorter AET" true (aet_penalise < aet_reward);
  Alcotest.(check bool) "penalise -> no more primaries" true
    (t100_penalise <= t100_reward)

let test_aet_sign_value () =
  let w = Objective.with_aet_sign Objective.Penalise w331 in
  let v =
    Objective.value w ~t100:0 ~n_tasks:10 ~tec:0. ~tse:1. ~aet:500 ~tau:1000
  in
  Testlib.close "negative aet term" (-0.15) v

let test_parallel_scoring_identical () =
  (* the paper's parallel-hardware note: fanning candidate scoring over
     domains must not change the result in any way *)
  let wl = Testlib.small_workload () in
  let weights = Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  let run parallel_scoring =
    let params = { (Slrh.default_params weights) with Slrh.parallel_scoring } in
    let o = Slrh.run params wl in
    ( Schedule.n_primary o.Slrh.schedule,
      Schedule.aet o.Slrh.schedule,
      Schedule.tec o.Slrh.schedule )
  in
  let t_seq, aet_seq, tec_seq = run None in
  let t_par, aet_par, tec_par = run (Some 3) in
  Alcotest.(check int) "same T100" t_seq t_par;
  Alcotest.(check int) "same AET" aet_seq aet_par;
  Testlib.close "same TEC" tec_seq tec_par

let test_machine_order_variants_validate () =
  let wl = Testlib.small_workload () in
  let weights = Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  List.iter
    (fun order ->
      let params =
        { (Slrh.default_params weights) with Slrh.machine_order = order }
      in
      let o = Slrh.run params wl in
      let r = Validate.check o.Slrh.schedule in
      Alcotest.(check (list string))
        (Slrh.machine_order_to_string order ^ " valid")
        [] r.Validate.violations;
      Alcotest.(check bool) "completed" true o.Slrh.completed)
    [ Slrh.Numerical; Slrh.Fast_first; Slrh.Most_energy_first ]

(* ---- feasibility ---- *)

let test_feasibility_pool_root_only () =
  let s = Schedule.create (Testlib.diamond_workload ()) in
  Alcotest.(check (list int)) "root only" [ 0 ] (Feasibility.candidate_pool s ~machine:0)

let test_feasibility_energy_gate () =
  (* battery too small for even the secondary: pool empty *)
  let spec = { (Testlib.diamond_spec ()) with Spec.battery_scale = 1e-6 } in
  let wl =
    Workload.build spec ~etc:(Testlib.diamond_etc ()) ~dag:(Testlib.diamond_dag ())
      ~data_bits:(Testlib.diamond_data ()) ~etc_index:0 ~dag_index:0
      ~case:Agrid_platform.Grid.A
  in
  let s = Schedule.create wl in
  Alcotest.(check (list int)) "empty pool" [] (Feasibility.candidate_pool s ~machine:0)

let test_feasibility_required_energy () =
  let s = Schedule.create (Testlib.diamond_workload ()) in
  (* task 0 secondary on machine 0: exec 10 cycles = 1s * 0.1 = 0.1;
     worst-case comm: children volumes 1e5 bits each (secondary), worst link
     4 Mb/s -> 0.025 s -> 1 cycle = 0.1 s * 0.2 = 0.02 each, 0.04 total *)
  Testlib.close "required" 0.14
    (Feasibility.required_energy s ~task:0 ~machine:0 ~version:Version.Secondary);
  Testlib.close "optimistic skips comm" 0.1
    (Feasibility.required_energy ~mode:Feasibility.Optimistic s ~task:0 ~machine:0
       ~version:Version.Secondary)

let test_feasibility_conservative_stricter () =
  let s = Schedule.create (Testlib.diamond_workload ()) in
  for task = 0 to 3 do
    for machine = 0 to 3 do
      List.iter
        (fun version ->
          let c = Feasibility.required_energy s ~task ~machine ~version in
          let o =
            Feasibility.required_energy ~mode:Feasibility.Optimistic s ~task ~machine
              ~version
          in
          if c < o then Alcotest.fail "conservative below optimistic")
        Version.all
    done
  done

(* ---- SLRH ---- *)

(* A weight point verified to complete feasibly at this scale for all three
   cases (the paper tunes (alpha, beta) per scenario; tests just need one
   completing point). *)
let default_weights = Objective.make_weights ~alpha:0.3 ~beta:0.3

let run_slrh ?(variant = Slrh.V1) ?(case = Agrid_platform.Grid.A) ?seed () =
  let wl = Testlib.small_workload ?seed ~case () in
  let params = { (Slrh.default_params ~variant default_weights) with Slrh.delta_t = 10 } in
  (Slrh.run params wl, wl)

let test_slrh1_completes_and_validates () =
  let o, _ = run_slrh () in
  Alcotest.(check bool) "completed" true o.Slrh.completed;
  let r = Validate.check o.Slrh.schedule in
  Alcotest.(check (list string)) "no violations" [] r.Validate.violations;
  Alcotest.(check bool) "complete" true r.Validate.complete

let test_slrh3_completes_and_validates () =
  let o, _ = run_slrh ~variant:Slrh.V3 () in
  Alcotest.(check bool) "completed" true o.Slrh.completed;
  let r = Validate.check o.Slrh.schedule in
  Alcotest.(check (list string)) "no violations" [] r.Validate.violations

let test_slrh2_runs () =
  (* SLRH-2 need not produce feasible results (the paper dropped it), but it
     must terminate and produce a structurally valid partial schedule *)
  let o, _ = run_slrh ~variant:Slrh.V2 () in
  let r = Validate.check o.Slrh.schedule in
  Alcotest.(check (list string)) "structurally valid" [] r.Validate.violations

let test_slrh_deterministic () =
  let o1, _ = run_slrh () and o2, _ = run_slrh () in
  Alcotest.(check int) "same t100" (Schedule.n_primary o1.Slrh.schedule)
    (Schedule.n_primary o2.Slrh.schedule);
  Alcotest.(check int) "same aet" (Schedule.aet o1.Slrh.schedule)
    (Schedule.aet o2.Slrh.schedule)

let test_slrh_all_cases () =
  List.iter
    (fun case ->
      let o, _ = run_slrh ~case () in
      Alcotest.(check bool)
        (Agrid_platform.Grid.case_name case ^ " completed")
        true o.Slrh.completed;
      let r = Validate.check o.Slrh.schedule in
      Alcotest.(check (list string)) "valid" [] r.Validate.violations)
    Agrid_platform.Grid.all_cases

let test_slrh_respects_horizon_start () =
  (* every execution must start no earlier than the timestep that mapped it
     would allow; weaker invariant testable post-hoc: starts within clock
     progression means start <= final clock + horizon *)
  let o, _ = run_slrh () in
  let params_horizon = 100 in
  Array.iter
    (fun (p : Schedule.placement) ->
      if p.Schedule.start > o.Slrh.final_clock + params_horizon then
        Alcotest.failf "task %d starts at %d, beyond final clock %d + H" p.Schedule.task
          p.Schedule.start o.Slrh.final_clock)
    (Schedule.placements o.Slrh.schedule)

let test_slrh_stats_consistent () =
  let o, wl = run_slrh () in
  Alcotest.(check int) "assignments = tasks" (Workload.n_tasks wl)
    o.Slrh.stats.Slrh.assignments;
  Alcotest.(check bool) "attempted >= assigned" true
    (o.Slrh.stats.Slrh.plans_attempted >= o.Slrh.stats.Slrh.assignments);
  Alcotest.(check bool) "wall time recorded" true (o.Slrh.wall_seconds >= 0.)

let test_slrh_param_validation () =
  let wl = Testlib.diamond_workload () in
  Alcotest.check_raises "delta_t" (Invalid_argument "Slrh: delta_t must be positive")
    (fun () ->
      ignore
        (Slrh.run { (Slrh.default_params default_weights) with Slrh.delta_t = 0 } wl))

let test_slrh_infeasible_stops_at_tau () =
  (* unreachable energy: nothing can ever be mapped; the clock must sweep to
     tau and stop *)
  let spec = { (Testlib.diamond_spec ()) with Spec.battery_scale = 1e-9 } in
  let wl =
    Workload.build spec ~etc:(Testlib.diamond_etc ()) ~dag:(Testlib.diamond_dag ())
      ~data_bits:(Testlib.diamond_data ()) ~etc_index:0 ~dag_index:0
      ~case:Agrid_platform.Grid.A
  in
  let o = Slrh.run (Slrh.default_params default_weights) wl in
  Alcotest.(check bool) "not completed" false o.Slrh.completed;
  Alcotest.(check int) "no assignments" 0 o.Slrh.stats.Slrh.assignments;
  Alcotest.(check bool) "clock passed tau" true (o.Slrh.final_clock > Workload.tau wl)

(* ---- upper bound ---- *)

let test_min_ratio_reference () =
  let etc = Testlib.diamond_etc () in
  Testlib.close "MR(0)=1" 1. (Upper_bound.min_ratio etc ~machine:0);
  (* machine 1 ratios: 1.2, 0.9, 1.1, 16/14 -> min 0.9 *)
  Testlib.close "MR(1)" 0.9 (Upper_bound.min_ratio etc ~machine:1);
  (* machine 2 ratios: 10, 10, 280/30, 150/14 -> min 280/30 *)
  Testlib.close "MR(2)" (280. /. 30.) (Upper_bound.min_ratio etc ~machine:2)

let test_upper_bound_all_fit () =
  let etc = Testlib.diamond_etc () in
  let grid = Agrid_platform.Grid.of_case Agrid_platform.Grid.A in
  let r = Upper_bound.compute ~etc ~grid ~tau_seconds:2000. in
  Alcotest.(check int) "all four" 4 r.Upper_bound.t100_bound;
  Alcotest.(check bool) "complete" true (r.Upper_bound.limiting = `Complete)

let test_upper_bound_cycle_limited () =
  let etc = Testlib.diamond_etc () in
  let grid = Agrid_platform.Grid.of_case Agrid_platform.Grid.A in
  (* tau tiny: equivalent cycles run out. Min-energy placements are slow
     machines (0.1 u vs 1.0 u), cycles ETC/MR ~ 100/9.33 = 10.7 s each *)
  let r = Upper_bound.compute ~etc ~grid ~tau_seconds:8. in
  Alcotest.(check bool) "fewer than 4" true (r.Upper_bound.t100_bound < 4);
  Alcotest.(check bool) "cycles limit" true (r.Upper_bound.limiting = `Cycles)

let test_upper_bound_energy_limited () =
  let etc = Testlib.diamond_etc () in
  let grid = Agrid_platform.Grid.of_case ~battery_scale:1e-4 Agrid_platform.Grid.A in
  let r = Upper_bound.compute ~etc ~grid ~tau_seconds:2000. in
  Alcotest.(check bool) "energy limit" true (r.Upper_bound.limiting = `Energy);
  Alcotest.(check bool) "bound reduced" true (r.Upper_bound.t100_bound < 4)

let test_upper_bound_dominates_heuristics () =
  (* soundness: no heuristic may beat the upper bound *)
  List.iter
    (fun case ->
      let wl = Testlib.small_workload ~case () in
      let r =
        Upper_bound.compute ~etc:(Workload.etc wl) ~grid:(Workload.grid wl)
          ~tau_seconds:(Workload.spec wl).Spec.tau_seconds
      in
      let o = Slrh.run (Slrh.default_params default_weights) wl in
      if Schedule.n_primary o.Slrh.schedule > r.Upper_bound.t100_bound then
        Alcotest.failf "%s: T100 %d beats bound %d"
          (Agrid_platform.Grid.case_name case)
          (Schedule.n_primary o.Slrh.schedule)
          r.Upper_bound.t100_bound)
    Agrid_platform.Grid.all_cases

(* integration property: over random small workloads (random seed, size,
   case, weights), every SLRH run yields a structurally valid schedule that
   never beats the equivalent-computing-cycles upper bound *)
let test_qcheck_random_scenarios_sound () =
  let gen =
    QCheck2.Gen.(
      let* seed = int_range 0 5_000 in
      let* n = int_range 12 40 in
      let* case_ix = int_range 0 2 in
      let* alpha10 = int_range 0 10 in
      let* beta10 = int_range 0 (10 - alpha10) in
      let* variant_ix = int_range 0 2 in
      return (seed, n, case_ix, alpha10, beta10, variant_ix))
  in
  let prop (seed, n, case_ix, alpha10, beta10, variant_ix) =
    let spec =
      Spec.scaled ~seed ~factor:(float_of_int n /. 1024.) ()
    in
    let case = List.nth Agrid_platform.Grid.all_cases case_ix in
    let wl = Workload.build spec ~etc_index:0 ~dag_index:0 ~case in
    let weights =
      Objective.make_weights
        ~alpha:(float_of_int alpha10 /. 10.)
        ~beta:(float_of_int beta10 /. 10.)
    in
    let variant = List.nth [ Slrh.V1; Slrh.V2; Slrh.V3 ] variant_ix in
    let o = Slrh.run (Slrh.default_params ~variant weights) wl in
    let r = Validate.check o.Slrh.schedule in
    let ub =
      Upper_bound.compute ~etc:(Workload.etc wl) ~grid:(Workload.grid wl)
        ~tau_seconds:(Workload.spec wl).Spec.tau_seconds
    in
    r.Validate.violations = [] && r.Validate.t100 <= ub.Upper_bound.t100_bound
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:50 ~name:"random scenarios: valid and below UB" gen prop)

(* ---- flat SoA pool arena ---- *)

let test_flat_create () =
  let wl = Testlib.small_workload () in
  let a =
    Pool.Flat.create ~feas_mode:Feasibility.Conservative ~reuse_pools:true wl
  in
  Alcotest.(check int) "one row per machine" (Workload.n_machines wl)
    (Array.length a.Pool.Flat.rows);
  Alcotest.(check int) "default capacity" Pool.Flat.default_capacity
    (Pool.Flat.capacity a);
  Alcotest.(check int) "no regrowth yet" 0 (Pool.Flat.regrown a);
  Alcotest.(check int) "hwm starts at 0" 0 (Pool.Flat.hwm a);
  Array.iter
    (fun r ->
      Alcotest.(check int) "row epoch unbuilt" (-1) r.Pool.Flat.epoch;
      Alcotest.(check int) "row count 0" 0 r.Pool.Flat.count)
    a.Pool.Flat.rows;
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Pool.Flat.create: initial capacity must be positive")
    (fun () ->
      ignore
        (Pool.Flat.create ~initial_capacity:0
           ~feas_mode:Feasibility.Conservative ~reuse_pools:true wl))

(* The regrowth contract the SoA hot path leans on: growth is geometric,
   allocates FRESH arrays (never a copy of stale slots), resets the live
   count, and bumps the regrown counter and capacity gauge — while a
   request under capacity touches nothing and returns the same buffer. *)
let test_flat_regrowth () =
  let wl = Testlib.small_workload () in
  let a =
    Pool.Flat.create ~initial_capacity:2 ~feas_mode:Feasibility.Conservative
      ~reuse_pools:true wl
  in
  let row = a.Pool.Flat.rows.(0) in
  let buf0 = Pool.Flat.ensure a row 2 in
  Alcotest.(check bool) "under capacity: same buffer" true
    (buf0 == row.Pool.Flat.tasks);
  Alcotest.(check int) "under capacity: no regrowth" 0 (Pool.Flat.regrown a);
  row.Pool.Flat.count <- 2;
  let v0 = row.Pool.Flat.versions and s0 = row.Pool.Flat.scores in
  let buf1 = Pool.Flat.ensure a row 5 in
  Alcotest.(check int) "geometric: 2 -> 8" 8 (Array.length buf1);
  Alcotest.(check bool) "fresh tasks array" true (buf0 != buf1);
  Alcotest.(check bool) "fresh versions array" true (v0 != row.Pool.Flat.versions);
  Alcotest.(check bool) "fresh scores array" true (s0 != row.Pool.Flat.scores);
  Alcotest.(check int) "count reset on regrowth" 0 row.Pool.Flat.count;
  Alcotest.(check int) "one regrowth event" 1 (Pool.Flat.regrown a);
  Alcotest.(check int) "capacity gauge follows" 8 (Pool.Flat.capacity a);
  let buf2 = Pool.Flat.ensure a row 8 in
  Alcotest.(check bool) "fit request: same buffer" true (buf1 == buf2);
  Alcotest.(check int) "fit request: no event" 1 (Pool.Flat.regrown a);
  (* a second row regrowing to a smaller size must not shrink the gauge *)
  ignore (Pool.Flat.ensure a a.Pool.Flat.rows.(1) 3);
  Alcotest.(check int) "capacity gauge is a max" 8 (Pool.Flat.capacity a)

let test_flat_occupancy_and_fill () =
  let wl = Testlib.small_workload () in
  let a =
    Pool.Flat.create ~initial_capacity:2 ~feas_mode:Feasibility.Conservative
      ~reuse_pools:false wl
  in
  Pool.Flat.note_occupancy a 7;
  Pool.Flat.note_occupancy a 3;
  Alcotest.(check int) "hwm is a max" 7 (Pool.Flat.hwm a);
  let row = a.Pool.Flat.rows.(0) in
  Pool.Flat.fill_from_list a row [ 4; 1; 9 ];
  Alcotest.(check int) "fill sets count" 3 row.Pool.Flat.count;
  Alcotest.(check (list int)) "fill keeps order" [ 4; 1; 9 ]
    (Array.to_list (Array.sub row.Pool.Flat.tasks 0 3));
  Pool.Flat.fill_from_list a row (List.init 9 (fun i -> i));
  Alcotest.(check int) "fill regrows" 9 row.Pool.Flat.count;
  Alcotest.(check int) "hwm tracks fills" 9 (Pool.Flat.hwm a)

(* Pool.Flat.sort writes the boxed comparator's order — (score desc,
   task asc) — as a permutation, leaving the rows in fill order. *)
let test_flat_sort_matches_list_sort () =
  let wl = Testlib.small_workload () in
  let a =
    Pool.Flat.create ~feas_mode:Feasibility.Conservative ~reuse_pools:true wl
  in
  let row = a.Pool.Flat.rows.(0) in
  let tasks = [| 5; 2; 9; 7; 3; 8 |] in
  let scores = [| 0.25; 0.5; 0.25; -0.125; 0.5; 0.25 |] in
  let n = Array.length tasks in
  ignore (Pool.Flat.ensure a row n);
  Array.blit tasks 0 row.Pool.Flat.tasks 0 n;
  Array.blit scores 0 row.Pool.Flat.scores 0 n;
  Pool.Flat.sort a row n;
  let got =
    List.init n (fun i -> row.Pool.Flat.tasks.(a.Pool.Flat.order.(i)))
  in
  let expected =
    List.init n (fun i -> (tasks.(i), scores.(i)))
    |> List.sort (fun (t1, s1) (t2, s2) ->
           match Float.compare s2 s1 with 0 -> compare t1 t2 | c -> c)
    |> List.map fst
  in
  Alcotest.(check (list int)) "permutation = List.sort order" expected got;
  Alcotest.(check (list int)) "rows keep fill order" (Array.to_list tasks)
    (Array.to_list (Array.sub row.Pool.Flat.tasks 0 n))

let test_upper_bound_monotone_in_tau () =
  let etc = Testlib.diamond_etc () in
  let grid = Agrid_platform.Grid.of_case Agrid_platform.Grid.A in
  let b t = (Upper_bound.compute ~etc ~grid ~tau_seconds:t).Upper_bound.t100_bound in
  Alcotest.(check bool) "monotone" true (b 5. <= b 50. && b 50. <= b 500.)

let suites =
  [
    ( "core",
      [
        Alcotest.test_case "weights construction" `Quick test_weights_construction;
        Alcotest.test_case "weights exact" `Quick test_weights_exact;
        Alcotest.test_case "objective formula" `Quick test_objective_formula;
        Alcotest.test_case "objective monotonicity" `Quick test_objective_monotonicity;
        Alcotest.test_case "objective bounded (qcheck)" `Quick test_objective_bounded;
        Alcotest.test_case "estimate = exact for root" `Quick test_estimate_vs_after_plan;
        Alcotest.test_case "best version default" `Quick
          test_best_version_prefers_primary_when_cheap;
        Alcotest.test_case "best version beta-dominant" `Quick
          test_best_version_beta_dominant;
        Alcotest.test_case "AET sign paper claim" `Quick test_aet_sign_paper_claim;
        Alcotest.test_case "AET sign value" `Quick test_aet_sign_value;
        Alcotest.test_case "machine order variants" `Quick
          test_machine_order_variants_validate;
        Alcotest.test_case "parallel scoring identical" `Quick
          test_parallel_scoring_identical;
        Alcotest.test_case "pool: root only" `Quick test_feasibility_pool_root_only;
        Alcotest.test_case "pool: energy gate" `Quick test_feasibility_energy_gate;
        Alcotest.test_case "required energy" `Quick test_feasibility_required_energy;
        Alcotest.test_case "conservative >= optimistic" `Quick
          test_feasibility_conservative_stricter;
        Alcotest.test_case "SLRH-1 completes+validates" `Quick
          test_slrh1_completes_and_validates;
        Alcotest.test_case "SLRH-3 completes+validates" `Quick
          test_slrh3_completes_and_validates;
        Alcotest.test_case "SLRH-2 structurally valid" `Quick test_slrh2_runs;
        Alcotest.test_case "SLRH deterministic" `Quick test_slrh_deterministic;
        Alcotest.test_case "SLRH all cases" `Quick test_slrh_all_cases;
        Alcotest.test_case "SLRH horizon discipline" `Quick test_slrh_respects_horizon_start;
        Alcotest.test_case "SLRH stats consistent" `Quick test_slrh_stats_consistent;
        Alcotest.test_case "SLRH param validation" `Quick test_slrh_param_validation;
        Alcotest.test_case "SLRH infeasible stops at tau" `Quick
          test_slrh_infeasible_stops_at_tau;
        Alcotest.test_case "min ratio reference" `Quick test_min_ratio_reference;
        Alcotest.test_case "upper bound: all fit" `Quick test_upper_bound_all_fit;
        Alcotest.test_case "upper bound: cycle-limited" `Quick
          test_upper_bound_cycle_limited;
        Alcotest.test_case "upper bound: energy-limited" `Quick
          test_upper_bound_energy_limited;
        Alcotest.test_case "upper bound dominates heuristics" `Quick
          test_upper_bound_dominates_heuristics;
        Alcotest.test_case "flat arena construction" `Quick test_flat_create;
        Alcotest.test_case "flat arena regrowth: fresh arrays, geometric"
          `Quick test_flat_regrowth;
        Alcotest.test_case "flat arena occupancy + boxed fill" `Quick
          test_flat_occupancy_and_fill;
        Alcotest.test_case "flat sort permutation = List.sort order" `Quick
          test_flat_sort_matches_list_sort;
        Alcotest.test_case "upper bound monotone in tau" `Quick
          test_upper_bound_monotone_in_tau;
        Alcotest.test_case "qcheck random scenarios sound" `Slow
          test_qcheck_random_scenarios_sound;
      ] );
  ]
