(* Property-based invariant suite (no external fuzzer: scenarios are
   drawn from the in-tree Splitmix64 generator, so every failure is
   reproducible from its scenario index alone).

   Each scenario is a random small grid/DAG/weight configuration run
   through the full SLRH loop; the properties are the paper's structural
   contracts, checked on the raw placement/transfer arrays by
   [Validate.check] rather than trusted from the scheduler's own
   counters:

   - no subtask starts before its parents finish (and cross-machine
     parents ship their data first);
   - no machine's energy ledger ever goes negative;
   - a run reported complete-and-timely has AET <= tau;
   - T100 + T10 + unmapped partitions the task set exactly;
   - scaling every battery up never lowers T100 on the same seed
     (monotonicity of the feasibility filter in available energy). *)

open Agrid_core
open Agrid_sched
open Agrid_workload
module Rng = Agrid_prng.Splitmix64

type scenario = {
  sc_index : int;
  sc_seed : int;  (** workload spec seed *)
  sc_case : Agrid_platform.Grid.case;
  sc_etc : int;
  sc_dag : int;
  sc_alpha : float;
  sc_beta : float;
  sc_variant : Slrh.variant;
  sc_delta_t : int;
  sc_horizon : int;
}

let pick rng l = List.nth l (Rng.next_int rng (List.length l))

(* Derive every scenario from its index so a failing case can be re-run
   in isolation. *)
let scenario i =
  let rng = Rng.of_int (0x9703 + (i * 7919)) in
  let alpha = 0.05 +. (0.9 *. Rng.next_unit_float rng) in
  let beta = (1. -. alpha) *. Rng.next_unit_float rng in
  {
    sc_index = i;
    sc_seed = 100 + Rng.next_int rng 10_000;
    sc_case = pick rng [ Agrid_platform.Grid.A; Agrid_platform.Grid.B; Agrid_platform.Grid.C ];
    sc_etc = Rng.next_int rng 3;
    sc_dag = Rng.next_int rng 3;
    sc_alpha = alpha;
    sc_beta = Float.max 0.01 beta;
    sc_variant = pick rng [ Slrh.V1; Slrh.V1; Slrh.V2; Slrh.V3 ];
    sc_delta_t = pick rng [ 5; 10; 20 ];
    sc_horizon = pick rng [ 50; 100; 200 ];
  }

let workload ?battery_scale sc =
  let spec = Testlib.small_spec ~seed:sc.sc_seed () in
  let spec =
    match battery_scale with
    | None -> spec
    | Some s -> { spec with Spec.battery_scale = s *. spec.Spec.battery_scale }
  in
  Workload.build spec ~etc_index:sc.sc_etc ~dag_index:sc.sc_dag ~case:sc.sc_case

let params sc =
  let weights = Objective.make_weights ~alpha:sc.sc_alpha ~beta:sc.sc_beta in
  {
    (Slrh.default_params ~variant:sc.sc_variant weights) with
    Slrh.delta_t = sc.sc_delta_t;
    horizon = sc.sc_horizon;
  }

let describe sc =
  let case =
    match sc.sc_case with
    | Agrid_platform.Grid.A -> "A"
    | Agrid_platform.Grid.B -> "B"
    | Agrid_platform.Grid.C -> "C"
  in
  Fmt.str
    "scenario %d (seed %d, case %s, etc %d, dag %d, a=%.3f b=%.3f, dt=%d H=%d)"
    sc.sc_index sc.sc_seed case sc.sc_etc sc.sc_dag sc.sc_alpha sc.sc_beta
    sc.sc_delta_t sc.sc_horizon

(* One scenario, all per-run invariants. *)
let check_invariants sc =
  let wl = workload sc in
  let o = Slrh.run (params sc) wl in
  let sched = o.Slrh.schedule in
  let r = Validate.check sched in
  (* structural: precedence (parents before children, transfers in
     between), no exec or channel overlap — rebuilt from raw placements *)
  (match r.Validate.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: structural violation: %s" (describe sc) v);
  (* energy: the paper's filter only guarantees that the SECONDARY
     version of each candidate fits the battery remaining at admission
     time — committing the primary version, or child-communication
     charged to the source machine after later placements, may overdraw
     (the churn suite tolerates this explicitly). What must always hold
     is ledger consistency: the schedule's per-machine energy account
     equals execution plus outgoing transfer energy recomputed from the
     raw placement and transfer arrays, and [Validate.energy_ok] is
     exactly the "no battery overdrawn" predicate over that account. *)
  let n_machines = Workload.n_machines wl in
  let recomputed = Array.make n_machines 0. in
  for task = 0 to Workload.n_tasks wl - 1 do
    match Schedule.placement sched task with
    | None -> ()
    | Some p ->
        recomputed.(p.Schedule.machine) <-
          recomputed.(p.Schedule.machine)
          +. Workload.exec_energy wl ~task ~machine:p.Schedule.machine
               ~version:p.Schedule.version
  done;
  Array.iter
    (fun (tr : Schedule.transfer) ->
      recomputed.(tr.Schedule.src) <-
        recomputed.(tr.Schedule.src) +. tr.Schedule.energy)
    (Schedule.transfers sched);
  let overdrawn = ref false in
  for j = 0 to n_machines - 1 do
    let used = Schedule.energy_used sched j in
    let battery = Schedule.energy_remaining sched j +. used in
    Testlib.close_rel ~rel:1e-9
      (Fmt.str "%s: machine %d energy ledger" (describe sc) j)
      recomputed.(j) used;
    if used > battery +. (1e-9 *. battery) then overdrawn := true
  done;
  Alcotest.(check bool)
    (describe sc ^ ": energy_ok = no battery overdrawn")
    (not !overdrawn) r.Validate.energy_ok;
  (* deadline: completed-and-timely implies AET <= tau *)
  if o.Slrh.completed && r.Validate.time_ok then
    Alcotest.(check bool)
      (describe sc ^ ": AET <= tau")
      true
      (Schedule.aet sched <= Workload.tau wl);
  if Validate.feasible r && Schedule.aet sched > Workload.tau wl then
    Alcotest.failf "%s: feasible report but AET %d > tau %d" (describe sc)
      (Schedule.aet sched) (Workload.tau wl);
  (* partition: T100 + T10 + unmapped = |T|, recounted from placements *)
  let t100 = ref 0 and t10 = ref 0 and unmapped = ref 0 in
  for task = 0 to Workload.n_tasks wl - 1 do
    match Schedule.placement sched task with
    | None -> incr unmapped
    | Some p -> (
        match p.Schedule.version with
        | Version.Primary -> incr t100
        | Version.Secondary -> incr t10)
  done;
  Alcotest.(check int)
    (describe sc ^ ": T100+T10+unmapped = |T|")
    (Workload.n_tasks wl)
    (!t100 + !t10 + !unmapped);
  Alcotest.(check int)
    (describe sc ^ ": T100 recount matches Schedule.n_primary")
    (Schedule.n_primary sched) !t100;
  if o.Slrh.completed && !unmapped > 0 then
    Alcotest.failf "%s: completed run left %d tasks unmapped" (describe sc)
      !unmapped;
  if o.Slrh.completed <> Schedule.all_mapped sched then
    Alcotest.failf "%s: completed flag disagrees with the placement array"
      (describe sc)

let test_invariants () =
  for i = 0 to 59 do
    check_invariants (scenario i)
  done

(* Monotonicity: doubling every battery can only relax the secondary
   energy bound, so on the same seed and weights the number of primary
   versions mapped never drops. *)
let test_battery_monotonicity () =
  for i = 0 to 29 do
    let sc = scenario i in
    let run scale =
      let o = Slrh.run (params sc) (workload ?battery_scale:scale sc) in
      Schedule.n_primary o.Slrh.schedule
    in
    let base = run None and doubled = run (Some 2.0) in
    if doubled < base then
      Alcotest.failf "%s: doubling batteries lowered T100 (%d -> %d)"
        (describe sc) base doubled
  done

let suites =
  [
    ( "props",
      [
        Alcotest.test_case "slrh invariants over 60 random scenarios" `Slow
          test_invariants;
        Alcotest.test_case "battery monotonicity over 30 scenarios" `Slow
          test_battery_monotonicity;
      ] );
  ]
