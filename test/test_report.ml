open Agrid_report

(* ---- gantt ---- *)

let test_gantt_renders_lanes () =
  let g =
    Gantt.make ~title:"g"
      [
        Gantt.lane ~name:"m0" [ (0, 50, 'P'); (60, 100, 's') ];
        Gantt.lane ~name:"m1 out" [ (10, 20, 'x') ];
      ]
  in
  let s = Gantt.to_string ~width:20 g in
  Alcotest.(check bool) "title" true (Testlib.contains s "g");
  Alcotest.(check bool) "lane names" true
    (Testlib.contains s "m0" && Testlib.contains s "m1 out");
  Alcotest.(check bool) "primary glyph" true (Testlib.contains s "P");
  Alcotest.(check bool) "secondary glyph" true (Testlib.contains s "s");
  Alcotest.(check bool) "transfer glyph" true (Testlib.contains s "x");
  Alcotest.(check bool) "t_max shown" true (Testlib.contains s "100")

let test_gantt_idle_cells () =
  let g = Gantt.make ~title:"idle" [ Gantt.lane ~name:"m" [ (90, 100, 'P') ] ] in
  let s = Gantt.to_string ~width:10 g in
  Alcotest.(check bool) "leading idle dots" true (Testlib.contains s "........")

let test_gantt_empty_lane () =
  let g = Gantt.make ~title:"e" [ Gantt.lane ~name:"m" [] ] in
  let s = Gantt.to_string ~width:8 g in
  Alcotest.(check bool) "all idle" true (Testlib.contains s "........")

(* ---- csv ---- *)

let test_csv_plain () =
  let s = Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "plain" "a,b\n1,2\n3,4\n" s

let test_csv_quoting () =
  let s = Csv.to_string ~header:[ "x" ] [ [ "has,comma" ]; [ "has\"quote" ]; [ "multi\nline" ] ] in
  Alcotest.(check bool) "comma quoted" true (Testlib.contains s "\"has,comma\"");
  Alcotest.(check bool) "quote doubled" true (Testlib.contains s "\"has\"\"quote\"");
  Alcotest.(check bool) "newline quoted" true (Testlib.contains s "\"multi\nline\"")

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "agrid_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path ~header:[ "h" ] [ [ "v1" ]; [ "v2" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file content" "h\nv1\nv2\n" content)

(* ---- trace ---- *)

open Agrid_core

let traced_run () =
  let tracer = Trace.create () in
  let weights = Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  let params = { (Slrh.default_params weights) with Slrh.tracer = Some tracer } in
  let o = Slrh.run params (Testlib.small_workload ()) in
  (tracer, o)

let test_trace_counts_assignments () =
  let tracer, o = traced_run () in
  let s = Trace.summarize tracer in
  Alcotest.(check int) "assigned = mapped"
    (Agrid_sched.Schedule.n_mapped o.Slrh.schedule)
    s.Trace.n_assigned;
  Alcotest.(check bool) "events >= assignments" true
    (Trace.length tracer >= s.Trace.n_assigned)

let test_trace_events_chronological_clocks () =
  let tracer, _ = traced_run () in
  let events = Trace.events tracer in
  let ok = ref true in
  for i = 1 to Array.length events - 1 do
    if events.(i).Trace.clock < events.(i - 1).Trace.clock then ok := false
  done;
  Alcotest.(check bool) "clocks nondecreasing" true !ok

let test_trace_csv_shape () =
  let tracer, _ = traced_run () in
  let rows = Trace.csv_rows tracer in
  Alcotest.(check int) "one row per event" (Trace.length tracer) (List.length rows);
  let width = List.length Trace.csv_header in
  List.iter
    (fun row -> Alcotest.(check int) "row width" width (List.length row))
    rows

let test_trace_csv_roundtrip () =
  (* export -> re-import recovers every event; floats to the writer's
     %.6f precision *)
  let tracer, _ = traced_run () in
  (* make sure all three event kinds are exercised, even if the run
     happened not to produce the rare ones *)
  Trace.record tracer ~clock:9999 ~machine:2 Trace.Pool_empty;
  Trace.record tracer ~clock:9999 ~machine:3 (Trace.Horizon_miss { pool_size = 4 });
  let back = Trace.of_csv_rows (Trace.csv_rows tracer) in
  Alcotest.(check int) "length preserved" (Trace.length tracer) (Trace.length back);
  let orig = Trace.events tracer and got = Trace.events back in
  Array.iteri
    (fun i (e : Trace.event) ->
      let g = got.(i) in
      Alcotest.(check int) "clock" e.Trace.clock g.Trace.clock;
      Alcotest.(check int) "machine" e.Trace.machine g.Trace.machine;
      match (e.Trace.kind, g.Trace.kind) with
      | Trace.Pool_empty, Trace.Pool_empty -> ()
      | Trace.Horizon_miss a, Trace.Horizon_miss b ->
          Alcotest.(check int) "pool size" a.pool_size b.pool_size
      | Trace.Assigned a, Trace.Assigned b ->
          Alcotest.(check int) "task" a.task b.task;
          Alcotest.(check bool) "version" true
            (Agrid_workload.Version.equal a.version b.version);
          Alcotest.(check int) "start" a.start b.start;
          Alcotest.(check int) "stop" a.stop b.stop;
          Alcotest.(check int) "pool size" a.pool_size b.pool_size;
          Testlib.close ~eps:1e-6 "score" a.score b.score;
          Testlib.close ~eps:1e-6 "energy" a.energy_remaining b.energy_remaining
      | _ -> Alcotest.failf "event %d: kind changed across round-trip" i)
    orig;
  (* both recorded kinds survived *)
  let s = Trace.summarize back in
  Alcotest.(check bool) "pool_empty kept" true (s.Trace.n_pool_empty >= 1);
  Alcotest.(check bool) "horizon_miss kept" true (s.Trace.n_horizon_miss >= 1)

let test_trace_of_csv_rejects_malformed () =
  Alcotest.(check bool) "short row raises" true
    (try
       ignore (Trace.of_csv_rows [ [ "1"; "2"; "assigned" ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown event raises" true
    (try
       ignore
         (Trace.of_csv_rows
            [ [ "1"; "2"; "exploded"; ""; ""; ""; ""; ""; "0"; "" ] ]);
       false
     with Invalid_argument _ -> true)

let test_trace_no_tracer_is_silent () =
  (* paranoid: running without a tracer must not fail and params default
     has tracer = None *)
  let weights = Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  Alcotest.(check bool) "default tracer none" true
    ((Slrh.default_params weights).Slrh.tracer = None)

let test_trace_summary_empty () =
  let t = Trace.create () in
  let s = Trace.summarize t in
  Alcotest.(check int) "no events" 0 s.Trace.n_assigned;
  Alcotest.(check (option int)) "no first" None s.Trace.first_assignment_clock

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "gantt renders lanes" `Quick test_gantt_renders_lanes;
        Alcotest.test_case "gantt idle cells" `Quick test_gantt_idle_cells;
        Alcotest.test_case "gantt empty lane" `Quick test_gantt_empty_lane;
        Alcotest.test_case "csv plain" `Quick test_csv_plain;
        Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
        Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
        Alcotest.test_case "trace counts assignments" `Quick test_trace_counts_assignments;
        Alcotest.test_case "trace chronological" `Quick test_trace_events_chronological_clocks;
        Alcotest.test_case "trace csv shape" `Quick test_trace_csv_shape;
        Alcotest.test_case "trace csv roundtrip" `Quick test_trace_csv_roundtrip;
        Alcotest.test_case "trace csv malformed" `Quick test_trace_of_csv_rejects_malformed;
        Alcotest.test_case "no tracer silent" `Quick test_trace_no_tracer_is_silent;
        Alcotest.test_case "trace empty summary" `Quick test_trace_summary_empty;
      ] );
  ]
