(* Online dual ascent tests: the Dual step machinery (schedule shape,
   projection, validation), the Acklam normal quantile against the
   erfc-based CDF in Agrid_stats, the chance-margin degeneracies that the
   feasibility layer's bit-identity relies on, the Adapt controller's
   spec validation and weight mapping, the Multiplier ledger entry
   (round trip + explain), and the acceptance property from ISSUE 7:
   multipliers seeded off-optimum recover to within 5% of the
   offline-swept optimum on Cases A, B and C. *)

open Agrid_core
open Agrid_obs
module Dual = Agrid_lagrange.Dual
module Chance = Agrid_lagrange.Chance
module Rng = Agrid_prng.Splitmix64
module Schedule = Agrid_sched.Schedule

(* ---- Dual: step schedule and projection ---- *)

let test_step_schedule_decreasing () =
  let prev = ref infinity in
  for round = 1 to 200 do
    let s = Dual.step_size ~c:0.7 ~round in
    if not (s < !prev) then
      Alcotest.failf "step %.9g at round %d not below %.9g" s round !prev;
    Alcotest.(check bool) "step positive" true (s > 0.);
    prev := s
  done;
  (* round 1 takes the full constant *)
  Testlib.close "full first step" 0.7 (Dual.step_size ~c:0.7 ~round:1)

let test_multipliers_stay_nonnegative () =
  let rng = Rng.of_int 0xD0A1 in
  let t = Dual.create ~c:1.5 [| 0.0; 0.3; 2.0 |] in
  for _ = 1 to 500 do
    let g = Array.init 3 (fun _ -> (Rng.next_unit_float rng *. 4.) -. 2.) in
    let s = Dual.step t g in
    Alcotest.(check bool) "step size positive" true (s > 0.);
    Array.iter
      (fun l ->
        if not (Float.is_finite l && l >= 0.) then
          Alcotest.failf "multiplier escaped the nonnegative orthant: %g" l)
      (Dual.multipliers t)
  done;
  Alcotest.(check int) "round counter" 500 (Dual.round t)

let test_projection_is_exact_zero () =
  (* a large negative subgradient drives the multiplier to exactly 0,
     not to a small negative number *)
  let t = Dual.create ~c:1.0 [| 0.1 |] in
  ignore (Dual.step t [| -5. |]);
  Alcotest.(check bool) "projected to exact zero" true (Dual.get t 0 = 0.)

let test_clamp_simplex () =
  let check msg expected actual =
    Alcotest.(check (pair (float 1e-12) (float 1e-12))) msg expected actual
  in
  check "interior point untouched" (0.4, 0.3) (Dual.clamp_simplex (0.4, 0.3));
  check "negative clamped" (0., 0.) (Dual.clamp_simplex (-1., -2.));
  check "alpha wins the budget" (1., 0.) (Dual.clamp_simplex (3., 0.5));
  check "beta gets the remainder" (0.7, 0.3) (Dual.clamp_simplex (0.7, 0.9))

let raises_invalid expected f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument (%s)" expected
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Fmt.str "message %S mentions %S" msg expected)
        true
        (Testlib.contains msg expected)

let test_dual_validation () =
  raises_invalid "step constant" (fun () -> Dual.create ~c:0. [| 1. |]);
  raises_invalid "step constant" (fun () -> Dual.create ~c:nan [| 1. |]);
  raises_invalid "at least one" (fun () -> Dual.create [||]);
  raises_invalid "nonnegative" (fun () -> Dual.create [| -0.1 |]);
  raises_invalid "nonnegative" (fun () -> Dual.create [| nan |]);
  let t = Dual.create [| 1.; 1. |] in
  raises_invalid "arity" (fun () -> Dual.step t [| 0.5 |]);
  raises_invalid "finite" (fun () -> Dual.step t [| 0.5; infinity |]);
  (* failed steps must not have advanced the round counter *)
  Alcotest.(check int) "no round consumed by rejected steps" 0 (Dual.round t)

(* ---- Chance: quantile against the stats-library CDF ---- *)

let test_quantile_half_is_zero () =
  Alcotest.(check bool) "quantile(0.5) = 0 exactly" true
    (Chance.normal_quantile 0.5 = 0.)

let test_quantile_inverts_cdf () =
  (* Goodness.normal_cdf is erfc-based; Acklam's approximation must agree
     to well under its documented 1.15e-9 relative error across both
     tails and the central branch. *)
  let ps =
    [ 1e-6; 1e-3; 0.02; 0.024; 0.025; 0.1; 0.25; 0.5; 0.75; 0.9; 0.975;
      0.976; 0.999; 1. -. 1e-6 ]
  in
  List.iter
    (fun p ->
      let z = Chance.normal_quantile p in
      let back = Agrid_stats.Goodness.normal_cdf ~mean:0. ~stddev:1. z in
      Testlib.close ~eps:1e-8 (Fmt.str "cdf(quantile %g)" p) p back)
    ps;
  (* and it is strictly monotone across the branch boundaries *)
  let prev = ref neg_infinity in
  List.iter
    (fun p ->
      let z = Chance.normal_quantile p in
      if not (z > !prev) then Alcotest.failf "quantile not monotone at p=%g" p;
      prev := z)
    ps

let test_quantile_symmetry () =
  List.iter
    (fun p ->
      Testlib.close ~eps:1e-8
        (Fmt.str "quantile symmetric at %g" p)
        (-.Chance.normal_quantile (1. -. p))
        (Chance.normal_quantile p))
    [ 0.01; 0.1; 0.3; 0.45 ]

let test_inflation () =
  Alcotest.(check bool) "sigma 0 -> exactly 1" true
    (Chance.inflation ~p:0.95 ~sigma:0. = 1.);
  Alcotest.(check bool) "p = 0.5 -> exactly 1" true
    (Chance.inflation ~p:0.5 ~sigma:0.4 = 1.);
  Alcotest.(check bool) "p > 0.5 inflates" true
    (Chance.inflation ~p:0.9 ~sigma:0.1 > 1.);
  Alcotest.(check bool) "p < 0.5 deflates" true
    (Chance.inflation ~p:0.1 ~sigma:0.1 < 1.);
  Alcotest.(check bool) "extreme pair clamps at zero" true
    (Chance.inflation ~p:1e-9 ~sigma:10. = 0.);
  raises_invalid "inside (0, 1)" (fun () -> Chance.normal_quantile 0.);
  raises_invalid "inside (0, 1)" (fun () -> Chance.normal_quantile 1.);
  raises_invalid "sigma" (fun () -> Chance.inflation ~p:0.9 ~sigma:(-0.1))

(* ---- chance-mode feasibility degenerates to the nominal bound ---- *)

let fingerprint sched =
  ( Array.to_list (Schedule.placements sched),
    Array.to_list (Schedule.transfers sched),
    Int64.bits_of_float (Schedule.tec sched),
    Schedule.aet sched,
    Schedule.n_primary sched )

let run_with_mode feas_mode wl =
  let w = Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  Slrh.run { (Slrh.default_params w) with Slrh.feas_mode } wl

let test_chance_degenerate_equals_conservative () =
  (* z = 0 (p = 0.5) and sigma = 0 both give inflation factor exactly 1;
     x *. 1. = x for every finite x, so the whole run is bit-identical
     to Conservative mode — the invariant that lets the adaptive path
     share Feasibility.Memo with the historical one. *)
  List.iter
    (fun case ->
      let wl = Testlib.small_workload ~case () in
      let base = run_with_mode Feasibility.Conservative wl in
      let half = run_with_mode (Feasibility.chance ~p:0.5 ~sigma:0.3) wl in
      let zero = run_with_mode (Feasibility.chance ~p:0.9 ~sigma:0.) wl in
      Alcotest.(check bool) "p = 0.5 bit-identical" true
        (fingerprint base.Slrh.schedule = fingerprint half.Slrh.schedule);
      Alcotest.(check bool) "sigma = 0 bit-identical" true
        (fingerprint base.Slrh.schedule = fingerprint zero.Slrh.schedule);
      Alcotest.(check bool) "stats identical" true
        (base.Slrh.stats = half.Slrh.stats && base.Slrh.stats = zero.Slrh.stats))
    [ Agrid_platform.Grid.A; Agrid_platform.Grid.B; Agrid_platform.Grid.C ]

let test_strict_chance_never_admits_more () =
  (* a service probability above 0.5 only inflates demands, so the
     admitted primary count can never exceed the nominal run's *)
  let wl = Testlib.small_workload () in
  let base = run_with_mode Feasibility.Conservative wl in
  let strict = run_with_mode (Feasibility.chance ~p:0.99 ~sigma:0.5) wl in
  Alcotest.(check bool) "strict chance maps no more primaries" true
    (Schedule.n_primary strict.Slrh.schedule
    <= Schedule.n_primary base.Slrh.schedule)

let test_mode_to_string () =
  Alcotest.(check string) "chance mode renders its parameters"
    "chance(p=0.95,sigma=0.1)"
    (Feasibility.mode_to_string (Feasibility.chance ~p:0.95 ~sigma:0.1))

(* ---- Adapt: spec validation and the multiplier/weight mapping ---- *)

let spec_error spec =
  match Adapt.validate_spec spec with Ok () -> None | Error m -> Some m

let test_validate_spec () =
  let d = Adapt.default_spec in
  Alcotest.(check (option string)) "default spec valid" None (spec_error d);
  let bad msg spec =
    match spec_error spec with
    | None -> Alcotest.failf "spec expected to fail (%s)" msg
    | Some m ->
        Alcotest.(check bool) (Fmt.str "%S mentions %S" m msg) true
          (Testlib.contains m msg)
  in
  bad "step constant" { d with Adapt.step_c = 0. };
  bad "step constant" { d with Adapt.step_c = nan };
  bad "energy multiplier" { d with Adapt.init_energy = Some (-1.) };
  bad "AET multiplier" { d with Adapt.init_aet = Some nan };
  bad "probability" { d with Adapt.prob = Some 0. };
  bad "probability" { d with Adapt.prob = Some 1. };
  bad "probability" { d with Adapt.prob = Some nan };
  bad "sigma" { d with Adapt.sigma = -0.1 }

let test_feas_mode_of_spec () =
  Alcotest.(check bool) "no prob -> conservative" true
    (Adapt.feas_mode Adapt.default_spec = Feasibility.Conservative);
  match Adapt.feas_mode { Adapt.default_spec with Adapt.prob = Some 0.9 } with
  | Feasibility.Chance { p; sigma } ->
      Testlib.close "p carried" 0.9 p;
      Testlib.close "sigma carried" 0.1 sigma
  | m -> Alcotest.failf "expected chance mode, got %s" (Feasibility.mode_to_string m)

let test_create_derives_multipliers () =
  let w0 = Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let t = Adapt.create Adapt.default_spec w0 in
  (* lambda_e = beta/alpha, lambda_a = gamma/alpha *)
  Testlib.close "lambda_energy = beta/alpha" 0.75 (Adapt.lambda_energy t);
  Testlib.close "lambda_aet = gamma/alpha" 0.75 (Adapt.lambda_aet t);
  (* and the normalised image of those multipliers is the seed again *)
  let w = Adapt.weights t in
  Testlib.close "alpha round trip" w0.Objective.alpha w.Objective.alpha;
  Testlib.close "beta round trip" w0.Objective.beta w.Objective.beta;
  Testlib.close "gamma round trip" w0.Objective.gamma w.Objective.gamma;
  Alcotest.(check int) "no rounds taken yet" 0 (Adapt.rounds t)

let test_create_explicit_inits () =
  let w0 = Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let spec =
    { Adapt.default_spec with Adapt.init_energy = Some 3.; init_aet = Some 0. }
  in
  let t = Adapt.create spec w0 in
  Testlib.close "explicit lambda_energy" 3. (Adapt.lambda_energy t);
  Testlib.close "explicit lambda_aet" 0. (Adapt.lambda_aet t);
  (* s = 1 + 3 + 0 = 4: weights (0.25, 0.75, 0) *)
  let w = Adapt.weights t in
  Testlib.close "alpha = 1/s" 0.25 w.Objective.alpha;
  Testlib.close "beta = lambda_e/s" 0.75 w.Objective.beta;
  Testlib.close "gamma = lambda_a/s" 0. w.Objective.gamma

let test_create_rejects_zero_alpha () =
  let w0 = Objective.weights_exact ~alpha:0. ~beta:0.6 ~gamma:0.4 in
  raises_invalid "alpha > 0" (fun () -> Adapt.create Adapt.default_spec w0);
  raises_invalid "step constant" (fun () ->
      Adapt.create
        { Adapt.default_spec with Adapt.step_c = -1. }
        (Objective.make_weights ~alpha:0.4 ~beta:0.3))

(* ---- an adaptive run end to end: telemetry, ledger, explain ---- *)

let adaptive_params ?(spec = Adapt.default_spec) w0 obs =
  {
    (Slrh.default_params w0) with
    Slrh.obs;
    adapt = Some (Adapt.create spec w0);
    feas_mode = Adapt.feas_mode spec;
  }

let counter_of sink name =
  match List.assoc_opt name (Sink.metrics sink) with
  | Some (Registry.Counter c) -> c
  | _ -> 0

let test_adaptive_run_records () =
  let wl = Testlib.small_workload () in
  let w0 = Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let sink = Sink.create ~ledger:true () in
  let params = adaptive_params w0 sink in
  let controller = match params.Slrh.adapt with Some a -> a | None -> assert false in
  let o = Slrh.run params wl in
  Alcotest.(check bool) "run mapped something" true (Schedule.n_mapped o.Slrh.schedule > 0);
  (* one dual round per commit epoch, mirrored in the telemetry counter *)
  let rounds = Adapt.rounds controller in
  Alcotest.(check bool) "dual rounds happened" true (rounds > 0);
  Alcotest.(check int) "updates counter matches rounds" rounds
    (counter_of sink "lagrange/updates");
  Alcotest.(check bool) "multipliers stay finite and nonnegative" true
    (Adapt.lambda_energy controller >= 0.
    && Adapt.lambda_aet controller >= 0.
    && Float.is_finite (Adapt.lambda_energy controller)
    && Float.is_finite (Adapt.lambda_aet controller));
  (* weights actually moved off the seed at some round *)
  let w = Adapt.weights controller in
  Alcotest.(check bool) "weights adapted away from the seed" true
    (w.Objective.alpha <> w0.Objective.alpha
    || w.Objective.beta <> w0.Objective.beta);
  let led = match Sink.ledger sink with Some l -> l | None -> assert false in
  (* the ledger saw every round *)
  let mults = ref 0 in
  Ledger.iter
    (function Ledger.Multiplier _ -> incr mults | _ -> ())
    led;
  Alcotest.(check int) "one ledger entry per dual round" rounds !mults;
  (* multiplier entries narrate, they are not decisions *)
  Alcotest.(check bool) "decision stream excludes multiplier entries" true
    (List.for_all
       (function Ledger.Multiplier _ -> false | _ -> true)
       (Ledger.decisions led));
  (* JSONL round trip is a fixed point for the new entry type too *)
  let text = Ledger.to_jsonl led in
  let back = Ledger.of_jsonl text in
  Alcotest.(check int) "entry count survives" (Ledger.length led) (Ledger.length back);
  Alcotest.(check bool) "serialisation stable" true (Ledger.to_jsonl back = text);
  (* every round is explainable *)
  for round = 1 to rounds do
    match Ledger.explain_multiplier led ~round with
    | None -> Alcotest.failf "dual round %d has no explanation" round
    | Some report ->
        Alcotest.(check bool)
          (Fmt.str "round %d report names the update" round)
          true (Testlib.contains report "DUAL")
  done;
  Alcotest.(check (option string)) "absent round has no record" None
    (Ledger.explain_multiplier led ~round:(rounds + 1))

let test_adaptive_churn_repricing () =
  let wl = Testlib.small_workload () in
  let tau = Agrid_workload.Workload.tau wl in
  let events =
    [
      { Agrid_churn.Event.at = tau / 6; kind = Agrid_churn.Event.Leave 1 };
      { Agrid_churn.Event.at = tau / 2; kind = Agrid_churn.Event.Rejoin 1 };
    ]
  in
  let w0 = Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let sink = Sink.create ~ledger:true () in
  let params = adaptive_params w0 sink in
  ignore (Dynamic.run_churn params wl events);
  (* each non-initial engine phase re-prices once with the churn trigger *)
  Alcotest.(check int) "one churn update per grid transition" 2
    (counter_of sink "lagrange/churn_updates");
  let led = match Sink.ledger sink with Some l -> l | None -> assert false in
  let churn_rounds =
    let n = ref 0 in
    Ledger.iter
      (function
        | Ledger.Multiplier { trigger = "churn"; _ } -> incr n | _ -> ())
      led;
    !n
  in
  Alcotest.(check int) "churn-triggered ledger entries" 2 churn_rounds;
  (* and the churn explanation carries the grid transition context *)
  let churn_round =
    let r = ref None in
    Ledger.iter
      (function
        | Ledger.Multiplier { trigger = "churn"; round; _ } when !r = None ->
            r := Some round
        | _ -> ())
      led;
    match !r with Some r -> r | None -> Alcotest.fail "no churn round recorded"
  in
  match Ledger.explain_multiplier led ~round:churn_round with
  | None -> Alcotest.fail "churn round not explainable"
  | Some report ->
      Alcotest.(check bool) "report shows the churn trigger" true
        (Testlib.contains report "churn")

(* ---- ISSUE 7 acceptance: recovery from off-optimum multipliers ---- *)

(* Offline oracle: sweep constant weights over a coarse simplex grid, run
   each to completion, and score every final schedule under one fixed
   evaluation objective (the CLI default 0.4/0.3). The adaptive side
   starts from deliberately mispriced multipliers — lambda_energy = 6
   prices energy eight times the CLI default ratio — and must come within
   5% of the sweep's best score.

   Recovery is measured receding-horizon style: SLRH never preempts, so
   the first pass is permanently handicapped by the placements committed
   before the multipliers moved, no matter how completely the prices
   recover mid-run. The controller's multipliers therefore warm-start
   each successive pass over the same workload (exactly how a scenario
   service would carry prices from one arrival to the next), and the
   acceptance bar applies to the best recovered pass. *)
let sweep_grid =
  [
    (0.1, 0.6); (0.2, 0.1); (0.2, 0.4); (0.33, 0.33); (0.4, 0.3);
    (0.5, 0.1); (0.6, 0.2); (0.8, 0.1); (0.9, 0.05); (1.0, 0.0);
  ]

let test_recovery_within_5_percent () =
  let w_eval = Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  List.iter
    (fun (name, case) ->
      let wl = Testlib.small_workload ~case () in
      let score sched = Objective.of_schedule w_eval sched in
      let best =
        List.fold_left
          (fun acc (alpha, beta) ->
            let w = Objective.make_weights ~alpha ~beta in
            let o = Slrh.run (Slrh.default_params w) wl in
            Float.max acc (score o.Slrh.schedule))
          neg_infinity sweep_grid
      in
      let lambda = ref (6., 0.5) in
      let recovered = ref neg_infinity in
      for pass = 1 to 4 do
        let le, la = !lambda in
        let spec =
          {
            Adapt.default_spec with
            Adapt.step_c = 1.5;
            init_energy = Some le;
            init_aet = Some la;
          }
        in
        let params = adaptive_params ~spec w_eval Sink.noop in
        let a =
          match params.Slrh.adapt with Some a -> a | None -> assert false
        in
        let o = Slrh.run params wl in
        lambda := (Adapt.lambda_energy a, Adapt.lambda_aet a);
        (* pass 1 pays for its mispriced prefix; recovery is judged on
           the warm-started passes *)
        if pass > 1 then recovered := Float.max !recovered (score o.Slrh.schedule)
      done;
      let final_le, _ = !lambda in
      if not (final_le < 2.) then
        Alcotest.failf "case %s: lambda_energy stuck at %.3f (from 6)" name
          final_le;
      let floor = best -. (0.05 *. Float.abs best) in
      if not (!recovered >= floor) then
        Alcotest.failf
          "case %s: recovered objective %.6f below 95%% of swept optimum %.6f"
          name !recovered best)
    [
      ("A", Agrid_platform.Grid.A);
      ("B", Agrid_platform.Grid.B);
      ("C", Agrid_platform.Grid.C);
    ]

let suites =
  [
    ( "lagrange",
      [
        Alcotest.test_case "step schedule strictly decreasing" `Quick
          test_step_schedule_decreasing;
        Alcotest.test_case "multipliers stay nonnegative" `Quick
          test_multipliers_stay_nonnegative;
        Alcotest.test_case "projection lands on exact zero" `Quick
          test_projection_is_exact_zero;
        Alcotest.test_case "clamp_simplex projects onto the simplex" `Quick
          test_clamp_simplex;
        Alcotest.test_case "dual validation" `Quick test_dual_validation;
        Alcotest.test_case "quantile(0.5) is exactly zero" `Quick
          test_quantile_half_is_zero;
        Alcotest.test_case "quantile inverts the stats CDF" `Quick
          test_quantile_inverts_cdf;
        Alcotest.test_case "quantile is odd around 1/2" `Quick
          test_quantile_symmetry;
        Alcotest.test_case "inflation margins and validation" `Quick
          test_inflation;
        Alcotest.test_case "degenerate chance = conservative, bitwise" `Quick
          test_chance_degenerate_equals_conservative;
        Alcotest.test_case "strict chance never admits more" `Quick
          test_strict_chance_never_admits_more;
        Alcotest.test_case "chance mode renders its parameters" `Quick
          test_mode_to_string;
      ] );
    ( "adapt",
      [
        Alcotest.test_case "spec validation" `Quick test_validate_spec;
        Alcotest.test_case "spec implies the feasibility mode" `Quick
          test_feas_mode_of_spec;
        Alcotest.test_case "create derives multipliers from weights" `Quick
          test_create_derives_multipliers;
        Alcotest.test_case "create honours explicit multipliers" `Quick
          test_create_explicit_inits;
        Alcotest.test_case "create rejects alpha = 0 and bad specs" `Quick
          test_create_rejects_zero_alpha;
        Alcotest.test_case "adaptive run: telemetry, ledger, explain" `Quick
          test_adaptive_run_records;
        Alcotest.test_case "churn events re-price the multipliers" `Quick
          test_adaptive_churn_repricing;
        Alcotest.test_case "off-optimum multipliers recover within 5%" `Slow
          test_recovery_within_5_percent;
      ] );
  ]
