(* CI perf-regression gate over the bench observability profile.

   Compares a freshly generated BENCH_obs.json (bench/main.exe --quick
   --obs-only) against the committed bench/baseline_obs.json:

   - counters (T100, mapped count, pool/plan/assignment totals) are
     seed-deterministic, so any drift is a behaviour change: compared
     exactly;
   - span p50/p95 timings vary with hardware, so the fresh run may be up
     to --span-tolerance times the baseline (default 10x — loose enough
     for CI runner jitter, tight enough to catch an accidental
     quadratic-blowup or a hot loop losing its no-op guard). Spans named
     in [tight_spans] get a tighter multiplier: "slrh/score" runs on the
     preallocated SoA arena, whose batch pass is a multiple faster than
     the boxed scorer, so a 3x budget fails CI if scoring ever falls
     back to boxed-path speed;
   - gauges under the "slrh/" prefix are seed-deterministic facts about
     the run (final clock, arena capacity and high-water mark), compared
     exactly — EXCEPT allocation gauges (name containing "alloc_bytes"),
     which are budgets: the fresh value may not EXCEED the baseline
     (the committed budget is 0 bytes/timestep for the SoA steady state,
     so any new per-timestep allocation fails the gate). Gauges outside
     "slrh/" (serve/fleet timing gauges) are not gated.

   Exit 0: no regression. Exit 1: regression, one line per finding.
   Exit 2: missing/malformed input. A deliberate behaviour change is
   shipped by regenerating the baseline (see bench/README note in
   EXPERIMENTS.md) in the same commit. *)

let default_baseline = "bench/baseline_obs.json"
let default_fresh = "BENCH_obs.json"

type options = { baseline : string; fresh : string; span_tolerance : float }

let usage () =
  Fmt.epr
    "usage: check_regression.exe [--baseline FILE] [--fresh FILE] [--span-tolerance X]@.";
  exit 2

let parse_options () =
  let opts =
    ref { baseline = default_baseline; fresh = default_fresh; span_tolerance = 10. }
  in
  let rec walk = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        opts := { !opts with baseline = v };
        walk rest
    | "--fresh" :: v :: rest ->
        opts := { !opts with fresh = v };
        walk rest
    | "--span-tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some x when x > 0. -> opts := { !opts with span_tolerance = x }
        | _ ->
            Fmt.epr "check_regression: bad --span-tolerance %S@." v;
            exit 2);
        walk rest
    | _ -> usage ()
  in
  walk (List.tl (Array.to_list Sys.argv));
  !opts

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Fmt.epr "check_regression: %s@." msg;
    exit 2

let load path =
  let doc =
    try Agrid_obs.Json.parse (read_file path)
    with Agrid_obs.Json.Parse_error msg ->
      Fmt.epr "check_regression: %s: %s@." path msg;
      exit 2
  in
  (match Agrid_obs.Json.get_string "schema" doc with
  | Some "agrid-bench-obs/1" -> ()
  | Some other ->
      Fmt.epr "check_regression: %s: unexpected schema %S@." path other;
      exit 2
  | None ->
      Fmt.epr "check_regression: %s: missing schema field@." path;
      exit 2);
  doc

(* name -> (p50_s, p95_s) *)
let spans_of doc =
  match Option.bind (Agrid_obs.Json.member "spans" doc) Agrid_obs.Json.to_list with
  | None -> []
  | Some spans ->
      List.filter_map
        (fun s ->
          match
            ( Agrid_obs.Json.get_string "name" s,
              Agrid_obs.Json.get_float "p50_s" s,
              Agrid_obs.Json.get_float "p95_s" s )
          with
          | Some name, Some p50, Some p95 -> Some (name, (p50, p95))
          | _ -> None)
        spans

let counters_of doc =
  match Agrid_obs.Json.member "counters" doc with
  | Some (Agrid_obs.Json.Obj fields) ->
      List.filter_map
        (fun (name, v) ->
          match Agrid_obs.Json.to_int v with Some c -> Some (name, c) | None -> None)
        fields
  | _ -> []

let gauges_of doc =
  match Agrid_obs.Json.member "gauges" doc with
  | Some (Agrid_obs.Json.Obj fields) ->
      List.filter_map
        (fun (name, v) ->
          match Agrid_obs.Json.to_float v with Some g -> Some (name, g) | None -> None)
        fields
  | _ -> []

(* Tighter span budgets than the CLI default, for spans whose baseline
   already reflects a structural speedup we refuse to lose. *)
let tight_spans = [ ("slrh/score", 3.) ]

(* Only "slrh/"-prefixed gauges are gated: they are seed-deterministic
   facts about the scheduler run. Serve/fleet gauges are wall-clock
   measurements and would flap on CI runners. *)
let gauge_gated name = String.length name >= 5 && String.sub name 0 5 = "slrh/"

(* Allocation gauges are upper-bound budgets, not exact values: a fresh
   run allocating LESS than the committed budget is an improvement. *)
let gauge_is_budget name =
  let n = String.length name and sub = "alloc_bytes" in
  let k = String.length sub in
  let rec at i = i + k <= n && (String.sub name i k = sub || at (i + 1)) in
  at 0

(* Named sub-profiles (the bench "campaign" section): same spans/counters
   shape one level down, gated with the same rules. *)
let sections_of doc =
  match Agrid_obs.Json.member "sections" doc with
  | Some (Agrid_obs.Json.Obj fields) -> fields
  | _ -> []

let () =
  let opts = parse_options () in
  let baseline = load opts.baseline in
  let fresh = load opts.fresh in
  let failures = ref 0 in
  let fail fmt = Fmt.kpf (fun _ -> incr failures) Fmt.stderr ("REGRESSION: " ^^ fmt ^^ "@.") in
  (* [label] prefixes finding names with the section ("" = top level). *)
  let compare_docs ~label baseline fresh =
    (* deterministic counters: exact match *)
    let fresh_counters = counters_of fresh in
    List.iter
      (fun (name, expected) ->
        match List.assoc_opt name fresh_counters with
        | None ->
            fail "counter %s%s missing from %s (baseline: %d)" label name opts.fresh
              expected
        | Some got when got <> expected ->
            fail
              "counter %s%s: baseline %d, fresh %d (seed-deterministic — behaviour changed)"
              label name expected got
        | Some _ -> ())
      (counters_of baseline);
    (* span timings: bounded slowdown *)
    let fresh_spans = spans_of fresh in
    List.iter
      (fun (name, (b50, b95)) ->
        match List.assoc_opt name fresh_spans with
        | None -> fail "span %s%s missing from %s" label name opts.fresh
        | Some (f50, f95) ->
            let tight = List.assoc_opt name tight_spans in
            let tolerance =
              match tight with
              | Some t -> Float.min t opts.span_tolerance
              | None -> opts.span_tolerance
            in
            (* Floor the budget: with the 10x default, sub-microsecond
               baselines are all jitter. Tight spans are timed with the
               ns clock precisely so sub-microsecond regressions are
               visible — a 1e-6 floor would hide the SoA scorer
               regressing back to boxed speed — so their floor only
               guards the clock's own granularity. *)
            let floor = if Option.is_some tight then 1e-7 else 1e-6 in
            let budget b = tolerance *. Float.max b floor in
            if f50 > budget b50 then
              fail "span %s%s p50 %.3gs exceeds %.1fx baseline %.3gs" label name f50
                tolerance b50;
            if f95 > budget b95 then
              fail "span %s%s p95 %.3gs exceeds %.1fx baseline %.3gs" label name f95
                tolerance b95)
      (spans_of baseline);
    (* gauges: exact for seed-deterministic facts, upper-bound for
       allocation budgets, ungated outside "slrh/" *)
    let fresh_gauges = gauges_of fresh in
    List.iter
      (fun (name, expected) ->
        if gauge_gated name then
          match List.assoc_opt name fresh_gauges with
          | None ->
              fail "gauge %s%s missing from %s (baseline: %g)" label name opts.fresh
                expected
          | Some got when gauge_is_budget name ->
              if got > expected then
                fail "gauge %s%s: %g exceeds committed budget %g" label name got
                  expected
          | Some got when got <> expected ->
              fail
                "gauge %s%s: baseline %g, fresh %g (seed-deterministic — behaviour \
                 changed)"
                label name expected got
          | Some _ -> ())
      (gauges_of baseline);
    ( List.length fresh_spans,
      List.length fresh_counters,
      List.length (List.filter (fun (n, _) -> gauge_gated n) fresh_gauges) )
  in
  let n_spans, n_counters, n_gauges = compare_docs ~label:"" baseline fresh in
  let fresh_sections = sections_of fresh in
  List.iter
    (fun (name, bsec) ->
      match List.assoc_opt name fresh_sections with
      | None -> fail "section %s missing from %s" name opts.fresh
      | Some fsec -> ignore (compare_docs ~label:(name ^ "/") bsec fsec))
    (sections_of baseline);
  if !failures = 0 then begin
    Fmt.pr
      "check_regression: %s within tolerance of %s (%d spans, %d counters, %d \
       gated gauges, %d sections)@."
      opts.fresh opts.baseline n_spans n_counters n_gauges
      (List.length fresh_sections);
    exit 0
  end
  else begin
    Fmt.epr
      "check_regression: %d regression(s) against %s. Deliberate change? Regenerate \
       the baseline: dune exec bench/main.exe -- --quick --obs-only && cp \
       BENCH_obs.json %s@."
      !failures opts.baseline opts.baseline;
    exit 1
  end
