(* Aggregated alcotest entry point: one section per library.

   Each suite is bracketed by two sentinel cases that clock it; the
   at_exit hook prints a per-suite wall-time table on stderr, so a plain
   `dune runtest --no-buffer` shows where the test budget goes. *)

let timings : (string * float) list ref = ref []

let timed suites =
  List.map
    (fun (name, cases) ->
      let t0 = ref nan in
      let start =
        Alcotest.test_case "[timer start]" `Quick (fun () ->
            t0 := Unix.gettimeofday ())
      in
      let stop =
        Alcotest.test_case "[timer stop]" `Quick (fun () ->
            if not (Float.is_nan !t0) then
              timings := (name, Unix.gettimeofday () -. !t0) :: !timings)
      in
      (name, (start :: cases) @ [ stop ]))
    suites

let () =
  at_exit (fun () ->
      match !timings with
      | [] -> ()
      | l ->
          let l = List.sort (fun (_, a) (_, b) -> compare b a) l in
          Fmt.epr "@.suite timings (wall seconds):@.";
          List.iter (fun (name, s) -> Fmt.epr "  %8.3f  %s@." s name) l;
          Fmt.epr "  %8.3f  total@."
            (List.fold_left (fun acc (_, s) -> acc +. s) 0. l))

let () =
  Alcotest.run "agrid"
    (timed
       (Test_prng.suites @ Test_stats.suites @ Test_par.suites @ Test_dag.suites
      @ Test_platform.suites @ Test_etc.suites @ Test_workload.suites
      @ Test_timeline.suites @ Test_schedule.suites @ Test_core.suites
      @ Test_baselines.suites @ Test_tuner.suites @ Test_exper.suites
      @ Test_dynamic.suites @ Test_churn.suites @ Test_lrnn.suites
      @ Test_report.suites @ Test_obs.suites @ Test_ledger.suites
      @ Test_sim.suites @ Test_serve.suites @ Test_fleet.suites
      @ Test_lagrange.suites @ Test_tenant.suites @ Test_props.suites
      @ Test_diff.suites @ Test_fuzz.suites))
