(* Aggregated alcotest entry point: one section per library. *)

let () =
  Alcotest.run "agrid"
    (Test_prng.suites @ Test_stats.suites @ Test_par.suites @ Test_dag.suites
   @ Test_platform.suites @ Test_etc.suites @ Test_workload.suites
   @ Test_timeline.suites @ Test_schedule.suites @ Test_core.suites
   @ Test_baselines.suites @ Test_tuner.suites @ Test_exper.suites
   @ Test_dynamic.suites @ Test_churn.suites @ Test_lrnn.suites @ Test_report.suites
   @ Test_obs.suites @ Test_ledger.suites @ Test_sim.suites
   @ Test_props.suites @ Test_diff.suites @ Test_fuzz.suites)
