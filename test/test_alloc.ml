(* Allocation-budget suite for the scheduler's pool-maintenance modes.

   Measures heap allocation per steady-state timestep with an A/B
   differential: two fresh, identical runs of a commit-free scenario
   (batteries scaled to ~nothing, so every candidate is energy-infeasible
   and the clock spins to tau without ever committing) that differ only
   in delta_t, hence only in timestep count. Per-run constants — the
   schedule, the arena, the memo, closures built before the loop — cancel
   in the difference, leaving exactly bytes-per-extra-timestep.
   Gc.allocated_bytes is an exact allocation count (not a heap size), so
   the measurement is deterministic and the SoA budget can be asserted as
   EXACTLY zero: one stray closure, boxed float or tuple on the
   steady-state path shows up as a hard failure here, not as GC noise in
   a benchmark.

   Budgets per mode:
   - `Soa      : 0 bytes/timestep, all three variants. The flat arena is
                 the whole point — reused pools re-score into
                 preallocated rows and the walk commits off the arena.
   - `Incremental / `Rescan : nonzero (span thunks, pool lists, scored
                 tuples). Asserted positive — if the boxed paths ever
                 measure 0 the harness itself has gone blind — and under
                 a generous ceiling so a quadratic blowup still fails.

   An active-scenario check rides along: over a full run that actually
   commits (normal batteries), SoA must allocate strictly less in total
   than either boxed mode. *)

open Agrid_workload
module Slrh = Agrid_core.Slrh
module Grid = Agrid_platform.Grid

let failures = ref 0

let check msg ok =
  if not ok then begin
    incr failures;
    Fmt.epr "test_alloc: FAIL %s@." msg
  end

let weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3

(* The generated mid-size scenario the integration suites use. *)
let spec = Spec.scaled ~seed:11 ~factor:(48. /. 1024.) ()

let active_workload = Workload.build spec ~etc_index:0 ~dag_index:0 ~case:Grid.A

(* Commit-free variant: same shape, batteries ~zero. Spec validation
   requires a positive scale, so scale rather than zero out. *)
let steady_workload =
  Workload.build
    { spec with Spec.battery_scale = 1e-9 *. spec.Spec.battery_scale }
    ~etc_index:0 ~dag_index:0 ~case:Grid.A

let run_measured ~mode ~variant ~delta_t wl =
  let p =
    { (Slrh.default_params ~variant weights) with Slrh.mode; delta_t }
  in
  let before = Gc.allocated_bytes () in
  let o = Slrh.run p wl in
  let after = Gc.allocated_bytes () in
  (o.Slrh.stats.Slrh.clock_steps, after -. before)

(* Bytes per steady-state timestep: run the commit-free scenario at
   delta_t 10 and 5 (double the steps), divide the allocation difference
   by the step difference. A warm-up run per (mode, variant) keeps
   one-time pricing out of run A. *)
let steady_bytes_per_step ~mode ~variant =
  ignore (run_measured ~mode ~variant ~delta_t:10 steady_workload);
  let steps_a, bytes_a = run_measured ~mode ~variant ~delta_t:10 steady_workload in
  let steps_b, bytes_b = run_measured ~mode ~variant ~delta_t:5 steady_workload in
  check
    (Fmt.str "steady scenario commits nothing (%s)" (Slrh.mode_to_string mode))
    (steps_b > steps_a);
  (bytes_b -. bytes_a) /. float_of_int (max 1 (steps_b - steps_a))

let active_total_bytes ~mode ~variant =
  ignore (run_measured ~mode ~variant ~delta_t:10 active_workload);
  snd (run_measured ~mode ~variant ~delta_t:10 active_workload)

let variants = [ (Slrh.V1, "V1"); (Slrh.V2, "V2"); (Slrh.V3, "V3") ]
let modes = [ (`Rescan, "rescan"); (`Incremental, "incremental"); (`Soa, "soa") ]

let () =
  Fmt.pr "steady-state bytes/timestep (commit-free scenario, %d tasks):@."
    (Workload.n_tasks steady_workload);
  Fmt.pr "  %-12s %10s %10s %10s@." "mode" "V1" "V2" "V3";
  let steady =
    List.map
      (fun (mode, mode_name) ->
        let per_variant =
          List.map
            (fun (variant, _) -> steady_bytes_per_step ~mode ~variant)
            variants
        in
        Fmt.pr "  %-12s %10.1f %10.1f %10.1f@." mode_name (List.nth per_variant 0)
          (List.nth per_variant 1) (List.nth per_variant 2);
        (mode, mode_name, per_variant))
      modes
  in
  List.iter
    (fun (mode, mode_name, per_variant) ->
      List.iteri
        (fun i bytes ->
          let _, vname = List.nth variants i in
          match mode with
          | `Soa ->
              (* the tentpole budget: EXACTLY zero, not "small" *)
              check
                (Fmt.str "soa %s steady state = 0 bytes/timestep (got %g)" vname
                   bytes)
                (bytes = 0.)
          | `Rescan | `Incremental ->
              (* boxed paths allocate; a zero here means the harness is
                 measuring nothing *)
              check
                (Fmt.str "%s %s steady state allocates (harness sanity)"
                   mode_name vname)
                (bytes > 0.);
              check
                (Fmt.str "%s %s steady state under ceiling (got %g)" mode_name
                   vname bytes)
                (bytes <= 65536.))
        per_variant)
    steady;
  (* Single tenant under the tenant engine: the traffic fast path (one
     live application, no pending arrivals or events) must delegate to a
     single unchunked [Slrh.continue_run], so the tenant layer's
     allocation is a per-run constant — arrivals list, queues, DRR state,
     the outcome record — and its per-timestep overhead over a direct
     [Slrh.run] of the same workload is EXACTLY zero. A/B over delta_t:
     both runs are bit-identical to the direct run (pinned by
     test_tenant), so the scheduler's own allocation cancels in the
     traffic-minus-direct difference, and the remainder must not scale
     with the step count. *)
  let module Traffic = Agrid_tenant.Traffic in
  let module Tenant = Agrid_tenant.Tenant in
  let traffic_spec =
    Traffic.make_spec ~scale:(48. /. 1024.) ~seed:11 ~horizon:10
      [
        {
          Traffic.ts_tenant = Tenant.make "solo";
          ts_process = Agrid_tenant.Arrivals.Trace [ 0 ];
        };
      ]
  in
  let solo_workload = Traffic.app_workload traffic_spec ~stream:0 ~seq:0 in
  (* Unlike the commit-free windows above, these runs commit and allocate
     megabytes, and on OCaml 5 the major/promoted counters behind
     [Gc.allocated_bytes] lag the mutator until the next minor
     collection — multi-MB windows read through that lag come out
     nondeterministic by roughly a minor-heap's worth. Flushing with
     [Gc.minor] before each read makes the window exact again. *)
  let measured f =
    Gc.minor ();
    let before = Gc.allocated_bytes () in
    let r = f () in
    Gc.minor ();
    (r, Gc.allocated_bytes () -. before)
  in
  let traffic_overhead ~delta_t =
    let params =
      { (Slrh.default_params weights) with Slrh.mode = `Soa; delta_t }
    in
    let params_for ~tenant:_ ~seq:_ = params in
    ignore (Traffic.run ~params_for traffic_spec) (* warm-up *);
    let o, traffic_bytes = measured (fun () -> Traffic.run ~params_for traffic_spec) in
    ignore (Slrh.run params solo_workload) (* warm-up *);
    let d, direct_bytes = measured (fun () -> Slrh.run params solo_workload) in
    check
      (Fmt.str "tenant fast path step count matches direct run (delta_t %d)"
         delta_t)
      (o.Traffic.total_steps = d.Slrh.stats.Slrh.clock_steps);
    (traffic_bytes -. direct_bytes, o.Traffic.total_steps)
  in
  let ov_a, steps_a = traffic_overhead ~delta_t:10 in
  let ov_b, steps_b = traffic_overhead ~delta_t:5 in
  let per_step = (ov_b -. ov_a) /. float_of_int (max 1 (steps_b - steps_a)) in
  Fmt.pr
    "tenant-engine overhead: %g bytes/timestep (constant %+.0f bytes/run, %d \
     vs %d steps)@."
    per_step ov_a steps_a steps_b;
  check "tenant A/B runs differ in step count (harness sanity)"
    (steps_b > steps_a);
  check
    (Fmt.str "single-tenant soa fast path adds 0 bytes/timestep (got %g)"
       per_step)
    (per_step = 0.);
  (* Active scenario: total allocation over a committing run. *)
  Fmt.pr "whole-run bytes (active scenario, %d tasks):@."
    (Workload.n_tasks active_workload);
  List.iter
    (fun (variant, vname) ->
      let soa = active_total_bytes ~mode:`Soa ~variant in
      let incr = active_total_bytes ~mode:`Incremental ~variant in
      let rescan = active_total_bytes ~mode:`Rescan ~variant in
      Fmt.pr "  %s: soa %.0f, incremental %.0f, rescan %.0f@." vname soa incr
        rescan;
      check (Fmt.str "active %s: soa < incremental" vname) (soa < incr);
      check (Fmt.str "active %s: soa < rescan" vname) (soa < rescan))
    variants;
  if !failures = 0 then Fmt.pr "test_alloc: OK@."
  else begin
    Fmt.epr "test_alloc: %d failure(s)@." !failures;
    exit 1
  end
