(* The tenant-invariant test layer (DESIGN.md section 14):

   - arrival processes are deterministic per seed and totally ordered;
   - quota admission is total (every rejection carries a typed breach)
     and the reservation really is an upper bound on the TEC a run can
     consume, so an admitted application can never overdraw its tenant;
   - DRR keeps every continuously backlogged queue's weighted share
     within one quantum of the round ideal over any window, including
     churn timelines where queues empty and refill (QCheck, 220 cases);
   - the engine's constant-cost case (every grant costs one quantum)
     has exactly zero weighted-share gap at round boundaries;
   - a single-tenant traffic run is bit-identical (tec bits, placements,
     transfers) to the standalone [Slrh.run] on the same workload;
   - a fixed-seed two-tenant Poisson run exports byte-identical obs
     JSONL across runs. *)

open Agrid_core
open Agrid_sched
open Agrid_tenant
module Rng = Agrid_prng.Splitmix64

let weights = Objective.make_weights ~alpha:0.4 ~beta:0.3

(* --- arrivals ---------------------------------------------------------- *)

let procs_of_seed seed =
  let rng = Rng.of_int (0xA331 + seed) in
  List.init
    (1 + Rng.next_int rng 4)
    (fun _ ->
      if Rng.next_bool rng then
        Arrivals.Poisson (0.0005 +. (0.01 *. Rng.next_unit_float rng))
      else
        Arrivals.Trace (List.init (Rng.next_int rng 6) (fun _ -> Rng.next_int rng 2000)))

let test_arrival_determinism () =
  for seed = 0 to 30 do
    let procs = procs_of_seed seed in
    let horizon = 1500 in
    let a = Arrivals.generate ~seed ~horizon procs in
    let b = Arrivals.generate ~seed ~horizon procs in
    if a <> b then Alcotest.failf "seed %d: two generations differ" seed;
    (* total order and bounds *)
    List.iter
      (fun { Arrivals.at; stream; seq } ->
        if at < 0 || at > horizon then
          Alcotest.failf "seed %d: arrival at %d outside [0, %d]" seed at horizon;
        if stream < 0 || stream >= List.length procs then
          Alcotest.failf "seed %d: stream %d out of range" seed stream;
        if seq < 0 then Alcotest.failf "seed %d: negative seq" seed)
      a;
    let rec sorted = function
      | x :: (y :: _ as rest) ->
          if
            compare
              (x.Arrivals.at, x.Arrivals.stream, x.Arrivals.seq)
              (y.Arrivals.at, y.Arrivals.stream, y.Arrivals.seq)
            >= 0
          then Alcotest.failf "seed %d: merged timeline not strictly sorted" seed
          else sorted rest
      | _ -> ()
    in
    sorted a;
    (* per-stream seqs are dense and times nondecreasing *)
    List.iteri
      (fun stream _ ->
        let mine = List.filter (fun x -> x.Arrivals.stream = stream) a in
        List.iteri
          (fun i x ->
            if x.Arrivals.seq <> i then
              Alcotest.failf "seed %d stream %d: seq gap at %d" seed stream i)
          mine;
        let rec nondecr = function
          | x :: (y :: _ as rest) ->
              if x.Arrivals.at > y.Arrivals.at then
                Alcotest.failf "seed %d stream %d: times decrease" seed stream
              else nondecr rest
          | _ -> ()
        in
        nondecr mine)
      procs
  done

let test_arrival_validation () =
  let bad p = match Arrivals.validate_process ~horizon:1000 p with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "process %s should not validate" (Arrivals.process_to_string p)
  in
  bad (Arrivals.Poisson 0.);
  bad (Arrivals.Poisson (-1.));
  bad (Arrivals.Poisson nan);
  bad (Arrivals.Poisson 1e6);
  bad (Arrivals.Trace [ 3; -1 ]);
  match Arrivals.validate_process ~horizon:1000 (Arrivals.Poisson 0.01) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid rate rejected: %s" m

(* --- quotas ------------------------------------------------------------ *)

let test_quota_totality () =
  let wl = Testlib.small_workload () in
  let budgets = [ None; Some 1e-6; Some 0.5; Some 1e9 ] in
  let machine_qs = [ None; Some 0; Some 1; Some 2; Some 100 ] in
  List.iter
    (fun q_energy ->
      List.iter
        (fun q_machines ->
          let q = { Feasibility.q_energy; q_machines } in
          List.iter
            (fun used ->
              match Feasibility.admit_quota q ~used wl with
              | Ok r ->
                  if not (Float.is_finite r && r >= 0.) then
                    Alcotest.failf "reservation not finite-nonnegative: %g" r
              | Error (Feasibility.Energy_quota { needed; budget; used = u }) ->
                  if not (u +. needed > budget) then
                    Alcotest.failf "energy breach fields inconsistent"
              | Error (Feasibility.Machine_quota { allowed; required }) ->
                  if allowed >= required then
                    Alcotest.failf "machine breach fields inconsistent")
            [ 0.; 0.25; 17. ])
        machine_qs)
    budgets;
  (* a zero-machine quota is the one machine-breach case *)
  (match
     Feasibility.admit_quota { Feasibility.q_energy = None; q_machines = Some 0 }
       ~used:0. wl
   with
  | Error (Feasibility.Machine_quota _) -> ()
  | _ -> Alcotest.fail "zero-machine quota must breach Machine_quota");
  (* validation rejects degenerate quotas before they reach admission *)
  (match Feasibility.validate_quota { Feasibility.q_energy = Some 0.; q_machines = None } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero energy quota must not validate");
  match Feasibility.validate_quota { Feasibility.q_energy = None; q_machines = Some (-1) } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative machine quota must not validate"

(* The reservation admit_quota charges really bounds what a run burns:
   TEC of a full SLRH run never exceeds the conservative reservation. *)
let test_reservation_bounds_tec () =
  for i = 0 to 11 do
    let seed = 100 + (17 * i) in
    let case =
      List.nth [ Agrid_platform.Grid.A; Agrid_platform.Grid.B; Agrid_platform.Grid.C ] (i mod 3)
    in
    let wl = Testlib.small_workload ~seed ~case () in
    let r = Feasibility.reservation wl in
    let o = Slrh.run (Slrh.default_params weights) wl in
    let tec = Schedule.tec o.Slrh.schedule in
    if tec > r +. 1e-9 then
      Alcotest.failf "scenario %d: TEC %.6f exceeds reservation %.6f" i tec r
  done

(* --- DRR fairness ------------------------------------------------------ *)

(* One simulated DRR history: queues with scripted backlog toggles
   (churn) and random per-item costs <= quantum. At every round boundary,
   any queue continuously backlogged since the previous boundary must
   hold its weighted share within one quantum of the round ideal. *)
let drr_case_gen =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* quantum = float_range 1. 20. in
    let* weights = list_repeat n (int_range 1 4) in
    let* seed = int_range 0 1_000_000 in
    let* toggles = int_range 0 12 in
    return (n, quantum, weights, seed, toggles))

let drr_prop (n, quantum, wts, seed, toggles) =
  let rng = Rng.of_int seed in
  let weights = Array.of_list (List.map float_of_int wts) in
  let t = Drr.create ~quantum ~weights in
  (* backlog script: queue i is "up" (backlogged) or "down"; starts up *)
  let up = Array.make n true in
  let toggle_at = Array.init toggles (fun _ -> 20 + Rng.next_int rng 400) in
  Array.sort compare toggle_at;
  let next_toggle = ref 0 in
  let snap_served = Array.make n 0. in
  let snap_rounds = ref 0 in
  let cont = Array.make n true in
  let serves = 500 in
  for step = 0 to serves - 1 do
    while !next_toggle < toggles && toggle_at.(!next_toggle) <= step do
      let i = Rng.next_int rng n in
      up.(i) <- not up.(i);
      incr next_toggle
    done;
    (* keep at least one queue backlogged so select can serve *)
    if not (Array.exists (fun b -> b) up) then up.(Rng.next_int rng n) <- true;
    Array.iteri (fun i u -> if not u then cont.(i) <- false) up;
    let cost = quantum *. (0.1 +. (0.9 *. Rng.next_unit_float rng)) in
    (match Drr.select t ~backlogged:(fun i -> up.(i)) ~cost with
    | None -> Alcotest.fail "select returned None with a backlogged queue"
    | Some i -> if not up.(i) then Alcotest.fail "served an empty queue");
    if Drr.rounds t > !snap_rounds then begin
      let window_rounds = Drr.rounds t - !snap_rounds in
      let ideal = float_of_int window_rounds *. quantum in
      for i = 0 to n - 1 do
        if cont.(i) && up.(i) then begin
          let share = (Drr.boundary_served t i -. snap_served.(i)) /. weights.(i) in
          if Float.abs (share -. ideal) > quantum +. 1e-6 then
            Alcotest.failf
              "queue %d (w=%g): window share %.3f deviates from ideal %.3f by more \
               than one quantum %.3f"
              i weights.(i) share ideal quantum
        end
      done;
      snap_rounds := Drr.rounds t;
      Array.iteri (fun i _ -> snap_served.(i) <- Drr.boundary_served t i) snap_served;
      Array.iteri (fun i u -> cont.(i) <- u) up
    end
  done;
  true

let test_drr_fairness () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:220 ~name:"drr window fairness under churn" drr_case_gen
       drr_prop)

(* The engine's case: every grant costs exactly one quantum, and both
   quantum (a timestep count) and weights are integer-valued floats, so
   deficit arithmetic is exact and at round boundaries the weighted
   shares of always-backlogged queues are EQUAL (zero gap). *)
let test_drr_constant_cost_zero_gap () =
  let rng = Rng.of_int 0xD44 in
  for _case = 0 to 50 do
    let n = 2 + Rng.next_int rng 4 in
    let quantum = float_of_int (1 + Rng.next_int rng 10) in
    let weights = Array.init n (fun _ -> float_of_int (1 + Rng.next_int rng 4)) in
    let t = Drr.create ~quantum ~weights in
    let last_rounds = ref 0 in
    for _ = 0 to 300 do
      (match Drr.select t ~backlogged:(fun _ -> true) ~cost:quantum with
      | None -> Alcotest.fail "select returned None with all queues backlogged"
      | Some _ -> ());
      if Drr.rounds t > !last_rounds then begin
        last_rounds := Drr.rounds t;
        let gap = Drr.weighted_gap t ~over:(fun _ -> true) in
        if gap > 1e-9 then
          Alcotest.failf "constant-cost gap %.3g nonzero at round %d" gap !last_rounds
      end
    done
  done

let test_drr_validation () =
  let inv f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  inv (fun () -> Drr.create ~quantum:0. ~weights:[| 1. |]);
  inv (fun () -> Drr.create ~quantum:4. ~weights:[||]);
  inv (fun () -> Drr.create ~quantum:4. ~weights:[| 0.5 |]);
  let t = Drr.create ~quantum:4. ~weights:[| 1.; 2. |] in
  inv (fun () -> Drr.select t ~backlogged:(fun _ -> true) ~cost:5.);
  inv (fun () -> Drr.select t ~backlogged:(fun _ -> true) ~cost:0.);
  match Drr.select t ~backlogged:(fun _ -> false) ~cost:1. with
  | None -> ()
  | Some _ -> Alcotest.fail "select on all-empty queues must return None"

(* --- traffic engine ---------------------------------------------------- *)

let scale = 48. /. 1024.

let one_tenant_spec ~seed ~mode =
  ignore mode;
  Traffic.make_spec ~scale ~seed ~horizon:10
    [ { Traffic.ts_tenant = Tenant.make "solo"; ts_process = Arrivals.Trace [ 0 ] } ]

let params_with ~mode = { (Slrh.default_params weights) with Slrh.mode }

(* Single-tenant traffic must be bit-identical to the standalone run:
   same placements, same transfers, same TEC bits. *)
let test_single_tenant_bit_identity () =
  List.iter
    (fun mode ->
      for i = 0 to 3 do
        let seed = 500 + (31 * i) in
        let spec = one_tenant_spec ~seed ~mode in
        let params = params_with ~mode in
        let out =
          Traffic.run ~params_for:(fun ~tenant:_ ~seq:_ -> params_with ~mode) spec
        in
        let direct = Slrh.run params (Traffic.app_workload spec ~stream:0 ~seq:0) in
        match out.Traffic.apps with
        | [ { Traffic.a_verdict = Traffic.Served s; _ } ] ->
            let bits f = Int64.bits_of_float f in
            if bits s.Traffic.s_tec <> bits (Schedule.tec direct.Slrh.schedule) then
              Alcotest.failf "seed %d %s: tec bits differ" seed
                (Slrh.mode_to_string mode);
            Alcotest.(check int)
              "t100" (Schedule.n_primary direct.Slrh.schedule) s.Traffic.s_t100;
            Alcotest.(check int)
              "aet" (Schedule.aet direct.Slrh.schedule) s.Traffic.s_aet;
            Alcotest.(check int) "final clock" direct.Slrh.final_clock s.Traffic.s_final_clock;
            Alcotest.(check bool) "completed" direct.Slrh.completed s.Traffic.s_completed;
            Alcotest.(check int)
              "mapped" (Schedule.n_mapped direct.Slrh.schedule) s.Traffic.s_mapped
        | _ -> Alcotest.failf "seed %d: expected exactly one served app" seed
      done)
    [ `Rescan; `Incremental; `Soa ]

let two_tenant_spec ~seed =
  Traffic.make_spec ~scale ~seed ~horizon:2000 ~chunk:8
    [
      {
        Traffic.ts_tenant = Tenant.make ~priority:Tenant.High "gold";
        ts_process = Arrivals.Poisson 0.002;
      };
      {
        Traffic.ts_tenant =
          Tenant.make ~priority:Tenant.Low ~energy_quota:1.5 "bronze";
        ts_process = Arrivals.Poisson 0.002;
      };
    ]

let test_two_tenant_invariants () =
  let spec = two_tenant_spec ~seed:2004 in
  let out = Traffic.run spec in
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Traffic.r_id ^ ": admitted+rejected=arrivals")
        r.Traffic.r_arrivals
        (r.Traffic.r_admitted + r.Traffic.r_rejected);
      if r.Traffic.r_completed > r.Traffic.r_admitted then
        Alcotest.failf "%s: completed > admitted" r.Traffic.r_id;
      if r.Traffic.r_id = "bronze" && r.Traffic.r_reserved > 1.5 +. 1e-9 then
        Alcotest.failf "bronze reserved %.3f exceeds quota 1.5" r.Traffic.r_reserved)
    out.Traffic.rollups;
  (* every bronze rejection (if any) is a typed energy breach *)
  List.iter
    (fun a ->
      match a.Traffic.a_verdict with
      | Traffic.Rejected (Feasibility.Energy_quota _) when a.Traffic.a_tenant = "bronze" -> ()
      | Traffic.Rejected b ->
          Alcotest.failf "%s rejected with unexpected breach %s" a.Traffic.a_tenant
            (Feasibility.quota_breach_to_string b)
      | Traffic.Served _ -> ())
    out.Traffic.apps;
  if out.Traffic.total_steps <= 0 then Alcotest.fail "no scheduler steps granted"

(* Byte-identical telemetry across two runs of the same spec — the
   acceptance criterion for deterministic multi-tenant campaigns. *)
let test_obs_byte_identity () =
  let export () =
    let sink = Agrid_obs.Sink.create () in
    ignore (Traffic.run ~obs:sink (two_tenant_spec ~seed:77));
    Agrid_obs.Export.to_jsonl sink
  in
  let a = export () and b = export () in
  Alcotest.(check string) "obs JSONL byte-identical" a b;
  if not (String.length a > 0) then Alcotest.fail "empty export"

(* A churn timeline (leave + rejoin) through the chunked engine: still
   deterministic, still total. *)
let test_traffic_with_churn () =
  let spec =
    Traffic.make_spec ~scale ~seed:9 ~horizon:1000 ~chunk:4
      ~events:(Agrid_churn.Event.parse_trace "leave@100:1,rejoin@2000:1")
      [
        { Traffic.ts_tenant = Tenant.make ~priority:Tenant.High "a";
          ts_process = Arrivals.Trace [ 0; 50 ] };
        { Traffic.ts_tenant = Tenant.make "b"; ts_process = Arrivals.Trace [ 0 ] };
      ]
  in
  let o1 = Traffic.run spec and o2 = Traffic.run spec in
  if o1.Traffic.apps <> o2.Traffic.apps then Alcotest.fail "churned traffic not deterministic";
  Alcotest.(check int) "all apps accounted" 3 (List.length o1.Traffic.apps)

(* Spec JSON: print/parse fixed point on structured values. *)
let test_spec_roundtrip () =
  let specs =
    [
      two_tenant_spec ~seed:1;
      one_tenant_spec ~seed:2 ~mode:`Soa;
      Traffic.make_spec ~scale:0.1 ~case:Agrid_platform.Grid.B ~chunk:3 ~seed:5
        ~horizon:100
        ~events:(Agrid_churn.Event.parse_trace "leave@10:0,rejoin@20:0")
        [
          { Traffic.ts_tenant = Tenant.make ~machine_quota:2 "m"; ts_process = Arrivals.Trace [ 0; 1; 1 ] };
        ];
    ]
  in
  List.iter
    (fun spec ->
      match Traffic.spec_of_string (Traffic.spec_to_string spec) with
      | Ok spec' ->
          if spec' <> spec then Alcotest.fail "spec print/parse not a fixed point"
      | Error m -> Alcotest.failf "own spec rejected: %s" m)
    specs;
  (* invalid specs produce one-line errors, not exceptions *)
  List.iter
    (fun s ->
      match Traffic.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad spec accepted: %s" s)
    [
      "{";
      "{}";
      {|{"schema":"agrid-traffic/1","seed":1,"horizon":10,"tenants":[]}|};
      {|{"schema":"agrid-traffic/1","seed":1,"horizon":10,"tenants":[{"id":"x","rate":-2}]}|};
      {|{"schema":"agrid-traffic/1","seed":1,"horizon":10,"tenants":[{"id":"x","rate":0.1,"energy_quota":-1}]}|};
      {|{"schema":"agrid-traffic/1","seed":1,"horizon":10,"tenants":[{"id":"has space","rate":0.1}]}|};
    ]

let suites =
  [
    ( "tenant",
      [
        Alcotest.test_case "arrival determinism + total order" `Quick
          test_arrival_determinism;
        Alcotest.test_case "arrival validation" `Quick test_arrival_validation;
        Alcotest.test_case "quota verdicts total" `Quick test_quota_totality;
        Alcotest.test_case "reservation bounds TEC" `Slow test_reservation_bounds_tec;
        Alcotest.test_case "drr window fairness (qcheck)" `Slow test_drr_fairness;
        Alcotest.test_case "drr constant-cost zero gap" `Quick
          test_drr_constant_cost_zero_gap;
        Alcotest.test_case "drr validation" `Quick test_drr_validation;
        Alcotest.test_case "single-tenant bit identity" `Slow
          test_single_tenant_bit_identity;
        Alcotest.test_case "two-tenant invariants" `Slow test_two_tenant_invariants;
        Alcotest.test_case "obs byte identity" `Slow test_obs_byte_identity;
        Alcotest.test_case "traffic under churn" `Slow test_traffic_with_churn;
        Alcotest.test_case "traffic spec round trip" `Quick test_spec_roundtrip;
      ] );
  ]
