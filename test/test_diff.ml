(* Differential oracle suite: [`Rescan] (the naive rebuild-everything
   loop, kept as the reference semantics) versus [`Incremental] (the
   memoized/pool-reusing hot path that is now the default) must be
   bit-identical — schedules, traces, decision-ledger JSONL, telemetry
   counters, histograms and snapshots. The only permitted divergence is
   the [`Incremental]-only counter family ["slrh/pool_reused"] /
   ["slrh/pool_rebuilt"] (and span durations, which are wall time).

   The same discipline pins campaign sharding: the level aggregates and
   counter totals of [Campaign.run] must not depend on [~shards]. *)

open Agrid_core
open Agrid_sched
open Agrid_workload
open Agrid_obs
module Trace = Agrid_core.Trace  (* the decision trace, not Agrid_obs.Trace *)
module Rng = Agrid_prng.Splitmix64

(* The [`Incremental]-only counters: everything else must match. *)
let excluded_counters = [ "slrh/pool_reused"; "slrh/pool_rebuilt" ]

let bits = Int64.bits_of_float

let metric_repr (name, m) =
  match m with
  | Registry.Counter c -> Fmt.str "%s=c:%d" name c
  | Registry.Gauge g -> Fmt.str "%s=g:%Lx" name (bits g)
  | Registry.Histogram h ->
      Fmt.str "%s=h:%d:%Lx:%s" name (Hist.count h) (bits (Hist.sum h))
        (String.concat ","
           (List.map string_of_int (Array.to_list (Hist.counts h))))

let comparable_metrics sink =
  Sink.metrics sink
  |> List.filter (fun (n, _) -> not (List.mem n excluded_counters))
  |> List.map metric_repr |> List.sort compare

let span_counts sink =
  Sink.span_stats sink
  |> List.map (fun (s : Span.stats) -> (s.Span.name, s.Span.count))
  |> List.sort compare

let counter_of sink name =
  match List.assoc_opt name (Sink.metrics sink) with
  | Some (Registry.Counter c) -> c
  | _ -> 0

(* Telemetry equality, modulo the reuse-counter family and durations. *)
let check_sinks msg rescan incr =
  Alcotest.(check (list string))
    (msg ^ ": metrics") (comparable_metrics rescan) (comparable_metrics incr);
  Alcotest.(check (list (pair string int)))
    (msg ^ ": span counts") (span_counts rescan) (span_counts incr);
  if Sink.snapshots rescan <> Sink.snapshots incr then
    Alcotest.failf "%s: snapshot streams diverge" msg;
  (* the incremental sink may only add the reuse family, nothing else *)
  let names s = List.map fst (Sink.metrics s) in
  let base = names rescan in
  List.iter
    (fun n ->
      if (not (List.mem n base)) && not (List.mem n excluded_counters) then
        Alcotest.failf "%s: unexpected incremental-only metric %s" msg n)
    (names incr)

(* Scheduler-outcome equality, field by field (wall_seconds excluded:
   it is measured, not computed). *)
let check_outcomes msg (a : Slrh.outcome) (b : Slrh.outcome) =
  if Schedule.placements a.Slrh.schedule <> Schedule.placements b.Slrh.schedule
  then Alcotest.failf "%s: placements diverge" msg;
  if Schedule.transfers a.Slrh.schedule <> Schedule.transfers b.Slrh.schedule
  then Alcotest.failf "%s: transfers diverge" msg;
  Alcotest.(check int) (msg ^ ": aet") (Schedule.aet a.Slrh.schedule)
    (Schedule.aet b.Slrh.schedule);
  if bits (Schedule.tec a.Slrh.schedule) <> bits (Schedule.tec b.Slrh.schedule)
  then Alcotest.failf "%s: TEC diverges bitwise" msg;
  Alcotest.(check int) (msg ^ ": t100")
    (Schedule.n_primary a.Slrh.schedule)
    (Schedule.n_primary b.Slrh.schedule);
  Alcotest.(check bool) (msg ^ ": completed") a.Slrh.completed b.Slrh.completed;
  Alcotest.(check int) (msg ^ ": final clock") a.Slrh.final_clock
    b.Slrh.final_clock;
  if a.Slrh.stats <> b.Slrh.stats then
    Alcotest.failf "%s: stats counters diverge" msg

let run_static ~mode ~ledger sc wl =
  let sink = Sink.create ~stride:4 ~ledger () in
  let tracer = Trace.create () in
  let p =
    { (Test_props.params sc) with Slrh.mode; tracer = Some tracer; obs = sink }
  in
  let o = Slrh.run p wl in
  (o, sink, tracer)

(* 150 static scenarios: full outcome + trace + telemetry equality. *)
let test_static () =
  let reused = ref 0 in
  for i = 0 to 149 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let o1, s1, t1 = run_static ~mode:`Rescan ~ledger:false sc wl in
    let o2, s2, t2 = run_static ~mode:`Incremental ~ledger:false sc wl in
    let msg = Test_props.describe sc in
    check_outcomes msg o1 o2;
    if Trace.csv_rows t1 <> Trace.csv_rows t2 then
      Alcotest.failf "%s: trace rows diverge" msg;
    check_sinks msg s1 s2;
    if counter_of s1 "slrh/pool_reused" <> 0 then
      Alcotest.failf "%s: rescan mode counted a pool reuse" msg;
    reused := !reused + counter_of s2 "slrh/pool_reused"
  done;
  (* the oracle must exercise the fast path, not vacuously pass *)
  if !reused = 0 then
    Alcotest.fail "incremental mode never reused a pool across 150 scenarios"

(* Churn timelines: the same scripted leave/rejoin trace through the
   engine in both modes. Pool reuse spans engine phases only through the
   per-phase caches (each [continue_run] builds its own), so equality
   here pins the eligible-set-stability assumption the cache makes. *)
let sample_events i wl =
  let rng = Rng.of_int (0xC0DE + (i * 131)) in
  let tau = Workload.tau wl in
  Agrid_churn.Sample.exponential_trace rng
    ~n_machines:(Workload.n_machines wl)
    ~horizon:tau
    ~up_mean:(fun _ -> float_of_int tau /. 1.5)
    ~down_mean:(fun _ -> 0.12 *. float_of_int tau)

let run_churn ~mode ~ledger sc wl events =
  let sink = Sink.create ~stride:4 ~ledger () in
  let p = { (Test_props.params sc) with Slrh.mode; obs = sink } in
  (Dynamic.run_churn p wl events, sink)

let check_engine msg (a : _ Agrid_churn.Engine.outcome)
    (b : _ Agrid_churn.Engine.outcome) =
  if Schedule.placements a.Agrid_churn.Engine.schedule
     <> Schedule.placements b.Agrid_churn.Engine.schedule
  then Alcotest.failf "%s: engine placements diverge" msg;
  Alcotest.(check bool) (msg ^ ": completed") a.completed b.completed;
  Alcotest.(check int) (msg ^ ": final clock") a.final_clock b.final_clock;
  Alcotest.(check int) (msg ^ ": discarded") a.n_discarded b.n_discarded;
  Alcotest.(check int) (msg ^ ": failed") a.n_failed b.n_failed;
  Alcotest.(check int) (msg ^ ": held") a.n_held b.n_held;
  if bits a.sunk_energy <> bits b.sunk_energy then
    Alcotest.failf "%s: sunk energy diverges bitwise" msg;
  if a.up <> b.up || a.discards <> b.discards || a.applied <> b.applied then
    Alcotest.failf "%s: churn event application diverges" msg;
  let phase_shape (p : _ Agrid_churn.Engine.phase) =
    ( p.Agrid_churn.Engine.ph_from,
      p.Agrid_churn.Engine.ph_until,
      p.Agrid_churn.Engine.ph_up )
  in
  if List.map phase_shape a.phases <> List.map phase_shape b.phases then
    Alcotest.failf "%s: phase boundaries diverge" msg;
  List.iter2
    (fun (pa : Slrh.outcome Agrid_churn.Engine.phase) pb ->
      if
        pa.Agrid_churn.Engine.ph_outcome.Slrh.stats
        <> pb.Agrid_churn.Engine.ph_outcome.Slrh.stats
      then Alcotest.failf "%s: per-phase scheduler stats diverge" msg)
    a.phases b.phases

let test_churn () =
  for i = 0 to 59 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let events = sample_events i wl in
    let o1, s1 = run_churn ~mode:`Rescan ~ledger:false sc wl events in
    let o2, s2 = run_churn ~mode:`Incremental ~ledger:false sc wl events in
    let msg = Fmt.str "%s + %d churn events" (Test_props.describe sc)
        (List.length events)
    in
    check_engine msg o1 o2;
    check_sinks msg s1 s2
  done

(* A battery shock landing mid-run, between two commits that in a static
   run would reuse the machine's cached candidate pool. The engine splits
   scheduler phases at the event, so incremental mode must re-price
   admission against the shocked battery instead of replaying a pre-shock
   pool — rescan/incremental equality across the boundary pins exactly
   that invalidation. Non-vacuity is asserted both ways: the shocks must
   actually charge energy, and the incremental runs must actually reuse
   pools (so the fast path, not a degenerate always-rebuild, is what gets
   compared). *)
let test_battery_shock_mid_epoch () =
  let reused = ref 0 and shocked = ref 0. in
  for i = 0 to 19 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let at = Workload.tau wl / 3 in
    let machine = i mod Workload.n_machines wl in
    let events =
      [ { Agrid_churn.Event.at; kind = Agrid_churn.Event.Battery_shock (machine, 0.5) } ]
    in
    let o1, s1 = run_churn ~mode:`Rescan ~ledger:false sc wl events in
    let o2, s2 = run_churn ~mode:`Incremental ~ledger:false sc wl events in
    let msg = Fmt.str "%s + shock@%d:%d" (Test_props.describe sc) at machine in
    check_engine msg o1 o2;
    check_sinks msg s1 s2;
    (match o2.Agrid_churn.Engine.applied with
    | [ a ] -> Alcotest.(check int) (msg ^ ": one event applied") 1
        (match a.Agrid_churn.Engine.ev.Agrid_churn.Event.kind with
        | Agrid_churn.Event.Battery_shock _ -> 1
        | _ -> 0)
    | l -> Alcotest.failf "%s: expected exactly one applied event, got %d" msg (List.length l));
    shocked := !shocked +. o2.Agrid_churn.Engine.shock_energy;
    reused := !reused + counter_of s2 "slrh/pool_reused"
  done;
  if !shocked <= 0. then Alcotest.fail "no shock ever charged energy";
  if !reused = 0 then
    Alcotest.fail "incremental mode never reused a pool around the shock"

(* Decision ledgers: the full JSONL artefact must match byte for byte
   (incremental mode turns whole-pool reuse off while a ledger is
   attached precisely so every rejection entry is re-derived). *)
let ledger_jsonl sink =
  match Sink.ledger sink with
  | Some l -> Ledger.to_jsonl l
  | None -> Alcotest.fail "sink created with ~ledger:true has no ledger"

let test_ledger () =
  for i = 0 to 9 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let _, s1, _ = run_static ~mode:`Rescan ~ledger:true sc wl in
    let _, s2, _ = run_static ~mode:`Incremental ~ledger:true sc wl in
    if ledger_jsonl s1 <> ledger_jsonl s2 then
      Alcotest.failf "%s: static ledger JSONL diverges" (Test_props.describe sc)
  done;
  for i = 0 to 9 do
    let sc = Test_props.scenario (60 + i) in
    let wl = Test_props.workload sc in
    let events = sample_events (60 + i) wl in
    let _, s1 = run_churn ~mode:`Rescan ~ledger:true sc wl events in
    let _, s2 = run_churn ~mode:`Incremental ~ledger:true sc wl events in
    if ledger_jsonl s1 <> ledger_jsonl s2 then
      Alcotest.failf "%s: churn ledger JSONL diverges" (Test_props.describe sc)
  done

(* Online dual ascent under both modes: weight updates mid-run must not
   break rescan/incremental equality — pool membership and the cached
   parent bounds never read the weights, and scoring re-reads them per
   call, so identical commit sequences produce identical subgradients and
   hence identical multiplier trajectories. A fresh controller per run:
   [Adapt.t] is mutable state and must never be shared across modes. *)
let adaptive_spec =
  { Adapt.default_spec with Adapt.step_c = 1.5; prob = Some 0.9; sigma = 0.2 }

let with_adapt (p : Slrh.params) =
  {
    p with
    Slrh.adapt = Some (Adapt.create adaptive_spec p.Slrh.weights);
    feas_mode = Adapt.feas_mode adaptive_spec;
  }

let run_adaptive_static ~mode ~ledger sc wl =
  let sink = Sink.create ~stride:4 ~ledger () in
  let p = with_adapt { (Test_props.params sc) with Slrh.mode; obs = sink } in
  (Slrh.run p wl, sink)

let test_adaptive_static () =
  let updates = ref 0 in
  for i = 0 to 39 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let o1, s1 = run_adaptive_static ~mode:`Rescan ~ledger:false sc wl in
    let o2, s2 = run_adaptive_static ~mode:`Incremental ~ledger:false sc wl in
    let msg = Fmt.str "%s + dual ascent" (Test_props.describe sc) in
    check_outcomes msg o1 o2;
    check_sinks msg s1 s2;
    updates := !updates + counter_of s2 "lagrange/updates"
  done;
  if !updates = 0 then
    Alcotest.fail "no dual round ever ran across 40 adaptive scenarios"

let test_adaptive_churn () =
  for i = 0 to 19 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let events = sample_events i wl in
    let run mode =
      let sink = Sink.create ~stride:4 ~ledger:false () in
      let p = with_adapt { (Test_props.params sc) with Slrh.mode; obs = sink } in
      (Dynamic.run_churn p wl events, sink)
    in
    let o1, s1 = run `Rescan in
    let o2, s2 = run `Incremental in
    let msg =
      Fmt.str "%s + dual ascent + %d churn events" (Test_props.describe sc)
        (List.length events)
    in
    check_engine msg o1 o2;
    check_sinks msg s1 s2
  done

(* And the adaptive ledgers — the Multiplier entries serialise floats, so
   byte equality of the JSONL pins the whole multiplier trajectory. *)
let test_adaptive_ledger () =
  for i = 0 to 9 do
    let sc = Test_props.scenario (30 + i) in
    let wl = Test_props.workload sc in
    let _, s1 = run_adaptive_static ~mode:`Rescan ~ledger:true sc wl in
    let _, s2 = run_adaptive_static ~mode:`Incremental ~ledger:true sc wl in
    if ledger_jsonl s1 <> ledger_jsonl s2 then
      Alcotest.failf "%s: adaptive ledger JSONL diverges" (Test_props.describe sc)
  done

(* Campaign sharding: aggregates and counter totals are shard-count
   invariant (1, 3 — uneven blocks — and 4 shards over 6 replicates). *)
let counters_only sink =
  Sink.metrics sink
  |> List.filter_map (fun (n, m) ->
         match m with Registry.Counter c -> Some (n, c) | _ -> None)
  |> List.sort compare

let test_campaign_shards () =
  let config = Agrid_exper.Config.smoke ~seed:99 () in
  let run shards =
    let sink = Sink.create ~stride:8 () in
    let levels =
      Agrid_exper.Campaign.run ~obs:sink ~intensities:[ 0.0; 2.0 ]
        ~replicates:6 ~shards ~seed:515 config
    in
    (levels, sink)
  in
  let l1, s1 = run 1 in
  List.iter
    (fun shards ->
      let ln, sn = run shards in
      if l1 <> ln then
        Alcotest.failf "campaign levels diverge between 1 and %d shards" shards;
      Alcotest.(check (list (pair string int)))
        (Fmt.str "campaign counters, 1 vs %d shards" shards)
        (counters_only s1) (counters_only sn))
    [ 3; 4 ]

(* The adaptive campaign seeds a fresh dual-ascent controller per
   replicate, so its aggregates must be just as shard-invariant. *)
let test_campaign_shards_adaptive () =
  let config = Agrid_exper.Config.smoke ~seed:99 () in
  let run shards =
    let sink = Sink.create ~stride:8 () in
    let levels =
      Agrid_exper.Campaign.run ~obs:sink ~adapt:adaptive_spec
        ~intensities:[ 0.0; 2.0 ] ~replicates:4 ~shards ~seed:515 config
    in
    (levels, sink)
  in
  let l1, s1 = run 1 in
  let l3, s3 = run 3 in
  if l1 <> l3 then
    Alcotest.fail "adaptive campaign levels diverge between 1 and 3 shards";
  Alcotest.(check (list (pair string int)))
    "adaptive campaign counters, 1 vs 3 shards" (counters_only s1)
    (counters_only s3);
  if counter_of s1 "lagrange/updates" = 0 then
    Alcotest.fail "adaptive campaign never ran a dual round"

let suites =
  [
    ( "diff",
      [
        Alcotest.test_case "rescan = incremental on 150 static scenarios"
          `Slow test_static;
        Alcotest.test_case "rescan = incremental on 60 churn timelines" `Slow
          test_churn;
        Alcotest.test_case "battery shock mid-pool-epoch invalidates reuse"
          `Slow test_battery_shock_mid_epoch;
        Alcotest.test_case "ledger JSONL identical in both modes (20 runs)"
          `Slow test_ledger;
        Alcotest.test_case "rescan = incremental under dual ascent (40 static)"
          `Slow test_adaptive_static;
        Alcotest.test_case "rescan = incremental under dual ascent (20 churn)"
          `Slow test_adaptive_churn;
        Alcotest.test_case "adaptive ledger JSONL identical in both modes"
          `Slow test_adaptive_ledger;
        Alcotest.test_case "campaign aggregates shard-count invariant" `Slow
          test_campaign_shards;
        Alcotest.test_case "adaptive campaign shard-count invariant" `Slow
          test_campaign_shards_adaptive;
      ] );
  ]
