(* Differential oracle suite: [`Rescan] (the naive rebuild-everything
   loop, kept as the reference semantics) versus each optimised mode —
   [`Incremental] (memoized boxed pools) and [`Soa] (the flat
   preallocated arena that is now the default) — must be bit-identical:
   schedules, traces, decision-ledger JSONL, telemetry counters,
   histograms and snapshots. The only permitted divergence is the
   maintenance-only metric family ["slrh/pool_reused"] /
   ["slrh/pool_rebuilt"] / ["slrh/pool_capacity"] / ["slrh/pool_regrown"]
   (and span durations, which are wall time).

   [`Soa] runs here through both of its execution shapes: the static
   pairs attach a tracer, which forces the arena to materialise sorted
   candidate lists for the boxed walk; the churn pairs and the dedicated
   fast-path pairs attach neither tracer nor ledger, so the
   zero-allocation walk that commits straight off the arena is what gets
   compared. A QCheck property additionally pins the batch scorer
   against the per-candidate fold, bit for bit, on partially built
   schedules.

   The same discipline pins campaign sharding: the level aggregates and
   counter totals of [Campaign.run] must not depend on [~shards]. *)

open Agrid_core
open Agrid_sched
open Agrid_workload
open Agrid_obs
module Trace = Agrid_core.Trace  (* the decision trace, not Agrid_obs.Trace *)
module Rng = Agrid_prng.Splitmix64

(* Pool-maintenance metrics: everything else must match. The first two
   are counters shared by the optimised modes; the last two are
   [`Soa]-only arena-sizing metrics. *)
let excluded_counters =
  [
    "slrh/pool_reused"; "slrh/pool_rebuilt"; "slrh/pool_capacity";
    "slrh/pool_regrown";
  ]

let mode_name mode = Slrh.mode_to_string mode
let fast_modes = [ `Incremental; `Soa ]

let bits = Int64.bits_of_float

let metric_repr (name, m) =
  match m with
  | Registry.Counter c -> Fmt.str "%s=c:%d" name c
  | Registry.Gauge g -> Fmt.str "%s=g:%Lx" name (bits g)
  | Registry.Histogram h ->
      Fmt.str "%s=h:%d:%Lx:%s" name (Hist.count h) (bits (Hist.sum h))
        (String.concat ","
           (List.map string_of_int (Array.to_list (Hist.counts h))))

let comparable_metrics sink =
  Sink.metrics sink
  |> List.filter (fun (n, _) -> not (List.mem n excluded_counters))
  |> List.map metric_repr |> List.sort compare

let span_counts sink =
  Sink.span_stats sink
  |> List.map (fun (s : Span.stats) -> (s.Span.name, s.Span.count))
  |> List.sort compare

let counter_of sink name =
  match List.assoc_opt name (Sink.metrics sink) with
  | Some (Registry.Counter c) -> c
  | _ -> 0

(* Telemetry equality, modulo the reuse-counter family and durations. *)
let check_sinks msg rescan incr =
  Alcotest.(check (list string))
    (msg ^ ": metrics") (comparable_metrics rescan) (comparable_metrics incr);
  Alcotest.(check (list (pair string int)))
    (msg ^ ": span counts") (span_counts rescan) (span_counts incr);
  if Sink.snapshots rescan <> Sink.snapshots incr then
    Alcotest.failf "%s: snapshot streams diverge" msg;
  (* the optimised mode's sink may only add the pool-maintenance family *)
  let names s = List.map fst (Sink.metrics s) in
  let base = names rescan in
  List.iter
    (fun n ->
      if (not (List.mem n base)) && not (List.mem n excluded_counters) then
        Alcotest.failf "%s: unexpected mode-only metric %s" msg n)
    (names incr)

(* Scheduler-outcome equality, field by field (wall_seconds excluded:
   it is measured, not computed). *)
let check_outcomes msg (a : Slrh.outcome) (b : Slrh.outcome) =
  if Schedule.placements a.Slrh.schedule <> Schedule.placements b.Slrh.schedule
  then Alcotest.failf "%s: placements diverge" msg;
  if Schedule.transfers a.Slrh.schedule <> Schedule.transfers b.Slrh.schedule
  then Alcotest.failf "%s: transfers diverge" msg;
  Alcotest.(check int) (msg ^ ": aet") (Schedule.aet a.Slrh.schedule)
    (Schedule.aet b.Slrh.schedule);
  if bits (Schedule.tec a.Slrh.schedule) <> bits (Schedule.tec b.Slrh.schedule)
  then Alcotest.failf "%s: TEC diverges bitwise" msg;
  Alcotest.(check int) (msg ^ ": t100")
    (Schedule.n_primary a.Slrh.schedule)
    (Schedule.n_primary b.Slrh.schedule);
  Alcotest.(check bool) (msg ^ ": completed") a.Slrh.completed b.Slrh.completed;
  Alcotest.(check int) (msg ^ ": final clock") a.Slrh.final_clock
    b.Slrh.final_clock;
  if a.Slrh.stats <> b.Slrh.stats then
    Alcotest.failf "%s: stats counters diverge" msg

let run_static ~mode ~ledger sc wl =
  let sink = Sink.create ~stride:4 ~ledger () in
  let tracer = Trace.create () in
  let p =
    { (Test_props.params sc) with Slrh.mode; tracer = Some tracer; obs = sink }
  in
  let o = Slrh.run p wl in
  (o, sink, tracer)

(* 150 static scenarios: full outcome + trace + telemetry equality. *)
let test_static mode () =
  let reused = ref 0 in
  for i = 0 to 149 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let o1, s1, t1 = run_static ~mode:`Rescan ~ledger:false sc wl in
    let o2, s2, t2 = run_static ~mode ~ledger:false sc wl in
    let msg = Fmt.str "%s vs %s" (Test_props.describe sc) (mode_name mode) in
    check_outcomes msg o1 o2;
    if Trace.csv_rows t1 <> Trace.csv_rows t2 then
      Alcotest.failf "%s: trace rows diverge" msg;
    check_sinks msg s1 s2;
    if counter_of s1 "slrh/pool_reused" <> 0 then
      Alcotest.failf "%s: rescan mode counted a pool reuse" msg;
    reused := !reused + counter_of s2 "slrh/pool_reused"
  done;
  (* the oracle must exercise the fast path, not vacuously pass *)
  if !reused = 0 then
    Alcotest.failf "%s mode never reused a pool across 150 scenarios"
      (mode_name mode)

(* The [`Soa] fast path proper: no tracer and no ledger attached, so the
   walk plans and commits straight off the arena (the shape whose
   steady-state allocation test_alloc pins at zero) instead of
   materialising sorted lists for the boxed walk. Outcome and telemetry
   must still match rescan exactly — including the score-value histogram,
   whose float accumulation order is fill order, so this also pins that
   the arena scores in ready-list order. *)
let test_static_fast_path () =
  let reused = ref 0 and regrown = ref 0 in
  for i = 0 to 59 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let run mode =
      let sink = Sink.create ~stride:4 ~ledger:false () in
      let o = Slrh.run { (Test_props.params sc) with Slrh.mode; obs = sink } wl in
      (o, sink)
    in
    let o1, s1 = run `Rescan in
    let o2, s2 = run `Soa in
    let msg = Fmt.str "%s, no recorders" (Test_props.describe sc) in
    check_outcomes msg o1 o2;
    check_sinks msg s1 s2;
    reused := !reused + counter_of s2 "slrh/pool_reused";
    regrown := !regrown + counter_of s2 "slrh/pool_regrown"
  done;
  if !reused = 0 then
    Alcotest.fail "soa fast path never reused a pool across 60 scenarios";
  if !regrown = 0 then
    Alcotest.fail "soa fast path never regrew a row across 60 scenarios"

(* Churn timelines: the same scripted leave/rejoin trace through the
   engine in both modes. Pool reuse spans engine phases only through the
   per-phase caches (each [continue_run] builds its own), so equality
   here pins the eligible-set-stability assumption the cache makes. *)
let sample_events i wl =
  let rng = Rng.of_int (0xC0DE + (i * 131)) in
  let tau = Workload.tau wl in
  Agrid_churn.Sample.exponential_trace rng
    ~n_machines:(Workload.n_machines wl)
    ~horizon:tau
    ~up_mean:(fun _ -> float_of_int tau /. 1.5)
    ~down_mean:(fun _ -> 0.12 *. float_of_int tau)

let run_churn ~mode ~ledger sc wl events =
  let sink = Sink.create ~stride:4 ~ledger () in
  let p = { (Test_props.params sc) with Slrh.mode; obs = sink } in
  (Dynamic.run_churn p wl events, sink)

let check_engine msg (a : _ Agrid_churn.Engine.outcome)
    (b : _ Agrid_churn.Engine.outcome) =
  if Schedule.placements a.Agrid_churn.Engine.schedule
     <> Schedule.placements b.Agrid_churn.Engine.schedule
  then Alcotest.failf "%s: engine placements diverge" msg;
  Alcotest.(check bool) (msg ^ ": completed") a.completed b.completed;
  Alcotest.(check int) (msg ^ ": final clock") a.final_clock b.final_clock;
  Alcotest.(check int) (msg ^ ": discarded") a.n_discarded b.n_discarded;
  Alcotest.(check int) (msg ^ ": failed") a.n_failed b.n_failed;
  Alcotest.(check int) (msg ^ ": held") a.n_held b.n_held;
  if bits a.sunk_energy <> bits b.sunk_energy then
    Alcotest.failf "%s: sunk energy diverges bitwise" msg;
  if a.up <> b.up || a.discards <> b.discards || a.applied <> b.applied then
    Alcotest.failf "%s: churn event application diverges" msg;
  let phase_shape (p : _ Agrid_churn.Engine.phase) =
    ( p.Agrid_churn.Engine.ph_from,
      p.Agrid_churn.Engine.ph_until,
      p.Agrid_churn.Engine.ph_up )
  in
  if List.map phase_shape a.phases <> List.map phase_shape b.phases then
    Alcotest.failf "%s: phase boundaries diverge" msg;
  List.iter2
    (fun (pa : Slrh.outcome Agrid_churn.Engine.phase) pb ->
      if
        pa.Agrid_churn.Engine.ph_outcome.Slrh.stats
        <> pb.Agrid_churn.Engine.ph_outcome.Slrh.stats
      then Alcotest.failf "%s: per-phase scheduler stats diverge" msg)
    a.phases b.phases

let test_churn mode () =
  for i = 0 to 59 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let events = sample_events i wl in
    let o1, s1 = run_churn ~mode:`Rescan ~ledger:false sc wl events in
    let o2, s2 = run_churn ~mode ~ledger:false sc wl events in
    let msg =
      Fmt.str "%s + %d churn events vs %s" (Test_props.describe sc)
        (List.length events) (mode_name mode)
    in
    check_engine msg o1 o2;
    check_sinks msg s1 s2
  done

(* A battery shock landing mid-run, between two commits that in a static
   run would reuse the machine's cached candidate pool. The engine splits
   scheduler phases at the event, so incremental mode must re-price
   admission against the shocked battery instead of replaying a pre-shock
   pool — rescan/incremental equality across the boundary pins exactly
   that invalidation. Non-vacuity is asserted both ways: the shocks must
   actually charge energy, and the incremental runs must actually reuse
   pools (so the fast path, not a degenerate always-rebuild, is what gets
   compared). *)
let test_battery_shock_mid_epoch mode () =
  let reused = ref 0 and shocked = ref 0. in
  for i = 0 to 19 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let at = Workload.tau wl / 3 in
    let machine = i mod Workload.n_machines wl in
    let events =
      [ { Agrid_churn.Event.at; kind = Agrid_churn.Event.Battery_shock (machine, 0.5) } ]
    in
    let o1, s1 = run_churn ~mode:`Rescan ~ledger:false sc wl events in
    let o2, s2 = run_churn ~mode ~ledger:false sc wl events in
    let msg =
      Fmt.str "%s + shock@%d:%d vs %s" (Test_props.describe sc) at machine
        (mode_name mode)
    in
    check_engine msg o1 o2;
    check_sinks msg s1 s2;
    (match o2.Agrid_churn.Engine.applied with
    | [ a ] -> Alcotest.(check int) (msg ^ ": one event applied") 1
        (match a.Agrid_churn.Engine.ev.Agrid_churn.Event.kind with
        | Agrid_churn.Event.Battery_shock _ -> 1
        | _ -> 0)
    | l -> Alcotest.failf "%s: expected exactly one applied event, got %d" msg (List.length l));
    shocked := !shocked +. o2.Agrid_churn.Engine.shock_energy;
    reused := !reused + counter_of s2 "slrh/pool_reused"
  done;
  if !shocked <= 0. then Alcotest.fail "no shock ever charged energy";
  if !reused = 0 then
    Alcotest.failf "%s mode never reused a pool around the shock"
      (mode_name mode)

(* Decision ledgers: the full JSONL artefact must match byte for byte
   (incremental mode turns whole-pool reuse off while a ledger is
   attached precisely so every rejection entry is re-derived). *)
let ledger_jsonl sink =
  match Sink.ledger sink with
  | Some l -> Ledger.to_jsonl l
  | None -> Alcotest.fail "sink created with ~ledger:true has no ledger"

let test_ledger mode () =
  for i = 0 to 9 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let _, s1, _ = run_static ~mode:`Rescan ~ledger:true sc wl in
    let _, s2, _ = run_static ~mode ~ledger:true sc wl in
    if ledger_jsonl s1 <> ledger_jsonl s2 then
      Alcotest.failf "%s: static ledger JSONL diverges vs %s"
        (Test_props.describe sc) (mode_name mode)
  done;
  for i = 0 to 9 do
    let sc = Test_props.scenario (60 + i) in
    let wl = Test_props.workload sc in
    let events = sample_events (60 + i) wl in
    let _, s1 = run_churn ~mode:`Rescan ~ledger:true sc wl events in
    let _, s2 = run_churn ~mode ~ledger:true sc wl events in
    if ledger_jsonl s1 <> ledger_jsonl s2 then
      Alcotest.failf "%s: churn ledger JSONL diverges vs %s"
        (Test_props.describe sc) (mode_name mode)
  done

(* Online dual ascent under both modes: weight updates mid-run must not
   break rescan/incremental equality — pool membership and the cached
   parent bounds never read the weights, and scoring re-reads them per
   call, so identical commit sequences produce identical subgradients and
   hence identical multiplier trajectories. A fresh controller per run:
   [Adapt.t] is mutable state and must never be shared across modes. *)
let adaptive_spec =
  { Adapt.default_spec with Adapt.step_c = 1.5; prob = Some 0.9; sigma = 0.2 }

let with_adapt (p : Slrh.params) =
  {
    p with
    Slrh.adapt = Some (Adapt.create adaptive_spec p.Slrh.weights);
    feas_mode = Adapt.feas_mode adaptive_spec;
  }

let run_adaptive_static ~mode ~ledger sc wl =
  let sink = Sink.create ~stride:4 ~ledger () in
  let p = with_adapt { (Test_props.params sc) with Slrh.mode; obs = sink } in
  (Slrh.run p wl, sink)

let test_adaptive_static mode () =
  let updates = ref 0 in
  for i = 0 to 39 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let o1, s1 = run_adaptive_static ~mode:`Rescan ~ledger:false sc wl in
    let o2, s2 = run_adaptive_static ~mode ~ledger:false sc wl in
    let msg =
      Fmt.str "%s + dual ascent vs %s" (Test_props.describe sc) (mode_name mode)
    in
    check_outcomes msg o1 o2;
    check_sinks msg s1 s2;
    updates := !updates + counter_of s2 "lagrange/updates"
  done;
  if !updates = 0 then
    Alcotest.fail "no dual round ever ran across 40 adaptive scenarios"

let test_adaptive_churn mode () =
  for i = 0 to 19 do
    let sc = Test_props.scenario i in
    let wl = Test_props.workload sc in
    let events = sample_events i wl in
    let run mode =
      let sink = Sink.create ~stride:4 ~ledger:false () in
      let p = with_adapt { (Test_props.params sc) with Slrh.mode; obs = sink } in
      (Dynamic.run_churn p wl events, sink)
    in
    let o1, s1 = run `Rescan in
    let o2, s2 = run mode in
    let msg =
      Fmt.str "%s + dual ascent + %d churn events vs %s" (Test_props.describe sc)
        (List.length events) (mode_name mode)
    in
    check_engine msg o1 o2;
    check_sinks msg s1 s2
  done

(* And the adaptive ledgers — the Multiplier entries serialise floats, so
   byte equality of the JSONL pins the whole multiplier trajectory. *)
let test_adaptive_ledger mode () =
  for i = 0 to 9 do
    let sc = Test_props.scenario (30 + i) in
    let wl = Test_props.workload sc in
    let _, s1 = run_adaptive_static ~mode:`Rescan ~ledger:true sc wl in
    let _, s2 = run_adaptive_static ~mode ~ledger:true sc wl in
    if ledger_jsonl s1 <> ledger_jsonl s2 then
      Alcotest.failf "%s: adaptive ledger JSONL diverges vs %s"
        (Test_props.describe sc) (mode_name mode)
  done

(* Campaign sharding: aggregates and counter totals are shard-count
   invariant (1, 3 — uneven blocks — and 4 shards over 6 replicates). *)
let counters_only sink =
  Sink.metrics sink
  |> List.filter_map (fun (n, m) ->
         match m with Registry.Counter c -> Some (n, c) | _ -> None)
  |> List.sort compare

let test_campaign_shards () =
  let config = Agrid_exper.Config.smoke ~seed:99 () in
  let run shards =
    let sink = Sink.create ~stride:8 () in
    let levels =
      Agrid_exper.Campaign.run ~obs:sink ~intensities:[ 0.0; 2.0 ]
        ~replicates:6 ~shards ~seed:515 config
    in
    (levels, sink)
  in
  let l1, s1 = run 1 in
  List.iter
    (fun shards ->
      let ln, sn = run shards in
      if l1 <> ln then
        Alcotest.failf "campaign levels diverge between 1 and %d shards" shards;
      Alcotest.(check (list (pair string int)))
        (Fmt.str "campaign counters, 1 vs %d shards" shards)
        (counters_only s1) (counters_only sn))
    [ 3; 4 ]

(* The adaptive campaign seeds a fresh dual-ascent controller per
   replicate, so its aggregates must be just as shard-invariant. *)
let test_campaign_shards_adaptive () =
  let config = Agrid_exper.Config.smoke ~seed:99 () in
  let run shards =
    let sink = Sink.create ~stride:8 () in
    let levels =
      Agrid_exper.Campaign.run ~obs:sink ~adapt:adaptive_spec
        ~intensities:[ 0.0; 2.0 ] ~replicates:4 ~shards ~seed:515 config
    in
    (levels, sink)
  in
  let l1, s1 = run 1 in
  let l3, s3 = run 3 in
  if l1 <> l3 then
    Alcotest.fail "adaptive campaign levels diverge between 1 and 3 shards";
  Alcotest.(check (list (pair string int)))
    "adaptive campaign counters, 1 vs 3 shards" (counters_only s1)
    (counters_only s3);
  if counter_of s1 "lagrange/updates" = 0 then
    Alcotest.fail "adaptive campaign never ran a dual round"

(* Partially built schedules for the property below: run the real
   scheduler with a cancel hook that trips after [steps] timestep polls,
   yielding a prefix of a genuine SLRH trajectory — mid-run mapped/ready
   frontiers, not synthetic ones. *)
let partial_schedule sc wl steps =
  let polls = ref 0 in
  let p =
    {
      (Test_props.params sc) with
      Slrh.cancel =
        (fun () ->
          incr polls;
          !polls > steps);
    }
  in
  (Slrh.run p wl).Slrh.schedule

(* The SoA core's unit-level contract, as a property: one
   [Objective.score_into] batch pass over a freshly filtered pool equals
   the per-candidate [parent_bound] + [best_version_with] fold bit for
   bit — every slot, every machine, on arbitrary run prefixes and
   arbitrary [now]. [initial_capacity:2] forces the arena through
   several regrowths mid-fill, so the fresh-arrays-no-copy regrowth is
   exercised under scoring, not just in the unit tests. *)
let qcheck_batch_equals_fold =
  Testlib.qcheck_case ~count:60
    "score_into batch = best_version_with fold (bitwise)"
    QCheck2.Gen.(triple (int_bound 29) (int_bound 40) (int_bound 199))
    (fun (i, steps, now) ->
      let sc = Test_props.scenario i in
      let wl = Test_props.workload sc in
      let sched = partial_schedule sc wl steps in
      let w = (Test_props.params sc).Slrh.weights in
      let a =
        Pool.Flat.create ~initial_capacity:2
          ~feas_mode:Feasibility.Conservative ~reuse_pools:true wl
      in
      for machine = 0 to Workload.n_machines wl - 1 do
        let row = a.Pool.Flat.rows.(machine) in
        let n, _admitted, _checked =
          Feasibility.filter_into a.Pool.Flat.memo sched ~machine
            ~eligible:(fun _ -> true)
            ~ensure:(Pool.Flat.ensure a row)
        in
        Objective.score_into w sched ~machine ~now ~n
          ~tasks:row.Pool.Flat.tasks ~bound_ready:a.Pool.Flat.bound_ready
          ~bound_comm:a.Pool.Flat.bound_comm ~bound_known:a.Pool.Flat.bound_known
          ~versions:row.Pool.Flat.versions ~scores:row.Pool.Flat.scores;
        for slot = 0 to n - 1 do
          let task = row.Pool.Flat.tasks.(slot) in
          let bound = Objective.parent_bound sched ~task ~machine in
          let v, s =
            Objective.best_version_with w sched ~bound ~task ~machine ~now
          in
          if row.Pool.Flat.versions.(slot) <> v then
            QCheck2.Test.fail_reportf
              "%s, %d steps, now=%d: machine %d task %d: batch picked %s, fold %s"
              (Test_props.describe sc) steps now machine task
              (Version.to_string row.Pool.Flat.versions.(slot))
              (Version.to_string v);
          if
            Int64.bits_of_float row.Pool.Flat.scores.(slot)
            <> Int64.bits_of_float s
          then
            QCheck2.Test.fail_reportf
              "%s, %d steps, now=%d: machine %d task %d: batch score %h, fold %h"
              (Test_props.describe sc) steps now machine task
              row.Pool.Flat.scores.(slot) s
        done
      done;
      true)

(* ---- multi-tenant traffic differential pairs ----

   The traffic engine multiplexes several live applications over one
   commit loop, each on its own pool state; the pool-maintenance mode of
   every application's scheduler must remain invisible in the merged
   outcome. Same oracle discipline as the single-run pairs: rescan is
   the reference, each optimised mode must match bit for bit — arrival
   admissions, per-app verdicts, TECs, per-tenant rollups, fairness
   accounting — on static, churn and adaptive-lagrange traffic. *)

module Traffic = Agrid_tenant.Traffic
module Tenant = Agrid_tenant.Tenant

let traffic_weights = Objective.make_weights ~alpha:0.4 ~beta:0.3

let traffic_params ~mode ~adaptive ~tenant:_ ~seq:_ =
  let p = { (Slrh.default_params traffic_weights) with Slrh.mode } in
  (* a fresh controller per application: Adapt.t is mutable run state *)
  if adaptive then with_adapt p else p

let traffic_spec ~seed ~events =
  Traffic.make_spec ~seed ~horizon:1600 ~events
    [
      {
        Traffic.ts_tenant = Tenant.make ~priority:Tenant.High "gold";
        (* two simultaneous arrivals force the chunked multi-app path *)
        ts_process = Agrid_tenant.Arrivals.Trace [ 0; 0 ];
      };
      {
        Traffic.ts_tenant =
          Tenant.make ~priority:Tenant.Low ~energy_quota:400. "bronze";
        ts_process = Agrid_tenant.Arrivals.Poisson 0.002;
      };
    ]

let served_bits (o : Traffic.outcome) =
  List.map
    (fun (a : Traffic.app) ->
      match a.Traffic.a_verdict with
      | Traffic.Served s -> (bits s.Traffic.s_tec, bits s.Traffic.s_reservation)
      | Traffic.Rejected _ -> (0L, 0L))
    o.Traffic.apps

let rollup_bits (o : Traffic.outcome) =
  List.map
    (fun (r : Traffic.rollup) -> (bits r.Traffic.r_tec, bits r.Traffic.r_reserved))
    o.Traffic.rollups

let check_traffic msg (a : Traffic.outcome) (b : Traffic.outcome) =
  if a.Traffic.apps <> b.Traffic.apps then Alcotest.failf "%s: apps diverge" msg;
  if a.Traffic.rollups <> b.Traffic.rollups then
    Alcotest.failf "%s: rollups diverge" msg;
  if served_bits a <> served_bits b then
    Alcotest.failf "%s: per-app TEC/reservation diverges bitwise" msg;
  if rollup_bits a <> rollup_bits b then
    Alcotest.failf "%s: rollup TEC/reservation diverges bitwise" msg;
  if bits a.Traffic.fairness_gap <> bits b.Traffic.fairness_gap then
    Alcotest.failf "%s: fairness gap diverges bitwise" msg;
  Alcotest.(check int) (msg ^ ": rounds") a.Traffic.rounds b.Traffic.rounds;
  Alcotest.(check int)
    (msg ^ ": total steps") a.Traffic.total_steps b.Traffic.total_steps;
  Alcotest.(check int)
    (msg ^ ": final time") a.Traffic.final_time b.Traffic.final_time

let traffic_events_variants =
  [
    ("static", []);
    ("churn", Agrid_churn.Event.parse_trace "leave@120:1,rejoin@1400:1");
  ]

let test_traffic ~adaptive mode () =
  let admitted = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun (shape, events) ->
          let spec = traffic_spec ~seed ~events in
          let run m =
            Traffic.run ~params_for:(traffic_params ~mode:m ~adaptive) spec
          in
          let a = run `Rescan and b = run mode in
          check_traffic
            (Fmt.str "traffic %s seed %d, rescan vs %s%s" shape seed
               (mode_name mode)
               (if adaptive then " (adaptive)" else ""))
            a b;
          List.iter
            (fun (r : Traffic.rollup) -> admitted := !admitted + r.Traffic.r_admitted)
            a.Traffic.rollups)
        traffic_events_variants)
    [ 3; 2004 ];
  (* the pairs must exercise real admissions, not vacuously pass *)
  if !admitted = 0 then
    Alcotest.failf "traffic pairs admitted no application (%s)" (mode_name mode)

let suites =
  let per_mode =
    List.concat_map
      (fun mode ->
        let m = mode_name mode in
        [
          Alcotest.test_case
            (Fmt.str "rescan = %s on 150 static scenarios" m)
            `Slow (test_static mode);
          Alcotest.test_case
            (Fmt.str "rescan = %s on 60 churn timelines" m)
            `Slow (test_churn mode);
          Alcotest.test_case
            (Fmt.str "battery shock mid-pool-epoch invalidates reuse (%s)" m)
            `Slow
            (test_battery_shock_mid_epoch mode);
          Alcotest.test_case
            (Fmt.str "ledger JSONL identical, rescan vs %s (20 runs)" m)
            `Slow (test_ledger mode);
          Alcotest.test_case
            (Fmt.str "rescan = %s under dual ascent (40 static)" m)
            `Slow
            (test_adaptive_static mode);
          Alcotest.test_case
            (Fmt.str "rescan = %s under dual ascent (20 churn)" m)
            `Slow
            (test_adaptive_churn mode);
          Alcotest.test_case
            (Fmt.str "adaptive ledger JSONL identical, rescan vs %s" m)
            `Slow
            (test_adaptive_ledger mode);
          Alcotest.test_case
            (Fmt.str "rescan = %s on multi-tenant traffic (static + churn)" m)
            `Slow
            (test_traffic ~adaptive:false mode);
          Alcotest.test_case
            (Fmt.str "rescan = %s on adaptive-lagrange traffic" m)
            `Slow
            (test_traffic ~adaptive:true mode);
        ])
      fast_modes
  in
  [
    ( "diff",
      per_mode
      @ [
          Alcotest.test_case "soa fast path (no tracer/ledger) = rescan" `Slow
            test_static_fast_path;
          qcheck_batch_equals_fold;
          Alcotest.test_case "campaign aggregates shard-count invariant" `Slow
            test_campaign_shards;
          Alcotest.test_case "adaptive campaign shard-count invariant" `Slow
            test_campaign_shards_adaptive;
        ] );
  ]
