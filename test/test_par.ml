open Agrid_par

let test_map_matches_sequential () =
  let arr = Array.init 1000 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "parallel = sequential" (Array.map f arr)
    (Parallel.map ~domains:4 f arr)

let test_map_preserves_order () =
  let arr = Array.init 500 (fun i -> 500 - i) in
  let out = Parallel.map ~domains:3 string_of_int arr in
  Array.iteri
    (fun i s -> Alcotest.(check string) "slot" (string_of_int arr.(i)) s)
    out

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map (fun x -> x) [||])

let test_map_single_domain () =
  let arr = Array.init 100 Fun.id in
  Alcotest.(check (array int)) "domains=1" (Array.map succ arr)
    (Parallel.map ~domains:1 succ arr)

let test_mapi () =
  let arr = [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "mapi" [| 10; 21; 32 |]
    (Parallel.mapi ~domains:2 (fun i x -> x + i) arr)

let test_init () =
  Alcotest.(check (array int)) "init" (Array.init 50 (fun i -> 2 * i))
    (Parallel.init ~domains:3 50 (fun i -> 2 * i))

let test_iter_visits_all () =
  let n = 200 in
  let seen = Array.make n (Atomic.make false) in
  for i = 0 to n - 1 do
    seen.(i) <- Atomic.make false
  done;
  Parallel.iter ~domains:4 (fun i -> Atomic.set seen.(i) true) (Array.init n Fun.id);
  Array.iteri
    (fun i a -> Alcotest.(check bool) (Fmt.str "visited %d" i) true (Atomic.get a))
    seen

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Parallel.map ~domains:3
           (fun x -> if x = 37 then failwith "boom" else x)
           (Array.init 100 Fun.id));
      false
    with Parallel.Worker_failure (Failure msg) -> msg = "boom"
  in
  Alcotest.(check bool) "worker failure surfaced" true raised

let test_map_reduce () =
  let arr = Array.init 100 (fun i -> i + 1) in
  let total =
    Parallel.map_reduce ~domains:4 ~map:(fun x -> x * 2) ~fold:( + ) ~init:0 arr
  in
  Alcotest.(check int) "sum of doubles" (100 * 101) total

let test_heavier_work () =
  (* results independent of scheduling interleave *)
  let arr = Array.init 64 (fun i -> i) in
  let f x =
    let acc = ref 0 in
    for k = 1 to 10_000 do
      acc := (!acc + (x * k)) mod 65521
    done;
    !acc
  in
  Alcotest.(check (array int)) "heavy map deterministic" (Array.map f arr)
    (Parallel.map f arr)

let test_run_workers_zero_items () =
  (* n = 0 is a no-op: no domains spawned, the work function never runs *)
  let hits = Atomic.make 0 in
  Parallel.run_workers ~domains:4 ~n:0 (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "no items processed" 0 (Atomic.get hits)

let test_run_workers_bad_domains () =
  (* domains < 1 used to be clamped silently; it is now a contract error *)
  let reject d =
    match Parallel.run_workers ~domains:d ~n:3 (fun _ -> ()) with
    | () -> Alcotest.failf "domains = %d accepted" d
    | exception Invalid_argument _ -> ()
  in
  reject 0;
  reject (-2);
  match Parallel.run_workers ~domains:4 ~n:(-1) (fun _ -> ()) with
  | () -> Alcotest.fail "negative n accepted"
  | exception Invalid_argument _ -> ()

(* ---- Chan.try_pop: the bounded wait the fleet dispatcher relies on ---- *)

let test_try_pop_pops () =
  let c = Parallel.Chan.create ~capacity:4 in
  (match Parallel.Chan.try_push c 42 with
  | `Accepted _ -> ()
  | `Rejected _ -> Alcotest.fail "push rejected on an empty open channel");
  match Parallel.Chan.try_pop c ~timeout_s:0.5 with
  | `Popped v -> Alcotest.(check int) "item" 42 v
  | `Timeout -> Alcotest.fail "timed out with an item buffered"
  | `Closed -> Alcotest.fail "closed on an open channel"

let test_try_pop_times_out () =
  let c : int Parallel.Chan.t = Parallel.Chan.create ~capacity:4 in
  let t0 = Unix.gettimeofday () in
  (match Parallel.Chan.try_pop c ~timeout_s:0.05 with
  | `Timeout -> ()
  | `Popped _ -> Alcotest.fail "popped from an empty channel"
  | `Closed -> Alcotest.fail "closed on an open channel");
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "waited at least ~the timeout" true (waited >= 0.04);
  (* nonpositive timeout checks once, without waiting *)
  match Parallel.Chan.try_pop c ~timeout_s:0. with
  | `Timeout -> ()
  | _ -> Alcotest.fail "zero timeout should report `Timeout when empty"

let test_try_pop_sealed_drains_then_closes () =
  let c = Parallel.Chan.create ~capacity:4 in
  ignore (Parallel.Chan.try_push c 1);
  ignore (Parallel.Chan.try_push c 2);
  Parallel.Chan.seal c;
  (* buffered items stay poppable after a seal... *)
  (match Parallel.Chan.try_pop c ~timeout_s:0.1 with
  | `Popped v -> Alcotest.(check int) "first" 1 v
  | _ -> Alcotest.fail "sealed channel lost its buffer");
  (match Parallel.Chan.try_pop c ~timeout_s:0.1 with
  | `Popped v -> Alcotest.(check int) "second" 2 v
  | _ -> Alcotest.fail "sealed channel lost its buffer");
  (* ...then the drained seal reports `Closed immediately, not `Timeout *)
  let t0 = Unix.gettimeofday () in
  (match Parallel.Chan.try_pop c ~timeout_s:5.0 with
  | `Closed -> ()
  | `Timeout -> Alcotest.fail "drained sealed channel should be `Closed"
  | `Popped _ -> Alcotest.fail "popped from a drained channel");
  Alcotest.(check bool) "no wait on a drained seal" true
    (Unix.gettimeofday () -. t0 < 1.0)

let test_try_pop_closed () =
  let c = Parallel.Chan.create ~capacity:4 in
  ignore (Parallel.Chan.try_push c 7);
  let dropped = Parallel.Chan.close c in
  Alcotest.(check (list int)) "close returns the buffer" [ 7 ] dropped;
  match Parallel.Chan.try_pop c ~timeout_s:0.1 with
  | `Closed -> ()
  | _ -> Alcotest.fail "closed channel must report `Closed"

let test_try_pop_wakes_on_push () =
  let c = Parallel.Chan.create ~capacity:4 in
  let pusher =
    Thread.create
      (fun () ->
        Thread.delay 0.03;
        ignore (Parallel.Chan.try_push c 99))
      ()
  in
  (match Parallel.Chan.try_pop c ~timeout_s:2.0 with
  | `Popped v -> Alcotest.(check int) "item" 99 v
  | `Timeout -> Alcotest.fail "missed an item pushed within the timeout"
  | `Closed -> Alcotest.fail "closed on an open channel");
  Thread.join pusher

let suites =
  [
    ( "par",
      [
        Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "map empty" `Quick test_map_empty;
        Alcotest.test_case "single domain" `Quick test_map_single_domain;
        Alcotest.test_case "mapi" `Quick test_mapi;
        Alcotest.test_case "init" `Quick test_init;
        Alcotest.test_case "iter visits all" `Quick test_iter_visits_all;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "map_reduce" `Quick test_map_reduce;
        Alcotest.test_case "heavy work deterministic" `Quick test_heavier_work;
        Alcotest.test_case "run_workers with zero items" `Quick
          test_run_workers_zero_items;
        Alcotest.test_case "run_workers rejects bad bounds" `Quick
          test_run_workers_bad_domains;
        Alcotest.test_case "try_pop pops a buffered item" `Quick test_try_pop_pops;
        Alcotest.test_case "try_pop times out" `Quick test_try_pop_times_out;
        Alcotest.test_case "try_pop on sealed channel" `Quick
          test_try_pop_sealed_drains_then_closes;
        Alcotest.test_case "try_pop on closed channel" `Quick test_try_pop_closed;
        Alcotest.test_case "try_pop wakes on push" `Quick test_try_pop_wakes_on_push;
      ] );
  ]
