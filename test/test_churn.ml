open Agrid_workload
open Agrid_sched
open Agrid_core
open Agrid_churn

let weights = Objective.make_weights ~alpha:0.4 ~beta:0.3
let params = Slrh.default_params weights
let workload () = Testlib.small_workload ~seed:11 ()
let churn ?policy events = Dynamic.run_churn ?policy params (workload ()) events
let leave ~at j = { Event.at; kind = Event.Leave j }
let rejoin ~at j = { Event.at; kind = Event.Rejoin j }

(* SLRH's conservative feasibility check reserves each admission's own
   worst-case child communication but not the outstanding child
   communications of earlier admissions, so once sunk charges eat the
   battery slack a machine can end a run overdrawn by a transfer-sized
   amount. That is a property of the paper's scheduler, not of the churn
   bookkeeping: the audit reports it (and ledger_energy_ok goes false),
   the structural invariants must still hold, and any overdraft must stay
   a small fraction of the battery (a runaway accounting bug would blow
   far past it). *)
let check_audit name o =
  let is_overdraft v =
    let n = String.length v and pat = "overdrawn" in
    let p = String.length pat in
    let rec go i = i + p <= n && (String.sub v i p = pat || go (i + 1)) in
    go 0
  in
  let structural = List.filter (fun v -> not (is_overdraft v)) (Engine.audit o) in
  Alcotest.(check (list string)) (name ^ ": no structural violations") [] structural;
  let wl = Schedule.workload o.Engine.schedule in
  for j = 0 to Workload.n_machines wl - 1 do
    let battery =
      (Agrid_platform.Grid.machine (Workload.grid wl) j).Agrid_platform.Machine.battery
    in
    Alcotest.(check bool)
      (Fmt.str "%s: machine %d overdraft below 10%% of battery" name j)
      true
      (Schedule.energy_remaining o.Engine.schedule j >= -.(0.1 *. battery))
  done

(* ---- event grammar ---- *)

let test_parse_roundtrip () =
  let trace = "leave@120:1,shock@200:0:0.5,degrade@250:2:0.25,rejoin@400:1" in
  let events = Event.parse_trace trace in
  Alcotest.(check int) "four events" 4 (List.length events);
  Alcotest.(check string) "roundtrip" trace (Event.trace_to_string events);
  Alcotest.check_raises "malformed"
    (Invalid_argument "Churn.Event.parse: malformed event \"explode@3:1\"") (fun () ->
      ignore (Event.parse "explode@3:1"))

let test_trace_sorted_stable () =
  (* parse_trace sorts by time but keeps same-instant order: a zero-length
     outage stays leave-then-rejoin *)
  let events = Event.parse_trace "leave@50:1,rejoin@50:1,leave@10:0" in
  Alcotest.(check string) "sorted, stable" "leave@10:0,leave@50:1,rejoin@50:1"
    (Event.trace_to_string events)

let test_validate_rejects () =
  let reject name events =
    match Event.validate ~n_machines:4 events with
    | () -> Alcotest.failf "%s: expected rejection" name
    | exception Invalid_argument _ -> ()
  in
  reject "leave of absent" [ leave ~at:1 0; leave ~at:2 0 ];
  reject "rejoin of present" [ rejoin ~at:1 0 ];
  reject "negative time" [ leave ~at:(-1) 0 ];
  reject "no such machine" [ leave ~at:1 9 ];
  reject "shock fraction" [ { Event.at = 1; kind = Event.Battery_shock (0, 1.5) } ];
  reject "degrade factor" [ { Event.at = 1; kind = Event.Bandwidth_degrade (0, 0.) } ];
  (* a total blackout is applicable: the engine just stalls until a rejoin *)
  Event.validate ~n_machines:2 [ leave ~at:1 0; leave ~at:1 1; rejoin ~at:5 0 ]

(* ---- engine vs the static run ---- *)

let test_empty_trace_is_static_run () =
  let wl = workload () in
  let static = Slrh.run params wl in
  let o = churn [] in
  let key (p : Schedule.placement) = (p.task, p.machine, p.version, p.start, p.stop) in
  Alcotest.(check int) "T100" (Schedule.n_primary static.Slrh.schedule)
    (Schedule.n_primary o.Engine.schedule);
  Alcotest.(check int) "AET" (Schedule.aet static.Slrh.schedule)
    (Schedule.aet o.Engine.schedule);
  Alcotest.(check bool) "same placements" true
    (Array.map key (Schedule.placements static.Slrh.schedule)
    = Array.map key (Schedule.placements o.Engine.schedule));
  for j = 0 to Workload.n_machines wl - 1 do
    Testlib.close
      (Fmt.str "machine %d energy" j)
      (Schedule.energy_used static.Slrh.schedule j)
      (Schedule.energy_used o.Engine.schedule j)
  done;
  Alcotest.(check int) "one phase" 1 (List.length o.Engine.phases);
  Testlib.close "no sunk energy" 0. o.Engine.sunk_energy

let test_loss_at_cycle_zero () =
  let o = churn [ leave ~at:0 3 ] in
  Alcotest.(check int) "nothing discarded" 0 o.Engine.n_discarded;
  Testlib.close "no sunk energy" 0. o.Engine.sunk_energy;
  Alcotest.(check (list string)) "audit clean" [] (Engine.audit o);
  Array.iter
    (fun (p : Schedule.placement) ->
      Alcotest.(check bool) "never places on absent machine" true (p.machine <> 3))
    (Schedule.placements o.Engine.schedule)

let test_zero_length_outage () =
  let wl = workload () in
  let at = Workload.tau wl / 4 in
  let o = churn [ leave ~at 1; rejoin ~at 1 ] in
  (* the machine blinks: pre-outage work on it is discarded and its burn
     comes straight back as a rejoin debit, then it keeps scheduling *)
  Alcotest.(check bool) "machine is back" true o.Engine.up.(1);
  Alcotest.(check bool) "blink discards work" true (o.Engine.n_discarded > 0);
  Alcotest.(check bool) "debit billed" true (o.Engine.sunk_energy > 0.);
  Alcotest.(check (list string)) "audit clean" [] (Engine.audit o)

let test_every_machine_lost_once () =
  let wl = workload () in
  let at = Workload.tau wl / 4 in
  for j = 0 to Workload.n_machines wl - 1 do
    let o = churn [ leave ~at j ] in
    check_audit (Fmt.str "lost %d" j) o;
    Array.iter
      (fun (p : Schedule.placement) ->
        if p.machine = j then Alcotest.failf "placement on lost machine %d" j)
      (Schedule.placements o.Engine.schedule);
    (* engine ledger: TEC = work energy + sunk charges *)
    let charged = ref 0. in
    for k = 0 to Workload.n_machines wl - 1 do
      charged := !charged +. Schedule.energy_charged o.Engine.schedule k
    done;
    Testlib.close (Fmt.str "sunk ledger (lost %d)" j) o.Engine.sunk_energy !charged
  done

let test_overlapping_outages () =
  let wl = workload () in
  let tau = Workload.tau wl in
  let o =
    churn
      [
        leave ~at:(tau / 10) 0;
        leave ~at:(tau / 8) 1;
        rejoin ~at:(tau / 4) 0;
        rejoin ~at:(tau / 3) 1;
      ]
  in
  check_audit "overlapping outages" o;
  Alcotest.(check bool) "all machines back" true (Array.for_all Fun.id o.Engine.up);
  Alcotest.(check int) "five phases" 5 (List.length o.Engine.phases);
  (* phase availability snapshots track the trace *)
  (match o.Engine.phases with
  | [ p0; p1; p2; p3; p4 ] ->
      Alcotest.(check bool) "phase 0 full" true (Array.for_all Fun.id p0.Engine.ph_up);
      Alcotest.(check bool) "phase 1 lost 0" false p1.Engine.ph_up.(0);
      Alcotest.(check bool) "phase 2 lost both" false
        (p2.Engine.ph_up.(0) || p2.Engine.ph_up.(1));
      Alcotest.(check bool) "phase 3: 0 back, 1 out" true
        (p3.Engine.ph_up.(0) && not p3.Engine.ph_up.(1));
      Alcotest.(check bool) "phase 4 full" true (Array.for_all Fun.id p4.Engine.ph_up)
  | _ -> Alcotest.fail "expected five phases")

(* ---- retry policies ---- *)

let test_retry_budget_zero_abandons () =
  let wl = workload () in
  let at = Workload.tau wl / 4 in
  let o = churn ~policy:(Retry.make ~budget:0 ()) [ leave ~at 1; rejoin ~at:(at * 2) 1 ] in
  Alcotest.(check bool) "discards happened" true (o.Engine.n_discarded > 0);
  Alcotest.(check int) "every discard abandoned" o.Engine.n_discarded o.Engine.n_failed;
  Alcotest.(check bool) "cannot complete" true (not o.Engine.completed);
  (* abandoned tasks stay unmapped *)
  Array.iteri
    (fun task count ->
      if count > 0 then
        match Schedule.placement o.Engine.schedule task with
        | Some _ -> Alcotest.failf "abandoned task %d was remapped" task
        | None -> ())
    o.Engine.discards

let test_defer_without_rejoin_holds () =
  let wl = workload () in
  let at = Workload.tau wl / 4 in
  let policy = Retry.make ~timing:Retry.Defer_to_rejoin () in
  let o = churn ~policy [ leave ~at 1 ] in
  Alcotest.(check bool) "work held" true (o.Engine.n_held > 0);
  Alcotest.(check bool) "incomplete" true (not o.Engine.completed);
  (* the same trace with a rejoin releases the held work *)
  let o2 = churn ~policy [ leave ~at 1; rejoin ~at:(at * 2) 1 ] in
  Alcotest.(check int) "rejoin releases holds" 0 o2.Engine.n_held;
  Alcotest.(check bool) "released work gets remapped" true
    (Schedule.n_mapped o2.Engine.schedule > Schedule.n_mapped o.Engine.schedule)

(* ---- shocks and degrades ---- *)

let test_battery_shock_drains () =
  let wl = workload () in
  let at = Workload.tau wl / 4 in
  let baseline = churn [] in
  let o = churn [ { Event.at; kind = Event.Battery_shock (1, 0.5) } ] in
  Alcotest.(check bool) "shock recorded" true (o.Engine.shock_energy > 0.);
  Testlib.close "shock is the only sunk charge" o.Engine.shock_energy o.Engine.sunk_energy;
  Alcotest.(check (list string)) "audit clean" [] (Engine.audit o);
  Alcotest.(check bool) "no free capacity" true
    (Schedule.energy_used o.Engine.schedule 1 >= 0.);
  Alcotest.(check bool) "shock cannot help T100" true
    (Schedule.n_primary o.Engine.schedule
    <= Schedule.n_primary baseline.Engine.schedule)

let test_bandwidth_degrade () =
  let wl = workload () in
  let at = Workload.tau wl / 4 in
  let o = churn [ { Event.at; kind = Event.Bandwidth_degrade (1, 0.25) } ] in
  (* Validate.check recomputes transfer durations from the final (degraded)
     grid, so it cannot judge this run; the audit trusts recorded slots *)
  Alcotest.(check (list string)) "audit clean" [] (Engine.audit o);
  let original = Agrid_platform.Grid.machine (Workload.grid wl) 1 in
  let degraded = Agrid_platform.Grid.machine (Workload.grid o.Engine.workload) 1 in
  Testlib.close "bandwidth quartered"
    (0.25 *. original.Agrid_platform.Machine.bandwidth)
    degraded.Agrid_platform.Machine.bandwidth;
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Machine.scale_bandwidth: factor must be positive") (fun () ->
      ignore (Workload.degrade_bandwidth wl ~machine:1 ~factor:0.))

(* ---- outage wrapper surfaces the final phase ---- *)

let test_outage_final_phase_surfaced () =
  let wl = workload () in
  let tau = Workload.tau wl in
  let o = Dynamic.run_with_outage params wl ~machine:1 ~from_:(tau / 10) ~until_:(tau / 2) in
  Alcotest.(check bool) "final phase resumes at the rejoin" true
    (o.Dynamic.o_final.Slrh.final_clock >= tau / 2);
  Alcotest.(check bool) "final phase ends on the final schedule" true
    (o.Dynamic.o_final.Slrh.schedule == o.Dynamic.o_schedule);
  Alcotest.check_raises "bad machine up front"
    (Invalid_argument "Dynamic.run_with_outage: no such machine") (fun () ->
      ignore (Dynamic.run_with_outage params wl ~machine:9 ~from_:10 ~until_:20))

(* ---- sampling and the Monte Carlo campaign ---- *)

let test_sample_traces_applicable () =
  let rng = Agrid_prng.Splitmix64.of_int 7 in
  let trace =
    Sample.exponential_trace rng ~n_machines:4 ~horizon:1000
      ~up_mean:(fun _ -> 200.)
      ~down_mean:(fun _ -> 50.)
  in
  Event.validate ~n_machines:4 trace;
  List.iter
    (fun (e : Event.t) ->
      Alcotest.(check bool) "within horizon" true (e.Event.at >= 0 && e.Event.at < 1000))
    trace;
  (* same seed, same trace *)
  let trace' =
    Sample.exponential_trace (Agrid_prng.Splitmix64.of_int 7) ~n_machines:4 ~horizon:1000
      ~up_mean:(fun _ -> 200.)
      ~down_mean:(fun _ -> 50.)
  in
  Alcotest.(check string) "deterministic" (Event.trace_to_string trace)
    (Event.trace_to_string trace')

let test_campaign_reproducible () =
  let config = Agrid_exper.Config.smoke ~seed:5 () in
  let run () =
    Agrid_exper.Campaign.run ~replicates:3 ~intensities:[ 0.0; 2.0 ] ~seed:99 config
  in
  let a = run () and b = run () in
  Alcotest.(check int) "two levels" 2 (List.length a);
  Alcotest.(check bool) "same seed, same campaign" true (a = b);
  let static = List.hd a in
  Testlib.close "intensity 0 always completes" 1. static.Agrid_exper.Campaign.completion_rate;
  Testlib.close "intensity 0 sinks nothing" 0. static.Agrid_exper.Campaign.mean_sunk;
  let churned = List.nth a 1 in
  Alcotest.(check bool) "churn produces events" true
    (churned.Agrid_exper.Campaign.mean_events > 0.)

let suites =
  [
    ( "churn",
      [
        Alcotest.test_case "event parse roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "trace sort stable" `Quick test_trace_sorted_stable;
        Alcotest.test_case "trace validation" `Quick test_validate_rejects;
        Alcotest.test_case "empty trace = static run" `Quick test_empty_trace_is_static_run;
        Alcotest.test_case "loss at cycle 0" `Quick test_loss_at_cycle_zero;
        Alcotest.test_case "zero-length outage" `Quick test_zero_length_outage;
        Alcotest.test_case "every machine lost once" `Quick test_every_machine_lost_once;
        Alcotest.test_case "overlapping outages" `Quick test_overlapping_outages;
        Alcotest.test_case "retry budget 0 abandons" `Quick test_retry_budget_zero_abandons;
        Alcotest.test_case "defer holds until rejoin" `Quick test_defer_without_rejoin_holds;
        Alcotest.test_case "battery shock" `Quick test_battery_shock_drains;
        Alcotest.test_case "bandwidth degrade" `Quick test_bandwidth_degrade;
        Alcotest.test_case "outage final phase" `Quick test_outage_final_phase_surfaced;
        Alcotest.test_case "sampled traces applicable" `Quick test_sample_traces_applicable;
        Alcotest.test_case "campaign reproducible" `Quick test_campaign_reproducible;
      ] );
  ]
