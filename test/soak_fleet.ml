(* Fault-injection soak for the fleet router: a few hundred mixed
   requests through a router over several in-process [Sim] backends,
   while a chaos thread kills backends mid-flight (they accept
   reconnects, i.e. "restart"), wedges one (open socket, nothing flows —
   the probe-timeout failure mode) and lets the router fail over.

   Hard invariants, asserted at volume:
   - zero lost responses: every request gets exactly one response line,
     whatever was killed under it;
   - monotone ids: the response id set is exactly 0..n-1;
   - typed outcomes only: every job resolves as a result, a typed
     rejection (malformed / queue_full / all_backends_saturated) or a
     typed maybe_executed — never silence, never a duplicate;
   - bit-identity: every completed job's result (status, t100, mapped,
     aet, final clock, TEC bit pattern) equals a one-shot
     single-threaded Job.run of the same spec — failover re-routing adds
     fault tolerance, never divergence;
   - at-most-once: ambiguous jobs are reported maybe_executed, not
     re-run (enforced structurally: one response per id, and the router
     never re-dispatches a Sent entry);
   - the injected faults actually bit: at least one failover or
     maybe_executed across the run.

   Every job request carries a tenant (gold or bronze, alternating) and
   every backend caps bronze admissions: a backend at its bronze cap
   rejects with the typed tenant_quota reason, which the router treats
   as retry-safe and shops to a peer — clients only ever see result /
   saturated / maybe_executed, and no backend's bronze high-water mark
   exceeds the cap, across kills and restarts.

   Writes every response plus a summary as JSONL (--out) for the CI
   artifact. Exit 0 on success, 1 with diagnostics, 2 on watchdog
   timeout. *)

module Json = Agrid_obs.Json
module Rng = Agrid_prng.Splitmix64
module Serialize = Agrid_workload.Serialize
module Job = Agrid_serve.Job
module Codec = Agrid_serve.Codec
module Router = Agrid_fleet.Router
module Sim = Agrid_fleet.Sim
module Trace = Agrid_obs.Trace

let jobs = ref 300
let backends = ref 3
let kills = ref 2
let workers = ref 2
let seed = ref 42
let out = ref ""
let trace_out = ref ""
let chrome_out = ref ""
let timeout = ref 180.

let specs_args =
  [
    ("--jobs", Arg.Set_int jobs, "N  number of requests (default 300)");
    ("--backends", Arg.Set_int backends, "N  simulated backends (default 3)");
    ("--kills", Arg.Set_int kills, "N  backend kills to inject (default 2)");
    ("--workers", Arg.Set_int workers, "N  worker domains per backend (default 2)");
    ("--seed", Arg.Set_int seed, "N  request-mix seed (default 42)");
    ("--out", Arg.Set_string out, "FILE  write responses + summary as JSONL");
    ( "--trace-out",
      Arg.Set_string trace_out,
      "FILE  write the router's agrid-trace/1 JSONL" );
    ( "--chrome-out",
      Arg.Set_string chrome_out,
      "FILE  write the Chrome trace-event JSON (the CI artifact)" );
    ("--timeout", Arg.Set_float timeout, "S  watchdog seconds (default 180)");
  ]

let pick rng arr = arr.(Rng.next_int rng (Array.length arr))

type expected =
  | Exp_result of Job.spec
  | Exp_malformed
  | Exp_health

let make_request rng i =
  match i mod 10 with
  | 0 ->
      let junk =
        pick rng
          [|
            "total garbage";
            "{\"schema\":\"agrid-job/1\"";
            "{\"schema\":\"agrid-job/9\",\"kind\":\"job\"}";
            "{\"schema\":\"agrid-job/1\",\"kind\":\"job\",\"scenario\":{\"kind\":\"generated\"}}";
          |]
      in
      (Exp_malformed, junk)
  | 1 -> (Exp_health, "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}")
  | n ->
      let scenario =
        Serialize.Generated
          {
            seed = Rng.next_int rng 10_000;
            scale = 0.03;
            etc_index = Rng.next_int rng 3;
            dag_index = Rng.next_int rng 3;
            case = pick rng [| Agrid_platform.Grid.A; Agrid_platform.Grid.B |];
          }
      in
      let spec =
        {
          (Job.default scenario) with
          Job.tag = Some (Fmt.str "fleet-%d" i);
          tenant = Some (if i mod 2 = 0 then "gold" else "bronze");
          alpha = float_of_int (300 + Rng.next_int rng 200) /. 1000.;
          beta = float_of_int (100 + Rng.next_int rng 300) /. 1000.;
          variant = pick rng [| Agrid_core.Slrh.V1; Agrid_core.Slrh.V3 |];
          mode = pick rng [| `Rescan; `Incremental; `Soa |];
          events =
            (if n = 3 then
               Agrid_churn.Event.parse_trace
                 (Fmt.str "leave@%d:1,rejoin@%d:1"
                    (40 + Rng.next_int rng 40)
                    (120 + Rng.next_int rng 60))
             else []);
          deadline_ms = (if n = 4 then Some 0. else None);
        }
      in
      (Exp_result spec, Json.to_string (Codec.job_to_json spec))

let () =
  Arg.parse specs_args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "soak_fleet: fault-injection test of the agrid fleet router";
  let n = !jobs in
  let n_backends = max 1 !backends in
  let n_kills = max 0 !kills in
  let rng = Rng.of_int !seed in
  let requests = Array.init n (fun i -> make_request rng i) in
  let lock = Mutex.create () in
  let responses = ref [] in
  let n_responses = ref 0 in
  let respond line =
    Mutex.lock lock;
    responses := line :: !responses;
    incr n_responses;
    Mutex.unlock lock
  in
  let response_count () =
    Mutex.lock lock;
    let c = !n_responses in
    Mutex.unlock lock;
    c
  in
  let bronze_cap = 2 in
  let sims =
    List.init n_backends (fun i ->
        Sim.create ~workers:!workers
          ~tenant_caps:[ ("bronze", bronze_cap) ]
          (Fmt.str "b%d" i))
  in
  let sim_arr = Array.of_list sims in
  let config =
    {
      Router.default_config with
      Router.queue_capacity = max 1 n;
      inflight_cap = 4;
      max_attempts = 6;
      backoff_base_s = 0.02;
      backoff_cap_s = 0.2;
      probe_interval_s = 0.1;
      probe_timeout_s = 0.2;
      dead_after_timeouts = 2;
      connect_backoff_s = 0.1;
      seed = !seed;
    }
  in
  (* every event retained (assert dropped = 0 below): the per-job timeline
     checks need complete histories, not a ring window *)
  let tracer =
    Trace.create ~nonce:!seed
      ~capacity:(max 4096 (n * 64))
      ~pending_cap:(max 1024 n) ~exemplars:4 ()
  in
  let router = Router.create ~trace:tracer config (List.map Sim.spec sims) in
  (match Router.start router with
  | Ok () -> ()
  | Error msg ->
      Fmt.epr "soak-fleet: router failed to start: %s@." msg;
      exit 1);

  (* watchdog: a hung drain must fail the CI step, not wedge it *)
  let finished = Atomic.make false in
  ignore
    (Thread.create
       (fun () ->
         let deadline = Unix.gettimeofday () +. !timeout in
         while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
           Thread.delay 0.25
         done;
         if not (Atomic.get finished) then begin
           Fmt.epr "soak-fleet: watchdog expired after %.0fs (%d/%d responses)@."
             !timeout (response_count ()) n;
           exit 2
         end)
       ());

  (* chaos thread: kill backends (each waits for in-flight work so the
     failover/ambiguity paths actually trigger), and wedge b0 for a
     stretch so probe timeouts — not EOF — must detect the failure *)
  let wait_for ?(ceiling_s = 30.) pred =
    let deadline = Unix.gettimeofday () +. ceiling_s in
    while (not (pred ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.005
    done
  in
  let inflight_of name =
    match
      List.find_opt (fun (n', _, _) -> n' = name) (Router.health_snapshot router)
    with
    | Some (_, _, inflight) -> inflight
    | None -> 0
  in
  let chaos =
    Thread.create
      (fun () ->
        let wedge_target = if n_backends > 1 then Some sim_arr.(0) else None in
        (match wedge_target with
        | Some s ->
            wait_for (fun () -> response_count () >= n / 4);
            wait_for (fun () -> inflight_of (Sim.name s) > 0);
            Sim.wedge s;
            wait_for (fun () -> response_count () >= n / 4 * 2);
            Sim.unwedge s
        | None -> ());
        for k = 0 to n_kills - 1 do
          (* never kill b0 (the wedge target) while several backends
             exist; cycle over the rest *)
          let victim =
            if n_backends = 1 then sim_arr.(0)
            else sim_arr.(1 + (k mod (n_backends - 1)))
          in
          wait_for (fun () -> response_count () >= (k + 1) * n / (n_kills + 2));
          wait_for (fun () -> inflight_of (Sim.name victim) > 0);
          Sim.kill victim
        done)
      ()
  in

  let t0 = Unix.gettimeofday () in
  Array.iter (fun (_, line) -> Router.submit router ~respond line) requests;
  Thread.join chaos;
  Router.drain router;
  let wall = Unix.gettimeofday () -. t0 in
  Atomic.set finished true;
  let stats = Router.stats router in
  List.iter Sim.unwedge sims;
  List.iter Sim.shutdown sims;

  let responses = List.rev !responses in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in

  (* zero lost responses *)
  if List.length responses <> n then
    fail "expected %d responses, got %d" n (List.length responses);

  let parsed =
    List.filter_map
      (fun line ->
        match Json.parse line with
        | j -> Some j
        | exception Json.Parse_error msg ->
            fail "unparseable response %S: %s" line msg;
            None)
      responses
  in

  (* monotone ids: exactly 0..n-1, each exactly once *)
  let ids =
    List.sort compare
      (List.filter_map
         (fun j ->
           match Json.get_int "id" j with
           | Some id -> Some id
           | None ->
               fail "response without id: %s" (Json.to_string j);
               None)
         parsed)
  in
  if ids <> List.init n Fun.id then
    fail "response ids are not exactly 0..%d (got %d distinct)" (n - 1)
      (List.length (List.sort_uniq compare ids));

  (* per-request contracts + bit-identity replay of completed jobs *)
  let n_replayed = ref 0
  and n_maybe = ref 0
  and n_saturated = ref 0
  and n_deadline = ref 0 in
  List.iter
    (fun j ->
      match Json.get_int "id" j with
      | None -> ()
      | Some id when id < 0 || id >= n -> fail "out-of-range id %d" id
      | Some id -> (
          let expected, _ = requests.(id) in
          let ty = Option.value ~default:"?" (Json.get_string "type" j) in
          let reason = Json.get_string "reason" j in
          match expected with
          | Exp_malformed ->
              if not (ty = "rejected" && reason = Some "malformed") then
                fail "request %d: expected malformed rejection, got %s" id ty
          | Exp_health ->
              if ty <> "health" then
                fail "request %d: expected health, got %s" id ty
          | Exp_result spec -> (
              match ty with
              | "maybe_executed" ->
                  incr n_maybe;
                  if Json.get_string "tag" j <> spec.Job.tag then
                    fail "request %d: maybe_executed lost the client tag" id
              | "rejected" when reason = Some "all_backends_saturated" ->
                  incr n_saturated
              | "result" -> (
                  let status =
                    Option.value ~default:"?" (Json.get_string "status" j)
                  in
                  if Json.get_string "tag" j <> spec.Job.tag then
                    fail "request %d: result lost the client tag" id;
                  if Json.get_string "backend" j = None then
                    fail "request %d: result does not name its backend" id;
                  match spec.Job.deadline_ms with
                  | Some ms when ms <= 0. ->
                      incr n_deadline;
                      if status <> "deadline_missed" then
                        fail "request %d: impossible deadline reported %S" id
                          status
                  | _ ->
                      (* replay one-shot, single-threaded; the served
                         output must match bit for bit even if the job
                         was re-routed across backends *)
                      let oneshot = Job.run spec in
                      incr n_replayed;
                      let check name served expected =
                        if served <> expected then
                          fail "request %d: %s diverges (served %s, one-shot %s)"
                            id name served expected
                      in
                      check "status" status
                        (Job.status_to_string oneshot.Job.status);
                      check "tec_bits"
                        (Option.value ~default:"?"
                           (Json.get_string "tec_bits" j))
                        (Fmt.str "%Lx" (Int64.bits_of_float oneshot.Job.tec));
                      List.iter
                        (fun (name, got) ->
                          check name
                            (string_of_int
                               (Option.value ~default:min_int
                                  (Json.get_int name j)))
                            (string_of_int got))
                        [
                          ("t100", oneshot.Job.t100);
                          ("mapped", oneshot.Job.mapped);
                          ("aet", oneshot.Job.aet);
                          ("final_clock", oneshot.Job.final_clock);
                          ("discarded", oneshot.Job.n_discarded);
                        ])
              | other ->
                  fail "request %d: untyped outcome %S (reason %a)" id other
                    Fmt.(option string)
                    reason)))
    parsed;

  if stats.Router.st_respond_errors <> 0 then
    fail "%d responses failed to deliver" stats.Router.st_respond_errors;
  if stats.Router.st_dropped <> 0 then
    fail "graceful drain dropped %d jobs" stats.Router.st_dropped;
  if n_kills > 0 && stats.Router.st_failovers + stats.Router.st_maybe_executed = 0
  then
    fail
      "injected %d kill(s) against in-flight backends but saw no failover and \
       no maybe_executed"
      n_kills;
  List.iter
    (fun s ->
      let hwm = Sim.tenant_high_water s "bronze" in
      if hwm > bronze_cap then
        fail "backend %s: bronze admission high water %d exceeds cap %d"
          (Sim.name s) hwm bronze_cap)
    sims;
  if List.for_all (fun s -> Sim.tenant_high_water s "bronze" = 0) sims then
    fail "no backend ever admitted a bronze job (cap check is vacuous)";

  (* ---- per-job trace timelines: every accepted job has a complete
     enqueue..respond history under its derived trace id, and ambiguous
     jobs show the full dispatch -> death-detect -> resolve arc *)
  if Trace.dropped tracer <> 0 then
    fail "trace ring dropped %d events despite full-retention capacity"
      (Trace.dropped tracer);
  let timelines = Hashtbl.create n in
  List.iter
    (fun (e : Trace.event) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt timelines e.Trace.ev_job) in
      Hashtbl.replace timelines e.Trace.ev_job (e :: l))
    (Trace.events tracer);
  let ty_by_id = Hashtbl.create n in
  List.iter
    (fun j ->
      match (Json.get_int "id" j, Json.get_string "type" j) with
      | Some id, Some ty ->
          Hashtbl.replace ty_by_id id (ty, Json.get_string "reason" j)
      | _ -> ())
    parsed;
  let n_traced_maybe = ref 0 in
  Hashtbl.iter
    (fun id evs ->
      let evs = List.rev evs in
      let kinds = List.map (fun (e : Trace.event) -> e.Trace.ev_kind) evs in
      let expected_tid = Trace.id_of ~nonce:!seed ~job:id in
      List.iter
        (fun (e : Trace.event) ->
          if e.Trace.ev_trace <> expected_tid then
            fail "job %d: trace id %S (expected %S)" id e.Trace.ev_trace
              expected_tid)
        evs;
      (match kinds with
      | Trace.Enqueue :: _ -> ()
      | _ -> fail "job %d: timeline does not start with enqueue" id);
      let outcome =
        match List.rev kinds with
        | Trace.Respond { outcome } :: _ -> Some outcome
        | _ ->
            fail "job %d: timeline does not end with respond" id;
            None
      in
      let has p = List.exists p kinds in
      let index_of p =
        let rec go i = function
          | [] -> None
          | k :: tl -> if p k then Some i else go (i + 1) tl
        in
        go 0 kinds
      in
      match (Hashtbl.find_opt ty_by_id id, outcome) with
      | None, _ -> fail "job %d: traced but never answered" id
      | _, None -> ()
      | Some ("result", _), Some outcome ->
          if outcome <> "result" then
            fail "job %d: answered result but trace closed with %S" id outcome;
          if not (has (function Trace.Dispatch _ -> true | _ -> false)) then
            fail "job %d: completed without a dispatch event" id
      | Some ("maybe_executed", _), Some outcome ->
          incr n_traced_maybe;
          if outcome <> "maybe_executed" then
            fail "job %d: answered maybe_executed but trace closed with %S" id
              outcome;
          (match
             ( index_of (function Trace.Dispatch _ -> true | _ -> false),
               index_of (function Trace.Death _ -> true | _ -> false) )
           with
          | Some di, Some de when di < de -> ()
          | _ ->
              fail
                "job %d: maybe_executed timeline lacks the dispatch -> death \
                 -> resolve arc"
                id)
      | Some ("rejected", Some "all_backends_saturated"), Some outcome ->
          if outcome <> "all_backends_saturated" then
            fail "job %d: answered saturated but trace closed with %S" id
              outcome
      | Some ("dropped", _), Some outcome ->
          if outcome <> "dropped" then
            fail "job %d: answered dropped but trace closed with %S" id outcome
      | Some (ty, _), Some _ ->
          fail "job %d: unexpectedly traced for a %S answer" id ty)
    timelines;
  Hashtbl.iter
    (fun id (ty, reason) ->
      let should_be_traced =
        match (ty, reason) with
        | ("result" | "maybe_executed"), _ -> true
        | "rejected", Some "all_backends_saturated" -> true
        | _ -> false
      in
      if should_be_traced && not (Hashtbl.mem timelines id) then
        fail "job %d (%s): no trace timeline" id ty)
    ty_by_id;
  if n_kills > 0 && stats.Router.st_maybe_executed > 0 && !n_traced_maybe = 0
  then fail "maybe_executed responses exist but none carried a trace timeline";

  let summary =
    Json.Obj
      [
        ("schema", Json.Str "agrid-soak-fleet/1");
        ("jobs", Json.Int n);
        ("backends", Json.Int n_backends);
        ("kills", Json.Int n_kills);
        ("seed", Json.Int !seed);
        ("accepted", Json.Int stats.Router.st_accepted);
        ("completed", Json.Int stats.Router.st_completed);
        ("retries", Json.Int stats.Router.st_retries);
        ("failovers", Json.Int stats.Router.st_failovers);
        ("maybe_executed", Json.Int stats.Router.st_maybe_executed);
        ("saturated", Json.Int stats.Router.st_saturated);
        ("probes", Json.Int stats.Router.st_probes);
        ("probe_timeouts", Json.Int stats.Router.st_probe_timeouts);
        ("replayed", Json.Int !n_replayed);
        ("deadline_missed", Json.Int !n_deadline);
        ( "incarnations",
          Json.Arr
            (List.map (fun s -> Json.Int (Sim.incarnations s)) sims) );
        ("tenant_bronze_cap", Json.Int bronze_cap);
        ( "tenant_bronze_high_water",
          Json.Arr
            (List.map
               (fun s -> Json.Int (Sim.tenant_high_water s "bronze"))
               sims) );
        ( "reconnects",
          Json.Arr
            (List.map
               (fun b -> Json.Int b.Router.bs_reconnects)
               stats.Router.st_backends) );
        ("wall_s", Json.Flt wall);
        ("trace_events", Json.Int (Trace.length tracer));
        ("trace_dropped", Json.Int (Trace.dropped tracer));
        ("failures", Json.Int (List.length !failures));
        ("ok", Json.Bool (!failures = []));
      ]
  in
  if !out <> "" then begin
    let oc = open_out !out in
    List.iter
      (fun line ->
        output_string oc line;
        output_char oc '\n')
      responses;
    output_string oc (Json.to_string summary);
    output_char oc '\n';
    close_out oc
  end;
  if !trace_out <> "" then Trace.write_jsonl !trace_out tracer;
  if !chrome_out <> "" then begin
    let oc = open_out !chrome_out in
    output_string oc (Trace.chrome_json tracer);
    output_char oc '\n';
    close_out oc
  end;
  Fmt.pr
    "soak-fleet: %d requests over %d backends (%d kills): %d replayed \
     bit-identical, %d maybe_executed, %d saturated, %d failovers, %d \
     retries, %.2fs@."
    n n_backends n_kills !n_replayed !n_maybe !n_saturated
    stats.Router.st_failovers stats.Router.st_retries wall;
  match List.rev !failures with
  | [] ->
      Fmt.pr "soak-fleet: OK@.";
      exit 0
  | fs ->
      List.iter (fun f -> Fmt.epr "soak-fleet: FAIL %s@." f) fs;
      exit 1
