(* Tier-1 coverage of the fleet router ([Agrid_fleet]): the pure policy
   functions, the codec additions the router rides on (tagged rejections,
   maybe_executed, fleet health, response parsing, identity rewriting) and
   the router itself end-to-end over in-process [Sim] backends — including
   backend death, reconnection and the at-most-once ambiguity report.

   Fault timing is made deterministic by construction, never by sleeps
   alone: tests wait on observable state (health snapshots, response
   counts) with a generous ceiling, and the injected faults (wedge,
   refuse_connects, un-started routers) force a unique outcome. *)

module Json = Agrid_obs.Json
module Sink = Agrid_obs.Sink
module Registry = Agrid_obs.Registry
module Serialize = Agrid_workload.Serialize
module Job = Agrid_serve.Job
module Codec = Agrid_serve.Codec
module Policy = Agrid_fleet.Policy
module Router = Agrid_fleet.Router
module Sim = Agrid_fleet.Sim

let tiny ?(seed = 2004) () =
  Serialize.Generated
    { seed; scale = 0.03; etc_index = 0; dag_index = 0; case = Agrid_platform.Grid.A }

let job_line ?(tag = None) ?(seed = 2004) () =
  Json.to_string (Codec.job_to_json { (Job.default (tiny ~seed ())) with Job.tag })

type collector = { lock : Mutex.t; mutable lines : string list }

let collector () = { lock = Mutex.create (); lines = [] }

let respond_to c line =
  Mutex.lock c.lock;
  c.lines <- line :: c.lines;
  Mutex.unlock c.lock

let collected c =
  Mutex.lock c.lock;
  let l = List.rev c.lines in
  Mutex.unlock c.lock;
  l

let parse_line line =
  match Json.parse line with
  | j -> j
  | exception Json.Parse_error msg -> Alcotest.failf "bad response %S: %s" line msg

let get_int name j =
  match Json.get_int name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing int %S: %s" name (Json.to_string j)

let get_str name j =
  match Json.get_string name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing string %S: %s" name (Json.to_string j)

(* Poll an observable predicate to its deadline — fault detection is
   asynchronous (probe timeouts, EOF notices), but always bounded. *)
let eventually ?(timeout_s = 10.) msg pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for: %s" msg
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let quick_config =
  {
    Router.default_config with
    Router.queue_capacity = 32;
    inflight_cap = 4;
    max_attempts = 3;
    backoff_base_s = 0.01;
    backoff_cap_s = 0.05;
    probe_interval_s = 0.1;
    probe_timeout_s = 0.15;
    dead_after_timeouts = 2;
    connect_backoff_s = 0.05;
    seed = 42;
  }

let start_router ?obs ?trace ?(config = quick_config) sims =
  let r = Router.create ?obs ?trace config (List.map Sim.spec sims) in
  (match Router.start r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "router failed to start: %s" msg);
  r

let backend_health r name =
  match List.find_opt (fun (n, _, _) -> n = name) (Router.health_snapshot r) with
  | Some (_, h, _) -> h
  | None -> Alcotest.failf "no backend %S in health snapshot" name

(* ---- policy ---- *)

let test_policy_select () =
  let open Policy in
  let check msg expected healths inflight =
    let got =
      match select ~healths ~inflight ~cap:2 with
      | `Pick i -> Fmt.str "pick %d" i
      | `Wait -> "wait"
      | `Unavailable -> "unavailable"
    in
    Alcotest.(check string) msg expected got
  in
  check "least-loaded healthy wins" "pick 1"
    [| Healthy; Healthy |] [| 1; 0 |];
  check "lowest index breaks ties" "pick 0"
    [| Healthy; Healthy; Healthy |] [| 1; 1; 1 |];
  check "healthy preferred over idle degraded" "pick 1"
    [| Degraded; Healthy |] [| 0; 1 |];
  check "degraded serves when no healthy candidate" "pick 0"
    [| Degraded; Dead |] [| 0; 0 |];
  check "dead excluded entirely" "pick 1"
    [| Dead; Healthy |] [| 0; 1 |];
  check "alive but capped is backpressure" "wait"
    [| Healthy; Degraded |] [| 2; 2 |];
  check "capped healthy falls back to degraded" "pick 1"
    [| Healthy; Degraded |] [| 2; 0 |];
  check "all dead is unavailable" "unavailable"
    [| Dead; Dead |] [| 0; 0 |];
  match select ~healths:[| Healthy |] ~inflight:[| 0; 0 |] ~cap:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched arrays accepted"

let test_policy_backoff () =
  (* u = 0 gives the deterministic floor: half the doubling nominal *)
  let at attempt = Policy.backoff_s ~base_s:0.1 ~cap_s:1.0 ~attempt ~u:0. in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.05 (at 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.1 (at 2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.2 (at 3);
  Alcotest.(check (float 1e-9)) "attempt 10 capped" 0.5 (at 10);
  (* jitter spans [50%, 100%) of nominal *)
  let hi = Policy.backoff_s ~base_s:0.1 ~cap_s:1.0 ~attempt:1 ~u:0.999999 in
  Alcotest.(check bool) "jitter below nominal" true (hi < 0.1);
  Alcotest.(check bool) "jitter above half" true (hi > 0.05);
  (match Policy.backoff_s ~base_s:0.1 ~cap_s:1.0 ~attempt:0 ~u:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempt 0 accepted");
  match Policy.backoff_s ~base_s:0.1 ~cap_s:1.0 ~attempt:1 ~u:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "u = 1 accepted"

let test_policy_classify () =
  Alcotest.(check string) "fast probe healthy" "healthy"
    (Policy.health_to_string (Policy.classify_rtt ~rtt_s:0.01 ~degraded_rtt_s:0.25));
  Alcotest.(check string) "slow probe degraded" "degraded"
    (Policy.health_to_string (Policy.classify_rtt ~rtt_s:0.3 ~degraded_rtt_s:0.25))

(* ---- codec additions ---- *)

let test_codec_maybe_executed_roundtrip () =
  let line =
    Codec.maybe_executed_line ~id:7 ~tag:(Some "job-7") ~backend:"b1"
      ~detail:"backend died with the job in flight"
  in
  match Codec.parse_response line with
  | Error msg -> Alcotest.failf "own maybe_executed line rejected: %s" msg
  | Ok r ->
      Alcotest.(check bool) "type" true (r.Codec.r_type = `Maybe_executed);
      Alcotest.(check int) "id" 7 r.Codec.r_id;
      Alcotest.(check (option string)) "tag" (Some "job-7") r.Codec.r_tag;
      Alcotest.(check (option string)) "status" (Some "maybe_executed") r.Codec.r_status;
      Alcotest.(check string) "backend" "b1" (get_str "backend" r.Codec.r_json)

let test_codec_saturated_roundtrip () =
  let line =
    Codec.rejected_line ~tag:(Some "t") ~id:3 ~reason:`All_backends_saturated
      ~detail:"no backend accepted the job after 5 attempt(s)" ()
  in
  match Codec.parse_response line with
  | Error msg -> Alcotest.failf "own saturated line rejected: %s" msg
  | Ok r ->
      Alcotest.(check bool) "type" true (r.Codec.r_type = `Rejected);
      Alcotest.(check bool) "reason" true
        (r.Codec.r_reason = Some `All_backends_saturated);
      Alcotest.(check (option string)) "tag echoed" (Some "t") r.Codec.r_tag

let test_codec_reason_roundtrip () =
  List.iter
    (fun reason ->
      let s = Codec.reason_to_string reason in
      match Codec.reason_of_string s with
      | Some r -> Alcotest.(check bool) (Fmt.str "reason %s" s) true (r = reason)
      | None -> Alcotest.failf "reason %s did not round-trip" s)
    [ `Queue_full; `Malformed; `Draining; `All_backends_saturated ];
  Alcotest.(check bool) "unknown reason rejected" true
    (Codec.reason_of_string "tired" = None)

let test_codec_fleet_health () =
  let line =
    Codec.fleet_health_line ~id:0 ~uptime_s:1.5 ~queue_depth:3
      ~backends:[ ("b0", "healthy", 2); ("b1", "dead", 0) ]
      ~accepted:10 ~completed:7
  in
  match Codec.parse_response line with
  | Error msg -> Alcotest.failf "fleet health line rejected: %s" msg
  | Ok r -> (
      Alcotest.(check bool) "type" true (r.Codec.r_type = `Health);
      match Json.member "backends" r.Codec.r_json with
      | Some (Json.Arr [ b0; b1 ]) ->
          Alcotest.(check string) "b0 name" "b0" (get_str "name" b0);
          Alcotest.(check string) "b0 health" "healthy" (get_str "health" b0);
          Alcotest.(check int) "b0 in_flight" 2 (get_int "in_flight" b0);
          Alcotest.(check string) "b1 health" "dead" (get_str "health" b1)
      | _ -> Alcotest.fail "backends array missing or mis-shaped")

let test_codec_with_identity () =
  let inner =
    Codec.result_line ~id:99 ~tag:(Some "f12") ~latency_s:0.5 (Job.run (Job.default (tiny ())))
  in
  match Codec.parse_response inner with
  | Error msg -> Alcotest.failf "result line rejected: %s" msg
  | Ok r ->
      let rewritten =
        Codec.with_identity ~id:12 ~tag:(Some "client-tag") ~backend:"b0"
          r.Codec.r_json
      in
      Alcotest.(check int) "id rewritten" 12 (get_int "id" rewritten);
      Alcotest.(check string) "tag restored" "client-tag" (get_str "tag" rewritten);
      Alcotest.(check string) "backend appended" "b0" (get_str "backend" rewritten);
      (* the payload — tec_bits in particular — passes through untouched *)
      Alcotest.(check string) "tec_bits preserved"
        (get_str "tec_bits" r.Codec.r_json)
        (get_str "tec_bits" rewritten)

let test_codec_parse_response_total () =
  let err line =
    match Codec.parse_response line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  ignore (err "{nope");
  ignore (err "{\"schema\":\"wrong/1\",\"type\":\"result\",\"id\":0}");
  ignore (err "{\"schema\":\"agrid-job-result/1\",\"type\":\"sideways\",\"id\":0}");
  ignore (err "{\"schema\":\"agrid-job-result/1\",\"type\":\"result\"}");
  ignore (err "{\"schema\":\"agrid-job-result/1\",\"type\":\"rejected\",\"id\":1}");
  ignore
    (err "{\"schema\":\"agrid-job-result/1\",\"type\":\"rejected\",\"id\":1,\"reason\":\"vibes\"}")

(* ---- router end-to-end over Sim backends ---- *)

let test_router_balances_and_relays () =
  let sims = [ Sim.create "b0"; Sim.create "b1" ] in
  let r = start_router sims in
  let c = collector () in
  let n = 6 in
  for i = 0 to n - 1 do
    Router.submit r ~respond:(respond_to c)
      (job_line ~tag:(Some (Fmt.str "t%d" i)) ~seed:(300 + i) ())
  done;
  Router.submit r ~respond:(respond_to c) "garbage line";
  Router.submit r ~respond:(respond_to c)
    "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}";
  Router.drain r;
  List.iter Sim.shutdown sims;
  let lines = List.map parse_line (collected c) in
  Alcotest.(check int) "one response per request" (n + 2) (List.length lines);
  let ids = List.sort_uniq compare (List.map (get_int "id") lines) in
  Alcotest.(check (list int)) "ids exactly 0..n+1" (List.init (n + 2) Fun.id) ids;
  (* results carry the client tag, the serving backend, and bit-exact TECs *)
  for i = 0 to n - 1 do
    let j = List.find (fun j -> get_int "id" j = i) lines in
    Alcotest.(check string) (Fmt.str "job %d type" i) "result" (get_str "type" j);
    Alcotest.(check string) (Fmt.str "job %d tag" i) (Fmt.str "t%d" i)
      (get_str "tag" j);
    Alcotest.(check bool)
      (Fmt.str "job %d backend" i)
      true
      (List.mem (get_str "backend" j) [ "b0"; "b1" ]);
    let oneshot = Job.run (Job.default (tiny ~seed:(300 + i) ())) in
    Alcotest.(check string)
      (Fmt.str "job %d tec bits" i)
      (Fmt.str "%Lx" (Int64.bits_of_float oneshot.Job.tec))
      (get_str "tec_bits" j)
  done;
  let health = List.find (fun j -> get_str "type" j = "health") lines in
  (match Json.member "backends" health with
  | Some (Json.Arr l) -> Alcotest.(check int) "health lists both backends" 2 (List.length l)
  | _ -> Alcotest.fail "fleet health line without backends");
  let s = Router.stats r in
  Alcotest.(check int) "accepted" n s.Router.st_accepted;
  Alcotest.(check int) "completed" n s.Router.st_completed;
  Alcotest.(check int) "malformed" 1 s.Router.st_malformed;
  Alcotest.(check int) "health" 1 s.Router.st_health;
  Alcotest.(check int) "nothing ambiguous" 0 s.Router.st_maybe_executed;
  Alcotest.(check int) "dispatch split sums to n" n
    (List.fold_left
       (fun acc b -> acc + b.Router.bs_dispatched)
       0 s.Router.st_backends)

let test_router_wedged_backend_becomes_maybe_executed () =
  let sim = Sim.create "b0" in
  let r = start_router [ sim ] in
  let c = collector () in
  Sim.wedge sim;
  Router.submit r ~respond:(respond_to c) (job_line ~tag:(Some "ambiguous") ());
  (* the job was written to the wedged backend; probe timeouts must kill
     the connection and surface the typed ambiguity *)
  eventually "maybe_executed response" (fun () -> List.length (collected c) = 1);
  Router.drain r;
  Sim.unwedge sim;
  Sim.shutdown sim;
  let j = parse_line (List.hd (collected c)) in
  Alcotest.(check string) "type" "maybe_executed" (get_str "type" j);
  Alcotest.(check string) "status" "maybe_executed" (get_str "status" j);
  Alcotest.(check string) "client tag restored" "ambiguous" (get_str "tag" j);
  Alcotest.(check string) "names the backend" "b0" (get_str "backend" j);
  let s = Router.stats r in
  Alcotest.(check int) "maybe_executed counted" 1 s.Router.st_maybe_executed;
  Alcotest.(check int) "never re-run" 0 s.Router.st_completed

let test_router_all_dead_saturates_then_recovers () =
  let sim = Sim.create "b0" in
  let r = start_router [ sim ] in
  let c = collector () in
  (* killing the backend with nothing in flight: the router must notice
     (EOF) and refuse-to-connect keeps it down *)
  Sim.refuse_connects sim true;
  Sim.kill sim;
  eventually "backend marked dead" (fun () -> backend_health r "b0" = "dead");
  Router.submit r ~respond:(respond_to c) (job_line ~tag:(Some "doomed") ());
  eventually "saturated response" (fun () -> List.length (collected c) = 1);
  let j = parse_line (List.hd (collected c)) in
  Alcotest.(check string) "type" "rejected" (get_str "type" j);
  Alcotest.(check string) "reason" "all_backends_saturated" (get_str "reason" j);
  Alcotest.(check string) "client tag echoed" "doomed" (get_str "tag" j);
  let s = Router.stats r in
  Alcotest.(check int) "saturated counted" 1 s.Router.st_saturated;
  Alcotest.(check bool) "attempts were retried" true (s.Router.st_retries >= 1);
  (* restart: lift the refusal, wait for the reconnect, serve again *)
  Sim.refuse_connects sim false;
  eventually "backend reconnected" (fun () -> backend_health r "b0" <> "dead");
  Router.submit r ~respond:(respond_to c) (job_line ~tag:(Some "revived") ());
  eventually "revived job answered" (fun () -> List.length (collected c) = 2);
  Router.drain r;
  Sim.shutdown sim;
  let j2 =
    List.find (fun j -> get_int "id" j = 1) (List.map parse_line (collected c))
  in
  Alcotest.(check string) "revived result" "result" (get_str "type" j2);
  Alcotest.(check bool) "reconnect counted" true
    ((List.hd (Router.stats r).Router.st_backends).Router.bs_reconnects >= 1);
  Alcotest.(check bool) "second incarnation served it" true (Sim.incarnations sim >= 2)

let test_router_admission_backpressure_and_drop () =
  let sim = Sim.create "b0" in
  (* router never started: admissions sit in the queue, overflow is
     synchronous and deterministic, and stop answers the rest as dropped *)
  let r =
    Router.create { quick_config with Router.queue_capacity = 1 } [ Sim.spec sim ]
  in
  let c = collector () in
  Router.submit r ~respond:(respond_to c) (job_line ~tag:(Some "queued") ());
  Router.submit r ~respond:(respond_to c) (job_line ~tag:(Some "bounced") ());
  (match collected c with
  | [ line ] ->
      let j = parse_line line in
      Alcotest.(check string) "reason" "queue_full" (get_str "reason" j);
      Alcotest.(check int) "id" 1 (get_int "id" j);
      Alcotest.(check string) "tag echoed" "bounced" (get_str "tag" j)
  | lines -> Alcotest.failf "expected one rejection, got %d" (List.length lines));
  let dropped = Router.stop r in
  Sim.shutdown sim;
  Alcotest.(check int) "queued job dropped" 1 dropped;
  let lines = List.map parse_line (collected c) in
  Alcotest.(check int) "both answered" 2 (List.length lines);
  let j0 = List.find (fun j -> get_int "id" j = 0) lines in
  Alcotest.(check string) "dropped line" "dropped" (get_str "type" j0);
  (* after stop, submissions answer draining *)
  Router.submit r ~respond:(respond_to c) (job_line ());
  let j2 =
    List.find (fun j -> get_int "id" j = 2) (List.map parse_line (collected c))
  in
  Alcotest.(check string) "draining after stop" "draining" (get_str "reason" j2)

let test_router_obs_counters () =
  let sink = Sink.create () in
  let sims = [ Sim.create "b0"; Sim.create "b1" ] in
  let r = start_router ~obs:sink sims in
  let c = collector () in
  for i = 0 to 3 do
    Router.submit r ~respond:(respond_to c) (job_line ~seed:(700 + i) ())
  done;
  Router.drain r;
  List.iter Sim.shutdown sims;
  let counter name =
    match List.assoc_opt name (Sink.metrics sink) with
    | Some (Registry.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check int) "fleet/requests" 4 (counter "fleet/requests");
  Alcotest.(check int) "fleet/accepted" 4 (counter "fleet/accepted");
  Alcotest.(check int) "fleet/dispatches" 4 (counter "fleet/dispatches");
  Alcotest.(check int) "fleet/completed" 4 (counter "fleet/completed");
  (* two connect-time probes, plus whatever the maintenance loop sent *)
  Alcotest.(check bool) "fleet/probes >= 2" true (counter "fleet/probes" >= 2);
  (match List.assoc_opt "fleet/latency_s" (Sink.metrics sink) with
  | Some (Registry.Histogram h) ->
      Alcotest.(check int) "latency observations" 4 (Agrid_obs.Hist.count h)
  | _ -> Alcotest.fail "fleet/latency_s histogram missing");
  match List.assoc_opt "fleet/probe_s/b0" (Sink.metrics sink) with
  | Some (Registry.Histogram _) -> ()
  | _ -> Alcotest.fail "fleet/probe_s/b0 histogram missing"

(* ---- stats request: live snapshot with per-backend health ---- *)

let test_router_stats_request () =
  let tracer = Agrid_obs.Trace.create ~nonce:quick_config.Router.seed () in
  let sims = [ Sim.create "b0"; Sim.create "b1" ] in
  let r = start_router ~trace:tracer sims in
  let c = collector () in
  for i = 0 to 3 do
    Router.submit r ~respond:(respond_to c) (job_line ~seed:(800 + i) ())
  done;
  Router.drain r;
  let sc = collector () in
  Router.submit r ~respond:(respond_to sc)
    "{\"schema\":\"agrid-job/1\",\"kind\":\"stats\"}";
  (* answered synchronously: no waiting on the dispatcher *)
  (match collected sc with
  | [ line ] -> (
      match Codec.parse_stats line with
      | Error msg -> Alcotest.failf "stats line rejected: %s on %S" msg line
      | Ok s ->
          Alcotest.(check string) "role" "router" s.Codec.ss_role;
          Alcotest.(check int) "workers = backend count" 2 s.Codec.ss_workers;
          Alcotest.(check int) "accepted" 4 s.Codec.ss_accepted;
          Alcotest.(check int) "completed" 4 s.Codec.ss_completed;
          Alcotest.(check bool) "window rate positive" true (s.Codec.ss_rate > 0.);
          Alcotest.(check bool) "rolling p95 finite" true
            (Float.is_finite s.Codec.ss_p95_s);
          Alcotest.(check (list string)) "both backends listed" [ "b0"; "b1" ]
            (List.sort compare
               (List.map (fun (n, _, _) -> n) s.Codec.ss_backends));
          List.iter
            (fun (n, h, inflight) ->
              (* the aggressive quick-config probe timeouts can flap a
                 backend's health right after drain, so only pin the
                 domain, not the value *)
              Alcotest.(check bool) (n ^ " health is typed") true
                (List.mem h [ "healthy"; "degraded"; "dead" ]);
              Alcotest.(check int) (n ^ " idle") 0 inflight)
            s.Codec.ss_backends;
          Alcotest.(check bool) "trace ring populated" true
            (s.Codec.ss_trace_events > 0))
  | lines -> Alcotest.failf "expected one stats response, got %d" (List.length lines));
  List.iter Sim.shutdown sims;
  let stats = Router.stats r in
  Alcotest.(check int) "stats requests counted" 1 stats.Router.st_stats

(* ---- end-to-end trace timelines through the router ---- *)

let test_router_trace_timelines () =
  let module Trace = Agrid_obs.Trace in
  let nonce = quick_config.Router.seed in
  let tracer = Trace.create ~nonce () in
  let sim = Sim.create "b0" in
  let r = start_router ~trace:tracer [ sim ] in
  let c = collector () in
  Router.submit r ~respond:(respond_to c) (job_line ~seed:900 ());
  eventually "result arrives" (fun () -> List.length (collected c) = 1);
  (* now the ambiguous path: wedge the backend with a job in flight *)
  Sim.wedge sim;
  Router.submit r ~respond:(respond_to c) (job_line ~tag:(Some "ambiguous") ());
  eventually "maybe_executed arrives" (fun () -> List.length (collected c) = 2);
  Router.drain r;
  Sim.unwedge sim;
  Sim.shutdown sim;
  let timeline job =
    List.filter (fun (e : Trace.event) -> e.Trace.ev_job = job)
      (Trace.events tracer)
  in
  (* job 0 completed normally: enqueue -> dispatch -> respond(result),
     all under the id derived from (router seed, job id) *)
  let t0 = timeline 0 in
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check string) "derived trace id"
        (Trace.id_of ~nonce ~job:0) e.Trace.ev_trace)
    t0;
  (match List.map (fun (e : Trace.event) -> e.Trace.ev_kind) t0 with
  | [ Trace.Enqueue; Trace.Dispatch { backend = "b0"; attempt = 1 };
      Trace.Respond { outcome = "result" } ] -> ()
  | kinds ->
      Alcotest.failf "unexpected result timeline: %s"
        (String.concat " -> " (List.map Trace.kind_to_string kinds)));
  (* job 1 was ambiguous: the timeline must show the full
     dispatch -> death-detect -> resolve arc *)
  (match List.map (fun (e : Trace.event) -> e.Trace.ev_kind) (timeline 1) with
  | [ Trace.Enqueue; Trace.Dispatch { backend = "b0"; _ }; Trace.Death { backend = "b0" };
      Trace.Respond { outcome = "maybe_executed" } ] -> ()
  | kinds ->
      Alcotest.failf "unexpected ambiguous timeline: %s"
        (String.concat " -> " (List.map Trace.kind_to_string kinds)));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tracer)

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "policy: selection tiers and ties" `Quick
          test_policy_select;
        Alcotest.test_case "policy: backoff doubling, cap, jitter" `Quick
          test_policy_backoff;
        Alcotest.test_case "policy: probe classification" `Quick
          test_policy_classify;
        Alcotest.test_case "codec: maybe_executed round-trip" `Quick
          test_codec_maybe_executed_roundtrip;
        Alcotest.test_case "codec: all_backends_saturated round-trip" `Quick
          test_codec_saturated_roundtrip;
        Alcotest.test_case "codec: rejection reasons round-trip" `Quick
          test_codec_reason_roundtrip;
        Alcotest.test_case "codec: fleet health line" `Quick test_codec_fleet_health;
        Alcotest.test_case "codec: identity rewrite preserves payload" `Quick
          test_codec_with_identity;
        Alcotest.test_case "codec: parse_response is total" `Quick
          test_codec_parse_response_total;
        Alcotest.test_case "router: balances, relays, monotone ids" `Quick
          test_router_balances_and_relays;
        Alcotest.test_case "router: wedged backend -> maybe_executed" `Quick
          test_router_wedged_backend_becomes_maybe_executed;
        Alcotest.test_case "router: all dead -> saturated, then recovers" `Quick
          test_router_all_dead_saturates_then_recovers;
        Alcotest.test_case "router: admission backpressure and stop" `Quick
          test_router_admission_backpressure_and_drop;
        Alcotest.test_case "router: fleet telemetry" `Quick test_router_obs_counters;
        Alcotest.test_case "router: stats request snapshot" `Quick
          test_router_stats_request;
        Alcotest.test_case "router: trace timelines" `Quick
          test_router_trace_timelines;
      ] );
  ]
