(* Fuzz suite for the hand-rolled parsers ([Agrid_obs.Json] and
   [Agrid_report.Csv.parse]) — seeded mutation/truncation corpora from
   the in-tree Splitmix64, so every case replays from the suite seed.

   Contracts pinned here:
   - [Json.parse] either returns a value or raises [Json.Parse_error] —
     never any other exception (a ["[[[["-nesting bomb used to overflow
     the stack; the parser now bounds recursion depth);
   - printing is a canonicalisation: [to_string] of any accepted value
     re-parses, and print/parse reaches a fixed point within two rounds
     (one round may still collapse float spellings: ["-0.0"] prints as
     ["-0"], which re-parses as [Int 0]);
   - [Csv.parse] raises only [Invalid_argument] (unterminated quote) and
     rows obtained from a successful parse round-trip exactly through
     [Csv.to_string]. *)

module Json = Agrid_obs.Json
module Csv = Agrid_report.Csv
module Rng = Agrid_prng.Splitmix64

(* ---- shared mutation machinery ---- *)

let interesting =
  [|
    '"'; '\\'; '{'; '}'; '['; ']'; ','; ':'; '.'; '-'; '+'; 'e'; 'E'; '0';
    '9'; 'n'; 't'; 'f'; 'u'; ' '; '\n'; '\r'; '\000'; '\255';
  |]

let mutate rng s =
  let n = String.length s in
  if n = 0 then String.make 1 interesting.(Rng.next_int rng (Array.length interesting))
  else
    let pos = Rng.next_int rng n in
    let ch () = interesting.(Rng.next_int rng (Array.length interesting)) in
    match Rng.next_int rng 4 with
    | 0 -> String.sub s 0 pos (* truncate *)
    | 1 ->
        (* replace one byte *)
        let b = Bytes.of_string s in
        Bytes.set b pos (ch ());
        Bytes.to_string b
    | 2 -> String.sub s 0 pos ^ String.make 1 (ch ()) ^ String.sub s pos (n - pos)
    | _ -> String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1)

let rec mutate_n rng k s = if k = 0 then s else mutate_n rng (k - 1) (mutate rng s)

(* ---- JSON ---- *)

let json_corpus () =
  (* real artefacts: a populated sink through both exporters *)
  let sink = Agrid_obs.Sink.create ~stride:1 () in
  Agrid_obs.Sink.add sink "fuzz/counter" 3;
  Agrid_obs.Sink.observe sink "fuzz/hist" ~bounds:[| 1.0; 10.0 |] 0.5;
  Agrid_obs.Sink.observe sink "fuzz/hist" ~bounds:[| 1.0; 10.0 |] 2.5;
  Agrid_obs.Sink.span sink "fuzz/span" (fun () -> ());
  [ Agrid_obs.Export.summary_json ~total_seconds:1.25 sink ]
  @ Agrid_obs.Export.jsonl_lines sink
  @ [
      (* hand-picked shapes the artefacts do not cover *)
      "null"; "true"; "false"; "-0.0"; "1e-7"; "1e99999"; "[1,2,3]";
      "[1.0,2.5e10,-0.0,\"x\"]";
      "{\"a\":1.5,\"b\":[null,\"line\\nbreak\",{\"c\":{}}]}";
      "\"\\u00e9\\u20ac\\t\""; "  {  \"k\" :\r\n [ ] } ";
      "99999999999999999999";
    ]

let check_json_input s =
  match Json.parse s with
  | exception Json.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "Json.parse raised %s on %S" (Printexc.to_string e) s
  | v -> (
      let s1 = Json.to_string v in
      match Json.parse s1 with
      | exception e ->
          Alcotest.failf "re-parse of printed %S raised %s" s1
            (Printexc.to_string e)
      | v1 ->
          let s2 = Json.to_string v1 in
          let s3 = Json.to_string (Json.parse s2) in
          if s2 <> s3 then
            Alcotest.failf
              "print/parse fixed point not reached from %S: %S vs %S" s s2 s3)

let test_json_fuzz () =
  let corpus = Array.of_list (json_corpus ()) in
  Array.iter check_json_input corpus;
  let rng = Rng.of_int 0xF002 in
  for _ = 1 to 1200 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    check_json_input (mutate_n rng (1 + Rng.next_int rng 3) base)
  done

let test_json_depth_bomb () =
  (* adversarial nesting raises Parse_error instead of blowing the stack *)
  let check s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "depth bomb raised %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "depth bomb parsed"
  in
  check (String.make 50_000 '[');
  check (String.concat "" [ String.make 600 '['; "1"; String.make 600 ']' ]);
  check (String.concat "" (List.init 600 (fun _ -> "{\"k\":") @ [ "1" ]));
  (* while realistic nesting still parses *)
  let deep n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  match Json.parse (deep 100) with
  | _ -> ()
  | exception e ->
      Alcotest.failf "100-deep nesting rejected: %s" (Printexc.to_string e)

(* ---- CSV ---- *)

let csv_corpus () =
  let sink = Agrid_obs.Sink.create () in
  Agrid_obs.Sink.add sink "fuzz/counter" 7;
  Agrid_obs.Sink.observe sink "fuzz/hist" ~bounds:[| 1.0; 10.0 |] 1.5;
  [
    Csv.to_string ~header:[ "a"; "b" ]
      [
        [ "1"; "x,y" ];
        [ "he said \"hi\""; "line\nbreak" ];
        [ ""; "trailing" ];
      ];
    Csv.to_string ~header:Agrid_obs.Export.metrics_csv_header
      (Agrid_obs.Export.metrics_csv_rows sink);
    "a,b\r\n1,2\r\n";
    "one\n\ntwo\n";
    "\"quoted,field\",plain\n";
  ]

let check_csv_input s =
  match Csv.parse s with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "Csv.parse raised %s on %S" (Printexc.to_string e) s
  | [] -> ()
  | header :: body -> (
      (* accepted rows round-trip exactly through the writer *)
      let s1 = Csv.to_string ~header body in
      match Csv.parse s1 with
      | exception e ->
          Alcotest.failf "re-parse of written CSV %S raised %s" s1
            (Printexc.to_string e)
      | rows1 ->
          if rows1 <> header :: body then
            Alcotest.failf "CSV round trip diverges on %S (rewritten %S)" s s1)

let test_csv_fuzz () =
  let corpus = Array.of_list (csv_corpus ()) in
  Array.iter check_csv_input corpus;
  let rng = Rng.of_int 0xF003 in
  for _ = 1 to 1000 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    check_csv_input (mutate_n rng (1 + Rng.next_int rng 3) base)
  done

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "json parser: mutation corpus" `Quick test_json_fuzz;
        Alcotest.test_case "json parser: nesting bombs" `Quick
          test_json_depth_bomb;
        Alcotest.test_case "csv parser: mutation corpus" `Quick test_csv_fuzz;
      ] );
  ]
