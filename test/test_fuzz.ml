(* Fuzz suite for the hand-rolled parsers ([Agrid_obs.Json] and
   [Agrid_report.Csv.parse]) — seeded mutation/truncation corpora from
   the in-tree Splitmix64, so every case replays from the suite seed.

   Contracts pinned here:
   - [Json.parse] either returns a value or raises [Json.Parse_error] —
     never any other exception (a ["[[[["-nesting bomb used to overflow
     the stack; the parser now bounds recursion depth);
   - printing is a canonicalisation: [to_string] of any accepted value
     re-parses, and print/parse reaches a fixed point within two rounds
     (one round may still collapse float spellings: ["-0.0"] prints as
     ["-0"], which re-parses as [Int 0]);
   - [Csv.parse] raises only [Invalid_argument] (unterminated quote) and
     rows obtained from a successful parse round-trip exactly through
     [Csv.to_string]. *)

module Json = Agrid_obs.Json
module Csv = Agrid_report.Csv
module Rng = Agrid_prng.Splitmix64

(* ---- shared mutation machinery ---- *)

let interesting =
  [|
    '"'; '\\'; '{'; '}'; '['; ']'; ','; ':'; '.'; '-'; '+'; 'e'; 'E'; '0';
    '9'; 'n'; 't'; 'f'; 'u'; ' '; '\n'; '\r'; '\000'; '\255';
  |]

let mutate rng s =
  let n = String.length s in
  if n = 0 then String.make 1 interesting.(Rng.next_int rng (Array.length interesting))
  else
    let pos = Rng.next_int rng n in
    let ch () = interesting.(Rng.next_int rng (Array.length interesting)) in
    match Rng.next_int rng 4 with
    | 0 -> String.sub s 0 pos (* truncate *)
    | 1 ->
        (* replace one byte *)
        let b = Bytes.of_string s in
        Bytes.set b pos (ch ());
        Bytes.to_string b
    | 2 -> String.sub s 0 pos ^ String.make 1 (ch ()) ^ String.sub s pos (n - pos)
    | _ -> String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1)

let rec mutate_n rng k s = if k = 0 then s else mutate_n rng (k - 1) (mutate rng s)

(* ---- JSON ---- *)

let json_corpus () =
  (* real artefacts: a populated sink through both exporters *)
  let sink = Agrid_obs.Sink.create ~stride:1 () in
  Agrid_obs.Sink.add sink "fuzz/counter" 3;
  Agrid_obs.Sink.observe sink "fuzz/hist" ~bounds:[| 1.0; 10.0 |] 0.5;
  Agrid_obs.Sink.observe sink "fuzz/hist" ~bounds:[| 1.0; 10.0 |] 2.5;
  Agrid_obs.Sink.span sink "fuzz/span" (fun () -> ());
  [ Agrid_obs.Export.summary_json ~total_seconds:1.25 sink ]
  @ Agrid_obs.Export.jsonl_lines sink
  @ [
      (* hand-picked shapes the artefacts do not cover *)
      "null"; "true"; "false"; "-0.0"; "1e-7"; "1e99999"; "[1,2,3]";
      "[1.0,2.5e10,-0.0,\"x\"]";
      "{\"a\":1.5,\"b\":[null,\"line\\nbreak\",{\"c\":{}}]}";
      "\"\\u00e9\\u20ac\\t\""; "  {  \"k\" :\r\n [ ] } ";
      "99999999999999999999";
    ]

let check_json_input s =
  match Json.parse s with
  | exception Json.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "Json.parse raised %s on %S" (Printexc.to_string e) s
  | v -> (
      let s1 = Json.to_string v in
      match Json.parse s1 with
      | exception e ->
          Alcotest.failf "re-parse of printed %S raised %s" s1
            (Printexc.to_string e)
      | v1 ->
          let s2 = Json.to_string v1 in
          let s3 = Json.to_string (Json.parse s2) in
          if s2 <> s3 then
            Alcotest.failf
              "print/parse fixed point not reached from %S: %S vs %S" s s2 s3)

let test_json_fuzz () =
  let corpus = Array.of_list (json_corpus ()) in
  Array.iter check_json_input corpus;
  let rng = Rng.of_int 0xF002 in
  for _ = 1 to 1200 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    check_json_input (mutate_n rng (1 + Rng.next_int rng 3) base)
  done

let test_json_depth_bomb () =
  (* adversarial nesting raises Parse_error instead of blowing the stack *)
  let check s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "depth bomb raised %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "depth bomb parsed"
  in
  check (String.make 50_000 '[');
  check (String.concat "" [ String.make 600 '['; "1"; String.make 600 ']' ]);
  check (String.concat "" (List.init 600 (fun _ -> "{\"k\":") @ [ "1" ]));
  (* while realistic nesting still parses *)
  let deep n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  match Json.parse (deep 100) with
  | _ -> ()
  | exception e ->
      Alcotest.failf "100-deep nesting rejected: %s" (Printexc.to_string e)

(* ---- CSV ---- *)

let csv_corpus () =
  let sink = Agrid_obs.Sink.create () in
  Agrid_obs.Sink.add sink "fuzz/counter" 7;
  Agrid_obs.Sink.observe sink "fuzz/hist" ~bounds:[| 1.0; 10.0 |] 1.5;
  [
    Csv.to_string ~header:[ "a"; "b" ]
      [
        [ "1"; "x,y" ];
        [ "he said \"hi\""; "line\nbreak" ];
        [ ""; "trailing" ];
      ];
    Csv.to_string ~header:Agrid_obs.Export.metrics_csv_header
      (Agrid_obs.Export.metrics_csv_rows sink);
    "a,b\r\n1,2\r\n";
    "one\n\ntwo\n";
    "\"quoted,field\",plain\n";
  ]

let check_csv_input s =
  match Csv.parse s with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "Csv.parse raised %s on %S" (Printexc.to_string e) s
  | [] -> ()
  | header :: body -> (
      (* accepted rows round-trip exactly through the writer *)
      let s1 = Csv.to_string ~header body in
      match Csv.parse s1 with
      | exception e ->
          Alcotest.failf "re-parse of written CSV %S raised %s" s1
            (Printexc.to_string e)
      | rows1 ->
          if rows1 <> header :: body then
            Alcotest.failf "CSV round trip diverges on %S (rewritten %S)" s s1)

let test_csv_fuzz () =
  let corpus = Array.of_list (csv_corpus ()) in
  Array.iter check_csv_input corpus;
  let rng = Rng.of_int 0xF003 in
  for _ = 1 to 1000 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    check_csv_input (mutate_n rng (1 + Rng.next_int rng 3) base)
  done

(* ---- agrid-job/1 round trips (scenario service wire format) ----

   Contracts pinned here:
   - [Serialize.scenario_ref_of_json ∘ scenario_ref_to_json] is the
     identity (floats are drawn from short-decimal grids so the JSON
     emitter's %.9g spelling is lossless);
   - [Codec.parse_request ∘ Json.to_string ∘ Codec.job_to_json] returns
     [Ok (Submit spec)] for every well-formed job spec;
   - both parsers are total on hostile input: mutated envelopes come
     back as [Ok] or [Error], never as an exception. *)

module Serialize = Agrid_workload.Serialize
module Codec = Agrid_serve.Codec
module Job = Agrid_serve.Job

let pick rng arr = arr.(Rng.next_int rng (Array.length arr))

let random_scenario_ref rng =
  if Rng.next_int rng 5 = 0 then
    (* a real pinned document, not a synthetic string: realize must work *)
    let spec = Agrid_workload.Spec.scaled ~seed:(Rng.next_int rng 1000) ~factor:0.03 () in
    Serialize.Pinned
      (Serialize.to_string spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A)
  else
    Serialize.Generated
      {
        seed = Rng.next_int rng 100_000;
        scale = pick rng [| 0.03; 0.0625; 0.125; 0.5; 1.0 |];
        etc_index = Rng.next_int rng 4;
        dag_index = Rng.next_int rng 4;
        case = pick rng [| Agrid_platform.Grid.A; Agrid_platform.Grid.B; Agrid_platform.Grid.C |];
      }

let random_job_spec rng =
  let events =
    match Rng.next_int rng 3 with
    | 0 -> []
    | 1 -> Agrid_churn.Event.parse_trace "leave@40:1,rejoin@90:1"
    | _ -> Agrid_churn.Event.parse_trace "shock@30:0:0.25,degrade@60:2:0.5"
  in
  {
    (Job.default (random_scenario_ref rng)) with
    Job.tag = (if Rng.next_int rng 2 = 0 then None else Some (Fmt.str "t%d" (Rng.next_int rng 99)));
    trace_id =
      (if Rng.next_int rng 3 = 0 then
         Some (Agrid_obs.Trace.id_of ~nonce:(Rng.next_int rng 1000) ~job:(Rng.next_int rng 1000))
       else None);
    tenant =
      (if Rng.next_int rng 3 = 0 then
         Some (pick rng [| "gold"; "bronze"; "t-0.9_x" |])
       else None);
    alpha = float_of_int (Rng.next_int rng 500) /. 1000.;
    beta = float_of_int (Rng.next_int rng 400) /. 1000.;
    variant = pick rng [| Agrid_core.Slrh.V1; Agrid_core.Slrh.V2; Agrid_core.Slrh.V3 |];
    delta_t = pick rng [| 5; 10; 20 |];
    horizon = pick rng [| 50; 100; 200 |];
    mode = pick rng [| `Rescan; `Incremental; `Soa |];
    events;
    deadline_ms = (if Rng.next_int rng 3 = 0 then Some (float_of_int (Rng.next_int rng 500)) else None);
  }

let test_scenario_ref_roundtrip () =
  let rng = Rng.of_int 0xF004 in
  for i = 1 to 300 do
    let r = random_scenario_ref rng in
    let j = Json.to_string (Serialize.scenario_ref_to_json r) in
    match Serialize.scenario_ref_of_json (Json.parse j) with
    | Ok r' when r' = r -> ()
    | Ok _ -> Alcotest.failf "scenario_ref round trip diverges (case %d): %s" i j
    | Error msg -> Alcotest.failf "scenario_ref round trip rejected (case %d): %s" i msg
  done

let test_job_envelope_roundtrip () =
  let rng = Rng.of_int 0xF005 in
  for i = 1 to 200 do
    let spec = random_job_spec rng in
    let line = Json.to_string (Codec.job_to_json spec) in
    match Codec.parse_request line with
    | Ok (Codec.Submit spec') when spec' = spec -> ()
    | Ok (Codec.Submit _) ->
        Alcotest.failf "job envelope round trip diverges (case %d): %s" i line
    | Ok (Codec.Health | Codec.Stats) ->
        Alcotest.failf "job envelope parsed as a control request (case %d)" i
    | Error msg -> Alcotest.failf "job envelope rejected (case %d): %s" i msg
  done

(* a pinned scenario embedded in the envelope realizes to the same
   workload the spec builds directly: compare the artefacts bit-for-bit *)
let test_pinned_realize_roundtrip () =
  let spec = Agrid_workload.Spec.scaled ~seed:77 ~factor:0.03 () in
  let direct =
    Agrid_workload.Workload.build spec ~etc_index:1 ~dag_index:2 ~case:Agrid_platform.Grid.B
  in
  let text = Serialize.to_string spec ~etc_index:1 ~dag_index:2 ~case:Agrid_platform.Grid.B in
  let via_ref = Serialize.realize (Serialize.Pinned text) in
  let module W = Agrid_workload.Workload in
  Alcotest.(check int) "n_tasks" (W.n_tasks direct) (W.n_tasks via_ref);
  Alcotest.(check int) "n_machines" (W.n_machines direct) (W.n_machines via_ref);
  Alcotest.(check int) "tau" (W.tau direct) (W.tau via_ref);
  let etc_d = W.etc direct and etc_r = W.etc via_ref in
  for t = 0 to W.n_tasks direct - 1 do
    for m = 0 to W.n_machines direct - 1 do
      let a = Agrid_etc.Etc.seconds etc_d ~task:t ~machine:m in
      let b = Agrid_etc.Etc.seconds etc_r ~task:t ~machine:m in
      if Int64.bits_of_float a <> Int64.bits_of_float b then
        Alcotest.failf "ETC(%d,%d) diverges: %.17g vs %.17g" t m a b
    done
  done;
  Alcotest.(check bool) "edges" true
    (Agrid_dag.Dag.edges (W.dag direct) = Agrid_dag.Dag.edges (W.dag via_ref))

let test_request_fuzz () =
  let corpus =
    Array.of_list
      (let rng = Rng.of_int 0xF006 in
       List.init 10 (fun _ -> Json.to_string (Codec.job_to_json (random_job_spec rng)))
       @ [
           "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}";
           "{\"schema\":\"agrid-job/1\",\"kind\":\"job\"}";
           "{\"schema\":\"agrid-job/0\",\"kind\":\"job\"}";
           "{\"kind\":\"job\"}";
         ])
  in
  let rng = Rng.of_int 0xF007 in
  for _ = 1 to 1200 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    let s = mutate_n rng (1 + Rng.next_int rng 4) base in
    match Codec.parse_request s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parse_request raised %s on %S" (Printexc.to_string e) s
  done;
  (* and the scenario_ref parser alone, on mutated scenario objects *)
  let scen_corpus =
    Array.of_list
      (let rng = Rng.of_int 0xF008 in
       List.init 8 (fun _ ->
           Json.to_string (Serialize.scenario_ref_to_json (random_scenario_ref rng))))
  in
  for _ = 1 to 800 do
    let base = scen_corpus.(Rng.next_int rng (Array.length scen_corpus)) in
    let s = mutate_n rng (1 + Rng.next_int rng 4) base in
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | j -> (
        match Serialize.scenario_ref_of_json j with
        | Ok _ | Error _ -> ()
        | exception e ->
            Alcotest.failf "scenario_ref_of_json raised %s on %S"
              (Printexc.to_string e) s)
  done

(* the router's backend-response parser must be total too: the fleet
   survives a backend emitting any damaged line (it is counted as a
   protocol error, never an exception), so every response shape the
   system can emit — including the fleet-only maybe_executed /
   all_backends_saturated / fleet-health lines — goes through the
   mutation grinder *)
let test_response_fuzz () =
  let result =
    let scenario =
      Serialize.Generated
        { seed = 7; scale = 0.03; etc_index = 0; dag_index = 0; case = Agrid_platform.Grid.A }
    in
    Job.run (Job.default scenario)
  in
  let corpus =
    Array.of_list
      [
        Codec.result_line ~id:3 ~tag:(Some "t3") ~latency_s:0.25 result;
        Codec.rejected_line ~id:4 ~reason:`Malformed ~detail:"not JSON" ();
        Codec.rejected_line ~tag:(Some "t5") ~id:5 ~reason:`Queue_full
          ~detail:"queue full (16 jobs)" ();
        Codec.rejected_line ~tag:(Some "t6") ~id:6 ~reason:`All_backends_saturated
          ~detail:"5 attempts exhausted" ();
        Codec.rejected_line ~tag:None ~id:7 ~reason:`Draining ~detail:"shutting down" ();
        Codec.rejected_line ~tag:(Some "t12") ~id:12 ~reason:`Tenant_quota
          ~detail:"tenant \"bronze\" at its admission cap (2 outstanding)" ();
        Codec.dropped_line ~id:8 ~tag:None;
        Codec.maybe_executed_line ~id:9 ~tag:(Some "t9") ~backend:"b1"
          ~detail:"backend died with the job in flight";
        Codec.health_line ~id:10 ~uptime_s:1.5 ~queue_depth:2 ~workers:4
          ~accepted:7 ~completed:5;
        Codec.fleet_health_line ~id:11 ~uptime_s:2.5 ~queue_depth:0
          ~backends:[ ("b0", "healthy", 3); ("b1", "degraded", 0) ]
          ~accepted:9 ~completed:9;
      ]
  in
  (* unmutated lines must parse, with the reason round-tripping *)
  Array.iter
    (fun line ->
      match Codec.parse_response line with
      | Ok r -> (
          match r.Codec.r_reason with
          | Some reason ->
              if Codec.reason_of_string (Codec.reason_to_string reason) <> Some reason
              then Alcotest.failf "reason spelling does not round-trip on %S" line
          | None -> ())
      | Error msg -> Alcotest.failf "own response line rejected: %s on %S" msg line)
    corpus;
  let rng = Rng.of_int 0xF009 in
  for _ = 1 to 1200 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    let s = mutate_n rng (1 + Rng.next_int rng 4) base in
    match Codec.parse_response s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parse_response raised %s on %S" (Printexc.to_string e) s
  done

(* agrid-stats/1: snapshots answered to `agrid top` — the parser must be
   total under mutation, and print/parse must reach a fixed point
   (including NaN quantiles travelling as JSON null) *)
let test_stats_fuzz () =
  let snap ~role ~backends ~quantile =
    {
      Codec.ss_role = role;
      ss_id = 17;
      ss_uptime_s = 12.5;
      ss_queue_depth = 3;
      ss_in_flight = 2;
      ss_workers = 4;
      ss_accepted = 99;
      ss_completed = 95;
      ss_window_s = 60.;
      ss_rate = 1.583;
      ss_p50_s = quantile;
      ss_p95_s = quantile *. 2.;
      ss_p99_s = quantile *. 3.;
      ss_backends = backends;
      ss_trace_events = 123;
      ss_trace_dropped = 0;
      ss_trace_exemplars = 4;
    }
  in
  let corpus =
    Array.of_list
      [
        Codec.stats_line (snap ~role:"serve" ~backends:[] ~quantile:0.0025);
        Codec.stats_line
          (snap ~role:"router"
             ~backends:[ ("b0", "healthy", 2); ("b1", "dead", 0) ]
             ~quantile:0.1);
        Codec.stats_line (snap ~role:"serve" ~backends:[] ~quantile:Float.nan);
      ]
  in
  (* print . parse is a fixed point on every unmutated line *)
  Array.iter
    (fun line ->
      match Codec.parse_stats line with
      | Error msg -> Alcotest.failf "own stats line rejected: %s on %S" msg line
      | Ok s -> Alcotest.(check string) "stats fixed point" line (Codec.stats_line s))
    corpus;
  let rng = Rng.of_int 0xF00A in
  for _ = 1 to 1200 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    let s = mutate_n rng (1 + Rng.next_int rng 4) base in
    match Codec.parse_stats s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parse_stats raised %s on %S" (Printexc.to_string e) s
  done

(* agrid-trace/1: every line shape the exporter can emit goes through the
   mutation grinder; parse_line must be total and print/parse a fixed
   point so `agrid trace export` and check_obs can trust the artifact *)
let test_trace_fuzz () =
  let module Trace = Agrid_obs.Trace in
  let t = Trace.create ~nonce:0xBEEF ~exemplars:2 () in
  List.iteri
    (fun j kinds ->
      List.iter (fun k -> Trace.record t ~job:j k) kinds)
    [
      [
        Trace.Enqueue;
        Trace.Dispatch { backend = "b0"; attempt = 1 };
        Trace.Retry { attempt = 1; delay_s = 0.25 };
        Trace.Failover { backend = "b0" };
        Trace.Death { backend = "b0" };
        Trace.Respond { outcome = "maybe_executed" };
      ];
      [
        Trace.Enqueue;
        Trace.Exec { queue_wait_s = 0.001 };
        Trace.Respond { outcome = "result" };
      ];
    ];
  let corpus = Array.of_list (Trace.jsonl_lines t) in
  Array.iter
    (fun line ->
      match Trace.parse_line line with
      | Error msg -> Alcotest.failf "own trace line rejected: %s on %S" msg line
      | Ok l -> Alcotest.(check string) "trace fixed point" line (Trace.line_to_string l))
    corpus;
  let rng = Rng.of_int 0xF00B in
  for _ = 1 to 1500 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    let s = mutate_n rng (1 + Rng.next_int rng 4) base in
    match Trace.parse_line s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "Trace.parse_line raised %s on %S" (Printexc.to_string e) s
  done

(* agrid-traffic/1: the multi-tenant traffic spec ([Agrid_tenant.Traffic])
   — the parser must be total under mutation and [spec_of_json ∘
   spec_to_json] the identity on every well-formed spec (rates and
   quotas are drawn from short-decimal grids so the %.9g spelling is
   lossless) *)
let test_traffic_spec_fuzz () =
  let module Traffic = Agrid_tenant.Traffic in
  let module Tenant = Agrid_tenant.Tenant in
  let module Arrivals = Agrid_tenant.Arrivals in
  let random_tenant rng i =
    let id = Fmt.str "%s%d" (pick rng [| "gold"; "bronze"; "t_"; "x.y-" |]) i in
    Tenant.make
      ~priority:(pick rng [| Tenant.High; Tenant.Normal; Tenant.Low |])
      ?energy_quota:
        (if Rng.next_int rng 2 = 0 then None
         else Some (pick rng [| 50.0; 200.0; 1024.5 |]))
      ?machine_quota:
        (if Rng.next_int rng 3 = 0 then Some (1 + Rng.next_int rng 8) else None)
      id
  in
  let random_process rng =
    if Rng.next_int rng 2 = 0 then
      Arrivals.Poisson (pick rng [| 0.002; 0.01; 0.125 |])
    else
      Arrivals.Trace
        (List.sort compare
           (List.init (1 + Rng.next_int rng 4) (fun _ -> Rng.next_int rng 500)))
  in
  let random_spec rng =
    Traffic.make_spec
      ~scale:(pick rng [| 0.03; 0.0625; 0.125 |])
      ~case:(pick rng [| Agrid_platform.Grid.A; Agrid_platform.Grid.B |])
      ~chunk:(1 + Rng.next_int rng 8)
      ~events:
        (match Rng.next_int rng 3 with
        | 0 -> []
        | 1 -> Agrid_churn.Event.parse_trace "leave@40:1,rejoin@90:1"
        | _ -> Agrid_churn.Event.parse_trace "leave@10:2")
      ~seed:(Rng.next_int rng 100_000)
      ~horizon:(100 + Rng.next_int rng 2000)
      (List.init (1 + Rng.next_int rng 3) (fun i ->
           { Traffic.ts_tenant = random_tenant rng i; ts_process = random_process rng }))
  in
  let rng = Rng.of_int 0xF00C in
  let corpus =
    Array.init 12 (fun _ ->
        let spec = random_spec rng in
        let line = Traffic.spec_to_string spec in
        (* print/parse fixed point on every well-formed spec *)
        (match Traffic.spec_of_string line with
        | Ok spec' when spec' = spec -> ()
        | Ok _ -> Alcotest.failf "traffic spec round trip diverges: %s" line
        | Error msg -> Alcotest.failf "own traffic spec rejected: %s on %S" msg line);
        line)
  in
  for _ = 1 to 1200 do
    let base = corpus.(Rng.next_int rng (Array.length corpus)) in
    let s = mutate_n rng (1 + Rng.next_int rng 4) base in
    match Traffic.spec_of_string s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "Traffic.spec_of_string raised %s on %S"
          (Printexc.to_string e) s
  done

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "json parser: mutation corpus" `Quick test_json_fuzz;
        Alcotest.test_case "json parser: nesting bombs" `Quick
          test_json_depth_bomb;
        Alcotest.test_case "csv parser: mutation corpus" `Quick test_csv_fuzz;
        Alcotest.test_case "scenario_ref json round trip" `Quick
          test_scenario_ref_roundtrip;
        Alcotest.test_case "agrid-job/1 envelope round trip" `Quick
          test_job_envelope_roundtrip;
        Alcotest.test_case "pinned scenario realizes bit-identically" `Quick
          test_pinned_realize_roundtrip;
        Alcotest.test_case "request parsers: mutation corpus" `Quick
          test_request_fuzz;
        Alcotest.test_case "response parser: mutation corpus" `Quick
          test_response_fuzz;
        Alcotest.test_case "agrid-stats/1: mutation corpus" `Quick
          test_stats_fuzz;
        Alcotest.test_case "agrid-trace/1: mutation corpus" `Quick
          test_trace_fuzz;
        Alcotest.test_case "agrid-traffic/1: mutation corpus" `Quick
          test_traffic_spec_fuzz;
      ] );
  ]
