(* Soak harness for the scenario service: submit a few hundred mixed
   requests (varied generator seeds and weights, churn traces, impossible
   deadlines, malformed lines, health probes) through an in-process
   server over a real worker-domain pool, then assert the service
   invariants the tier-1 suite pins in miniature, at volume:

   - zero lost responses: every request line gets exactly one response;
   - monotone ids: the response id set is exactly 0..n-1;
   - bit-identity: every accepted job's result (status, T100, AET, final
     clock, TEC bit pattern) equals a one-shot single-threaded Job.run of
     the same spec — the pool adds concurrency, never divergence;
   - impossible deadlines report deadline_missed instead of hanging;
   - graceful shutdown drains everything in flight.

   Writes every response plus a summary as JSONL (--out) for the CI
   artifact. Exit 0 on success, 1 with diagnostics on any violation. *)

module Json = Agrid_obs.Json
module Rng = Agrid_prng.Splitmix64
module Serialize = Agrid_workload.Serialize
module Job = Agrid_serve.Job
module Codec = Agrid_serve.Codec
module Server = Agrid_serve.Server

let jobs = ref 200
let workers = ref 4
let seed = ref 42
let out = ref ""
let queue = ref 0 (* 0 = sized to the job count: the soak exercises volume, the tier-1 suite pins overflow *)

let specs_args =
  [
    ("--jobs", Arg.Set_int jobs, "N  number of requests (default 200)");
    ("--workers", Arg.Set_int workers, "N  worker domains (default 4)");
    ("--seed", Arg.Set_int seed, "N  request-mix seed (default 42)");
    ("--queue", Arg.Set_int queue, "N  queue capacity (default: --jobs)");
    ("--out", Arg.Set_string out, "FILE  write responses + summary as JSONL");
  ]

let pick rng arr = arr.(Rng.next_int rng (Array.length arr))

type expected =
  | Exp_result of Job.spec  (* job accepted for execution *)
  | Exp_malformed
  | Exp_health

let make_request rng i =
  match i mod 10 with
  | 0 ->
      let junk =
        pick rng
          [|
            "total garbage";
            "{\"schema\":\"agrid-job/1\"";
            "{\"schema\":\"agrid-job/9\",\"kind\":\"job\"}";
            "{\"schema\":\"agrid-job/1\",\"kind\":\"job\",\"scenario\":{\"kind\":\"generated\"}}";
            "{\"schema\":\"agrid-job/1\",\"kind\":\"job\",\"scenario\":{\"kind\":\"generated\",\"seed\":1,\"scale\":-3,\"etc\":0,\"dag\":0,\"case\":\"A\"}}";
          |]
      in
      (Exp_malformed, junk)
  | 1 -> (Exp_health, "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}")
  | n ->
      let scenario =
        Serialize.Generated
          {
            seed = Rng.next_int rng 10_000;
            scale = 0.03;
            etc_index = Rng.next_int rng 3;
            dag_index = Rng.next_int rng 3;
            case = pick rng [| Agrid_platform.Grid.A; Agrid_platform.Grid.B |];
          }
      in
      let spec =
        {
          (Job.default scenario) with
          Job.tag = Some (Fmt.str "soak-%d" i);
          alpha = float_of_int (300 + Rng.next_int rng 200) /. 1000.;
          beta = float_of_int (100 + Rng.next_int rng 300) /. 1000.;
          variant = pick rng [| Agrid_core.Slrh.V1; Agrid_core.Slrh.V3 |];
          mode = pick rng [| `Rescan; `Incremental; `Soa |];
          events =
            (if n = 3 then
               Agrid_churn.Event.parse_trace
                 (Fmt.str "leave@%d:1,rejoin@%d:1"
                    (40 + Rng.next_int rng 40)
                    (120 + Rng.next_int rng 60))
             else []);
          deadline_ms = (if n = 4 then Some 0. else None);
        }
      in
      (Exp_result spec, Json.to_string (Codec.job_to_json spec))

let () =
  Arg.parse specs_args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "soak_serve: volume test of the agrid scenario service";
  let n = !jobs in
  let queue_capacity = if !queue <= 0 then max 1 n else !queue in
  let rng = Rng.of_int !seed in
  let requests = Array.init n (fun i -> make_request rng i) in
  let lock = Mutex.create () in
  let responses = ref [] in
  let respond line =
    Mutex.lock lock;
    responses := line :: !responses;
    Mutex.unlock lock
  in
  let server = Server.create ~workers:!workers ~queue_capacity () in
  Server.start server;
  let t0 = Unix.gettimeofday () in
  Array.iter (fun (_, line) -> Server.submit server ~respond line) requests;
  Server.drain server;
  let wall = Unix.gettimeofday () -. t0 in
  let responses = List.rev !responses in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in

  (* zero lost responses *)
  if List.length responses <> n then
    fail "expected %d responses, got %d" n (List.length responses);

  let parsed =
    List.filter_map
      (fun line ->
        match Json.parse line with
        | j -> Some j
        | exception Json.Parse_error msg ->
            fail "unparseable response %S: %s" line msg;
            None)
      responses
  in

  (* monotone ids: exactly 0..n-1, each exactly once *)
  let ids =
    List.sort compare
      (List.filter_map
         (fun j ->
           match Json.get_int "id" j with
           | Some id -> Some id
           | None ->
               fail "response without id: %s" (Json.to_string j);
               None)
         parsed)
  in
  if ids <> List.init n Fun.id then
    fail "response ids are not exactly 0..%d (got %d distinct)" (n - 1)
      (List.length (List.sort_uniq compare ids));

  (* per-request contracts + bit-identity replay *)
  let n_replayed = ref 0 and n_deadline = ref 0 and n_errored = ref 0 in
  List.iter
    (fun j ->
      match Json.get_int "id" j with
      | None -> ()
      | Some id when id < 0 || id >= n -> fail "out-of-range id %d" id
      | Some id -> (
          let expected, _ = requests.(id) in
          let ty = Option.value ~default:"?" (Json.get_string "type" j) in
          match expected with
          | Exp_malformed ->
              if
                not
                  (ty = "rejected"
                  && Json.get_string "reason" j = Some "malformed")
              then fail "request %d: expected malformed rejection, got %s" id ty
          | Exp_health ->
              if ty <> "health" then fail "request %d: expected health, got %s" id ty
          | Exp_result spec -> (
              if ty <> "result" then fail "request %d: expected result, got %s" id ty
              else
                let status = Option.value ~default:"?" (Json.get_string "status" j) in
                match spec.Job.deadline_ms with
                | Some ms when ms <= 0. ->
                    incr n_deadline;
                    if status <> "deadline_missed" then
                      fail "request %d: impossible deadline reported %S" id status
                | _ ->
                    if status = "errored" then incr n_errored;
                    (* replay one-shot, single-threaded; served output must
                       match bit for bit *)
                    let oneshot = Job.run spec in
                    incr n_replayed;
                    let check name served expected =
                      if served <> expected then
                        fail "request %d: %s diverges (served %s, one-shot %s)" id
                          name served expected
                    in
                    check "status"
                      (Option.value ~default:"?" (Json.get_string "status" j))
                      (Job.status_to_string oneshot.Job.status);
                    check "tec_bits"
                      (Option.value ~default:"?" (Json.get_string "tec_bits" j))
                      (Fmt.str "%Lx" (Int64.bits_of_float oneshot.Job.tec));
                    List.iter
                      (fun (name, got) ->
                        check name
                          (string_of_int (Option.value ~default:min_int (Json.get_int name j)))
                          (string_of_int got))
                      [
                        ("t100", oneshot.Job.t100);
                        ("mapped", oneshot.Job.mapped);
                        ("aet", oneshot.Job.aet);
                        ("final_clock", oneshot.Job.final_clock);
                        ("discarded", oneshot.Job.n_discarded);
                      ])))
    parsed;

  let stats = Server.stats server in
  if stats.Server.s_dropped <> 0 then
    fail "graceful drain dropped %d jobs" stats.Server.s_dropped;
  if stats.Server.s_respond_errors <> 0 then
    fail "%d responses failed to deliver" stats.Server.s_respond_errors;

  (* ---- two-tenant mixed traffic stream ------------------------------
     A second, tenant-capped server run: gold (high-priority, uncapped)
     and bronze (admission-capped) interleaved by the tenant layer's
     deterministic Poisson arrival streams and submitted back to back, so
     bronze overflows its cap while workers are busy. Invariants at
     volume: zero lost responses; the response ids partition exactly into
     each tenant's submissions; gold is never rejected; bronze resolves
     as a result or a typed tenant_quota rejection, nothing else; and the
     server-side high-water mark never overshoots the cap even with
     submissions racing worker completions. *)
  let bronze_cap = 2 in
  let arrivals =
    Agrid_tenant.Arrivals.generate ~seed:(!seed + 1) ~horizon:2000
      [ Agrid_tenant.Arrivals.Poisson 0.02; Agrid_tenant.Arrivals.Poisson 0.02 ]
  in
  let tenant_of_stream s = if s = 0 then "gold" else "bronze" in
  let trequests =
    Array.of_list
      (List.map
         (fun (a : Agrid_tenant.Arrivals.arrival) ->
           let tenant = tenant_of_stream a.Agrid_tenant.Arrivals.stream in
           let scenario =
             Serialize.Generated
               {
                 seed = Rng.next_int rng 10_000;
                 scale = 0.03;
                 etc_index = Rng.next_int rng 3;
                 dag_index = Rng.next_int rng 3;
                 case = pick rng [| Agrid_platform.Grid.A; Agrid_platform.Grid.B |];
               }
           in
           let spec =
             {
               (Job.default scenario) with
               Job.tag = Some (Fmt.str "%s-%d" tenant a.Agrid_tenant.Arrivals.seq);
               tenant = Some tenant;
             }
           in
           (tenant, Json.to_string (Codec.job_to_json spec)))
         arrivals)
  in
  let m = Array.length trequests in
  let tresponses = ref [] in
  let trespond line =
    Mutex.lock lock;
    tresponses := line :: !tresponses;
    Mutex.unlock lock
  in
  let tserver =
    Server.create ~workers:!workers ~queue_capacity:(max 1 m)
      ~tenant_caps:[ ("bronze", bronze_cap) ] ()
  in
  Server.start tserver;
  Array.iter (fun (_, line) -> Server.submit tserver ~respond:trespond line) trequests;
  Server.drain tserver;
  let tresponses = List.rev !tresponses in
  if List.length tresponses <> m then
    fail "tenant stream: expected %d responses, got %d" m (List.length tresponses);
  let tparsed =
    List.filter_map
      (fun line ->
        match Json.parse line with
        | j -> Some j
        | exception Json.Parse_error msg ->
            fail "tenant stream: unparseable response %S: %s" line msg;
            None)
      tresponses
  in
  let ids_of_tenant responses tenant =
    List.sort compare
      (List.filter_map
         (fun j ->
           match Json.get_int "id" j with
           | Some id when id >= 0 && id < m && fst trequests.(id) = tenant ->
               Some id
           | _ -> None)
         responses)
  in
  let submitted_ids tenant =
    List.filter (fun id -> fst trequests.(id) = tenant) (List.init m Fun.id)
  in
  let n_quota = ref 0 in
  List.iter
    (fun j ->
      match Json.get_int "id" j with
      | None -> fail "tenant stream: response without id: %s" (Json.to_string j)
      | Some id when id < 0 || id >= m ->
          fail "tenant stream: out-of-range id %d" id
      | Some id -> (
          let tenant = fst trequests.(id) in
          let ty = Option.value ~default:"?" (Json.get_string "type" j) in
          let reason = Json.get_string "reason" j in
          match (tenant, ty, reason) with
          | _, "result", _ -> ()
          | "bronze", "rejected", Some "tenant_quota" -> incr n_quota
          | _ ->
              fail "tenant stream: %s request %d resolved as %s (reason %a)"
                tenant id ty
                Fmt.(option string)
                reason))
    tparsed;
  List.iter
    (fun tenant ->
      if ids_of_tenant tparsed tenant <> submitted_ids tenant then
        fail "tenant stream: %s response ids do not match its submissions"
          tenant)
    [ "gold"; "bronze" ];
  let tstats = Server.stats tserver in
  let bronze_hwm = Server.tenant_high_water tserver "bronze" in
  if bronze_hwm > bronze_cap then
    fail "tenant stream: bronze high water %d exceeds cap %d" bronze_hwm
      bronze_cap;
  if bronze_hwm < 1 then fail "tenant stream: no bronze job was ever admitted";
  if Server.tenant_outstanding tserver "bronze" <> 0 then
    fail "tenant stream: %d bronze jobs still outstanding after drain"
      (Server.tenant_outstanding tserver "bronze");
  if Server.tenant_rejected tserver "bronze" <> !n_quota then
    fail "tenant stream: server counts %d bronze quota rejections, responses %d"
      (Server.tenant_rejected tserver "bronze")
      !n_quota;
  if tstats.Server.s_tenant_quota <> !n_quota then
    fail "tenant stream: stats count %d quota rejections, responses %d"
      tstats.Server.s_tenant_quota !n_quota;
  if tstats.Server.s_dropped <> 0 then
    fail "tenant stream: graceful drain dropped %d jobs" tstats.Server.s_dropped;

  let summary =
    Json.Obj
      [
        ("schema", Json.Str "agrid-soak-serve/1");
        ("jobs", Json.Int n);
        ("workers", Json.Int !workers);
        ("queue_capacity", Json.Int queue_capacity);
        ("seed", Json.Int !seed);
        ("accepted", Json.Int stats.Server.s_accepted);
        ("completed", Json.Int stats.Server.s_completed);
        ("deadline_missed", Json.Int stats.Server.s_deadline_missed);
        ("errored", Json.Int stats.Server.s_errored);
        ("malformed", Json.Int stats.Server.s_malformed);
        ("health", Json.Int stats.Server.s_health);
        ("replayed", Json.Int !n_replayed);
        ("queue_high_water", Json.Int stats.Server.s_queue_high_water);
        ("tenant_jobs", Json.Int m);
        ("tenant_gold_jobs", Json.Int (List.length (submitted_ids "gold")));
        ("tenant_bronze_jobs", Json.Int (List.length (submitted_ids "bronze")));
        ("tenant_bronze_cap", Json.Int bronze_cap);
        ("tenant_bronze_high_water", Json.Int bronze_hwm);
        ("tenant_quota_rejected", Json.Int !n_quota);
        ("wall_s", Json.Flt wall);
        ("failures", Json.Int (List.length !failures));
        ("ok", Json.Bool (!failures = []));
      ]
  in
  if !out <> "" then begin
    let oc = open_out !out in
    List.iter
      (fun line ->
        output_string oc line;
        output_char oc '\n')
      (responses @ tresponses);
    output_string oc (Json.to_string summary);
    output_char oc '\n';
    close_out oc
  end;
  Fmt.pr "soak: %d requests, %d replayed bit-identical, %d deadline_missed, %d errored, %.2fs over %d workers (queue high water %d)@."
    n !n_replayed !n_deadline !n_errored wall !workers
    stats.Server.s_queue_high_water;
  Fmt.pr
    "soak: tenant stream %d jobs (gold %d, bronze %d capped at %d): %d \
     quota-rejected, bronze high water %d@."
    m
    (List.length (submitted_ids "gold"))
    (List.length (submitted_ids "bronze"))
    bronze_cap !n_quota bronze_hwm;
  match List.rev !failures with
  | [] ->
      Fmt.pr "soak: OK@.";
      exit 0
  | fs ->
      List.iter (fun f -> Fmt.epr "soak: FAIL %s@." f) fs;
      exit 1
