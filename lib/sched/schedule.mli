(** Mutable schedule state shared by every heuristic: placements, execution
    timelines, one-in/one-out communication channels, energy ledger and
    running T100/TEC/AET counters.

    Mapping is two-phase: {!plan} is side-effect free (SLRH plans many
    candidates per timestep), {!commit} applies a plan. *)

open Agrid_workload

type placement = {
  task : int;
  version : Version.t;
  machine : int;
  start : int;
  stop : int;
}

type transfer = {
  edge : int;
  src_task : int;
  dst_task : int;
  src : int;
  dst : int;
  start : int;
  stop : int;
  bits : float;
  energy : float;
}

type t

val create : Workload.t -> t
val workload : t -> Workload.t

val placement : t -> int -> placement option
val placements : t -> placement array
(** All committed placements (task order). *)

val transfers : t -> transfer array
(** Commit order. *)

val is_mapped : t -> int -> bool
val n_mapped : t -> int
val all_mapped : t -> bool

val n_primary : t -> int
(** T100 so far. *)

val aet : t -> int
(** Application execution time so far: latest execution finish (cycles). *)

val tec : t -> float
(** Total energy consumed so far (execution + communication). *)

val energy_used : t -> int -> float
val energy_remaining : t -> int -> float
(** [B(j)] minus consumption; may be negative (constraints are soft during
    a run; the validator flags it). *)

val exec_timeline : t -> int -> Timeline.t
val ch_out_timeline : t -> int -> Timeline.t
val ch_in_timeline : t -> int -> Timeline.t

val machine_free_at : t -> machine:int -> time:int -> bool

val ready_unmapped : t -> int list
(** Unmapped tasks whose parents are all mapped — the candidate-pool
    universe. Maintained incrementally (O(frontier), not O(|T|)). *)

val parents_mapped : t -> int -> bool
val latest_parent_finish : t -> int -> int
(** @raise Invalid_argument if some parent is unmapped. *)

type planned_transfer = {
  p_edge : int;
  p_src_task : int;
  p_src : int;
  p_start : int;
  p_stop : int;
  p_bits : float;
  p_energy : float;
}

type plan = {
  pl_task : int;
  pl_version : Version.t;
  pl_machine : int;
  pl_start : int;
  pl_stop : int;
  pl_transfers : planned_transfer list;
  pl_exec_energy : float;
  pl_comm_energy : float;
}

exception Unmapped_parent of { task : int; parent : int }

val plan :
  t -> task:int -> version:Version.t -> machine:int -> not_before:int -> plan
(** Plan (task, version) on [machine] with no action before [not_before]:
    transfers per cross-machine parent edge in parent order, then the
    execution in the earliest adequate gap.
    @raise Unmapped_parent if a parent is unmapped.
    @raise Invalid_argument if [task] is already mapped. *)

val totals_after : t -> plan -> int * float * int
(** [(T100, TEC, AET)] as they would stand after committing the plan. *)

val commit : t -> plan -> unit
(** Apply a plan. Plans must be committed against the schedule state they
    were computed from (at most one per planning round). *)

val replay_placement : t -> placement -> unit
(** Re-insert a known-valid placement (dynamic-grid rebuilds); recomputes
    its energy from the workload. *)

val replay_transfer : t -> transfer -> unit

val charge_energy : t -> machine:int -> float -> unit
(** Bill sunk energy (work lost with a failed machine). Counts against the
    battery and TEC but is invisible to {!Validate.check}. *)

val energy_charged : t -> int -> float
(** Total {!charge_energy} billed to a machine so far — the non-work part
    of its ledger. Churn-engine rebuilds carry it across replays. *)

val pp : Format.formatter -> t -> unit
