(* Mutable schedule state shared by every heuristic: placements, per-machine
   execution timelines, per-machine incoming/outgoing communication channels
   (assumption (c): one of each may be busy simultaneously), an energy
   ledger, and the running T100 / TEC / AET counters that feed the
   Lagrangian objective.

   Mapping is two-phase: [plan] computes an assignment (execution slot plus
   all incoming transfers) WITHOUT mutating anything, using copy-on-write
   overlays of the touched channel timelines; [commit] applies a plan. SLRH
   plans many candidates per timestep and commits at most one, so plans must
   be side-effect free. *)

open Agrid_workload
open Agrid_platform

type placement = {
  task : int;
  version : Version.t;
  machine : int;
  start : int;
  stop : int;
}

type transfer = {
  edge : int;
  src_task : int;
  dst_task : int;
  src : int;
  dst : int;
  start : int;
  stop : int;
  bits : float;
  energy : float;
}

type t = {
  workload : Workload.t;
  placements : placement option array;
  exec : Timeline.t array;
  ch_out : Timeline.t array;
  ch_in : Timeline.t array;
  energy_used : float array;
  charged : float array; (* non-work charges (sunk energy) per machine *)
  mutable transfers : transfer list; (* reverse commit order *)
  mutable n_mapped : int;
  mutable n_primary : int;
  mutable aet : int;
  mutable tec : float;
  (* frontier bookkeeping: pending_parents.(i) = unmapped parents of i;
     ready holds unmapped tasks whose count reached 0 (may contain
     just-mapped tasks; compacted lazily by [ready_unmapped]) *)
  pending_parents : int array;
  mutable ready : int list;
}

let create workload =
  let m = Workload.n_machines workload in
  let n = Workload.n_tasks workload in
  let dag = Workload.dag workload in
  let pending_parents = Array.init n (Agrid_dag.Dag.in_degree dag) in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if pending_parents.(i) = 0 then ready := i :: !ready
  done;
  {
    workload;
    placements = Array.make n None;
    exec = Array.init m (fun _ -> Timeline.create ());
    ch_out = Array.init m (fun _ -> Timeline.create ());
    ch_in = Array.init m (fun _ -> Timeline.create ());
    energy_used = Array.make m 0.;
    charged = Array.make m 0.;
    transfers = [];
    n_mapped = 0;
    n_primary = 0;
    aet = 0;
    tec = 0.;
    pending_parents;
    ready = !ready;
  }

(* Mark [task] mapped in the frontier: its children with all parents mapped
   become ready. *)
let frontier_mapped t task =
  Array.iter
    (fun (c, _) ->
      t.pending_parents.(c) <- t.pending_parents.(c) - 1;
      if t.pending_parents.(c) = 0 then t.ready <- c :: t.ready)
    (Agrid_dag.Dag.child_edges (Workload.dag t.workload) task)

(* Unmapped tasks whose parents are all mapped — the only tasks a candidate
   pool can contain. Compacts the ready list as a side effect. *)
let ready_unmapped t =
  let live = List.filter (fun i -> t.placements.(i) = None) t.ready in
  t.ready <- live;
  live

let workload t = t.workload
let placement t task = t.placements.(task)
let is_mapped t task = t.placements.(task) <> None
let n_mapped t = t.n_mapped
let n_primary t = t.n_primary
let all_mapped t = t.n_mapped = Workload.n_tasks t.workload
let aet t = t.aet
let tec t = t.tec
let transfers t = Array.of_list (List.rev t.transfers)
let energy_used t machine = t.energy_used.(machine)

let energy_remaining t machine =
  (Grid.machine (Workload.grid t.workload) machine).Machine.battery
  -. t.energy_used.(machine)

let exec_timeline t machine = t.exec.(machine)
let ch_out_timeline t machine = t.ch_out.(machine)
let ch_in_timeline t machine = t.ch_in.(machine)

let machine_free_at t ~machine ~time = Timeline.is_free_at t.exec.(machine) time

let parents_mapped t task =
  Array.for_all
    (fun (p, _) -> t.placements.(p) <> None)
    (Agrid_dag.Dag.parent_edges (Workload.dag t.workload) task)

(* Latest parent finish time — a lower bound on when [task]'s inputs can
   even begin to move. Requires all parents mapped. *)
let latest_parent_finish t task =
  Array.fold_left
    (fun acc (p, _) ->
      match t.placements.(p) with
      | Some pl -> max acc pl.stop
      | None -> invalid_arg "Schedule.latest_parent_finish: unmapped parent")
    0
    (Agrid_dag.Dag.parent_edges (Workload.dag t.workload) task)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)

type planned_transfer = {
  p_edge : int;
  p_src_task : int;
  p_src : int;
  p_start : int;
  p_stop : int;
  p_bits : float;
  p_energy : float;
}

type plan = {
  pl_task : int;
  pl_version : Version.t;
  pl_machine : int;
  pl_start : int;
  pl_stop : int;
  pl_transfers : planned_transfer list; (* parent order *)
  pl_exec_energy : float;
  pl_comm_energy : float; (* total over pl_transfers *)
}

exception Unmapped_parent of { task : int; parent : int }

(* Copy-on-write view of the channel timelines touched while planning: a
   plan may route several parent transfers through the same channel, so
   later transfers must see the slots provisionally taken by earlier ones —
   without mutating the real schedule. *)
module View = struct
  type nonrec t = { sched : t; mutable copies : (Timeline.t * Timeline.t) list }

  let make sched = { sched; copies = [] }

  let get v base =
    match List.find_opt (fun (b, _) -> b == base) v.copies with
    | Some (_, c) -> c
    | None ->
        let c = Timeline.copy base in
        v.copies <- (base, c) :: v.copies;
        c

  let ch_out v machine = get v v.sched.ch_out.(machine)
  let ch_in v machine = get v v.sched.ch_in.(machine)
end

(* Compute the assignment of (task, version) to [machine] with no action
   starting before [not_before] (the heuristic's current clock): schedule
   one transfer per cross-machine parent edge (in parent order,
   earliest-joint-slot-first), then the execution in the earliest adequate
   gap. Raises [Unmapped_parent] if a parent has no placement yet. *)
let plan t ~task ~version ~machine ~not_before =
  if t.placements.(task) <> None then invalid_arg "Schedule.plan: task already mapped";
  if not_before < 0 then invalid_arg "Schedule.plan: negative not_before";
  let wl = t.workload in
  let grid = Workload.grid wl in
  let view = View.make t in
  let ready = ref not_before in
  let planned = ref [] in
  let comm_energy = ref 0. in
  Array.iter
    (fun (p, edge) ->
      match t.placements.(p) with
      | None -> raise (Unmapped_parent { task; parent = p })
      | Some pp ->
          if pp.machine = machine then ready := max !ready pp.stop
          else begin
            let bits = Workload.edge_bits wl ~edge ~parent_version:pp.version in
            let duration = Comm.transfer_cycles grid ~src:pp.machine ~dst:machine ~bits in
            let nb = max pp.stop not_before in
            if duration = 0 then ready := max !ready nb
            else begin
              let out_tl = View.ch_out view pp.machine in
              let in_tl = View.ch_in view machine in
              let start = Timeline.first_fit_joint out_tl in_tl ~not_before:nb ~duration in
              let stop = start + duration in
              Timeline.insert out_tl ~start ~stop;
              Timeline.insert in_tl ~start ~stop;
              let energy = Comm.transfer_energy grid ~src:pp.machine ~dst:machine ~bits in
              planned :=
                {
                  p_edge = edge;
                  p_src_task = p;
                  p_src = pp.machine;
                  p_start = start;
                  p_stop = stop;
                  p_bits = bits;
                  p_energy = energy;
                }
                :: !planned;
              comm_energy := !comm_energy +. energy;
              ready := max !ready stop
            end
          end)
    (Agrid_dag.Dag.parent_edges (Workload.dag wl) task);
  let duration = Workload.exec_cycles wl ~task ~machine ~version in
  let start = Timeline.first_fit t.exec.(machine) ~not_before:!ready ~duration in
  {
    pl_task = task;
    pl_version = version;
    pl_machine = machine;
    pl_start = start;
    pl_stop = start + duration;
    pl_transfers = List.rev !planned;
    pl_exec_energy = Workload.exec_energy wl ~task ~machine ~version;
    pl_comm_energy = !comm_energy;
  }

(* T100 / TEC / AET as they would stand after committing [plan] — used to
   evaluate the objective of a candidate without committing it. *)
let totals_after t plan =
  let t100 = t.n_primary + if Version.is_primary plan.pl_version then 1 else 0 in
  let tec = t.tec +. plan.pl_exec_energy +. plan.pl_comm_energy in
  let aet = max t.aet plan.pl_stop in
  (t100, tec, aet)

let commit t plan =
  if t.placements.(plan.pl_task) <> None then
    invalid_arg "Schedule.commit: task already mapped";
  (* Insert the execution first: if anything raises Overlap here the
     schedule is untouched; transfer inserts below come from a consistent
     plan so they cannot collide unless the caller interleaved commits with
     a stale plan — in which case Overlap propagates and state may be
     partial, so heuristics must not catch it. *)
  Timeline.insert t.exec.(plan.pl_machine) ~start:plan.pl_start ~stop:plan.pl_stop;
  List.iter
    (fun p ->
      Timeline.insert t.ch_out.(p.p_src) ~start:p.p_start ~stop:p.p_stop;
      Timeline.insert t.ch_in.(plan.pl_machine) ~start:p.p_start ~stop:p.p_stop;
      t.energy_used.(p.p_src) <- t.energy_used.(p.p_src) +. p.p_energy;
      t.transfers <-
        {
          edge = p.p_edge;
          src_task = p.p_src_task;
          dst_task = plan.pl_task;
          src = p.p_src;
          dst = plan.pl_machine;
          start = p.p_start;
          stop = p.p_stop;
          bits = p.p_bits;
          energy = p.p_energy;
        }
        :: t.transfers)
    plan.pl_transfers;
  t.placements.(plan.pl_task) <-
    Some
      {
        task = plan.pl_task;
        version = plan.pl_version;
        machine = plan.pl_machine;
        start = plan.pl_start;
        stop = plan.pl_stop;
      };
  t.energy_used.(plan.pl_machine) <-
    t.energy_used.(plan.pl_machine) +. plan.pl_exec_energy;
  t.n_mapped <- t.n_mapped + 1;
  if Version.is_primary plan.pl_version then t.n_primary <- t.n_primary + 1;
  t.aet <- max t.aet plan.pl_stop;
  t.tec <- t.tec +. plan.pl_exec_energy +. plan.pl_comm_energy;
  frontier_mapped t plan.pl_task

(* ------------------------------------------------------------------ *)
(* Replay primitives (dynamic-grid extension rebuilds)                 *)

let replay_placement t (pl : placement) =
  if t.placements.(pl.task) <> None then
    invalid_arg "Schedule.replay_placement: task already mapped";
  Timeline.insert t.exec.(pl.machine) ~start:pl.start ~stop:pl.stop;
  t.placements.(pl.task) <- Some pl;
  let energy =
    Workload.exec_energy t.workload ~task:pl.task ~machine:pl.machine
      ~version:pl.version
  in
  t.energy_used.(pl.machine) <- t.energy_used.(pl.machine) +. energy;
  t.n_mapped <- t.n_mapped + 1;
  if Version.is_primary pl.version then t.n_primary <- t.n_primary + 1;
  t.aet <- max t.aet pl.stop;
  t.tec <- t.tec +. energy;
  frontier_mapped t pl.task

(* Bill energy that was consumed but produces no placement — work lost with
   a failed machine (dynamic-grid extension). Counts against the battery
   and TEC; invisible to the validator, which only sees committed work, so
   dynamic outcomes must also check the ledger (Dynamic.ledger_energy_ok). *)
let charge_energy t ~machine amount =
  if amount < 0. then invalid_arg "Schedule.charge_energy: negative amount";
  t.energy_used.(machine) <- t.energy_used.(machine) +. amount;
  t.charged.(machine) <- t.charged.(machine) +. amount;
  t.tec <- t.tec +. amount

let energy_charged t machine = t.charged.(machine)

let replay_transfer t (tr : transfer) =
  Timeline.insert t.ch_out.(tr.src) ~start:tr.start ~stop:tr.stop;
  Timeline.insert t.ch_in.(tr.dst) ~start:tr.start ~stop:tr.stop;
  t.energy_used.(tr.src) <- t.energy_used.(tr.src) +. tr.energy;
  t.tec <- t.tec +. tr.energy;
  t.transfers <- tr :: t.transfers

let placements t =
  Array.to_list t.placements |> List.filter_map Fun.id |> Array.of_list

let pp ppf t =
  Fmt.pf ppf "schedule<mapped %d/%d, T100=%d, AET=%d, TEC=%.2f>" t.n_mapped
    (Workload.n_tasks t.workload) t.n_primary t.aet t.tec
