(* Fork-join data parallelism on OCaml 5 domains, hand-rolled because
   domainslib is not available in this environment.

   The model is deliberately simple: each [map]/[iter] call spawns up to
   [domains - 1] worker domains that pull indices from a shared atomic
   counter (dynamic scheduling — scenario runtimes vary by an order of
   magnitude, so static chunking would leave domains idle), does a share of
   the work on the calling domain too, then joins everything. Domain spawn
   costs microseconds; the work items here are milliseconds to seconds.

   Telemetry ([?obs]) is recorded on the calling domain only — before the
   spawn and after the join — so the sink needs no synchronisation and the
   workers never observe it. *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* First exception raised by any worker, re-raised after all domains have
   been joined so no domain is leaked. *)
exception Worker_failure of exn

let run_workers ~domains ~n work =
  if domains < 1 then
    invalid_arg
      (Printf.sprintf "Parallel.run_workers: domains must be >= 1 (got %d)" domains);
  if n < 0 then
    invalid_arg (Printf.sprintf "Parallel.run_workers: negative item count %d" n);
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      if Atomic.get failure = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try work i
           with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  let spawned =
    List.init (max 0 (min domains n - 1)) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  match Atomic.get failure with None -> () | Some e -> raise (Worker_failure e)

let note_fanout obs ~n ~domains =
  if Agrid_obs.Sink.enabled obs then begin
    Agrid_obs.Sink.add obs "par/items" n;
    Agrid_obs.Sink.incr obs "par/calls";
    Agrid_obs.Sink.max_gauge obs "par/domains" (float_of_int domains)
  end

let map ?(obs = Agrid_obs.Sink.noop) ?domains f arr =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Array.length arr in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then begin
    note_fanout obs ~n ~domains:1;
    Agrid_obs.Sink.span obs "par/map" (fun () -> Array.map f arr)
  end
  else begin
    note_fanout obs ~n ~domains;
    Agrid_obs.Sink.span obs "par/map" (fun () ->
        let out = Array.make n None in
        run_workers ~domains ~n (fun i -> out.(i) <- Some (f arr.(i)));
        Array.map
          (function Some v -> v | None -> assert false (* every index was processed *))
          out)
  end

let mapi ?obs ?domains f arr =
  let indexed = Array.mapi (fun i x -> (i, x)) arr in
  map ?obs ?domains (fun (i, x) -> f i x) indexed

let iter ?obs ?domains f arr = ignore (map ?obs ?domains (fun x -> f x; ()) arr)

let init ?obs ?domains n f = map ?obs ?domains f (Array.init n Fun.id)

(* Map then sequential fold — the reduce is cheap in every use here
   (summaries over a few hundred results). *)
let map_reduce ?obs ?domains ~map:f ~fold ~init:acc0 arr =
  Array.fold_left fold acc0 (map ?obs ?domains f arr)

(* ---- bounded blocking channel ----

   The hand-off between a producer (the scenario service's admission path)
   and a persistent pool of consumer domains. Deliberately minimal: one
   mutex, one condition (signalled on push, seal and close — consumers are
   the only waiters; producers never block, they are *rejected* when the
   buffer is full, which is the whole point of bounded admission).

   Lifecycle: open -> sealed (no more pushes; consumers drain what is
   buffered, then see [None]) or closed (buffered items are returned to
   the closer — the service reports them as dropped — and consumers see
   [None] immediately). *)

module Chan = struct
  type 'a t = {
    buf : 'a Queue.t;
    capacity : int;
    mutable state : [ `Open | `Sealed | `Closed ];
    mutable high_water : int;
    lock : Mutex.t;
    nonempty : Condition.t;
  }

  let create ~capacity =
    if capacity < 1 then
      invalid_arg
        (Printf.sprintf "Parallel.Chan.create: capacity must be >= 1 (got %d)"
           capacity);
    {
      buf = Queue.create ();
      capacity;
      state = `Open;
      high_water = 0;
      lock = Mutex.create ();
      nonempty = Condition.create ();
    }

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let try_push t x =
    with_lock t (fun () ->
        match t.state with
        | `Sealed | `Closed -> `Rejected `Closed
        | `Open ->
            if Queue.length t.buf >= t.capacity then `Rejected `Full
            else begin
              Queue.push x t.buf;
              let depth = Queue.length t.buf in
              if depth > t.high_water then t.high_water <- depth;
              Condition.signal t.nonempty;
              `Accepted depth
            end)

  let pop t =
    with_lock t (fun () ->
        let rec wait () =
          match Queue.take_opt t.buf with
          | Some x -> Some x
          | None -> (
              match t.state with
              | `Sealed | `Closed -> None
              | `Open ->
                  Condition.wait t.nonempty t.lock;
                  wait ())
        in
        wait ())

  (* Bounded wait. Stdlib [Condition] has no timed wait, so this polls:
     check under the lock, sleep up to 1 ms, repeat until the deadline.
     The millisecond resolution is fine for its callers (the fleet
     router's dispatcher and probe loops, which tick at tens of
     milliseconds) and keeps the channel free of any platform-specific
     timed-wait dependency. *)
  let try_pop t ~timeout_s =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec attempt () =
      let status =
        with_lock t (fun () ->
            match Queue.take_opt t.buf with
            | Some x -> `Popped x
            | None -> (
                match t.state with `Sealed | `Closed -> `Closed | `Open -> `Empty))
      in
      match status with
      | (`Popped _ | `Closed) as r -> r
      | `Empty ->
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0. then `Timeout
          else begin
            Unix.sleepf (Float.min remaining 0.001);
            attempt ()
          end
    in
    attempt ()

  let seal t =
    with_lock t (fun () ->
        if t.state = `Open then t.state <- `Sealed;
        Condition.broadcast t.nonempty)

  let close t =
    with_lock t (fun () ->
        if t.state <> `Closed then t.state <- `Closed;
        let dropped = List.of_seq (Queue.to_seq t.buf) in
        Queue.clear t.buf;
        Condition.broadcast t.nonempty;
        dropped)

  let length t = with_lock t (fun () -> Queue.length t.buf)
  let high_water t = with_lock t (fun () -> t.high_water)
  let is_open t = with_lock t (fun () -> t.state = `Open)
end
