(** Fork-join parallel iteration on OCaml 5 domains with dynamic
    (work-pulling) scheduling. Hand-rolled substrate: domainslib is not
    available in this environment.

    [?domains] caps the total number of domains used, including the calling
    one; the default is [Domain.recommended_domain_count ()].

    [?obs] (default: the inert {!Agrid_obs.Sink.noop}) times each call
    under the span ["par/map"] and counts fan-out (["par/items"],
    ["par/calls"], high-water gauge ["par/domains"]) — recorded on the
    calling domain only, never inside workers, so any sink is safe to
    pass. *)

exception Worker_failure of exn
(** Wraps the first exception raised by any worker; raised only after all
    worker domains have been joined. *)

val default_domains : unit -> int

val run_workers : domains:int -> n:int -> (int -> unit) -> unit
(** Run [work i] for every [i] in [0, n), pulled dynamically by up to
    [domains] domains (including the calling one — at most
    [min domains n - 1] extra domains are spawned). [n = 0] is a no-op
    that spawns nothing. The sharded campaign runner calls this directly
    with one item per shard so each worker owns a private telemetry sink.
    @raise Invalid_argument when [domains < 1] or [n < 0] — [domains] used
    to be clamped silently, hiding caller bugs.
    @raise Worker_failure after joining if any [work] call raised. *)

val map : ?obs:Agrid_obs.Sink.t -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val mapi : ?obs:Agrid_obs.Sink.t -> ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
val iter : ?obs:Agrid_obs.Sink.t -> ?domains:int -> ('a -> unit) -> 'a array -> unit
val init : ?obs:Agrid_obs.Sink.t -> ?domains:int -> int -> (int -> 'a) -> 'a array

val map_reduce :
  ?obs:Agrid_obs.Sink.t ->
  ?domains:int ->
  map:('a -> 'b) ->
  fold:('c -> 'b -> 'c) ->
  init:'c ->
  'a array ->
  'c
(** Parallel map, then a sequential left fold over the results in index
    order (so the fold is deterministic). *)

(** A bounded blocking FIFO channel between one-or-more producers and a
    persistent pool of consumer domains (the scenario service's job
    queue). Producers never block: a push against a full buffer is
    {e rejected}, which is how the service turns overload into a typed
    [queue_full] response instead of unbounded buffering. Consumers block
    in {!Chan.pop} until an item, a seal or a close arrives. *)
module Chan : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument when [capacity < 1]. *)

  val try_push : 'a t -> 'a -> [ `Accepted of int | `Rejected of [ `Full | `Closed ] ]
  (** Non-blocking. [`Accepted depth] reports the buffer depth including
      the new item (the service's queue-depth gauge); [`Rejected `Full] is
      backpressure, [`Rejected `Closed] arrives after {!seal}/{!close}. *)

  val pop : 'a t -> 'a option
  (** Block until an item is available ([Some]) or the channel can never
      produce one again ([None]: sealed and drained, or closed). *)

  val try_pop : 'a t -> timeout_s:float -> [ `Popped of 'a | `Timeout | `Closed ]
  (** Like {!pop}, but wait at most [timeout_s] seconds (~1 ms
      resolution; [timeout_s <= 0.] checks once without waiting).
      [`Timeout] means the channel is still open but produced nothing in
      time; [`Closed] is {!pop}'s [None] (sealed and drained, or
      closed). The fleet router's dispatcher and probe loops use this so
      they can interleave timed work without ever blocking
      indefinitely. *)

  val seal : 'a t -> unit
  (** Graceful end-of-input: no further pushes; buffered items remain
      poppable. Idempotent; a no-op after {!close}. *)

  val close : 'a t -> 'a list
  (** Hard stop: no further pushes or pops; returns the buffered items in
      FIFO order so the caller can report them dropped. Idempotent (later
      calls return []). *)

  val length : 'a t -> int
  val high_water : 'a t -> int
  (** Deepest the buffer has ever been. *)

  val is_open : 'a t -> bool
end
