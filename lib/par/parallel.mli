(** Fork-join parallel iteration on OCaml 5 domains with dynamic
    (work-pulling) scheduling. Hand-rolled substrate: domainslib is not
    available in this environment.

    [?domains] caps the total number of domains used, including the calling
    one; the default is [Domain.recommended_domain_count ()].

    [?obs] (default: the inert {!Agrid_obs.Sink.noop}) times each call
    under the span ["par/map"] and counts fan-out (["par/items"],
    ["par/calls"], high-water gauge ["par/domains"]) — recorded on the
    calling domain only, never inside workers, so any sink is safe to
    pass. *)

exception Worker_failure of exn
(** Wraps the first exception raised by any worker; raised only after all
    worker domains have been joined. *)

val default_domains : unit -> int

val run_workers : domains:int -> n:int -> (int -> unit) -> unit
(** Run [work i] for every [i] in [0, n), pulled dynamically by up to
    [domains] domains (including the calling one — at most
    [min domains n - 1] extra domains are spawned). [n = 0] is a no-op
    that spawns nothing. The sharded campaign runner calls this directly
    with one item per shard so each worker owns a private telemetry sink.
    @raise Invalid_argument when [domains < 1] or [n < 0] — [domains] used
    to be clamped silently, hiding caller bugs.
    @raise Worker_failure after joining if any [work] call raised. *)

val map : ?obs:Agrid_obs.Sink.t -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val mapi : ?obs:Agrid_obs.Sink.t -> ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
val iter : ?obs:Agrid_obs.Sink.t -> ?domains:int -> ('a -> unit) -> 'a array -> unit
val init : ?obs:Agrid_obs.Sink.t -> ?domains:int -> int -> (int -> 'a) -> 'a array

val map_reduce :
  ?obs:Agrid_obs.Sink.t ->
  ?domains:int ->
  map:('a -> 'b) ->
  fold:('c -> 'b -> 'c) ->
  init:'c ->
  'a array ->
  'c
(** Parallel map, then a sequential left fold over the results in index
    order (so the fold is deterministic). *)
