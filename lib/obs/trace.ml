(* Per-request distributed tracing. A collector is a bounded ring of
   typed events — enqueue, dispatch, retry, failover, death-detect,
   execute, respond — each stamped with a trace id that is a pure
   function of (run nonce, job id), so the router and every backend
   derive the same id for the same job without coordination: the router
   stamps it into the forwarded `agrid-job/1` line and a backend that
   receives one adopts it.

   Alongside the ring, an exemplar buffer auto-retains the {e full}
   timeline of the N slowest jobs seen so far (latency measured enqueue
   to respond), so the interesting outliers survive even after the ring
   has wrapped past their individual events.

   Memory bounds: the ring holds [capacity] events, the exemplar buffer
   [exemplars] timelines, and the open-timeline table tracks at most
   [pending_cap] in-flight jobs of at most [per_job_cap] events each —
   everything else is dropped with counts, never grown.

   Like a {!Sink}, a collector is not thread-safe: the daemons record
   under the same lock that guards their counters. Export speaks
   `agrid-trace/1` JSONL and Chrome trace-event JSON (Perfetto). *)

type kind =
  | Enqueue
  | Dispatch of { backend : string; attempt : int }
  | Retry of { attempt : int; delay_s : float }
  | Failover of { backend : string }
  | Death of { backend : string }
  | Exec of { queue_wait_s : float }
  | Respond of { outcome : string }

type event = { ev_trace : string; ev_job : int; ev_t_s : float; ev_kind : kind }

type exemplar = {
  x_trace : string;
  x_job : int;
  x_duration_s : float;
  x_events : event list;  (* oldest first *)
}

type t = {
  nonce : int;
  t0 : float;  (* collector birth; event times are relative seconds *)
  ring : event Snapshot.Ring.t;
  exemplar_cap : int;
  pending_cap : int;
  per_job_cap : int;
  pending : (int, event list ref) Hashtbl.t;  (* job -> reversed timeline *)
  mutable exemplars : exemplar list;  (* slowest first, <= exemplar_cap *)
  mutable pending_dropped : int;  (* jobs never opened: table was full *)
}

let create ?(capacity = 4096) ?(exemplars = 4) ?(pending_cap = 1024)
    ?(per_job_cap = 256) ~nonce () =
  if exemplars < 0 then invalid_arg "Trace.create: exemplars must be >= 0";
  if pending_cap < 1 then invalid_arg "Trace.create: pending_cap must be >= 1";
  if per_job_cap < 2 then invalid_arg "Trace.create: per_job_cap must be >= 2";
  {
    nonce;
    t0 = Unix.gettimeofday ();
    ring = Snapshot.Ring.create ~capacity;
    exemplar_cap = exemplars;
    pending_cap;
    per_job_cap;
    pending = Hashtbl.create 64;
    exemplars = [];
    pending_dropped = 0;
  }

(* splitmix64 finalizer over (nonce, job): collision-resistant enough for
   correlation ids and reproducible across processes given the nonce. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let id_of ~nonce ~job =
  Fmt.str "%016Lx"
    (mix64
       (* the pi-digit offset keeps (nonce 0, job 0) off the all-zeros id *)
       Int64.(
         add
           (add (mul (of_int nonce) 0x9e3779b97f4a7c15L) (of_int job))
           0x243f6a8885a308d3L))

let id_for t job = id_of ~nonce:t.nonce ~job
let nonce t = t.nonce

(* Exemplar admission: keep the [exemplar_cap] slowest, slowest first. *)
let consider_exemplar t x =
  if t.exemplar_cap > 0 then begin
    let xs =
      List.sort
        (fun a b -> compare b.x_duration_s a.x_duration_s)
        (x :: t.exemplars)
    in
    t.exemplars <-
      (if List.length xs > t.exemplar_cap then List.filteri (fun i _ -> i < t.exemplar_cap) xs
       else xs)
  end

let record ?id t ~job kind =
  let ev_trace = match id with Some id -> id | None -> id_for t job in
  let ev = { ev_trace; ev_job = job; ev_t_s = Unix.gettimeofday () -. t.t0; ev_kind = kind } in
  Snapshot.Ring.push t.ring ev;
  (match kind with
  | Enqueue ->
      if Hashtbl.length t.pending < t.pending_cap then
        Hashtbl.replace t.pending job (ref [ ev ])
      else t.pending_dropped <- t.pending_dropped + 1
  | Respond _ -> (
      match Hashtbl.find_opt t.pending job with
      | None -> ()
      | Some timeline ->
          Hashtbl.remove t.pending job;
          let events = List.rev (ev :: !timeline) in
          let started =
            match events with e :: _ -> e.ev_t_s | [] -> ev.ev_t_s
          in
          consider_exemplar t
            {
              x_trace = ev_trace;
              x_job = job;
              x_duration_s = ev.ev_t_s -. started;
              x_events = events;
            })
  | Dispatch _ | Retry _ | Failover _ | Death _ | Exec _ -> (
      match Hashtbl.find_opt t.pending job with
      | Some timeline when List.length !timeline < t.per_job_cap ->
          timeline := ev :: !timeline
      | Some _ | None -> ()))

let events t = Snapshot.Ring.to_list t.ring
let length t = Snapshot.Ring.length t.ring
let pushed t = Snapshot.Ring.pushed t.ring
let dropped t = Snapshot.Ring.dropped t.ring
let capacity t = Snapshot.Ring.capacity t.ring
let exemplars t = t.exemplars
let n_pending t = Hashtbl.length t.pending

(* ---- agrid-trace/1 JSONL ---- *)

let schema = "agrid-trace/1"

let kind_to_string = function
  | Enqueue -> "enqueue"
  | Dispatch _ -> "dispatch"
  | Retry _ -> "retry"
  | Failover _ -> "failover"
  | Death _ -> "death"
  | Exec _ -> "exec"
  | Respond _ -> "respond"

let kind_fields = function
  | Enqueue -> []
  | Dispatch { backend; attempt } ->
      [ ("backend", Json.Str backend); ("attempt", Json.Int attempt) ]
  | Retry { attempt; delay_s } ->
      [ ("attempt", Json.Int attempt); ("delay_s", Json.Flt delay_s) ]
  | Failover { backend } -> [ ("backend", Json.Str backend) ]
  | Death { backend } -> [ ("backend", Json.Str backend) ]
  | Exec { queue_wait_s } -> [ ("queue_wait_s", Json.Flt queue_wait_s) ]
  | Respond { outcome } -> [ ("outcome", Json.Str outcome) ]

let event_to_json ev =
  Json.Obj
    ([
       ("type", Json.Str "event");
       ("trace", Json.Str ev.ev_trace);
       ("job", Json.Int ev.ev_job);
       ("t_s", Json.Flt ev.ev_t_s);
       ("kind", Json.Str (kind_to_string ev.ev_kind));
     ]
    @ kind_fields ev.ev_kind)

type line =
  | Meta of { nonce : int; events : int; dropped : int; exemplars : int }
  | Event of event
  | Exemplar of exemplar

let line_to_json = function
  | Meta m ->
      Json.Obj
        [
          ("type", Json.Str "meta");
          ("schema", Json.Str schema);
          ("nonce", Json.Int m.nonce);
          ("events", Json.Int m.events);
          ("dropped", Json.Int m.dropped);
          ("exemplars", Json.Int m.exemplars);
        ]
  | Event ev -> event_to_json ev
  | Exemplar x ->
      Json.Obj
        [
          ("type", Json.Str "exemplar");
          ("trace", Json.Str x.x_trace);
          ("job", Json.Int x.x_job);
          ("duration_s", Json.Flt x.x_duration_s);
          ("events", Json.Arr (List.map event_to_json x.x_events));
        ]

let line_to_string l = Json.to_string (line_to_json l)

let lines t =
  Meta
    {
      nonce = t.nonce;
      events = length t;
      dropped = dropped t;
      exemplars = List.length t.exemplars;
    }
  :: List.map (fun ev -> Event ev) (events t)
  @ List.map (fun x -> Exemplar x) t.exemplars

let jsonl_lines t = List.map line_to_string (lines t)
let to_jsonl t = String.concat "\n" (jsonl_lines t) ^ "\n"

let write_jsonl path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))

(* ---- parsing (total: hostile bytes -> Error, never an exception) ---- *)

let ( let* ) = Result.bind

let kind_of_json j =
  let str name =
    match Json.get_string name j with
    | Some s -> Ok s
    | None -> Error (Fmt.str "event is missing the %S field" name)
  in
  let int name =
    match Json.get_int name j with
    | Some i -> Ok i
    | None -> Error (Fmt.str "event is missing the %S field" name)
  in
  let flt name =
    match Json.get_float name j with
    | Some f when Float.is_finite f -> Ok f
    | Some _ -> Error (Fmt.str "event field %S is not finite" name)
    | None -> Error (Fmt.str "event is missing the %S field" name)
  in
  let* kind = str "kind" in
  match kind with
  | "enqueue" -> Ok Enqueue
  | "dispatch" ->
      let* backend = str "backend" in
      let* attempt = int "attempt" in
      Ok (Dispatch { backend; attempt })
  | "retry" ->
      let* attempt = int "attempt" in
      let* delay_s = flt "delay_s" in
      Ok (Retry { attempt; delay_s })
  | "failover" ->
      let* backend = str "backend" in
      Ok (Failover { backend })
  | "death" ->
      let* backend = str "backend" in
      Ok (Death { backend })
  | "exec" ->
      let* queue_wait_s = flt "queue_wait_s" in
      Ok (Exec { queue_wait_s })
  | "respond" ->
      let* outcome = str "outcome" in
      Ok (Respond { outcome })
  | other -> Error (Fmt.str "unknown event kind %S" other)

let event_of_json j =
  let* ev_trace =
    match Json.get_string "trace" j with
    | Some s -> Ok s
    | None -> Error "event is missing the \"trace\" field"
  in
  let* ev_job =
    match Json.get_int "job" j with
    | Some i -> Ok i
    | None -> Error "event is missing the \"job\" field"
  in
  let* ev_t_s =
    match Json.get_float "t_s" j with
    | Some f when Float.is_finite f -> Ok f
    | Some _ -> Error "event field \"t_s\" is not finite"
    | None -> Error "event is missing the \"t_s\" field"
  in
  let* ev_kind = kind_of_json j in
  Ok { ev_trace; ev_job; ev_t_s; ev_kind }

let parse_line s =
  match Json.parse s with
  | exception Json.Parse_error msg -> Error (Fmt.str "not JSON: %s" msg)
  | j -> (
      match Json.get_string "type" j with
      | Some "meta" -> (
          match Json.get_string "schema" j with
          | Some sc when sc = schema ->
              let field name =
                match Json.get_int name j with
                | Some i -> Ok i
                | None -> Error (Fmt.str "meta is missing the %S field" name)
              in
              let* nonce = field "nonce" in
              let* events = field "events" in
              let* dropped = field "dropped" in
              let* exemplars = field "exemplars" in
              Ok (Meta { nonce; events; dropped; exemplars })
          | Some other ->
              Error (Fmt.str "unsupported schema %S (expected %S)" other schema)
          | None -> Error (Fmt.str "missing \"schema\" field (expected %S)" schema))
      | Some "event" ->
          let* ev = event_of_json j in
          Ok (Event ev)
      | Some "exemplar" ->
          let* x_trace =
            match Json.get_string "trace" j with
            | Some s -> Ok s
            | None -> Error "exemplar is missing the \"trace\" field"
          in
          let* x_job =
            match Json.get_int "job" j with
            | Some i -> Ok i
            | None -> Error "exemplar is missing the \"job\" field"
          in
          let* x_duration_s =
            match Json.get_float "duration_s" j with
            | Some f when Float.is_finite f -> Ok f
            | Some _ -> Error "exemplar field \"duration_s\" is not finite"
            | None -> Error "exemplar is missing the \"duration_s\" field"
          in
          let* x_events =
            match Json.member "events" j with
            | Some (Json.Arr evs) ->
                List.fold_left
                  (fun acc j ->
                    let* acc = acc in
                    let* ev = event_of_json j in
                    Ok (ev :: acc))
                  (Ok []) evs
                |> Result.map List.rev
            | Some _ -> Error "exemplar field \"events\" is not an array"
            | None -> Error "exemplar is missing the \"events\" field"
          in
          Ok (Exemplar { x_trace; x_job; x_duration_s; x_events })
      | Some other -> Error (Fmt.str "unknown line type %S" other)
      | None -> Error "missing \"type\" field")

let parse_jsonl lines =
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest when String.trim l = "" -> go (n + 1) acc rest
    | l :: rest -> (
        match parse_line l with
        | Ok line -> go (n + 1) (line :: acc) rest
        | Error msg -> Error (Fmt.str "line %d: %s" n msg))
  in
  go 1 [] lines

(* ---- Chrome trace-event JSON (chrome://tracing, Perfetto) ---- *)

(* Instant events ("i") for every point event, plus one complete event
   ("X") per job spanning its first to last point so the per-job lanes
   carry visible bars. Ring events render under pid 0, exemplar timelines
   under pid 1 so a wrapped ring never hides the retained outliers. *)
let chrome_events_of ~pid evs acc =
  let us t = t *. 1e6 in
  let by_job = Hashtbl.create 64 in
  let acc =
    List.fold_left
      (fun acc ev ->
        (match Hashtbl.find_opt by_job ev.ev_job with
        | None -> Hashtbl.replace by_job ev.ev_job (ev.ev_t_s, ev.ev_t_s, ev.ev_trace)
        | Some (lo, hi, tr) ->
            Hashtbl.replace by_job ev.ev_job
              (Float.min lo ev.ev_t_s, Float.max hi ev.ev_t_s, tr));
        Json.Obj
          ([
             ("name", Json.Str (kind_to_string ev.ev_kind));
             ("cat", Json.Str "agrid");
             ("ph", Json.Str "i");
             ("ts", Json.Flt (us ev.ev_t_s));
             ("pid", Json.Int pid);
             ("tid", Json.Int ev.ev_job);
             ("s", Json.Str "t");
             ("args", Json.Obj (("trace", Json.Str ev.ev_trace) :: kind_fields ev.ev_kind));
           ])
        :: acc)
      acc evs
  in
  Hashtbl.fold
    (fun job (lo, hi, tr) acc ->
      Json.Obj
        [
          ("name", Json.Str (Fmt.str "job %d" job));
          ("cat", Json.Str "agrid");
          ("ph", Json.Str "X");
          ("ts", Json.Flt (us lo));
          ("dur", Json.Flt (us (hi -. lo)));
          ("pid", Json.Int pid);
          ("tid", Json.Int job);
          ("args", Json.Obj [ ("trace", Json.Str tr) ]);
        ]
      :: acc)
    by_job acc

let chrome_of_lines lines =
  let ring_events =
    List.filter_map (function Event ev -> Some ev | _ -> None) lines
  in
  let exemplar_events =
    List.concat_map (function Exemplar x -> x.x_events | _ -> []) lines
  in
  let evs =
    chrome_events_of ~pid:0 ring_events (chrome_events_of ~pid:1 exemplar_events [])
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr evs);
         ("displayTimeUnit", Json.Str "ms");
         ("otherData", Json.Obj [ ("schema", Json.Str schema) ]);
       ])

let chrome_json t = chrome_of_lines (lines t)
