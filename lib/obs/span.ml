(* Span profiler: named wall-clock sections ("slrh/pool_build") aggregated
   in place — count, total, min, max and a log-bucket histogram of
   durations for percentile estimates. Nothing is recorded per invocation
   beyond the aggregate update, so profiling a hot path costs two clock
   reads and one histogram insert per call. *)

type agg = {
  mutable count : int;
  mutable total_s : float;
  mutable min_s : float;
  mutable max_s : float;
  hist : Hist.t;
}

type t = (string, agg) Hashtbl.t

(* 10 ns .. ~2.8 min in 34 doubling buckets: spans here range from a
   single batch-scoring pass over a small pool (~100 ns on the SoA
   arena) to a full campaign level (~minutes). The sub-microsecond
   buckets matter: the scoring hot path dropped below 1 us, and a
   histogram whose first bucket ends at 1 us would flatten any further
   change into interpolation noise — the perf gate could neither see the
   speedup nor catch a 2x regression inside the bucket. *)
let duration_bounds = Hist.exponential_bounds ~lo:1e-8 ~factor:2.0 ~n:34

let create () : t = Hashtbl.create 16

let agg_for (t : t) name =
  match Hashtbl.find_opt t name with
  | Some a -> a
  | None ->
      let a =
        {
          count = 0;
          total_s = 0.;
          min_s = Float.infinity;
          max_s = Float.neg_infinity;
          hist = Hist.make ~bounds:duration_bounds;
        }
      in
      Hashtbl.add t name a;
      a

let record t name seconds =
  let a = agg_for t name in
  a.count <- a.count + 1;
  a.total_s <- a.total_s +. seconds;
  if seconds < a.min_s then a.min_s <- seconds;
  if seconds > a.max_s then a.max_s <- seconds;
  Hist.observe a.hist seconds

(* The duration is recorded even when [f] raises: a span that dies half-way
   through still spent the time. Timed with the monotonic ns clock:
   gettimeofday's microsecond resolution records sub-microsecond spans
   (one SoA scoring pass) as exact zeros. *)
let time t name f =
  let t0 = Clock.monotonic_ns () in
  Fun.protect ~finally:(fun () -> record t name (Clock.elapsed_seconds ~since:t0)) f

type stats = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
}

let stats_of name (a : agg) =
  {
    name;
    count = a.count;
    total_s = a.total_s;
    mean_s = (if a.count = 0 then Float.nan else a.total_s /. float_of_int a.count);
    p50_s = Hist.quantile a.hist 0.5;
    p95_s = Hist.quantile a.hist 0.95;
    p99_s = Hist.quantile a.hist 0.99;
    min_s = a.min_s;
    max_s = a.max_s;
  }

let stats (t : t) =
  Hashtbl.fold (fun name a acc -> stats_of name a :: acc) t []
  |> List.sort (fun a b -> String.compare a.name b.name)

let cardinal (t : t) = Hashtbl.length t

let merge_into ~(into : t) (src : t) =
  Hashtbl.iter
    (fun name (s : agg) ->
      let d = agg_for into name in
      d.count <- d.count + s.count;
      d.total_s <- d.total_s +. s.total_s;
      if s.min_s < d.min_s then d.min_s <- s.min_s;
      if s.max_s > d.max_s then d.max_s <- s.max_s;
      Hist.merge_into ~into:d.hist s.hist)
    src

let pp_stats ppf s =
  Fmt.pf ppf "%-24s n=%-6d total=%.4fs mean=%.6fs p50=%.6fs p95=%.6fs" s.name s.count
    s.total_s s.mean_s s.p50_s s.p95_s
