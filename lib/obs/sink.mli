(** The telemetry sink instrumented call sites report into.

    {!noop} — the default on every instrumented API — is provably inert:
    each recording function pattern-matches to [()] before touching its
    arguments, so uninstrumented runs behave and perform exactly as
    before. An active sink carries a {!Registry}, a {!Span} table and a
    bounded {!Snapshot.Ring}.

    Concurrency contract: a sink is single-domain. Parallel code gives
    each worker a private sink (or the no-op) and folds the results with
    {!merge_into} after the join; merging is associative and commutative,
    so the grouping never matters. *)

type t

val noop : t
(** The inert sink. *)

val create : ?stride:int -> ?capacity:int -> ?ledger:bool -> unit -> t
(** An active sink. [stride] (default 1) samples every n-th
    {!tick_snapshot}; [capacity] (default 4096) bounds the snapshot ring;
    [ledger] (default [false]) attaches a decision {!Ledger.t} — opt-in
    because per-candidate rejection reasons cost real work to compute.
    @raise Invalid_argument on a nonpositive stride. *)

val enabled : t -> bool

val ledger : t -> Ledger.t option
(** The decision ledger, when this sink carries one. Instrumented call
    sites guard every ledger record on this, so a sink without one (and
    the no-op sink in particular) never pays for decision recording. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit
val max_gauge : t -> string -> float -> unit
val observe : t -> string -> bounds:float array -> float -> unit

val span : t -> string -> (unit -> 'a) -> 'a
(** Time the thunk under the name; on the no-op sink this is exactly
    [f ()]. *)

val record_span : t -> string -> float -> unit

val tick_snapshot : t -> make:(unit -> Snapshot.t) -> bool
(** One sampling tick: on every [stride]-th call, build the record (the
    thunk runs only then) and push it. Returns whether it sampled, so the
    caller can reset per-window accumulators. Always [false] on the no-op
    sink. *)

val push_snapshot : t -> Snapshot.t -> unit

val metrics : t -> (string * Registry.metric) list
(** Name-sorted; empty on the no-op sink. *)

val span_stats : t -> Span.stats list
val snapshots : t -> Snapshot.t list
val snapshots_dropped : t -> int
val n_metrics : t -> int
val n_spans : t -> int
val n_snapshots : t -> int

val merge_into : into:t -> t -> unit
(** Merging [noop] into anything is a no-op. Ledger entries append in
    order when both sinks carry a ledger (and are dropped otherwise —
    parallel workers do not record decisions).
    @raise Invalid_argument when merging an active sink into [noop], or on
    a metric kind/bounds clash. *)
