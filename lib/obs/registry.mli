(** Named-metric registry: counters, gauges and fixed-bucket histograms
    under slash-separated names (["slrh/assignments"]).

    Merging is associative and commutative — counters add, gauges keep the
    maximum (the use cases record high-water marks and final values),
    histograms add bucket-wise — so each parallel worker can fill a
    private registry lock-free and the results fold in any grouping after
    the join. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of Hist.t  (** exposed live, not copied *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
(** Create-or-add a counter.
    @raise Invalid_argument if [name] holds a different metric kind. *)

val set_gauge : t -> string -> float -> unit
(** Last write wins locally; {!merge_into} keeps the maximum. *)

val max_gauge : t -> string -> float -> unit

val observe : t -> string -> bounds:float array -> float -> unit
(** Create-or-observe a histogram. [bounds] applies on the first
    observation only; later calls reuse the existing buckets unchecked. *)

val find : t -> string -> metric option
val cardinal : t -> int

val to_alist : t -> (string * metric) list
(** Name-sorted — the deterministic view exporters and tests use. *)

val fold : (string -> metric -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds in name order. *)

val merge_into : into:t -> t -> unit
(** @raise Invalid_argument when a name holds different kinds on the two
    sides, or histogram bounds differ. *)

val pp_metric : Format.formatter -> metric -> unit
val pp : Format.formatter -> t -> unit
