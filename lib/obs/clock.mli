(** Monotonic nanosecond clock for span timing. *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "agrid_clock_monotonic_ns_bytecode" "agrid_clock_monotonic_ns_native"
[@@noalloc]
(** CLOCK_MONOTONIC in nanoseconds: ~tens-of-ns resolution, immune to
    wall-clock adjustments, no OCaml heap allocation on the native
    path. *)

val elapsed_seconds : since:int64 -> float
(** Seconds elapsed since a [monotonic_ns] reading. *)
