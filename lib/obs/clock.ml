(* Monotonic nanosecond clock (see clock_stubs.c). The span profiler
   times sections that can run in the tens of nanoseconds; gettimeofday's
   microsecond resolution quantizes those to 0, flattening every
   percentile below 1 us into interpolation noise. *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "agrid_clock_monotonic_ns_bytecode" "agrid_clock_monotonic_ns_native"
[@@noalloc]

let elapsed_seconds ~since =
  Int64.to_float (Int64.sub (monotonic_ns ()) since) *. 1e-9
