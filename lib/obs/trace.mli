(** Per-request distributed tracing: a bounded ring of typed events plus
    a slow-job exemplar buffer, exported as [agrid-trace/1] JSONL and
    Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).

    Trace ids are a pure function of (run nonce, job id) — {!id_for} —
    so a router and its backends derive the same id for the same job
    without coordination: the router stamps the id into the forwarded
    request line and the backend adopts it.

    Memory bounds: the event ring holds [capacity] events (oldest
    overwritten first, drops counted), the exemplar buffer the
    [exemplars] slowest complete timelines, and the open-timeline table
    at most [pending_cap] in-flight jobs of [per_job_cap] events each.

    Not thread-safe — record under the lock that guards the owner's
    other counters (the serve/fleet daemons do). *)

type kind =
  | Enqueue  (** admitted to a queue *)
  | Dispatch of { backend : string; attempt : int }  (** handed to a backend *)
  | Retry of { attempt : int; delay_s : float }  (** scheduled for backoff *)
  | Failover of { backend : string }  (** requeued off a dead backend *)
  | Death of { backend : string }  (** backend died holding the job *)
  | Exec of { queue_wait_s : float }  (** execution started after waiting *)
  | Respond of { outcome : string }  (** response sent; timeline complete *)

type event = {
  ev_trace : string;  (** the trace id, [id_for] of the originating run *)
  ev_job : int;
  ev_t_s : float;  (** seconds since the collector was created *)
  ev_kind : kind;
}

type exemplar = {
  x_trace : string;
  x_job : int;
  x_duration_s : float;  (** enqueue-to-respond latency *)
  x_events : event list;  (** the full timeline, oldest first *)
}

type t

val create :
  ?capacity:int ->
  ?exemplars:int ->
  ?pending_cap:int ->
  ?per_job_cap:int ->
  nonce:int ->
  unit ->
  t
(** Defaults: 4096-event ring, 4 exemplars, 1024 open timelines of up to
    256 events each. [nonce] seeds trace-id derivation — give every run a
    distinct one (the CLI uses its PRNG seed). *)

val id_of : nonce:int -> job:int -> string
(** The deterministic trace id: a 16-hex-digit splitmix64 hash. *)

val id_for : t -> int -> string
(** [id_of ~nonce:(nonce t) ~job]. *)

val nonce : t -> int

val record : ?id:string -> t -> job:int -> kind -> unit
(** Append one event (timestamped now). [?id] overrides the derived trace
    id — a backend passes the id stamped by its router. [Enqueue] opens
    the job's timeline; [Respond] closes it and considers it for the
    exemplar buffer. *)

val events : t -> event list
(** The retained ring window, oldest first. *)

val length : t -> int
val pushed : t -> int
val dropped : t -> int
val capacity : t -> int

val exemplars : t -> exemplar list
(** Slowest first; at most the configured count. *)

val n_pending : t -> int
(** Open (enqueued, not yet responded) timelines currently tracked. *)

(** {2 agrid-trace/1 JSONL} *)

val schema : string

type line =
  | Meta of { nonce : int; events : int; dropped : int; exemplars : int }
  | Event of event
  | Exemplar of exemplar

val line_to_string : line -> string
val jsonl_lines : t -> string list
val to_jsonl : t -> string
val write_jsonl : string -> t -> unit

val parse_line : string -> (line, string) result
(** Total: hostile bytes come back as [Error], never an exception. *)

val parse_jsonl : string list -> (line list, string) result
(** Every line through {!parse_line} (blank lines skipped); the first
    failure is reported with its line number. *)

val kind_to_string : kind -> string

(** {2 Chrome trace-event JSON} *)

val chrome_of_lines : line list -> string
(** One Chrome trace-event document: an instant event per point event and
    a complete ("X") span per job. Ring events render under pid 0,
    exemplar timelines under pid 1. *)

val chrome_json : t -> string
(** {!chrome_of_lines} over this collector's {!line}s. *)
