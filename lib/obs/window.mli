(** Rolling-window aggregator: a bounded ring of per-interval counter and
    histogram deltas, so long-lived daemons can report "last 60 s" rates
    and latency quantiles instead of lifetime sums.

    Each slot covers one absolute interval of [slot_s] seconds; writing
    into a stale slot resets it first, so idle gaps age out without any
    background thread. Reads merge the live slots on demand. Memory is
    bounded by [slots * names-per-slot]; nothing is allocated per
    observation after a name's first use in an interval.

    Not thread-safe — record under whatever lock guards the owner's other
    counters. All timestamps come in explicitly ([~now], seconds), which
    keeps tests deterministic. *)

type t

val create : ?slots:int -> ?slot_s:float -> unit -> t
(** Default geometry 12 x 5 s = one minute of history.
    @raise Invalid_argument when [slots < 1] or [slot_s <= 0]. *)

val n_slots : t -> int
val slot_seconds : t -> float

val window_s : t -> float
(** Nominal span, [slots * slot_s]. *)

val incr : t -> now:float -> string -> unit
val add : t -> now:float -> string -> int -> unit

val observe : t -> now:float -> string -> bounds:float array -> float -> unit
(** Record one histogram observation. As with {!Registry.observe}, every
    observer of one name must pass the same bounds. *)

val total : t -> now:float -> string -> int
(** Counter sum over the live window. *)

val rate : t -> now:float -> string -> float
(** Counter events per second over the covered portion of the window
    (early in life the divisor is the time actually observed, not the
    full ring). 0 when nothing is live. *)

val merged_hist : t -> now:float -> string -> Hist.t option
(** Bucket-wise merge of the live slots' histograms under a name; [None]
    when no live slot observed it. *)

val quantile : t -> now:float -> string -> float -> float
(** Quantile of {!merged_hist}; NaN when nothing is live. *)

val count : t -> now:float -> string -> int
(** Observation count of {!merged_hist} over the live window. *)

val covered_s : t -> now:float -> float
(** Seconds of window actually covered by live slots (<= {!window_s}). *)

val merge_into : into:t -> t -> unit
(** Slot-by-slot merge keyed on absolute interval stamps — windows merge
    like histograms, so per-worker windows can aggregate after a join.
    @raise Invalid_argument when the slot geometries differ. *)
