(** Fixed-bucket histogram for telemetry aggregation.

    Bucket boundaries are arbitrary strictly-increasing upper bounds fixed
    at construction; two histograms with identical bounds merge
    bucket-wise (associatively and commutatively), which is what lets
    per-domain telemetry aggregate after a parallel region without locks
    on the hot path. Bucket 0 doubles as the underflow bucket
    [(-inf, bounds.(0))]; an implicit extra bucket catches overflow
    [[bounds.(k-1), +inf)]. NaN observations are quarantined in a separate
    counter and never reach the buckets, the count or the sum. *)

type t

val make : bounds:float array -> t
(** @raise Invalid_argument on empty, non-increasing or NaN bounds. *)

val linear_bounds : lo:float -> hi:float -> n:int -> float array
(** [n] equal-width bucket upper bounds over [(lo, hi]]. *)

val exponential_bounds : lo:float -> factor:float -> n:int -> float array
(** [lo, lo*factor, lo*factor^2, ...] — log-spaced bounds for durations. *)

val observe : t -> float -> unit

val count : t -> int
(** Observations recorded, NaN excluded. *)

val nan_count : t -> int
val sum : t -> float

val mean : t -> float
(** NaN when empty. *)

val max_value : t -> float
(** Largest (non-NaN) observation recorded. NaN when empty. *)

val quantile : t -> float -> float
(** Approximate quantile: linear interpolation inside the covering bucket;
    clamped to the last bound for overflow observations. The underflow
    bucket interpolates from 0 when the first bound is positive (the
    common duration/size case) and from one bucket-width below the first
    bound otherwise. NaN when empty.
    @raise Invalid_argument when [q] is outside [0, 1]. *)

val bounds : t -> float array
val counts : t -> int array
(** Per-bucket counts; one longer than {!bounds} (the overflow bucket). *)

val same_bounds : t -> t -> bool

val merge_into : into:t -> t -> unit
(** Bucket-wise addition. @raise Invalid_argument when bounds differ. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
