(* The telemetry sink every instrumented call site reports into. Two
   states: [Noop] — the default everywhere — is provably inert (every
   recording function pattern-matches to () before touching its
   arguments), so uninstrumented behaviour and performance are exactly the
   seed's; [Active] carries a metric registry, a span table and a
   snapshot ring.

   Concurrency contract: a sink is single-domain. Parallel code gives each
   worker its own sink (or the no-op) and merges into the parent with
   [merge_into] after the join — merging is associative and commutative,
   so the fold order never matters. *)

type active = {
  registry : Registry.t;
  spans : Span.t;
  snapshots : Snapshot.t Snapshot.Ring.t;
  stride : int;  (* sample every [stride]-th tick *)
  mutable ticks : int;
  ledger : Ledger.t option;  (* decision ledger, opt-in (it is not cheap) *)
}

type t = Noop | Active of active

let noop = Noop

let create ?(stride = 1) ?(capacity = 4096) ?(ledger = false) () =
  if stride <= 0 then invalid_arg "Sink.create: stride must be positive";
  Active
    {
      registry = Registry.create ();
      spans = Span.create ();
      snapshots = Snapshot.Ring.create ~capacity;
      stride;
      ticks = 0;
      ledger = (if ledger then Some (Ledger.create ()) else None);
    }

let enabled = function Noop -> false | Active _ -> true

(* Call sites guard every ledger record on this returning [Some], so the
   no-op sink (and an active sink without a ledger) never pays for — or
   changes behaviour through — decision recording. *)
let ledger = function Noop -> None | Active a -> a.ledger

let incr t name = match t with Noop -> () | Active a -> Registry.incr a.registry name

let add t name by =
  match t with Noop -> () | Active a -> Registry.add a.registry name by

let set_gauge t name v =
  match t with Noop -> () | Active a -> Registry.set_gauge a.registry name v

let max_gauge t name v =
  match t with Noop -> () | Active a -> Registry.max_gauge a.registry name v

let observe t name ~bounds x =
  match t with Noop -> () | Active a -> Registry.observe a.registry name ~bounds x

let span t name f =
  match t with Noop -> f () | Active a -> Span.time a.spans name f

let record_span t name seconds =
  match t with Noop -> () | Active a -> Span.record a.spans name seconds

(* Stride-gated snapshot: every call is one tick; the record is built (the
   thunk run) only on sampled ticks. Returns whether it sampled, so the
   caller can reset its per-window accumulators. *)
let tick_snapshot t ~make =
  match t with
  | Noop -> false
  | Active a ->
      let due = a.ticks mod a.stride = 0 in
      a.ticks <- a.ticks + 1;
      if due then Snapshot.Ring.push a.snapshots (make ());
      due

let push_snapshot t s =
  match t with Noop -> () | Active a -> Snapshot.Ring.push a.snapshots s

let metrics = function Noop -> [] | Active a -> Registry.to_alist a.registry
let span_stats = function Noop -> [] | Active a -> Span.stats a.spans
let snapshots = function Noop -> [] | Active a -> Snapshot.Ring.to_list a.snapshots

let snapshots_dropped = function
  | Noop -> 0
  | Active a -> Snapshot.Ring.dropped a.snapshots

let n_metrics = function Noop -> 0 | Active a -> Registry.cardinal a.registry
let n_spans = function Noop -> 0 | Active a -> Span.cardinal a.spans
let n_snapshots = function Noop -> 0 | Active a -> Snapshot.Ring.length a.snapshots

let merge_into ~into src =
  match (into, src) with
  | _, Noop -> ()
  | Noop, Active _ -> invalid_arg "Sink.merge_into: cannot merge into the no-op sink"
  | Active d, Active s ->
      Registry.merge_into ~into:d.registry s.registry;
      Span.merge_into ~into:d.spans s.spans;
      Snapshot.Ring.iter (Snapshot.Ring.push d.snapshots) s.snapshots;
      (match (d.ledger, s.ledger) with
      | Some dl, Some sl -> Ledger.iter (Ledger.record dl) sl
      | _ -> ());
      d.ticks <- d.ticks + s.ticks
