(** Telemetry exporters.

    JSONL: one self-describing JSON object per line — a [meta] line
    (schema ["agrid-obs/1"], element counts), then one line per metric
    ([counter] / [gauge] / [histogram]), per span aggregate ([span]) and
    per retained snapshot ([snapshot]). Non-finite floats (quantiles of
    empty histograms) export as [null]. The format is documented in
    DESIGN.md ("Observability").

    CSV: three files via [Agrid_report.Csv] (metrics, spans, snapshots)
    for spreadsheet-side analysis. *)

val schema : string

val jsonl_lines : Sink.t -> string list
val to_jsonl : Sink.t -> string
val write_jsonl : string -> Sink.t -> unit

val summary_json :
  ?total_seconds:float -> ?sections:(string * Sink.t) list -> Sink.t -> string
(** One pretty-printed JSON document (schema ["agrid-bench-obs/1"]):
    per-span mean/p50/p95/p99/max/total wall times plus every counter and
    gauge — the payload of [BENCH_obs.json]. [?sections] adds named
    sub-profiles (e.g. the bench campaign sink) under a ["sections"]
    object, each with the same spans/counters/gauges shape, so the CI
    regression gate compares them with the same rules. *)

val metrics_csv_header : string list
val metrics_csv_rows : Sink.t -> string list list
val spans_csv_header : string list
val spans_csv_rows : Sink.t -> string list list
val snapshots_csv_header : string list
val snapshots_csv_rows : Sink.t -> string list list

val write_csv_files : prefix:string -> Sink.t -> string list
(** Write [<prefix>_metrics.csv], [<prefix>_spans.csv] and
    [<prefix>_snapshots.csv]; returns the paths written. *)
