(* Fixed-bucket histogram for telemetry aggregation. Unlike
   Agrid_stats.Histogram (equal-width bins over a closed range, built for
   sweep reports), buckets here are arbitrary strictly-increasing upper
   bounds — log-spaced for span durations, linear for pool sizes — and two
   histograms with identical bounds merge bucket-wise, which is what lets
   per-domain telemetry aggregate without locks on the hot path.

   Bucket [i] counts observations in [bounds.(i-1), bounds.(i)); bucket 0
   is the underflow bucket (-inf, bounds.(0)) and the extra last bucket is
   the overflow [bounds.(k-1), +inf). NaN observations are counted apart
   and never enter the buckets, the count or the sum. *)

type t = {
  bounds : float array;
  counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable n : int;  (* non-NaN observations *)
  mutable sum : float;
  mutable max_v : float;  (* largest non-NaN observation; -inf when empty *)
  mutable nan_count : int;
}

let make ~bounds =
  let k = Array.length bounds in
  if k = 0 then invalid_arg "Hist.make: at least one bound required";
  Array.iteri
    (fun i b ->
      if Float.is_nan b then invalid_arg "Hist.make: NaN bound";
      if i > 0 && not (b > bounds.(i - 1)) then
        invalid_arg "Hist.make: bounds must be strictly increasing")
    bounds;
  {
    bounds = Array.copy bounds;
    counts = Array.make (k + 1) 0;
    n = 0;
    sum = 0.;
    max_v = Float.neg_infinity;
    nan_count = 0;
  }

let linear_bounds ~lo ~hi ~n =
  if n <= 0 then invalid_arg "Hist.linear_bounds: n must be positive";
  if not (hi > lo) then invalid_arg "Hist.linear_bounds: hi must exceed lo";
  Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int (i + 1) /. float_of_int n))

let exponential_bounds ~lo ~factor ~n =
  if n <= 0 then invalid_arg "Hist.exponential_bounds: n must be positive";
  if not (lo > 0.) then invalid_arg "Hist.exponential_bounds: lo must be positive";
  if not (factor > 1.) then invalid_arg "Hist.exponential_bounds: factor must exceed 1";
  Array.init n (fun i -> lo *. (factor ** float_of_int i))

(* First bucket index whose upper bound exceeds [x] (binary search); the
   overflow bucket when none does. *)
let bucket_of t x =
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x < t.bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe t x =
  if Float.is_nan x then t.nan_count <- t.nan_count + 1
  else begin
    let b = bucket_of t x in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.n
let nan_count t = t.nan_count
let sum t = t.sum
let mean t = if t.n = 0 then Float.nan else t.sum /. float_of_int t.n
let max_value t = if t.n = 0 then Float.nan else t.max_v
let bounds t = Array.copy t.bounds
let counts t = Array.copy t.counts

(* Approximate quantile by linear interpolation inside the target bucket;
   the overflow bucket clamps to the last bound (no upper edge to
   interpolate toward). NaN on an empty histogram. *)
let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Hist.quantile: q outside [0, 1]";
  if t.n = 0 then Float.nan
  else begin
    let k = Array.length t.bounds in
    let target = q *. float_of_int t.n in
    let i = ref 0 and below = ref 0 in
    while !i < k && float_of_int (!below + t.counts.(!i)) < target do
      below := !below + t.counts.(!i);
      incr i
    done;
    if !i >= k then t.bounds.(k - 1)
    else begin
      (* The underflow bucket has no stored lower edge. Historically the
         edge was [min 0 bounds.(0)], which collapses to a zero-width
         bucket (lo = hi) whenever the first bound is negative; keep 0 as
         the edge for positive first bounds (pinned by the bench baseline)
         and synthesize one first-bucket-width below the bound
         otherwise. *)
      let lo =
        if !i = 0 then
          if t.bounds.(0) > 0. then 0.
          else
            let width =
              if k > 1 then t.bounds.(1) -. t.bounds.(0)
              else Float.max 1. (Float.abs t.bounds.(0))
            in
            t.bounds.(0) -. width
        else t.bounds.(!i - 1)
      in
      let hi = t.bounds.(!i) in
      let c = t.counts.(!i) in
      if c = 0 then hi
      else lo +. ((hi -. lo) *. (target -. float_of_int !below) /. float_of_int c)
    end
  end

let same_bounds a b = a.bounds = b.bounds

let merge_into ~into src =
  if not (same_bounds into src) then invalid_arg "Hist.merge_into: bounds differ";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  into.nan_count <- into.nan_count + src.nan_count

let copy t =
  {
    bounds = t.bounds;
    counts = Array.copy t.counts;
    n = t.n;
    sum = t.sum;
    max_v = t.max_v;
    nan_count = t.nan_count;
  }

let pp ppf t =
  Fmt.pf ppf "hist<n=%d mean=%.4g p50=%.4g p95=%.4g nan=%d>" t.n (mean t)
    (quantile t 0.5) (quantile t 0.95) t.nan_count
