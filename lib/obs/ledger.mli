(** The decision ledger: an append-only explanation of every SLRH mapping
    decision — which candidates entered the pool and why the rest were
    turned away (typed rejection reasons), the full score decomposition of
    every commitment, why machines sat idle, and the churn transitions in
    between. The scheduler core fills it in through
    {!Sink.ledger}-guarded instrumentation; with the no-op sink no entry
    is ever built and scheduler output is bit-identical (pinned by
    regression tests).

    Serialises as JSONL (schema ["agrid-ledger/1"]): a meta line, then one
    flat JSON object per entry. {!of_jsonl} inverts {!to_jsonl} (floats to
    9 significant digits). {!explain_task} / {!explain_idle} answer the
    "why did subtask N map there?" / "why was machine J idle at step K?"
    queries behind [agrid explain]; {!first_divergence} powers
    [agrid ledger-diff]. *)

type reject =
  | Parent_unmapped of { parent : int }
      (** not ready: this parent had not been mapped *)
  | Exec_energy of { version : string; required : float; available : float }
      (** the version's execution energy alone exceeds the battery *)
  | Comm_energy of { version : string; exec : float; comm : float; available : float }
      (** execution fits, but the worst-case child-communication bound
          overflows the battery *)
  | Ineligible  (** filtered by the churn retry policy (deferred/failed) *)

type fate =
  | Rejected of reject
  | Scored of { version : string; score : float; rank : int }
      (** entered the pool at this rank (0 = best) with its best version *)
  | Horizon_missed of { version : string; score : float; rank : int; planned_start : int }
      (** walked in rank order, but the planned start fell past the horizon *)
  | Outscored of { version : string; score : float; rank : int }
      (** pooled but never walked: a better-scored candidate won the step *)

type idle_cause =
  | Busy  (** executing at this clock — not swept *)
  | Down  (** masked out of the grid by churn *)
  | Pool_empty  (** swept, but no candidate was feasible *)
  | Horizon_miss  (** candidates existed; none could start within the horizon *)

type entry =
  | Candidate of { clock : int; machine : int; task : int; fate : fate }
  | Commit of {
      clock : int;
      machine : int;
      task : int;
      version : string;
      start : int;
      stop : int;
      score : float;
      alpha_term : float;  (** alpha * T100/|T| after this assignment *)
      beta_term : float;  (** beta * TEC/TSE (subtracted) *)
      gamma_term : float;  (** gamma * AET/tau (sign per the weights) *)
      pool_size : int;
      runner_up : (int * float) option;  (** (task, score) of the second-best *)
    }
  | Idle of { clock : int; machine : int; cause : idle_cause }
  | Churn of { clock : int; machine : int; event : string; detail : float }
  | Multiplier of {
      clock : int;
      epoch : int;  (** mapped-subtask count when the update fired *)
      round : int;  (** dual-ascent round (1-based; sets the step size) *)
      trigger : string;  (** ["epoch"] (commit progress) or ["churn"] *)
      step : float;  (** step size used, [c / sqrt round] *)
      g_energy : float;  (** energy-pacing subgradient TEC/TSE - clock/tau *)
      g_aet : float;  (** extent-pacing subgradient AET/tau - mapped/|T| *)
      lambda_energy : float;  (** multiplier AFTER the projected step *)
      lambda_aet : float;
      alpha_before : float;
      beta_before : float;
      gamma_before : float;
      alpha : float;
      beta : float;
      gamma : float;
    }
      (** An online dual-ascent update ({!module:Agrid_core} [Adapt]):
          why the Lagrangian weights moved at this clock. *)

type t

val create : unit -> t
val record : t -> entry -> unit
val length : t -> int

val entries : t -> entry array
(** Chronological (recording) order. *)

val iter : (entry -> unit) -> t -> unit

val idle_cause_to_string : idle_cause -> string
val pp_entry : Format.formatter -> entry -> unit

(** {2 JSONL} *)

val schema : string

val jsonl_lines : t -> string list
val to_jsonl : t -> string
val write_jsonl : string -> t -> unit

val of_jsonl : string -> t
(** Inverse of {!to_jsonl} (meta line optional, floats to 9 significant
    digits). @raise Invalid_argument with the line number on malformed
    input or a schema mismatch. *)

val load_jsonl : string -> t

(** {2 Queries} *)

val explain_task : t -> task:int -> string option
(** The commit entry for [task] (score decomposition, margin, pool) plus
    every prior consideration of it. [None] when the ledger never saw the
    task. *)

val explain_idle : t -> machine:int -> clock:int -> string option
(** The idle cause recorded for (machine, clock) and, when the pool was
    the problem, every candidate verdict at that step. Reports the commit
    instead if the machine was in fact not idle there. [None] when the
    ledger holds no record for that step. *)

val explain_multiplier : t -> round:int -> string option
(** Why dual round [round] moved the multipliers: the full update record
    (trigger, epoch, step size, measured subgradients, weights before and
    after) preceded by any churn entries at the same clock — the usual
    cause of an off-epoch update. [None] when no such round was
    recorded. *)

(** {2 Diff} *)

val decisions : t -> entry list
(** The decision stream: {!Commit} and {!Idle} entries, in order.
    {!Candidate}, {!Churn} and {!Multiplier} entries are context, not
    scheduler choices. *)

type divergence = {
  div_index : int;  (** position in the decision stream *)
  div_left : entry option;  (** [None]: the left stream ended first *)
  div_right : entry option;
}

val first_divergence : t -> t -> divergence option
(** First position where the two decision streams part ways. Decisions
    compare structurally (clock, machine, task, version, interval, idle
    cause) — scores are not compared, so runs with different weights
    diverge where the {e choices} first differ, and the divergence then
    carries both sides' score decompositions. [None]: identical streams. *)

val pp_divergence : Format.formatter -> divergence -> unit
