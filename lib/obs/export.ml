(* Exporters: JSONL (one self-describing JSON object per line — the
   machine-readable artefact `agrid run --obs` and `agrid prof` emit) and
   CSV via Agrid_report.Csv for spreadsheet-side analysis. Values are only
   strings, finite numbers, arrays and flat objects; emission goes through
   the in-tree Json module — nothing in this repository may depend on an
   external JSON package. Non-finite floats (quantiles of empty
   histograms) export as null. *)

open Json

let obj fields = Json.to_string (Obj fields)
let floats a = Arr (List.map (fun x -> Flt x) (Array.to_list a))
let ints a = Arr (List.map (fun x -> Int x) (Array.to_list a))

(* ---- JSONL ---- *)

let schema = "agrid-obs/1"

let metric_line (name, m) =
  match m with
  | Registry.Counter c -> obj [ ("type", Str "counter"); ("name", Str name); ("value", Int c) ]
  | Registry.Gauge g -> obj [ ("type", Str "gauge"); ("name", Str name); ("value", Flt g) ]
  | Registry.Histogram h ->
      obj
        [
          ("type", Str "histogram");
          ("name", Str name);
          ("count", Int (Hist.count h));
          ("sum", Flt (Hist.sum h));
          ("mean", Flt (Hist.mean h));
          ("p50", Flt (Hist.quantile h 0.5));
          ("p95", Flt (Hist.quantile h 0.95));
          ("p99", Flt (Hist.quantile h 0.99));
          ("max", Flt (Hist.max_value h));
          ("nan", Int (Hist.nan_count h));
          ("bounds", floats (Hist.bounds h));
          ("counts", ints (Hist.counts h));
        ]

let span_fields (s : Span.stats) =
  [
    ("name", Str s.Span.name);
    ("count", Int s.Span.count);
    ("total_s", Flt s.Span.total_s);
    ("mean_s", Flt s.Span.mean_s);
    ("p50_s", Flt s.Span.p50_s);
    ("p95_s", Flt s.Span.p95_s);
    ("p99_s", Flt s.Span.p99_s);
    ("min_s", Flt s.Span.min_s);
    ("max_s", Flt s.Span.max_s);
  ]

let span_line s = obj (("type", Str "span") :: span_fields s)

let snapshot_line (s : Snapshot.t) =
  obj
    [
      ("type", Str "snapshot");
      ("clock", Int s.Snapshot.clock);
      ("mapped", Int s.Snapshot.mapped);
      ("t100", Int s.Snapshot.t100);
      ("pools_built", Int s.Snapshot.pools_built);
      ("pool_candidates", Int s.Snapshot.pool_candidates);
      ("energy", floats s.Snapshot.energy);
    ]

let jsonl_lines sink =
  let meta =
    obj
      [
        ("type", Str "meta");
        ("schema", Str schema);
        ("spans", Int (Sink.n_spans sink));
        ("metrics", Int (Sink.n_metrics sink));
        ("snapshots", Int (Sink.n_snapshots sink));
        ("snapshots_dropped", Int (Sink.snapshots_dropped sink));
      ]
  in
  (meta :: List.map metric_line (Sink.metrics sink))
  @ List.map span_line (Sink.span_stats sink)
  @ List.map snapshot_line (Sink.snapshots sink)

let to_jsonl sink = String.concat "\n" (jsonl_lines sink) ^ "\n"

let write_jsonl path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl sink))

(* ---- one-document JSON summary (BENCH_obs.json) ---- *)

let add_spans b ~indent sink =
  Buffer.add_string b "\"spans\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b indent;
      Buffer.add_string b "  ";
      Buffer.add_string b (obj (span_fields s)))
    (Sink.span_stats sink);
  Buffer.add_char b '\n';
  Buffer.add_string b indent;
  Buffer.add_char b ']'

let add_counters b ~indent sink =
  Buffer.add_string b "\"counters\": {";
  let first = ref true in
  List.iter
    (fun (name, m) ->
      match m with
      | Registry.Counter c ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_char b '\n';
          Buffer.add_string b indent;
          Buffer.add_string b "  ";
          Buffer.add_string b (Json.to_string (Str name));
          Buffer.add_string b ": ";
          Buffer.add_string b (string_of_int c)
      | Registry.Gauge _ | Registry.Histogram _ -> ())
    (Sink.metrics sink);
  Buffer.add_char b '\n';
  Buffer.add_string b indent;
  Buffer.add_char b '}'

let add_gauges b ~indent sink =
  Buffer.add_string b "\"gauges\": {";
  let first = ref true in
  List.iter
    (fun (name, m) ->
      match m with
      | Registry.Gauge g ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_char b '\n';
          Buffer.add_string b indent;
          Buffer.add_string b "  ";
          Buffer.add_string b (Json.to_string (Str name));
          Buffer.add_string b ": ";
          Buffer.add_string b (Json.float_repr g)
      | Registry.Counter _ | Registry.Histogram _ -> ())
    (Sink.metrics sink);
  Buffer.add_char b '\n';
  Buffer.add_string b indent;
  Buffer.add_char b '}'

let summary_json ?total_seconds ?(sections = []) sink =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": ";
  Buffer.add_string b (Json.to_string (Str "agrid-bench-obs/1"));
  (match total_seconds with
  | Some t ->
      Buffer.add_string b ",\n  \"total_seconds\": ";
      Buffer.add_string b (Json.float_repr t)
  | None -> ());
  Buffer.add_string b ",\n  ";
  add_spans b ~indent:"  " sink;
  Buffer.add_string b ",\n  ";
  add_counters b ~indent:"  " sink;
  Buffer.add_string b ",\n  ";
  add_gauges b ~indent:"  " sink;
  (* Named sub-profiles (e.g. the bench campaign section): same
     spans/counters/gauges shape one level down, so the regression gate
     walks them with the same comparators. *)
  if sections <> [] then begin
    Buffer.add_string b ",\n  \"sections\": {";
    List.iteri
      (fun i (name, s) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n    ";
        Buffer.add_string b (Json.to_string (Str name));
        Buffer.add_string b ": {\n      ";
        add_spans b ~indent:"      " s;
        Buffer.add_string b ",\n      ";
        add_counters b ~indent:"      " s;
        Buffer.add_string b ",\n      ";
        add_gauges b ~indent:"      " s;
        Buffer.add_string b "\n    }")
      sections;
    Buffer.add_string b "\n  }"
  end;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ---- CSV via Agrid_report.Csv ---- *)

let metrics_csv_header = [ "name"; "kind"; "value"; "count"; "sum"; "mean" ]

let metrics_csv_rows sink =
  List.map
    (fun (name, m) ->
      match m with
      | Registry.Counter c -> [ name; "counter"; string_of_int c; ""; ""; "" ]
      | Registry.Gauge g -> [ name; "gauge"; Fmt.str "%.9g" g; ""; ""; "" ]
      | Registry.Histogram h ->
          [
            name; "histogram"; ""; string_of_int (Hist.count h);
            Fmt.str "%.9g" (Hist.sum h); Fmt.str "%.9g" (Hist.mean h);
          ])
    (Sink.metrics sink)

let spans_csv_header =
  [ "name"; "count"; "total_s"; "mean_s"; "p50_s"; "p95_s"; "p99_s"; "min_s"; "max_s" ]

let spans_csv_rows sink =
  List.map
    (fun (s : Span.stats) ->
      [
        s.Span.name; string_of_int s.Span.count; Fmt.str "%.9g" s.Span.total_s;
        Fmt.str "%.9g" s.Span.mean_s; Fmt.str "%.9g" s.Span.p50_s;
        Fmt.str "%.9g" s.Span.p95_s; Fmt.str "%.9g" s.Span.p99_s;
        Fmt.str "%.9g" s.Span.min_s; Fmt.str "%.9g" s.Span.max_s;
      ])
    (Sink.span_stats sink)

let snapshots_csv_header =
  [ "clock"; "mapped"; "t100"; "pools_built"; "pool_candidates"; "energy" ]

let snapshots_csv_rows sink =
  List.map
    (fun (s : Snapshot.t) ->
      [
        string_of_int s.Snapshot.clock; string_of_int s.Snapshot.mapped;
        string_of_int s.Snapshot.t100; string_of_int s.Snapshot.pools_built;
        string_of_int s.Snapshot.pool_candidates;
        String.concat ";"
          (List.map (Fmt.str "%.6g") (Array.to_list s.Snapshot.energy));
      ])
    (Sink.snapshots sink)

let write_csv_files ~prefix sink =
  let files =
    [
      (prefix ^ "_metrics.csv", metrics_csv_header, metrics_csv_rows sink);
      (prefix ^ "_spans.csv", spans_csv_header, spans_csv_rows sink);
      (prefix ^ "_snapshots.csv", snapshots_csv_header, snapshots_csv_rows sink);
    ]
  in
  List.iter
    (fun (path, header, rows) -> Agrid_report.Csv.write_file path ~header rows)
    files;
  List.map (fun (path, _, _) -> path) files
