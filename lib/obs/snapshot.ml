(* Per-cycle scheduler snapshots — the paper's "historical record of all
   critical parameters" (Section IV) as a time series rather than per-
   decision events (that is Agrid_core.Trace's job). One record per sampled
   timestep: clock, mapping progress, T100 so far, per-machine energy
   remaining, and the cycle's pool activity. Records live in a bounded
   ring so a long run keeps the most recent window at fixed memory. *)

type t = {
  clock : int;
  mapped : int;  (** subtasks mapped so far *)
  t100 : int;  (** primary versions mapped so far *)
  pools_built : int;  (** candidate pools built since the last snapshot *)
  pool_candidates : int;  (** candidates across those pools *)
  energy : float array;  (** per-machine energy remaining *)
}

let pp ppf s =
  Fmt.pf ppf "clock=%d mapped=%d t100=%d pools=%d candidates=%d energy=[%a]" s.clock
    s.mapped s.t100 s.pools_built s.pool_candidates
    Fmt.(array ~sep:(any ";") (fmt "%.2f"))
    s.energy

(* Bounded ring buffer: pushes beyond [capacity] overwrite the oldest
   entry; [to_list] replays the retained window oldest-first. *)
module Ring = struct
  type 'a t = {
    slots : 'a option array;
    mutable next : int;  (* slot the next push writes *)
    mutable len : int;  (* retained entries, <= capacity *)
    mutable pushed : int;  (* lifetime pushes, for drop accounting *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
    { slots = Array.make capacity None; next = 0; len = 0; pushed = 0 }

  let capacity r = Array.length r.slots

  let push r x =
    let cap = capacity r in
    r.slots.(r.next) <- Some x;
    r.next <- (r.next + 1) mod cap;
    if r.len < cap then r.len <- r.len + 1;
    r.pushed <- r.pushed + 1

  let length r = r.len
  let pushed r = r.pushed
  let dropped r = r.pushed - r.len

  let to_list r =
    let cap = capacity r in
    let start = (r.next - r.len + cap) mod cap in
    List.init r.len (fun i ->
        match r.slots.((start + i) mod cap) with
        | Some x -> x
        | None -> assert false (* len counts filled slots *))

  let iter f r = List.iter f (to_list r)
end
