(* The decision ledger: an append-only record of WHY each SLRH mapping
   decision came out the way it did, not merely how long it took (that is
   Span's job) or what the aggregate counts were (Registry's). One entry
   per observable fact at a (clock, machine) decision point:

   - [Candidate]: a subtask the sweep considered, with its fate — rejected
     from the pool (typed reason: unmapped parent, version-infeasible
     execution energy, worst-case child-communication overflow, filtered
     by the churn retry policy), scored into the pool, walked but planned
     past the horizon, or out-scored by the eventual winner;
   - [Commit]: a committed assignment with the full score decomposition
     (the alpha/beta/gamma terms of the Lagrangian objective), the pool it
     beat and the margin over the runner-up;
   - [Idle]: a machine that assigned nothing this step, and why (busy,
     masked out by churn, empty pool, or nothing inside the horizon);
   - [Churn]: a grid transition applied by the churn engine.

   Entries reference versions by their string names and machines/tasks by
   index, so the type is self-contained at the observability layer — the
   scheduler core (which depends on this library) fills it in.

   The ledger serialises as JSONL, schema [agrid-ledger/1]: a meta line
   followed by one flat JSON object per entry, so the file both streams
   and diffs line-by-line. [of_jsonl] inverts [to_jsonl]; floats pass
   through ["%.9g"], so scores are recovered to 9 significant digits, not
   bit-exactly. The diff and explain queries below power the
   `agrid ledger-diff` and `agrid explain` subcommands. *)

type reject =
  | Parent_unmapped of { parent : int }
  | Exec_energy of { version : string; required : float; available : float }
  | Comm_energy of { version : string; exec : float; comm : float; available : float }
  | Ineligible

type fate =
  | Rejected of reject
  | Scored of { version : string; score : float; rank : int }
  | Horizon_missed of { version : string; score : float; rank : int; planned_start : int }
  | Outscored of { version : string; score : float; rank : int }

type idle_cause = Busy | Down | Pool_empty | Horizon_miss

type entry =
  | Candidate of { clock : int; machine : int; task : int; fate : fate }
  | Commit of {
      clock : int;
      machine : int;
      task : int;
      version : string;
      start : int;
      stop : int;
      score : float;
      alpha_term : float;
      beta_term : float;
      gamma_term : float;
      pool_size : int;
      runner_up : (int * float) option;  (** (task, score) of the second-best *)
    }
  | Idle of { clock : int; machine : int; cause : idle_cause }
  | Churn of { clock : int; machine : int; event : string; detail : float }
  | Multiplier of {
      clock : int;
      epoch : int;
      round : int;
      trigger : string;
      step : float;
      g_energy : float;
      g_aet : float;
      lambda_energy : float;
      lambda_aet : float;
      alpha_before : float;
      beta_before : float;
      gamma_before : float;
      alpha : float;
      beta : float;
      gamma : float;
    }

type t = { mutable rev_entries : entry list; mutable length : int }

let create () = { rev_entries = []; length = 0 }

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.length <- t.length + 1

let length t = t.length
let entries t = Array.of_list (List.rev t.rev_entries)
let iter f t = List.iter f (List.rev t.rev_entries)

(* ---- rendering ---- *)

let idle_cause_to_string = function
  | Busy -> "busy"
  | Down -> "down"
  | Pool_empty -> "pool_empty"
  | Horizon_miss -> "horizon_miss"

let pp_reject ppf = function
  | Parent_unmapped { parent } -> Fmt.pf ppf "parent %d unmapped" parent
  | Exec_energy { version; required; available } ->
      Fmt.pf ppf "%s execution energy infeasible (needs %.3f, has %.3f)" version
        required available
  | Comm_energy { version; exec; comm; available } ->
      Fmt.pf ppf
        "%s worst-case child-communication overflow (exec %.3f + comm %.3f > %.3f)"
        version exec comm available
  | Ineligible -> Fmt.pf ppf "filtered by retry policy (deferred or failed)"

let pp_fate ppf = function
  | Rejected r -> Fmt.pf ppf "rejected: %a" pp_reject r
  | Scored { version; score; rank } ->
      Fmt.pf ppf "pooled rank %d as %s (score %.6f)" rank version score
  | Horizon_missed { version; score; rank; planned_start } ->
      Fmt.pf ppf "rank %d as %s (score %.6f) but planned start %d missed the horizon"
        rank version score planned_start
  | Outscored { version; score; rank } ->
      Fmt.pf ppf "out-scored at rank %d as %s (score %.6f)" rank version score

let pp_entry ppf = function
  | Candidate { clock; machine; task; fate } ->
      Fmt.pf ppf "clock %d machine %d: subtask %d %a" clock machine task pp_fate fate
  | Commit { clock; machine; task; version; start; stop; score; alpha_term;
             beta_term; gamma_term; pool_size; runner_up } ->
      Fmt.pf ppf
        "clock %d machine %d: COMMIT subtask %d as %s [%d, %d) score %.6f = \
         alpha %.6f - beta %.6f + gamma %.6f (pool %d%a)"
        clock machine task version start stop score alpha_term beta_term gamma_term
        pool_size
        (fun ppf -> function
          | None -> Fmt.pf ppf ", no runner-up"
          | Some (ru_task, ru_score) ->
              Fmt.pf ppf ", margin %.6f over subtask %d at %.6f" (score -. ru_score)
                ru_task ru_score)
        runner_up
  | Idle { clock; machine; cause } ->
      Fmt.pf ppf "clock %d machine %d: idle (%s)" clock machine
        (idle_cause_to_string cause)
  | Churn { clock; machine; event; detail } ->
      Fmt.pf ppf "clock %d machine %d: churn %s (%.3f)" clock machine event detail
  | Multiplier { clock; epoch; round; trigger; step; g_energy; g_aet;
                 lambda_energy; lambda_aet; alpha_before; beta_before;
                 gamma_before; alpha; beta; gamma } ->
      Fmt.pf ppf
        "clock %d: DUAL round %d (%s, epoch %d) step %.6f on g = (energy %+.6f, \
         aet %+.6f) -> lambda = (%.6f, %.6f), weights (%.4f, %.4f, %.4f) -> \
         (%.4f, %.4f, %.4f)"
        clock round trigger epoch step g_energy g_aet lambda_energy lambda_aet
        alpha_before beta_before gamma_before alpha beta gamma

(* ---- JSONL ---- *)

let schema = "agrid-ledger/1"

let json_of_entry e =
  let open Json in
  match e with
  | Candidate { clock; machine; task; fate } ->
      let base =
        [ ("type", Str "candidate"); ("clock", Int clock); ("machine", Int machine);
          ("task", Int task) ]
      in
      let rest =
        match fate with
        | Rejected (Parent_unmapped { parent }) ->
            [ ("fate", Str "rejected"); ("reason", Str "parent_unmapped");
              ("parent", Int parent) ]
        | Rejected (Exec_energy { version; required; available }) ->
            [ ("fate", Str "rejected"); ("reason", Str "exec_energy");
              ("version", Str version); ("required", Flt required);
              ("available", Flt available) ]
        | Rejected (Comm_energy { version; exec; comm; available }) ->
            [ ("fate", Str "rejected"); ("reason", Str "comm_energy");
              ("version", Str version); ("exec", Flt exec); ("comm", Flt comm);
              ("available", Flt available) ]
        | Rejected Ineligible -> [ ("fate", Str "rejected"); ("reason", Str "ineligible") ]
        | Scored { version; score; rank } ->
            [ ("fate", Str "scored"); ("version", Str version); ("score", Flt score);
              ("rank", Int rank) ]
        | Horizon_missed { version; score; rank; planned_start } ->
            [ ("fate", Str "horizon_missed"); ("version", Str version);
              ("score", Flt score); ("rank", Int rank);
              ("planned_start", Int planned_start) ]
        | Outscored { version; score; rank } ->
            [ ("fate", Str "outscored"); ("version", Str version); ("score", Flt score);
              ("rank", Int rank) ]
      in
      Obj (base @ rest)
  | Commit { clock; machine; task; version; start; stop; score; alpha_term;
             beta_term; gamma_term; pool_size; runner_up } ->
      Obj
        ([
           ("type", Str "commit"); ("clock", Int clock); ("machine", Int machine);
           ("task", Int task); ("version", Str version); ("start", Int start);
           ("stop", Int stop); ("score", Flt score); ("alpha_term", Flt alpha_term);
           ("beta_term", Flt beta_term); ("gamma_term", Flt gamma_term);
           ("pool_size", Int pool_size);
         ]
        @
        match runner_up with
        | None -> []
        | Some (ru_task, ru_score) ->
            (* margin is derived (score - runner_up_score); emitting it
               would break the round-trip fixed point once both floats
               have been through %.9g *)
            [ ("runner_up_task", Int ru_task); ("runner_up_score", Flt ru_score) ])
  | Idle { clock; machine; cause } ->
      Obj
        [ ("type", Str "idle"); ("clock", Int clock); ("machine", Int machine);
          ("cause", Str (idle_cause_to_string cause)) ]
  | Churn { clock; machine; event; detail } ->
      Obj
        [ ("type", Str "churn"); ("clock", Int clock); ("machine", Int machine);
          ("event", Str event); ("detail", Flt detail) ]
  | Multiplier { clock; epoch; round; trigger; step; g_energy; g_aet;
                 lambda_energy; lambda_aet; alpha_before; beta_before;
                 gamma_before; alpha; beta; gamma } ->
      Obj
        [ ("type", Str "multiplier"); ("clock", Int clock); ("epoch", Int epoch);
          ("round", Int round); ("trigger", Str trigger); ("step", Flt step);
          ("g_energy", Flt g_energy); ("g_aet", Flt g_aet);
          ("lambda_energy", Flt lambda_energy); ("lambda_aet", Flt lambda_aet);
          ("alpha_before", Flt alpha_before); ("beta_before", Flt beta_before);
          ("gamma_before", Flt gamma_before); ("alpha", Flt alpha);
          ("beta", Flt beta); ("gamma", Flt gamma) ]

let jsonl_lines t =
  let meta =
    Json.Obj
      [ ("type", Json.Str "meta"); ("schema", Json.Str schema);
        ("entries", Json.Int t.length) ]
  in
  Json.to_string meta :: List.rev_map (fun e -> Json.to_string (json_of_entry e)) t.rev_entries

let to_jsonl t = String.concat "\n" (jsonl_lines t) ^ "\n"

let write_jsonl path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

(* ---- parsing ---- *)

let of_jsonl s =
  let t = create () in
  let fail line fmt =
    Fmt.kstr (fun m -> invalid_arg (Fmt.str "Ledger.of_jsonl: line %d: %s" line m)) fmt
  in
  let req_int line v k =
    match Json.get_int k v with Some i -> i | None -> fail line "missing int %S" k
  in
  let req_float line v k =
    match Json.get_float k v with Some f -> f | None -> fail line "missing float %S" k
  in
  let req_str line v k =
    match Json.get_string k v with Some s -> s | None -> fail line "missing string %S" k
  in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if String.trim line <> "" then begin
        let v =
          try Json.parse line
          with Json.Parse_error m -> fail lineno "bad JSON (%s)" m
        in
        match Json.get_string "type" v with
        | None -> fail lineno "no \"type\" field"
        | Some "meta" ->
            let sch = req_str lineno v "schema" in
            if sch <> schema then
              fail lineno "schema %S, expected %S" sch schema
        | Some "candidate" ->
            let clock = req_int lineno v "clock"
            and machine = req_int lineno v "machine"
            and task = req_int lineno v "task" in
            let fate =
              match req_str lineno v "fate" with
              | "rejected" -> (
                  match req_str lineno v "reason" with
                  | "parent_unmapped" ->
                      Rejected (Parent_unmapped { parent = req_int lineno v "parent" })
                  | "exec_energy" ->
                      Rejected
                        (Exec_energy
                           {
                             version = req_str lineno v "version";
                             required = req_float lineno v "required";
                             available = req_float lineno v "available";
                           })
                  | "comm_energy" ->
                      Rejected
                        (Comm_energy
                           {
                             version = req_str lineno v "version";
                             exec = req_float lineno v "exec";
                             comm = req_float lineno v "comm";
                             available = req_float lineno v "available";
                           })
                  | "ineligible" -> Rejected Ineligible
                  | r -> fail lineno "unknown rejection reason %S" r)
              | "scored" ->
                  Scored
                    {
                      version = req_str lineno v "version";
                      score = req_float lineno v "score";
                      rank = req_int lineno v "rank";
                    }
              | "horizon_missed" ->
                  Horizon_missed
                    {
                      version = req_str lineno v "version";
                      score = req_float lineno v "score";
                      rank = req_int lineno v "rank";
                      planned_start = req_int lineno v "planned_start";
                    }
              | "outscored" ->
                  Outscored
                    {
                      version = req_str lineno v "version";
                      score = req_float lineno v "score";
                      rank = req_int lineno v "rank";
                    }
              | f -> fail lineno "unknown fate %S" f
            in
            record t (Candidate { clock; machine; task; fate })
        | Some "commit" ->
            record t
              (Commit
                 {
                   clock = req_int lineno v "clock";
                   machine = req_int lineno v "machine";
                   task = req_int lineno v "task";
                   version = req_str lineno v "version";
                   start = req_int lineno v "start";
                   stop = req_int lineno v "stop";
                   score = req_float lineno v "score";
                   alpha_term = req_float lineno v "alpha_term";
                   beta_term = req_float lineno v "beta_term";
                   gamma_term = req_float lineno v "gamma_term";
                   pool_size = req_int lineno v "pool_size";
                   runner_up =
                     (match (Json.get_int "runner_up_task" v,
                             Json.get_float "runner_up_score" v) with
                     | Some task, Some score -> Some (task, score)
                     | _ -> None);
                 })
        | Some "idle" ->
            let cause =
              match req_str lineno v "cause" with
              | "busy" -> Busy
              | "down" -> Down
              | "pool_empty" -> Pool_empty
              | "horizon_miss" -> Horizon_miss
              | c -> fail lineno "unknown idle cause %S" c
            in
            record t
              (Idle
                 {
                   clock = req_int lineno v "clock";
                   machine = req_int lineno v "machine";
                   cause;
                 })
        | Some "churn" ->
            record t
              (Churn
                 {
                   clock = req_int lineno v "clock";
                   machine = req_int lineno v "machine";
                   event = req_str lineno v "event";
                   detail = req_float lineno v "detail";
                 })
        | Some "multiplier" ->
            record t
              (Multiplier
                 {
                   clock = req_int lineno v "clock";
                   epoch = req_int lineno v "epoch";
                   round = req_int lineno v "round";
                   trigger = req_str lineno v "trigger";
                   step = req_float lineno v "step";
                   g_energy = req_float lineno v "g_energy";
                   g_aet = req_float lineno v "g_aet";
                   lambda_energy = req_float lineno v "lambda_energy";
                   lambda_aet = req_float lineno v "lambda_aet";
                   alpha_before = req_float lineno v "alpha_before";
                   beta_before = req_float lineno v "beta_before";
                   gamma_before = req_float lineno v "gamma_before";
                   alpha = req_float lineno v "alpha";
                   beta = req_float lineno v "beta";
                   gamma = req_float lineno v "gamma";
                 })
        | Some other -> fail lineno "unknown entry type %S" other
      end)
    lines;
  t

let load_jsonl path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_jsonl s

(* ---- explain queries ---- *)

(* Why did subtask [task] map where it did? The commit entry carries the
   decomposition; the candidate history before it shows every step at
   which the subtask was considered and turned away. *)
let explain_task t ~task =
  let b = Buffer.create 256 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let commit = ref None in
  let history = ref 0 in
  iter
    (fun e ->
      match e with
      | Commit c when c.task = task && !commit = None -> commit := Some e
      | Candidate c when c.task = task && !commit = None ->
          incr history;
          line "%a" pp_entry e
      | _ -> ())
    t;
  match !commit with
  | Some e ->
      line "%a" pp_entry e;
      Some
        (Fmt.str "subtask %d: %d prior consideration(s) before commit\n%s" task !history
           (Buffer.contents b))
  | None ->
      if !history = 0 then None
      else
        Some
          (Fmt.str "subtask %d: never committed; %d consideration(s)\n%s" task !history
             (Buffer.contents b))

(* Why did machine [machine] sit idle at clock [clock]? Reports the idle
   cause recorded at that step and, when the pool was the problem, every
   candidate verdict recorded for that (clock, machine). *)
let explain_idle t ~machine ~clock =
  let b = Buffer.create 256 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let found = ref false in
  iter
    (fun e ->
      match e with
      | Idle i when i.machine = machine && i.clock = clock ->
          found := true;
          line "%a" pp_entry e
      | Commit c when c.machine = machine && c.clock = clock ->
          found := true;
          line "machine %d was not idle at clock %d:" machine clock;
          line "%a" pp_entry e
      | Candidate c when c.machine = machine && c.clock = clock ->
          line "%a" pp_entry e
      | _ -> ())
    t;
  if !found then Some (Buffer.contents b) else None

(* Why did dual round [round] move the multipliers? Reports the full
   update record — trigger, epoch, step size, measured subgradients and
   the weights before/after — plus any churn events recorded at the same
   clock (the usual reason a round fired off-epoch). *)
let explain_multiplier t ~round =
  (* churn entries at the update's clock are recorded BEFORE the update
     they provoked, so locate the round's clock first, then render that
     clock's churn context followed by the update itself *)
  let at_clock = ref None in
  iter
    (function
      | Multiplier m when m.round = round && !at_clock = None ->
          at_clock := Some m.clock
      | _ -> ())
    t;
  match !at_clock with
  | None -> None
  | Some k ->
      let b = Buffer.create 256 in
      let line fmt =
        Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt
      in
      iter
        (fun e ->
          match e with
          | Churn c when c.clock = k -> line "%a" pp_entry e
          | Multiplier m when m.round = round -> line "%a" pp_entry e
          | _ -> ())
        t;
      Some (Buffer.contents b)

(* ---- diff ---- *)

(* The DECISION stream of a ledger: commits and idles, in order. Candidate
   entries are context (they explain a decision); churn entries are inputs
   rather than scheduler choices; multiplier entries are controller state,
   whose mapping consequences show up as later commits anyway. *)
let decisions t =
  List.filter
    (function
      | Commit _ | Idle _ -> true | Candidate _ | Churn _ | Multiplier _ -> false)
    (Array.to_list (entries t))

(* Two decisions are the SAME decision iff their structural fields agree —
   where and what was mapped, or why nothing was. Scores are deliberately
   not compared: two runs with different Lagrangian weights score every
   pool differently, yet the interesting question is where the *choices*
   first part ways (the score decompositions are then reported for exactly
   that point). *)
let same_decision a b =
  match (a, b) with
  | Commit x, Commit y ->
      x.clock = y.clock && x.machine = y.machine && x.task = y.task
      && x.version = y.version && x.start = y.start && x.stop = y.stop
  | Idle x, Idle y -> x.clock = y.clock && x.machine = y.machine && x.cause = y.cause
  | _ -> false

type divergence = {
  div_index : int;  (** position in the decision stream *)
  div_left : entry option;  (** [None]: the left stream ended first *)
  div_right : entry option;
}

let first_divergence left right =
  let rec walk i l r =
    match (l, r) with
    | [], [] -> None
    | x :: _, [] -> Some { div_index = i; div_left = Some x; div_right = None }
    | [], y :: _ -> Some { div_index = i; div_left = None; div_right = Some y }
    | x :: ls, y :: rs ->
        if same_decision x y then walk (i + 1) ls rs
        else Some { div_index = i; div_left = Some x; div_right = Some y }
  in
  walk 0 (decisions left) (decisions right)

let pp_divergence ppf d =
  let side name = function
    | None -> Fmt.pf ppf "  %s: (stream ended)@." name
    | Some e -> Fmt.pf ppf "  %s: %a@." name pp_entry e
  in
  Fmt.pf ppf "first divergent decision at index %d:@." d.div_index;
  side "left " d.div_left;
  side "right" d.div_right
