(* Named-metric registry: counters, gauges and fixed-bucket histograms
   under slash-separated names ("slrh/assignments"). Registries merge —
   counters add, gauges keep the maximum, histograms add bucket-wise — and
   the merge is associative and commutative (tested), so parallel workers
   can each fill a private registry with no locks and the results fold in
   any grouping after the join. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of Hist.t

(* Internal mutable cells; [metric] above is the read-only view. *)
type cell =
  | C of { mutable c : int }
  | G of { mutable g : float }
  | H of Hist.t

type t = { cells : (string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let kind_error name cell want =
  invalid_arg (Fmt.str "Registry: %s is a %s, not a %s" name (kind_name cell) want)

let add t name by =
  match Hashtbl.find_opt t.cells name with
  | Some (C r) -> r.c <- r.c + by
  | Some cell -> kind_error name cell "counter"
  | None -> Hashtbl.add t.cells name (C { c = by })

let incr t name = add t name 1

let set_gauge t name v =
  match Hashtbl.find_opt t.cells name with
  | Some (G r) -> r.g <- v
  | Some cell -> kind_error name cell "gauge"
  | None -> Hashtbl.add t.cells name (G { g = v })

let max_gauge t name v =
  match Hashtbl.find_opt t.cells name with
  | Some (G r) -> r.g <- Float.max r.g v
  | Some cell -> kind_error name cell "gauge"
  | None -> Hashtbl.add t.cells name (G { g = v })

(* [bounds] applies on first observation only; the histogram's buckets are
   fixed from then on (checking equality per call would put an O(buckets)
   scan on the hot path). *)
let observe t name ~bounds x =
  match Hashtbl.find_opt t.cells name with
  | Some (H h) -> Hist.observe h x
  | Some cell -> kind_error name cell "histogram"
  | None ->
      let h = Hist.make ~bounds in
      Hist.observe h x;
      Hashtbl.add t.cells name (H h)

let find t name =
  match Hashtbl.find_opt t.cells name with
  | None -> None
  | Some (C r) -> Some (Counter r.c)
  | Some (G r) -> Some (Gauge r.g)
  | Some (H h) -> Some (Histogram h)

let cardinal t = Hashtbl.length t.cells

(* Name-sorted association list — the deterministic view every exporter
   and comparison uses. Histograms are exposed live (not copied). *)
let to_alist t =
  Hashtbl.fold
    (fun name cell acc ->
      let m =
        match cell with C r -> Counter r.c | G r -> Gauge r.g | H h -> Histogram h
      in
      (name, m) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let fold f t init =
  List.fold_left (fun acc (name, m) -> f name m acc) init (to_alist t)

let merge_into ~into src =
  Hashtbl.iter
    (fun name cell ->
      match (Hashtbl.find_opt into.cells name, cell) with
      | None, C r -> Hashtbl.add into.cells name (C { c = r.c })
      | None, G r -> Hashtbl.add into.cells name (G { g = r.g })
      | None, H h -> Hashtbl.add into.cells name (H (Hist.copy h))
      | Some (C d), C s -> d.c <- d.c + s.c
      | Some (G d), G s -> d.g <- Float.max d.g s.g
      | Some (H d), H s -> Hist.merge_into ~into:d s
      | Some d, s ->
          invalid_arg
            (Fmt.str "Registry.merge_into: %s is a %s here, a %s there" name
               (kind_name d) (kind_name s)))
    src.cells

let pp_metric ppf = function
  | Counter c -> Fmt.pf ppf "%d" c
  | Gauge g -> Fmt.pf ppf "%.6g" g
  | Histogram h -> Hist.pp ppf h

let pp ppf t =
  List.iter (fun (name, m) -> Fmt.pf ppf "%s = %a@." name pp_metric m) (to_alist t)
