(* Self-contained JSON values: an emitter and a recursive-descent parser.
   Nothing in this repository may depend on an external JSON package, yet
   the observability tooling both writes machine-readable artefacts
   (telemetry JSONL, decision ledgers, BENCH_obs.json) and reads them back
   (`agrid explain`, `agrid ledger-diff`, `check_regression.exe`). This
   module is the single shared spelling of both directions.

   Emission policy: non-finite floats have no JSON representation and are
   emitted as [null]; parsing maps [null] back to [Null] (callers that
   expect a float treat it as nan — see {!to_float}). Integers survive a
   round trip exactly; floats go through ["%.9g"]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Flt of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let buf_add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr x = if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

let rec buf_add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Flt x -> Buffer.add_string b (float_repr x)
  | Str s -> buf_add_string b s
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          buf_add b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_string b k;
          Buffer.add_char b ':';
          buf_add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  buf_add b v;
  Buffer.contents b

(* ---- parsing ---- *)

exception Parse_error of string

let parse_fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some g when g = ch -> c.pos <- c.pos + 1
  | Some g -> parse_fail "at %d: expected %C, found %C" c.pos ch g
  | None -> parse_fail "at %d: expected %C, found end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail "at %d: unrecognised literal" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.src then parse_fail "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if c.pos >= String.length c.src then parse_fail "unterminated escape";
        let e = c.src.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char b e; loop ()
        | 'n' -> Buffer.add_char b '\n'; loop ()
        | 'r' -> Buffer.add_char b '\r'; loop ()
        | 't' -> Buffer.add_char b '\t'; loop ()
        | 'b' -> Buffer.add_char b '\b'; loop ()
        | 'f' -> Buffer.add_char b '\012'; loop ()
        | 'u' ->
            if c.pos + 4 > String.length c.src then parse_fail "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> parse_fail "bad \\u escape %S" hex
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some code ->
                (* non-ASCII escapes: emit UTF-8 (the writer never produces
                   them, but be a tolerant reader) *)
                if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end);
            loop ()
        | e -> parse_fail "bad escape \\%C" e)
    | ch -> Buffer.add_char b ch; loop ()
  in
  loop ()

(* Deep nesting is never produced by our writers but arrives from fuzzed
   or adversarial inputs; bound the recursion so a "[[[[..." bomb raises
   [Parse_error] instead of overflowing the stack. *)
let max_depth = 512

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && numeric c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.src start (c.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Flt f
      | None -> parse_fail "at %d: bad number %S" start tok)

let rec parse_value depth c =
  if depth > max_depth then
    parse_fail "at %d: nesting deeper than %d" c.pos max_depth;
  skip_ws c;
  match peek c with
  | None -> parse_fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        expect c '}';
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value (depth + 1) c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> expect c ','; members ()
          | _ -> expect c '}'
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        expect c ']';
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          items := parse_value (depth + 1) c :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> expect c ','; elements ()
          | _ -> expect c ']'
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value 0 c in
  skip_ws c;
  if c.pos <> String.length s then
    parse_fail "trailing input at offset %d" c.pos;
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Flt f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some Float.nan  (* the writer's spelling of a non-finite float *)
  | _ -> None

let to_string_value = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None

let get_int key v = Option.bind (member key v) to_int
let get_float key v = Option.bind (member key v) to_float
let get_string key v = Option.bind (member key v) to_string_value
