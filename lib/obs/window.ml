(* Rolling-window aggregator: a ring of per-interval slots, each holding
   counter deltas and histogram deltas, so a long-lived daemon can answer
   "what happened in the last 60 s" instead of replaying lifetime sums.
   Slots are keyed by the absolute interval index [floor(now / slot_s)]
   — writing into a slot whose stamp is stale resets it first, so idle
   gaps age out without a background sweeper thread. Reads merge the
   still-live slots on demand (histograms merge bucket-wise like {!Hist},
   which is also what makes two windows mergeable slot-by-slot).

   Like a {!Sink}, a window is not thread-safe: the serve/fleet daemons
   record into theirs under the same lock that guards their counters. *)

type slot = {
  mutable stamp : int;  (* absolute interval index; -1 = never written *)
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

type t = { slot_s : float; slots : slot array }

let create ?(slots = 12) ?(slot_s = 5.) () =
  if slots < 1 then invalid_arg "Window.create: slots must be >= 1";
  if not (slot_s > 0.) then invalid_arg "Window.create: slot_s must be positive";
  {
    slot_s;
    slots =
      Array.init slots (fun _ ->
          { stamp = -1; counters = Hashtbl.create 8; hists = Hashtbl.create 8 });
  }

let n_slots t = Array.length t.slots
let slot_seconds t = t.slot_s
let window_s t = t.slot_s *. float_of_int (n_slots t)
let epoch t now = int_of_float (Float.floor (now /. t.slot_s))

let clear_slot s =
  Hashtbl.reset s.counters;
  Hashtbl.reset s.hists

(* The slot covering [now], reset first if its last write was a different
   interval (the ring reuses slots modulo its length). *)
let slot_for t ~now =
  let k = epoch t now in
  let s = t.slots.(k mod n_slots t) in
  if s.stamp <> k then begin
    clear_slot s;
    s.stamp <- k
  end;
  s

let add t ~now name by =
  let s = slot_for t ~now in
  match Hashtbl.find_opt s.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add s.counters name (ref by)

let incr t ~now name = add t ~now name 1

let observe t ~now name ~bounds x =
  let s = slot_for t ~now in
  let h =
    match Hashtbl.find_opt s.hists name with
    | Some h -> h
    | None ->
        let h = Hist.make ~bounds in
        Hashtbl.add s.hists name h;
        h
  in
  Hist.observe h x

(* A slot is live at [now] when its interval is one of the last [n]. *)
let live t ~now s = s.stamp >= 0 && s.stamp > epoch t now - n_slots t

let fold_live t ~now f acc =
  Array.fold_left (fun acc s -> if live t ~now s then f acc s else acc) acc t.slots

let total t ~now name =
  fold_live t ~now
    (fun acc s ->
      match Hashtbl.find_opt s.counters name with
      | Some r -> acc + !r
      | None -> acc)
    0

(* Seconds of window actually covered: from the start of the oldest live
   slot to [now], clamped to the nominal span — so early-life rates are
   computed over the time observed, not the full (mostly empty) ring. *)
let covered_s t ~now =
  let oldest =
    fold_live t ~now
      (fun acc s -> match acc with None -> Some s.stamp | Some o -> Some (min o s.stamp))
      None
  in
  match oldest with
  | None -> 0.
  | Some stamp ->
      Float.min (window_s t) (Float.max t.slot_s (now -. (float_of_int stamp *. t.slot_s)))

let rate t ~now name =
  let c = covered_s t ~now in
  if c <= 0. then 0. else float_of_int (total t ~now name) /. c

(* Bucket-wise merge of the live per-slot histograms under [name]; None
   when no live slot observed it. All observers of one name must use the
   same bounds (the {!Registry.observe} contract). *)
let merged_hist t ~now name =
  fold_live t ~now
    (fun acc s ->
      match Hashtbl.find_opt s.hists name with
      | None -> acc
      | Some h -> (
          match acc with
          | None -> Some (Hist.copy h)
          | Some into ->
              Hist.merge_into ~into h;
              Some into))
    None

let quantile t ~now name q =
  match merged_hist t ~now name with
  | None -> Float.nan
  | Some h -> Hist.quantile h q

let count t ~now name =
  match merged_hist t ~now name with None -> 0 | Some h -> Hist.count h

(* Slot-by-slot merge keyed on absolute stamps: same-interval slots add,
   older src intervals only land where they don't evict something newer.
   Associative and commutative for windows with identical geometry. *)
let merge_into ~into src =
  if into.slot_s <> src.slot_s || n_slots into <> n_slots src then
    invalid_arg "Window.merge_into: slot geometry differs";
  Array.iter
    (fun s ->
      if s.stamp >= 0 then begin
        let d = into.slots.(s.stamp mod n_slots into) in
        if d.stamp < s.stamp then begin
          clear_slot d;
          d.stamp <- s.stamp
        end;
        if d.stamp = s.stamp then begin
          Hashtbl.iter (fun name r ->
            match Hashtbl.find_opt d.counters name with
            | Some dr -> dr := !dr + !r
            | None -> Hashtbl.add d.counters name (ref !r))
            s.counters;
          Hashtbl.iter
            (fun name h ->
              match Hashtbl.find_opt d.hists name with
              | Some dh -> Hist.merge_into ~into:dh h
              | None -> Hashtbl.add d.hists name (Hist.copy h))
            s.hists
        end
      end)
    src.slots
