(** Self-contained JSON values — emitter and parser, shared by everything
    in this repository that writes or reads machine-readable artefacts
    (telemetry JSONL, decision ledgers, [BENCH_obs.json]). No external
    JSON package may be used anywhere in the tree.

    Non-finite floats emit as [null]; a parsed [Null] reads back as [nan]
    through {!to_float}. Integers round-trip exactly; floats pass through
    ["%.9g"]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Flt of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val float_repr : float -> string
(** The emitter's float spelling (["%.9g"], non-finite -> ["null"]). *)

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input, trailing characters, or
    nesting deeper than 512 levels (our writers stay far below this;
    the bound keeps adversarial ["[[[["-bombs from overflowing the
    stack — pinned by the fuzz suite). *)

val parse_opt : string -> t option

(** {2 Accessors} — all return [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option

val to_float : t -> float option
(** Accepts [Flt], [Int] (widened) and [Null] (as [nan]). *)

val to_string_value : t -> string option
val to_list : t -> t list option
val get_int : string -> t -> int option
val get_float : string -> t -> float option
val get_string : string -> t -> string option
