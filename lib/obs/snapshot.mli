(** Per-cycle scheduler snapshots — the paper's "historical record of all
    critical parameters" (Section IV) as a sampled time series (the
    per-decision log is [Agrid_core.Trace]). Stored in a bounded ring so a
    long run retains the most recent window at fixed memory. *)

type t = {
  clock : int;
  mapped : int;  (** subtasks mapped so far *)
  t100 : int;  (** primary versions mapped so far *)
  pools_built : int;  (** candidate pools built since the last snapshot *)
  pool_candidates : int;  (** candidates across those pools *)
  energy : float array;  (** per-machine energy remaining *)
}

val pp : Format.formatter -> t -> unit

(** Bounded ring buffer; pushes beyond capacity overwrite the oldest
    entry. *)
module Ring : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument on a nonpositive capacity. *)

  val push : 'a t -> 'a -> unit
  val capacity : 'a t -> int
  val length : 'a t -> int
  val pushed : 'a t -> int
  (** Lifetime pushes, retained or not. *)

  val dropped : 'a t -> int

  val to_list : 'a t -> 'a list
  (** Retained window, oldest first. *)

  val iter : ('a -> unit) -> 'a t -> unit
end
