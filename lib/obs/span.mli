(** Span profiler: named wall-clock sections aggregated in place — count,
    total, min, max, plus a log-bucket duration histogram for percentile
    estimates. Per-invocation cost is two clock reads and one histogram
    insert; nothing is allocated per call after a name's first use. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall-clock duration under the name. The
    duration is recorded even when the thunk raises. *)

val record : t -> string -> float -> unit
(** Record an externally measured duration (seconds). *)

type stats = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;  (** histogram estimate; see {!Hist.quantile} *)
  p95_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
}

val stats : t -> stats list
(** Name-sorted. *)

val cardinal : t -> int

val merge_into : into:t -> t -> unit
(** Aggregate-wise merge (associative, commutative) for per-domain span
    tables. *)

val pp_stats : Format.formatter -> stats -> unit
