/* Monotonic nanosecond clock for the span profiler.

   Unix.gettimeofday has microsecond resolution: every span under ~1 us
   records as 0.0 or as a 1 us quantization tick, which is exactly the
   scale the scoring hot path now lives at. CLOCK_MONOTONIC resolves
   tens of nanoseconds and never jumps with wall-clock adjustments.

   The native stub is [@noalloc] with an unboxed int64 return, so
   reading the clock performs no OCaml heap allocation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t agrid_clock_monotonic_ns_native(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value agrid_clock_monotonic_ns_bytecode(value unit)
{
  return caml_copy_int64(agrid_clock_monotonic_ns_native(unit));
}
