(** Hardened Unix-domain socket transport shared by [agrid serve] and the
    fleet router's front end.

    The accept loop never crashes the daemon on connection-level trouble:
    EINTR retries the accept, other accept failures and mid-connection
    read/write errors drop that one connection and keep listening. Each
    dropped connection or failed response write increments an obs counter
    (default ["serve/conn_errors"]) so flapping clients are visible in the
    telemetry export. *)

type t
(** A bound, listening Unix-domain socket. *)

val listen : path:string -> (t, string) result
(** Bind and listen on [path], unlinking any stale socket file first.
    [Error] carries a human-readable reason (the caller decides the exit
    code). *)

val shutdown : t -> unit
(** Close the listening socket and unlink its path. Safe to call while an
    {!accept_loop} is blocked in accept — the loop exits. *)

val pump :
  stop:(unit -> bool) ->
  on_line:(string -> unit) ->
  in_channel ->
  [ `Eof | `Read_error | `Stopped ]
(** Feed each line of [ic] to [on_line] until end of input, a read error
    (signal-interrupted or reset by the peer) or [stop ()] turns true
    (checked between lines). Never raises. *)

val request : path:string -> string -> (string, string) result
(** One-shot client: connect to the daemon at [path], write [line] (a
    newline is appended) and read back exactly one response line — how
    [agrid top] polls a [kind:"stats"] snapshot. Never raises; the
    [Error] is a human-readable reason. *)

val accept_loop :
  ?obs:Agrid_obs.Sink.t ->
  ?counter:string ->
  stop:(unit -> bool) ->
  handle:
    (respond:(string -> unit) ->
     ic:in_channel ->
     [ `Eof | `Read_error | `Stopped ]) ->
  t ->
  unit
(** Accept connections one at a time until [stop ()] turns true or the
    socket is {!shutdown}. For each connection, [handle] gets the client's
    input channel and a [respond] that writes one line and flushes
    (write failures are counted, never raised). The connection's fd is
    flushed and closed after [handle] returns, whatever it returns. *)
