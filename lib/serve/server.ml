(* The scenario service. Concurrency layout:

   - producers (stdin/socket reader) call submit, which parses, assigns
     an id and try_pushes onto the bounded Chan — never blocking; a full
     buffer becomes a typed queue_full response (backpressure);
   - one controller domain runs Parallel.run_workers over `workers`
     persistent worker loops, each popping jobs until seal/close;
   - `lock` guards all mutable counters and every pool-sink operation
     (sinks are single-domain; the mutex serializes producer and worker
     access), `idle` signals outstanding = 0, `out_lock` serializes
     respond callbacks. Lock order: out_lock before lock, never the
     reverse. *)

module Sink = Agrid_obs.Sink
module Window = Agrid_obs.Window
module Trace = Agrid_obs.Trace
module Chan = Agrid_par.Parallel.Chan

type entry = {
  e_id : int;
  e_tag : string option;
  e_spec : Job.spec;
  e_submitted : float;
  e_respond : string -> unit;
}

(* Per-tenant admission bookkeeping (guarded by t.lock): outstanding
   jobs now queued or running, lifetime high-water of that count, and
   lifetime quota rejections. *)
type tenant_state = {
  tn_cap : int;
  mutable tn_outstanding : int;
  mutable tn_high_water : int;
  mutable tn_rejected : int;
}

type t = {
  workers : int;
  job_stride : int;
  obs : Sink.t;
  trace : Trace.t option;  (* request tracing, opt-in like the ledger *)
  tenants : (string, tenant_state) Hashtbl.t;
      (* admission caps from [?tenant_caps]; tenants not listed here are
         never capped *)
  window : Window.t;  (* rolling last-60s stats, guarded by [lock] *)
  chan : entry Chan.t;
  lock : Mutex.t;
  idle : Condition.t;
  out_lock : Mutex.t;
  started_at : float;
  mutable next_id : int;
  mutable outstanding : int;  (* accepted jobs queued or in flight *)
  mutable accepted : int;
  mutable completed : int;
  mutable deadline_missed : int;
  mutable errored : int;
  mutable queue_full : int;
  mutable malformed : int;
  mutable draining : int;
  mutable tenant_quota : int;
  mutable dropped : int;
  mutable health : int;
  mutable stats_reqs : int;
  mutable respond_errors : int;
  mutable controller : unit Domain.t option;
  mutable state : [ `Created | `Running | `Stopped ];
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let latency_bounds = [| 0.001; 0.005; 0.02; 0.1; 0.5; 2.; 10. |]

let create ?(obs = Sink.noop) ?trace ?(tenant_caps = []) ?(job_stride = 8)
    ?workers ?(queue_capacity = 64) () =
  let workers =
    match workers with Some w -> w | None -> Agrid_par.Parallel.default_domains ()
  in
  if workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if job_stride < 1 then invalid_arg "Server.create: job_stride must be >= 1";
  let tenants = Hashtbl.create 8 in
  List.iter
    (fun (name, cap) ->
      if name = "" then invalid_arg "Server.create: empty tenant id";
      if cap < 1 then invalid_arg "Server.create: tenant cap must be >= 1";
      if Hashtbl.mem tenants name then
        invalid_arg ("Server.create: duplicate tenant cap for " ^ name);
      Hashtbl.add tenants name
        { tn_cap = cap; tn_outstanding = 0; tn_high_water = 0; tn_rejected = 0 })
    tenant_caps;
  {
    workers;
    job_stride;
    obs;
    trace;
    tenants;
    window = Window.create ();
    chan = Chan.create ~capacity:queue_capacity;
    lock = Mutex.create ();
    idle = Condition.create ();
    out_lock = Mutex.create ();
    started_at = Unix.gettimeofday ();
    next_id = 0;
    outstanding = 0;
    accepted = 0;
    completed = 0;
    deadline_missed = 0;
    errored = 0;
    queue_full = 0;
    malformed = 0;
    draining = 0;
    tenant_quota = 0;
    dropped = 0;
    health = 0;
    stats_reqs = 0;
    respond_errors = 0;
    controller = None;
    state = `Created;
  }

(* Serialize every response; a respond that raises (client hung up) is
   counted, not propagated — it must not kill a worker domain. *)
let send t respond line =
  let failed =
    with_lock t.out_lock (fun () ->
        match respond line with () -> false | exception _ -> true)
  in
  if failed then with_lock t.lock (fun () -> t.respond_errors <- t.respond_errors + 1)

let obs_incr t name = if Sink.enabled t.obs then Sink.incr t.obs name

let tenant_of t (spec : Job.spec) =
  match spec.Job.tenant with
  | None -> None
  | Some name -> Hashtbl.find_opt t.tenants name

(* Release a capped tenant's admission slot (caller holds t.lock). *)
let tenant_release t (spec : Job.spec) =
  match tenant_of t spec with
  | None -> ()
  | Some ts -> ts.tn_outstanding <- ts.tn_outstanding - 1

(* Record a trace event for an entry (caller holds t.lock). A relayed job
   carries the router's trace id; locally submitted jobs derive their
   own from the collector's nonce. *)
let trace_ev t (e : entry) kind =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record ?id:e.e_spec.Job.trace_id tr ~job:e.e_id kind

(* callers hold t.lock *)
let finish_one t =
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then Condition.broadcast t.idle

let run_entry t e =
  let job_sink =
    if Sink.enabled t.obs then Sink.create ~stride:t.job_stride () else Sink.noop
  in
  if t.trace <> None then
    with_lock t.lock (fun () ->
        trace_ev t e
          (Trace.Exec { queue_wait_s = Unix.gettimeofday () -. e.e_submitted }));
  let res = Job.run ~obs:job_sink e.e_spec in
  let latency = Unix.gettimeofday () -. e.e_submitted in
  send t e.e_respond (Codec.result_line ~id:e.e_id ~tag:e.e_tag ~latency_s:latency res);
  with_lock t.lock (fun () ->
      t.completed <- t.completed + 1;
      let status_counter =
        match res.Job.status with
        | Job.Ok_done -> "serve/completed"
        | Job.Deadline_missed ->
            t.deadline_missed <- t.deadline_missed + 1;
            "serve/deadline_missed"
        | Job.Errored _ ->
            t.errored <- t.errored + 1;
            "serve/errored"
      in
      let now = Unix.gettimeofday () in
      Window.incr t.window ~now "completed";
      Window.observe t.window ~now "latency_s" ~bounds:latency_bounds latency;
      trace_ev t e (Trace.Respond { outcome = Job.status_to_string res.Job.status });
      if Sink.enabled t.obs then begin
        Sink.merge_into ~into:t.obs job_sink;
        Sink.incr t.obs status_counter;
        Sink.observe t.obs "serve/latency_s" ~bounds:latency_bounds latency
      end;
      tenant_release t e.e_spec;
      finish_one t)

let rec worker_loop t =
  match Chan.pop t.chan with
  | None -> ()
  | Some e ->
      run_entry t e;
      worker_loop t

let start t =
  with_lock t.lock (fun () ->
      match t.state with
      | `Running -> ()
      | `Stopped -> invalid_arg "Server.start: already shut down"
      | `Created ->
          t.state <- `Running;
          t.controller <-
            Some
              (Domain.spawn (fun () ->
                   Agrid_par.Parallel.run_workers ~domains:t.workers ~n:t.workers
                     (fun _ -> worker_loop t))))

let health_payload t ~id =
  with_lock t.lock (fun () ->
      t.health <- t.health + 1;
      obs_incr t "serve/health";
      Codec.health_line ~id
        ~uptime_s:(Unix.gettimeofday () -. t.started_at)
        ~queue_depth:(Chan.length t.chan) ~workers:t.workers ~accepted:t.accepted
        ~completed:t.completed)

let stats_payload t ~id =
  with_lock t.lock (fun () ->
      t.stats_reqs <- t.stats_reqs + 1;
      obs_incr t "serve/stats";
      let now = Unix.gettimeofday () in
      let q p =
        match Window.merged_hist t.window ~now "latency_s" with
        | None -> Float.nan
        | Some h -> Agrid_obs.Hist.quantile h p
      in
      let trace_events, trace_dropped, trace_exemplars =
        match t.trace with
        | None -> (0, 0, 0)
        | Some tr ->
            (Trace.length tr, Trace.dropped tr, List.length (Trace.exemplars tr))
      in
      Codec.stats_line
        {
          Codec.ss_role = "serve";
          ss_id = id;
          ss_uptime_s = now -. t.started_at;
          ss_queue_depth = Chan.length t.chan;
          ss_in_flight = t.outstanding;
          ss_workers = t.workers;
          ss_accepted = t.accepted;
          ss_completed = t.completed;
          ss_window_s = Window.window_s t.window;
          ss_rate = Window.rate t.window ~now "completed";
          ss_p50_s = q 0.5;
          ss_p95_s = q 0.95;
          ss_p99_s = q 0.99;
          ss_backends = [];
          ss_trace_events = trace_events;
          ss_trace_dropped = trace_dropped;
          ss_trace_exemplars = trace_exemplars;
        })

let submit t ~respond line =
  let id =
    with_lock t.lock (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        id)
  in
  match Codec.parse_request line with
  | Error detail ->
      with_lock t.lock (fun () ->
          t.malformed <- t.malformed + 1;
          obs_incr t "serve/malformed");
      send t respond (Codec.rejected_line ~id ~reason:`Malformed ~detail ())
  | Ok Codec.Health -> send t respond (health_payload t ~id)
  | Ok Codec.Stats -> send t respond (stats_payload t ~id)
  | Ok (Codec.Submit spec) -> (
      (* Reserve the tenant's admission slot before touching the queue so
         a capped tenant can never overshoot, even with racing producers;
         a queue rejection below hands the slot back. *)
      let quota_cap =
        with_lock t.lock (fun () ->
            match tenant_of t spec with
            | None -> None
            | Some ts ->
                if ts.tn_outstanding >= ts.tn_cap then begin
                  ts.tn_rejected <- ts.tn_rejected + 1;
                  t.tenant_quota <- t.tenant_quota + 1;
                  obs_incr t "serve/tenant_quota";
                  Some ts.tn_cap
                end
                else begin
                  ts.tn_outstanding <- ts.tn_outstanding + 1;
                  if ts.tn_outstanding > ts.tn_high_water then
                    ts.tn_high_water <- ts.tn_outstanding;
                  None
                end)
      in
      match quota_cap with
      | Some cap ->
          send t respond
            (Codec.rejected_line ~tag:spec.Job.tag ~id ~reason:`Tenant_quota
               ~detail:
                 (Fmt.str "tenant %S at its admission cap (%d outstanding)"
                    (Option.value spec.Job.tenant ~default:"") cap)
               ())
      | None -> (
          let e =
            {
              e_id = id;
              e_tag = spec.Job.tag;
              e_spec = spec;
              e_submitted = Unix.gettimeofday ();
              e_respond = respond;
            }
          in
          match Chan.try_push t.chan e with
          | `Accepted depth ->
              with_lock t.lock (fun () ->
                  t.outstanding <- t.outstanding + 1;
                  t.accepted <- t.accepted + 1;
                  trace_ev t e Trace.Enqueue;
                  if Sink.enabled t.obs then begin
                    Sink.incr t.obs "serve/accepted";
                    Sink.max_gauge t.obs "serve/queue_depth" (float_of_int depth)
                  end)
          | `Rejected `Full ->
              with_lock t.lock (fun () ->
                  tenant_release t spec;
                  t.queue_full <- t.queue_full + 1;
                  obs_incr t "serve/queue_full");
              send t respond
                (Codec.rejected_line ~tag:spec.Job.tag ~id ~reason:`Queue_full
                   ~detail:
                     (Fmt.str "queue at capacity (%d queued)" (Chan.length t.chan))
                   ())
          | `Rejected `Closed ->
              with_lock t.lock (fun () ->
                  tenant_release t spec;
                  t.draining <- t.draining + 1;
                  obs_incr t "serve/draining");
              send t respond
                (Codec.rejected_line ~tag:spec.Job.tag ~id ~reason:`Draining
                   ~detail:"server is shutting down" ())))

let quiesce t =
  with_lock t.lock (fun () ->
      while t.outstanding > 0 do
        Condition.wait t.idle t.lock
      done)

let join_pool t =
  let controller = with_lock t.lock (fun () ->
      let c = t.controller in
      t.controller <- None;
      t.state <- `Stopped;
      c)
  in
  Option.iter Domain.join controller

let drain t =
  (match with_lock t.lock (fun () -> t.state) with
  | `Created -> start t
  | `Running | `Stopped -> ());
  Chan.seal t.chan;
  quiesce t;
  join_pool t

let stop t =
  let abandoned = Chan.close t.chan in
  List.iter
    (fun e ->
      with_lock t.lock (fun () ->
          t.dropped <- t.dropped + 1;
          obs_incr t "serve/dropped";
          trace_ev t e (Trace.Respond { outcome = "dropped" });
          tenant_release t e.e_spec;
          finish_one t);
      send t e.e_respond (Codec.dropped_line ~id:e.e_id ~tag:e.e_tag))
    abandoned;
  quiesce t;
  join_pool t;
  List.length abandoned

type stats = {
  s_requests : int;
  s_accepted : int;
  s_completed : int;
  s_deadline_missed : int;
  s_errored : int;
  s_queue_full : int;
  s_malformed : int;
  s_draining : int;
  s_tenant_quota : int;
  s_dropped : int;
  s_health : int;
  s_stats : int;
  s_respond_errors : int;
  s_queue_high_water : int;
}

let stats t =
  with_lock t.lock (fun () ->
      {
        s_requests = t.next_id;
        s_accepted = t.accepted;
        s_completed = t.completed;
        s_deadline_missed = t.deadline_missed;
        s_errored = t.errored;
        s_queue_full = t.queue_full;
        s_malformed = t.malformed;
        s_draining = t.draining;
        s_tenant_quota = t.tenant_quota;
        s_dropped = t.dropped;
        s_health = t.health;
        s_stats = t.stats_reqs;
        s_respond_errors = t.respond_errors;
        s_queue_high_water = Chan.high_water t.chan;
      })

let tenant_lookup t name f =
  with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.tenants name with None -> 0 | Some ts -> f ts)

let tenant_outstanding t name = tenant_lookup t name (fun ts -> ts.tn_outstanding)
let tenant_high_water t name = tenant_lookup t name (fun ts -> ts.tn_high_water)
let tenant_rejected t name = tenant_lookup t name (fun ts -> ts.tn_rejected)
let tenant_cap t name = tenant_lookup t name (fun ts -> ts.tn_cap)

let queue_depth t = Chan.length t.chan
let n_workers t = t.workers
let uptime_s t = Unix.gettimeofday () -. t.started_at
let trace t = t.trace

let pp_stats ppf s =
  Fmt.pf ppf
    "requests %d accepted %d completed %d (deadline_missed %d errored %d) \
     rejected (full %d malformed %d draining %d tenant_quota %d) dropped %d \
     health %d stats %d respond_errors %d queue_high_water %d"
    s.s_requests s.s_accepted s.s_completed s.s_deadline_missed s.s_errored
    s.s_queue_full s.s_malformed s.s_draining s.s_tenant_quota s.s_dropped
    s.s_health s.s_stats s.s_respond_errors s.s_queue_high_water
