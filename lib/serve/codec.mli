(** The scenario service's wire format: one JSON object per line in both
    directions.

    {b Requests} carry [{"schema":"agrid-job/1","kind":...}]:
    - [kind:"job"] — a {!Job.spec}: a [scenario] object (see
      {!Agrid_workload.Serialize.scenario_ref_of_json}) plus optional
      scheduler fields ([alpha], [beta], [heuristic], [delta_t],
      [horizon], [mode], [events] as an {!Agrid_churn.Event.parse_trace}
      string, [deadline_ms], [tag]) defaulting to the CLI's defaults.
    - [kind:"health"] — answered synchronously, never queued.

    {b Responses} carry [{"schema":"agrid-job-result/1","type":...,"id":N}]
    where [id] is the server's monotone request id (every request gets
    one, malformed included): [type] is ["result"], ["rejected"] (reason
    ["queue_full"], ["malformed"] or ["draining"]), ["dropped"] (queued
    job discarded by a hard shutdown) or ["health"].

    All parsers are total — hostile input comes back as [Error], pinned
    by the fuzz suite's mutation corpus. *)

val schema : string
(** ["agrid-job/1"] *)

val result_schema : string
(** ["agrid-job-result/1"] *)

type request = Submit of Job.spec | Health

val parse_request : string -> (request, string) result
(** Parse one request line. Never raises. *)

val job_to_json : Job.spec -> Agrid_obs.Json.t
(** The full envelope (schema/kind and every field, defaults included),
    such that [parse_request (Json.to_string (job_to_json j))] returns
    [Ok (Submit j)] — pinned by the round-trip property suite. *)

(** {2 Response lines} — each returns one line without the trailing
    newline. *)

val result_line : id:int -> tag:string option -> latency_s:float -> Job.result -> string
(** The per-job response: status, T100/mapped/AET, TEC (as both a ["%.9g"]
    float and an exact [tec_bits] hex spelling), the per-machine energy
    ledger, final clock, churn discard/sunk totals, wall and queue+run
    latency seconds. *)

val rejected_line :
  id:int -> reason:[ `Queue_full | `Malformed | `Draining ] -> detail:string -> string

val dropped_line : id:int -> tag:string option -> string

val health_line :
  id:int ->
  uptime_s:float ->
  queue_depth:int ->
  workers:int ->
  accepted:int ->
  completed:int ->
  string
