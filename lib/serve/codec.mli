(** The scenario service's wire format: one JSON object per line in both
    directions.

    {b Requests} carry [{"schema":"agrid-job/1","kind":...}]:
    - [kind:"job"] — a {!Job.spec}: a [scenario] object (see
      {!Agrid_workload.Serialize.scenario_ref_of_json}) plus optional
      scheduler fields ([alpha], [beta], [heuristic], [delta_t],
      [horizon], [mode], [events] as an {!Agrid_churn.Event.parse_trace}
      string, [deadline_ms], [tag], [tenant]) defaulting to the CLI's
      defaults.
    - [kind:"health"] — answered synchronously, never queued.
    - [kind:"stats"] — answered synchronously with an [agrid-stats/1]
      snapshot line (rolling-window rates/quantiles, queue and trace-ring
      occupancy); what [agrid top] polls.

    {b Responses} carry [{"schema":"agrid-job-result/1","type":...,"id":N}]
    where [id] is the server's monotone request id (every request gets
    one, malformed included): [type] is ["result"], ["rejected"] (reason
    ["queue_full"], ["malformed"], ["draining"], ["tenant_quota"] or —
    from the fleet router — ["all_backends_saturated"]), ["dropped"] (queued job
    discarded by a hard shutdown), ["maybe_executed"] (fleet router: the
    backend holding this in-flight job died, so under at-most-once
    semantics the job is not re-run) or ["health"].

    All parsers are total — hostile input comes back as [Error], pinned
    by the fuzz suite's mutation corpus. *)

val schema : string
(** ["agrid-job/1"] *)

val result_schema : string
(** ["agrid-job-result/1"] *)

val stats_schema : string
(** ["agrid-stats/1"] *)

type request = Submit of Job.spec | Health | Stats

val parse_request : string -> (request, string) result
(** Parse one request line. Never raises. *)

val job_to_json : Job.spec -> Agrid_obs.Json.t
(** The full envelope (schema/kind and every field, defaults included),
    such that [parse_request (Json.to_string (job_to_json j))] returns
    [Ok (Submit j)] — pinned by the round-trip property suite. *)

(** {2 Response lines} — each returns one line without the trailing
    newline. *)

val result_line : id:int -> tag:string option -> latency_s:float -> Job.result -> string
(** The per-job response: status, T100/mapped/AET, TEC (as both a ["%.9g"]
    float and an exact [tec_bits] hex spelling), the per-machine energy
    ledger, final clock, churn discard/sunk totals, wall and queue+run
    latency seconds. *)

val rejected_line :
  ?tag:string option ->
  id:int ->
  reason:[ `Queue_full | `Malformed | `Draining | `All_backends_saturated | `Tenant_quota ] ->
  detail:string ->
  unit ->
  string
(** [?tag] (default [None]) echoes the job's tag on [queue_full] /
    [draining] rejections so a relaying router can correlate the line to
    its in-flight entry; [malformed] rejections never have one. *)

val dropped_line : id:int -> tag:string option -> string

val maybe_executed_line :
  id:int -> tag:string option -> backend:string -> detail:string -> string
(** The fleet router's at-most-once ambiguity report: [backend] died with
    this job in flight, so it may or may not have executed and is not
    re-run. Carries [status:"maybe_executed"] alongside the type. *)

val health_line :
  id:int ->
  uptime_s:float ->
  queue_depth:int ->
  workers:int ->
  accepted:int ->
  completed:int ->
  string

val fleet_health_line :
  id:int ->
  uptime_s:float ->
  queue_depth:int ->
  backends:(string * string * int) list ->
  accepted:int ->
  completed:int ->
  string
(** The router's answer to a health probe: per-backend
    [(name, health, in_flight)] triples instead of a worker count. *)

(** {2 agrid-stats/1 live snapshots} — what a [kind:"stats"] request gets
    back: rolling-window (not lifetime) rates and latency quantiles plus
    queue/in-flight/trace-ring occupancy. *)

type stats_snapshot = {
  ss_role : string;  (** ["serve"] or ["router"] *)
  ss_id : int;
  ss_uptime_s : float;
  ss_queue_depth : int;
  ss_in_flight : int;
  ss_workers : int;  (** serve: worker domains; router: backend count *)
  ss_accepted : int;
  ss_completed : int;
  ss_window_s : float;  (** nominal rolling-window span, seconds *)
  ss_rate : float;  (** completions per second over the window *)
  ss_p50_s : float;  (** rolling latency quantiles; NaN = nothing observed *)
  ss_p95_s : float;
  ss_p99_s : float;
  ss_backends : (string * string * int) list;
      (** router only: [(name, health, in_flight)]; [[]] for serve *)
  ss_trace_events : int;  (** trace-ring occupancy; 0 when tracing is off *)
  ss_trace_dropped : int;
  ss_trace_exemplars : int;
}

val stats_line : stats_snapshot -> string

val parse_stats : string -> (stats_snapshot, string) result
(** Total, like every parser here. Non-finite quantiles travel as JSON
    [null] and come back as NaN. *)

val reason_to_string :
  [ `Queue_full | `Malformed | `Draining | `All_backends_saturated | `Tenant_quota ] -> string

val reason_of_string :
  string -> [ `Queue_full | `Malformed | `Draining | `All_backends_saturated | `Tenant_quota ] option

(** {2 Response parsing} — the router's view of a backend's lines. *)

type response = {
  r_type : [ `Result | `Rejected | `Dropped | `Health | `Maybe_executed ];
  r_id : int;  (** the {e sender's} id — backend-local when relayed *)
  r_tag : string option;
  r_status : string option;  (** results: ["ok"] / ["deadline_missed"] / ["errored"] *)
  r_reason : [ `Queue_full | `Malformed | `Draining | `All_backends_saturated | `Tenant_quota ] option;
      (** present exactly when [r_type = `Rejected] *)
  r_json : Agrid_obs.Json.t;  (** the full parsed line, for relaying *)
}

val parse_response : string -> (response, string) result
(** Parse one response line. Never raises — total on hostile bytes, like
    {!parse_request}. *)

val with_identity : id:int -> tag:string option -> backend:string -> Agrid_obs.Json.t -> Agrid_obs.Json.t
(** Rewrite a relayed response's [id] and [tag] to the router's upstream
    identity and append the backend's name; every other field ([tec_bits]
    included) passes through untouched. *)
