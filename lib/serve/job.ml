(* One scheduling job for the scenario service: realize a scenario
   reference, run the SLRH loop (through the churn engine when the spec
   carries an event timeline) and summarize the final schedule. The
   deadline is cooperative: a cancel closure handed to the SLRH params is
   polled once per timestep, so a fired deadline ends the run at a step
   boundary with the schedule as built so far — no preemption, no torn
   state. *)

module Serialize = Agrid_workload.Serialize
module Workload = Agrid_workload.Workload
module Slrh = Agrid_core.Slrh
module Dynamic = Agrid_core.Dynamic
module Schedule = Agrid_sched.Schedule
module Objective = Agrid_core.Objective
module Sink = Agrid_obs.Sink

type spec = {
  tag : string option;
  trace_id : string option;  (* correlation id stamped by a relaying router *)
  tenant : string option;  (* owning tenant, for per-tenant admission caps *)
  scenario : Serialize.scenario_ref;
  alpha : float;
  beta : float;
  variant : Slrh.variant;
  delta_t : int;
  horizon : int;
  mode : Slrh.mode;
  adapt : Agrid_core.Adapt.spec option;
  events : Agrid_churn.Event.t list;
  deadline_ms : float option;
}

let default scenario =
  {
    tag = None;
    trace_id = None;
    tenant = None;
    scenario;
    alpha = 0.4;
    beta = 0.3;
    variant = Slrh.V1;
    delta_t = 10;
    horizon = 100;
    mode = `Soa;
    adapt = None;
    events = [];
    deadline_ms = None;
  }

type status = Ok_done | Deadline_missed | Errored of string

let status_to_string = function
  | Ok_done -> "ok"
  | Deadline_missed -> "deadline_missed"
  | Errored _ -> "errored"

type result = {
  status : status;
  completed : bool;
  t100 : int;
  mapped : int;
  aet : int;
  tec : float;
  energy_remaining : float array;
  final_clock : int;
  n_discarded : int;
  sunk_energy : float;
  wall_seconds : float;
}

let errored msg =
  {
    status = Errored msg;
    completed = false;
    t100 = 0;
    mapped = 0;
    aet = 0;
    tec = 0.;
    energy_remaining = [||];
    final_clock = 0;
    n_discarded = 0;
    sunk_energy = 0.;
    wall_seconds = 0.;
  }

(* A deadline of <= 0 ms fires deterministically before the first timestep
   — the soak harness's "impossible deadline" relies on never touching the
   clock for it, so the resulting empty schedule is reproducible. *)
let cancel_for ~t0 ~fired = function
  | None -> fun () -> false
  | Some ms when ms <= 0. ->
      fun () ->
        fired := true;
        true
  | Some ms ->
      let budget = ms /. 1000. in
      fun () ->
        if Unix.gettimeofday () -. t0 >= budget then begin
          fired := true;
          true
        end
        else false

let summarize ~status ~completed ~final_clock ~n_discarded ~sunk_energy ~wall
    sched =
  let n = Workload.n_machines (Schedule.workload sched) in
  {
    status;
    completed;
    t100 = Schedule.n_primary sched;
    mapped = Schedule.n_mapped sched;
    aet = Schedule.aet sched;
    tec = Schedule.tec sched;
    energy_remaining = Array.init n (Schedule.energy_remaining sched);
    final_clock;
    n_discarded;
    sunk_energy;
    wall_seconds = wall;
  }

let run ?(obs = Sink.noop) spec =
  let t0 = Unix.gettimeofday () in
  let fired = ref false in
  match
    let workload = Serialize.realize spec.scenario in
    let weights = Objective.make_weights ~alpha:spec.alpha ~beta:spec.beta in
    let params =
      {
        (Slrh.default_params ~variant:spec.variant weights) with
        Slrh.delta_t = spec.delta_t;
        horizon = spec.horizon;
        mode = spec.mode;
        obs;
        cancel = cancel_for ~t0 ~fired spec.deadline_ms;
      }
    in
    (* a fresh controller per job: Adapt.t is mutable run state. An
       invalid spec raises Invalid_argument, caught below as [Errored]
       (the codec validates up front, so that path means a caller built
       the spec by hand). *)
    let params =
      match spec.adapt with
      | None -> params
      | Some aspec ->
          {
            params with
            Slrh.adapt = Some (Agrid_core.Adapt.create aspec weights);
            feas_mode = Agrid_core.Adapt.feas_mode aspec;
          }
    in
    match spec.events with
    | [] ->
        let out = Slrh.run params workload in
        `Static out
    | events -> `Churn (Dynamic.run_churn params workload events)
  with
  | exception Serialize.Parse_error { line; message } ->
      errored (Fmt.str "scenario parse error at line %d: %s" line message)
  | exception Invalid_argument msg -> errored msg
  | exception Failure msg -> errored msg
  | outcome -> (
      let wall = Unix.gettimeofday () -. t0 in
      let status = if !fired then Deadline_missed else Ok_done in
      match outcome with
      | `Static (out : Slrh.outcome) ->
          summarize ~status ~completed:out.Slrh.completed
            ~final_clock:out.Slrh.final_clock ~n_discarded:0 ~sunk_energy:0.
            ~wall out.Slrh.schedule
      | `Churn out ->
          summarize ~status ~completed:out.Agrid_churn.Engine.completed
            ~final_clock:out.Agrid_churn.Engine.final_clock
            ~n_discarded:out.Agrid_churn.Engine.n_discarded
            ~sunk_energy:out.Agrid_churn.Engine.sunk_energy ~wall
            out.Agrid_churn.Engine.schedule)

let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal_modulo_wall a b =
  a.status = b.status && a.completed = b.completed && a.t100 = b.t100
  && a.mapped = b.mapped && a.aet = b.aet
  && float_bits_equal a.tec b.tec
  && Array.length a.energy_remaining = Array.length b.energy_remaining
  && Array.for_all2 float_bits_equal a.energy_remaining b.energy_remaining
  && a.final_clock = b.final_clock
  && a.n_discarded = b.n_discarded
  && float_bits_equal a.sunk_energy b.sunk_energy
