(** The scenario service: a queued scheduling-job daemon.

    One server owns a bounded FIFO job queue ({!Agrid_par.Parallel.Chan})
    and a persistent pool of worker domains. Producers call {!submit}
    with raw request lines; the server assigns every request (malformed
    and health included) a monotone id, answers health synchronously,
    rejects jobs over capacity with a typed [queue_full] line (producers
    never block — backpressure, not buffering), and streams one
    {!Codec.result_line} per accepted job through the caller's [respond]
    callback as workers finish. Responses are serialized (one writer at a
    time), so [respond] needs no locking of its own.

    Telemetry: each job runs against a private sink merged into the pool
    sink afterwards, alongside pool-level counters ([serve/accepted],
    [serve/completed], [serve/deadline_missed], [serve/errored],
    [serve/queue_full], [serve/malformed], [serve/tenant_quota],
    [serve/dropped],
    [serve/health], [serve/stats]), the queue-depth high-water gauge
    ([serve/queue_depth]) and a per-job latency histogram
    ([serve/latency_s]). With the default no-op sink all of it is
    inert.

    Introspection: a [kind:"stats"] request is answered synchronously
    with an [agrid-stats/1] snapshot — rolling-window completion rate and
    latency quantiles (an always-on {!Agrid_obs.Window}, ~60 s), queue
    depth, in-flight count and trace-ring occupancy. Request tracing is
    opt-in: pass [?trace] and every accepted job records typed
    {!Agrid_obs.Trace} events (enqueue, exec with queue-wait, respond);
    relayed jobs keep the router-stamped trace id from the wire. *)

type t

val create :
  ?obs:Agrid_obs.Sink.t ->
  ?trace:Agrid_obs.Trace.t ->
  ?tenant_caps:(string * int) list ->
  ?job_stride:int ->
  ?workers:int ->
  ?queue_capacity:int ->
  unit ->
  t
(** A server with its queue, not yet running (see {!start}; {!drain}
    starts lazily, which tests use to exercise deterministic overflow).
    [obs] is the pool sink (default: no-op — inert); [trace] (default:
    none — tracing off, zero cost) collects per-request trace events;
    [tenant_caps] (default none) bounds each listed tenant's outstanding
    (queued or running) jobs — a job whose [tenant] is at its cap is
    rejected with a typed [tenant_quota] line before it ever touches the
    queue, and the slot is reserved atomically so racing producers can
    never overshoot the cap; unlisted tenants and untenanted jobs are
    never capped; [job_stride] (default 8) is the snapshot stride of
    per-job sinks; [workers] (default
    {!Agrid_par.Parallel.default_domains}) sizes the domain pool;
    [queue_capacity] (default 64) bounds the queue.
    @raise Invalid_argument when [workers], [queue_capacity] or
    [job_stride] is nonpositive, or [tenant_caps] names an empty or
    duplicate tenant or a cap below 1. *)

val start : t -> unit
(** Spawn the worker pool (idempotent while running).
    @raise Invalid_argument after shutdown. *)

val submit : t -> respond:(string -> unit) -> string -> unit
(** Feed one request line. Exactly one response line reaches [respond]
    now (health, rejection) or later (job result, from a worker domain).
    A [respond] that raises is swallowed and counted
    ([stats.s_respond_errors]) — a client that hung up must not kill the
    pool. After {!drain}/{!stop}, jobs are rejected as [draining]. *)

val quiesce : t -> unit
(** Block until no submitted job is queued or running — the
    between-connections barrier of the socket front end. The pool keeps
    running. *)

val drain : t -> unit
(** Graceful shutdown (EOF / SIGINT with an intact queue): seal the
    queue, run every queued job to completion, then join the pool.
    Starts the pool first if it never ran. Idempotent. *)

val stop : t -> int
(** Hard shutdown: close the queue, answer every still-queued job with a
    [dropped] line, wait only for in-flight jobs, join the pool. Returns
    the number of dropped jobs. Idempotent (later calls return 0). *)

type stats = {
  s_requests : int;  (** ids assigned — every request line ever seen *)
  s_accepted : int;
  s_completed : int;  (** accepted jobs answered, any status *)
  s_deadline_missed : int;
  s_errored : int;
  s_queue_full : int;
  s_malformed : int;
  s_draining : int;
  s_tenant_quota : int;  (** jobs rejected at a tenant's admission cap *)
  s_dropped : int;
  s_health : int;
  s_stats : int;  (** [kind:"stats"] snapshot requests answered *)
  s_respond_errors : int;
  s_queue_high_water : int;
}

val stats : t -> stats

(** {2 Per-tenant admission counters} — all return [0] for a tenant not
    named in [?tenant_caps] (unknown or uncapped alike). *)

val tenant_outstanding : t -> string -> int
(** Jobs queued or running for this tenant right now. *)

val tenant_high_water : t -> string -> int
(** Lifetime maximum of {!tenant_outstanding} — the soak harness pins
    [tenant_high_water <= cap]. *)

val tenant_rejected : t -> string -> int
(** Lifetime [tenant_quota] rejections charged to this tenant. *)

val tenant_cap : t -> string -> int
(** The cap passed to {!create}. *)

val queue_depth : t -> int
val n_workers : t -> int
val uptime_s : t -> float

val trace : t -> Agrid_obs.Trace.t option
(** The collector passed to {!create}, if any — the socket front end
    dumps its JSONL at exit. *)

val pp_stats : Format.formatter -> stats -> unit
