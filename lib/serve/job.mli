(** One scheduling job: a scenario reference plus SLRH parameters, an
    optional churn timeline and an optional wall-clock deadline — the unit
    of work the scenario service ({!Server}) queues and executes.

    {!run} is deliberately a plain function so the soak harness can replay
    any served job one-shot, single-threaded, and demand a bit-identical
    {!type-result} — the same differential discipline that pins rescan
    against incremental mode. *)

type spec = {
  tag : string option;  (** opaque client correlation token, echoed back *)
  trace_id : string option;
      (** distributed-tracing correlation id ({!Agrid_obs.Trace.id_of}),
          stamped by a relaying router; [None] = untraced *)
  tenant : string option;
      (** owning tenant id, checked against the server's per-tenant
          admission caps; [None] = untenanted (never capped) *)
  scenario : Agrid_workload.Serialize.scenario_ref;
  alpha : float;
  beta : float;
  variant : Agrid_core.Slrh.variant;
  delta_t : int;
  horizon : int;
  mode : Agrid_core.Slrh.mode;
  adapt : Agrid_core.Adapt.spec option;
      (** online dual ascent seeded from (alpha, beta), with the spec's
          implied feasibility mode; [None] = constant weights *)
  events : Agrid_churn.Event.t list;  (** churn timeline; [] = static run *)
  deadline_ms : float option;
      (** wall-clock budget for the scheduler loop; enforced cooperatively
          (one cancellation check per timestep). [Some ms] with [ms <= 0]
          always misses — the soak harness's "impossible deadline". *)
}

val default : Agrid_workload.Serialize.scenario_ref -> spec
(** The CLI's defaults: alpha 0.4, beta 0.3, SLRH-1, delta_t 10, horizon
    100, incremental mode, no churn, no deadline. *)

type status =
  | Ok_done  (** the clock loop ran to its natural end (see [completed]) *)
  | Deadline_missed  (** the cooperative deadline cancelled the loop *)
  | Errored of string  (** the job could not run (bad scenario/params) *)

val status_to_string : status -> string
(** ["ok"], ["deadline_missed"], ["errored"]. *)

type result = {
  status : status;
  completed : bool;  (** every subtask mapped before the clock passed tau *)
  t100 : int;
  mapped : int;
  aet : int;
  tec : float;  (** total energy consumed *)
  energy_remaining : float array;  (** per-machine battery ledger at the end *)
  final_clock : int;
  n_discarded : int;  (** churn jobs: placements discarded by events *)
  sunk_energy : float;  (** churn jobs: non-work energy charges *)
  wall_seconds : float;
}

val errored : string -> result
(** The all-zero result carrying [Errored msg]. *)

val run : ?obs:Agrid_obs.Sink.t -> spec -> result
(** Execute the job: realize the scenario, run the SLRH loop (through the
    churn engine when [events <> []]) and summarize the schedule. Never
    raises: malformed scenarios and invalid parameters come back as
    [Errored]. [?obs] is a per-job sink (the service merges it into the
    pool sink afterwards); the default no-op sink is inert.

    Deterministic: for a fixed spec without a deadline (or whose deadline
    did not fire), every field except [wall_seconds] is a pure function of
    the spec — pinned by the soak harness's served-vs-one-shot
    comparison. *)

val equal_modulo_wall : result -> result -> bool
(** Bitwise equality on every field except [wall_seconds] (floats compared
    through their bit patterns). *)
