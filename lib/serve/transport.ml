(* Hardened Unix-domain socket transport, shared by `agrid serve` and the
   fleet router's front end. A long-lived daemon's accept loop must
   survive whatever clients do to it: EINTR (a signal landed) retries the
   accept, connection-level failures (ECONNABORTED, a peer resetting
   mid-handshake, EMFILE) drop that connection and keep listening, and a
   read error mid-connection drops only that connection. Every dropped
   connection or failed write is counted so operators can see flapping
   clients in the obs export instead of silence. *)

module Sink = Agrid_obs.Sink

type t = { sock : Unix.file_descr; path : string }

(* A peer that hangs up turns our next write into SIGPIPE, whose default
   disposition kills the process — the opposite of "never crash the
   daemon". Ignoring it turns those writes into EPIPE (a Sys_error
   through the channel layer), which the error paths here count. *)
let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let listen ~path =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* a stale socket file from a previous run would make bind fail *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 8
  with
  | () -> Ok { sock; path }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error (Fmt.str "cannot listen on %s: %s" path (Unix.error_message err))

let shutdown t =
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

(* Sys_error covers both a read interrupted by a signal and one cut short
   by a resetting peer; the distinction doesn't matter to callers, only
   that the connection is over and whether it ended cleanly. *)
let pump ~stop ~on_line ic =
  let rec loop () =
    if stop () then `Stopped
    else
      match input_line ic with
      | line ->
          on_line line;
          loop ()
      | exception End_of_file -> `Eof
      | exception Sys_error _ -> `Read_error
  in
  loop ()

(* One-shot client: connect, send one request line, read one response
   line. What `agrid top` does every poll tick — a fresh connection per
   request keeps the daemon's one-connection-at-a-time accept loop free
   between polls. *)
let request ~path line =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | fd -> (
      ignore_sigpipe ();
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (err, _, _) ->
          finally ();
          Error (Fmt.str "cannot connect to %s: %s" path (Unix.error_message err))
      | () -> (
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          match
            output_string oc line;
            output_char oc '\n';
            flush oc;
            input_line ic
          with
          | reply ->
              finally ();
              Ok reply
          | exception End_of_file ->
              finally ();
              Error "connection closed before a response arrived"
          | exception Sys_error msg ->
              finally ();
              Error msg))

let accept_loop ?(obs = Sink.noop) ?(counter = "serve/conn_errors") ~stop ~handle t =
  let rec loop () =
    if not (stop ()) then
      match Unix.accept t.sock with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* the listening socket itself is gone: shutdown raced the accept *)
          ()
      | exception Unix.Unix_error (_, _, _) ->
          Sink.incr obs counter;
          loop ()
      | fd, _ ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          let respond line =
            (* a client hanging up mid-response must not kill the daemon *)
            try
              output_string oc line;
              output_char oc '\n';
              flush oc
            with Sys_error _ -> Sink.incr obs counter
          in
          (match handle ~respond ~ic with
          | `Eof | `Stopped -> ()
          | `Read_error -> Sink.incr obs counter);
          (try flush oc with Sys_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ()
  in
  loop ()
