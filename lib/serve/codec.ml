(* The agrid-job/1 wire format. One JSON object per line each way; every
   parser is total (hostile bytes -> Error, never an exception) because
   the server feeds it raw socket/stdin lines and the fuzz suite feeds it
   mutated garbage. *)

module Json = Agrid_obs.Json
module Serialize = Agrid_workload.Serialize
module Slrh = Agrid_core.Slrh
module Event = Agrid_churn.Event

let schema = "agrid-job/1"
let result_schema = "agrid-job-result/1"
let stats_schema = "agrid-stats/1"

type request = Submit of Job.spec | Health | Stats

let ( let* ) = Result.bind

let variant_to_string = function
  | Slrh.V1 -> "slrh1"
  | Slrh.V2 -> "slrh2"
  | Slrh.V3 -> "slrh3"

let variant_of_string = function
  | "slrh1" -> Ok Slrh.V1
  | "slrh2" -> Ok Slrh.V2
  | "slrh3" -> Ok Slrh.V3
  | s -> Error (Fmt.str "unknown heuristic %S (expected slrh1|slrh2|slrh3)" s)

(* Optional field with a default: absent is fine, present-but-mistyped is
   an error — silently defaulting a typo would run the wrong job. *)
let opt_field j name conv ~default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Fmt.str "field %S is mistyped" name))

let parse_job j =
  let* scenario =
    match Json.member "scenario" j with
    | None -> Error "job is missing the \"scenario\" field"
    | Some s -> Serialize.scenario_ref_of_json s
  in
  let* tag =
    opt_field j "tag" (fun v -> Option.map Option.some (Json.to_string_value v))
      ~default:None
  in
  let* alpha = opt_field j "alpha" Json.to_float ~default:0.4 in
  let* beta = opt_field j "beta" Json.to_float ~default:0.3 in
  let* variant_name = opt_field j "heuristic" Json.to_string_value ~default:"slrh1" in
  let* variant = variant_of_string variant_name in
  let* delta_t = opt_field j "delta_t" Json.to_int ~default:10 in
  let* horizon = opt_field j "horizon" Json.to_int ~default:100 in
  let* mode_name = opt_field j "mode" Json.to_string_value ~default:"soa" in
  let* mode =
    match Slrh.mode_of_string mode_name with
    | Some m -> Ok m
    | None ->
        Error (Fmt.str "unknown mode %S (expected rescan|incremental|soa)" mode_name)
  in
  let* trace = opt_field j "events" Json.to_string_value ~default:"" in
  let* events =
    if trace = "" then Ok []
    else
      match Event.parse_trace trace with
      | events -> Ok events
      | exception Invalid_argument msg -> Error (Fmt.str "bad events trace: %s" msg)
  in
  let* deadline_ms =
    opt_field j "deadline_ms" (fun v -> Option.map Option.some (Json.to_float v))
      ~default:None
  in
  let* trace_id =
    opt_field j "trace" (fun v -> Option.map Option.some (Json.to_string_value v))
      ~default:None
  in
  let* tenant =
    opt_field j "tenant" (fun v -> Option.map Option.some (Json.to_string_value v))
      ~default:None
  in
  let* scheduler = opt_field j "scheduler" Json.to_string_value ~default:"slrh" in
  let opt_float name =
    opt_field j name (fun v -> Option.map Option.some (Json.to_float v)) ~default:None
  in
  let* adapt_step = opt_field j "adapt_step" Json.to_float ~default:0.5 in
  let* adapt_init_energy = opt_float "adapt_init_energy" in
  let* adapt_init_aet = opt_float "adapt_init_aet" in
  let* adapt_prob = opt_float "adapt_prob" in
  let* adapt_sigma = opt_field j "adapt_sigma" Json.to_float ~default:0.1 in
  let* adapt =
    match scheduler with
    | "slrh" -> Ok None
    | "adaptive-lagrange" ->
        let spec =
          {
            Agrid_core.Adapt.step_c = adapt_step;
            init_energy = adapt_init_energy;
            init_aet = adapt_init_aet;
            prob = adapt_prob;
            sigma = adapt_sigma;
          }
        in
        let* () = Agrid_core.Adapt.validate_spec spec in
        Ok (Some spec)
    | s -> Error (Fmt.str "unknown scheduler %S (expected slrh|adaptive-lagrange)" s)
  in
  if delta_t <= 0 then Error "delta_t must be positive"
  else if horizon <= 0 then Error "horizon must be positive"
  else if not (Float.is_finite alpha && Float.is_finite beta) then
    Error "alpha/beta must be finite"
  else if adapt <> None && alpha <= 0. then
    Error "adaptive-lagrange needs alpha > 0 to seed the multipliers"
  else
    Ok
      (Submit
         {
           Job.tag;
           trace_id;
           tenant;
           scenario;
           alpha;
           beta;
           variant;
           delta_t;
           horizon;
           mode;
           adapt;
           events;
           deadline_ms;
         })

let parse_request line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error (Fmt.str "not JSON: %s" msg)
  | j -> (
      match Json.get_string "schema" j with
      | Some s when s = schema -> (
          match Json.get_string "kind" j with
          | Some "job" -> parse_job j
          | Some "health" -> Ok Health
          | Some "stats" -> Ok Stats
          | Some other -> Error (Fmt.str "unknown kind %S" other)
          | None -> Error "missing \"kind\" field")
      | Some other -> Error (Fmt.str "unsupported schema %S (expected %S)" other schema)
      | None -> Error (Fmt.str "missing \"schema\" field (expected %S)" schema))

let job_to_json (s : Job.spec) =
  Json.Obj
    ([
      ("schema", Json.Str schema);
      ("kind", Json.Str "job");
      ("tag", match s.Job.tag with None -> Json.Null | Some t -> Json.Str t);
      ("scenario", Serialize.scenario_ref_to_json s.Job.scenario);
      ("alpha", Json.Flt s.Job.alpha);
      ("beta", Json.Flt s.Job.beta);
      ("heuristic", Json.Str (variant_to_string s.Job.variant));
      ("delta_t", Json.Int s.Job.delta_t);
      ("horizon", Json.Int s.Job.horizon);
      ("mode", Json.Str (Slrh.mode_to_string s.Job.mode));
      ("events", Json.Str (Event.trace_to_string s.Job.events));
      ( "deadline_ms",
        match s.Job.deadline_ms with None -> Json.Null | Some ms -> Json.Flt ms );
    ]
    @
    (* the adapt knobs ride along only for adaptive jobs, keeping
       constant-weight job lines byte-identical to the historical wire
       format *)
    (match s.Job.adapt with
    | None -> []
    | Some a ->
        let opt name v =
          match v with None -> [] | Some x -> [ (name, Json.Flt x) ]
        in
        [
          ("scheduler", Json.Str "adaptive-lagrange");
          ("adapt_step", Json.Flt a.Agrid_core.Adapt.step_c);
        ]
        @ opt "adapt_init_energy" a.Agrid_core.Adapt.init_energy
        @ opt "adapt_init_aet" a.Agrid_core.Adapt.init_aet
        @ opt "adapt_prob" a.Agrid_core.Adapt.prob
        @ [ ("adapt_sigma", Json.Flt a.Agrid_core.Adapt.sigma) ])
    @
    (* like the adapt knobs: the trace id appears only when a tracing
       router stamped one, so untraced job lines stay byte-identical *)
    (match s.Job.trace_id with
    | None -> []
    | Some tid -> [ ("trace", Json.Str tid) ])
    @
    (* same discipline for the tenant: untenanted job lines keep the
       historical wire format byte for byte *)
    match s.Job.tenant with
    | None -> []
    | Some ten -> [ ("tenant", Json.Str ten) ])

(* ---- responses ---- *)

let base ~id ty rest =
  Json.Obj
    (("schema", Json.Str result_schema)
    :: ("type", Json.Str ty)
    :: ("id", Json.Int id)
    :: rest)

let tag_field tag = ("tag", match tag with None -> Json.Null | Some t -> Json.Str t)

let result_line ~id ~tag ~latency_s (r : Job.result) =
  let error_fields =
    match r.Job.status with
    | Job.Errored msg -> [ ("error", Json.Str msg) ]
    | Job.Ok_done | Job.Deadline_missed -> []
  in
  Json.to_string
    (base ~id "result"
       ([
          tag_field tag;
          ("status", Json.Str (Job.status_to_string r.Job.status));
        ]
       @ error_fields
       @ [
           ("completed", Json.Bool r.Job.completed);
           ("t100", Json.Int r.Job.t100);
           ("mapped", Json.Int r.Job.mapped);
           ("aet", Json.Int r.Job.aet);
           ("tec", Json.Flt r.Job.tec);
           (* %.9g loses float bits; the soak harness's bit-identity check
              needs the exact TEC through the wire *)
           ("tec_bits", Json.Str (Fmt.str "%Lx" (Int64.bits_of_float r.Job.tec)));
           ("energy", Json.Arr (Array.to_list (Array.map (fun e -> Json.Flt e) r.Job.energy_remaining)));
           ("final_clock", Json.Int r.Job.final_clock);
           ("discarded", Json.Int r.Job.n_discarded);
           ("sunk_energy", Json.Flt r.Job.sunk_energy);
           ("wall_s", Json.Flt r.Job.wall_seconds);
           ("latency_s", Json.Flt latency_s);
         ]))

let reason_to_string = function
  | `Queue_full -> "queue_full"
  | `Malformed -> "malformed"
  | `Draining -> "draining"
  | `All_backends_saturated -> "all_backends_saturated"
  | `Tenant_quota -> "tenant_quota"

let reason_of_string = function
  | "queue_full" -> Some `Queue_full
  | "malformed" -> Some `Malformed
  | "draining" -> Some `Draining
  | "all_backends_saturated" -> Some `All_backends_saturated
  | "tenant_quota" -> Some `Tenant_quota
  | _ -> None

(* [?tag]: queue_full/draining rejections echo the job's tag so a relaying
   router can correlate them back to the in-flight entry; malformed lines
   carry no tag because no tag ever parsed. *)
let rejected_line ?(tag = None) ~id ~reason ~detail () =
  Json.to_string
    (base ~id "rejected"
       [
         ("reason", Json.Str (reason_to_string reason));
         tag_field tag;
         ("detail", Json.Str detail);
       ])

let dropped_line ~id ~tag = Json.to_string (base ~id "dropped" [ tag_field tag ])

let maybe_executed_line ~id ~tag ~backend ~detail =
  Json.to_string
    (base ~id "maybe_executed"
       [
         tag_field tag;
         ("status", Json.Str "maybe_executed");
         ("backend", Json.Str backend);
         ("detail", Json.Str detail);
       ])

let health_line ~id ~uptime_s ~queue_depth ~workers ~accepted ~completed =
  Json.to_string
    (base ~id "health"
       [
         ("uptime_s", Json.Flt uptime_s);
         ("queue_depth", Json.Int queue_depth);
         ("workers", Json.Int workers);
         ("accepted", Json.Int accepted);
         ("completed", Json.Int completed);
       ])

let fleet_health_line ~id ~uptime_s ~queue_depth ~backends ~accepted ~completed =
  Json.to_string
    (base ~id "health"
       [
         ("uptime_s", Json.Flt uptime_s);
         ("queue_depth", Json.Int queue_depth);
         ( "backends",
           Json.Arr
             (List.map
                (fun (name, health, in_flight) ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("health", Json.Str health);
                      ("in_flight", Json.Int in_flight);
                    ])
                backends) );
         ("accepted", Json.Int accepted);
         ("completed", Json.Int completed);
       ])

(* ---- agrid-stats/1 live snapshots ---- *)

type stats_snapshot = {
  ss_role : string;  (* "serve" | "router" *)
  ss_id : int;
  ss_uptime_s : float;
  ss_queue_depth : int;
  ss_in_flight : int;
  ss_workers : int;  (* serve: worker domains; router: backend count *)
  ss_accepted : int;
  ss_completed : int;
  ss_window_s : float;
  ss_rate : float;  (* completions per second over the window *)
  ss_p50_s : float;  (* rolling latency quantiles; NaN = nothing observed *)
  ss_p95_s : float;
  ss_p99_s : float;
  ss_backends : (string * string * int) list;  (* name, health, in_flight *)
  ss_trace_events : int;  (* trace-ring occupancy; 0 when tracing is off *)
  ss_trace_dropped : int;
  ss_trace_exemplars : int;
}

let stats_line s =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str stats_schema);
         ("type", Json.Str "stats");
         ("role", Json.Str s.ss_role);
         ("id", Json.Int s.ss_id);
         ("uptime_s", Json.Flt s.ss_uptime_s);
         ("queue_depth", Json.Int s.ss_queue_depth);
         ("in_flight", Json.Int s.ss_in_flight);
         ("workers", Json.Int s.ss_workers);
         ("accepted", Json.Int s.ss_accepted);
         ("completed", Json.Int s.ss_completed);
         ("window_s", Json.Flt s.ss_window_s);
         ("rate", Json.Flt s.ss_rate);
         ("p50_s", Json.Flt s.ss_p50_s);
         ("p95_s", Json.Flt s.ss_p95_s);
         ("p99_s", Json.Flt s.ss_p99_s);
         ( "backends",
           Json.Arr
             (List.map
                (fun (name, health, in_flight) ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("health", Json.Str health);
                      ("in_flight", Json.Int in_flight);
                    ])
                s.ss_backends) );
         ("trace_events", Json.Int s.ss_trace_events);
         ("trace_dropped", Json.Int s.ss_trace_dropped);
         ("trace_exemplars", Json.Int s.ss_trace_exemplars);
       ])

(* Total parser for stats lines — `agrid top` feeds it whatever the socket
   answered, and the fuzz suite feeds it mutated garbage. Non-finite
   quantiles travel as JSON null and come back as NaN. *)
let parse_stats line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error (Fmt.str "not JSON: %s" msg)
  | j -> (
      match Json.get_string "schema" j with
      | Some s when s = stats_schema ->
          let int name =
            match Json.get_int name j with
            | Some i -> Ok i
            | None -> Error (Fmt.str "stats line is missing the %S field" name)
          in
          (* NaN (serialized null) is a legal quantile, so absent and
             mistyped both map through to_float's widening rules. *)
          let flt name =
            match Json.member name j with
            | None -> Error (Fmt.str "stats line is missing the %S field" name)
            | Some v -> (
                match Json.to_float v with
                | Some f -> Ok f
                | None -> Error (Fmt.str "stats field %S is mistyped" name))
          in
          let* ss_role =
            match Json.get_string "role" j with
            | Some r -> Ok r
            | None -> Error "stats line is missing the \"role\" field"
          in
          let* ss_id = int "id" in
          let* ss_uptime_s = flt "uptime_s" in
          let* ss_queue_depth = int "queue_depth" in
          let* ss_in_flight = int "in_flight" in
          let* ss_workers = int "workers" in
          let* ss_accepted = int "accepted" in
          let* ss_completed = int "completed" in
          let* ss_window_s = flt "window_s" in
          let* ss_rate = flt "rate" in
          let* ss_p50_s = flt "p50_s" in
          let* ss_p95_s = flt "p95_s" in
          let* ss_p99_s = flt "p99_s" in
          let* ss_backends =
            match Json.member "backends" j with
            | Some (Json.Arr bs) ->
                List.fold_left
                  (fun acc b ->
                    let* acc = acc in
                    let* name =
                      match Json.get_string "name" b with
                      | Some n -> Ok n
                      | None -> Error "backend entry is missing the \"name\" field"
                    in
                    let* health =
                      match Json.get_string "health" b with
                      | Some h -> Ok h
                      | None -> Error "backend entry is missing the \"health\" field"
                    in
                    let* in_flight =
                      match Json.get_int "in_flight" b with
                      | Some i -> Ok i
                      | None ->
                          Error "backend entry is missing the \"in_flight\" field"
                    in
                    Ok ((name, health, in_flight) :: acc))
                  (Ok []) bs
                |> Result.map List.rev
            | Some _ -> Error "stats field \"backends\" is not an array"
            | None -> Error "stats line is missing the \"backends\" field"
          in
          let* ss_trace_events = int "trace_events" in
          let* ss_trace_dropped = int "trace_dropped" in
          let* ss_trace_exemplars = int "trace_exemplars" in
          Ok
            {
              ss_role;
              ss_id;
              ss_uptime_s;
              ss_queue_depth;
              ss_in_flight;
              ss_workers;
              ss_accepted;
              ss_completed;
              ss_window_s;
              ss_rate;
              ss_p50_s;
              ss_p95_s;
              ss_p99_s;
              ss_backends;
              ss_trace_events;
              ss_trace_dropped;
              ss_trace_exemplars;
            }
      | Some other ->
          Error (Fmt.str "unsupported schema %S (expected %S)" other stats_schema)
      | None -> Error (Fmt.str "missing \"schema\" field (expected %S)" stats_schema))

(* ---- response parsing (the router's view of a backend's lines) ---- *)

type response = {
  r_type : [ `Result | `Rejected | `Dropped | `Health | `Maybe_executed ];
  r_id : int;
  r_tag : string option;
  r_status : string option;
  r_reason : [ `Queue_full | `Malformed | `Draining | `All_backends_saturated | `Tenant_quota ] option;
  r_json : Json.t;
}

let parse_response line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error (Fmt.str "not JSON: %s" msg)
  | j -> (
      match Json.get_string "schema" j with
      | Some s when s = result_schema -> (
          let* ty =
            match Json.get_string "type" j with
            | Some "result" -> Ok `Result
            | Some "rejected" -> Ok `Rejected
            | Some "dropped" -> Ok `Dropped
            | Some "health" -> Ok `Health
            | Some "maybe_executed" -> Ok `Maybe_executed
            | Some other -> Error (Fmt.str "unknown response type %S" other)
            | None -> Error "missing \"type\" field"
          in
          let* id =
            match Json.get_int "id" j with
            | Some id -> Ok id
            | None -> Error "missing \"id\" field"
          in
          let* reason =
            match (ty, Json.get_string "reason" j) with
            | `Rejected, Some r -> (
                match reason_of_string r with
                | Some r -> Ok (Some r)
                | None -> Error (Fmt.str "unknown rejection reason %S" r))
            | `Rejected, None -> Error "rejected line without a reason"
            | _, _ -> Ok None
          in
          Ok
            {
              r_type = ty;
              r_id = id;
              r_tag = Json.get_string "tag" j;
              r_status = Json.get_string "status" j;
              r_reason = reason;
              r_json = j;
            })
      | Some other ->
          Error (Fmt.str "unsupported schema %S (expected %S)" other result_schema)
      | None -> Error (Fmt.str "missing \"schema\" field (expected %S)" result_schema))

(* Rewrite a relayed response's identity: the router's upstream id and the
   client's original tag replace the backend-local ones, and the backend's
   name is recorded. Everything else (tec_bits included) passes through
   the parsed value untouched. *)
let with_identity ~id ~tag ~backend json =
  match json with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match k with
             | "id" -> (k, Json.Int id)
             | "tag" -> tag_field tag
             | _ -> (k, v))
           fields
        @ [ ("backend", Json.Str backend) ])
  | other -> other
