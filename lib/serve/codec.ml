(* The agrid-job/1 wire format. One JSON object per line each way; every
   parser is total (hostile bytes -> Error, never an exception) because
   the server feeds it raw socket/stdin lines and the fuzz suite feeds it
   mutated garbage. *)

module Json = Agrid_obs.Json
module Serialize = Agrid_workload.Serialize
module Slrh = Agrid_core.Slrh
module Event = Agrid_churn.Event

let schema = "agrid-job/1"
let result_schema = "agrid-job-result/1"

type request = Submit of Job.spec | Health

let ( let* ) = Result.bind

let variant_to_string = function
  | Slrh.V1 -> "slrh1"
  | Slrh.V2 -> "slrh2"
  | Slrh.V3 -> "slrh3"

let variant_of_string = function
  | "slrh1" -> Ok Slrh.V1
  | "slrh2" -> Ok Slrh.V2
  | "slrh3" -> Ok Slrh.V3
  | s -> Error (Fmt.str "unknown heuristic %S (expected slrh1|slrh2|slrh3)" s)

(* Optional field with a default: absent is fine, present-but-mistyped is
   an error — silently defaulting a typo would run the wrong job. *)
let opt_field j name conv ~default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Fmt.str "field %S is mistyped" name))

let parse_job j =
  let* scenario =
    match Json.member "scenario" j with
    | None -> Error "job is missing the \"scenario\" field"
    | Some s -> Serialize.scenario_ref_of_json s
  in
  let* tag =
    opt_field j "tag" (fun v -> Option.map Option.some (Json.to_string_value v))
      ~default:None
  in
  let* alpha = opt_field j "alpha" Json.to_float ~default:0.4 in
  let* beta = opt_field j "beta" Json.to_float ~default:0.3 in
  let* variant_name = opt_field j "heuristic" Json.to_string_value ~default:"slrh1" in
  let* variant = variant_of_string variant_name in
  let* delta_t = opt_field j "delta_t" Json.to_int ~default:10 in
  let* horizon = opt_field j "horizon" Json.to_int ~default:100 in
  let* mode_name = opt_field j "mode" Json.to_string_value ~default:"incremental" in
  let* mode =
    match Slrh.mode_of_string mode_name with
    | Some m -> Ok m
    | None -> Error (Fmt.str "unknown mode %S (expected rescan|incremental)" mode_name)
  in
  let* trace = opt_field j "events" Json.to_string_value ~default:"" in
  let* events =
    if trace = "" then Ok []
    else
      match Event.parse_trace trace with
      | events -> Ok events
      | exception Invalid_argument msg -> Error (Fmt.str "bad events trace: %s" msg)
  in
  let* deadline_ms =
    opt_field j "deadline_ms" (fun v -> Option.map Option.some (Json.to_float v))
      ~default:None
  in
  if delta_t <= 0 then Error "delta_t must be positive"
  else if horizon <= 0 then Error "horizon must be positive"
  else if not (Float.is_finite alpha && Float.is_finite beta) then
    Error "alpha/beta must be finite"
  else
    Ok
      (Submit
         {
           Job.tag;
           scenario;
           alpha;
           beta;
           variant;
           delta_t;
           horizon;
           mode;
           events;
           deadline_ms;
         })

let parse_request line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error (Fmt.str "not JSON: %s" msg)
  | j -> (
      match Json.get_string "schema" j with
      | Some s when s = schema -> (
          match Json.get_string "kind" j with
          | Some "job" -> parse_job j
          | Some "health" -> Ok Health
          | Some other -> Error (Fmt.str "unknown kind %S" other)
          | None -> Error "missing \"kind\" field")
      | Some other -> Error (Fmt.str "unsupported schema %S (expected %S)" other schema)
      | None -> Error (Fmt.str "missing \"schema\" field (expected %S)" schema))

let job_to_json (s : Job.spec) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("kind", Json.Str "job");
      ("tag", match s.Job.tag with None -> Json.Null | Some t -> Json.Str t);
      ("scenario", Serialize.scenario_ref_to_json s.Job.scenario);
      ("alpha", Json.Flt s.Job.alpha);
      ("beta", Json.Flt s.Job.beta);
      ("heuristic", Json.Str (variant_to_string s.Job.variant));
      ("delta_t", Json.Int s.Job.delta_t);
      ("horizon", Json.Int s.Job.horizon);
      ("mode", Json.Str (Slrh.mode_to_string s.Job.mode));
      ("events", Json.Str (Event.trace_to_string s.Job.events));
      ( "deadline_ms",
        match s.Job.deadline_ms with None -> Json.Null | Some ms -> Json.Flt ms );
    ]

(* ---- responses ---- *)

let base ~id ty rest =
  Json.Obj
    (("schema", Json.Str result_schema)
    :: ("type", Json.Str ty)
    :: ("id", Json.Int id)
    :: rest)

let tag_field tag = ("tag", match tag with None -> Json.Null | Some t -> Json.Str t)

let result_line ~id ~tag ~latency_s (r : Job.result) =
  let error_fields =
    match r.Job.status with
    | Job.Errored msg -> [ ("error", Json.Str msg) ]
    | Job.Ok_done | Job.Deadline_missed -> []
  in
  Json.to_string
    (base ~id "result"
       ([
          tag_field tag;
          ("status", Json.Str (Job.status_to_string r.Job.status));
        ]
       @ error_fields
       @ [
           ("completed", Json.Bool r.Job.completed);
           ("t100", Json.Int r.Job.t100);
           ("mapped", Json.Int r.Job.mapped);
           ("aet", Json.Int r.Job.aet);
           ("tec", Json.Flt r.Job.tec);
           (* %.9g loses float bits; the soak harness's bit-identity check
              needs the exact TEC through the wire *)
           ("tec_bits", Json.Str (Fmt.str "%Lx" (Int64.bits_of_float r.Job.tec)));
           ("energy", Json.Arr (Array.to_list (Array.map (fun e -> Json.Flt e) r.Job.energy_remaining)));
           ("final_clock", Json.Int r.Job.final_clock);
           ("discarded", Json.Int r.Job.n_discarded);
           ("sunk_energy", Json.Flt r.Job.sunk_energy);
           ("wall_s", Json.Flt r.Job.wall_seconds);
           ("latency_s", Json.Flt latency_s);
         ]))

let reason_to_string = function
  | `Queue_full -> "queue_full"
  | `Malformed -> "malformed"
  | `Draining -> "draining"

let rejected_line ~id ~reason ~detail =
  Json.to_string
    (base ~id "rejected"
       [
         ("reason", Json.Str (reason_to_string reason)); ("detail", Json.Str detail);
       ])

let dropped_line ~id ~tag = Json.to_string (base ~id "dropped" [ tag_field tag ])

let health_line ~id ~uptime_s ~queue_depth ~workers ~accepted ~completed =
  Json.to_string
    (base ~id "health"
       [
         ("uptime_s", Json.Flt uptime_s);
         ("queue_depth", Json.Int queue_depth);
         ("workers", Json.Int workers);
         ("accepted", Json.Int accepted);
         ("completed", Json.Int completed);
       ])
