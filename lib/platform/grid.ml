(* The three static ad hoc grid configurations of paper Table 1 / Table 4:
     Case A: 2 fast + 2 slow (baseline, all machines present)
     Case B: 2 fast + 1 slow (one slow machine lost)
     Case C: 1 fast + 2 slow (one fast machine lost)
   Machine 0 is always a fast machine — the paper's upper-bound calculation
   uses machine 0 as the reference machine. *)

type case = A | B | C

type t = { name : string; machines : Machine.profile array }

let make ~name machines =
  if Array.length machines = 0 then invalid_arg "Grid.make: no machines";
  { name; machines }

let of_case ?(battery_scale = 1.) case =
  let fast = Machine.scale_battery battery_scale Machine.fast_profile in
  let slow = Machine.scale_battery battery_scale Machine.slow_profile in
  match case with
  | A -> make ~name:"Case A" [| fast; fast; slow; slow |]
  | B -> make ~name:"Case B" [| fast; fast; slow |]
  | C -> make ~name:"Case C" [| fast; slow; slow |]

let all_cases = [ A; B; C ]

let case_name = function A -> "Case A" | B -> "Case B" | C -> "Case C"

let name t = t.name
let n_machines t = Array.length t.machines
let machine t j = t.machines.(j)
let machines t = t.machines

let count_klass t k =
  Array.fold_left
    (fun acc (m : Machine.profile) -> if Machine.equal_klass m.klass k then acc + 1 else acc)
    0 t.machines

(* Total system energy: TSE = sum_j B(j). *)
let total_system_energy t =
  Array.fold_left (fun acc (m : Machine.profile) -> acc +. m.battery) 0. t.machines

(* Lowest bandwidth of any machine — the worst link in the system, used by
   SLRH's worst-case communication-energy feasibility check. *)
let min_bandwidth t =
  Array.fold_left
    (fun acc (m : Machine.profile) -> Float.min acc m.bandwidth)
    infinity t.machines

(* Drop machine [j] — the dynamic-grid extension uses this to model loss of
   a device mid-run. Remaining machines keep their indices compacted. *)
let remove_machine t j =
  if j < 0 || j >= n_machines t then invalid_arg "Grid.remove_machine";
  if n_machines t = 1 then invalid_arg "Grid.remove_machine: last machine";
  let machines =
    Array.of_list
      (List.filteri (fun i _ -> i <> j) (Array.to_list t.machines))
  in
  { name = t.name ^ Fmt.str "-m%d" j; machines }

(* Degrade (or restore) one machine's link mid-run — the churn engine's
   bandwidth event. The grid is otherwise unchanged: indices are stable. *)
let scale_bandwidth t ~machine ~factor =
  if machine < 0 || machine >= n_machines t then invalid_arg "Grid.scale_bandwidth";
  let machines =
    Array.mapi
      (fun i m -> if i = machine then Machine.scale_bandwidth factor m else m)
      t.machines
  in
  { t with machines }

let pp ppf t =
  Fmt.pf ppf "%s: %a" t.name
    Fmt.(array ~sep:(any ", ") Machine.pp)
    t.machines
