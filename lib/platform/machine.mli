(** Machine characterisation per paper Table 2: battery capacity [B(j)],
    compute energy rate [E(j)], transmit energy rate [C(j)], bandwidth
    [BW(j)]. "Fast" is notebook-class, "slow" is PDA-class. *)

type klass = Fast | Slow

type profile = {
  klass : klass;
  battery : float;  (** B(j), energy units *)
  compute_rate : float;  (** E(j), units/s *)
  transmit_rate : float;  (** C(j), units/s *)
  bandwidth : float;  (** BW(j), bits/s *)
}

val fast_profile : profile
(** B = 580, E = 0.1, C = 0.2, BW = 8 Mb/s (Dell Precision M60 class). *)

val slow_profile : profile
(** B = 58, E = 0.001, C = 0.002, BW = 4 Mb/s (Dell Axim X5 class). *)

val of_klass : klass -> profile

val scale_battery : float -> profile -> profile
(** Proportional workload scaling (DESIGN.md section 3).
    @raise Invalid_argument on nonpositive factors. *)

val scale_bandwidth : float -> profile -> profile
(** Link-quality churn (churn engine's [Bandwidth_degrade] event).
    @raise Invalid_argument on nonpositive factors. *)

val compute_energy : profile -> seconds:float -> float
val transmit_energy : profile -> seconds:float -> float

val klass_to_string : klass -> string
val equal_klass : klass -> klass -> bool
val pp : Format.formatter -> profile -> unit
