(** The ad hoc grid configurations of paper Table 1: Case A (2 fast +
    2 slow), Case B (2 fast + 1 slow), Case C (1 fast + 2 slow). Machine 0
    is always fast — the upper bound's reference machine. *)

type case = A | B | C

type t

val make : name:string -> Machine.profile array -> t
(** @raise Invalid_argument on an empty machine set. *)

val of_case : ?battery_scale:float -> case -> t
val all_cases : case list
val case_name : case -> string

val name : t -> string
val n_machines : t -> int
val machine : t -> int -> Machine.profile
val machines : t -> Machine.profile array
val count_klass : t -> Machine.klass -> int

val total_system_energy : t -> float
(** TSE = sum of batteries (the objective's energy normaliser). *)

val min_bandwidth : t -> float
(** Worst link in the grid (SLRH's worst-case feasibility assumption). *)

val remove_machine : t -> int -> t
(** Dynamic-grid extension; remaining machines keep their relative order.
    @raise Invalid_argument when out of range or on the last machine. *)

val scale_bandwidth : t -> machine:int -> factor:float -> t
(** Scale one machine's bandwidth in place (churn engine's link-degrade
    event); indices are stable.
    @raise Invalid_argument when out of range or on nonpositive factors. *)

val pp : Format.formatter -> t -> unit
