(* Machine characterisation per paper Table 2. Each machine j carries:
   - B(j): battery energy capacity (energy units)
   - E(j): energy consumption rate while computing (units/s)
   - C(j): energy consumption rate while transmitting (units/s)
   - BW(j): communication bandwidth (bits/s)
   "Fast" is notebook-class (Dell Precision M60), "slow" is PDA-class
   (Dell Axim X5); fast executes ~10x faster than slow (the speed ratio
   itself lives in the ETC matrices, not here). *)

type klass = Fast | Slow

type profile = {
  klass : klass;
  battery : float; (* B(j), energy units *)
  compute_rate : float; (* E(j), units/s *)
  transmit_rate : float; (* C(j), units/s *)
  bandwidth : float; (* BW(j), bits/s *)
}

let fast_profile =
  { klass = Fast; battery = 580.; compute_rate = 0.1; transmit_rate = 0.2; bandwidth = 8e6 }

let slow_profile =
  { klass = Slow; battery = 58.; compute_rate = 0.001; transmit_rate = 0.002; bandwidth = 4e6 }

let of_klass = function Fast -> fast_profile | Slow -> slow_profile

(* Battery scaling is how workloads are shrunk proportionally (DESIGN.md
   section 3, substitution 5): scaling |T|, tau and B(j) by the same factor
   preserves which constraints bind. *)
let scale_battery factor p =
  if factor <= 0. then invalid_arg "Machine.scale_battery: factor must be positive";
  { p with battery = p.battery *. factor }

(* Bandwidth scaling models link-quality churn (interference, mobility):
   the churn engine degrades a machine's link mid-run by a factor. *)
let scale_bandwidth factor p =
  if factor <= 0. then invalid_arg "Machine.scale_bandwidth: factor must be positive";
  { p with bandwidth = p.bandwidth *. factor }

let compute_energy p ~seconds = p.compute_rate *. seconds
let transmit_energy p ~seconds = p.transmit_rate *. seconds

let klass_to_string = function Fast -> "fast" | Slow -> "slow"

let pp ppf p =
  Fmt.pf ppf "%s<B=%g E=%g C=%g BW=%g>" (klass_to_string p.klass) p.battery
    p.compute_rate p.transmit_rate p.bandwidth

let equal_klass a b =
  match (a, b) with Fast, Fast | Slow, Slow -> true | (Fast | Slow), _ -> false
