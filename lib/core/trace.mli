(** Execution tracing: the paper's "historical record of all critical
    parameters" (Section IV). Attach a tracer via {!Slrh.params} to record
    one event per mapping decision point. *)

open Agrid_workload

type kind =
  | Assigned of {
      task : int;
      version : Version.t;
      start : int;
      stop : int;
      score : float;
      pool_size : int;
      energy_remaining : float;
    }
  | Pool_empty
  | Horizon_miss of { pool_size : int }

type event = { clock : int; machine : int; kind : kind }

type t

val create : unit -> t
val record : t -> clock:int -> machine:int -> kind -> unit
val length : t -> int
val events : t -> event array
(** Chronological (recording) order. *)

type summary = {
  n_assigned : int;
  n_pool_empty : int;
  n_horizon_miss : int;
  mean_pool_size : float;
  first_assignment_clock : int option;
  last_assignment_clock : int option;
}

val summarize : t -> summary
val pp_summary : Format.formatter -> summary -> unit

val csv_header : string list
val csv_rows : t -> string list list
(** Pair with {!Agrid_report.Csv}. Every event kind exports: [assigned]
    rows carry the full record, [pool_empty] a pool size of 0,
    [horizon_miss] its pool size. *)

val of_csv_rows : string list list -> t
(** Inverse of {!csv_rows} (header excluded). Floats round-trip through
    the writer's [%.6f], so scores and energies are recovered to 1e-6
    rather than bit-exactly.
    @raise Invalid_argument on a malformed row. *)

val lint_csv_rows : string list list -> (int * string) list
(** Every malformed row with its diagnostic, 0-indexed (header excluded).
    Where {!of_csv_rows} raises at the first problem, this walks the
    whole input — the check behind [agrid trace lint]. Empty = clean. *)
