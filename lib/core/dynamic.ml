(* Dynamic grid events — the ad hoc scenario the paper motivates but defers
   ("assets connected to the grid can — and frequently do — appear and
   disappear at unanticipated times", Section I; dynamic reconfiguration
   "was not permitted during this initial work", Section III).

   Both transitions here — permanent machine loss and a temporary outage —
   are thin wrappers over the general churn engine (Agrid_churn.Engine): a
   loss is the one-event trace [Leave@at], an outage is
   [Leave@from_; Rejoin@until_]. The engine masks absent machines rather
   than renumbering the grid; [run_with_loss] keeps its historical
   reduced-grid result shape by replaying the engine's final schedule onto
   [Workload.remove_machine] at the end.

   Loss semantics (conservative, no partial-result recovery — the paper
   notes recovery "may prove too costly"): work survives iff it finished
   strictly before the loss instant, ran on a surviving machine, AND all of
   its ancestors survive; everything else is rescheduled from the loss
   instant; energy already burned on surviving machines by discarded work
   is charged as sunk cost — batteries do not refill. All of this lives in
   the engine now; see lib/churn/engine.ml. *)

open Agrid_workload
open Agrid_sched
module Event = Agrid_churn.Event
module Retry = Agrid_churn.Retry
module Engine = Agrid_churn.Engine

type loss = { at : int; machine : int }

type outcome = {
  schedule : Schedule.t;  (** final schedule, on the reduced grid *)
  workload : Workload.t;  (** the reduced workload the schedule lives in *)
  completed : bool;
  n_survivors : int;  (** placements carried across the loss *)
  n_discarded : int;  (** placements discarded (lost machine, in-flight, or descendants) *)
  sunk_energy : float;  (** energy burned on survivors by discarded work *)
  ledger_energy_ok : bool;
      (** engine ledger (including sunk energy) within every battery —
          check this alongside {!Validate.check}, which cannot see sunk
          energy *)
  pre_loss : Slrh.outcome;
  post_loss : Slrh.outcome;
}

(* The SLRH receding-horizon loop as a churn-engine phase runner. A phase
   starting after clock 0 begins right after churn events fired, so the
   dual-ascent controller (when attached) re-prices the constraints
   against the post-event grid before the phase's first sweep. *)
let slrh_runner params ~start_clock ~until ~mask ~eligible sched =
  (match params.Slrh.adapt with
  | Some a when start_clock > 0 ->
      Adapt.on_churn a ~obs:params.Slrh.obs ~clock:start_clock sched
  | Some _ | None -> ());
  let o = Slrh.continue_run ?until ~start_clock ~mask ~eligible params sched in
  (o, o.Slrh.final_clock)

let run_churn ?(policy = Retry.default) params workload events =
  (* the engine and the per-phase SLRH loop report into the same sink *)
  Engine.run ~obs:params.Slrh.obs ~policy ~runner:(slrh_runner params) workload
    events

let run_with_loss params workload { at; machine = lost } =
  if at < 0 then invalid_arg "Dynamic.run_with_loss: negative loss time";
  if lost < 0 || lost >= Workload.n_machines workload then
    invalid_arg "Dynamic.run_with_loss: no such machine";
  let eng = run_churn params workload [ { Event.at; kind = Event.Leave lost } ] in
  let pre_loss, post_loss_eng =
    match eng.Engine.phases with
    | [ pre; post ] -> (pre.Engine.ph_outcome, post.Engine.ph_outcome)
    | [ post ] ->
        (* loss at t=0: the engine never ran a pre phase; synthesize the
           zero-iteration run the two-phase story promises *)
        let pre = Slrh.continue_run ~until:(at - 1) params (Schedule.create workload) in
        (pre, post.Engine.ph_outcome)
    | _ -> assert false
  in
  (* replay the engine's masked full-grid schedule onto the reduced grid:
     nothing lives on the lost machine (its work was discarded at the
     event, and the mask kept the sweep away afterwards) *)
  let reduced = Workload.remove_machine workload ~machine:lost in
  let remap j = if j < lost then j else j - 1 in
  let sched = Schedule.create reduced in
  let dag = Workload.dag workload in
  Array.iter
    (fun task ->
      match Schedule.placement eng.Engine.schedule task with
      | Some p ->
          Schedule.replay_placement sched
            { p with Schedule.machine = remap p.Schedule.machine }
      | None -> ())
    (Agrid_dag.Dag.topological_order dag);
  Array.iter
    (fun (tr : Schedule.transfer) ->
      Schedule.replay_transfer sched
        { tr with Schedule.src = remap tr.Schedule.src; dst = remap tr.Schedule.dst })
    (Schedule.transfers eng.Engine.schedule);
  for j = 0 to Workload.n_machines workload - 1 do
    if j <> lost then begin
      let c = Schedule.energy_charged eng.Engine.schedule j in
      if c > 0. then Schedule.charge_energy sched ~machine:(remap j) c
    end
  done;
  let leave =
    match eng.Engine.applied with [ a ] -> a | _ -> assert false
  in
  let ledger_energy_ok =
    let ok = ref true in
    for j = 0 to Workload.n_machines reduced - 1 do
      if Schedule.energy_remaining sched j < -1e-9 then ok := false
    done;
    !ok
  in
  {
    schedule = sched;
    workload = reduced;
    completed = Schedule.all_mapped sched;
    n_survivors = leave.Engine.ev_survivors;
    n_discarded = leave.Engine.ev_discarded;
    sunk_energy = eng.Engine.sunk_energy;
    ledger_energy_ok;
    pre_loss;
    post_loss = { post_loss_eng with Slrh.schedule = sched };
  }

let pp_outcome ppf o =
  Fmt.pf ppf
    "dynamic<%a survivors=%d discarded=%d sunk=%.3f completed=%b ledger_ok=%b>"
    Schedule.pp o.schedule o.n_survivors o.n_discarded o.sunk_energy o.completed
    o.ledger_energy_ok

(* ------------------------------------------------------------------ *)
(* Temporary outage: the machine disappears during [from_, until_) and
   then REJOINS — the paper's "assets can appear and disappear" scenario
   in full. One engine run over [Leave; Rejoin]: the rejoin flips the mask
   back and bills the returning machine for the energy it burned on its
   discarded pre-outage work, and the final phase finishes the mapping
   with the machine available again. *)

type outage_outcome = {
  o_schedule : Schedule.t;  (** final schedule, original grid and indices *)
  o_completed : bool;
  o_n_discarded : int;  (** work discarded at the loss instant *)
  o_sunk_energy : float;
  o_ledger_energy_ok : bool;
  o_during : outcome;  (** the loss-phase outcome (reduced grid) *)
  o_final : Slrh.outcome;  (** the post-rejoin SLRH phase *)
}

let run_with_outage params workload ~machine ~from_ ~until_ =
  if until_ < from_ then invalid_arg "Dynamic.run_with_outage: until before from";
  if from_ < 0 then invalid_arg "Dynamic.run_with_outage: negative outage start";
  if machine < 0 || machine >= Workload.n_machines workload then
    invalid_arg "Dynamic.run_with_outage: no such machine";
  let eng =
    run_churn params workload
      [
        { Event.at = from_; kind = Event.Leave machine };
        { Event.at = until_; kind = Event.Rejoin machine };
      ]
  in
  (* the reduced-grid view of the outage window, for callers comparing
     against a permanent loss: a bounded loss run on its own trace *)
  let during =
    let bounded = Workload.with_tau workload ~tau_cycles:(max 1 (until_ - 1)) in
    run_with_loss params bounded { at = from_; machine }
  in
  let o_final =
    match List.rev eng.Engine.phases with
    | last :: _ -> last.Engine.ph_outcome
    | [] -> assert false
  in
  let o_n_discarded =
    List.fold_left
      (fun acc (a : Engine.applied) ->
        match a.Engine.ev.Event.kind with
        | Event.Leave _ -> acc + a.Engine.ev_discarded
        | _ -> acc)
      0 eng.Engine.applied
  in
  {
    o_schedule = eng.Engine.schedule;
    o_completed = eng.Engine.completed;
    o_n_discarded;
    o_sunk_energy = eng.Engine.sunk_energy;
    o_ledger_energy_ok = eng.Engine.ledger_energy_ok;
    o_during = during;
    o_final;
  }

let pp_outage ppf o =
  Fmt.pf ppf "outage<%a discarded=%d sunk=%.3f completed=%b ledger_ok=%b>"
    Schedule.pp o.o_schedule o.o_n_discarded o.o_sunk_energy o.o_completed
    o.o_ledger_energy_ok
