(** Online Lagrangian dual ascent inside a single SLRH run (DESIGN.md
    section 11). A controller holds nonnegative multipliers for the
    energy (TEC/TSE) and time-extent (AET/tau) constraints, measures
    pacing subgradients at every commit epoch and after churn events,
    steps them along the decreasing [c / sqrt round] schedule
    ({!Agrid_lagrange.Dual}), and republishes the equivalent normalised
    {!Objective.weights} — the scoring path itself is unchanged, and no
    incremental cache needs invalidating on an update. *)

open Agrid_sched

(** Immutable configuration, as carried by the CLI, the serve job codec
    and campaign grids. A fresh mutable controller ({!create}) must be
    built from it per run/replicate. *)
type spec = {
  step_c : float;  (** [c] in the [c / sqrt round] step schedule *)
  init_energy : float option;
      (** initial energy multiplier; [None] derives [beta/alpha] from the
          seed weights *)
  init_aet : float option;
      (** initial AET multiplier; [None] derives [gamma/alpha] *)
  prob : float option;
      (** chance-constrained feasibility service probability; [None]
          keeps {!Feasibility.Conservative} *)
  sigma : float;  (** relative estimation error for the chance margin *)
}

val default_spec : spec
(** [{ step_c = 0.5; init_energy = None; init_aet = None; prob = None;
       sigma = 0.1 }] *)

val validate_spec : spec -> (unit, string) result
(** One-line human-readable reason on rejection (non-finite or
    nonpositive step constant, negative initial multipliers, [prob]
    outside (0, 1), negative sigma). *)

val feas_mode : spec -> Feasibility.mode
(** The feasibility mode the spec implies: {!Feasibility.Conservative}
    when [prob = None], else the validated chance mode. *)

type t
(** Mutable per-run controller state: the dual iterate, the current
    weights and the last update's commit epoch. *)

val create : spec -> Objective.weights -> t
(** Seed the controller from the run's starting weights. Multipliers not
    given explicitly are derived via [lambda_e = beta/alpha],
    [lambda_a = gamma/alpha]; the published weights are immediately the
    normalised image of the (possibly explicit) multipliers.
    @raise Invalid_argument if the spec is invalid or [alpha <= 0]. *)

val weights : t -> Objective.weights
(** The current normalised weights — what {!Slrh} scores with. *)

val rounds : t -> int
(** Dual rounds taken so far. *)

val lambda_energy : t -> float
val lambda_aet : t -> float

val on_timestep : t -> obs:Agrid_obs.Sink.t -> clock:int -> Schedule.t -> unit
(** End-of-timestep hook: runs one dual round iff the timestep advanced
    the mapped count past the last update's epoch. Emits ["lagrange/*"]
    telemetry and a {!Agrid_obs.Ledger.Multiplier} entry when a ledger is
    attached. *)

val on_churn : t -> obs:Agrid_obs.Sink.t -> clock:int -> Schedule.t -> unit
(** After-churn hook: unconditionally re-prices the constraints against
    the post-event grid (trigger ["churn"]). *)

val pp : Format.formatter -> t -> unit
