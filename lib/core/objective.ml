(* The global Lagrangian objective of paper Section IV:

     ObjFn(alpha, beta, gamma) =
         alpha * T100/|T|  -  beta * TEC/TSE  +  gamma * AET/tau

   All three terms are normalised to [0,1]; the weights are nonnegative and
   sum to 1, confining the objective to [-1, 1] (in practice [0,1] when
   beta's term is small). The hard system constraints appear only as soft
   biases here — feasibility is enforced by the candidate-pool check and by
   post-run validation, as in the paper.

   The sign of the AET term is positive on purpose: the paper found that
   penalising AET produced short schedules with poor T100, so the final
   term *rewards* using the available time up to tau. *)

open Agrid_workload
open Agrid_sched

(* [aet_sign] reproduces the paper's design discussion: the published
   objective REWARDS late completion (+gamma, "encourage use of all of the
   available time"); the rejected alternative penalised it and "caused the
   heuristic to produce very short AET solutions, but with correspondingly
   lower T100 values". [Penalise] exists for the bench ablation that
   reproduces that claim. *)
type aet_sign = Reward | Penalise

type weights = { alpha : float; beta : float; gamma : float; aet_sign : aet_sign }

let make_weights ~alpha ~beta =
  if alpha < 0. || beta < 0. then
    invalid_arg "Objective.make_weights: weights must be nonnegative";
  let gamma = 1. -. alpha -. beta in
  if gamma < -.1e-9 then
    invalid_arg "Objective.make_weights: alpha + beta must not exceed 1";
  { alpha; beta; gamma = Float.max 0. gamma; aet_sign = Reward }

let weights_exact ~alpha ~beta ~gamma =
  if alpha < 0. || beta < 0. || gamma < 0. then
    invalid_arg "Objective.weights_exact: weights must be nonnegative";
  if Float.abs (alpha +. beta +. gamma -. 1.) > 1e-9 then
    invalid_arg "Objective.weights_exact: weights must sum to 1";
  { alpha; beta; gamma; aet_sign = Reward }

let with_aet_sign aet_sign w = { w with aet_sign }

let pp_weights ppf w =
  Fmt.pf ppf "(a=%.3f b=%.3f g=%s%.3f)" w.alpha w.beta
    (match w.aet_sign with Reward -> "" | Penalise -> "-")
    w.gamma

(* The objective split into its three weighted terms, for the decision
   ledger's commit records. [total] is computed with the exact operation
   order the scalar [value] always used (t100 term, minus energy term,
   plus signed AET term), so deriving [value] from [value_parts] is
   bit-identical — pinned by the no-op-sink regression tests. *)
type parts = {
  t100_term : float;  (* alpha * T100/|T| *)
  energy_term : float;  (* beta * TEC/TSE, subtracted in the total *)
  aet_term : float;  (* gamma * AET/tau, already carrying aet_sign *)
  total : float;
}

let value_parts w ~t100 ~n_tasks ~tec ~tse ~aet ~tau =
  let aet_raw = w.gamma *. (float_of_int aet /. float_of_int tau) in
  let aet_term = match w.aet_sign with Reward -> aet_raw | Penalise -> -.aet_raw in
  let t100_term = w.alpha *. (float_of_int t100 /. float_of_int n_tasks) in
  let energy_term = w.beta *. (tec /. tse) in
  { t100_term; energy_term; aet_term; total = t100_term -. energy_term +. aet_term }

let value w ~t100 ~n_tasks ~tec ~tse ~aet ~tau =
  (value_parts w ~t100 ~n_tasks ~tec ~tse ~aet ~tau).total

let of_schedule w sched =
  let wl = Schedule.workload sched in
  value w ~t100:(Schedule.n_primary sched) ~n_tasks:(Workload.n_tasks wl)
    ~tec:(Schedule.tec sched)
    ~tse:(Workload.total_system_energy wl)
    ~aet:(Schedule.aet sched) ~tau:(Workload.tau wl)

(* Objective as it would stand after committing [plan] (exact; used by
   Max-Max, whose selection rule is the maximum objective increase). *)
let after_plan w sched plan =
  let wl = Schedule.workload sched in
  let t100, tec, aet = Schedule.totals_after sched plan in
  value w ~t100 ~n_tasks:(Workload.n_tasks wl) ~tec
    ~tse:(Workload.total_system_energy wl)
    ~aet:(Schedule.aet sched |> max aet) ~tau:(Workload.tau wl)

(* The parent-derived inputs of the candidate estimate. Once a task is
   poolable every parent is mapped, and placements never change within one
   scheduler run — so this pair is a fixed point of the task's parents and
   the destination machine, and the incremental pool caches it per
   (task, machine). [ready_floor] starts at [min_int], the identity of
   integer max, so [max now ready_floor] below reassociates the original
   fold (which started at [now]) without changing any value; [comm_energy]
   accumulates in parent-edge array order, so the cached sum is the same
   float the inline fold produced. *)
type parent_bound = { ready_floor : int; comm_energy : float }

let parent_bound sched ~task ~machine =
  let wl = Schedule.workload sched in
  let grid = Workload.grid wl in
  let dag = Workload.dag wl in
  let ready = ref min_int in
  let comm_energy = ref 0. in
  Array.iter
    (fun (p, edge) ->
      match Schedule.placement sched p with
      | None -> invalid_arg "Objective.estimate: unmapped parent"
      | Some pp ->
          if pp.Schedule.machine = machine then ready := max !ready pp.Schedule.stop
          else begin
            let bits = Workload.edge_bits wl ~edge ~parent_version:pp.Schedule.version in
            let cycles =
              Agrid_platform.Comm.transfer_cycles grid ~src:pp.Schedule.machine
                ~dst:machine ~bits
            in
            comm_energy :=
              !comm_energy
              +. Agrid_platform.Comm.transfer_energy grid ~src:pp.Schedule.machine
                   ~dst:machine ~bits;
            ready := max !ready (pp.Schedule.stop + cycles)
          end)
    (Agrid_dag.Dag.parent_edges dag task);
  { ready_floor = !ready; comm_energy = !comm_energy }

(* Cheap candidate score used by SLRH when ordering the pool (the paper
   scores the pool before computing exact start times; see DESIGN.md
   section 5). The finish estimate is a lower bound: latest parent finish
   plus that parent's transfer time if it sits on another machine, ignoring
   channel contention and machine busy gaps. [estimate_parts] keeps the
   term decomposition for the ledger; [estimate] is its total. The
   [_with] forms take a precomputed {!parent_bound} — both modes of the
   scheduler run the same arithmetic; they differ only in whether the
   bound was just computed or pulled from the cache. *)
let estimate_parts_with w sched ~bound ~task ~version ~machine ~now =
  let wl = Schedule.workload sched in
  let ready = max now bound.ready_floor in
  let start = max ready (Timeline.horizon (Schedule.exec_timeline sched machine)) in
  let finish = start + Workload.exec_cycles wl ~task ~machine ~version in
  let t100 =
    Schedule.n_primary sched + if Version.is_primary version then 1 else 0
  in
  let tec =
    Schedule.tec sched
    +. Workload.exec_energy wl ~task ~machine ~version
    +. bound.comm_energy
  in
  let aet = max (Schedule.aet sched) finish in
  value_parts w ~t100 ~n_tasks:(Workload.n_tasks wl) ~tec
    ~tse:(Workload.total_system_energy wl)
    ~aet ~tau:(Workload.tau wl)

let estimate_parts w sched ~task ~version ~machine ~now =
  estimate_parts_with w sched
    ~bound:(parent_bound sched ~task ~machine)
    ~task ~version ~machine ~now

let estimate_with w sched ~bound ~task ~version ~machine ~now =
  (estimate_parts_with w sched ~bound ~task ~version ~machine ~now).total

let estimate w sched ~task ~version ~machine ~now =
  (estimate_parts w sched ~task ~version ~machine ~now).total

(* Best version for a candidate under the objective: evaluate both and keep
   the maximiser (paper Section IV: "selected the version that maximised
   the value of the objective function"). The bound is version-independent,
   so one computation serves both evaluations. *)
let best_version_with w sched ~bound ~task ~machine ~now =
  let ep = estimate_with w sched ~bound ~task ~version:Version.Primary ~machine ~now in
  let es = estimate_with w sched ~bound ~task ~version:Version.Secondary ~machine ~now in
  if ep >= es then (Version.Primary, ep) else (Version.Secondary, es)

let best_version ?(obs = Agrid_obs.Sink.noop) w sched ~task ~machine ~now =
  Agrid_obs.Sink.add obs "objective/version_evals" 2;
  best_version_with w sched
    ~bound:(parent_bound sched ~task ~machine)
    ~task ~machine ~now

(* ---- flat (SoA) batch scoring ----

   The arena path of the scheduler stores parent bounds in two flat
   arrays (int ready floors, float comm energies) instead of the boxed
   option-array of records the incremental cache uses, and scores a
   whole pool in one pass with every schedule-wide input hoisted out of
   the loop. Bit-identity with the boxed path rests on two facts:

   - hoisting is sound because scoring never mutates the schedule, so
     every per-candidate read ([Timeline.horizon], [Schedule.tec], ...)
     returns the identical value the boxed path reads;
   - every float expression below is the same operation sequence
     [parent_bound] / [estimate_parts_with] / [value_parts] evaluate, in
     the same order — pinned by the QCheck batch-equals-fold property
     and the SoA differential pairs. *)

(* [parent_bound], accumulated directly into the destination slots: the
   same parent-edge iteration order, the same [max] folds from the same
   identities ([min_int] / [0.]), the same float additions — so the
   stored pair is bit-identical to the record the boxed cache stores. *)
let parent_bound_into sched ~task ~machine ~slot bound_ready bound_comm =
  let wl = Schedule.workload sched in
  let grid = Workload.grid wl in
  let dag = Workload.dag wl in
  let edges = Agrid_dag.Dag.parent_edges dag task in
  bound_ready.(slot) <- min_int;
  bound_comm.(slot) <- 0.;
  for i = 0 to Array.length edges - 1 do
    let p, edge = edges.(i) in
    match Schedule.placement sched p with
    | None -> invalid_arg "Objective.estimate: unmapped parent"
    | Some pp ->
        if pp.Schedule.machine = machine then begin
          if pp.Schedule.stop > bound_ready.(slot) then
            bound_ready.(slot) <- pp.Schedule.stop
        end
        else begin
          let bits = Workload.edge_bits wl ~edge ~parent_version:pp.Schedule.version in
          let cycles =
            Agrid_platform.Comm.transfer_cycles grid ~src:pp.Schedule.machine
              ~dst:machine ~bits
          in
          bound_comm.(slot) <-
            bound_comm.(slot)
            +. Agrid_platform.Comm.transfer_energy grid ~src:pp.Schedule.machine
                 ~dst:machine ~bits;
          let r = pp.Schedule.stop + cycles in
          if r > bound_ready.(slot) then bound_ready.(slot) <- r
        end
  done

(* Score the pool [tasks.(0 .. n-1)] for [machine] in one pass, writing
   the best version and score per slot into [versions] / [scores].
   Parent bounds are priced lazily into the flat store (valid for the
   whole run, exactly like the incremental cache's). Equals
   [best_version_with w sched ~bound ~task ~machine ~now] per candidate,
   bit for bit. On the steady-state path (noop sink, warm bounds) the
   loop performs no heap allocation: all hoisted floats live in unboxed
   locals, and the per-version evaluation is a local function whose
   results flow straight into float-array writes. *)
let score_into w sched ~machine ~now ~n ~tasks ~bound_ready ~bound_comm
    ~bound_known ~versions ~scores =
  if n > 0 then begin
    let wl = Schedule.workload sched in
    let stride = Workload.n_machines wl in
    let horizon = Timeline.horizon (Schedule.exec_timeline sched machine) in
    let n_primary = Schedule.n_primary sched in
    let tec0 = Schedule.tec sched in
    let aet0 = Schedule.aet sched in
    let tse = Workload.total_system_energy wl in
    let n_tasks_f = float_of_int (Workload.n_tasks wl) in
    let tau_f = float_of_int (Workload.tau wl) in
    (* [estimate_parts_with]'s total for one version, every schedule-wide
       load hoisted; [start] and [comm] are version-independent. *)
    let est task start comm version =
      let finish = start + Workload.exec_cycles wl ~task ~machine ~version in
      let t100 = n_primary + if Version.is_primary version then 1 else 0 in
      let tec = tec0 +. Workload.exec_energy wl ~task ~machine ~version +. comm in
      let aet = if aet0 >= finish then aet0 else finish in
      let aet_raw = w.gamma *. (float_of_int aet /. tau_f) in
      let aet_term =
        match w.aet_sign with Reward -> aet_raw | Penalise -> -.aet_raw
      in
      let t100_term = w.alpha *. (float_of_int t100 /. n_tasks_f) in
      let energy_term = w.beta *. (tec /. tse) in
      t100_term -. energy_term +. aet_term
    in
    for k = 0 to n - 1 do
      let task = tasks.(k) in
      let slot = (task * stride) + machine in
      if Bytes.get bound_known slot = '\000' then begin
        parent_bound_into sched ~task ~machine ~slot bound_ready bound_comm;
        Bytes.set bound_known slot '\001'
      end;
      let rf = bound_ready.(slot) in
      let comm = bound_comm.(slot) in
      let ready = if now >= rf then now else rf in
      let start = if ready >= horizon then ready else horizon in
      let ep = est task start comm Version.Primary in
      let es = est task start comm Version.Secondary in
      if ep >= es then begin
        versions.(k) <- Version.Primary;
        scores.(k) <- ep
      end
      else begin
        versions.(k) <- Version.Secondary;
        scores.(k) <- es
      end
    done
  end

(* Histogram bucket bounds covering the objective's analytic range [-1, 1]
   (the weights are nonnegative and sum to 1, and every term is
   normalised), for score-distribution telemetry. *)
let score_bounds = Agrid_obs.Hist.linear_bounds ~lo:(-1.) ~hi:1. ~n:40
