(** The global Lagrangian objective of paper Section IV:
    [ObjFn = alpha*T100/|T| - beta*TEC/TSE + gamma*AET/tau], weights
    nonnegative summing to 1. The positive AET sign is the paper's choice:
    it rewards using the time budget, which favours primary versions. *)

open Agrid_workload
open Agrid_sched

type aet_sign =
  | Reward  (** the paper's published choice: +gamma AET/tau *)
  | Penalise  (** the rejected alternative (ablation): -gamma AET/tau *)

type weights = private {
  alpha : float;
  beta : float;
  gamma : float;
  aet_sign : aet_sign;
}

val make_weights : alpha:float -> beta:float -> weights
(** [gamma] is [1 - alpha - beta]; AET sign defaults to the paper's
    [Reward]. @raise Invalid_argument if negative or exceeding 1. *)

val weights_exact : alpha:float -> beta:float -> gamma:float -> weights
(** Explicit gamma; AET sign defaults to [Reward]. *)

val with_aet_sign : aet_sign -> weights -> weights
(** Flip between the paper's [Reward] and the ablation's [Penalise]. *)

val pp_weights : Format.formatter -> weights -> unit

type parts = {
  t100_term : float;  (** alpha * T100/|T| *)
  energy_term : float;  (** beta * TEC/TSE — subtracted in [total] *)
  aet_term : float;  (** gamma * AET/tau, sign already per [aet_sign] *)
  total : float;  (** [t100_term -. energy_term +. aet_term] *)
}
(** The objective split into its weighted terms, for the decision
    ledger's commit records. [value] and [estimate] are the totals of
    [value_parts] / [estimate_parts] — same float operations in the same
    order, so the decomposition costs nothing and changes nothing. *)

val value_parts :
  weights ->
  t100:int ->
  n_tasks:int ->
  tec:float ->
  tse:float ->
  aet:int ->
  tau:int ->
  parts

val value :
  weights ->
  t100:int ->
  n_tasks:int ->
  tec:float ->
  tse:float ->
  aet:int ->
  tau:int ->
  float

val of_schedule : weights -> Schedule.t -> float

val after_plan : weights -> Schedule.t -> Schedule.plan -> float
(** Exact objective after committing the plan (Max-Max's selection rule). *)

type parent_bound = private { ready_floor : int; comm_energy : float }
(** The parent-derived inputs of {!estimate_parts}: the earliest-ready
    floor (latest parent finish, plus the cross-machine transfer latency
    where applicable; [min_int] when the task has no parents) and the
    incoming communication energy. Fixed once the task's parents are
    mapped, so the incremental scheduler caches it per (task, machine);
    {!estimate_parts_with} consumes it with arithmetic identical to the
    uncached path (same fold order, same float operations). *)

val parent_bound : Schedule.t -> task:int -> machine:int -> parent_bound
(** @raise Invalid_argument on unmapped parents. *)

val estimate_parts :
  weights -> Schedule.t -> task:int -> version:Version.t -> machine:int -> now:int -> parts
(** {!estimate} with the term decomposition kept, for ledger commits. *)

val estimate_parts_with :
  weights ->
  Schedule.t ->
  bound:parent_bound ->
  task:int ->
  version:Version.t ->
  machine:int ->
  now:int ->
  parts
(** {!estimate_parts} against a precomputed (possibly cached)
    {!parent_bound}; bit-identical to recomputing the bound in place. *)

val estimate :
  weights -> Schedule.t -> task:int -> version:Version.t -> machine:int -> now:int -> float
(** Cheap candidate score used by SLRH to order the pool before exact
    placement (DESIGN.md section 5). @raise Invalid_argument on unmapped
    parents. *)

val estimate_with :
  weights ->
  Schedule.t ->
  bound:parent_bound ->
  task:int ->
  version:Version.t ->
  machine:int ->
  now:int ->
  float

val best_version :
  ?obs:Agrid_obs.Sink.t ->
  weights ->
  Schedule.t ->
  task:int ->
  machine:int ->
  now:int ->
  Version.t * float
(** Evaluate both versions, keep the maximiser (ties favour primary).
    [?obs] (default: inert) counts ["objective/version_evals"]. *)

val best_version_with :
  weights ->
  Schedule.t ->
  bound:parent_bound ->
  task:int ->
  machine:int ->
  now:int ->
  Version.t * float
(** {!best_version} against a precomputed bound (the bound is
    version-independent, so one serves both evaluations). No [?obs]: the
    incremental scheduler accounts version evals itself, exactly as the
    plain path does. *)

val parent_bound_into :
  Schedule.t ->
  task:int ->
  machine:int ->
  slot:int ->
  int array ->
  float array ->
  unit
(** {!parent_bound}, accumulated directly into flat per-(task, machine)
    stores at index [slot] — the SoA arena's unboxed replacement for the
    incremental mode's option-array of records. Same fold order, same
    float additions, bit-identical values.
    @raise Invalid_argument on unmapped parents. *)

val score_into :
  weights ->
  Schedule.t ->
  machine:int ->
  now:int ->
  n:int ->
  tasks:int array ->
  bound_ready:int array ->
  bound_comm:float array ->
  bound_known:Bytes.t ->
  versions:Version.t array ->
  scores:float array ->
  unit
(** Batch-score the pool [tasks.(0 .. n-1)] for [machine] in one pass,
    writing the best version and score per slot into [versions] /
    [scores]. Parent bounds are priced lazily into the flat store
    (stride [n_machines], index [task * n_machines + machine]; a slot is
    trusted once its [bound_known] byte is set — valid for the whole run
    because placements are immutable within one). Per candidate this
    equals {!best_version_with} bit for bit (pinned by the QCheck
    batch-equals-fold property); schedule-wide inputs are hoisted out of
    the loop, and with warm bounds the pass performs no heap allocation. *)

val score_bounds : float array
(** Histogram bucket bounds spanning the objective's analytic range
    [[-1, 1]], for score-distribution telemetry
    ({!Agrid_obs.Hist.make}-compatible). *)
