(* Online Lagrangian dual ascent — the paper's stated future work ("this
   value requires adjustment whenever the system environment changes",
   Section VIII) done the way SNIPPETS.md Snippet 2 (mocasin's LRSolver)
   does it: per-constraint nonnegative multipliers stepped against
   measured constraint violation WHILE a single SLRH run unfolds, rather
   than between whole runs (that is Agrid_tuner.Adaptive's offline loop).

   The relaxation: with multipliers lambda_e (energy) and lambda_a (time
   extent), the Lagrangian "reward primaries minus priced constraints"
   objective T100/|T| - lambda_e * TEC/TSE +- lambda_a * AET/tau is, up to
   the positive scale 1/(1 + lambda_e + lambda_a), exactly the paper's
   weighted objective with

     alpha = 1/s,  beta = lambda_e/s,  gamma = lambda_a/s,
     s = 1 + lambda_e + lambda_a.

   Scaling never reorders candidates, so feeding the normalised weights
   back into Objective's unchanged score decomposition IS dual ascent on
   the paper's objective — no new scoring path, and none of the
   weight-independent incremental caches (Feasibility.Memo, parent
   bounds, whole-pool reuse) need invalidating on an update: pool
   membership never reads the weights, and scoring re-reads them on every
   call (DESIGN.md section 11).

   Subgradients are measured against a pacing target at each commit epoch
   (a timestep that mapped at least one subtask) and after churn events.
   TEC and AET both accrue at commit time — a placement charges its whole
   execution the moment it is committed, well ahead of the wall clock —
   so the energy pacing reference is the committed work share mapped/|T|,
   not elapsed time (against clock/tau every early commit would read as a
   violation and the energy price could only ratchet upward). The burn
   share blends the aggregate with the most-stressed battery: batteries
   are per-machine resources, and on a heterogeneous grid the aggregate
   TEC/TSE stays slack long after the favourite machines run dry, while
   the hottest battery alone over-prices runs that sensibly concentrate
   work on the efficient machines — the mean of the two prices both the
   system budget and the bottleneck:

     g_energy = (TEC/TSE + max_j used_j/B(j)) / 2 - mapped/|T|
     g_aet    = AET/tau - 1

   The time extent needs no pacing at all: extent, unlike energy, does
   not grow per task, so AET/tau is directly comparable to the deadline
   and its residual is the overrun.

   Positive = the constraint is binding (its price rises); negative =
   slack (the price decays toward rewarding primaries). Both components
   stay within the violation histogram's [-1, 1] span except on a
   deadline overrun or a battery driven negative, which the edge buckets
   absorb. At the fixed point the blended burn share paces the committed
   work share — lambda_e settles at the shadow price of energy for this
   grid — and lambda_a decays to 0 unless the deadline is actually
   threatened. *)

open Agrid_workload
open Agrid_sched
module Dual = Agrid_lagrange.Dual

type spec = {
  step_c : float;  (* c in the c/sqrt(round) schedule *)
  init_energy : float option;  (* explicit lambda_e; None = derive from weights *)
  init_aet : float option;  (* explicit lambda_a; None = derive from weights *)
  prob : float option;  (* chance service probability; None = conservative *)
  sigma : float;  (* relative estimation error for the chance margin *)
}

let default_spec =
  { step_c = 0.5; init_energy = None; init_aet = None; prob = None; sigma = 0.1 }

(* One-line human messages: the CLI prefixes them with the subcommand and
   exits 2; the serve codec returns them as typed rejected lines. *)
let validate_spec s =
  let bad_init l = (not (Float.is_finite l)) || l < 0. in
  if (not (Float.is_finite s.step_c)) || s.step_c <= 0. then
    Error "step constant must be positive and finite"
  else if (match s.init_energy with Some l -> bad_init l | None -> false) then
    Error "initial energy multiplier must be finite and nonnegative"
  else if (match s.init_aet with Some l -> bad_init l | None -> false) then
    Error "initial AET multiplier must be finite and nonnegative"
  else if
    match s.prob with
    | Some p -> (not (Float.is_finite p)) || p <= 0. || p >= 1.
    | None -> false
  then Error "service probability must lie strictly inside (0, 1)"
  else if (not (Float.is_finite s.sigma)) || s.sigma < 0. then
    Error "sigma must be finite and nonnegative"
  else Ok ()

let feas_mode s =
  match s.prob with
  | None -> Feasibility.Conservative
  | Some p -> Feasibility.chance ~p ~sigma:s.sigma

type t = {
  dual : Dual.t;  (* [| lambda_energy; lambda_aet |] *)
  aet_sign : Objective.aet_sign;  (* carried over from the seed weights *)
  mutable weights : Objective.weights;
  mutable last_epoch : int;  (* Schedule.n_mapped at the last update *)
}

let weights_of_multipliers ~aet_sign ~lambda_energy ~lambda_aet =
  let s = 1. +. lambda_energy +. lambda_aet in
  Objective.with_aet_sign aet_sign
    (Objective.make_weights ~alpha:(1. /. s) ~beta:(lambda_energy /. s))

let create spec (w0 : Objective.weights) =
  (match validate_spec spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Adapt.create: " ^ msg));
  if w0.Objective.alpha <= 0. then
    invalid_arg "Adapt.create: seed weights need alpha > 0 to derive multipliers";
  let lambda_energy =
    match spec.init_energy with
    | Some l -> l
    | None -> w0.Objective.beta /. w0.Objective.alpha
  in
  let lambda_aet =
    match spec.init_aet with
    | Some l -> l
    | None -> w0.Objective.gamma /. w0.Objective.alpha
  in
  let dual = Dual.create ~c:spec.step_c [| lambda_energy; lambda_aet |] in
  {
    dual;
    aet_sign = w0.Objective.aet_sign;
    weights =
      weights_of_multipliers ~aet_sign:w0.Objective.aet_sign ~lambda_energy
        ~lambda_aet;
    last_epoch = 0;
  }

let weights t = t.weights
let rounds t = Dual.round t.dual
let lambda_energy t = Dual.get t.dual 0
let lambda_aet t = Dual.get t.dual 1

(* Subgradients span [-1, 1] (both terms are normalised shares). *)
let violation_bounds = Agrid_obs.Hist.linear_bounds ~lo:(-1.) ~hi:1. ~n:16

let update t ~trigger ~obs ~clock sched =
  let wl = Schedule.workload sched in
  let tau = float_of_int (Workload.tau wl) in
  let n_tasks = float_of_int (Workload.n_tasks wl) in
  let epoch = Schedule.n_mapped sched in
  let progress = float_of_int epoch /. n_tasks in
  (* hottest battery: burn share of the machine closest to depletion *)
  let hottest = ref 0. in
  for m = 0 to Workload.n_machines wl - 1 do
    let used = Schedule.energy_used sched m in
    let capacity = used +. Schedule.energy_remaining sched m in
    if capacity > 0. then hottest := Float.max !hottest (used /. capacity)
  done;
  let burn =
    0.5 *. ((Schedule.tec sched /. Workload.total_system_energy wl) +. !hottest)
  in
  let g_energy = burn -. progress in
  let extent = float_of_int (Schedule.aet sched) /. tau in
  let g_aet = extent -. 1. in
  let before = t.weights in
  let step = Dual.step t.dual [| g_energy; g_aet |] in
  let lambda_energy = Dual.get t.dual 0 and lambda_aet = Dual.get t.dual 1 in
  let after =
    weights_of_multipliers ~aet_sign:t.aet_sign ~lambda_energy ~lambda_aet
  in
  t.weights <- after;
  t.last_epoch <- epoch;
  if Agrid_obs.Sink.enabled obs then begin
    Agrid_obs.Sink.incr obs "lagrange/updates";
    if String.equal trigger "churn" then
      Agrid_obs.Sink.incr obs "lagrange/churn_updates";
    Agrid_obs.Sink.max_gauge obs "lagrange/lambda_energy" lambda_energy;
    Agrid_obs.Sink.max_gauge obs "lagrange/lambda_aet" lambda_aet;
    Agrid_obs.Sink.observe obs "lagrange/violation" ~bounds:violation_bounds
      g_energy;
    Agrid_obs.Sink.observe obs "lagrange/violation" ~bounds:violation_bounds g_aet
  end;
  match Agrid_obs.Sink.ledger obs with
  | None -> ()
  | Some led ->
      Agrid_obs.Ledger.record led
        (Agrid_obs.Ledger.Multiplier
           {
             clock;
             epoch;
             round = Dual.round t.dual;
             trigger;
             step;
             g_energy;
             g_aet;
             lambda_energy;
             lambda_aet;
             alpha_before = before.Objective.alpha;
             beta_before = before.Objective.beta;
             gamma_before = before.Objective.gamma;
             alpha = after.Objective.alpha;
             beta = after.Objective.beta;
             gamma = after.Objective.gamma;
           })

(* End-of-timestep hook: one dual round per commit epoch — a timestep
   that advanced the mapped count since the last round. Idle timesteps
   measure nothing (the schedule did not change, so neither would the
   subgradient's progress terms in a useful direction). *)
let on_timestep t ~obs ~clock sched =
  if Schedule.n_mapped sched > t.last_epoch then
    update t ~trigger:"epoch" ~obs ~clock sched

(* After-churn hook: the grid just changed under the run (battery shocks,
   leaves, rejoins), so re-price the constraints immediately even though
   no new commit happened. *)
let on_churn t ~obs ~clock sched = update t ~trigger:"churn" ~obs ~clock sched

let pp ppf t =
  Fmt.pf ppf "adapt<rounds=%d lambda=(%.4f, %.4f) %a>" (rounds t)
    (lambda_energy t) (lambda_aet t) Objective.pp_weights t.weights
