(* Flat structure-of-arrays candidate-pool arena for the SoA scheduler
   mode ([Slrh.params.mode = `Soa]).

   The boxed pool paths materialise one heap structure per free machine
   per timestep: an int list for the pool, a (task, version, score)
   tuple per candidate, a sorted copy of that list, and a closure or two
   around every span. The arena replaces all of it with preallocated
   parallel arrays owned by the run:

   - per machine, a [row] of task ids, best versions and scores, filled
     in ready-list order (the exact order the boxed path scores in, so
     histogram observation sequences match bit for bit);
   - one flat parent-bound store per (task, machine) — the ready floor
     and incoming communication energy of {!Objective.parent_bound},
     unpacked into an int array and a float array so neither lookups nor
     writes allocate (the option-array cache of the incremental mode
     boxes both the option and the record);
   - one shared [order] permutation used to sort each pool by
     (score desc, task asc) without moving the rows — the rows keep
     their fill order, which is what pool reuse re-scores next timestep.

   Epoch discipline is the incremental mode's: a row stamped with the
   commit epoch ([Schedule.n_mapped]) at build time is reused while the
   epoch is unchanged, because commits are the only intra-run mutation
   of the ready set, the mapped set and the batteries. Reuse is disabled
   while a decision ledger is attached, for the same reason it is in
   incremental mode: each rebuild emits rejection entries that reuse
   cannot replay.

   Rows start small and regrow geometrically, and regrowth allocates
   FRESH arrays — never [Array.blit] — because it only ever happens at
   the top of a rebuild, which overwrites every slot it uses. Capacity,
   high-water occupancy and the regrowth count are exposed so the bench
   gauges ("slrh/pool_capacity", "slrh/pool_hwm", "slrh/pool_regrown")
   surface arena sizing instead of capping it silently. *)

open Agrid_workload

module Flat = struct
  type row = {
    mutable tasks : int array;  (* pool task ids, ready-list order *)
    mutable versions : Version.t array;  (* best version per slot *)
    mutable scores : float array;  (* best score per slot *)
    mutable count : int;  (* live slots *)
    mutable admitted : int;  (* |raw pool| — "feasibility/admitted" replay *)
    mutable checked : int;  (* |ready set| — "feasibility/checked" replay *)
    mutable epoch : int;  (* Schedule.n_mapped at build; -1 = never built *)
  }

  type t = {
    memo : Feasibility.Memo.t;
    n_machines : int;
    n_tasks : int;
    rows : row array;  (* one per machine *)
    bound_ready : int array;  (* task * n_machines + machine -> ready floor *)
    bound_comm : float array;  (* task * n_machines + machine -> comm energy *)
    bound_known : Bytes.t;  (* '\001' once the slot above is priced *)
    order : int array;  (* shared sort permutation, length n_tasks *)
    reuse_pools : bool;  (* false while a decision ledger is attached *)
    mutable capacity : int;  (* largest row capacity *)
    mutable hwm : int;  (* largest pool ever held *)
    mutable regrown : int;  (* row regrowth events (fresh arrays, no copy) *)
  }

  let default_capacity = 16

  let create ?(initial_capacity = default_capacity) ~feas_mode ~reuse_pools
      workload =
    if initial_capacity <= 0 then
      invalid_arg "Pool.Flat.create: initial capacity must be positive";
    let n_tasks = Workload.n_tasks workload in
    let n_machines = Workload.n_machines workload in
    let cap = min initial_capacity (max 1 n_tasks) in
    {
      memo = Feasibility.Memo.create ~mode:feas_mode workload;
      n_machines;
      n_tasks;
      rows =
        Array.init n_machines (fun _ ->
            {
              tasks = Array.make cap 0;
              versions = Array.make cap Version.Primary;
              scores = Array.make cap 0.;
              count = 0;
              admitted = 0;
              checked = 0;
              epoch = -1;
            });
      bound_ready = Array.make (n_tasks * n_machines) min_int;
      bound_comm = Array.make (n_tasks * n_machines) 0.;
      bound_known = Bytes.make (n_tasks * n_machines) '\000';
      order = Array.init (max 1 n_tasks) (fun i -> i);
      reuse_pools;
      capacity = cap;
      hwm = 0;
      regrown = 0;
    }

  let capacity t = t.capacity
  let hwm t = t.hwm
  let regrown t = t.regrown

  (* Make [row] able to hold [n] candidates and return its task buffer.
     Only called at the top of a rebuild, before any slot is written, so
     stale contents are dead and the regrowth allocates fresh arrays
     without copying — pinned by the regrowth unit test. The discarded
     row is garbage for the GC, but regrowth happens O(log max-pool)
     times per run, never on the steady-state path. *)
  let ensure t row n =
    let cap = Array.length row.tasks in
    if n > cap then begin
      let cap' = ref cap in
      while !cap' < n do
        cap' := !cap' * 2
      done;
      row.tasks <- Array.make !cap' 0;
      row.versions <- Array.make !cap' Version.Primary;
      row.scores <- Array.make !cap' 0.;
      row.count <- 0;
      t.regrown <- t.regrown + 1;
      if !cap' > t.capacity then t.capacity <- !cap'
    end;
    row.tasks

  (* Record a freshly built pool's occupancy (for the high-water gauge). *)
  let note_occupancy t n = if n > t.hwm then t.hwm <- n

  (* Copy a boxed pool (the ledger-attached rebuild path) into the row. *)
  let fill_from_list t row pool =
    let n = List.length pool in
    ignore (ensure t row n);
    let i = ref 0 in
    List.iter
      (fun task ->
        row.tasks.(!i) <- task;
        incr i)
      pool;
    row.count <- n;
    note_occupancy t n

  (* Order the first [n] pool slots by decreasing score, ties broken on
     ascending task id — the boxed [List.sort] comparator. Task ids in a
     pool are distinct, so the comparator is a total order and any
     correct sort yields the one sequence [List.sort] yields; insertion
     sort keeps it allocation-free (pools stay well under a hundred).
     Writes the permutation into the shared [order] scratch; the rows
     themselves keep their fill order for reuse-path re-scoring. *)
  let sort t row n =
    let order = t.order in
    let scores = row.scores in
    let tasks = row.tasks in
    for i = 0 to n - 1 do
      order.(i) <- i
    done;
    for i = 1 to n - 1 do
      let k = order.(i) in
      let sk = scores.(k) in
      let tk = tasks.(k) in
      let j = ref (i - 1) in
      let moving = ref true in
      while !moving do
        if !j < 0 then moving := false
        else begin
          let kj = order.(!j) in
          let c = Float.compare scores.(kj) sk in
          if c < 0 || (c = 0 && tasks.(kj) > tk) then begin
            order.(!j + 1) <- kj;
            j := !j - 1
          end
          else moving := false
        end
      done;
      order.(!j + 1) <- k
    done
end
