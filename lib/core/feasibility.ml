(* Candidate-pool feasibility (paper Section IV): a subtask may enter the
   pool U for machine j iff
     (a) all of its parents are already mapped, and
     (b) machine j retains enough energy to run at least the SECONDARY
         version AND push all of its output data to its children.

   Condition (b) cannot be exact — the children are unmapped, so their
   link bandwidths are unknown. The paper resolves this with a worst-case
   assumption (every child on the lowest-bandwidth connection in the grid);
   [Optimistic] is the ablation variant that assumes children are co-located
   (zero communication energy), isolating how much the conservatism costs. *)

open Agrid_workload
open Agrid_sched

type mode =
  | Conservative
  | Optimistic
  | Chance of { p : float; sigma : float }

let mode_to_string = function
  | Conservative -> "conservative"
  | Optimistic -> "optimistic"
  | Chance { p; sigma } -> Fmt.str "chance(p=%g,sigma=%g)" p sigma

(* Smart constructor so an invalid service probability or sigma fails
   loudly at configuration time, not silently inside a pool filter. *)
let chance ~p ~sigma =
  ignore (Agrid_lagrange.Chance.inflation ~p ~sigma);
  Chance { p; sigma }

(* The worst-case child-communication surcharge for the mode. The chance
   mode keeps the conservative bound — its margin handles estimation
   error, not the unknown child placement. *)
let comm_bound ~mode wl ~task ~machine ~version =
  match mode with
  | Optimistic -> 0.
  | Conservative | Chance _ ->
      Workload.worst_case_child_comm_energy wl ~task ~machine ~version

(* Gaussian chance margin on a nominal energy bound: inflate by
   (1 + z * sigma), z = Phi^-1(p). Conservative/Optimistic pass through
   untouched (no multiplication), keeping those modes bit-identical to
   their historical selves; chance with p = 0.5 or sigma = 0 has factor
   exactly 1, and x *. 1. = x, so it coincides with Conservative bit for
   bit (a differential pair in the test suite). *)
let apply_margin ~mode req =
  match mode with
  | Conservative | Optimistic -> req
  | Chance { p; sigma } -> req *. Agrid_lagrange.Chance.inflation ~p ~sigma

(* Typed admissibility verdicts. The pool check used to answer only
   yes/no; the decision ledger needs to know WHY a subtask stayed out of
   U, so the primitive now produces the reason — which parent was
   unmapped, or which side of the energy bound (bare execution vs the
   worst-case child-communication surcharge) overflowed the battery — and
   the bare-bool API derives from it. *)
type infeasibility =
  | Parent_unmapped of { parent : int }
  | Exec_energy of { version : Version.t; required : float; available : float }
  | Comm_energy of { version : Version.t; exec : float; comm : float; available : float }

let pp_infeasibility ppf = function
  | Parent_unmapped { parent } -> Fmt.pf ppf "parent %d unmapped" parent
  | Exec_energy { version; required; available } ->
      Fmt.pf ppf "%a execution energy %.3f exceeds remaining %.3f" Version.pp version
        required available
  | Comm_energy { version; exec; comm; available } ->
      Fmt.pf ppf "%a exec %.3f + worst-case child comm %.3f exceeds remaining %.3f"
        Version.pp version exec comm available

(* Energy machine [j] must still hold for (task, version) to be admissible:
   the version's execution energy plus its child-communication bound. *)
let required_energy ?(mode = Conservative) sched ~task ~machine ~version =
  let wl = Schedule.workload sched in
  let exec = Workload.exec_energy wl ~task ~machine ~version in
  let comm = comm_bound ~mode wl ~task ~machine ~version in
  apply_margin ~mode (exec +. comm)

let version_verdict ?(mode = Conservative) sched ~task ~machine ~version =
  let wl = Schedule.workload sched in
  let exec = Workload.exec_energy wl ~task ~machine ~version in
  let comm = comm_bound ~mode wl ~task ~machine ~version in
  let available = Schedule.energy_remaining sched machine in
  match mode with
  | Conservative | Optimistic ->
      (* the historical branch, float for float *)
      if available >= exec +. comm then Ok ()
      else if available < exec then
        Error (Exec_energy { version; required = exec; available })
      else Error (Comm_energy { version; exec; comm; available })
  | Chance _ ->
      (* the margin inflates both report terms proportionally, so the
         ledger's exec/comm split still sums to the tested bound *)
      let required = apply_margin ~mode (exec +. comm) in
      if available >= required then Ok ()
      else
        let exec_infl = apply_margin ~mode exec in
        if available < exec_infl then
          Error (Exec_energy { version; required = exec_infl; available })
        else
          Error
            (Comm_energy
               { version; exec = exec_infl; comm = required -. exec_infl; available })

let version_feasible ?mode sched ~task ~machine ~version =
  match version_verdict ?mode sched ~task ~machine ~version with
  | Ok () -> true
  | Error _ -> false

(* SLRH admissibility: parents mapped, and at least the secondary version
   must fit (the primary-vs-secondary decision is made later, by the
   objective). [verdict] spells out the failure; [feasible] keeps the
   historical bool for the pool filter, whose input is already ready. *)
let verdict ?mode sched ~task ~machine =
  let dag = Workload.dag (Schedule.workload sched) in
  let unmapped_parent =
    Array.fold_left
      (fun acc (p, _) ->
        match acc with
        | Some _ -> acc
        | None -> if Schedule.is_mapped sched p then None else Some p)
      None
      (Agrid_dag.Dag.parent_edges dag task)
  in
  match unmapped_parent with
  | Some parent -> Error (Parent_unmapped { parent })
  | None -> version_verdict ?mode sched ~task ~machine ~version:Version.Secondary

let feasible ?mode sched ~task ~machine =
  version_feasible ?mode sched ~task ~machine ~version:Version.Secondary

(* The pool U for [machine]: ready (parents mapped), unmapped, and
   energy-admissible tasks. Telemetry (admission counters under the
   "feasibility/filter" span) is guarded on [Sink.enabled] so the no-op
   path never pays the list-length walks. *)
let candidate_pool ?mode ?(obs = Agrid_obs.Sink.noop) sched ~machine =
  Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
      let ready = Schedule.ready_unmapped sched in
      let pool = List.filter (fun task -> feasible ?mode sched ~task ~machine) ready in
      if Agrid_obs.Sink.enabled obs then begin
        Agrid_obs.Sink.add obs "feasibility/checked" (List.length ready);
        Agrid_obs.Sink.add obs "feasibility/admitted" (List.length pool)
      end;
      pool)

(* Memoised admission bounds for the incremental pool path. The energy a
   (task, machine) pair must clear — secondary execution plus the
   worst-case child-communication surcharge — is a pure function of the
   workload and the mode: it reads nothing from the schedule. So the bound
   can be priced once per pair and replayed on every later timestep; the
   admission test compares the SAME float the rescan path compares
   ([version_verdict] also forms [exec +. comm] before testing), keeping
   accept/reject decisions bit-identical. Entries are priced lazily: most
   (task, machine) pairs never become ready for a given machine. *)
module Memo = struct
  type nonrec t = {
    mode : mode;
    workload : Workload.t;
    n_machines : int;
    required : float array;  (* (task * n_machines + machine) -> bound; nan = unpriced *)
  }

  let create ?(mode = Conservative) workload =
    {
      mode;
      workload;
      n_machines = Workload.n_machines workload;
      required =
        Array.make (Workload.n_tasks workload * Workload.n_machines workload) Float.nan;
    }

  (* The secondary version's admission bound [exec +. comm], priced on
     first use. Real energies are finite, so nan is a safe "unpriced"
     sentinel. *)
  let required_secondary t ~task ~machine =
    let i = (task * t.n_machines) + machine in
    let v = t.required.(i) in
    if Float.is_nan v then begin
      let wl = t.workload in
      let exec =
        Workload.exec_energy wl ~task ~machine ~version:Version.Secondary
      in
      let comm =
        comm_bound ~mode:t.mode wl ~task ~machine ~version:Version.Secondary
      in
      (* same expression [version_verdict] tests under every mode, so
         memoised and rescan admissions stay bit-identical *)
      let v = apply_margin ~mode:t.mode (exec +. comm) in
      t.required.(i) <- v;
      v
    end
    else v

  let feasible t sched ~task ~machine =
    Schedule.energy_remaining sched machine >= required_secondary t ~task ~machine
end

(* [candidate_pool] with memoised energy bounds, returning the ready-set
   size alongside the pool so the caller can replay the admission counters
   verbatim when it later reuses the pool. Telemetry shape (span +
   counters) is identical to [candidate_pool]. *)
let candidate_pool_memo ?(obs = Agrid_obs.Sink.noop) memo sched ~machine =
  if not (Schedule.workload sched == memo.Memo.workload) then
    invalid_arg "Feasibility.candidate_pool_memo: memo priced for another workload";
  Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
      let ready = Schedule.ready_unmapped sched in
      let pool =
        List.filter (fun task -> Memo.feasible memo sched ~task ~machine) ready
      in
      if Agrid_obs.Sink.enabled obs then begin
        Agrid_obs.Sink.add obs "feasibility/checked" (List.length ready);
        Agrid_obs.Sink.add obs "feasibility/admitted" (List.length pool)
      end;
      (pool, List.length ready))

(* Batch admission for the flat (SoA) pool path: filter the ready set
   for [machine] straight into a caller-owned buffer. [ensure] is called
   exactly once, before any write, with an upper bound on the pool size
   (the ready-set length), so the caller can regrow its arena row while
   its contents are still dead. Returns
   (pool size, admitted count, checked count), where [admitted] counts
   energy-admissible tasks BEFORE the [eligible] filter — the same
   values [candidate_pool_memo] reports and the pool-reuse path replays.
   Span and counter telemetry shape is identical to [candidate_pool].

   The admission test compares the same memoised float against the same
   remaining-energy read the boxed path compares (hoisting the read is
   sound: scoring never mutates the schedule, so every per-task read
   returns the identical float), keeping decisions bit-identical. *)
let filter_into ?(obs = Agrid_obs.Sink.noop) memo sched ~machine ~eligible ~ensure =
  if not (Schedule.workload sched == memo.Memo.workload) then
    invalid_arg "Feasibility.filter_into: memo priced for another workload";
  Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
      let ready = Schedule.ready_unmapped sched in
      let n_ready = List.length ready in
      let dst = ensure n_ready in
      let available = Schedule.energy_remaining sched machine in
      let n = ref 0 in
      let admitted = ref 0 in
      List.iter
        (fun task ->
          if available >= Memo.required_secondary memo ~task ~machine then begin
            incr admitted;
            if eligible task then begin
              dst.(!n) <- task;
              incr n
            end
          end)
        ready;
      if Agrid_obs.Sink.enabled obs then begin
        Agrid_obs.Sink.add obs "feasibility/checked" n_ready;
        Agrid_obs.Sink.add obs "feasibility/admitted" !admitted
      end;
      (!n, !admitted, n_ready))

(* Every unmapped task the pool turned away for [machine], with its
   verdict — the decision ledger's per-candidate rejection record. This
   walks the whole task set and re-prices energies, so callers only run it
   when a ledger is attached; the pool itself is computed by
   [candidate_pool] exactly as before. *)
let explain_rejections ?mode sched ~machine =
  let wl = Schedule.workload sched in
  let n = Workload.n_tasks wl in
  let rejected = ref [] in
  for task = n - 1 downto 0 do
    if not (Schedule.is_mapped sched task) then
      match verdict ?mode sched ~task ~machine with
      | Ok () -> ()
      | Error why -> rejected := (task, why) :: !rejected
  done;
  !rejected

(* --- Tenant quotas (DESIGN.md section 14) ---------------------------------

   Admission control for multi-application traffic: a whole application is
   priced before it is scheduled, against the same conservative per-task
   bound the pool filter uses, so an admitted application can never burn
   more energy than the reservation charged to its tenant. *)

type quota = { q_energy : float option; q_machines : int option }

let no_quota = { q_energy = None; q_machines = None }

let quota_to_string q =
  let e = match q.q_energy with None -> "inf" | Some e -> Fmt.str "%g" e in
  let m = match q.q_machines with None -> "all" | Some m -> string_of_int m in
  Fmt.str "energy=%s machines=%s" e m

let validate_quota q =
  match (q.q_energy, q.q_machines) with
  | Some e, _ when (not (Float.is_finite e)) || e <= 0. ->
      Error (Fmt.str "energy quota must be finite and positive, got %g" e)
  | _, Some m when m <= 0 ->
      Error (Fmt.str "machine quota must be positive, got %d" m)
  | _ -> Ok ()

type quota_breach =
  | Energy_quota of { needed : float; budget : float; used : float }
  | Machine_quota of { allowed : int; required : int }

let pp_quota_breach ppf = function
  | Energy_quota { needed; budget; used } ->
      Fmt.pf ppf "energy quota: reservation %.3f + reserved %.3f exceeds budget %.3f"
        needed used budget
  | Machine_quota { allowed; required } ->
      Fmt.pf ppf "machine quota: %d machine(s) allowed, %d required" allowed required

let quota_breach_to_string = function
  | Energy_quota _ -> "energy_quota"
  | Machine_quota _ -> "machine_quota"

let quota_machines q ~n_machines =
  match q.q_machines with None -> n_machines | Some m -> min m n_machines

let quota_mask q ~n_machines =
  match q.q_machines with
  | None -> None
  | Some m when m >= n_machines -> None
  | Some m -> Some (Array.init n_machines (fun j -> j < m))

(* Worst admissible price of one task over the allowed machines and both
   versions. Any placement the scheduler can commit for the task costs
   exec(t, m, v) plus actual transfer energy; the latter is bounded by the
   worst-case child-communication bound priced here (conservative mode),
   so the per-task max dominates whatever the scheduler chooses. *)
let task_reservation ~mode wl ~machines ~task =
  let worst = ref 0. in
  for machine = 0 to machines - 1 do
    List.iter
      (fun version ->
        let exec = Workload.exec_energy wl ~task ~machine ~version in
        let comm = comm_bound ~mode wl ~task ~machine ~version in
        let price = apply_margin ~mode (exec +. comm) in
        if price > !worst then worst := price)
      Version.all
  done;
  !worst

let reservation ?(mode = Conservative) ?machines wl =
  let n_machines = Workload.n_machines wl in
  let machines =
    match machines with
    | None -> n_machines
    | Some m ->
        if m < 1 || m > n_machines then
          invalid_arg "Feasibility.reservation: machine count out of range";
        m
  in
  let total = ref 0. in
  for task = 0 to Workload.n_tasks wl - 1 do
    total := !total +. task_reservation ~mode wl ~machines ~task
  done;
  !total

let admit_quota ?(mode = Conservative) q ~used wl =
  let n_machines = Workload.n_machines wl in
  let allowed = quota_machines q ~n_machines in
  if allowed < 1 then Error (Machine_quota { allowed; required = 1 })
  else
    let needed = reservation ~mode ~machines:allowed wl in
    match q.q_energy with
    | None -> Ok needed
    | Some budget ->
        if used +. needed > budget then Error (Energy_quota { needed; budget; used })
        else Ok needed
