(* Candidate-pool feasibility (paper Section IV): a subtask may enter the
   pool U for machine j iff
     (a) all of its parents are already mapped, and
     (b) machine j retains enough energy to run at least the SECONDARY
         version AND push all of its output data to its children.

   Condition (b) cannot be exact — the children are unmapped, so their
   link bandwidths are unknown. The paper resolves this with a worst-case
   assumption (every child on the lowest-bandwidth connection in the grid);
   [Optimistic] is the ablation variant that assumes children are co-located
   (zero communication energy), isolating how much the conservatism costs. *)

open Agrid_workload
open Agrid_sched

type mode = Conservative | Optimistic

let mode_to_string = function
  | Conservative -> "conservative"
  | Optimistic -> "optimistic"

(* Energy machine [j] must still hold for (task, version) to be admissible:
   the version's execution energy plus its child-communication bound. *)
let required_energy ?(mode = Conservative) sched ~task ~machine ~version =
  let wl = Schedule.workload sched in
  let exec = Workload.exec_energy wl ~task ~machine ~version in
  let comm =
    match mode with
    | Optimistic -> 0.
    | Conservative ->
        Workload.worst_case_child_comm_energy wl ~task ~machine ~version
  in
  exec +. comm

let version_feasible ?mode sched ~task ~machine ~version =
  Schedule.energy_remaining sched machine
  >= required_energy ?mode sched ~task ~machine ~version

(* SLRH admissibility: at least the secondary version must fit (the
   primary-vs-secondary decision is made later, by the objective). *)
let feasible ?mode sched ~task ~machine =
  version_feasible ?mode sched ~task ~machine ~version:Version.Secondary

(* The pool U for [machine]: ready (parents mapped), unmapped, and
   energy-admissible tasks. Telemetry (admission counters under the
   "feasibility/filter" span) is guarded on [Sink.enabled] so the no-op
   path never pays the list-length walks. *)
let candidate_pool ?mode ?(obs = Agrid_obs.Sink.noop) sched ~machine =
  Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
      let ready = Schedule.ready_unmapped sched in
      let pool = List.filter (fun task -> feasible ?mode sched ~task ~machine) ready in
      if Agrid_obs.Sink.enabled obs then begin
        Agrid_obs.Sink.add obs "feasibility/checked" (List.length ready);
        Agrid_obs.Sink.add obs "feasibility/admitted" (List.length pool)
      end;
      pool)
