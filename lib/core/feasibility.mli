(** Candidate-pool feasibility (paper Section IV): parents mapped, plus
    enough energy for at least the secondary version and its worst-case
    child communication. *)

open Agrid_workload
open Agrid_sched

type mode =
  | Conservative  (** paper: every child on the worst link in the grid *)
  | Optimistic  (** ablation: children assumed co-located (zero comm) *)
  | Chance of { p : float; sigma : float }
      (** chance-constrained: the conservative bound inflated by the
          Gaussian margin [1 + Phi^-1(p) * sigma]
          ({!Agrid_lagrange.Chance.inflation}) so admissions hold with
          service probability ~[p] under relative estimation error
          [sigma]. [p = 0.5] or [sigma = 0] coincides bit-for-bit with
          [Conservative]. Build through {!chance} to validate. *)

val mode_to_string : mode -> string

val chance : p:float -> sigma:float -> mode
(** [Chance { p; sigma }] with the parameters validated.
    @raise Invalid_argument if [p] is outside (0, 1) or [sigma] is
    negative or non-finite. *)

type infeasibility =
  | Parent_unmapped of { parent : int }
      (** not ready: this parent had not been mapped yet *)
  | Exec_energy of { version : Version.t; required : float; available : float }
      (** the version's execution energy alone exceeds the battery *)
  | Comm_energy of { version : Version.t; exec : float; comm : float; available : float }
      (** execution fits, but the worst-case child-communication bound
          overflows the battery *)
(** Why a subtask stayed out of the pool U — the decision ledger's typed
    rejection reasons. The bare-bool checks below derive from these. *)

val pp_infeasibility : Format.formatter -> infeasibility -> unit

val required_energy :
  ?mode:mode -> Schedule.t -> task:int -> machine:int -> version:Version.t -> float

val version_verdict :
  ?mode:mode ->
  Schedule.t ->
  task:int ->
  machine:int ->
  version:Version.t ->
  (unit, infeasibility) result
(** Energy admissibility of this specific version, with the failing side
    of the bound on rejection ({!Exec_energy} or {!Comm_energy}). *)

val version_feasible :
  ?mode:mode -> Schedule.t -> task:int -> machine:int -> version:Version.t -> bool
(** Does the machine retain enough energy for this specific version? (The
    Max-Max pool assesses versions independently.)
    [= Result.is_ok (version_verdict ...)] *)

val verdict :
  ?mode:mode -> Schedule.t -> task:int -> machine:int -> (unit, infeasibility) result
(** SLRH admissibility with the reason on rejection: first unmapped
    parent, else the secondary version's energy verdict. *)

val feasible : ?mode:mode -> Schedule.t -> task:int -> machine:int -> bool
(** SLRH admissibility: the secondary version fits. *)

val candidate_pool :
  ?mode:mode -> ?obs:Agrid_obs.Sink.t -> Schedule.t -> machine:int -> int list
(** The pool U: ready, unmapped, energy-admissible tasks for a machine.
    [?obs] (default: inert) times the filter under ["feasibility/filter"]
    and counts ["feasibility/checked"] / ["feasibility/admitted"]. *)

(** Memoised admission bounds for the incremental pool path
    ({!Slrh.params.mode} [= `Incremental]). The energy bound a
    (task, machine) pair must clear is a pure function of the workload and
    the mode, so it is priced once and replayed; the admission test
    compares the same float the plain path compares, keeping decisions
    bit-identical (pinned by the differential suite). *)
module Memo : sig
  type t

  val create : ?mode:mode -> Workload.t -> t
  (** Lazy table over all (task, machine) pairs; nothing is priced until
      first use. [?mode] defaults to [Conservative], as everywhere. *)

  val required_secondary : t -> task:int -> machine:int -> float
  (** [= required_energy ~mode sched ~task ~machine ~version:Secondary],
      priced on first call and cached. *)

  val feasible : t -> Schedule.t -> task:int -> machine:int -> bool
  (** [= version_feasible ~mode sched ~task ~machine ~version:Secondary]
      against the memoised bound. Does NOT check parent readiness — the
      caller filters the ready set, exactly like {!candidate_pool}. *)
end

val candidate_pool_memo :
  ?obs:Agrid_obs.Sink.t -> Memo.t -> Schedule.t -> machine:int -> int list * int
(** {!candidate_pool} through a {!Memo}, also returning the ready-set
    length so the caller can replay the ["feasibility/checked"] /
    ["feasibility/admitted"] counters when it reuses the pool. Same span
    and counters as {!candidate_pool}.
    @raise Invalid_argument if the memo was priced for another workload. *)

val filter_into :
  ?obs:Agrid_obs.Sink.t ->
  Memo.t ->
  Schedule.t ->
  machine:int ->
  eligible:(int -> bool) ->
  ensure:(int -> int array) ->
  int * int * int
(** Batch admission for the flat (SoA) pool path: filter the ready,
    unmapped, energy-admissible, eligible tasks for [machine] into the
    buffer returned by [ensure] (called once, before any write, with the
    ready-set length as an upper bound on the pool size). Returns
    [(pool, admitted, checked)] where [admitted] counts energy-admitted
    tasks before the eligibility filter and [checked] the ready set —
    the counter values {!candidate_pool_memo} reports. Same telemetry
    shape, same memoised comparison, bit-identical decisions.
    @raise Invalid_argument if the memo was priced for another workload. *)

val explain_rejections :
  ?mode:mode -> Schedule.t -> machine:int -> (int * infeasibility) list
(** Every unmapped task the pool turned away for [machine], with its
    verdict, in task order. O(unmapped tasks) with energy pricing per
    task — meant for ledger-attached runs, not the hot path. *)

(** {2 Tenant quotas}

    Multi-tenant admission (DESIGN.md section 14): a tenant may cap the
    total energy its applications can reserve and the number of grid
    machines they may touch. Quota admission prices a whole application
    {e before} it is scheduled, against the same conservative bound the
    pool filter uses per task, so an admitted application can never burn
    more than its reservation. *)

type quota = {
  q_energy : float option;
      (** total reserved energy across the tenant's admitted
          applications; [None] = unlimited *)
  q_machines : int option;
      (** the tenant's applications run on machines [0 .. q-1] only;
          [None] = the whole grid *)
}

val no_quota : quota
val quota_to_string : quota -> string

val validate_quota : quota -> (unit, string) result
(** Energy quotas must be finite and positive; machine quotas positive. *)

type quota_breach =
  | Energy_quota of { needed : float; budget : float; used : float }
      (** admitting would push the tenant's reserved energy past its
          budget: [used + needed > budget] *)
  | Machine_quota of { allowed : int; required : int }
      (** the machine-count quota leaves no machine (or fewer than the
          grid can satisfy the application with) *)
(** Why an application was refused admission — total: every quota
    rejection carries exactly one of these. *)

val pp_quota_breach : Format.formatter -> quota_breach -> unit

val quota_breach_to_string : quota_breach -> string
(** Short wire token: ["energy_quota"] / ["machine_quota"]. *)

val quota_machines : quota -> n_machines:int -> int
(** Machines the quota admits: [min q n_machines] (or [n_machines] when
    unlimited). *)

val quota_mask : quota -> n_machines:int -> bool array option
(** The availability mask a machine-count quota induces (machines
    [0 .. q-1] up, the rest down); [None] when the quota does not
    restrict the grid. *)

val reservation : ?mode:mode -> ?machines:int -> Workload.t -> float
(** Upper bound on the energy one run of this workload can consume when
    confined to machines [0 .. machines-1] (default: the whole grid):
    per task, the worst admissible version/machine price
    (execution energy + the mode's child-communication bound), summed.
    Any schedule's actual TEC on those machines is bounded by it under
    [Conservative] (each placement costs at most its per-task maximum;
    actual transfers cost at most the worst-case bound). *)

val admit_quota :
  ?mode:mode -> quota -> used:float -> Workload.t -> (float, quota_breach) result
(** Typed admission of one application against a tenant quota with
    [used] energy already reserved: check the machine-count quota, price
    {!reservation} on the allowed machines, charge it against
    [q_energy -. used]. [Ok r] admits and reserves [r]. *)
