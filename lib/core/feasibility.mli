(** Candidate-pool feasibility (paper Section IV): parents mapped, plus
    enough energy for at least the secondary version and its worst-case
    child communication. *)

open Agrid_workload
open Agrid_sched

type mode =
  | Conservative  (** paper: every child on the worst link in the grid *)
  | Optimistic  (** ablation: children assumed co-located (zero comm) *)

val mode_to_string : mode -> string

val required_energy :
  ?mode:mode -> Schedule.t -> task:int -> machine:int -> version:Version.t -> float

val version_feasible :
  ?mode:mode -> Schedule.t -> task:int -> machine:int -> version:Version.t -> bool
(** Does the machine retain enough energy for this specific version? (The
    Max-Max pool assesses versions independently.) *)

val feasible : ?mode:mode -> Schedule.t -> task:int -> machine:int -> bool
(** SLRH admissibility: the secondary version fits. *)

val candidate_pool :
  ?mode:mode -> ?obs:Agrid_obs.Sink.t -> Schedule.t -> machine:int -> int list
(** The pool U: ready, unmapped, energy-admissible tasks for a machine.
    [?obs] (default: inert) times the filter under ["feasibility/filter"]
    and counts ["feasibility/checked"] / ["feasibility/admitted"]. *)
