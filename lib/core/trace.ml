(* Execution tracing — the paper's SLRH "stored a historical record of all
   critical parameters for later analysis" (Section IV). A tracer attached
   to the heuristic's params records one event per mapping decision point;
   the record can be summarised or exported as CSV rows for external
   analysis. Recording is append-only and O(1) per event. *)

open Agrid_workload

type kind =
  | Assigned of {
      task : int;
      version : Version.t;
      start : int;
      stop : int;
      score : float;  (** objective value that ranked the candidate *)
      pool_size : int;
      energy_remaining : float;  (** on the target machine, after commit *)
    }
  | Pool_empty  (** the machine was free but no candidate was feasible *)
  | Horizon_miss of { pool_size : int }
      (** candidates existed but none could start within the horizon *)

type event = { clock : int; machine : int; kind : kind }

type t = { mutable events : event list; mutable length : int }

let create () = { events = []; length = 0 }

let record t ~clock ~machine kind =
  t.events <- { clock; machine; kind } :: t.events;
  t.length <- t.length + 1

let length t = t.length

let events t = Array.of_list (List.rev t.events)

type summary = {
  n_assigned : int;
  n_pool_empty : int;
  n_horizon_miss : int;
  mean_pool_size : float;  (** over assignment events *)
  first_assignment_clock : int option;
  last_assignment_clock : int option;
}

let summarize t =
  let n_assigned = ref 0
  and n_pool_empty = ref 0
  and n_horizon_miss = ref 0
  and pool_total = ref 0
  and first = ref None
  and last = ref None in
  List.iter
    (fun e ->
      match e.kind with
      | Assigned { pool_size; _ } ->
          incr n_assigned;
          pool_total := !pool_total + pool_size;
          (match !first with
          | Some c when c <= e.clock -> ()
          | _ -> first := Some e.clock);
          (match !last with
          | Some c when c >= e.clock -> ()
          | _ -> last := Some e.clock)
      | Pool_empty -> incr n_pool_empty
      | Horizon_miss _ -> incr n_horizon_miss)
    t.events;
  {
    n_assigned = !n_assigned;
    n_pool_empty = !n_pool_empty;
    n_horizon_miss = !n_horizon_miss;
    mean_pool_size =
      (if !n_assigned = 0 then 0.
       else float_of_int !pool_total /. float_of_int !n_assigned);
    first_assignment_clock = !first;
    last_assignment_clock = !last;
  }

let csv_header =
  [ "clock"; "machine"; "event"; "task"; "version"; "start"; "stop"; "score";
    "pool_size"; "energy_remaining" ]

let csv_rows t =
  Array.to_list (events t)
  |> List.map (fun e ->
         let base = [ string_of_int e.clock; string_of_int e.machine ] in
         match e.kind with
         | Assigned { task; version; start; stop; score; pool_size; energy_remaining } ->
             base
             @ [ "assigned"; string_of_int task; Version.to_string version;
                 string_of_int start; string_of_int stop; Fmt.str "%.6f" score;
                 string_of_int pool_size; Fmt.str "%.6f" energy_remaining ]
         | Pool_empty -> base @ [ "pool_empty"; ""; ""; ""; ""; ""; "0"; "" ]
         | Horizon_miss { pool_size } ->
             base @ [ "horizon_miss"; ""; ""; ""; ""; ""; string_of_int pool_size; "" ])

(* Per-row parse shared by the strict importer and the lint pass. *)
exception Row_error of string

let parse_csv_row row =
  let fail fmt = Fmt.kstr (fun msg -> raise (Row_error msg)) fmt in
  let int_of what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail "bad %s %S" what s
  in
  let float_of what s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> fail "bad %s %S" what s
  in
  try
    match row with
    | [ clock; machine; event; task; version; start; stop; score; pool_size;
        energy_remaining ] ->
        let clock = int_of "clock" clock in
        let machine = int_of "machine" machine in
        let kind =
          match event with
          | "assigned" ->
              let version =
                match Version.of_string version with
                | Some v -> v
                | None -> fail "bad version %S" version
              in
              Assigned
                {
                  task = int_of "task" task;
                  version;
                  start = int_of "start" start;
                  stop = int_of "stop" stop;
                  score = float_of "score" score;
                  pool_size = int_of "pool_size" pool_size;
                  energy_remaining = float_of "energy_remaining" energy_remaining;
                }
          | "pool_empty" -> Pool_empty
          | "horizon_miss" -> Horizon_miss { pool_size = int_of "pool_size" pool_size }
          | other -> fail "unknown event %S" other
        in
        Ok (clock, machine, kind)
    | _ ->
        fail "expected %d fields, got %d" (List.length csv_header) (List.length row)
  with Row_error msg -> Error msg

(* Inverse of [csv_rows] (header excluded), for re-importing an exported
   trace. Floats round-trip through the writer's %.6f, so scores and
   energies are recovered to 1e-6, not bit-exactly. *)
let of_csv_rows rows =
  let t = create () in
  List.iteri
    (fun i row ->
      match parse_csv_row row with
      | Ok (clock, machine, kind) -> record t ~clock ~machine kind
      | Error msg -> invalid_arg (Fmt.str "Trace.of_csv_rows: row %d: %s" i msg))
    rows;
  t

(* Lint pass behind `agrid trace lint`: where [of_csv_rows] stops at the
   first malformed row, this walks the whole file and reports every
   diagnostic, so a mangled export can be repaired in one edit round. *)
let lint_csv_rows rows =
  List.mapi
    (fun i row ->
      match parse_csv_row row with Ok _ -> None | Error msg -> Some (i, msg))
    rows
  |> List.filter_map Fun.id

let pp_summary ppf s =
  Fmt.pf ppf
    "assigned=%d pool_empty=%d horizon_miss=%d mean_pool=%.1f span=%a..%a"
    s.n_assigned s.n_pool_empty s.n_horizon_miss s.mean_pool_size
    Fmt.(option ~none:(any "-") int)
    s.first_assignment_clock
    Fmt.(option ~none:(any "-") int)
    s.last_assignment_clock
