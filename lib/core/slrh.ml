(* The Simplified Lagrangian Receding Horizon resource manager (paper
   Section IV, flow chart of Figure 1) and its three variants (Section V).

   Clock-driven: every [delta_t] cycles the heuristic sweeps the machines in
   numerical order; for each machine that is not executing at the current
   cycle it builds the feasible candidate pool U, scores both versions of
   every pool member with the global objective, keeps the better version,
   orders the pool by score, and walks it planning exact start times; the
   first candidate whose planned start falls within the receding horizon
   [now, now + horizon] is committed.

   Variants:
   - V1 (SLRH-1): at most one assignment per machine per timestep.
   - V2 (SLRH-2): keeps walking the SAME pool, committing every candidate
     that still fits the horizon, without re-scoring or re-checking energy —
     the staleness is faithful to the paper and is precisely why SLRH-2
     rarely produces feasible complete mappings.
   - V3 (SLRH-3): like V2 but recreates and re-scores the pool after every
     assignment (children of the just-mapped subtask join immediately).

   "Simplified" = the Lagrangian weights stay constant for the whole run;
   Adaptive (this library) lifts that restriction as the paper's
   future-work extension. *)

open Agrid_workload
open Agrid_sched

type variant = V1 | V2 | V3

let variant_to_string = function V1 -> "SLRH-1" | V2 -> "SLRH-2" | V3 -> "SLRH-3"

(* The paper sweeps machines "in simple numerical order" each timestep;
   the alternatives are ablations on that design choice. *)
type machine_order =
  | Numerical  (** the paper's order *)
  | Fast_first  (** fast-class machines before slow ones *)
  | Most_energy_first  (** recompute each step by remaining battery *)

let machine_order_to_string = function
  | Numerical -> "numerical"
  | Fast_first -> "fast-first"
  | Most_energy_first -> "most-energy-first"

(* [`Rescan] is the paper-literal loop: rebuild and re-price the candidate
   pool from scratch for every free machine on every timestep.
   [`Incremental] reuses work whose inputs provably did not change —
   memoised energy bounds, cached parent-derived score inputs, and whole
   pools when no commit happened since they were built — and is pinned
   bit-identical to [`Rescan] by the differential test suite, which keeps
   the rescan path alive as the oracle. *)
type mode = [ `Rescan | `Incremental ]

let mode_to_string = function `Rescan -> "rescan" | `Incremental -> "incremental"

let mode_of_string = function
  | "rescan" -> Some `Rescan
  | "incremental" -> Some `Incremental
  | _ -> None

type params = {
  variant : variant;
  delta_t : int;  (** timestep in clock cycles (paper: 10) *)
  horizon : int;  (** receding horizon H in clock cycles (paper: 100) *)
  weights : Objective.weights;
  feas_mode : Feasibility.mode;
  mode : mode;
      (** [`Incremental] (the default) caches pool state whose inputs did
          not change; [`Rescan] is the naive rebuild kept as the
          differential oracle. Output is bit-identical either way. *)
  machine_order : machine_order;
  parallel_scoring : int option;
      (** score pool candidates on this many domains — the paper notes the
          SLRH "is amenable to a parallel hardware implementation"
          (Section IV); scoring is pure, so results are bit-identical to
          the sequential path (tested). None = sequential. *)
  tracer : Trace.t option;
      (** record the paper's "historical record of all critical
          parameters" (one event per decision point) *)
  obs : Agrid_obs.Sink.t;
      (** telemetry sink for spans, counters and per-timestep snapshots;
          the default no-op sink is provably inert — the scheduler's
          output is bit-identical with or without it (tested) *)
  cancel : unit -> bool;
      (** cooperative cancellation, polled once per timestep before any
          work for that step: returning [true] ends the run where it
          stands (the scenario service's per-job wall-clock deadline).
          The default never cancels, leaving the loop bit-identical to
          the uncancellable one. *)
  adapt : Adapt.t option;
      (** online dual-ascent controller: when set, scoring reads ITS
          weights (seeded from [weights]) instead of the static ones, and
          the main loop runs a dual round at each commit epoch. [None]
          (the default) keeps the run bit-identical to the historical
          constant-weights scheduler. *)
}

let default_params ?(variant = V1) weights =
  {
    variant;
    delta_t = 10;
    horizon = 100;
    weights;
    feas_mode = Feasibility.Conservative;
    mode = `Incremental;
    machine_order = Numerical;
    parallel_scoring = None;
    tracer = None;
    obs = Agrid_obs.Sink.noop;
    cancel = (fun () -> false);
    adapt = None;
  }

(* The weights scoring reads THIS timestep: the adaptive controller's
   current iterate when one is attached, the static params otherwise.
   Re-read at every use, so a dual round between timesteps changes
   scoring without touching any cached pool state (pool membership and
   memoised energy bounds never read the weights). *)
let live_weights params =
  match params.adapt with None -> params.weights | Some a -> Adapt.weights a

(* Pool sizes live well under a hundred for every workload here; linear
   buckets of 4 keep the histogram readable. *)
let pool_size_bounds = Agrid_obs.Hist.linear_bounds ~lo:0. ~hi:64. ~n:16

(* Visit order of the machines for one timestep. Sorting keys are stable
   (ties fall back to the numerical order). *)
let machine_sequence params sched ~n_machines =
  match params.machine_order with
  | Numerical -> Array.init n_machines Fun.id
  | Fast_first ->
      let grid = Agrid_workload.Workload.grid (Schedule.workload sched) in
      let order = Array.init n_machines Fun.id in
      let key j =
        match (Agrid_platform.Grid.machine grid j).Agrid_platform.Machine.klass with
        | Agrid_platform.Machine.Fast -> 0
        | Agrid_platform.Machine.Slow -> 1
      in
      Array.sort (fun a b -> compare (key a, a) (key b, b)) order;
      order
  | Most_energy_first ->
      let order = Array.init n_machines Fun.id in
      Array.sort
        (fun a b ->
          compare
            (-.Schedule.energy_remaining sched a, a)
            (-.Schedule.energy_remaining sched b, b))
        order;
      order

type stats = {
  clock_steps : int;  (** timesteps executed *)
  pools_built : int;
  candidates_scored : int;
  plans_attempted : int;
  assignments : int;
}

type outcome = {
  schedule : Schedule.t;
  completed : bool;  (** all subtasks mapped before the clock passed tau *)
  final_clock : int;
  stats : stats;
  wall_seconds : float;  (** heuristic execution time (Figure 6 metric) *)
}

(* Core infeasibility verdicts carry [Version.t]; the ledger lives below
   core in the library stack, so its entries carry the version name. *)
let reject_of_infeasibility = function
  | Feasibility.Parent_unmapped { parent } ->
      Agrid_obs.Ledger.Parent_unmapped { parent }
  | Feasibility.Exec_energy { version; required; available } ->
      Agrid_obs.Ledger.Exec_energy
        { version = Version.to_string version; required; available }
  | Feasibility.Comm_energy { version; exec; comm; available } ->
      Agrid_obs.Ledger.Comm_energy
        { version = Version.to_string version; exec; comm; available }

(* ---- incremental-mode cache (one per [continue_run]) ----

   Three layers, each keyed on exactly the inputs the recomputation would
   read, so every cached answer is the same value — bit for bit — the
   rescan path would produce:

   - [memo]: the secondary-version energy bound per (task, machine). Pure
     function of the workload; never invalidated.
   - [bounds]: {!Objective.parent_bound} per (task, machine) — the
     parent-finish ready floor and incoming comm energy. Valid from the
     moment the task is poolable (all parents mapped) because placements
     are immutable within a run; never invalidated. Under parallel scoring,
     workers write disjoint slots (one task appears once per pool), so the
     plain array is race-free.
   - [pools]: the last pool built per machine, stamped with the commit
     epoch ([Schedule.n_mapped]) at build time. Every intra-run input of
     the pool — the ready set, the mapped set, and every battery level —
     changes only through [Schedule.commit], so an unchanged epoch means
     an identical pool. Reuse replays the build's admission counters and
     spans verbatim; only durations (and the reuse counters) tell the
     modes apart. Disabled when a ledger is attached: each rebuild emits
     per-step rejection entries that reuse cannot replay, and the ledger
     must stay bit-identical to the oracle's.

   Pool reuse additionally assumes [eligible] is stable for the duration
   of the run — true for both the plain loop and the churn engine, which
   only changes holds/failures between phases (each phase is its own
   [continue_run], hence its own cache). *)

type pool_entry = {
  pe_pool : int list;  (* post-eligibility pool, as scoring consumes it *)
  pe_admitted : int;  (* |raw pool| — "feasibility/admitted" replay *)
  pe_checked : int;  (* |ready set| — "feasibility/checked" replay *)
  pe_epoch : int;  (* Schedule.n_mapped when built *)
}

type cache = {
  memo : Feasibility.Memo.t;
  bounds : Objective.parent_bound option array;  (* task * n_machines + machine *)
  pools : pool_entry option array;  (* per machine *)
  cache_machines : int;
  reuse_pools : bool;  (* false when a decision ledger is attached *)
}

let make_cache params sched ~n_machines =
  let workload = Schedule.workload sched in
  let n_tasks = Workload.n_tasks workload in
  {
    memo = Feasibility.Memo.create ~mode:params.feas_mode workload;
    bounds = Array.make (n_tasks * n_machines) None;
    pools = Array.make n_machines None;
    cache_machines = n_machines;
    reuse_pools = Option.is_none (Agrid_obs.Sink.ledger params.obs);
  }

let bound_for cache sched ~task ~machine =
  let i = (task * cache.cache_machines) + machine in
  match cache.bounds.(i) with
  | Some b -> b
  | None ->
      let b = Objective.parent_bound sched ~task ~machine in
      cache.bounds.(i) <- Some b;
      b

(* One scored pool: best version and score per candidate, sorted by
   decreasing objective. Scoring reads the schedule without mutating it, so
   it can fan out over domains (the paper's parallel-hardware note); the
   sort ties break on task id either way, keeping results identical.

   When the sink carries a decision ledger, every unmapped task that
   stayed out of the pool is recorded with its typed rejection —
   including tasks the churn retry policy made ineligible. The pool
   itself is computed exactly as before; all ledger work is additive and
   guarded on [Sink.ledger]. *)
let scored_pool params ~cache ~eligible sched ~machine ~now stats_candidates =
  let obs = params.obs in
  let epoch = Schedule.n_mapped sched in
  let reusable =
    match cache with
    | Some c when c.reuse_pools -> (
        match c.pools.(machine) with
        | Some pe when pe.pe_epoch = epoch -> Some pe
        | Some _ | None -> None)
    | Some _ | None -> None
  in
  let pool =
    match reusable with
    | Some pe ->
        (* No commit since this pool was built: every input is unchanged,
           so replay the build's telemetry (same spans, same counter
           increments) and hand back the same list. *)
        Agrid_obs.Sink.span obs "slrh/pool_build" (fun () ->
            Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
                if Agrid_obs.Sink.enabled obs then begin
                  Agrid_obs.Sink.add obs "feasibility/checked" pe.pe_checked;
                  Agrid_obs.Sink.add obs "feasibility/admitted" pe.pe_admitted
                end);
            Agrid_obs.Sink.incr obs "slrh/pool_reused";
            pe.pe_pool)
    | None ->
        Agrid_obs.Sink.span obs "slrh/pool_build" (fun () ->
            let raw, n_checked =
              match cache with
              | Some c -> Feasibility.candidate_pool_memo ~obs c.memo sched ~machine
              | None ->
                  ( Feasibility.candidate_pool ~mode:params.feas_mode ~obs sched
                      ~machine,
                    0 )
            in
            (match Agrid_obs.Sink.ledger obs with
            | None -> ()
            | Some led ->
                List.iter
                  (fun (task, why) ->
                    Agrid_obs.Ledger.record led
                      (Agrid_obs.Ledger.Candidate
                         {
                           clock = now;
                           machine;
                           task;
                           fate = Agrid_obs.Ledger.Rejected (reject_of_infeasibility why);
                         }))
                  (Feasibility.explain_rejections ~mode:params.feas_mode sched ~machine);
                List.iter
                  (fun task ->
                    if not (eligible task) then
                      Agrid_obs.Ledger.record led
                        (Agrid_obs.Ledger.Candidate
                           {
                             clock = now;
                             machine;
                             task;
                             fate = Agrid_obs.Ledger.Rejected Agrid_obs.Ledger.Ineligible;
                           }))
                  raw);
            let pool = List.filter eligible raw in
            (match cache with
            | Some c ->
                Agrid_obs.Sink.incr obs "slrh/pool_rebuilt";
                if c.reuse_pools then
                  c.pools.(machine) <-
                    Some
                      {
                        pe_pool = pool;
                        pe_admitted = List.length raw;
                        pe_checked = n_checked;
                        pe_epoch = epoch;
                      }
            | None -> ());
            pool)
  in
  (* Scoring is pure, so the parallel path fans it out over domains. The
     sink stays out of the workers (it is single-domain): version-eval
     counts and score observations are recorded here, after the map, which
     also keeps the metrics identical between the two paths. *)
  let score =
    match cache with
    | None ->
        fun task ->
          let version, score =
            Objective.best_version (live_weights params) sched ~task ~machine ~now
          in
          (task, version, score)
    | Some c ->
        fun task ->
          let bound = bound_for c sched ~task ~machine in
          let version, score =
            Objective.best_version_with (live_weights params) sched ~bound ~task
              ~machine ~now
          in
          (task, version, score)
  in
  stats_candidates := !stats_candidates + List.length pool;
  let scored =
    Agrid_obs.Sink.span obs "slrh/score" (fun () ->
        match params.parallel_scoring with
        | Some domains when domains > 1 && List.length pool > 1 ->
            Array.to_list (Agrid_par.Parallel.map ~domains score (Array.of_list pool))
        | Some _ | None -> List.map score pool)
  in
  if Agrid_obs.Sink.enabled obs then begin
    let n = List.length pool in
    Agrid_obs.Sink.observe obs "slrh/pool_size" ~bounds:pool_size_bounds
      (float_of_int n);
    Agrid_obs.Sink.add obs "objective/version_evals" (2 * n);
    List.iter
      (fun (_, _, s) ->
        Agrid_obs.Sink.observe obs "slrh/score_value" ~bounds:Objective.score_bounds s)
      scored
  end;
  List.sort
    (fun (ta, _, a) (tb, _, b) ->
      let c = Float.compare b a in
      if c <> 0 then c else compare ta tb)
    scored

(* Walk a scored pool in order; plan each candidate and commit the first
   whose start fits the horizon. Returns the committed task, if any, and
   traces the decision.

   Ledger fates per pool member: the winner gets a [Commit] entry with
   the score decomposition (recomputed against the pre-commit schedule,
   so for SLRH-2's stale pools the recorded terms are the fresh truth
   even when the stale pool score differs) and the runner-up margin;
   walked-but-late candidates get [Horizon_missed] with their planned
   start; unwalked ones get [Outscored]; already-mapped stragglers in a
   stale pool keep their [Scored] rank. *)
let try_assign params sched ~machine ~now ~scored plans_attempted =
  let obs = params.obs in
  let ledger = Agrid_obs.Sink.ledger obs in
  let pool_size = List.length scored in
  let trace kind =
    match params.tracer with
    | Some t -> Trace.record t ~clock:now ~machine kind
    | None -> ()
  in
  let candidate task fate =
    match ledger with
    | None -> ()
    | Some led ->
        Agrid_obs.Ledger.record led
          (Agrid_obs.Ledger.Candidate { clock = now; machine; task; fate })
  in
  let ledger_commit ~task ~version (plan : Schedule.plan) =
    match ledger with
    | None -> ()
    | Some led ->
        (* pre-commit: [estimate] reads the schedule as it stood when the
           decision was made, and is_mapped still excludes only earlier
           commits *)
        let parts =
          Objective.estimate_parts (live_weights params) sched ~task ~version
            ~machine ~now
        in
        let runner_up =
          List.find_map
            (fun (t, _, s) ->
              if t <> task && not (Schedule.is_mapped sched t) then Some (t, s)
              else None)
            scored
        in
        Agrid_obs.Ledger.record led
          (Agrid_obs.Ledger.Commit
             {
               clock = now;
               machine;
               task;
               version = Version.to_string version;
               start = plan.Schedule.pl_start;
               stop = plan.Schedule.pl_stop;
               score = parts.Objective.total;
               alpha_term = parts.Objective.t100_term;
               beta_term = parts.Objective.energy_term;
               gamma_term = parts.Objective.aet_term;
               pool_size;
               runner_up;
             })
  in
  let rec walk rank = function
    | [] ->
        if pool_size = 0 then begin
          Agrid_obs.Sink.incr obs "slrh/pool_empty";
          trace Trace.Pool_empty
        end
        else begin
          Agrid_obs.Sink.incr obs "slrh/horizon_miss";
          trace (Trace.Horizon_miss { pool_size })
        end;
        None
    | (task, version, score) :: rest ->
        if Schedule.is_mapped sched task then begin
          candidate task
            (Agrid_obs.Ledger.Scored
               { version = Version.to_string version; score; rank });
          walk (rank + 1) rest
        end
        else begin
          incr plans_attempted;
          let plan =
            Agrid_obs.Sink.span obs "slrh/plan" (fun () ->
                Schedule.plan sched ~task ~version ~machine ~not_before:now)
          in
          if plan.Schedule.pl_start <= now + params.horizon then begin
            ledger_commit ~task ~version plan;
            (match ledger with
            | None -> ()
            | Some _ ->
                List.iteri
                  (fun i (t, v, s) ->
                    let fate =
                      let version = Version.to_string v in
                      let r = rank + 1 + i in
                      if Schedule.is_mapped sched t then
                        Agrid_obs.Ledger.Scored { version; score = s; rank = r }
                      else Agrid_obs.Ledger.Outscored { version; score = s; rank = r }
                    in
                    candidate t fate)
                  rest);
            Schedule.commit sched plan;
            trace
              (Trace.Assigned
                 {
                   task;
                   version;
                   start = plan.Schedule.pl_start;
                   stop = plan.Schedule.pl_stop;
                   score;
                   pool_size;
                   energy_remaining = Schedule.energy_remaining sched machine;
                 });
            Some task
          end
          else begin
            candidate task
              (Agrid_obs.Ledger.Horizon_missed
                 {
                   version = Version.to_string version;
                   score;
                   rank;
                   planned_start = plan.Schedule.pl_start;
                 });
            walk (rank + 1) rest
          end
        end
  in
  walk 0 scored

let validate_params params =
  if params.delta_t <= 0 then invalid_arg "Slrh: delta_t must be positive";
  if params.horizon < 0 then invalid_arg "Slrh: horizon must be nonnegative"

(* Drive the clock loop over an existing schedule from [start_clock] until
   [until] (inclusive) or completion — the dynamic-grid extension resumes a
   partially executed schedule on a reduced grid this way. [mask] marks the
   machines currently part of the grid (churn engine: down machines are
   skipped by the sweep but keep their indices); [eligible] filters the
   candidate pool (churn engine: deferred or permanently failed subtasks
   are not remappable). *)
let continue_run ?until ?(start_clock = 0) ?mask ?(eligible = fun _ -> true) params sched =
  validate_params params;
  if start_clock < 0 then invalid_arg "Slrh: negative start clock";
  let t0 = Unix.gettimeofday () in
  let workload = Schedule.workload sched in
  let n_machines = Workload.n_machines workload in
  let up =
    match mask with
    | None -> fun _ -> true
    | Some a ->
        if Array.length a <> n_machines then
          invalid_arg "Slrh: mask length does not match machine count";
        fun j -> a.(j)
  in
  let tau = match until with Some u -> u | None -> Workload.tau workload in
  let cache =
    match params.mode with
    | `Rescan -> None
    | `Incremental -> Some (make_cache params sched ~n_machines)
  in
  let clock_steps = ref 0 in
  let pools_built = ref 0 in
  let candidates_scored = ref 0 in
  let plans_attempted = ref 0 in
  let assignments = ref 0 in
  let obs = params.obs in
  let ledger = Agrid_obs.Sink.ledger obs in
  (* snapshot deltas: pools/candidates since the previous sample *)
  let snap_pools = ref 0 in
  let snap_cands = ref 0 in
  let now = ref start_clock in
  (* Ledger idle entries answer "why did machine J sit idle at step K?":
     one per swept machine per timestep that ends with no assignment.
     [Busy]/[Down] are decided before the pool is even built; a machine
     that built pools but committed nothing records the last pool's
     emptiness ([Pool_empty] vs [Horizon_miss]). *)
  let record_idle ~machine ~cause =
    match ledger with
    | None -> ()
    | Some led ->
        Agrid_obs.Ledger.record led
          (Agrid_obs.Ledger.Idle { clock = !now; machine; cause })
  in
  let idle_cause_of_pool = function
    | [] -> Agrid_obs.Ledger.Pool_empty
    | _ :: _ -> Agrid_obs.Ledger.Horizon_miss
  in
  (* Cooperative cancellation, polled once per timestep as part of the
     loop condition: once [params.cancel] fires the run ends where it
     stands (no partial sweep). The default cancel is [fun () -> false],
     so the uncancelled loop is bit-identical to the historical one. *)
  let cancelled = ref false in
  let keep_going () =
    if (not !cancelled) && params.cancel () then cancelled := true;
    not !cancelled
  in
  while keep_going () && (not (Schedule.all_mapped sched)) && !now <= tau do
    incr clock_steps;
    (match ledger with
    | None -> ()
    | Some _ ->
        for j = 0 to n_machines - 1 do
          if not (up j) then record_idle ~machine:j ~cause:Agrid_obs.Ledger.Down
        done);
    let sequence =
      Array.of_list
        (List.filter up (Array.to_list (machine_sequence params sched ~n_machines)))
    in
    let n_swept = Array.length sequence in
    let machine = ref 0 in
    while (not (Schedule.all_mapped sched)) && !machine < n_swept do
      let j = sequence.(!machine) in
      if Schedule.machine_free_at sched ~machine:j ~time:!now then begin
        match params.variant with
        | V1 ->
            incr pools_built;
            let scored = scored_pool params ~cache ~eligible sched ~machine:j ~now:!now candidates_scored in
            (match try_assign params sched ~machine:j ~now:!now ~scored plans_attempted with
            | Some _ -> incr assignments
            | None -> record_idle ~machine:j ~cause:(idle_cause_of_pool scored))
        | V2 ->
            (* one stale pool, drained as far as the horizon allows *)
            incr pools_built;
            let scored =
              ref (scored_pool params ~cache ~eligible sched ~machine:j ~now:!now candidates_scored)
            in
            let committed = ref 0 in
            let continue_ = ref true in
            while !continue_ do
              match try_assign params sched ~machine:j ~now:!now ~scored:!scored plans_attempted with
              | Some task ->
                  incr assignments;
                  incr committed;
                  scored := List.filter (fun (i, _, _) -> i <> task) !scored
              | None -> continue_ := false
            done;
            if !committed = 0 then
              record_idle ~machine:j ~cause:(idle_cause_of_pool !scored)
        | V3 ->
            (* rebuild and re-score the pool after every assignment *)
            let committed = ref 0 in
            let last_pool_empty = ref true in
            let continue_ = ref true in
            while !continue_ do
              incr pools_built;
              let scored = scored_pool params ~cache ~eligible sched ~machine:j ~now:!now candidates_scored in
              (last_pool_empty := match scored with [] -> true | _ :: _ -> false);
              match try_assign params sched ~machine:j ~now:!now ~scored plans_attempted with
              | Some _ ->
                  incr assignments;
                  incr committed
              | None -> continue_ := false
            done;
            if !committed = 0 then
              record_idle ~machine:j
                ~cause:
                  (if !last_pool_empty then Agrid_obs.Ledger.Pool_empty
                   else Agrid_obs.Ledger.Horizon_miss)
      end
      else record_idle ~machine:j ~cause:Agrid_obs.Ledger.Busy;
      incr machine
    done;
    (* after the sweep: one dual round if this timestep committed anything
       (Adapt skips timesteps that advanced nothing) *)
    (match params.adapt with
    | None -> ()
    | Some a -> Adapt.on_timestep a ~obs ~clock:!now sched);
    let sampled =
      Agrid_obs.Sink.tick_snapshot obs ~make:(fun () ->
          {
            Agrid_obs.Snapshot.clock = !now;
            mapped = Schedule.n_mapped sched;
            t100 = Schedule.n_primary sched;
            pools_built = !pools_built - !snap_pools;
            pool_candidates = !candidates_scored - !snap_cands;
            energy = Array.init n_machines (Schedule.energy_remaining sched);
          })
    in
    if sampled then begin
      snap_pools := !pools_built;
      snap_cands := !candidates_scored
    end;
    if not (Schedule.all_mapped sched) then now := !now + params.delta_t
  done;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  if Agrid_obs.Sink.enabled obs then begin
    Agrid_obs.Sink.record_span obs "slrh/run" wall_seconds;
    Agrid_obs.Sink.add obs "slrh/clock_steps" !clock_steps;
    Agrid_obs.Sink.add obs "slrh/pools_built" !pools_built;
    Agrid_obs.Sink.add obs "slrh/candidates_scored" !candidates_scored;
    Agrid_obs.Sink.add obs "slrh/plans_attempted" !plans_attempted;
    Agrid_obs.Sink.add obs "slrh/assignments" !assignments;
    Agrid_obs.Sink.max_gauge obs "slrh/final_clock" (float_of_int !now)
  end;
  {
    schedule = sched;
    completed = Schedule.all_mapped sched;
    final_clock = !now;
    stats =
      {
        clock_steps = !clock_steps;
        pools_built = !pools_built;
        candidates_scored = !candidates_scored;
        plans_attempted = !plans_attempted;
        assignments = !assignments;
      };
    wall_seconds;
  }

let run params workload = continue_run params (Schedule.create workload)

let pp_stats ppf s =
  Fmt.pf ppf "steps=%d pools=%d scored=%d plans=%d assigned=%d" s.clock_steps
    s.pools_built s.candidates_scored s.plans_attempted s.assignments

let pp_outcome ppf o =
  Fmt.pf ppf "%a completed=%b clock=%d wall=%.3fs [%a]" Schedule.pp o.schedule
    o.completed o.final_clock o.wall_seconds pp_stats o.stats
