(* The Simplified Lagrangian Receding Horizon resource manager (paper
   Section IV, flow chart of Figure 1) and its three variants (Section V).

   Clock-driven: every [delta_t] cycles the heuristic sweeps the machines in
   numerical order; for each machine that is not executing at the current
   cycle it builds the feasible candidate pool U, scores both versions of
   every pool member with the global objective, keeps the better version,
   orders the pool by score, and walks it planning exact start times; the
   first candidate whose planned start falls within the receding horizon
   [now, now + horizon] is committed.

   Variants:
   - V1 (SLRH-1): at most one assignment per machine per timestep.
   - V2 (SLRH-2): keeps walking the SAME pool, committing every candidate
     that still fits the horizon, without re-scoring or re-checking energy —
     the staleness is faithful to the paper and is precisely why SLRH-2
     rarely produces feasible complete mappings.
   - V3 (SLRH-3): like V2 but recreates and re-scores the pool after every
     assignment (children of the just-mapped subtask join immediately).

   "Simplified" = the Lagrangian weights stay constant for the whole run;
   Adaptive (this library) lifts that restriction as the paper's
   future-work extension. *)

open Agrid_workload
open Agrid_sched

type variant = V1 | V2 | V3

let variant_to_string = function V1 -> "SLRH-1" | V2 -> "SLRH-2" | V3 -> "SLRH-3"

(* The paper sweeps machines "in simple numerical order" each timestep;
   the alternatives are ablations on that design choice. *)
type machine_order =
  | Numerical  (** the paper's order *)
  | Fast_first  (** fast-class machines before slow ones *)
  | Most_energy_first  (** recompute each step by remaining battery *)

let machine_order_to_string = function
  | Numerical -> "numerical"
  | Fast_first -> "fast-first"
  | Most_energy_first -> "most-energy-first"

(* [`Rescan] is the paper-literal loop: rebuild and re-price the candidate
   pool from scratch for every free machine on every timestep.
   [`Incremental] reuses work whose inputs provably did not change —
   memoised energy bounds, cached parent-derived score inputs, and whole
   pools when no commit happened since they were built.
   [`Soa] (the default) keeps the incremental mode's reuse rules but
   moves the pools themselves onto the preallocated flat arrays of
   {!Pool.Flat}, batch-filtering and batch-scoring each pool in single
   passes so a steady-state timestep allocates nothing at all.
   Both alternative modes are pinned bit-identical to [`Rescan] by the
   differential test suite, which keeps the rescan path alive as the
   oracle. *)
type mode = [ `Rescan | `Incremental | `Soa ]

let mode_to_string = function
  | `Rescan -> "rescan"
  | `Incremental -> "incremental"
  | `Soa -> "soa"

let mode_of_string = function
  | "rescan" -> Some `Rescan
  | "incremental" -> Some `Incremental
  | "soa" -> Some `Soa
  | _ -> None

type params = {
  variant : variant;
  delta_t : int;  (** timestep in clock cycles (paper: 10) *)
  horizon : int;  (** receding horizon H in clock cycles (paper: 100) *)
  weights : Objective.weights;
  feas_mode : Feasibility.mode;
  mode : mode;
      (** [`Soa] (the default) runs pools on the flat preallocated arena;
          [`Incremental] caches boxed pool state whose inputs did not
          change; [`Rescan] is the naive rebuild kept as the differential
          oracle. Output is bit-identical in all three. *)
  machine_order : machine_order;
  parallel_scoring : int option;
      (** score pool candidates on this many domains — the paper notes the
          SLRH "is amenable to a parallel hardware implementation"
          (Section IV); scoring is pure, so results are bit-identical to
          the sequential path (tested). None = sequential. *)
  tracer : Trace.t option;
      (** record the paper's "historical record of all critical
          parameters" (one event per decision point) *)
  obs : Agrid_obs.Sink.t;
      (** telemetry sink for spans, counters and per-timestep snapshots;
          the default no-op sink is provably inert — the scheduler's
          output is bit-identical with or without it (tested) *)
  cancel : unit -> bool;
      (** cooperative cancellation, polled once per timestep before any
          work for that step: returning [true] ends the run where it
          stands (the scenario service's per-job wall-clock deadline).
          The default never cancels, leaving the loop bit-identical to
          the uncancellable one. *)
  adapt : Adapt.t option;
      (** online dual-ascent controller: when set, scoring reads ITS
          weights (seeded from [weights]) instead of the static ones, and
          the main loop runs a dual round at each commit epoch. [None]
          (the default) keeps the run bit-identical to the historical
          constant-weights scheduler. *)
}

let default_params ?(variant = V1) weights =
  {
    variant;
    delta_t = 10;
    horizon = 100;
    weights;
    feas_mode = Feasibility.Conservative;
    mode = `Soa;
    machine_order = Numerical;
    parallel_scoring = None;
    tracer = None;
    obs = Agrid_obs.Sink.noop;
    cancel = (fun () -> false);
    adapt = None;
  }

(* The weights scoring reads THIS timestep: the adaptive controller's
   current iterate when one is attached, the static params otherwise.
   Re-read at every use, so a dual round between timesteps changes
   scoring without touching any cached pool state (pool membership and
   memoised energy bounds never read the weights). *)
let live_weights params =
  match params.adapt with None -> params.weights | Some a -> Adapt.weights a

(* Pool sizes live well under a hundred for every workload here; linear
   buckets of 4 keep the histogram readable. *)
let pool_size_bounds = Agrid_obs.Hist.linear_bounds ~lo:0. ~hi:64. ~n:16

(* Visit order of the machines for one timestep. Sorting keys are stable
   (ties fall back to the numerical order). *)
let machine_sequence params sched ~n_machines =
  match params.machine_order with
  | Numerical -> Array.init n_machines Fun.id
  | Fast_first ->
      let grid = Agrid_workload.Workload.grid (Schedule.workload sched) in
      let order = Array.init n_machines Fun.id in
      let key j =
        match (Agrid_platform.Grid.machine grid j).Agrid_platform.Machine.klass with
        | Agrid_platform.Machine.Fast -> 0
        | Agrid_platform.Machine.Slow -> 1
      in
      Array.sort (fun a b -> compare (key a, a) (key b, b)) order;
      order
  | Most_energy_first ->
      let order = Array.init n_machines Fun.id in
      Array.sort
        (fun a b ->
          compare
            (-.Schedule.energy_remaining sched a, a)
            (-.Schedule.energy_remaining sched b, b))
        order;
      order

type stats = {
  clock_steps : int;  (** timesteps executed *)
  pools_built : int;
  candidates_scored : int;
  plans_attempted : int;
  assignments : int;
}

type outcome = {
  schedule : Schedule.t;
  completed : bool;  (** all subtasks mapped before the clock passed tau *)
  final_clock : int;
  stats : stats;
  wall_seconds : float;  (** heuristic execution time (Figure 6 metric) *)
}

(* Core infeasibility verdicts carry [Version.t]; the ledger lives below
   core in the library stack, so its entries carry the version name. *)
let reject_of_infeasibility = function
  | Feasibility.Parent_unmapped { parent } ->
      Agrid_obs.Ledger.Parent_unmapped { parent }
  | Feasibility.Exec_energy { version; required; available } ->
      Agrid_obs.Ledger.Exec_energy
        { version = Version.to_string version; required; available }
  | Feasibility.Comm_energy { version; exec; comm; available } ->
      Agrid_obs.Ledger.Comm_energy
        { version = Version.to_string version; exec; comm; available }

(* ---- incremental-mode cache (one per [continue_run]) ----

   Three layers, each keyed on exactly the inputs the recomputation would
   read, so every cached answer is the same value — bit for bit — the
   rescan path would produce:

   - [memo]: the secondary-version energy bound per (task, machine). Pure
     function of the workload; never invalidated.
   - [bounds]: {!Objective.parent_bound} per (task, machine) — the
     parent-finish ready floor and incoming comm energy. Valid from the
     moment the task is poolable (all parents mapped) because placements
     are immutable within a run; never invalidated. Under parallel scoring,
     workers write disjoint slots (one task appears once per pool), so the
     plain array is race-free.
   - [pools]: the last pool built per machine, stamped with the commit
     epoch ([Schedule.n_mapped]) at build time. Every intra-run input of
     the pool — the ready set, the mapped set, and every battery level —
     changes only through [Schedule.commit], so an unchanged epoch means
     an identical pool. Reuse replays the build's admission counters and
     spans verbatim; only durations (and the reuse counters) tell the
     modes apart. Disabled when a ledger is attached: each rebuild emits
     per-step rejection entries that reuse cannot replay, and the ledger
     must stay bit-identical to the oracle's.

   Pool reuse additionally assumes [eligible] is stable for the duration
   of the run — true for both the plain loop and the churn engine, which
   only changes holds/failures between phases (each phase is its own
   [continue_run], hence its own cache). *)

type pool_entry = {
  pe_pool : int list;  (* post-eligibility pool, as scoring consumes it *)
  pe_admitted : int;  (* |raw pool| — "feasibility/admitted" replay *)
  pe_checked : int;  (* |ready set| — "feasibility/checked" replay *)
  pe_epoch : int;  (* Schedule.n_mapped when built *)
}

type cache = {
  memo : Feasibility.Memo.t;
  bounds : Objective.parent_bound option array;  (* task * n_machines + machine *)
  pools : pool_entry option array;  (* per machine *)
  cache_machines : int;
  reuse_pools : bool;  (* false when a decision ledger is attached *)
}

let make_cache params sched ~n_machines =
  let workload = Schedule.workload sched in
  let n_tasks = Workload.n_tasks workload in
  {
    memo = Feasibility.Memo.create ~mode:params.feas_mode workload;
    bounds = Array.make (n_tasks * n_machines) None;
    pools = Array.make n_machines None;
    cache_machines = n_machines;
    reuse_pools = Option.is_none (Agrid_obs.Sink.ledger params.obs);
  }

let bound_for cache sched ~task ~machine =
  let i = (task * cache.cache_machines) + machine in
  match cache.bounds.(i) with
  | Some b -> b
  | None ->
      let b = Objective.parent_bound sched ~task ~machine in
      cache.bounds.(i) <- Some b;
      b

(* One scored pool: best version and score per candidate, sorted by
   decreasing objective. Scoring reads the schedule without mutating it, so
   it can fan out over domains (the paper's parallel-hardware note); the
   sort ties break on task id either way, keeping results identical.

   When the sink carries a decision ledger, every unmapped task that
   stayed out of the pool is recorded with its typed rejection —
   including tasks the churn retry policy made ineligible. The pool
   itself is computed exactly as before; all ledger work is additive and
   guarded on [Sink.ledger]. *)
let scored_pool params ~cache ~eligible sched ~machine ~now stats_candidates =
  let obs = params.obs in
  let epoch = Schedule.n_mapped sched in
  let reusable =
    match cache with
    | Some c when c.reuse_pools -> (
        match c.pools.(machine) with
        | Some pe when pe.pe_epoch = epoch -> Some pe
        | Some _ | None -> None)
    | Some _ | None -> None
  in
  let pool =
    match reusable with
    | Some pe ->
        (* No commit since this pool was built: every input is unchanged,
           so replay the build's telemetry (same spans, same counter
           increments) and hand back the same list. *)
        Agrid_obs.Sink.span obs "slrh/pool_build" (fun () ->
            Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
                if Agrid_obs.Sink.enabled obs then begin
                  Agrid_obs.Sink.add obs "feasibility/checked" pe.pe_checked;
                  Agrid_obs.Sink.add obs "feasibility/admitted" pe.pe_admitted
                end);
            Agrid_obs.Sink.incr obs "slrh/pool_reused";
            pe.pe_pool)
    | None ->
        Agrid_obs.Sink.span obs "slrh/pool_build" (fun () ->
            let raw, n_checked =
              match cache with
              | Some c -> Feasibility.candidate_pool_memo ~obs c.memo sched ~machine
              | None ->
                  ( Feasibility.candidate_pool ~mode:params.feas_mode ~obs sched
                      ~machine,
                    0 )
            in
            (match Agrid_obs.Sink.ledger obs with
            | None -> ()
            | Some led ->
                List.iter
                  (fun (task, why) ->
                    Agrid_obs.Ledger.record led
                      (Agrid_obs.Ledger.Candidate
                         {
                           clock = now;
                           machine;
                           task;
                           fate = Agrid_obs.Ledger.Rejected (reject_of_infeasibility why);
                         }))
                  (Feasibility.explain_rejections ~mode:params.feas_mode sched ~machine);
                List.iter
                  (fun task ->
                    if not (eligible task) then
                      Agrid_obs.Ledger.record led
                        (Agrid_obs.Ledger.Candidate
                           {
                             clock = now;
                             machine;
                             task;
                             fate = Agrid_obs.Ledger.Rejected Agrid_obs.Ledger.Ineligible;
                           }))
                  raw);
            let pool = List.filter eligible raw in
            (match cache with
            | Some c ->
                Agrid_obs.Sink.incr obs "slrh/pool_rebuilt";
                if c.reuse_pools then
                  c.pools.(machine) <-
                    Some
                      {
                        pe_pool = pool;
                        pe_admitted = List.length raw;
                        pe_checked = n_checked;
                        pe_epoch = epoch;
                      }
            | None -> ());
            pool)
  in
  (* Scoring is pure, so the parallel path fans it out over domains. The
     sink stays out of the workers (it is single-domain): version-eval
     counts and score observations are recorded here, after the map, which
     also keeps the metrics identical between the two paths. *)
  let score =
    match cache with
    | None ->
        fun task ->
          let version, score =
            Objective.best_version (live_weights params) sched ~task ~machine ~now
          in
          (task, version, score)
    | Some c ->
        fun task ->
          let bound = bound_for c sched ~task ~machine in
          let version, score =
            Objective.best_version_with (live_weights params) sched ~bound ~task
              ~machine ~now
          in
          (task, version, score)
  in
  stats_candidates := !stats_candidates + List.length pool;
  let scored =
    Agrid_obs.Sink.span obs "slrh/score" (fun () ->
        match params.parallel_scoring with
        | Some domains when domains > 1 && List.length pool > 1 ->
            Array.to_list (Agrid_par.Parallel.map ~domains score (Array.of_list pool))
        | Some _ | None -> List.map score pool)
  in
  if Agrid_obs.Sink.enabled obs then begin
    let n = List.length pool in
    Agrid_obs.Sink.observe obs "slrh/pool_size" ~bounds:pool_size_bounds
      (float_of_int n);
    Agrid_obs.Sink.add obs "objective/version_evals" (2 * n);
    List.iter
      (fun (_, _, s) ->
        Agrid_obs.Sink.observe obs "slrh/score_value" ~bounds:Objective.score_bounds s)
      scored;
    Agrid_obs.Sink.max_gauge obs "slrh/pool_hwm" (float_of_int n)
  end;
  List.sort
    (fun (ta, _, a) (tb, _, b) ->
      let c = Float.compare b a in
      if c <> 0 then c else compare ta tb)
    scored

(* Walk a scored pool in order; plan each candidate and commit the first
   whose start fits the horizon. Returns the committed task, if any, and
   traces the decision.

   Ledger fates per pool member: the winner gets a [Commit] entry with
   the score decomposition (recomputed against the pre-commit schedule,
   so for SLRH-2's stale pools the recorded terms are the fresh truth
   even when the stale pool score differs) and the runner-up margin;
   walked-but-late candidates get [Horizon_missed] with their planned
   start; unwalked ones get [Outscored]; already-mapped stragglers in a
   stale pool keep their [Scored] rank. *)
let try_assign params sched ~machine ~now ~scored plans_attempted =
  let obs = params.obs in
  let ledger = Agrid_obs.Sink.ledger obs in
  let pool_size = List.length scored in
  let trace kind =
    match params.tracer with
    | Some t -> Trace.record t ~clock:now ~machine kind
    | None -> ()
  in
  let candidate task fate =
    match ledger with
    | None -> ()
    | Some led ->
        Agrid_obs.Ledger.record led
          (Agrid_obs.Ledger.Candidate { clock = now; machine; task; fate })
  in
  let ledger_commit ~task ~version (plan : Schedule.plan) =
    match ledger with
    | None -> ()
    | Some led ->
        (* pre-commit: [estimate] reads the schedule as it stood when the
           decision was made, and is_mapped still excludes only earlier
           commits *)
        let parts =
          Objective.estimate_parts (live_weights params) sched ~task ~version
            ~machine ~now
        in
        let runner_up =
          List.find_map
            (fun (t, _, s) ->
              if t <> task && not (Schedule.is_mapped sched t) then Some (t, s)
              else None)
            scored
        in
        Agrid_obs.Ledger.record led
          (Agrid_obs.Ledger.Commit
             {
               clock = now;
               machine;
               task;
               version = Version.to_string version;
               start = plan.Schedule.pl_start;
               stop = plan.Schedule.pl_stop;
               score = parts.Objective.total;
               alpha_term = parts.Objective.t100_term;
               beta_term = parts.Objective.energy_term;
               gamma_term = parts.Objective.aet_term;
               pool_size;
               runner_up;
             })
  in
  let rec walk rank = function
    | [] ->
        if pool_size = 0 then begin
          Agrid_obs.Sink.incr obs "slrh/pool_empty";
          trace Trace.Pool_empty
        end
        else begin
          Agrid_obs.Sink.incr obs "slrh/horizon_miss";
          trace (Trace.Horizon_miss { pool_size })
        end;
        None
    | (task, version, score) :: rest ->
        if Schedule.is_mapped sched task then begin
          candidate task
            (Agrid_obs.Ledger.Scored
               { version = Version.to_string version; score; rank });
          walk (rank + 1) rest
        end
        else begin
          incr plans_attempted;
          let plan =
            Agrid_obs.Sink.span obs "slrh/plan" (fun () ->
                Schedule.plan sched ~task ~version ~machine ~not_before:now)
          in
          if plan.Schedule.pl_start <= now + params.horizon then begin
            ledger_commit ~task ~version plan;
            (match ledger with
            | None -> ()
            | Some _ ->
                List.iteri
                  (fun i (t, v, s) ->
                    let fate =
                      let version = Version.to_string v in
                      let r = rank + 1 + i in
                      if Schedule.is_mapped sched t then
                        Agrid_obs.Ledger.Scored { version; score = s; rank = r }
                      else Agrid_obs.Ledger.Outscored { version; score = s; rank = r }
                    in
                    candidate t fate)
                  rest);
            Schedule.commit sched plan;
            trace
              (Trace.Assigned
                 {
                   task;
                   version;
                   start = plan.Schedule.pl_start;
                   stop = plan.Schedule.pl_stop;
                   score;
                   pool_size;
                   energy_remaining = Schedule.energy_remaining sched machine;
                 });
            Some task
          end
          else begin
            candidate task
              (Agrid_obs.Ledger.Horizon_missed
                 {
                   version = Version.to_string version;
                   score;
                   rank;
                   planned_start = plan.Schedule.pl_start;
                 });
            walk (rank + 1) rest
          end
        end
  in
  walk 0 scored

(* ---- the flat (SoA) pool path ----

   Same decisions, no boxes: pools live in the {!Pool.Flat} arena, are
   rebuilt with {!Feasibility.filter_into} and re-scored with
   {!Objective.score_into} in single passes, and are walked through the
   shared sort permutation. Reuse is epoch-keyed exactly like the
   incremental cache's. Telemetry, when the sink is enabled, replays the
   boxed path's span/counter/histogram sequence verbatim (fill order IS
   the boxed pool order, and observation loops run before sorting), so
   the differential suite compares sinks across modes directly.

   Closure discipline: every function below that runs on the
   steady-state path is a top-level function, every telemetry closure is
   built only under [Sink.enabled], and the walk recursions carry their
   state in arguments — so a timestep whose pools are reused and empty
   performs zero heap allocation (pinned by test_alloc). *)

(* Rebuild machine's pool into its arena row at [epoch]. With a ledger
   attached, the boxed build runs instead (its raw pool feeds the
   rejection entries, which must stay byte-identical to the oracle's)
   and the result is copied into the row; reuse is off in that case, so
   the copy happens every rebuild and allocation is already conceded. *)
let soa_rebuild params (arena : Pool.Flat.t) ~eligible sched ~machine ~now ~epoch =
  let obs = params.obs in
  let row = arena.Pool.Flat.rows.(machine) in
  (match Agrid_obs.Sink.ledger obs with
  | None ->
      let n, admitted, checked =
        Feasibility.filter_into ~obs arena.Pool.Flat.memo sched ~machine ~eligible
          ~ensure:(fun cap -> Pool.Flat.ensure arena row cap)
      in
      row.Pool.Flat.count <- n;
      row.Pool.Flat.admitted <- admitted;
      row.Pool.Flat.checked <- checked;
      Pool.Flat.note_occupancy arena n
  | Some led ->
      let raw, n_checked =
        Feasibility.candidate_pool_memo ~obs arena.Pool.Flat.memo sched ~machine
      in
      List.iter
        (fun (task, why) ->
          Agrid_obs.Ledger.record led
            (Agrid_obs.Ledger.Candidate
               {
                 clock = now;
                 machine;
                 task;
                 fate = Agrid_obs.Ledger.Rejected (reject_of_infeasibility why);
               }))
        (Feasibility.explain_rejections ~mode:params.feas_mode sched ~machine);
      List.iter
        (fun task ->
          if not (eligible task) then
            Agrid_obs.Ledger.record led
              (Agrid_obs.Ledger.Candidate
                 {
                   clock = now;
                   machine;
                   task;
                   fate = Agrid_obs.Ledger.Rejected Agrid_obs.Ledger.Ineligible;
                 }))
        raw;
      Pool.Flat.fill_from_list arena row (List.filter eligible raw);
      row.Pool.Flat.admitted <- List.length raw;
      row.Pool.Flat.checked <- n_checked);
  row.Pool.Flat.epoch <- epoch;
  Agrid_obs.Sink.incr obs "slrh/pool_rebuilt"

(* [scored_pool] on the arena: obtain (reuse or rebuild), re-score, sort.
   Returns the pool size; the sorted walk order is in [arena.order].
   Re-scoring happens every timestep even on reuse — scores depend on
   [now] and the timelines — exactly as the boxed reuse path re-scores
   its cached list. *)
let soa_scored_pool params (arena : Pool.Flat.t) ~eligible sched ~machine ~now
    stats_candidates =
  let obs = params.obs in
  let enabled = Agrid_obs.Sink.enabled obs in
  let epoch = Schedule.n_mapped sched in
  let row = arena.Pool.Flat.rows.(machine) in
  if arena.Pool.Flat.reuse_pools && row.Pool.Flat.epoch = epoch then begin
    (* unchanged inputs: replay the build's telemetry, keep the row *)
    if enabled then
      Agrid_obs.Sink.span obs "slrh/pool_build" (fun () ->
          Agrid_obs.Sink.span obs "feasibility/filter" (fun () ->
              Agrid_obs.Sink.add obs "feasibility/checked" row.Pool.Flat.checked;
              Agrid_obs.Sink.add obs "feasibility/admitted" row.Pool.Flat.admitted);
          Agrid_obs.Sink.incr obs "slrh/pool_reused")
  end
  else if enabled then
    Agrid_obs.Sink.span obs "slrh/pool_build" (fun () ->
        soa_rebuild params arena ~eligible sched ~machine ~now ~epoch)
  else soa_rebuild params arena ~eligible sched ~machine ~now ~epoch;
  let n = row.Pool.Flat.count in
  stats_candidates := !stats_candidates + n;
  let w = live_weights params in
  if enabled then begin
    (* timed directly rather than through [Sink.span]: the batch pass is
       short enough that the span wrapper's closures would dominate the
       measurement *)
    let t0 = Agrid_obs.Clock.monotonic_ns () in
    Objective.score_into w sched ~machine ~now ~n ~tasks:row.Pool.Flat.tasks
      ~bound_ready:arena.Pool.Flat.bound_ready
      ~bound_comm:arena.Pool.Flat.bound_comm
      ~bound_known:arena.Pool.Flat.bound_known ~versions:row.Pool.Flat.versions
      ~scores:row.Pool.Flat.scores;
    Agrid_obs.Sink.record_span obs "slrh/score"
      (Agrid_obs.Clock.elapsed_seconds ~since:t0);
    Agrid_obs.Sink.observe obs "slrh/pool_size" ~bounds:pool_size_bounds
      (float_of_int n);
    Agrid_obs.Sink.add obs "objective/version_evals" (2 * n);
    let scores = row.Pool.Flat.scores in
    for k = 0 to n - 1 do
      Agrid_obs.Sink.observe obs "slrh/score_value" ~bounds:Objective.score_bounds
        scores.(k)
    done;
    Agrid_obs.Sink.max_gauge obs "slrh/pool_hwm" (float_of_int n)
  end
  else if n > 0 then
    Objective.score_into w sched ~machine ~now ~n ~tasks:row.Pool.Flat.tasks
      ~bound_ready:arena.Pool.Flat.bound_ready
      ~bound_comm:arena.Pool.Flat.bound_comm
      ~bound_known:arena.Pool.Flat.bound_known ~versions:row.Pool.Flat.versions
      ~scores:row.Pool.Flat.scores;
  if n > 1 then Pool.Flat.sort arena row n
  else if n = 1 then arena.Pool.Flat.order.(0) <- 0;
  n

(* The arena pool as the boxed walk's sorted list — the SoA path when a
   ledger or tracer is attached, so every fate/event flows through the
   one [try_assign] whose bytes the oracle pins. Built back-to-front to
   keep construction order deterministic. *)
let soa_scored_list params arena ~eligible sched ~machine ~now stats_candidates =
  let n = soa_scored_pool params arena ~eligible sched ~machine ~now stats_candidates in
  let row = arena.Pool.Flat.rows.(machine) in
  let order = arena.Pool.Flat.order in
  let rec build i acc =
    if i < 0 then acc
    else
      let k = order.(i) in
      build (i - 1)
        ((row.Pool.Flat.tasks.(k), row.Pool.Flat.versions.(k), row.Pool.Flat.scores.(k))
        :: acc)
  in
  build (n - 1) []

(* [try_assign] for the flat fast path (no ledger, no tracer): walk the
   sort order, plan each unmapped candidate, commit the first whose start
   fits the horizon; returns the committed task id or -1. [seen_mapped]
   counts already-mapped stragglers (SLRH-2's drained commits), so the
   final empty-vs-miss counter decision sees the same pool size the
   boxed walk sees — its list excludes exactly those. Top-level
   recursion, state in arguments: an exhausting walk over an empty
   reused pool allocates nothing. *)
let rec flat_walk params (arena : Pool.Flat.t) sched ~machine ~now n i seen_mapped
    plans_attempted =
  let obs = params.obs in
  if i >= n then begin
    if n - seen_mapped = 0 then Agrid_obs.Sink.incr obs "slrh/pool_empty"
    else Agrid_obs.Sink.incr obs "slrh/horizon_miss";
    -1
  end
  else begin
    let row = arena.Pool.Flat.rows.(machine) in
    let k = arena.Pool.Flat.order.(i) in
    let task = row.Pool.Flat.tasks.(k) in
    if Schedule.is_mapped sched task then
      flat_walk params arena sched ~machine ~now n (i + 1) (seen_mapped + 1)
        plans_attempted
    else begin
      incr plans_attempted;
      let version = row.Pool.Flat.versions.(k) in
      let plan =
        if Agrid_obs.Sink.enabled obs then
          Agrid_obs.Sink.span obs "slrh/plan" (fun () ->
              Schedule.plan sched ~task ~version ~machine ~not_before:now)
        else Schedule.plan sched ~task ~version ~machine ~not_before:now
      in
      if plan.Schedule.pl_start <= now + params.horizon then begin
        Schedule.commit sched plan;
        task
      end
      else
        flat_walk params arena sched ~machine ~now n (i + 1) seen_mapped
          plans_attempted
    end
  end

(* SLRH-2's drain on the flat path: keep walking the SAME stale pool
   (no re-score, no re-sort) until a walk commits nothing. *)
let rec flat_drain params arena sched ~machine ~now n plans_attempted assignments =
  if flat_walk params arena sched ~machine ~now n 0 0 plans_attempted >= 0 then begin
    incr assignments;
    flat_drain params arena sched ~machine ~now n plans_attempted assignments
  end

(* SLRH-3 on the flat path: rebuild (epoch moved) and re-score after
   every commit. *)
let rec flat_v3 params arena ~eligible sched ~machine ~now pools_built
    stats_candidates plans_attempted assignments =
  incr pools_built;
  let n = soa_scored_pool params arena ~eligible sched ~machine ~now stats_candidates in
  if flat_walk params arena sched ~machine ~now n 0 0 plans_attempted >= 0 then begin
    incr assignments;
    flat_v3 params arena ~eligible sched ~machine ~now pools_built stats_candidates
      plans_attempted assignments
  end

let validate_params params =
  if params.delta_t <= 0 then invalid_arg "Slrh: delta_t must be positive";
  if params.horizon < 0 then invalid_arg "Slrh: horizon must be nonnegative"

(* Drive the clock loop over an existing schedule from [start_clock] until
   [until] (inclusive) or completion — the dynamic-grid extension resumes a
   partially executed schedule on a reduced grid this way. [mask] marks the
   machines currently part of the grid (churn engine: down machines are
   skipped by the sweep but keep their indices); [eligible] filters the
   candidate pool (churn engine: deferred or permanently failed subtasks
   are not remappable). *)
let continue_run ?until ?(start_clock = 0) ?mask ?(eligible = fun _ -> true) params sched =
  validate_params params;
  if start_clock < 0 then invalid_arg "Slrh: negative start clock";
  let t0 = Unix.gettimeofday () in
  let workload = Schedule.workload sched in
  let n_machines = Workload.n_machines workload in
  let up =
    match mask with
    | None -> fun _ -> true
    | Some a ->
        if Array.length a <> n_machines then
          invalid_arg "Slrh: mask length does not match machine count";
        fun j -> a.(j)
  in
  let tau = match until with Some u -> u | None -> Workload.tau workload in
  let cache =
    match params.mode with
    | `Rescan | `Soa -> None
    | `Incremental -> Some (make_cache params sched ~n_machines)
  in
  let arena =
    match params.mode with
    | `Rescan | `Incremental -> None
    | `Soa ->
        Some
          (Pool.Flat.create ~feas_mode:params.feas_mode
             ~reuse_pools:(Option.is_none (Agrid_obs.Sink.ledger params.obs))
             workload)
  in
  (* The zero-allocation walk applies only while no decision recorder is
     attached; a ledger or tracer routes the arena's pools through the
     boxed [try_assign], whose record bytes the oracle pins. *)
  let flat =
    match arena with
    | Some a
      when Option.is_none (Agrid_obs.Sink.ledger params.obs)
           && Option.is_none params.tracer ->
        Some a
    | Some _ | None -> None
  in
  let clock_steps = ref 0 in
  let pools_built = ref 0 in
  let candidates_scored = ref 0 in
  let plans_attempted = ref 0 in
  let assignments = ref 0 in
  let obs = params.obs in
  let ledger = Agrid_obs.Sink.ledger obs in
  (* snapshot deltas: pools/candidates since the previous sample *)
  let snap_pools = ref 0 in
  let snap_cands = ref 0 in
  let now = ref start_clock in
  (* Ledger idle entries answer "why did machine J sit idle at step K?":
     one per swept machine per timestep that ends with no assignment.
     [Busy]/[Down] are decided before the pool is even built; a machine
     that built pools but committed nothing records the last pool's
     emptiness ([Pool_empty] vs [Horizon_miss]). *)
  let record_idle ~machine ~cause =
    match ledger with
    | None -> ()
    | Some led ->
        Agrid_obs.Ledger.record led
          (Agrid_obs.Ledger.Idle { clock = !now; machine; cause })
  in
  let idle_cause_of_pool = function
    | [] -> Agrid_obs.Ledger.Pool_empty
    | _ :: _ -> Agrid_obs.Ledger.Horizon_miss
  in
  (* Cooperative cancellation, polled once per timestep as part of the
     loop condition: once [params.cancel] fires the run ends where it
     stands (no partial sweep). The default cancel is [fun () -> false],
     so the uncancelled loop is bit-identical to the historical one. *)
  let cancelled = ref false in
  let keep_going () =
    if (not !cancelled) && params.cancel () then cancelled := true;
    not !cancelled
  in
  (* The boxed walks' pool source: the arena (materialised through the
     sort order) when SoA mode runs with a ledger or tracer attached,
     the list paths otherwise. *)
  let get_scored ~machine =
    match arena with
    | Some a -> soa_scored_list params a ~eligible sched ~machine ~now:!now candidates_scored
    | None -> scored_pool params ~cache ~eligible sched ~machine ~now:!now candidates_scored
  in
  (* Numerical and fast-first visit orders read nothing that changes
     within a run, so their masked sequence is hoisted out of the clock
     loop (bit-identical for every mode; the flat path additionally
     needs it to keep steady-state timesteps allocation-free).
     Most-energy-first re-sorts by live battery each step, as before. *)
  let static_sequence =
    match params.machine_order with
    | Numerical | Fast_first ->
        Some
          (Array.of_list
             (List.filter up
                (Array.to_list (machine_sequence params sched ~n_machines))))
    | Most_energy_first -> None
  in
  let machine = ref 0 in
  while keep_going () && (not (Schedule.all_mapped sched)) && !now <= tau do
    incr clock_steps;
    (match ledger with
    | None -> ()
    | Some _ ->
        for j = 0 to n_machines - 1 do
          if not (up j) then record_idle ~machine:j ~cause:Agrid_obs.Ledger.Down
        done);
    let sequence =
      match static_sequence with
      | Some s -> s
      | None ->
          Array.of_list
            (List.filter up
               (Array.to_list (machine_sequence params sched ~n_machines)))
    in
    let n_swept = Array.length sequence in
    machine := 0;
    while (not (Schedule.all_mapped sched)) && !machine < n_swept do
      let j = sequence.(!machine) in
      if Schedule.machine_free_at sched ~machine:j ~time:!now then begin
        match flat with
        | Some a -> (
            (* flat fast path: no ledger, no tracer — idle recording and
               decision tracing are no-ops, so only counters and commits
               must match the boxed walks (and they do, bit for bit) *)
            match params.variant with
            | V1 ->
                incr pools_built;
                let n =
                  soa_scored_pool params a ~eligible sched ~machine:j ~now:!now
                    candidates_scored
                in
                if flat_walk params a sched ~machine:j ~now:!now n 0 0 plans_attempted >= 0
                then incr assignments
            | V2 ->
                incr pools_built;
                let n =
                  soa_scored_pool params a ~eligible sched ~machine:j ~now:!now
                    candidates_scored
                in
                flat_drain params a sched ~machine:j ~now:!now n plans_attempted
                  assignments
            | V3 ->
                flat_v3 params a ~eligible sched ~machine:j ~now:!now pools_built
                  candidates_scored plans_attempted assignments)
        | None -> (
            match params.variant with
            | V1 ->
                incr pools_built;
                let scored = get_scored ~machine:j in
                (match try_assign params sched ~machine:j ~now:!now ~scored plans_attempted with
                | Some _ -> incr assignments
                | None -> record_idle ~machine:j ~cause:(idle_cause_of_pool scored))
            | V2 ->
                (* one stale pool, drained as far as the horizon allows *)
                incr pools_built;
                let scored = ref (get_scored ~machine:j) in
                let committed = ref 0 in
                let continue_ = ref true in
                while !continue_ do
                  match try_assign params sched ~machine:j ~now:!now ~scored:!scored plans_attempted with
                  | Some task ->
                      incr assignments;
                      incr committed;
                      scored := List.filter (fun (i, _, _) -> i <> task) !scored
                  | None -> continue_ := false
                done;
                if !committed = 0 then
                  record_idle ~machine:j ~cause:(idle_cause_of_pool !scored)
            | V3 ->
                (* rebuild and re-score the pool after every assignment *)
                let committed = ref 0 in
                let last_pool_empty = ref true in
                let continue_ = ref true in
                while !continue_ do
                  incr pools_built;
                  let scored = get_scored ~machine:j in
                  (last_pool_empty := match scored with [] -> true | _ :: _ -> false);
                  match try_assign params sched ~machine:j ~now:!now ~scored plans_attempted with
                  | Some _ ->
                      incr assignments;
                      incr committed
                  | None -> continue_ := false
                done;
                if !committed = 0 then
                  record_idle ~machine:j
                    ~cause:
                      (if !last_pool_empty then Agrid_obs.Ledger.Pool_empty
                       else Agrid_obs.Ledger.Horizon_miss))
      end
      else record_idle ~machine:j ~cause:Agrid_obs.Ledger.Busy;
      incr machine
    done;
    (* after the sweep: one dual round if this timestep committed anything
       (Adapt skips timesteps that advanced nothing) *)
    (match params.adapt with
    | None -> ()
    | Some a -> Adapt.on_timestep a ~obs ~clock:!now sched);
    (* guarded on [enabled]: the [~make] closure captures eight locals, so
       merely constructing it would allocate every timestep on the noop
       sink — the flat path's zero-allocation budget forbids that *)
    let sampled =
      Agrid_obs.Sink.enabled obs
      && Agrid_obs.Sink.tick_snapshot obs ~make:(fun () ->
             {
               Agrid_obs.Snapshot.clock = !now;
               mapped = Schedule.n_mapped sched;
               t100 = Schedule.n_primary sched;
               pools_built = !pools_built - !snap_pools;
               pool_candidates = !candidates_scored - !snap_cands;
               energy = Array.init n_machines (Schedule.energy_remaining sched);
             })
    in
    if sampled then begin
      snap_pools := !pools_built;
      snap_cands := !candidates_scored
    end;
    if not (Schedule.all_mapped sched) then now := !now + params.delta_t
  done;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  if Agrid_obs.Sink.enabled obs then begin
    Agrid_obs.Sink.record_span obs "slrh/run" wall_seconds;
    Agrid_obs.Sink.add obs "slrh/clock_steps" !clock_steps;
    Agrid_obs.Sink.add obs "slrh/pools_built" !pools_built;
    Agrid_obs.Sink.add obs "slrh/candidates_scored" !candidates_scored;
    Agrid_obs.Sink.add obs "slrh/plans_attempted" !plans_attempted;
    Agrid_obs.Sink.add obs "slrh/assignments" !assignments;
    Agrid_obs.Sink.max_gauge obs "slrh/final_clock" (float_of_int !now);
    (match arena with
    | None -> ()
    | Some a ->
        (* arena sizing telemetry: capacity/regrowth are whole-run facts,
           emitted once here rather than inside the sweep *)
        Agrid_obs.Sink.max_gauge obs "slrh/pool_capacity"
          (float_of_int (Pool.Flat.capacity a));
        Agrid_obs.Sink.add obs "slrh/pool_regrown" (Pool.Flat.regrown a))
  end;
  {
    schedule = sched;
    completed = Schedule.all_mapped sched;
    final_clock = !now;
    stats =
      {
        clock_steps = !clock_steps;
        pools_built = !pools_built;
        candidates_scored = !candidates_scored;
        plans_attempted = !plans_attempted;
        assignments = !assignments;
      };
    wall_seconds;
  }

let run params workload = continue_run params (Schedule.create workload)

let pp_stats ppf s =
  Fmt.pf ppf "steps=%d pools=%d scored=%d plans=%d assigned=%d" s.clock_steps
    s.pools_built s.candidates_scored s.plans_attempted s.assignments

let pp_outcome ppf o =
  Fmt.pf ppf "%a completed=%b clock=%d wall=%.3fs [%a]" Schedule.pp o.schedule
    o.completed o.final_clock o.wall_seconds pp_stats o.stats
