(** The Simplified Lagrangian Receding Horizon resource manager (paper
    Sections IV-V): clock-driven candidate-pool mapping with a receding
    horizon, in three variants.

    - [V1] (SLRH-1): at most one assignment per machine per timestep.
    - [V2] (SLRH-2): drains one stale pool per machine per timestep without
      re-scoring or re-checking energy — faithful to the paper, and the
      reason SLRH-2 rarely yields feasible complete mappings.
    - [V3] (SLRH-3): rebuilds and re-scores the pool after every
      assignment. *)

open Agrid_sched

type variant = V1 | V2 | V3

val variant_to_string : variant -> string

type machine_order =
  | Numerical  (** the paper's "simple numerical order" *)
  | Fast_first  (** ablation: fast-class machines first *)
  | Most_energy_first  (** ablation: by remaining battery, per step *)

val machine_order_to_string : machine_order -> string

type mode = [ `Rescan | `Incremental | `Soa ]
(** How each timestep obtains its candidate pools.

    [`Rescan] rebuilds and re-prices every free machine's pool from
    scratch — the paper-literal loop, kept as the differential oracle.

    [`Incremental] reuses work whose inputs provably did not change:
    energy admission bounds are priced once per (task, machine)
    ({!Feasibility.Memo}), parent-derived score inputs are cached once a
    task is poolable ({!Objective.parent_bound}), and a machine's whole
    pool is reused while no commit has intervened since it was built
    (commits are the only intra-run mutation of the ready set, the
    mapped set and the batteries).

    [`Soa] (the default) keeps the incremental mode's memoisation and
    epoch-keyed whole-pool reuse but runs them on a flat preallocated
    structure-of-arrays arena ({!Pool.Flat}): batch admission
    ({!Feasibility.filter_into}) and batch scoring
    ({!Objective.score_into}) write into caller-owned buffers, and when
    neither a ledger nor a tracer is attached the walk commits straight
    off the arena, so steady-state timesteps perform zero heap
    allocation (pinned by the allocation-budget suite).

    All modes produce bit-identical schedules, traces, ledger records
    and obs counters — pinned by the differential suite — except for the
    maintenance-only counters ["slrh/pool_reused"] / ["slrh/pool_rebuilt"]
    and the [`Soa]-only arena gauges ["slrh/pool_capacity"] /
    ["slrh/pool_regrown"], plus span durations. Whole-pool reuse is
    disabled while a decision ledger is attached (each rebuild emits
    rejection entries reuse cannot replay) and assumes [eligible] is
    stable for the duration of the run, as both the plain loop and the
    churn engine guarantee. *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** ["rescan"] / ["incremental"] / ["soa"]; [None] otherwise. *)

type params = {
  variant : variant;
  delta_t : int;  (** timestep in clock cycles (paper: 10) *)
  horizon : int;  (** receding horizon H in clock cycles (paper: 100) *)
  weights : Objective.weights;
  feas_mode : Feasibility.mode;
  mode : mode;  (** pool maintenance strategy; see {!mode} *)
  machine_order : machine_order;
  parallel_scoring : int option;
      (** score pool candidates on this many domains (paper Section IV:
          SLRH "is amenable to a parallel hardware implementation");
          results are identical to the sequential path *)
  tracer : Trace.t option;  (** record one event per decision point *)
  obs : Agrid_obs.Sink.t;
      (** telemetry sink — spans over the hot paths ([slrh/run],
          [slrh/pool_build], [slrh/score], [slrh/plan],
          [feasibility/filter]), counters mirroring {!stats}, score and
          pool-size histograms, and one {!Agrid_obs.Snapshot.t} per
          timestep (stride-gated by the sink). A sink created with
          [~ledger:true] additionally records the decision ledger: typed
          per-candidate rejections, commit score decompositions with the
          runner-up margin, and per-machine idle causes. The default
          no-op sink is inert: scheduler output is bit-identical with or
          without it (ledger on or off). *)
  cancel : unit -> bool;
      (** cooperative cancellation, polled once per timestep before any
          work for that step: returning [true] ends the run where it
          stands, leaving [completed = false] and the schedule as built
          so far. The scenario service ({!Agrid_serve}) uses this to
          enforce per-job wall-clock deadlines without preemption. The
          default never cancels; the loop is then bit-identical to the
          uncancellable one. *)
  adapt : Adapt.t option;
      (** online Lagrangian dual ascent ({!Adapt}): when set, every score
          reads the controller's current weights instead of [weights],
          and the main loop runs one dual round after any timestep that
          committed an assignment (plus churn-triggered rounds injected
          by {!Dynamic}). [None] (the default) is bit-identical to the
          historical constant-weights run. The controller is mutable —
          build a fresh one per run. *)
}

val default_params : ?variant:variant -> Objective.weights -> params

type stats = {
  clock_steps : int;
  pools_built : int;
  candidates_scored : int;
  plans_attempted : int;
  assignments : int;
}

type outcome = {
  schedule : Schedule.t;
  completed : bool;  (** all subtasks mapped before the clock passed tau *)
  final_clock : int;
  stats : stats;
  wall_seconds : float;  (** heuristic execution time (Figure 6 metric) *)
}

val run : params -> Agrid_workload.Workload.t -> outcome

val continue_run :
  ?until:int ->
  ?start_clock:int ->
  ?mask:bool array ->
  ?eligible:(int -> bool) ->
  params ->
  Schedule.t ->
  outcome
(** Drive the clock loop over an existing schedule from [start_clock] until
    [until] (default: the workload's tau) or completion. Used by the
    dynamic-grid extension ({!Dynamic}) and the churn engine.

    [mask.(j) = false] removes machine [j] from the per-timestep sweep
    without renumbering the grid (churn: machines currently down);
    [eligible] filters the candidate pool (churn: subtasks deferred to a
    rejoin or out of retry budget). Defaults leave behaviour identical to
    the unmasked loop.
    @raise Invalid_argument when [mask] length differs from the grid. *)

val pp_stats : Format.formatter -> stats -> unit
val pp_outcome : Format.formatter -> outcome -> unit
