(** Flat structure-of-arrays candidate-pool arena for the SoA scheduler
    mode ({!Slrh.params.mode} [= `Soa]).

    One arena lives for one {!Slrh.continue_run}: per-machine rows of
    (task, best version, best score) in ready-list order, a flat
    (task, machine) parent-bound store replacing the incremental mode's
    boxed {!Objective.parent_bound} option cache, and a shared sort
    permutation. Rows are stamped with the commit epoch
    ([Schedule.n_mapped]) and reused while it is unchanged — PR 4's
    invalidation rule, in arrays. Steady-state reuse touches no
    allocating operation at all, which is what the allocation-budget
    suite pins. *)

open Agrid_workload

module Flat : sig
  type row = {
    mutable tasks : int array;  (** pool task ids, ready-list order *)
    mutable versions : Version.t array;  (** best version per slot *)
    mutable scores : float array;  (** best score per slot *)
    mutable count : int;  (** live slots *)
    mutable admitted : int;
        (** |raw pool| at build — ["feasibility/admitted"] replay *)
    mutable checked : int;
        (** |ready set| at build — ["feasibility/checked"] replay *)
    mutable epoch : int;  (** commit epoch at build; [-1] = never built *)
  }

  type t = {
    memo : Feasibility.Memo.t;  (** energy admission bounds (PR 4) *)
    n_machines : int;
    n_tasks : int;
    rows : row array;  (** one per machine *)
    bound_ready : int array;
        (** [task * n_machines + machine] -> parent-ready floor *)
    bound_comm : float array;
        (** [task * n_machines + machine] -> incoming comm energy *)
    bound_known : Bytes.t;  (** ['\001'] once the slot above is priced *)
    order : int array;  (** shared sort permutation, length [n_tasks] *)
    reuse_pools : bool;  (** false while a decision ledger is attached *)
    mutable capacity : int;  (** largest row capacity *)
    mutable hwm : int;  (** largest pool ever held *)
    mutable regrown : int;  (** row regrowth events *)
  }

  val default_capacity : int
  (** Initial row capacity (16): small enough that realistic workloads
      exercise regrowth, so the gauges below are live. *)

  val create :
    ?initial_capacity:int ->
    feas_mode:Feasibility.mode ->
    reuse_pools:bool ->
    Workload.t ->
    t
  (** Build an arena for one run. [reuse_pools] must be false when a
      decision ledger is attached (rebuilds emit rejection entries reuse
      cannot replay). @raise Invalid_argument on a non-positive
      [initial_capacity]. *)

  val capacity : t -> int
  (** Largest row capacity reached — the ["slrh/pool_capacity"] gauge. *)

  val hwm : t -> int
  (** Largest pool occupancy observed — the ["slrh/pool_hwm"] gauge. *)

  val regrown : t -> int
  (** Row regrowth events — the ["slrh/pool_regrown"] counter. Each
      event allocates fresh arrays without copying stale contents
      (regrowth only happens at the top of a rebuild, which overwrites
      every slot it uses — pinned by the regrowth unit test). *)

  val ensure : t -> row -> int -> int array
  (** Grow [row] (geometrically, fresh arrays, no copy) to hold [n]
      candidates; returns its task buffer. Resets [count] on regrowth. *)

  val note_occupancy : t -> int -> unit
  (** Fold a freshly built pool's size into the high-water mark. *)

  val fill_from_list : t -> row -> int list -> unit
  (** Copy a boxed pool (the ledger-attached rebuild path) into the
      row, setting [count] and the high-water mark. *)

  val sort : t -> row -> int -> unit
  (** Write into the shared [order] scratch the permutation of the first
      [n] slots sorted by (score desc, task asc) — the boxed
      [List.sort] order, allocation-free. Rows keep their fill order. *)
end
