(** Dynamic grid events: machine loss mid-run with on-the-fly SLRH
    rescheduling — the ad hoc transition the paper's three static cases
    bracket (extension; see DESIGN.md section 6).

    Both runs are thin wrappers over the general churn engine
    ({!Agrid_churn.Engine}): a loss is the trace [Leave\@at], an outage
    [Leave\@from_; Rejoin\@until_]. Arbitrary multi-event traces, retry
    policies and Monte Carlo churn campaigns live in [Agrid_churn] /
    [Agrid_exper.Campaign]; use {!run_churn} to drive them with SLRH.

    Loss semantics: work survives iff it finished before the loss on a
    surviving machine and all its ancestors survive; everything else is
    rescheduled from the loss instant; energy burned by discarded work on
    surviving machines is charged as sunk cost. *)

open Agrid_sched

type loss = { at : int  (** cycles *); machine : int }

type outcome = {
  schedule : Schedule.t;  (** final schedule, on the reduced grid *)
  workload : Agrid_workload.Workload.t;
  completed : bool;
  n_survivors : int;
  n_discarded : int;
  sunk_energy : float;
  ledger_energy_ok : bool;
      (** engine ledger (including sunk energy) within every battery —
          check alongside {!Validate.check}, which cannot see sunk cost *)
  pre_loss : Slrh.outcome;
  post_loss : Slrh.outcome;
}

val slrh_runner : Slrh.params -> Slrh.outcome Agrid_churn.Engine.runner
(** The SLRH receding-horizon loop packaged as a churn-engine phase
    runner ({!Slrh.continue_run} with the engine's mask and eligibility
    filter). *)

val run_churn :
  ?policy:Agrid_churn.Retry.policy ->
  Slrh.params ->
  Agrid_workload.Workload.t ->
  Agrid_churn.Event.t list ->
  Slrh.outcome Agrid_churn.Engine.outcome
(** Run the churn engine over an arbitrary event trace with SLRH phases.
    [policy] defaults to {!Agrid_churn.Retry.default} (immediate remap,
    unbounded retries). With an empty trace this is a single uninterrupted
    SLRH run. *)

val run_with_loss : Slrh.params -> Agrid_workload.Workload.t -> loss -> outcome

val pp_outcome : Format.formatter -> outcome -> unit

type outage_outcome = {
  o_schedule : Schedule.t;  (** final schedule, original grid and indices *)
  o_completed : bool;
  o_n_discarded : int;
  o_sunk_energy : float;
  o_ledger_energy_ok : bool;
  o_during : outcome;  (** the loss-phase outcome (reduced grid) *)
  o_final : Slrh.outcome;  (** the post-rejoin SLRH phase *)
}

val run_with_outage :
  Slrh.params ->
  Agrid_workload.Workload.t ->
  machine:int ->
  from_:int ->
  until_:int ->
  outage_outcome
(** Temporary outage: [machine] disappears during [\[from_, until_)] and
    rejoins (with its battery debited for pre-outage burn). Phases: full
    grid, masked grid, full grid again.
    @raise Invalid_argument when [until_ < from_], [from_] is negative, or
    [machine] is out of range. *)

val pp_outage : Format.formatter -> outage_outcome -> unit
