(** The churn event grammar: a scripted timeline of grid transitions the
    engine interleaves with SLRH receding-horizon phases. Machines are
    addressed by their original (full-grid) index throughout — the engine
    never renumbers.

    The grammar generalizes the one-shot transitions of {!Agrid_core.Dynamic}:
    a permanent loss is a lone [Leave]; an outage is [Leave] + [Rejoin]. *)

type kind =
  | Leave of int
      (** the machine disappears: its work (and, by ancestor closure, work
          depending on it) is discarded; energy already burned on surviving
          machines is sunk *)
  | Rejoin of int
      (** the machine reappears, empty-handed, billed for the energy it
          burned on pre-departure work *)
  | Battery_shock of int * float
      (** the machine instantly loses this fraction of its {e remaining}
          battery (fraction in [\[0, 1\]]) *)
  | Bandwidth_degrade of int * float
      (** the machine's link bandwidth is multiplied by this positive
          factor from now on (committed transfers keep their slots) *)

type t = { at : int  (** cycles *); kind : kind }

val machine : kind -> int
val kind_name : kind -> string

val sort : t list -> t list
(** Stable sort by time: same-instant events keep their given order. *)

val validate : n_machines:int -> t list -> unit
(** Check a (sorted) trace is applicable: nonnegative times, machines in
    range, shock fractions in [\[0,1\]], degrade factors positive, no
    [Leave] of an absent machine, no [Rejoin] of a present one. (All
    machines absent at once — a total blackout — is representable: the
    engine masks machines rather than removing them, and simply makes no
    progress until someone rejoins.) @raise Invalid_argument otherwise. *)

val to_string : t -> string
(** [leave\@AT:M], [rejoin\@AT:M], [shock\@AT:M:FRACTION],
    [degrade\@AT:M:FACTOR]. *)

val parse : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on syntax errors. *)

val parse_trace : string -> t list
(** Comma-separated events, e.g.
    ["leave@120:1,shock@200:0:0.5,rejoin@400:1"]; sorted by time on the
    way out. @raise Invalid_argument on syntax errors. *)

val trace_to_string : t list -> string

val pp : Format.formatter -> t -> unit
