(** Re-execution policy for subtasks discarded by a churn event.

    The paper notes partial-result recovery "may prove too costly"; we
    never recover, but the policy controls {e when} discarded work becomes
    remappable again and {e how often} a subtask may be discarded before it
    is abandoned. *)

type timing =
  | Immediate
      (** discarded subtasks re-enter the candidate pool at the very next
          SLRH phase — survivors absorb the lost work (the
          {!Agrid_core.Dynamic} behaviour) *)
  | Defer_to_rejoin
      (** discarded subtasks are held out of the pool until any machine
          rejoins — wait for capacity instead of cramming the survivors
          (if nothing ever rejoins, held work stays unmapped) *)

type policy = {
  timing : timing;
  budget : int option;
      (** max times one subtask may be discarded and requeued; exceeding it
          abandons the subtask permanently. [None] = unlimited. *)
}

val default : policy
(** Immediate remap, unlimited budget — [Dynamic]'s historical semantics. *)

val make : ?timing:timing -> ?budget:int -> unit -> policy
(** @raise Invalid_argument on a negative budget. *)

val timing_to_string : timing -> string
val pp : Format.formatter -> policy -> unit
