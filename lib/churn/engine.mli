(** The churn engine: a single event-driven loop that alternates scheduler
    phases with scripted grid transitions ({!Event}), generalizing the
    one-shot loss/outage runs of [Agrid_core.Dynamic] (which are
    reimplemented as thin wrappers over this engine).

    The engine is generic over the per-phase scheduler: a {!type-runner}
    drives the clock over the shared schedule between two events —
    [Agrid_core.Dynamic.slrh_runner] injects the paper's SLRH
    receding-horizon loop, keeping this library independent of any one
    heuristic.

    The engine never renumbers the grid: machines keep their original
    indices and absent ones are masked out of the scheduler's sweep, so a
    trace with any number of leaves, rejoins, shocks and link degrades
    composes.

    Loss semantics at a [Leave] (the conservative model the paper's
    "recovery may prove too costly" note motivates): a placement survives
    iff it finished strictly before the event, sits on a machine still
    present, and all of its ancestors survive; everything else is
    discarded, its partially-burned energy charged as sunk cost to the
    machines that stayed (the departing machine's own burn becomes a debit
    billed if it ever rejoins). Whether and when discarded subtasks become
    remappable again is the {!Retry} policy's call. *)

open Agrid_sched

type 'a runner =
  start_clock:int ->
  until:int option ->
  mask:bool array ->
  eligible:(int -> bool) ->
  Schedule.t ->
  'a * int
(** Drive one scheduler phase over the shared schedule from [start_clock]
    until [until] (inclusive; [None] = the workload's tau) or completion,
    skipping machines with [mask.(j) = false] and candidates rejected by
    [eligible]. Returns the phase's own outcome plus its final clock. *)

type 'a phase = {
  ph_from : int;  (** first clock value of the phase *)
  ph_until : int option;  (** inclusive bound; [None] = the workload's tau *)
  ph_up : bool array;  (** availability during the phase *)
  ph_outcome : 'a;
      (** the runner's outcome; a runner exposing the schedule exposes the
          engine schedule as of the end of the phase (frozen if a later
          event rebuilt, live otherwise) *)
}

type applied = {
  ev : Event.t;
  ev_survivors : int;  (** placements carried across (Leave events) *)
  ev_discarded : int;  (** placements discarded (Leave events) *)
  ev_deferred : int;  (** discards held for a rejoin under [Defer_to_rejoin] *)
  ev_failed : int;  (** subtasks abandoned here (retry budget exhausted) *)
  ev_sunk : float;  (** energy this event charged (sunk work, shock, debit) *)
}

type 'a outcome = {
  schedule : Schedule.t;  (** final schedule, original grid and indices *)
  workload : Agrid_workload.Workload.t;  (** final workload (after degrades) *)
  completed : bool;
  final_clock : int;
  up : bool array;  (** final availability *)
  phases : 'a phase list;  (** chronological *)
  applied : applied list;  (** chronological *)
  discards : int array;  (** per-subtask discard counts *)
  n_discarded : int;  (** discarded placements, with multiplicity *)
  n_failed : int;  (** subtasks permanently abandoned *)
  n_held : int;  (** subtasks still deferred when the run ended *)
  sunk_energy : float;  (** every non-work charge: sunk work + shocks + debits *)
  shock_energy : float;  (** the battery-shock part of [sunk_energy] *)
  ledger_energy_ok : bool;
      (** engine ledger (work + sunk) within every battery *)
}

val run :
  ?obs:Agrid_obs.Sink.t ->
  policy:Retry.policy ->
  runner:'a runner ->
  Agrid_workload.Workload.t ->
  Event.t list ->
  'a outcome
(** Run the full loop over the scripted trace (sorted internally; see
    {!Event.sort} for same-instant ordering). With an empty trace this is
    exactly one uninterrupted runner phase.

    [?obs] (default: the inert no-op sink) times scheduler phases
    (["churn/phase"]) and event application (["churn/event"]) and counts
    events by kind plus discard/defer/fail totals; the run's sunk and
    shock energy land as gauges. Telemetry never alters the outcome.
    @raise Invalid_argument on an inapplicable trace ({!Event.validate}). *)

val audit : 'a outcome -> string list
(** Structural violations of the final schedule: placements or transfers on
    absent machines, execution/channel overlap, precedence (child after
    parent and after its transfer), battery overdraft. Unlike
    [Validate.check] it trusts recorded transfer durations, which is
    required once a [Bandwidth_degrade] changed the link model mid-run, and
    it sees the sunk-energy ledger. *)

val pp_outcome : Format.formatter -> 'a outcome -> unit
val pp_applied : Format.formatter -> applied -> unit
