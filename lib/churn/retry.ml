(* Retry policy for discarded subtasks: when they become remappable and how
   many discards a subtask survives before being abandoned. *)

type timing = Immediate | Defer_to_rejoin

type policy = { timing : timing; budget : int option }

let default = { timing = Immediate; budget = None }

let make ?(timing = Immediate) ?budget () =
  (match budget with
  | Some b when b < 0 -> invalid_arg "Churn.Retry.make: negative budget"
  | Some _ | None -> ());
  { timing; budget }

let timing_to_string = function
  | Immediate -> "immediate"
  | Defer_to_rejoin -> "defer-to-rejoin"

let pp ppf p =
  Fmt.pf ppf "retry<%s budget=%a>" (timing_to_string p.timing)
    Fmt.(option ~none:(any "unlimited") int)
    p.budget
