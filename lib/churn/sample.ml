(* Per-machine alternating renewal sampling: up-time ~ Exp(1/up_mean),
   outage ~ Exp(1/down_mean), truncated at the horizon. One split stream
   per machine keeps traces stable under changes to any other machine's
   draw count. *)

open Agrid_prng

let exponential_trace rng ~n_machines ~horizon ~up_mean ~down_mean =
  if horizon <= 0 then invalid_arg "Churn.Sample.exponential_trace: nonpositive horizon";
  let machine_events j =
    let r = Splitmix64.split rng in
    let events = ref [] in
    let t = ref 0. in
    let up = ref true in
    let continue_ = ref true in
    while !continue_ do
      let mean = if !up then up_mean j else down_mean j in
      if mean <= 0. then
        invalid_arg "Churn.Sample.exponential_trace: nonpositive mean duration";
      t := !t +. Dist.exponential r ~rate:(1. /. mean);
      let at = int_of_float !t in
      if at >= horizon then continue_ := false
      else begin
        (* forward order per machine: a zero-length outage stays
           leave-then-rejoin through the stable sort *)
        events :=
          { Event.at; kind = (if !up then Event.Leave j else Event.Rejoin j) } :: !events;
        up := not !up
      end
    done;
    List.rev !events
  in
  Event.sort (List.concat (List.init n_machines machine_events))
