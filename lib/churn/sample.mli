(** Random churn-trace sampling for Monte Carlo survivability campaigns:
    each machine is an independent alternating renewal process with
    exponential up-times and outage lengths, the availability model the
    related grid-scheduling literature uses for ad hoc resources. *)

val exponential_trace :
  Agrid_prng.Splitmix64.t ->
  n_machines:int ->
  horizon:int ->
  up_mean:(int -> float) ->
  down_mean:(int -> float) ->
  Event.t list
(** Sample a leave/rejoin trace over [\[0, horizon)] cycles. [up_mean j]
    and [down_mean j] are machine [j]'s mean up-time and outage length in
    cycles (both must be positive). Each machine draws from its own split
    of the generator, so the trace for machine [j] does not depend on how
    many events the other machines produced. The result is sorted and
    passes {!Event.validate}; a rejoin that would land beyond the horizon
    is dropped (the outage becomes permanent).
    @raise Invalid_argument on nonpositive means or horizon. *)
