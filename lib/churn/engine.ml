(* The churn engine: one event-driven loop alternating scheduler phases
   with grid transitions. The per-phase scheduler is injected as a
   [runner] (Agrid_core.Dynamic.slrh_runner supplies the paper's SLRH
   loop), which keeps this library below agrid_core in the dependency
   order and the engine agnostic of the heuristic it drives.

   Two design decisions keep arbitrary traces composable where Dynamic's
   one-shot runs could not:

   - masking, not renumbering: absent machines stay in the grid (and keep
     their ETC columns, batteries and indices) but are skipped by the
     runner's sweep, so a Rejoin is just a mask flip and traces with many
     overlapping outages need no index gymnastics;
   - rebuild-by-replay: a Leave (or link degrade) swaps in a fresh
     schedule, replays the surviving placements/transfers verbatim and
     re-applies the accumulated sunk-energy charges, so every phase runs
     against a schedule whose invariants hold by construction.

   Sunk-energy accounting: partially (or wholly) executed work that a Leave
   discards is billed to the machines still present; the departing
   machine's own burn is remembered as a debit and billed only if it
   rejoins — batteries do not refill, and a battery that left the grid
   cannot be charged. *)

open Agrid_workload
open Agrid_sched

type 'a runner =
  start_clock:int ->
  until:int option ->
  mask:bool array ->
  eligible:(int -> bool) ->
  Schedule.t ->
  'a * int

type 'a phase = {
  ph_from : int;
  ph_until : int option;
  ph_up : bool array;
  ph_outcome : 'a;
}

type applied = {
  ev : Event.t;
  ev_survivors : int;
  ev_discarded : int;
  ev_deferred : int;
  ev_failed : int;
  ev_sunk : float;
}

type 'a outcome = {
  schedule : Schedule.t;
  workload : Workload.t;
  completed : bool;
  final_clock : int;
  up : bool array;
  phases : 'a phase list;
  applied : applied list;
  discards : int array;
  n_discarded : int;
  n_failed : int;
  n_held : int;
  sunk_energy : float;
  shock_energy : float;
  ledger_energy_ok : bool;
}

(* Partial-execution energy of a placement cut at [at]: what the machine
   burned before the event (full energy once stop <= at). *)
let partial_exec_energy wl (p : Schedule.placement) ~at =
  let executed = max 0 (min p.stop at - p.start) in
  if executed <= 0 then 0.
  else
    Agrid_platform.Machine.compute_energy
      (Agrid_platform.Grid.machine (Workload.grid wl) p.machine)
      ~seconds:(Agrid_platform.Units.seconds_of_cycles executed)

let partial_transfer_energy wl (tr : Schedule.transfer) ~at =
  let sent = max 0 (min tr.stop at - tr.start) in
  if sent <= 0 then 0.
  else
    Agrid_platform.Machine.transmit_energy
      (Agrid_platform.Grid.machine (Workload.grid wl) tr.src)
      ~seconds:(Agrid_platform.Units.seconds_of_cycles sent)

(* Mutable run state. [sched] is swapped wholesale on rebuilds; the
   replaced object keeps the pre-event state, which is how phase outcomes
   double as snapshots. *)
type state = {
  policy : Retry.policy;
  mutable wl : Workload.t;
  mutable sched : Schedule.t;
  up : bool array;
  debit : float array;  (* per absent machine: burn billed at rejoin *)
  discards : int array;
  held : bool array;
  failed : bool array;
  mutable n_discarded : int;
  mutable sunk : float;
  mutable shock : float;
}

(* Fresh schedule on [st.wl] with [keep]-selected placements (topological
   order keeps the frontier bookkeeping consistent), the transfers feeding
   them, and the accumulated non-work charges. *)
let rebuild st ~keep ~keep_transfer =
  let old = st.sched in
  let fresh = Schedule.create st.wl in
  let dag = Workload.dag st.wl in
  Array.iter
    (fun task ->
      match Schedule.placement old task with
      | Some p when keep task -> Schedule.replay_placement fresh p
      | Some _ | None -> ())
    (Agrid_dag.Dag.topological_order dag);
  Array.iter
    (fun (tr : Schedule.transfer) ->
      if keep_transfer tr then Schedule.replay_transfer fresh tr)
    (Schedule.transfers old);
  for j = 0 to Workload.n_machines st.wl - 1 do
    let c = Schedule.energy_charged old j in
    if c > 0. then Schedule.charge_energy fresh ~machine:j c
  done;
  st.sched <- fresh

let charge_sunk st ~machine amount =
  if amount > 0. then begin
    Schedule.charge_energy st.sched ~machine amount;
    st.sunk <- st.sunk +. amount
  end

let apply_leave st ~at j =
  st.up.(j) <- false;
  let old = st.sched in
  let wl = st.wl in
  let dag = Workload.dag wl in
  let n = Workload.n_tasks wl in
  (* survivor set: finished strictly before the event, on a machine still
     present, all ancestors surviving (topological order) *)
  let survives = Array.make n false in
  Array.iter
    (fun task ->
      match Schedule.placement old task with
      | Some p
        when st.up.(p.Schedule.machine)
             && p.Schedule.stop <= at
             && Array.for_all
                  (fun (q, _) -> survives.(q))
                  (Agrid_dag.Dag.parent_edges dag task) ->
          survives.(task) <- true
      | Some _ | None -> ())
    (Agrid_dag.Dag.topological_order dag);
  (* retry bookkeeping per discarded placement *)
  let survivors = ref 0 and discarded = ref 0 and deferred = ref 0 and failed = ref 0 in
  for task = 0 to n - 1 do
    match Schedule.placement old task with
    | None -> ()
    | Some _ when survives.(task) -> incr survivors
    | Some _ ->
        incr discarded;
        st.discards.(task) <- st.discards.(task) + 1;
        st.n_discarded <- st.n_discarded + 1;
        let out_of_budget =
          match st.policy.Retry.budget with
          | Some b -> st.discards.(task) > b
          | None -> false
        in
        if out_of_budget then begin
          if not st.failed.(task) then incr failed;
          st.failed.(task) <- true
        end
        else begin
          match st.policy.Retry.timing with
          | Retry.Immediate -> ()
          | Retry.Defer_to_rejoin ->
              st.held.(task) <- true;
              incr deferred
        end
  done;
  rebuild st
    ~keep:(fun task -> survives.(task))
    ~keep_transfer:(fun tr -> survives.(tr.Schedule.dst_task));
  (* sunk energy of the discarded work, cut at the event instant: machines
     still present are billed now; the departing machine accrues a debit *)
  let sunk_here = ref 0. in
  let bill ~machine amount =
    if amount > 0. then
      if machine = j then st.debit.(j) <- st.debit.(j) +. amount
      else begin
        charge_sunk st ~machine amount;
        sunk_here := !sunk_here +. amount
      end
  in
  Array.iter
    (fun (tr : Schedule.transfer) ->
      if not survives.(tr.Schedule.dst_task) then
        bill ~machine:tr.Schedule.src (partial_transfer_energy wl tr ~at))
    (Schedule.transfers old);
  for task = 0 to n - 1 do
    match Schedule.placement old task with
    | Some p when not survives.(task) ->
        bill ~machine:p.Schedule.machine (partial_exec_energy wl p ~at)
    | Some _ | None -> ()
  done;
  (!survivors, !discarded, !deferred, !failed, !sunk_here)

let apply_rejoin st j =
  st.up.(j) <- true;
  let debit = st.debit.(j) in
  st.debit.(j) <- 0.;
  charge_sunk st ~machine:j debit;
  (* capacity is back: deferred work becomes remappable again *)
  (match st.policy.Retry.timing with
  | Retry.Defer_to_rejoin -> Array.fill st.held 0 (Array.length st.held) false
  | Retry.Immediate -> ());
  debit

let apply_shock st j fraction =
  let amount = fraction *. Float.max 0. (Schedule.energy_remaining st.sched j) in
  charge_sunk st ~machine:j amount;
  st.shock <- st.shock +. amount;
  amount

let apply_degrade st j factor =
  st.wl <- Workload.degrade_bandwidth st.wl ~machine:j ~factor;
  (* committed transfers keep their slots and recorded energy; only future
     plans see the degraded link *)
  rebuild st ~keep:(fun _ -> true) ~keep_transfer:(fun _ -> true)

let run ?(obs = Agrid_obs.Sink.noop) ~policy ~runner workload events =
  let m = Workload.n_machines workload in
  let n = Workload.n_tasks workload in
  let events = Event.sort events in
  Event.validate ~n_machines:m events;
  let st =
    {
      policy;
      wl = workload;
      sched = Schedule.create workload;
      up = Array.make m true;
      debit = Array.make m 0.;
      discards = Array.make n 0;
      held = Array.make n false;
      failed = Array.make n false;
      n_discarded = 0;
      sunk = 0.;
      shock = 0.;
    }
  in
  let eligible task = not (st.held.(task) || st.failed.(task)) in
  let clock = ref 0 in
  let fclock = ref 0 in
  let phases = ref [] in
  let applied = ref [] in
  let run_phase ?until () =
    let o, phase_clock =
      Agrid_obs.Sink.span obs "churn/phase" (fun () ->
          runner ~start_clock:!clock ~until ~mask:st.up ~eligible st.sched)
    in
    Agrid_obs.Sink.incr obs "churn/phases";
    fclock := phase_clock;
    phases :=
      { ph_from = !clock; ph_until = until; ph_up = Array.copy st.up; ph_outcome = o }
      :: !phases
  in
  List.iter
    (fun (ev : Event.t) ->
      if ev.Event.at > !clock then begin
        run_phase ~until:(ev.Event.at - 1) ();
        clock := ev.Event.at
      end;
      let ev_survivors, ev_discarded, ev_deferred, ev_failed, ev_sunk =
        Agrid_obs.Sink.span obs "churn/event" (fun () ->
            match ev.Event.kind with
            | Event.Leave j ->
                let s, d, held, failed, sunk = apply_leave st ~at:ev.Event.at j in
                (s, d, held, failed, sunk)
            | Event.Rejoin j -> (0, 0, 0, 0, apply_rejoin st j)
            | Event.Battery_shock (j, f) -> (0, 0, 0, 0, apply_shock st j f)
            | Event.Bandwidth_degrade (j, f) ->
                apply_degrade st j f;
                (0, 0, 0, 0, 0.))
      in
      (* decision-ledger churn marker: lets explain/diff anchor idle and
         rejection entries to the grid transition that caused them *)
      (match Agrid_obs.Sink.ledger obs with
      | None -> ()
      | Some led ->
          let machine, event, detail =
            match ev.Event.kind with
            | Event.Leave j -> (j, "leave", ev_sunk)
            | Event.Rejoin j -> (j, "rejoin", ev_sunk)
            | Event.Battery_shock (j, f) -> (j, "shock", f)
            | Event.Bandwidth_degrade (j, f) -> (j, "degrade", f)
          in
          Agrid_obs.Ledger.record led
            (Agrid_obs.Ledger.Churn { clock = ev.Event.at; machine; event; detail }));
      if Agrid_obs.Sink.enabled obs then begin
        Agrid_obs.Sink.incr obs "churn/events";
        Agrid_obs.Sink.incr obs
          (match ev.Event.kind with
          | Event.Leave _ -> "churn/leaves"
          | Event.Rejoin _ -> "churn/rejoins"
          | Event.Battery_shock _ -> "churn/shocks"
          | Event.Bandwidth_degrade _ -> "churn/degrades");
        Agrid_obs.Sink.add obs "churn/discarded" ev_discarded;
        Agrid_obs.Sink.add obs "churn/deferred" ev_deferred;
        Agrid_obs.Sink.add obs "churn/failed" ev_failed
      end;
      applied := { ev; ev_survivors; ev_discarded; ev_deferred; ev_failed; ev_sunk } :: !applied)
    events;
  run_phase ();
  let final_clock = !fclock in
  let ledger_energy_ok =
    let ok = ref true in
    for j = 0 to m - 1 do
      if Schedule.energy_remaining st.sched j < -1e-9 then ok := false
    done;
    !ok
  in
  let count a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
  if Agrid_obs.Sink.enabled obs then begin
    Agrid_obs.Sink.set_gauge obs "churn/sunk_energy" st.sunk;
    Agrid_obs.Sink.set_gauge obs "churn/shock_energy" st.shock;
    Agrid_obs.Sink.set_gauge obs "churn/final_clock" (float_of_int final_clock)
  end;
  {
    schedule = st.sched;
    workload = st.wl;
    completed = Schedule.all_mapped st.sched;
    final_clock;
    up = Array.copy st.up;
    phases = List.rev !phases;
    applied = List.rev !applied;
    discards = st.discards;
    n_discarded = st.n_discarded;
    n_failed = count st.failed;
    n_held = count st.held;
    sunk_energy = st.sunk;
    shock_energy = st.shock;
    ledger_energy_ok;
  }

(* ------------------------------------------------------------------ *)
(* Audit: structural checks that, unlike Validate.check, trust recorded
   transfer durations (the link model may have changed mid-run) and know
   about machine presence and the sunk-energy ledger. *)

let audit o =
  let wl = Schedule.workload o.schedule in
  let m = Workload.n_machines wl in
  let violations = ref [] in
  let bad fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let placements = Schedule.placements o.schedule in
  let transfers = Schedule.transfers o.schedule in
  (* presence: nothing may sit on an absent machine *)
  Array.iter
    (fun (p : Schedule.placement) ->
      if p.machine < 0 || p.machine >= m then
        bad "task %d on nonexistent machine %d" p.task p.machine
      else if not o.up.(p.machine) then
        bad "task %d placed on absent machine %d" p.task p.machine)
    placements;
  (* overlap per machine / channel, from recorded intervals *)
  let check_lane label intervals =
    let sorted = List.sort compare intervals in
    let rec scan = function
      | (_, e1, a) :: ((s2, _, b) :: _ as rest) ->
          if s2 < e1 then bad "%s overlap between %d and %d" label a b;
          scan rest
      | [ _ ] | [] -> ()
    in
    scan sorted
  in
  for j = 0 to m - 1 do
    check_lane (Fmt.str "machine %d execution" j)
      (Array.to_list placements
      |> List.filter_map (fun (p : Schedule.placement) ->
             if p.machine = j then Some (p.start, p.stop, p.task) else None));
    check_lane (Fmt.str "machine %d outgoing channel" j)
      (Array.to_list transfers
      |> List.filter_map (fun (tr : Schedule.transfer) ->
             if tr.src = j then Some (tr.start, tr.stop, tr.edge) else None));
    check_lane (Fmt.str "machine %d incoming channel" j)
      (Array.to_list transfers
      |> List.filter_map (fun (tr : Schedule.transfer) ->
             if tr.dst = j then Some (tr.start, tr.stop, tr.edge) else None))
  done;
  (* precedence with recorded transfer windows *)
  let transfer_by_edge = Hashtbl.create (Array.length transfers) in
  Array.iter
    (fun (tr : Schedule.transfer) ->
      if Hashtbl.mem transfer_by_edge tr.Schedule.edge then
        bad "edge %d transferred more than once" tr.Schedule.edge
      else Hashtbl.add transfer_by_edge tr.Schedule.edge tr)
    transfers;
  Agrid_dag.Dag.iter_edges
    (fun e ~src ~dst ->
      match (Schedule.placement o.schedule src, Schedule.placement o.schedule dst) with
      | Some ps, Some pd ->
          if ps.machine = pd.machine then begin
            if pd.start < ps.stop then
              bad "task %d starts before parent %d finishes (same machine)" dst src
          end
          else begin
            match Hashtbl.find_opt transfer_by_edge e with
            | None -> bad "cross-machine edge %d (%d->%d) has no transfer" e src dst
            | Some tr ->
                if tr.src <> ps.machine || tr.dst <> pd.machine then
                  bad "edge %d transfer endpoints (%d->%d) do not match placements (%d->%d)"
                    e tr.src tr.dst ps.machine pd.machine;
                if tr.start < ps.stop then
                  bad "edge %d transfer departs before parent %d finishes" e src;
                if pd.start < tr.stop then
                  bad "task %d starts before its input on edge %d arrives" dst e
          end
      | None, Some _ -> bad "task %d mapped before its parent %d" dst src
      | _, None -> ())
    (Workload.dag wl);
  (* energy ledger, sunk charges included *)
  for j = 0 to m - 1 do
    let battery =
      (Agrid_platform.Grid.machine (Workload.grid wl) j).Agrid_platform.Machine.battery
    in
    if Schedule.energy_remaining o.schedule j < -.(1e-9 *. battery) then
      bad "machine %d battery overdrawn (%.3f remaining)" j
        (Schedule.energy_remaining o.schedule j)
  done;
  List.rev !violations

let pp_applied ppf a =
  Fmt.pf ppf "%a survivors=%d discarded=%d deferred=%d failed=%d sunk=%.3f" Event.pp a.ev
    a.ev_survivors a.ev_discarded a.ev_deferred a.ev_failed a.ev_sunk

let pp_outcome ppf o =
  Fmt.pf ppf
    "churn<%a events=%d discarded=%d failed=%d held=%d sunk=%.3f shock=%.3f \
     completed=%b clock=%d ledger_ok=%b>"
    Schedule.pp o.schedule (List.length o.applied) o.n_discarded o.n_failed o.n_held
    o.sunk_energy o.shock_energy o.completed o.final_clock o.ledger_energy_ok
