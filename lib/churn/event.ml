(* The churn event grammar. Events address machines by their original
   full-grid index; the engine masks rather than renumbers, so a trace
   stays meaningful across any number of transitions. *)

type kind =
  | Leave of int
  | Rejoin of int
  | Battery_shock of int * float
  | Bandwidth_degrade of int * float

type t = { at : int; kind : kind }

let machine = function
  | Leave j | Rejoin j | Battery_shock (j, _) | Bandwidth_degrade (j, _) -> j

let kind_name = function
  | Leave _ -> "leave"
  | Rejoin _ -> "rejoin"
  | Battery_shock _ -> "shock"
  | Bandwidth_degrade _ -> "degrade"

(* Stable: same-instant events apply in the order given (so a zero-length
   outage is leave-then-rejoin, not the reverse). *)
let sort events = List.stable_sort (fun a b -> compare a.at b.at) events

(* Applicability check: replays presence over the trace. The engine calls
   this before touching the schedule so a bad trace fails fast. *)
let validate ~n_machines events =
  let bad fmt = Fmt.kstr invalid_arg ("Churn.Event.validate: " ^^ fmt) in
  let up = Array.make n_machines true in
  List.iter
    (fun { at; kind } ->
      if at < 0 then bad "negative event time %d" at;
      let j = machine kind in
      if j < 0 || j >= n_machines then bad "no such machine %d" j;
      match kind with
      | Leave _ ->
          if not up.(j) then bad "leave@%d: machine %d is already absent" at j;
          up.(j) <- false
      | Rejoin _ ->
          if up.(j) then bad "rejoin@%d: machine %d is already present" at j;
          up.(j) <- true
      | Battery_shock (_, f) ->
          if f < 0. || f > 1. then bad "shock@%d: fraction %g outside [0,1]" at f;
          if not up.(j) then bad "shock@%d: machine %d is absent" at j
      | Bandwidth_degrade (_, f) ->
          if f <= 0. then bad "degrade@%d: factor %g must be positive" at f;
          if not up.(j) then bad "degrade@%d: machine %d is absent" at j)
    events

let to_string { at; kind } =
  match kind with
  | Leave j -> Fmt.str "leave@%d:%d" at j
  | Rejoin j -> Fmt.str "rejoin@%d:%d" at j
  | Battery_shock (j, f) -> Fmt.str "shock@%d:%d:%g" at j f
  | Bandwidth_degrade (j, f) -> Fmt.str "degrade@%d:%d:%g" at j f

let parse s =
  let bad () = Fmt.kstr invalid_arg "Churn.Event.parse: malformed event %S" s in
  let name, rest =
    match String.index_opt s '@' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> bad ()
  in
  let fields = String.split_on_char ':' rest in
  let int_of x = match int_of_string_opt (String.trim x) with Some v -> v | None -> bad () in
  let float_of x =
    match float_of_string_opt (String.trim x) with Some v -> v | None -> bad ()
  in
  match (String.trim name, fields) with
  | "leave", [ at; j ] -> { at = int_of at; kind = Leave (int_of j) }
  | "rejoin", [ at; j ] -> { at = int_of at; kind = Rejoin (int_of j) }
  | "shock", [ at; j; f ] -> { at = int_of at; kind = Battery_shock (int_of j, float_of f) }
  | "degrade", [ at; j; f ] ->
      { at = int_of at; kind = Bandwidth_degrade (int_of j, float_of f) }
  | _ -> bad ()

let parse_trace s =
  String.split_on_char ',' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None else Some (parse part))
  |> sort

let trace_to_string events = String.concat "," (List.map to_string events)

let pp ppf e = Fmt.string ppf (to_string e)
