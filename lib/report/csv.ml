(* Minimal CSV writer (RFC-4180-style quoting) for exporting traces and
   experiment results to external analysis tools. *)

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let pp_row ppf row = Fmt.pf ppf "%s@." (String.concat "," (List.map quote row))

let pp ppf ~header rows =
  pp_row ppf header;
  List.iter (pp_row ppf) rows

let to_string ~header rows = Fmt.str "%a" (fun ppf () -> pp ppf ~header rows) ()

let write_file path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Fmt.pf (Format.formatter_of_out_channel oc) "%a@?"
        (fun ppf () -> pp ppf ~header rows) ())

(* ---- reader (inverse of the writer) ---- *)

(* RFC-4180 parse: comma-separated fields, double-quoted fields may hold
   commas, newlines and doubled quotes. Accepts LF and CRLF row ends; an
   unterminated quote raises. A trailing newline does not produce a
   phantom empty row. *)
let parse s =
  let n = String.length s in
  let rows = ref [] and row = ref [] in
  let field = Buffer.create 32 in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    (if !in_quotes then
       if c = '"' then
         if !i + 1 < n && s.[!i + 1] = '"' then begin
           Buffer.add_char field '"';
           incr i
         end
         else in_quotes := false
       else Buffer.add_char field c
     else
       match c with
       | '"' when Buffer.length field = 0 -> in_quotes := true
       | ',' -> flush_field ()
       | '\n' -> flush_row ()
       | '\r' when !i + 1 < n && s.[!i + 1] = '\n' ->
           flush_row ();
           incr i
       | c -> Buffer.add_char field c);
    incr i
  done;
  if !in_quotes then invalid_arg "Csv.parse: unterminated quoted field";
  if Buffer.length field > 0 || !row <> [] then flush_row ();
  List.rev !rows

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
