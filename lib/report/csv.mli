(** Minimal CSV writer and reader (RFC-4180-style quoting). *)

val pp : Format.formatter -> header:string list -> string list list -> unit
val to_string : header:string list -> string list list -> string
val write_file : string -> header:string list -> string list list -> unit

val parse : string -> string list list
(** Inverse of {!to_string}, header row included. Quoted fields may hold
    commas, newlines and doubled quotes; accepts LF and CRLF endings.
    @raise Invalid_argument on an unterminated quote. *)

val read_file : string -> string list list
(** {!parse} over a whole file. *)
