(** Monte Carlo churn campaign: survivability of the SLRH resource manager
    under random machine churn (extension; the paper defers dynamic
    reconfiguration, Section III).

    Each churn intensity level runs [replicates] independent seeded traces
    — per-machine alternating renewal processes with exponential up-times
    ({!Agrid_churn.Sample.exponential_trace}) — through the churn engine
    and reports degradation curves: completion probability, deadline-miss
    rate, mean T100, mean sunk energy. Replicates fan out over
    {!Agrid_par.Parallel}; every draw derives from [seed], so a campaign
    is exactly reproducible. *)

type level = {
  intensity : float;  (** expected leaves per machine over the deadline *)
  n_replicates : int;
  completion_rate : float;  (** fraction of replicates mapping all subtasks *)
  deadline_miss_rate : float;
      (** fraction incomplete or finishing past tau *)
  mean_t100 : float;  (** mean primary versions mapped *)
  mean_sunk : float;  (** mean sunk energy (discarded work + debits) *)
  mean_events : float;  (** mean churn events per trace *)
  mean_discards : float;  (** mean placements discarded per run *)
}

val default_intensities : float list
(** [0; 0.5; 1; 2; 4] expected leaves per machine. *)

val run :
  ?obs:Agrid_obs.Sink.t ->
  ?weights:Agrid_core.Objective.weights ->
  ?policy:Agrid_churn.Retry.policy ->
  ?adapt:Agrid_core.Adapt.spec ->
  ?intensities:float list ->
  ?replicates:int ->
  ?down_fraction:float ->
  ?shards:int ->
  seed:int ->
  Config.t ->
  level list
(** Run the campaign on the Case A workload of [config]. [down_fraction]
    (default 0.15) sets the mean outage length as a fraction of tau;
    intensity [x] gives mean up-time [tau / x] (intensity 0 is the static
    baseline: no events are sampled). [replicates] defaults to 32.

    [?adapt] runs every replicate under online dual ascent
    ({!Agrid_core.Adapt}) seeded from [weights], with the spec's implied
    feasibility mode; each replicate gets a fresh controller, so
    aggregates remain shard-count-invariant. The spec must already be
    validated ({!Agrid_core.Adapt.validate_spec}).

    [?shards] splits each level's replicates into that many contiguous
    blocks run on worker domains via {!Agrid_par.Parallel.run_workers}
    (default: one shard per available domain — [Config.domains] if set —
    capped at the replicate count). Replicate PRNG streams are derived
    from (seed, level, rep) alone and level statistics fold the results in
    replicate order, so the reported aggregates are identical for every
    shard count (pinned by the differential suite).

    [?obs] (default: inert): each shard records scheduler and engine
    telemetry into a private sink on its worker domain; the calling domain
    folds them into [obs] after each level joins, and times levels under
    the ["campaign/level"] span (replicate wall time lands under
    ["campaign/replicate"]; the shard count under the ["campaign/shards"]
    gauge). Counter totals are shard-count-invariant; snapshot retention
    is not (shards share a bounded ring).
    @raise Invalid_argument on a nonpositive replicate count, negative
    intensity, or [shards < 1]. *)

val table : level list -> Agrid_report.Table.t

val pp_level : Format.formatter -> level -> unit

(** {2 Multi-tenant traffic replicates}

    The same replicate discipline applied to the continuous-traffic
    engine ({!Agrid_tenant.Traffic}): each replicate reruns the spec
    under a seed splitmix-derived from [(spec.seed, rep)], so a traffic
    campaign is a pure function of the spec — byte-identical [?obs]
    exports included (the traffic engine records nothing
    wall-clock-dependent). *)

type tenant_level = {
  t_id : string;
  t_priority : string;
  t_replicates : int;
  t_mean_arrivals : float;
  t_mean_admitted : float;
  t_mean_rejected : float;
  t_mean_completed : float;
  t_mean_t100 : float;
  t_mean_tec : float;
  t_mean_steps : float;
}

type traffic_summary = {
  ts_tenants : tenant_level list;  (** spec tenant order *)
  ts_replicates : int;
  ts_mean_fairness_gap : float;
  ts_max_fairness_gap : float;
}

val run_traffic :
  ?obs:Agrid_obs.Sink.t ->
  ?replicates:int ->
  ?shards:int ->
  Agrid_tenant.Traffic.spec ->
  traffic_summary
(** [replicates] defaults to 8; [shards] shards them over worker domains
    exactly like {!run} (contiguous blocks, per-shard sinks folded into
    [obs] after the join; aggregates are shard-count-invariant).
    @raise Invalid_argument on a nonpositive replicate count,
    [shards < 1], or a spec {!Agrid_tenant.Traffic.validate} rejects. *)

val traffic_table : traffic_summary -> Agrid_report.Table.t
