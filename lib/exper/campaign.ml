(* Monte Carlo churn campaign. Each (level, replicate) pair owns a
   generator derived from the campaign seed by the same multiplicative
   mixing the workload streams use, so adding levels or replicates never
   perturbs the draws of the others, and the whole campaign is a pure
   function of [seed]. *)

open Agrid_workload
open Agrid_prng

type level = {
  intensity : float;
  n_replicates : int;
  completion_rate : float;
  deadline_miss_rate : float;
  mean_t100 : float;
  mean_sunk : float;
  mean_events : float;
  mean_discards : float;
}

let default_intensities = [ 0.0; 0.5; 1.0; 2.0; 4.0 ]

type replicate_result = {
  r_completed : bool;
  r_deadline_miss : bool;
  r_t100 : int;
  r_sunk : float;
  r_events : int;
  r_discards : int;
}

let rng_for ~seed ~level ~rep =
  Splitmix64.create
    Int64.(
      add
        (mul (of_int seed) 0x9E3779B97F4A7C15L)
        (add (mul (of_int level) 0xBF58476D1CE4E5B9L) (of_int (rep + 1))))

let run ?(obs = Agrid_obs.Sink.noop)
    ?(weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3)
    ?(policy = Agrid_churn.Retry.default) ?adapt ?(intensities = default_intensities)
    ?(replicates = 32) ?(down_fraction = 0.15) ?shards ~seed (config : Config.t) =
  if replicates <= 0 then invalid_arg "Campaign.run: nonpositive replicate count";
  (match shards with
  | Some s when s < 1 -> invalid_arg "Campaign.run: shards must be >= 1"
  | Some _ | None -> ());
  let shards =
    match shards with
    | Some s -> s
    | None ->
        (* Default: one shard per available domain, never more shards than
           replicates (empty shards would spawn idle domains). *)
        min replicates
          (match config.Config.domains with
          | Some d -> max 1 d
          | None -> Agrid_par.Parallel.default_domains ())
  in
  List.iter
    (fun x -> if x < 0. then invalid_arg "Campaign.run: negative intensity")
    intensities;
  let workload = Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A in
  let params =
    {
      (Agrid_core.Slrh.default_params weights) with
      Agrid_core.Slrh.delta_t = config.Config.delta_t;
      horizon = config.Config.horizon;
    }
  in
  let tau = Workload.tau workload in
  let n_machines = Workload.n_machines workload in
  (* Replicates are statically sharded over worker domains via
     [Parallel.run_workers] (one work item per shard). A sink is
     single-domain, so each shard owns a private sink that every replicate
     in its block records into; the calling domain folds the shard sinks
     into [obs] after the join (merging is associative and commutative, so
     the fold order never matters). Replicate PRNG streams derive from
     [rng_for ~seed ~level ~rep] alone — independent of the shard layout —
     and the level statistics fold over the results array in replicate
     order, so campaign aggregates are identical for every shard count
     (pinned by the differential suite). *)
  let one_replicate ~rsink ~level ~intensity rep =
    let rparams = { params with Agrid_core.Slrh.obs = rsink } in
    (* the dual-ascent controller is mutable per-run state: every
       replicate seeds a fresh one from the same spec, so results stay
       independent of the shard layout *)
    let rparams =
      match adapt with
      | None -> rparams
      | Some spec ->
          {
            rparams with
            Agrid_core.Slrh.adapt = Some (Agrid_core.Adapt.create spec weights);
            feas_mode = Agrid_core.Adapt.feas_mode spec;
          }
    in
    let trace =
      if intensity = 0. then []
      else
        let rng = rng_for ~seed ~level ~rep in
        Agrid_churn.Sample.exponential_trace rng ~n_machines ~horizon:tau
          ~up_mean:(fun _ -> float_of_int tau /. intensity)
          ~down_mean:(fun _ -> down_fraction *. float_of_int tau)
    in
    let o =
      Agrid_obs.Sink.span rsink "campaign/replicate" (fun () ->
          Agrid_core.Dynamic.run_churn ~policy rparams workload trace)
    in
    let sched = o.Agrid_churn.Engine.schedule in
    let completed = o.Agrid_churn.Engine.completed in
    {
      r_completed = completed;
      r_deadline_miss = (not completed) || Agrid_sched.Schedule.aet sched > tau;
      r_t100 = Agrid_sched.Schedule.n_primary sched;
      r_sunk = o.Agrid_churn.Engine.sunk_energy;
      r_events = List.length trace;
      r_discards = o.Agrid_churn.Engine.n_discarded;
    }
  in
  List.mapi
    (fun level intensity ->
      let shard_sinks =
        Array.init shards (fun _ ->
            if Agrid_obs.Sink.enabled obs then Agrid_obs.Sink.create ~capacity:256 ()
            else Agrid_obs.Sink.noop)
      in
      let results = Array.make replicates None in
      Agrid_obs.Sink.span obs "campaign/level" (fun () ->
          Agrid_par.Parallel.run_workers ~domains:shards ~n:shards (fun s ->
              let rsink = shard_sinks.(s) in
              (* Static block [lo, hi): contiguous replicate ranges keep the
                 result-array writes disjoint across shards. *)
              let lo = s * replicates / shards and hi = (s + 1) * replicates / shards in
              for rep = lo to hi - 1 do
                results.(rep) <- Some (one_replicate ~rsink ~level ~intensity rep)
              done));
      Array.iter (fun s -> Agrid_obs.Sink.merge_into ~into:obs s) shard_sinks;
      Agrid_obs.Sink.add obs "campaign/replicates" replicates;
      Agrid_obs.Sink.max_gauge obs "campaign/shards" (float_of_int shards);
      let results =
        Array.map
          (function Some r -> r | None -> assert false (* every block was run *))
          results
      in
      let n = float_of_int replicates in
      let count f = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 results in
      let mean f = Array.fold_left (fun acc r -> acc +. f r) 0. results /. n in
      {
        intensity;
        n_replicates = replicates;
        completion_rate = float_of_int (count (fun r -> r.r_completed)) /. n;
        deadline_miss_rate = float_of_int (count (fun r -> r.r_deadline_miss)) /. n;
        mean_t100 = mean (fun r -> float_of_int r.r_t100);
        mean_sunk = mean (fun r -> r.r_sunk);
        mean_events = mean (fun r -> float_of_int r.r_events);
        mean_discards = mean (fun r -> float_of_int r.r_discards);
      })
    intensities

let table levels =
  Agrid_report.Table.make
    ~title:"Monte Carlo churn campaign: SLRH survivability vs churn intensity (Case A)"
    ~columns:
      [
        "leaves/machine";
        "replicates";
        "completion";
        "deadline miss";
        "mean T100";
        "mean sunk (J)";
        "mean events";
        "mean discards";
      ]
    ~rows:
      (List.map
         (fun l ->
           [
             Fmt.str "%.2f" l.intensity;
             string_of_int l.n_replicates;
             Fmt.str "%.3f" l.completion_rate;
             Fmt.str "%.3f" l.deadline_miss_rate;
             Fmt.str "%.1f" l.mean_t100;
             Fmt.str "%.2f" l.mean_sunk;
             Fmt.str "%.1f" l.mean_events;
             Fmt.str "%.1f" l.mean_discards;
           ])
         levels)

let pp_level ppf l =
  Fmt.pf ppf
    "intensity=%.2f n=%d completion=%.3f miss=%.3f t100=%.1f sunk=%.2f events=%.1f \
     discards=%.1f"
    l.intensity l.n_replicates l.completion_rate l.deadline_miss_rate l.mean_t100
    l.mean_sunk l.mean_events l.mean_discards

(* ---- multi-tenant traffic replicates ---- *)

module Traffic = Agrid_tenant.Traffic

type tenant_level = {
  t_id : string;
  t_priority : string;
  t_replicates : int;
  t_mean_arrivals : float;
  t_mean_admitted : float;
  t_mean_rejected : float;
  t_mean_completed : float;
  t_mean_t100 : float;
  t_mean_tec : float;
  t_mean_steps : float;
}

type traffic_summary = {
  ts_tenants : tenant_level list;
  ts_replicates : int;
  ts_mean_fairness_gap : float;
  ts_max_fairness_gap : float;
}

(* Replicate seeds use the same golden-ratio mixing as [rng_for], so the
   whole traffic campaign is a pure function of the spec seed and adding
   replicates never perturbs existing ones. The mask keeps the derived
   seed in the range [Traffic.app_seed] expects. *)
let traffic_seed ~seed ~rep =
  Int64.to_int
    (Int64.logand
       Int64.(
         add
           (mul (of_int seed) 0x9E3779B97F4A7C15L)
           (mul (of_int (rep + 1)) 0xBF58476D1CE4E5B9L))
       0x3FFFFFFFL)

let run_traffic ?(obs = Agrid_obs.Sink.noop) ?(replicates = 8) ?shards
    (spec : Traffic.spec) =
  if replicates <= 0 then
    invalid_arg "Campaign.run_traffic: nonpositive replicate count";
  (match shards with
  | Some s when s < 1 -> invalid_arg "Campaign.run_traffic: shards must be >= 1"
  | Some _ | None -> ());
  (match Traffic.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Campaign.run_traffic: " ^ msg));
  let shards =
    match shards with
    | Some s -> s
    | None -> min replicates (Agrid_par.Parallel.default_domains ())
  in
  (* Same sharding discipline as [run]: contiguous replicate blocks on
     worker domains, one private sink per shard folded into [obs] after
     the join. Each replicate is a pure function of (spec, rep) — the
     aggregates below fold in replicate order, so they are identical for
     every shard count. Nothing wall-clock-dependent is recorded, so the
     [obs] export is byte-identical across runs of the same spec. *)
  let shard_sinks =
    Array.init shards (fun _ ->
        if Agrid_obs.Sink.enabled obs then Agrid_obs.Sink.create ~capacity:256 ()
        else Agrid_obs.Sink.noop)
  in
  let results = Array.make replicates None in
  Agrid_par.Parallel.run_workers ~domains:shards ~n:shards (fun s ->
      let rsink = shard_sinks.(s) in
      let lo = s * replicates / shards and hi = (s + 1) * replicates / shards in
      for rep = lo to hi - 1 do
        let rspec = { spec with Traffic.seed = traffic_seed ~seed:spec.Traffic.seed ~rep } in
        results.(rep) <- Some (Traffic.run ~obs:rsink rspec)
      done);
  Array.iter (fun s -> Agrid_obs.Sink.merge_into ~into:obs s) shard_sinks;
  Agrid_obs.Sink.add obs "campaign/traffic_replicates" replicates;
  let outcomes =
    Array.map
      (function Some o -> o | None -> assert false (* every block was run *))
      results
  in
  let n = float_of_int replicates in
  let mean f = Array.fold_left (fun acc o -> acc +. f o) 0. outcomes /. n in
  let tenants =
    List.mapi
      (fun i (ts : Traffic.tenant_stream) ->
        let roll f =
          mean (fun (o : Traffic.outcome) -> f (List.nth o.Traffic.rollups i))
        in
        {
          t_id = ts.Traffic.ts_tenant.Agrid_tenant.Tenant.id;
          t_priority =
            Agrid_tenant.Tenant.priority_to_string
              ts.Traffic.ts_tenant.Agrid_tenant.Tenant.priority;
          t_replicates = replicates;
          t_mean_arrivals = roll (fun r -> float_of_int r.Traffic.r_arrivals);
          t_mean_admitted = roll (fun r -> float_of_int r.Traffic.r_admitted);
          t_mean_rejected = roll (fun r -> float_of_int r.Traffic.r_rejected);
          t_mean_completed = roll (fun r -> float_of_int r.Traffic.r_completed);
          t_mean_t100 = roll (fun r -> float_of_int r.Traffic.r_t100);
          t_mean_tec = roll (fun r -> r.Traffic.r_tec);
          t_mean_steps = roll (fun r -> float_of_int r.Traffic.r_steps);
        })
      spec.Traffic.tenants
  in
  {
    ts_tenants = tenants;
    ts_replicates = replicates;
    ts_mean_fairness_gap = mean (fun o -> o.Traffic.fairness_gap);
    ts_max_fairness_gap =
      Array.fold_left
        (fun acc (o : Traffic.outcome) -> Float.max acc o.Traffic.fairness_gap)
        0. outcomes;
  }

let traffic_table s =
  Agrid_report.Table.make
    ~title:
      (Fmt.str
         "Multi-tenant traffic campaign: per-tenant means over %d replicates \
          (fairness gap mean %.3f max %.3f)"
         s.ts_replicates s.ts_mean_fairness_gap s.ts_max_fairness_gap)
    ~columns:
      [
        "tenant";
        "priority";
        "arrivals";
        "admitted";
        "rejected";
        "completed";
        "T100";
        "TEC (J)";
        "steps";
      ]
    ~rows:
      (List.map
         (fun t ->
           [
             t.t_id;
             t.t_priority;
             Fmt.str "%.1f" t.t_mean_arrivals;
             Fmt.str "%.1f" t.t_mean_admitted;
             Fmt.str "%.1f" t.t_mean_rejected;
             Fmt.str "%.1f" t.t_mean_completed;
             Fmt.str "%.1f" t.t_mean_t100;
             Fmt.str "%.2f" t.t_mean_tec;
             Fmt.str "%.1f" t.t_mean_steps;
           ])
         s.ts_tenants)
