(** An in-process fleet backend for tests, bench and the fault-injection
    soak: a real {!Agrid_serve.Server} bridged to the router through a
    socketpair, so the router's genuine socket paths (reads, writes, EOF,
    shutdown, reconnect) are exercised without child processes.

    Each accepted {!Router.backend_spec.connect} is an {e incarnation}:
    fresh socketpair, fresh server, fresh pump thread. Fault injection
    targets the current incarnation. *)

type t

val create :
  ?obs:Agrid_obs.Sink.t ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?tenant_caps:(string * int) list ->
  string ->
  t
(** A backend named [string] (the name the router reports in
    [maybe_executed] lines, health snapshots and stats). [obs] is handed
    to every incarnation's server — only safe to record when incarnations
    cannot overlap (no kills), as in the bench setup. [tenant_caps]
    (default none) is handed to every incarnation's server
    ({!Agrid_serve.Server.create}): per-tenant admission caps, enforced
    per incarnation. *)

val spec : t -> Router.backend_spec
(** The connect hook to hand to {!Router.create}. Raises [ECONNREFUSED]
    while {!refuse_connects} is on. *)

val kill : t -> unit
(** Abrupt death of the current incarnation: the socket closes under the
    router (EOF with whatever was in flight) and the server is hard-
    stopped in the background. No-op when not connected. The backend
    accepts new connects afterwards — that is the restart. *)

val shutdown : t -> unit
(** Like {!kill} but stops the server synchronously — test/bench teardown
    that must not race a sink read. *)

val wedge : t -> unit
(** Freeze the current incarnation without closing anything: requests are
    no longer read and responses no longer flow, but the socket stays
    open — the failure mode probe timeouts exist to catch. *)

val unwedge : t -> unit

val refuse_connects : t -> bool -> unit
(** While on, new connects raise [ECONNREFUSED] (reconnect-backoff
    observation). *)

val incarnations : t -> int
(** Connects accepted so far. *)

val tenant_high_water : t -> string -> int
(** Maximum of {!Agrid_serve.Server.tenant_high_water} for this tenant
    across every incarnation so far, dead or alive — [0] for a tenant
    not named in [?tenant_caps]. The fleet soak pins this at or below
    the cap across kills and restarts. *)

val name : t -> string
