(* An in-process fleet backend: a real {!Agrid_serve.Server} bridged to
   the router through one end of a socketpair, so the router exercises
   its genuine socket paths (reads, writes, EOF, shutdown) without any
   child processes. This is what the unit tests, the bench fleet section
   and the fault-injection soak use as backends.

   Each accepted connect is an {e incarnation}: a fresh socketpair, a
   fresh server, a pump thread feeding lines to it. Fault injection:
   - [kill] closes the socket abruptly (the router sees EOF with whatever
     was in flight) and hard-stops the server in the background;
   - [wedge] freezes the pump and the response path without closing
     anything — the socket stays open but nothing flows, exactly the
     failure probe timeouts exist to catch;
   - [refuse_connects] makes subsequent connects raise ECONNREFUSED, so
     reconnect backoff can be observed.

   [wedged]/[refuse] are atomics because server worker domains read them
   from the response path. The optional sink is handed to every
   incarnation's server; incarnations of one backend never run servers
   concurrently in the deterministic setups that record telemetry (bench:
   no kills at all), which keeps the sink's single-writer discipline. *)

module Sink = Agrid_obs.Sink
module Server = Agrid_serve.Server

type incarnation = {
  i_server : Server.t;
  i_fd : Unix.file_descr;  (* the sim's end of the socketpair *)
  mutable i_dead : bool;  (* whoever flips this (under [lock]) cleans up *)
}

type t = {
  name : string;
  workers : int;
  queue_capacity : int;
  tenant_caps : (string * int) list;
  obs : Sink.t;
  refuse : bool Atomic.t;
  wedged : bool Atomic.t;
  mutable cur : incarnation option;
  mutable incarnations : int;
  (* per-tenant admission high-water, folded over dead incarnations so
     the soak can pin [tenant_high_water <= cap] across kills *)
  mutable tenant_hwm : (string * int) list;
  lock : Mutex.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(obs = Sink.noop) ?(workers = 2) ?(queue_capacity = 16)
    ?(tenant_caps = []) name =
  {
    name;
    workers;
    queue_capacity;
    tenant_caps;
    obs;
    refuse = Atomic.make false;
    wedged = Atomic.make false;
    cur = None;
    incarnations = 0;
    tenant_hwm = List.map (fun (name, _) -> (name, 0)) tenant_caps;
    lock = Mutex.create ();
  }

(* Claim the incarnation's cleanup (first claimant wins): close its fd and
   stop its server. Every exit path funnels through here. *)
let reap t inc ~stop_in_background =
  let mine =
    with_lock t.lock (fun () ->
        if inc.i_dead then false
        else begin
          inc.i_dead <- true;
          (match t.cur with
          | Some c when c == inc -> t.cur <- None
          | _ -> ());
          true
        end)
  in
  if mine then begin
    with_lock t.lock (fun () ->
        t.tenant_hwm <-
          List.map
            (fun (name, hwm) ->
              (name, max hwm (Server.tenant_high_water inc.i_server name)))
            t.tenant_hwm);
    (try Unix.shutdown inc.i_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close inc.i_fd with Unix.Unix_error _ -> ());
    let stop () = ignore (Server.stop inc.i_server) in
    if stop_in_background then ignore (Thread.create stop ()) else stop ()
  end

let pump t inc () =
  let ic = Unix.in_channel_of_descr inc.i_fd in
  (* One out_channel for the incarnation's lifetime — a fresh channel per
     response would interleave buffers. *)
  let oc = Unix.out_channel_of_descr inc.i_fd in
  let out_lock = Mutex.create () in
  let respond line =
    (* a wedged backend's responses stall too — workers block here until
       the wedge lifts, then hit a (swallowed) broken pipe if the router
       already gave up on us *)
    while Atomic.get t.wedged do
      Thread.delay 0.005
    done;
    with_lock out_lock (fun () ->
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ -> ())
  in
  let rec loop () =
    while Atomic.get t.wedged do
      Thread.delay 0.005
    done;
    match input_line ic with
    | line ->
        Server.submit inc.i_server ~respond line;
        loop ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  loop ();
  reap t inc ~stop_in_background:false

let connect t =
  with_lock t.lock (fun () ->
      if Atomic.get t.refuse then
        raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", t.name)));
  let router_fd, sim_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server =
    Server.create ~obs:t.obs ~workers:t.workers
      ~queue_capacity:t.queue_capacity ~tenant_caps:t.tenant_caps ()
  in
  Server.start server;
  let inc = { i_server = server; i_fd = sim_fd; i_dead = false } in
  with_lock t.lock (fun () ->
      t.cur <- Some inc;
      t.incarnations <- t.incarnations + 1);
  ignore (Thread.create (pump t inc) ());
  router_fd

let spec t = { Router.name = t.name; connect = (fun () -> connect t) }

let kill t =
  match with_lock t.lock (fun () -> t.cur) with
  | None -> ()
  | Some inc -> reap t inc ~stop_in_background:true

let shutdown t =
  match with_lock t.lock (fun () -> t.cur) with
  | None -> ()
  | Some inc -> reap t inc ~stop_in_background:false

let wedge t = Atomic.set t.wedged true
let unwedge t = Atomic.set t.wedged false
let refuse_connects t v = Atomic.set t.refuse v
let incarnations t = with_lock t.lock (fun () -> t.incarnations)

let tenant_high_water t name =
  with_lock t.lock (fun () ->
      let dead = try List.assoc name t.tenant_hwm with Not_found -> 0 in
      match t.cur with
      | Some inc -> max dead (Server.tenant_high_water inc.i_server name)
      | None -> dead)

let name t = t.name
