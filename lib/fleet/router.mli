(** The fault-tolerant front end over a fleet of scenario-service
    backends ([agrid serve] daemons).

    One router accepts [agrid-job/1] request lines, assigns each a
    monotone upstream id, and load-balances jobs over its backends
    (least-loaded healthy first — {!Policy.select}) under a per-backend
    in-flight cap. Backends are health-probed periodically; probe
    timeouts degrade then kill a connection, and killed/refused backends
    are reconnected with backoff.

    The contract is {e exactly one response line per request, at-most-once
    execution}:
    - a backend's [queue_full]/[draining]/[dropped] answer, or no backend
      being alive, costs one of a job's bounded attempts; attempts are
      retried with jittered exponential backoff and exhausting them
      surfaces a typed [all_backends_saturated] rejection;
    - a backend dying with the job accepted-but-unwritten re-queues it on
      another backend (a {e failover} — provably unexecuted);
    - a backend dying with the job written ([Sent]) resolves it as a
      typed [maybe_executed] line: the job may have run, so it is never
      re-run.

    Health requests are answered by the router itself
    ({!Codec.fleet_health_line}); relayed responses get their upstream
    id/tag restored and the serving backend's name appended.

    Telemetry (under the usual single-writer discipline — all sink
    recording happens under the router's lock): aggregate [fleet/*]
    counters (requests, accepted, completed, dispatches, retries,
    failovers, maybe_executed, saturated, queue_full, malformed, health,
    probes, probe_timeouts, protocol_errors, dropped), the admission
    high-water gauge [fleet/queue_depth], latency histogram
    [fleet/latency_s] and per-backend probe-RTT histograms
    [fleet/probe_s/<name>]. Per-backend dispatch splits are
    timing-dependent, so they live only in {!stats}, never in the sink —
    keeping the benched counter set placement-invariant.

    Introspection: a [kind:"stats"] request is answered by the router
    itself with an [agrid-stats/1] snapshot ({!Codec.stats_line}) —
    rolling-window completion rate and latency quantiles plus per-backend
    health and in-flight counts. Request tracing is opt-in: pass
    [?trace] to {!create} and every accepted job records its full
    lifecycle as typed {!Agrid_obs.Trace} events (enqueue, dispatch,
    retry, failover, backend death, respond); the derived trace id is
    stamped into the forwarded line so a tracing backend records under
    the same id. *)

type config = {
  queue_capacity : int;  (** router admission queue bound *)
  inflight_cap : int;  (** max unresolved jobs per backend *)
  max_attempts : int;  (** dispatch attempts before all_backends_saturated *)
  backoff_base_s : float;
  backoff_cap_s : float;
  probe_interval_s : float;
  probe_timeout_s : float;
  degraded_rtt_s : float;  (** probe RTT above this marks the backend degraded *)
  dead_after_timeouts : int;  (** consecutive probe misses before the kill *)
  connect_backoff_s : float;  (** delay between reconnect attempts *)
  seed : int;  (** backoff-jitter PRNG seed (reproducible soak runs) *)
}

val default_config : config
(** 64-deep queue, 8 in flight per backend, 5 attempts, 50 ms..2 s
    backoff, 2 s probes with a 1 s timeout, dead after 2 misses. *)

type backend_spec = {
  name : string;
  connect : unit -> Unix.file_descr;
      (** fresh connection to the backend; raises [Unix.Unix_error] or
          [Failure] when unreachable. Called again (with backoff) after
          every death. The in-process {!Sim} backend and the CLI's
          Unix-socket paths both fit this shape. *)
}

type t

val create :
  ?obs:Agrid_obs.Sink.t -> ?trace:Agrid_obs.Trace.t -> config ->
  backend_spec list -> t
(** A router over the given backends, not yet connected (see {!start}).
    [trace] (default: none — tracing off, zero cost) collects
    per-request lifecycle events.
    @raise Invalid_argument on a nonpositive config field or an empty
    backend list. *)

val start : t -> (unit, string) result
(** Connect every backend (each with a synchronous bounded-time health
    handshake) and spawn the dispatcher and maintenance threads.
    [Error] — with one reason per backend — when {e zero} backends are
    reachable; a partial fleet starts fine and keeps reconnecting the
    rest. Idempotent while running.
    @raise Invalid_argument after {!stop}/{!drain}. *)

val submit : t -> respond:(string -> unit) -> string -> unit
(** Feed one request line; exactly one response line reaches [respond],
    now (health, rejections) or later (relayed results, failover
    outcomes) — response writes are serialized, and a [respond] that
    raises is swallowed and counted. Jobs over the admission bound are
    rejected [queue_full]; after {!drain}/{!stop}, [draining]. *)

val quiesce : t -> unit
(** Block until every accepted job has resolved — the between-connections
    barrier of the socket front end. The router keeps running. *)

val drain : t -> unit
(** Graceful shutdown: stop admitting, resolve everything in flight
    (retries, failovers and [maybe_executed] included — terminates even
    with every backend dead, via bounded attempts), then disconnect and
    join all threads. *)

val stop : t -> int
(** Hard shutdown: answer every unresolved job with a [dropped] line,
    disconnect, join. Returns the number dropped. *)

type backend_stat = {
  bs_name : string;
  bs_health : string;
  bs_dispatched : int;
  bs_inflight : int;
  bs_reconnects : int;
}

type stats = {
  st_requests : int;  (** ids assigned — every request line seen *)
  st_accepted : int;
  st_completed : int;  (** relayed result lines *)
  st_queue_full : int;  (** router-level admission rejections *)
  st_malformed : int;
  st_health : int;
  st_stats : int;  (** [kind:"stats"] snapshot requests answered *)
  st_retries : int;  (** backoff retries scheduled *)
  st_failovers : int;  (** provably-unexecuted jobs re-queued off a dead backend *)
  st_maybe_executed : int;  (** ambiguous jobs reported, never re-run *)
  st_saturated : int;  (** jobs that exhausted their attempts *)
  st_dropped : int;  (** unresolved jobs answered [dropped] by {!stop} *)
  st_probes : int;
  st_probe_timeouts : int;
  st_protocol_errors : int;  (** unparseable/uncorrelatable backend lines *)
  st_respond_errors : int;
  st_backends : backend_stat list;
}

val stats : t -> stats

val health_snapshot : t -> (string * string * int) list
(** Per backend: name, health spelling, jobs in flight — the triples in
    {!Codec.fleet_health_line}. *)

val queue_depth : t -> int
val uptime_s : t -> float

val trace : t -> Agrid_obs.Trace.t option
(** The collector passed to {!create}, if any — the socket front end
    dumps its JSONL at exit. *)

val pp_stats : Format.formatter -> stats -> unit
