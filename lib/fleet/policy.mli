(** The fleet router's pure decision rules — backend selection, retry
    backoff, probe classification — kept free of threads and sockets so
    the unit suite can pin them exhaustively. Deterministic given their
    inputs; the backoff jitter's randomness enters as an explicit uniform
    draw. *)

type health = Healthy | Degraded | Dead

val health_to_string : health -> string
(** ["healthy"] / ["degraded"] / ["dead"] — the spellings in
    fleet health lines and stats output. *)

val select :
  healths:health array ->
  inflight:int array ->
  cap:int ->
  [ `Pick of int | `Wait | `Unavailable ]
(** Choose a backend for one job: the least-loaded [Healthy] backend
    under the in-flight [cap], falling back to the least-loaded
    [Degraded] one; lowest index wins ties (reproducible dispatch).
    [`Wait]: someone is alive but everyone alive is at cap — hold the job
    without consuming an attempt (backpressure). [`Unavailable]: nobody
    is alive — consuming attempts toward [all_backends_saturated].
    @raise Invalid_argument when the arrays' lengths differ. *)

val backoff_s : base_s:float -> cap_s:float -> attempt:int -> u:float -> float
(** Delay before retry number [attempt] (1-based): [base_s] doubling per
    attempt, capped at [cap_s], jittered into [50%, 100%] of nominal by
    the uniform draw [u].
    @raise Invalid_argument when [attempt < 1] or [u] is outside [\[0,1)]. *)

val classify_rtt : rtt_s:float -> degraded_rtt_s:float -> health
(** A probe that answered: [Healthy] when the round trip is within
    [degraded_rtt_s], [Degraded] otherwise. (Probes that never answer are
    the maintenance loop's business, not this function's.) *)
