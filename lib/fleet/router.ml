(* The fault-tolerant front end over a fleet of scenario-service
   backends. One router owns a bounded admission queue, N backend
   connections (each with a sender and a reader thread), a dispatcher
   thread and a maintenance (probe/reconnect) thread.

   The invariant everything here serves: {e exactly one response line per
   request, under monotone upstream ids, with at-most-once execution}.
   Concretely, every submitted job is tracked as an [entry] that is
   resolved exactly once, through one of:
   - a relayed backend response (result / dropped), identity rewritten;
   - a router-level rejection (queue_full, malformed, draining,
     all_backends_saturated);
   - [maybe_executed], when the backend holding the job in flight died
     and we cannot know whether it ran — the at-most-once rule forbids
     re-running it.

   At-most-once hinges on the [entry] lifecycle. [Queued] and [Assigned]
   entries (in a backend's outbox, not yet written to its socket) are
   provably unexecuted, so backend death re-queues them — that is a
   failover. [Sent] entries are ambiguous and become [maybe_executed].
   The one exception: a sender whose {e write} raised re-queues its entry
   once ([e_reissued]) — the line very likely never arrived — and any
   second write failure is treated as ambiguous.

   Correlation is by tag token, not backend id: backend-local ids restart
   on reconnect, so the router rewrites each job's tag to ["f<entry id>"]
   before forwarding and matches responses on that token (the serve layer
   echoes tags even on queue_full/draining rejections for exactly this
   reason). The client's original tag is restored on the way out by
   [Codec.with_identity].

   Locking: [t.lock] guards all router state {e and all sink recording}
   (sinks are not thread-safe); [t.out_lock] serializes response writes
   and is only ever taken while holding [t.lock] (lock order:
   lock -> out_lock). Sockets are written by their sender thread only and
   read by their reader thread only; connection death is detected by the
   reader, which runs the (epoch-guarded) death path — other threads
   provoke it by [Unix.shutdown]ing the socket, which wakes a blocked
   reader where [Unix.close] would not. *)

module Sink = Agrid_obs.Sink
module Json = Agrid_obs.Json
module Window = Agrid_obs.Window
module Trace = Agrid_obs.Trace
module Chan = Agrid_par.Parallel.Chan
module Codec = Agrid_serve.Codec
module Job = Agrid_serve.Job
module Splitmix64 = Agrid_prng.Splitmix64

type config = {
  queue_capacity : int;  (** router admission queue bound *)
  inflight_cap : int;  (** max unresolved jobs per backend *)
  max_attempts : int;  (** dispatch attempts before all_backends_saturated *)
  backoff_base_s : float;
  backoff_cap_s : float;
  probe_interval_s : float;
  probe_timeout_s : float;
  degraded_rtt_s : float;
  dead_after_timeouts : int;  (** consecutive probe misses before the kill *)
  connect_backoff_s : float;
  seed : int;  (** jitter PRNG seed *)
}

let default_config =
  {
    queue_capacity = 64;
    inflight_cap = 8;
    max_attempts = 5;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.0;
    probe_interval_s = 2.0;
    probe_timeout_s = 1.0;
    degraded_rtt_s = 0.25;
    dead_after_timeouts = 2;
    connect_backoff_s = 0.5;
    seed = 0;
  }

type backend_spec = { name : string; connect : unit -> Unix.file_descr }

type entry_state =
  | Queued
  | Assigned of int * int  (** backend index, connection epoch *)
  | Sent of int * int
  | Done

type entry = {
  e_id : int;
  e_tag : string option;  (** the client's tag, restored on the way out *)
  e_token : string;  (** "f<id>": the tag the backends see *)
  e_line : string;  (** the re-tagged request line forwarded verbatim *)
  e_respond : string -> unit;
  e_submitted : float;
  mutable e_state : entry_state;
  mutable e_attempts : int;
  mutable e_reissued : bool;  (** the one write-failure reissue was spent *)
}

type out_item = Out_job of entry | Out_probe

type conn = {
  cn_fd : Unix.file_descr;
  cn_ic : in_channel;
  cn_oc : out_channel;
  cn_outbox : out_item Chan.t;
  cn_epoch : int;
}

type backend = {
  b_index : int;
  b_name : string;
  b_connect : unit -> Unix.file_descr;
  mutable b_health : Policy.health;
  mutable b_conn : conn option;
  mutable b_epoch : int;  (** bumps on every death; guards the death path *)
  mutable b_inflight : int;
  mutable b_dispatched : int;
  mutable b_reconnects : int;
  mutable b_connecting : bool;  (** a (lock-free) connect attempt is running *)
  mutable b_probe_sent_at : float option;
  mutable b_probe_misses : int;
  mutable b_last_probe_done : float;
  mutable b_next_reconnect : float;
}

type t = {
  cfg : config;
  obs : Sink.t;
  trace : Trace.t option;  (* request tracing, opt-in like the sink ledger *)
  window : Window.t;  (* rolling last-60s stats, guarded by [lock] *)
  backends : backend array;
  admission : entry Chan.t;
  table : (string, entry) Hashtbl.t;  (** token -> unresolved entry *)
  mutable retry_q : (float * entry) list;  (** due-time, unsorted *)
  mutable unresolved : int;
  mutable next_id : int;
  mutable state : [ `Created | `Running | `Stopped ];
  mutable threads : Thread.t list;
  prng : Splitmix64.t;
  started_at : float;
  lock : Mutex.t;
  resolved : Condition.t;  (** broadcast whenever [unresolved] drops *)
  out_lock : Mutex.t;
  (* stats mirrors of the fleet/* counters *)
  mutable c_requests : int;
  mutable c_accepted : int;
  mutable c_completed : int;
  mutable c_queue_full : int;
  mutable c_malformed : int;
  mutable c_health : int;
  mutable c_stats : int;
  mutable c_retries : int;
  mutable c_failovers : int;
  mutable c_maybe_executed : int;
  mutable c_saturated : int;
  mutable c_dropped : int;
  mutable c_probes : int;
  mutable c_probe_timeouts : int;
  mutable c_protocol_errors : int;
  mutable c_respond_errors : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let now () = Unix.gettimeofday ()
let latency_bounds = [| 0.001; 0.005; 0.02; 0.1; 0.5; 2.; 10. |]
let probe_bounds = [| 0.0005; 0.002; 0.01; 0.05; 0.25; 1. |]
let obs_incr t name = if Sink.enabled t.obs then Sink.incr t.obs name

(* Record a trace event for an entry (caller holds t.lock). The router
   derives the id from its own nonce — the same id it stamps into the
   forwarded line, so backend events correlate without coordination. *)
let trace_ev t (e : entry) kind =
  match t.trace with None -> () | Some tr -> Trace.record tr ~job:e.e_id kind

let validate cfg =
  let bad name = invalid_arg (Fmt.str "Router.create: %s must be positive" name) in
  if cfg.queue_capacity < 1 then bad "queue_capacity";
  if cfg.inflight_cap < 1 then bad "inflight_cap";
  if cfg.max_attempts < 1 then bad "max_attempts";
  if cfg.backoff_base_s <= 0. then bad "backoff_base_s";
  if cfg.backoff_cap_s <= 0. then bad "backoff_cap_s";
  if cfg.probe_interval_s <= 0. then bad "probe_interval_s";
  if cfg.probe_timeout_s <= 0. then bad "probe_timeout_s";
  if cfg.degraded_rtt_s <= 0. then bad "degraded_rtt_s";
  if cfg.dead_after_timeouts < 1 then bad "dead_after_timeouts";
  if cfg.connect_backoff_s <= 0. then bad "connect_backoff_s"

let create ?(obs = Sink.noop) ?trace cfg specs =
  (* writes to dying backends must surface as EPIPE, not a fatal SIGPIPE *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  validate cfg;
  if specs = [] then invalid_arg "Router.create: need at least one backend";
  let backends =
    Array.of_list
      (List.mapi
         (fun i (s : backend_spec) ->
           {
             b_index = i;
             b_name = s.name;
             b_connect = s.connect;
             b_health = Policy.Dead;
             b_conn = None;
             b_epoch = 0;
             b_inflight = 0;
             b_dispatched = 0;
             b_reconnects = 0;
             b_connecting = false;
             b_probe_sent_at = None;
             b_probe_misses = 0;
             b_last_probe_done = 0.;
             b_next_reconnect = 0.;
           })
         specs)
  in
  {
    cfg;
    obs;
    trace;
    window = Window.create ();
    backends;
    admission = Chan.create ~capacity:cfg.queue_capacity;
    table = Hashtbl.create 64;
    retry_q = [];
    unresolved = 0;
    next_id = 0;
    state = `Created;
    threads = [];
    prng = Splitmix64.of_int cfg.seed;
    started_at = now ();
    lock = Mutex.create ();
    resolved = Condition.create ();
    out_lock = Mutex.create ();
    c_requests = 0;
    c_accepted = 0;
    c_completed = 0;
    c_queue_full = 0;
    c_malformed = 0;
    c_health = 0;
    c_stats = 0;
    c_retries = 0;
    c_failovers = 0;
    c_maybe_executed = 0;
    c_saturated = 0;
    c_dropped = 0;
    c_probes = 0;
    c_probe_timeouts = 0;
    c_protocol_errors = 0;
    c_respond_errors = 0;
  }

(* ---- response output (caller holds t.lock) ---- *)

let send t (e : entry) line =
  let failed =
    with_lock t.out_lock (fun () ->
        try
          e.e_respond line;
          false
        with _ -> true)
  in
  if failed then t.c_respond_errors <- t.c_respond_errors + 1

(* Resolve exactly once; in-flight bookkeeping is the caller's job. *)
let resolve t e line =
  if e.e_state <> Done then begin
    e.e_state <- Done;
    Hashtbl.remove t.table e.e_token;
    t.unresolved <- t.unresolved - 1;
    send t e line;
    Condition.broadcast t.resolved
  end

(* Drop the backend's claim on an unresolved entry (caller holds lock). *)
let unassign t e =
  match e.e_state with
  | Assigned (i, _) | Sent (i, _) ->
      t.backends.(i).b_inflight <- t.backends.(i).b_inflight - 1;
      e.e_state <- Queued
  | Queued | Done -> ()

let resolve_saturated t e =
  t.c_saturated <- t.c_saturated + 1;
  obs_incr t "fleet/saturated";
  trace_ev t e (Trace.Respond { outcome = "all_backends_saturated" });
  resolve t e
    (Codec.rejected_line ~tag:e.e_tag ~id:e.e_id ~reason:`All_backends_saturated
       ~detail:
         (Fmt.str "no backend accepted the job after %d attempt(s)" e.e_attempts)
       ())

(* One dispatch attempt failed (no backend alive, or a backend said
   queue_full/draining/dropped): burn an attempt, then either give up as
   all_backends_saturated or schedule a jittered-backoff retry. *)
let consume_attempt t e =
  e.e_attempts <- e.e_attempts + 1;
  if e.e_attempts >= t.cfg.max_attempts then resolve_saturated t e
  else begin
    let u = Splitmix64.next_unit_float t.prng in
    let delay =
      Policy.backoff_s ~base_s:t.cfg.backoff_base_s ~cap_s:t.cfg.backoff_cap_s
        ~attempt:e.e_attempts ~u
    in
    t.retry_q <- (now () +. delay, e) :: t.retry_q;
    t.c_retries <- t.c_retries + 1;
    obs_incr t "fleet/retries";
    trace_ev t e (Trace.Retry { attempt = e.e_attempts; delay_s = delay })
  end

(* ---- dispatch (caller holds t.lock) ---- *)

let try_dispatch_locked t e =
  if e.e_state = Done || t.state = `Stopped then ()
  else begin
    let healths = Array.map (fun b -> b.b_health) t.backends in
    let inflight = Array.map (fun b -> b.b_inflight) t.backends in
    match Policy.select ~healths ~inflight ~cap:t.cfg.inflight_cap with
    | `Pick i -> (
        let b = t.backends.(i) in
        match b.b_conn with
        | Some conn -> (
            match Chan.try_push conn.cn_outbox (Out_job e) with
            | `Accepted _ ->
                e.e_state <- Assigned (i, conn.cn_epoch);
                b.b_inflight <- b.b_inflight + 1;
                b.b_dispatched <- b.b_dispatched + 1;
                obs_incr t "fleet/dispatches";
                trace_ev t e
                  (Trace.Dispatch
                     { backend = b.b_name; attempt = e.e_attempts + 1 })
            | `Rejected _ -> consume_attempt t e)
        | None ->
            (* health said alive but the conn is gone: a death raced us *)
            consume_attempt t e)
    | `Wait ->
        (* alive but at the in-flight cap: backpressure, no attempt burned *)
        t.retry_q <- (now () +. 0.002, e) :: t.retry_q
    | `Unavailable -> consume_attempt t e
  end

let dispatcher t () =
  let rec loop () =
    if t.state <> `Stopped then begin
      let due =
        with_lock t.lock (fun () ->
            let due, later =
              List.partition (fun (d, _) -> d <= now ()) t.retry_q
            in
            t.retry_q <- later;
            due)
      in
      List.iter
        (fun (_, e) -> with_lock t.lock (fun () -> try_dispatch_locked t e))
        due;
      match Chan.try_pop t.admission ~timeout_s:0.005 with
      | `Popped e ->
          with_lock t.lock (fun () -> try_dispatch_locked t e);
          loop ()
      | `Timeout -> loop ()
      | `Closed ->
          (* draining: keep serving retries until stop flips the state *)
          Thread.delay 0.002;
          loop ()
    end
  in
  loop ()

(* ---- backend death (reader thread owns this; epoch-guarded) ---- *)

let on_conn_death t b ~epoch =
  with_lock t.lock (fun () ->
      if b.b_epoch = epoch then begin
        let conn = b.b_conn in
        b.b_epoch <- b.b_epoch + 1;
        b.b_conn <- None;
        b.b_health <- Policy.Dead;
        b.b_probe_sent_at <- None;
        b.b_probe_misses <- 0;
        b.b_next_reconnect <- now () +. t.cfg.connect_backoff_s;
        (match conn with
        | Some c ->
            (* Assigned-but-unwritten jobs are provably unexecuted: requeue
               them immediately. That is the failover. *)
            List.iter
              (function
                | Out_probe -> ()
                | Out_job e ->
                    if e.e_state <> Done then begin
                      unassign t e;
                      t.retry_q <- (0., e) :: t.retry_q;
                      t.c_failovers <- t.c_failovers + 1;
                      obs_incr t "fleet/failovers";
                      trace_ev t e (Trace.Failover { backend = b.b_name })
                    end)
              (Chan.close c.cn_outbox)
        | None -> ());
        (* Sent jobs are ambiguous: at-most-once forbids re-running them. *)
        let ambiguous =
          Hashtbl.fold
            (fun _ e acc ->
              match e.e_state with
              | Sent (i, ep) when i = b.b_index && ep = epoch -> e :: acc
              | _ -> acc)
            t.table []
        in
        List.iter
          (fun e ->
            unassign t e;
            t.c_maybe_executed <- t.c_maybe_executed + 1;
            obs_incr t "fleet/maybe_executed";
            trace_ev t e (Trace.Death { backend = b.b_name });
            trace_ev t e (Trace.Respond { outcome = "maybe_executed" });
            resolve t e
              (Codec.maybe_executed_line ~id:e.e_id ~tag:e.e_tag ~backend:b.b_name
                 ~detail:
                   "backend died with the job in flight; not re-run (at-most-once)"))
          (List.sort (fun a b -> compare a.e_id b.e_id) ambiguous)
      end)

(* ---- per-connection sender ---- *)

let sender t b (conn : conn) () =
  let rec loop () =
    match Chan.pop conn.cn_outbox with
    | None -> () (* outbox closed by the death path *)
    | Some item ->
        let write_failed line =
          match
            output_string conn.cn_oc line;
            output_char conn.cn_oc '\n';
            flush conn.cn_oc
          with
          | () -> false
          | exception Sys_error _ -> true
        in
        (match item with
        | Out_probe ->
            if write_failed "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}" then
              (try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
               with Unix.Unix_error _ -> ())
        | Out_job e ->
            let proceed =
              with_lock t.lock (fun () ->
                  match e.e_state with
                  | Assigned (i, ep) when i = b.b_index && ep = conn.cn_epoch ->
                      e.e_state <- Sent (i, ep);
                      true
                  | _ -> false (* resolved or re-routed while queued here *))
            in
            if proceed && write_failed e.e_line then begin
              (* The line very likely never arrived. Spend the single
                 reissue; a second write failure stays ambiguous and the
                 death path will report maybe_executed. *)
              with_lock t.lock (fun () ->
                  if e.e_state = Sent (b.b_index, conn.cn_epoch) then
                    if not e.e_reissued then begin
                      e.e_reissued <- true;
                      unassign t e;
                      t.retry_q <- (0., e) :: t.retry_q;
                      t.c_failovers <- t.c_failovers + 1;
                      obs_incr t "fleet/failovers";
                      trace_ev t e (Trace.Failover { backend = b.b_name })
                    end);
              try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ()
            end);
        loop ()
  in
  loop ()

(* ---- per-connection reader ---- *)

let handle_response t b (conn : conn) line =
  with_lock t.lock (fun () ->
      match Codec.parse_response line with
      | Error _ ->
          t.c_protocol_errors <- t.c_protocol_errors + 1;
          obs_incr t "fleet/protocol_errors"
      | Ok r -> (
          match r.Codec.r_type with
          | `Health ->
              (* the only health request we ever send is the probe *)
              (match b.b_probe_sent_at with
              | Some sent ->
                  let rtt = now () -. sent in
                  b.b_probe_sent_at <- None;
                  b.b_probe_misses <- 0;
                  b.b_last_probe_done <- now ();
                  b.b_health <-
                    Policy.classify_rtt ~rtt_s:rtt
                      ~degraded_rtt_s:t.cfg.degraded_rtt_s;
                  if Sink.enabled t.obs then
                    Sink.observe t.obs
                      ("fleet/probe_s/" ^ b.b_name)
                      ~bounds:probe_bounds rtt
              | None ->
                  t.c_protocol_errors <- t.c_protocol_errors + 1;
                  obs_incr t "fleet/protocol_errors")
          | `Result | `Dropped | `Rejected | `Maybe_executed -> (
              match
                Option.bind r.Codec.r_tag (Hashtbl.find_opt t.table)
              with
              | None ->
                  (* stale token (already resolved) or a line we never
                     asked for — count it, never crash, never duplicate *)
                  t.c_protocol_errors <- t.c_protocol_errors + 1;
                  obs_incr t "fleet/protocol_errors"
              | Some e -> (
                  match (r.Codec.r_type, r.Codec.r_reason) with
                  | `Rejected, Some (`Queue_full | `Draining | `Tenant_quota)
                  | `Dropped, _ ->
                      (* the backend declares it did NOT run the job:
                         safe to try another backend *)
                      unassign t e;
                      consume_attempt t e
                  | `Result, _ ->
                      unassign t e;
                      t.c_completed <- t.c_completed + 1;
                      obs_incr t "fleet/completed";
                      let latency = now () -. e.e_submitted in
                      Window.incr t.window ~now:(now ()) "completed";
                      Window.observe t.window ~now:(now ()) "latency_s"
                        ~bounds:latency_bounds latency;
                      if Sink.enabled t.obs then
                        Sink.observe t.obs "fleet/latency_s"
                          ~bounds:latency_bounds latency;
                      trace_ev t e (Trace.Respond { outcome = "result" });
                      resolve t e
                        (Json.to_string
                           (Codec.with_identity ~id:e.e_id ~tag:e.e_tag
                              ~backend:b.b_name r.Codec.r_json))
                  | (`Rejected | `Maybe_executed | `Health), _ ->
                      (* malformed-with-our-token or a relayed
                         maybe_executed: neither should ever come from a
                         scenario-service backend. Retrying is the safe
                         default — the backend declared it did not run
                         the job. *)
                      unassign t e;
                      consume_attempt t e))));
  ignore conn

let reader t b (conn : conn) () =
  let rec loop () =
    match input_line conn.cn_ic with
    | line ->
        handle_response t b conn line;
        loop ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  loop ();
  on_conn_death t b ~epoch:conn.cn_epoch;
  try Unix.close conn.cn_fd with Unix.Unix_error _ -> ()

(* ---- connect + synchronous probe handshake ---- *)

(* Byte-at-a-time line read under SO_RCVTIMEO: one line per connect, so
   throughput is irrelevant and the timeout semantics are exact. *)
let read_line_deadline fd ~timeout_s =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> Error "connection closed during probe"
    | _ ->
        let c = Bytes.get byte 0 in
        if c = '\n' then Ok (Buffer.contents buf)
        else begin
          Buffer.add_char buf c;
          if Buffer.length buf > 65536 then Error "oversized probe response"
          else go ()
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "probe timed out"
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  let r = go () in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0. with Unix.Unix_error _ -> ());
  r

let probe_handshake fd ~timeout_s =
  let req = "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}\n" in
  let t0 = now () in
  match Unix.write_substring fd req 0 (String.length req) with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | _ -> (
      match read_line_deadline fd ~timeout_s with
      | Error _ as e -> e
      | Ok line -> (
          match Codec.parse_response line with
          | Ok { Codec.r_type = `Health; _ } -> Ok (now () -. t0)
          | Ok _ -> Error "probe answered with a non-health line"
          | Error msg -> Error (Fmt.str "probe answer unparseable: %s" msg)))

(* Connect + handshake run OUTSIDE the lock (they block up to the probe
   timeout); [b_connecting] keeps attempts from stacking up. Returns the
   handshake error when the backend stayed unreachable. *)
let attempt_connect t b ~is_reconnect =
  let fail msg =
    with_lock t.lock (fun () ->
        b.b_connecting <- false;
        b.b_health <- Policy.Dead;
        b.b_next_reconnect <- now () +. t.cfg.connect_backoff_s);
    Error msg
  in
  match b.b_connect () with
  | exception Unix.Unix_error (err, _, _) -> fail (Unix.error_message err)
  | exception Failure msg -> fail msg
  | fd -> (
      match probe_handshake fd ~timeout_s:t.cfg.probe_timeout_s with
      | Error msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          fail msg
      | Ok rtt ->
          with_lock t.lock (fun () ->
              b.b_connecting <- false;
              b.b_epoch <- b.b_epoch + 1;
              let conn =
                {
                  cn_fd = fd;
                  cn_ic = Unix.in_channel_of_descr fd;
                  cn_oc = Unix.out_channel_of_descr fd;
                  cn_outbox = Chan.create ~capacity:(t.cfg.inflight_cap + 2);
                  cn_epoch = b.b_epoch;
                }
              in
              b.b_conn <- Some conn;
              b.b_health <-
                Policy.classify_rtt ~rtt_s:rtt ~degraded_rtt_s:t.cfg.degraded_rtt_s;
              b.b_probe_sent_at <- None;
              b.b_probe_misses <- 0;
              b.b_last_probe_done <- now ();
              if is_reconnect then b.b_reconnects <- b.b_reconnects + 1;
              t.c_probes <- t.c_probes + 1;
              obs_incr t "fleet/probes";
              if Sink.enabled t.obs then
                Sink.observe t.obs ("fleet/probe_s/" ^ b.b_name) ~bounds:probe_bounds
                  rtt;
              t.threads <-
                Thread.create (sender t b conn) ()
                :: Thread.create (reader t b conn) ()
                :: t.threads);
          Ok ())

(* ---- maintenance: probes, probe-timeout kills, reconnects ---- *)

let maintenance t () =
  let tick = Float.min 0.05 (t.cfg.probe_timeout_s /. 4.) in
  let rec loop () =
    if t.state <> `Stopped then begin
      let reconnectable =
        with_lock t.lock (fun () ->
            Array.iter
              (fun b ->
                match b.b_conn with
                | Some conn -> (
                    match b.b_probe_sent_at with
                    | Some sent ->
                        let misses =
                          int_of_float ((now () -. sent) /. t.cfg.probe_timeout_s)
                        in
                        if misses > b.b_probe_misses then begin
                          t.c_probe_timeouts <-
                            t.c_probe_timeouts + (misses - b.b_probe_misses);
                          obs_incr t "fleet/probe_timeouts";
                          b.b_probe_misses <- misses;
                          if misses >= t.cfg.dead_after_timeouts then begin
                            (* wedged: wake the blocked reader, which runs
                               the death path *)
                            try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
                            with Unix.Unix_error _ -> ()
                          end
                          else b.b_health <- Policy.Degraded
                        end
                    | None ->
                        if now () -. b.b_last_probe_done >= t.cfg.probe_interval_s
                        then
                          match Chan.try_push conn.cn_outbox Out_probe with
                          | `Accepted _ ->
                              b.b_probe_sent_at <- Some (now ());
                              t.c_probes <- t.c_probes + 1;
                              obs_incr t "fleet/probes"
                          | `Rejected _ -> ())
                | None -> ())
              t.backends;
            Array.to_list t.backends
            |> List.filter (fun b ->
                   b.b_conn = None && (not b.b_connecting)
                   && now () >= b.b_next_reconnect
                   && t.state = `Running)
            |> List.map (fun b ->
                   b.b_connecting <- true;
                   b))
      in
      List.iter
        (fun b -> ignore (attempt_connect t b ~is_reconnect:true))
        reconnectable;
      Thread.delay tick;
      loop ()
    end
  in
  loop ()

(* ---- lifecycle ---- *)

let start t =
  match t.state with
  | `Running -> Ok ()
  | `Stopped -> invalid_arg "Router.start: router is stopped"
  | `Created ->
      let errors =
        Array.to_list t.backends
        |> List.filter_map (fun b ->
               match attempt_connect t b ~is_reconnect:false with
               | Ok () -> None
               | Error msg -> Some (Fmt.str "%s: %s" b.b_name msg))
      in
      let connected =
        Array.fold_left
          (fun acc b -> if b.b_conn <> None then acc + 1 else acc)
          0 t.backends
      in
      if connected = 0 then
        Error
          (Fmt.str "no reachable backend (0 of %d connected): %s"
             (Array.length t.backends)
             (String.concat "; " errors))
      else begin
        with_lock t.lock (fun () ->
            t.state <- `Running;
            t.threads <-
              Thread.create (dispatcher t) ()
              :: Thread.create (maintenance t) ()
              :: t.threads);
        Ok ()
      end

let submit t ~respond line =
  let id =
    with_lock t.lock (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        t.c_requests <- t.c_requests + 1;
        obs_incr t "fleet/requests";
        id)
  in
  (* one-off entry so router-level answers share the respond plumbing *)
  let direct line' =
    let e =
      {
        e_id = id;
        e_tag = None;
        e_token = "";
        e_line = "";
        e_respond = respond;
        e_submitted = now ();
        e_state = Queued;
        e_attempts = 0;
        e_reissued = false;
      }
    in
    with_lock t.lock (fun () -> send t e line')
  in
  match Codec.parse_request line with
  | Error detail ->
      with_lock t.lock (fun () ->
          t.c_malformed <- t.c_malformed + 1;
          obs_incr t "fleet/malformed");
      direct (Codec.rejected_line ~id ~reason:`Malformed ~detail ())
  | Ok Codec.Health ->
      let line' =
        with_lock t.lock (fun () ->
            t.c_health <- t.c_health + 1;
            obs_incr t "fleet/health";
            Codec.fleet_health_line ~id
              ~uptime_s:(now () -. t.started_at)
              ~queue_depth:(Chan.length t.admission)
              ~backends:
                (Array.to_list t.backends
                |> List.map (fun b ->
                       (b.b_name, Policy.health_to_string b.b_health, b.b_inflight))
                )
              ~accepted:t.c_accepted ~completed:t.c_completed)
      in
      direct line'
  | Ok Codec.Stats ->
      let line' =
        with_lock t.lock (fun () ->
            t.c_stats <- t.c_stats + 1;
            obs_incr t "fleet/stats";
            let at = now () in
            let q p =
              match Window.merged_hist t.window ~now:at "latency_s" with
              | None -> Float.nan
              | Some h -> Agrid_obs.Hist.quantile h p
            in
            let trace_events, trace_dropped, trace_exemplars =
              match t.trace with
              | None -> (0, 0, 0)
              | Some tr ->
                  ( Trace.length tr,
                    Trace.dropped tr,
                    List.length (Trace.exemplars tr) )
            in
            let inflight =
              Array.fold_left (fun acc b -> acc + b.b_inflight) 0 t.backends
            in
            Codec.stats_line
              {
                Codec.ss_role = "router";
                ss_id = id;
                ss_uptime_s = at -. t.started_at;
                ss_queue_depth = Chan.length t.admission;
                ss_in_flight = inflight;
                ss_workers = Array.length t.backends;
                ss_accepted = t.c_accepted;
                ss_completed = t.c_completed;
                ss_window_s = Window.window_s t.window;
                ss_rate = Window.rate t.window ~now:at "completed";
                ss_p50_s = q 0.5;
                ss_p95_s = q 0.95;
                ss_p99_s = q 0.99;
                ss_backends =
                  Array.to_list t.backends
                  |> List.map (fun b ->
                         ( b.b_name,
                           Policy.health_to_string b.b_health,
                           b.b_inflight ));
                ss_trace_events = trace_events;
                ss_trace_dropped = trace_dropped;
                ss_trace_exemplars = trace_exemplars;
              })
      in
      direct line'
  | Ok (Codec.Submit spec) -> (
      let token = "f" ^ string_of_int id in
      (* stamp the derived trace id into the forwarded line so the backend
         records under the same id; untraced routers forward lines
         byte-identical to before *)
      let fwd = { spec with Job.tag = Some token } in
      let fwd =
        match t.trace with
        | None -> fwd
        | Some tr -> { fwd with Job.trace_id = Some (Trace.id_for tr id) }
      in
      let e =
        {
          e_id = id;
          e_tag = spec.Job.tag;
          e_token = token;
          e_line = Json.to_string (Codec.job_to_json fwd);
          e_respond = respond;
          e_submitted = now ();
          e_state = Queued;
          e_attempts = 0;
          e_reissued = false;
        }
      in
      (* Register before pushing: the dispatcher may pop, forward and see
         the response before [submit] regains the lock, and the reader
         must find the entry in the table by then. *)
      let verdict =
        with_lock t.lock (fun () ->
            Hashtbl.replace t.table token e;
            t.unresolved <- t.unresolved + 1;
            match Chan.try_push t.admission e with
            | `Accepted depth ->
                t.c_accepted <- t.c_accepted + 1;
                obs_incr t "fleet/accepted";
                trace_ev t e Trace.Enqueue;
                if Sink.enabled t.obs then
                  Sink.max_gauge t.obs "fleet/queue_depth" (float_of_int depth);
                `Dispatched
            | `Rejected r ->
                Hashtbl.remove t.table token;
                t.unresolved <- t.unresolved - 1;
                (match r with
                | `Full ->
                    t.c_queue_full <- t.c_queue_full + 1;
                    obs_incr t "fleet/queue_full"
                | `Closed -> obs_incr t "fleet/draining");
                `Rejected r)
      in
      match verdict with
      | `Dispatched -> ()
      | `Rejected `Full ->
          direct
            (Codec.rejected_line ~tag:spec.Job.tag ~id ~reason:`Queue_full
               ~detail:
                 (Fmt.str "router queue at capacity (%d queued)"
                    (Chan.length t.admission))
               ())
      | `Rejected `Closed ->
          direct
            (Codec.rejected_line ~tag:spec.Job.tag ~id ~reason:`Draining
               ~detail:"router is shutting down" ()))

let quiesce t =
  with_lock t.lock (fun () ->
      while t.unresolved > 0 && t.state <> `Stopped do
        Condition.wait t.resolved t.lock
      done)

let shutdown_conns t =
  with_lock t.lock (fun () ->
      Array.iter
        (fun b ->
          match b.b_conn with
          | Some conn -> (
              try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ())
          | None -> ())
        t.backends)

(* Threads can spawn threads (reconnects), so join until the list is
   stable; [`Stopped] stops new spawns. *)
let join_all t =
  let rec go joined =
    let fresh =
      with_lock t.lock (fun () ->
          List.filter (fun th -> not (List.memq th joined)) t.threads)
    in
    if fresh <> [] then begin
      List.iter Thread.join fresh;
      go (fresh @ joined)
    end
  in
  go []

let drain t =
  Chan.seal t.admission;
  (* the dispatcher pops the sealed queue dry, retries/failovers keep
     running, and every entry resolves in bounded attempts — so this
     terminates even with every backend dead *)
  quiesce t;
  with_lock t.lock (fun () -> t.state <- `Stopped);
  shutdown_conns t;
  join_all t

let stop t =
  let leftovers = Chan.close t.admission in
  let dropped =
    with_lock t.lock (fun () ->
        t.state <- `Stopped;
        let drop e =
          if e.e_state <> Done then begin
            unassign t e;
            t.c_dropped <- t.c_dropped + 1;
            obs_incr t "fleet/dropped";
            trace_ev t e (Trace.Respond { outcome = "dropped" });
            resolve t e (Codec.dropped_line ~id:e.e_id ~tag:e.e_tag)
          end
        in
        List.iter drop leftovers;
        List.iter drop
          (Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
          |> List.sort (fun a b -> compare a.e_id b.e_id));
        t.retry_q <- [];
        t.c_dropped)
  in
  shutdown_conns t;
  join_all t;
  dropped

(* ---- inspection ---- *)

type backend_stat = {
  bs_name : string;
  bs_health : string;
  bs_dispatched : int;
  bs_inflight : int;
  bs_reconnects : int;
}

type stats = {
  st_requests : int;
  st_accepted : int;
  st_completed : int;
  st_queue_full : int;
  st_malformed : int;
  st_health : int;
  st_stats : int;
  st_retries : int;
  st_failovers : int;
  st_maybe_executed : int;
  st_saturated : int;
  st_dropped : int;
  st_probes : int;
  st_probe_timeouts : int;
  st_protocol_errors : int;
  st_respond_errors : int;
  st_backends : backend_stat list;
}

let stats t =
  with_lock t.lock (fun () ->
      {
        st_requests = t.c_requests;
        st_accepted = t.c_accepted;
        st_completed = t.c_completed;
        st_queue_full = t.c_queue_full;
        st_malformed = t.c_malformed;
        st_health = t.c_health;
        st_stats = t.c_stats;
        st_retries = t.c_retries;
        st_failovers = t.c_failovers;
        st_maybe_executed = t.c_maybe_executed;
        st_saturated = t.c_saturated;
        st_dropped = t.c_dropped;
        st_probes = t.c_probes;
        st_probe_timeouts = t.c_probe_timeouts;
        st_protocol_errors = t.c_protocol_errors;
        st_respond_errors = t.c_respond_errors;
        st_backends =
          Array.to_list t.backends
          |> List.map (fun b ->
                 {
                   bs_name = b.b_name;
                   bs_health = Policy.health_to_string b.b_health;
                   bs_dispatched = b.b_dispatched;
                   bs_inflight = b.b_inflight;
                   bs_reconnects = b.b_reconnects;
                 });
      })

let health_snapshot t =
  with_lock t.lock (fun () ->
      Array.to_list t.backends
      |> List.map (fun b ->
             (b.b_name, Policy.health_to_string b.b_health, b.b_inflight)))

let queue_depth t = Chan.length t.admission
let uptime_s t = now () -. t.started_at
let trace t = t.trace

let pp_stats ppf s =
  Fmt.pf ppf
    "%d requests (%d accepted, %d completed, %d queue_full, %d malformed, %d \
     health, %d stats), %d retries, %d failovers, %d maybe_executed, %d \
     saturated, %d dropped, %d probes (%d timeouts), %d protocol errors, %d \
     respond errors"
    s.st_requests s.st_accepted s.st_completed s.st_queue_full s.st_malformed
    s.st_health s.st_stats s.st_retries s.st_failovers s.st_maybe_executed
    s.st_saturated s.st_dropped s.st_probes s.st_probe_timeouts
    s.st_protocol_errors s.st_respond_errors;
  List.iter
    (fun b ->
      Fmt.pf ppf "@.  %s: %s, %d dispatched, %d in flight, %d reconnects"
        b.bs_name b.bs_health b.bs_dispatched b.bs_inflight b.bs_reconnects)
    s.st_backends
