(* The router's pure decision rules, separated from the threads and
   sockets so they can be unit-tested exhaustively: backend selection,
   retry backoff and probe classification. Everything here is
   deterministic given its inputs — the only randomness (backoff jitter)
   comes in as an explicit uniform draw. *)

type health = Healthy | Degraded | Dead

let health_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Dead -> "dead"

(* Least-loaded among the healthiest tier, lowest index on ties (the tie
   break makes dispatch reproducible in tests). [`Wait] — somebody is
   alive but everyone alive is at their in-flight cap — is backpressure,
   not failure: the dispatcher holds the job without consuming one of its
   bounded attempts. [`Unavailable] — no backend alive — does consume an
   attempt, which is what eventually surfaces [all_backends_saturated]. *)
let select ~healths ~inflight ~cap =
  let n = Array.length healths in
  if n <> Array.length inflight then
    invalid_arg "Policy.select: healths and inflight lengths differ";
  let best_at tier =
    let best = ref None in
    for i = n - 1 downto 0 do
      if healths.(i) = tier && inflight.(i) < cap then
        match !best with
        | Some j when inflight.(j) < inflight.(i) -> ()
        | Some j when inflight.(j) = inflight.(i) && j < i -> ()
        | _ -> best := Some i
    done;
    !best
  in
  match best_at Healthy with
  | Some i -> `Pick i
  | None -> (
      match best_at Degraded with
      | Some i -> `Pick i
      | None ->
          if Array.exists (fun h -> h <> Dead) healths then `Wait else `Unavailable)

(* Exponential backoff with full-range-ish jitter: the deterministic core
   doubles per attempt up to [cap_s], and the uniform draw [u] scales it
   into [50%, 100%] so simultaneous retries decorrelate without ever
   retrying sooner than half the nominal delay. *)
let backoff_s ~base_s ~cap_s ~attempt ~u =
  if attempt < 1 then invalid_arg "Policy.backoff_s: attempt must be >= 1";
  if u < 0. || u >= 1. then invalid_arg "Policy.backoff_s: u must be in [0,1)";
  let nominal = base_s *. (2. ** float_of_int (attempt - 1)) in
  Float.min cap_s nominal *. (0.5 +. (0.5 *. u))

let classify_rtt ~rtt_s ~degraded_rtt_s =
  if rtt_s > degraded_rtt_s then Degraded else Healthy
