(* On-the-fly Lagrangian multiplier adjustment — the paper's stated future
   work ("the heuristic was particularly sensitive to the T100 multiplier,
   thereby indicating that this value requires adjustment whenever the
   system environment changes", Section VIII).

   A subgradient-flavoured outer loop replaces the exhaustive grid search:
   starting from any (alpha, beta), each iteration runs the heuristic and
   moves the weights along the constraint-violation signal —

   - AET > tau      : the time constraint binds -> shift weight from alpha
                      (primary reward) toward beta/gamma;
   - energy violated or incomplete: the energy constraint binds -> grow
                      beta at alpha's expense;
   - feasible       : push alpha up (more primaries) with a decaying step,
                      keeping the best feasible point seen.

   This converges to the feasible/infeasible boundary where T100 is
   maximised, typically in 10-20 runs versus ~190 for the grid search;
   bench/main.exe contains the comparison (ablation "adaptive"). *)

open Agrid_core
open Agrid_workload

type step = {
  iteration : int;
  alpha : float;
  beta : float;
  t100 : int;
  aet : int;
  feasible : bool;
}

type result = {
  best : Weight_search.run_result option;
  trace : step list;
  evaluations : int;
}

(* The projected-step primitives are shared with the in-run controller
   (Agrid_core.Adapt): same simplex projection, same c/sqrt(round)
   schedule — this outer loop is the offline, between-runs instance of
   the same dual ascent. *)
let clamp_simplex = Agrid_lagrange.Dual.clamp_simplex

let tune ?(init = (0.3, 0.3)) ?(eta = 0.15) ?(iterations = 16) (runner : Weight_search.runner)
    workload =
  if iterations <= 0 then invalid_arg "Adaptive.tune: iterations must be positive";
  if eta <= 0. then invalid_arg "Adaptive.tune: eta must be positive";
  let tau = Workload.tau workload in
  let best = ref None in
  let trace = ref [] in
  let a = ref (fst (clamp_simplex init)) and b = ref (snd (clamp_simplex init)) in
  for k = 0 to iterations - 1 do
    let step_size = Agrid_lagrange.Dual.step_size ~c:eta ~round:(k + 1) in
    let r = runner (Objective.make_weights ~alpha:!a ~beta:!b) workload in
    trace :=
      {
        iteration = k;
        alpha = !a;
        beta = !b;
        t100 = r.Weight_search.t100;
        aet = r.Weight_search.aet;
        feasible = r.Weight_search.feasible;
      }
      :: !trace;
    if r.Weight_search.feasible then begin
      (match !best with
      | Some prev when not (Weight_search.better r prev) -> ()
      | _ -> best := Some r);
      (* feasible: reward primaries harder *)
      let a', b' = clamp_simplex (!a +. step_size, !b -. (step_size /. 2.)) in
      a := a';
      b := b'
    end
    else if r.Weight_search.aet > tau then begin
      (* time constraint binding: damp the primary reward *)
      let a', b' = clamp_simplex (!a -. step_size, !b +. (step_size /. 2.)) in
      a := a';
      b := b'
    end
    else begin
      (* energy bound (or starvation): grow the energy penalty *)
      let a', b' = clamp_simplex (!a -. (step_size /. 2.), !b +. step_size) in
      a := a';
      b := b'
    end
  done;
  { best = !best; trace = List.rev !trace; evaluations = iterations }

let pp_step ppf s =
  Fmt.pf ppf "it=%d a=%.3f b=%.3f T100=%d AET=%d feasible=%b" s.iteration s.alpha
    s.beta s.t100 s.aet s.feasible
