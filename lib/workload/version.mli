(** Subtask versions (paper Section III): every subtask has a full
    "primary" version and a reduced "secondary" version that uses a fixed
    fraction (10 %, a {!Spec} parameter) of the primary's time, energy and
    output data. *)

type t = Primary | Secondary

val all : t list
val is_primary : t -> bool
val to_string : t -> string

(** Inverse of {!to_string}: ["primary"] / ["secondary"], [None]
    otherwise. *)
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
