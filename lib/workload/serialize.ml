(* Scenario persistence: a versioned, line-oriented text format that pins a
   scenario's full artefacts (the Case-A-width ETC matrix, the DAG with its
   per-edge data sizes, and the spec constants) so experiments can be
   reproduced across library versions even if a generator changes.
   Floats are printed with %.17g, so a save/load roundtrip is bit-exact.

   Layout (one record per line, '#' comments allowed):

     agrid-scenario v1
     seed <int>
     n_tasks <int>
     tau_seconds <float>
     battery_scale <float>
     secondary_fraction <float>
     data_mean_bits <float> data_cv <float>
     case <A|B|C>
     indices <etc> <dag>
     etc <rows> <cols>
     <cols floats>            x rows   (Case-A machine width)
     edges <count>
     <src> <dst> <bits>       x count
     end *)

exception Parse_error of { line : int; message : string }

let fail ~line fmt = Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

let case_to_string = function
  | Agrid_platform.Grid.A -> "A"
  | Agrid_platform.Grid.B -> "B"
  | Agrid_platform.Grid.C -> "C"

let case_of_string ~line = function
  | "A" -> Agrid_platform.Grid.A
  | "B" -> Agrid_platform.Grid.B
  | "C" -> Agrid_platform.Grid.C
  | s -> fail ~line "unknown case %S" s

(* ---- writing ---- *)

let save ppf (spec : Spec.t) ~etc_index ~dag_index ~case =
  Spec.validate spec;
  let etc = Workload.etc_for_spec spec ~etc_index in
  let dag = Workload.dag_for_spec spec ~dag_index in
  let data = Workload.data_for_spec spec dag ~dag_index in
  Fmt.pf ppf "agrid-scenario v1@.";
  Fmt.pf ppf "seed %d@." spec.Spec.seed;
  Fmt.pf ppf "n_tasks %d@." spec.Spec.n_tasks;
  Fmt.pf ppf "tau_seconds %.17g@." spec.Spec.tau_seconds;
  Fmt.pf ppf "battery_scale %.17g@." spec.Spec.battery_scale;
  Fmt.pf ppf "secondary_fraction %.17g@." spec.Spec.secondary_fraction;
  Fmt.pf ppf "data_mean_bits %.17g data_cv %.17g@." spec.Spec.data_mean_bits
    spec.Spec.data_cv;
  Fmt.pf ppf "case %s@." (case_to_string case);
  Fmt.pf ppf "indices %d %d@." etc_index dag_index;
  let rows = Agrid_etc.Etc.n_tasks etc and cols = Agrid_etc.Etc.n_machines etc in
  Fmt.pf ppf "etc %d %d@." rows cols;
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j > 0 then Fmt.pf ppf " ";
      Fmt.pf ppf "%.17g" (Agrid_etc.Etc.seconds etc ~task:i ~machine:j)
    done;
    Fmt.pf ppf "@."
  done;
  Fmt.pf ppf "edges %d@." (Agrid_dag.Dag.n_edges dag);
  Agrid_dag.Dag.iter_edges
    (fun e ~src ~dst -> Fmt.pf ppf "%d %d %.17g@." src dst data.(e))
    dag;
  Fmt.pf ppf "end@."

let save_file path spec ~etc_index ~dag_index ~case =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      save ppf spec ~etc_index ~dag_index ~case;
      Format.pp_print_flush ppf ())

(* ---- reading ---- *)

type reader = { mutable line : int; mutable rest : string list }

let next_line r =
  let rec skip = function
    | [] -> fail ~line:r.line "unexpected end of file"
    | l :: rest ->
        r.line <- r.line + 1;
        let trimmed = String.trim l in
        if trimmed = "" || String.length trimmed > 0 && trimmed.[0] = '#' then begin
          r.rest <- rest;
          skip rest
        end
        else begin
          r.rest <- rest;
          trimmed
        end
  in
  skip r.rest

let expect_fields r ~key ~n line =
  match String.split_on_char ' ' line with
  | k :: fields when k = key && List.length fields = n -> fields
  | k :: _ when k = key -> fail ~line:r.line "%s: expected %d fields" key n
  | _ -> fail ~line:r.line "expected %S record, got %S" key line

let parse_int r s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail ~line:r.line "not an integer: %S" s

let parse_float r s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail ~line:r.line "not a float: %S" s

let load_from_lines lines =
  let r = { line = 0; rest = lines } in
  if next_line r <> "agrid-scenario v1" then
    fail ~line:r.line "missing 'agrid-scenario v1' header";
  let one key = List.hd (expect_fields r ~key ~n:1 (next_line r)) in
  let seed = parse_int r (one "seed") in
  let n_tasks = parse_int r (one "n_tasks") in
  let tau_seconds = parse_float r (one "tau_seconds") in
  let battery_scale = parse_float r (one "battery_scale") in
  let secondary_fraction = parse_float r (one "secondary_fraction") in
  let data_mean_bits, data_cv =
    match expect_fields r ~key:"data_mean_bits" ~n:3 (next_line r) with
    | [ mb; "data_cv"; cv ] -> (parse_float r mb, parse_float r cv)
    | _ -> fail ~line:r.line "malformed data_mean_bits record"
  in
  let case = case_of_string ~line:r.line (one "case") in
  let etc_index, dag_index =
    match expect_fields r ~key:"indices" ~n:2 (next_line r) with
    | [ e; d ] -> (parse_int r e, parse_int r d)
    | _ -> assert false
  in
  let rows, cols =
    match expect_fields r ~key:"etc" ~n:2 (next_line r) with
    | [ a; b ] -> (parse_int r a, parse_int r b)
    | _ -> assert false
  in
  if rows <> n_tasks then fail ~line:r.line "etc rows %d but n_tasks %d" rows n_tasks;
  let matrix =
    Array.init rows (fun _ ->
        let fields = String.split_on_char ' ' (next_line r) in
        if List.length fields <> cols then
          fail ~line:r.line "expected %d ETC entries" cols;
        Array.of_list (List.map (parse_float r) fields))
  in
  let n_edges =
    match expect_fields r ~key:"edges" ~n:1 (next_line r) with
    | [ n ] -> parse_int r n
    | _ -> assert false
  in
  let edges = ref [] in
  let bits_by_edge = Hashtbl.create (2 * max 1 n_edges) in
  for _ = 1 to n_edges do
    match String.split_on_char ' ' (next_line r) with
    | [ src; dst; bits ] ->
        let src = parse_int r src and dst = parse_int r dst in
        edges := (src, dst) :: !edges;
        Hashtbl.replace bits_by_edge (src, dst) (parse_float r bits)
    | _ -> fail ~line:r.line "malformed edge record"
  done;
  if next_line r <> "end" then fail ~line:r.line "missing 'end' terminator";
  (* reassemble *)
  let klasses =
    Array.map
      (fun (m : Agrid_platform.Machine.profile) -> m.Agrid_platform.Machine.klass)
      (Agrid_platform.Grid.machines (Agrid_platform.Grid.of_case Agrid_platform.Grid.A))
  in
  if cols <> Array.length klasses then
    fail ~line:r.line "etc must have the Case-A machine width (%d), got %d"
      (Array.length klasses) cols;
  let etc = Agrid_etc.Etc.of_matrix ~klasses matrix in
  let dag = Agrid_dag.Dag.of_edges ~n:n_tasks !edges in
  (* data sizes follow the DAG's canonical edge-id order *)
  let data_bits =
    Array.map
      (fun (src, dst) -> Hashtbl.find bits_by_edge (src, dst))
      (Agrid_dag.Dag.edges dag)
  in
  let spec =
    {
      (Spec.paper_scale ~seed ()) with
      Spec.n_tasks;
      etc_params = Agrid_etc.Etc.default_params ~n_tasks;
      dag_params = Agrid_dag.Generate.default_params ~n:n_tasks;
      tau_seconds;
      battery_scale;
      secondary_fraction;
      data_mean_bits;
      data_cv;
    }
  in
  Workload.build spec ~etc ~dag ~data_bits ~etc_index ~dag_index ~case

let load_string s = load_from_lines (String.split_on_char '\n' s)

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | l -> read (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      load_from_lines (read []))

let to_string spec ~etc_index ~dag_index ~case =
  Fmt.str "%a"
    (fun ppf () -> save ppf spec ~etc_index ~dag_index ~case)
    ()

(* ---- scenario references (the workload half of `agrid-job/1`) ----

   A scenario reference names a workload without carrying one: either the
   generator coordinates the CLI takes (seed/scale/etc/dag/case) or a
   pinned `agrid-scenario v1` text (the format above) embedded as one
   JSON string. The scenario service's job envelope composes this with
   scheduler parameters; keeping the codec here keeps "what scenario"
   decoupled from "how to schedule it". *)

type scenario_ref =
  | Generated of {
      seed : int;
      scale : float;
      etc_index : int;
      dag_index : int;
      case : Agrid_platform.Grid.case;
    }
  | Pinned of string

let spec_for ~seed ~scale =
  if scale >= 1. then Spec.paper_scale ~seed ()
  else Spec.scaled ~seed ~factor:scale ()

let realize = function
  | Pinned text -> load_string text
  | Generated { seed; scale; etc_index; dag_index; case } ->
      Workload.build (spec_for ~seed ~scale) ~etc_index ~dag_index ~case

module Json = Agrid_obs.Json

let scenario_ref_to_json = function
  | Generated { seed; scale; etc_index; dag_index; case } ->
      Json.Obj
        [
          ("kind", Json.Str "generated");
          ("seed", Json.Int seed);
          ("scale", Json.Flt scale);
          ("etc", Json.Int etc_index);
          ("dag", Json.Int dag_index);
          ("case", Json.Str (case_to_string case));
        ]
  | Pinned text -> Json.Obj [ ("kind", Json.Str "pinned"); ("text", Json.Str text) ]

let scenario_ref_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Fmt.str "scenario: missing or mistyped field %S" name)
  in
  match Json.get_string "kind" j with
  | Some "pinned" ->
      let* text = field "text" Json.to_string_value in
      Ok (Pinned text)
  | Some "generated" ->
      let* seed = field "seed" Json.to_int in
      let* scale = field "scale" Json.to_float in
      let* etc_index = field "etc" Json.to_int in
      let* dag_index = field "dag" Json.to_int in
      let* case_name = field "case" Json.to_string_value in
      let* case =
        match case_name with
        | "A" -> Ok Agrid_platform.Grid.A
        | "B" -> Ok Agrid_platform.Grid.B
        | "C" -> Ok Agrid_platform.Grid.C
        | s -> Error (Fmt.str "scenario: unknown case %S" s)
      in
      if not (Float.is_finite scale && scale > 0.) then
        Error (Fmt.str "scenario: scale must be a positive finite number")
      else Ok (Generated { seed; scale; etc_index; dag_index; case })
  | Some other -> Error (Fmt.str "scenario: unknown kind %S" other)
  | None -> Error "scenario: missing or mistyped field \"kind\""
