(* A fully instantiated scenario: one ETC matrix x one DAG x one grid case,
   with per-edge data sizes and the time constraint, all in simulator units
   (integer clock cycles). This is the input type every heuristic consumes.

   Instances are deterministic functions of (spec.seed, etc_index,
   dag_index): each artefact gets its own splitmix64 stream, so ETC k is
   identical whether or not DAG l was ever generated — matching the paper's
   design of 10 ETCs x 10 DAGs = 100 reusable scenarios. *)

open Agrid_prng
open Agrid_platform

type t = {
  spec : Spec.t;
  case : Grid.case;
  etc_index : int;
  dag_index : int;
  grid : Grid.t;
  dag : Agrid_dag.Dag.t;
  etc : Agrid_etc.Etc.t; (* restricted to this case's machines *)
  data_bits : float array; (* per edge id *)
  tau : int; (* cycles *)
  exec_cycles_cache : int array array; (* .(task).(machine) primary cycles *)
}

(* Independent, label-keyed stream derivation: mixes the label hash and the
   index into the seed so streams do not overlap for any (label, index). *)
let stream spec ~label ~index =
  let open Int64 in
  let s =
    add
      (mul (of_int spec.Spec.seed) 0x9E3779B97F4A7C15L)
      (add (mul (of_int index) 0xBF58476D1CE4E5B9L) (of_int (Hashtbl.hash label)))
  in
  Splitmix64.create s

let etc_for_spec spec ~etc_index =
  let rng = stream spec ~label:"etc" ~index:etc_index in
  (* generated over the full Case A machine set; cases restrict columns *)
  let klasses = Array.map (fun (m : Machine.profile) -> m.klass) (Grid.machines (Grid.of_case A)) in
  Agrid_etc.Etc.generate rng spec.Spec.etc_params ~klasses

let dag_for_spec spec ~dag_index =
  let rng = stream spec ~label:"dag" ~index:dag_index in
  Agrid_dag.Generate.generate rng spec.Spec.dag_params

let data_for_spec spec dag ~dag_index =
  let rng = stream spec ~label:"data" ~index:dag_index in
  Agrid_dag.Generate.data_sizes rng dag ~mean_bits:spec.Spec.data_mean_bits
    ~cv:spec.Spec.data_cv

let secondary_cycles t primary_cycles =
  max 1
    (int_of_float
       (Float.ceil (float_of_int primary_cycles *. t.spec.Spec.secondary_fraction)))

let build ?etc ?dag ?data_bits spec ~etc_index ~dag_index ~case =
  Spec.validate spec;
  let grid = Grid.of_case ~battery_scale:spec.Spec.battery_scale case in
  let etc_full = match etc with Some e -> e | None -> etc_for_spec spec ~etc_index in
  let etc = Agrid_etc.Etc.for_case etc_full case in
  if Agrid_etc.Etc.n_machines etc <> Grid.n_machines grid then
    invalid_arg "Workload.build: ETC column count does not match grid";
  if Agrid_etc.Etc.n_tasks etc <> spec.Spec.n_tasks then
    invalid_arg "Workload.build: ETC task count does not match spec";
  let dag = match dag with Some d -> d | None -> dag_for_spec spec ~dag_index in
  if Agrid_dag.Dag.n_tasks dag <> spec.Spec.n_tasks then
    invalid_arg "Workload.build: DAG task count does not match spec";
  let data_bits =
    match data_bits with
    | Some d -> d
    | None -> data_for_spec spec dag ~dag_index
  in
  if Array.length data_bits <> Agrid_dag.Dag.n_edges dag then
    invalid_arg "Workload.build: data size count does not match DAG edges";
  let n = spec.Spec.n_tasks and m = Grid.n_machines grid in
  let exec_cycles_cache =
    Array.init n (fun i ->
        Array.init m (fun j ->
            Units.cycles_of_seconds (Agrid_etc.Etc.seconds etc ~task:i ~machine:j)))
  in
  {
    spec;
    case;
    etc_index;
    dag_index;
    grid;
    dag;
    etc;
    data_bits;
    tau = Spec.tau_cycles spec;
    exec_cycles_cache;
  }

let with_tau t ~tau_cycles =
  if tau_cycles <= 0 then invalid_arg "Workload.with_tau: must be positive";
  { t with tau = tau_cycles }

(* Drop one machine mid-run (dynamic-grid extension): the grid loses the
   machine, the ETC loses its column, the cycle cache shrinks. Remaining
   machines keep their relative order; the caller remaps indices with
   old index -> (if old < lost then old else old - 1). *)
let remove_machine t ~machine =
  let m = Grid.n_machines t.grid in
  if machine < 0 || machine >= m then invalid_arg "Workload.remove_machine";
  let keep = Array.of_list (List.filter (fun j -> j <> machine) (List.init m Fun.id)) in
  {
    t with
    grid = Grid.remove_machine t.grid machine;
    etc = Agrid_etc.Etc.restrict t.etc ~columns:keep;
    exec_cycles_cache =
      Array.map (fun row -> Array.map (fun j -> row.(j)) keep) t.exec_cycles_cache;
  }

(* Scale one machine's bandwidth mid-run (churn extension): the ETC matrix
   and execution-cycle cache are unaffected — only communication durations
   and energies computed against the grid change for future plans. *)
let degrade_bandwidth t ~machine ~factor =
  { t with grid = Grid.scale_bandwidth t.grid ~machine ~factor }

let n_tasks t = t.spec.Spec.n_tasks
let n_machines t = Grid.n_machines t.grid
let grid t = t.grid
let dag t = t.dag
let etc t = t.etc
let tau t = t.tau
let case t = t.case
let spec t = t.spec
let indices t = (t.etc_index, t.dag_index)

(* Execution time of a (task, machine, version) triple in cycles; secondary
   versions take the spec's fraction (paper: 10 %), at least one cycle. *)
let exec_cycles t ~task ~machine ~version =
  let primary = t.exec_cycles_cache.(task).(machine) in
  match (version : Version.t) with
  | Primary -> primary
  | Secondary -> secondary_cycles t primary

(* Energy for that execution: rate E(j) over the occupied integer cycles. *)
let exec_energy t ~task ~machine ~version =
  let cycles = exec_cycles t ~task ~machine ~version in
  Machine.compute_energy (Grid.machine t.grid machine)
    ~seconds:(Units.seconds_of_cycles cycles)

(* Output volume of an edge given the version the parent ran as. *)
let edge_bits t ~edge ~parent_version =
  let bits = t.data_bits.(edge) in
  match (parent_version : Version.t) with
  | Primary -> bits
  | Secondary -> bits *. t.spec.Spec.secondary_fraction

let total_system_energy t = Grid.total_system_energy t.grid

(* Sum over a task's children of the worst-case transmit energy from
   [machine], assuming version [version] output volumes — the SLRH
   feasibility check's conservative estimate (paper Section IV). *)
let worst_case_child_comm_energy t ~task ~machine ~version =
  Array.fold_left
    (fun acc (_child, edge) ->
      let bits = edge_bits t ~edge ~parent_version:version in
      acc +. Comm.worst_case_energy t.grid ~src:machine ~bits)
    0.
    (Agrid_dag.Dag.child_edges t.dag task)

let pp ppf t =
  Fmt.pf ppf "workload<%s etc=%d dag=%d |T|=%d tau=%a>" (Grid.name t.grid)
    t.etc_index t.dag_index (n_tasks t) Units.pp_cycles t.tau
