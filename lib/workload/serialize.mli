(** Scenario persistence: a versioned text format pinning a scenario's full
    artefacts (Case-A-width ETC matrix, DAG, per-edge data sizes, spec
    constants) for cross-version reproducibility. Roundtrips are bit-exact
    (floats printed with [%.17g]). *)

exception Parse_error of { line : int; message : string }

val save :
  Format.formatter ->
  Spec.t ->
  etc_index:int ->
  dag_index:int ->
  case:Agrid_platform.Grid.case ->
  unit

val save_file :
  string ->
  Spec.t ->
  etc_index:int ->
  dag_index:int ->
  case:Agrid_platform.Grid.case ->
  unit

val to_string :
  Spec.t -> etc_index:int -> dag_index:int -> case:Agrid_platform.Grid.case -> string

val load_string : string -> Workload.t
(** @raise Parse_error on malformed input. *)

val load_file : string -> Workload.t

(** {2 Scenario references}

    The workload half of the scenario service's [agrid-job/1] envelope: a
    scenario named either by generator coordinates (what the CLI's
    [--seed]/[--scale]/[--etc]/[--dag]/[--case] take) or by a pinned
    [agrid-scenario v1] text embedded as one JSON string. *)

type scenario_ref =
  | Generated of {
      seed : int;
      scale : float;  (** fraction of the paper's |T| = 1024; >= 1 = full *)
      etc_index : int;
      dag_index : int;
      case : Agrid_platform.Grid.case;
    }
  | Pinned of string  (** an [agrid-scenario v1] document (see {!to_string}) *)

val spec_for : seed:int -> scale:float -> Spec.t
(** The spec the CLI builds for [--seed]/[--scale]: [Spec.paper_scale]
    at [scale >= 1.], [Spec.scaled] below.
    @raise Invalid_argument when [scale] is outside (0, 1] ∪ [1, ∞). *)

val realize : scenario_ref -> Workload.t
(** Instantiate the referenced workload.
    @raise Parse_error on a malformed [Pinned] text.
    @raise Invalid_argument on out-of-range [Generated] coordinates. *)

val scenario_ref_to_json : scenario_ref -> Agrid_obs.Json.t

val scenario_ref_of_json :
  Agrid_obs.Json.t -> (scenario_ref, string) result
(** Total: every shape error comes back as [Error] with a one-line
    diagnostic (never an exception). [scenario_ref_of_json ∘
    scenario_ref_to_json] is the identity (pinned by the round-trip
    property suite). *)
