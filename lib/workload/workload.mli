(** A fully instantiated scenario — one ETC matrix x one DAG x one grid case
    — in simulator units. This is the input type every heuristic consumes.

    Instances are deterministic functions of [(spec.seed, etc_index,
    dag_index)]; ETC [k] is bit-identical across cases (cases are column
    restrictions), matching the paper's 10 ETC x 10 DAG reusable scenario
    design. *)

type t

val build :
  ?etc:Agrid_etc.Etc.t ->
  ?dag:Agrid_dag.Dag.t ->
  ?data_bits:float array ->
  Spec.t ->
  etc_index:int ->
  dag_index:int ->
  case:Agrid_platform.Grid.case ->
  t
(** Generate (or accept pre-built) artefacts and assemble the scenario.
    A supplied [?etc] must cover the full Case A machine set. *)

val etc_for_spec : Spec.t -> etc_index:int -> Agrid_etc.Etc.t
(** The full (Case A) ETC matrix for an index — shared across cases. *)

val dag_for_spec : Spec.t -> dag_index:int -> Agrid_dag.Dag.t
val data_for_spec : Spec.t -> Agrid_dag.Dag.t -> dag_index:int -> float array

val with_tau : t -> tau_cycles:int -> t

val remove_machine : t -> machine:int -> t
(** Drop one machine (dynamic-grid extension). Remaining machines keep
    their relative order: old index [j] becomes [j - 1] for [j > machine]. *)

val degrade_bandwidth : t -> machine:int -> factor:float -> t
(** Scale one machine's bandwidth (churn extension). Indices are stable;
    the ETC matrix is unaffected.
    @raise Invalid_argument when out of range or on nonpositive factors. *)

val n_tasks : t -> int
val n_machines : t -> int
val grid : t -> Agrid_platform.Grid.t
val dag : t -> Agrid_dag.Dag.t
val etc : t -> Agrid_etc.Etc.t
val tau : t -> int
val case : t -> Agrid_platform.Grid.case
val spec : t -> Spec.t
val indices : t -> int * int
(** [(etc_index, dag_index)]. *)

val exec_cycles : t -> task:int -> machine:int -> version:Version.t -> int
(** Occupancy in cycles; secondary = ceil(fraction * primary), >= 1. *)

val exec_energy : t -> task:int -> machine:int -> version:Version.t -> float

val edge_bits : t -> edge:int -> parent_version:Version.t -> float
(** Output volume of an edge given the parent's executed version. *)

val total_system_energy : t -> float

val worst_case_child_comm_energy :
  t -> task:int -> machine:int -> version:Version.t -> float
(** Conservative child-communication energy (every child on the worst link),
    per the SLRH feasibility check. *)

val pp : Format.formatter -> t -> unit
