(* Every subtask can execute as its full "primary" version or as a reduced
   "secondary" version that (paper Section III) uses a fixed fraction — 10 %
   — of the primary's time and energy and emits that fraction of its output
   data. The fraction itself is a Spec parameter; this module is just the
   enumeration. *)

type t = Primary | Secondary

let all = [ Primary; Secondary ]

let is_primary = function Primary -> true | Secondary -> false

let to_string = function Primary -> "primary" | Secondary -> "secondary"

let of_string = function
  | "primary" -> Some Primary
  | "secondary" -> Some Secondary
  | _ -> None

let pp ppf v = Fmt.string ppf (to_string v)

let equal a b =
  match (a, b) with
  | Primary, Primary | Secondary, Secondary -> true
  | (Primary | Secondary), _ -> false

let compare a b =
  match (a, b) with
  | Primary, Primary | Secondary, Secondary -> 0
  | Primary, Secondary -> -1
  | Secondary, Primary -> 1
