(** Gaussian chance-constraint margins for uncertain resource estimates
    (SNIPPETS.md Snippets 1/3): inflate a nominal demand by
    [1 + Phi^-1(p) * sigma] so it holds with service probability ~[p]
    under relative estimation error [sigma]. *)

val normal_quantile : float -> float
(** [Phi^-1 p], the standard normal quantile, via Acklam's rational
    approximation (relative error < 1.15e-9). [normal_quantile 0.5] is
    exactly [0.].
    @raise Invalid_argument unless [p] lies strictly inside (0, 1). *)

val inflation : p:float -> sigma:float -> float
(** [max 0 (1 + normal_quantile p * sigma)] — the multiplicative margin
    on a demand estimate. [1.] whenever [sigma = 0.] or [p = 0.5]; below
    1 for [p < 0.5] (optimistic service levels are permitted).
    @raise Invalid_argument if [p] is outside (0, 1) or [sigma] is
    negative or non-finite. *)
