(* Projected subgradient ascent on the Lagrangian dual — the multiplier
   machinery SNIPPETS.md Snippet 2 (mocasin's LRSolver, after Wildermann
   et al.) implements, reduced to the two ingredients every caller here
   shares: the diminishing step schedule c/sqrt(round) and the projection
   onto the nonnegative orthant. [Agrid_core.Adapt] drives it online
   inside a single SLRH run; [Agrid_tuner.Adaptive] reuses the same step
   schedule for its offline between-runs loop, so the two adaptation
   layers cannot drift apart numerically.

   This library sits below the scheduler core on purpose: it knows
   nothing about schedules, workloads or telemetry — multipliers in,
   multipliers out. *)

(* The classic diminishing-but-not-summable schedule: guarantees dual
   convergence for convex problems and, here, bounded drift for the
   nonconvex schedule objective. [round] is 1-based: round 1 takes the
   full step [c]. *)
let step_size ~c ~round = c /. sqrt (float_of_int round)

(* Project (alpha, beta) onto the weight simplex {a, b >= 0, a + b <= 1}
   the way the offline tuner always has: clamp alpha first, then give
   beta what room remains. *)
let clamp_simplex (a, b) =
  let a = Float.max 0. (Float.min 1. a) in
  let b = Float.max 0. (Float.min (1. -. a) b) in
  (a, b)

type t = {
  c : float;  (* step constant *)
  lambda : float array;  (* current multipliers, all >= 0 *)
  mutable round : int;  (* completed subgradient rounds *)
}

let finite x = Float.is_finite x

let create ?(c = 0.5) lambda0 =
  if (not (finite c)) || c <= 0. then
    invalid_arg "Dual.create: step constant must be positive and finite";
  if Array.length lambda0 = 0 then
    invalid_arg "Dual.create: at least one multiplier is required";
  Array.iter
    (fun l ->
      if (not (finite l)) || l < 0. then
        invalid_arg "Dual.create: multipliers must be finite and nonnegative")
    lambda0;
  { c; lambda = Array.copy lambda0; round = 0 }

let n_constraints t = Array.length t.lambda
let round t = t.round
let get t i = t.lambda.(i)
let multipliers t = Array.copy t.lambda

(* One ascent round: lambda_k <- max(0, lambda_k + step * g_k) with
   step = c/sqrt(round). A positive subgradient means the constraint is
   violated (raise its price); negative means slack (relax it). Returns
   the step size used, for the decision ledger. *)
let step t g =
  if Array.length g <> Array.length t.lambda then
    invalid_arg "Dual.step: subgradient arity mismatch";
  Array.iter
    (fun x -> if not (finite x) then invalid_arg "Dual.step: subgradient must be finite")
    g;
  t.round <- t.round + 1;
  let s = step_size ~c:t.c ~round:t.round in
  Array.iteri (fun i l -> t.lambda.(i) <- Float.max 0. (l +. (s *. g.(i)))) t.lambda;
  s

let pp ppf t =
  Fmt.pf ppf "dual<round=%d c=%g lambda=[%a]>" t.round t.c
    Fmt.(array ~sep:(any "; ") float)
    t.lambda
