(* Chance-constrained margins for uncertain demand (SNIPPETS.md Snippets
   1/3, receding_resource_allocation): a resource estimate with relative
   uncertainty sigma is inflated to (1 + z * sigma) times its nominal
   value, where z = Phi^-1(p) is the standard normal quantile of the
   configured service probability p. The feasibility layer applies the
   factor to its energy bounds, so a pool admission holds with
   probability ~p under Gaussian estimation error instead of only at the
   point estimate. *)

(* Acklam's rational approximation to the inverse standard normal CDF:
   two tail branches plus a central branch, relative error < 1.15e-9 over
   all of (0, 1) — far below the 9 significant digits anything here
   serialises. The test suite pins it against the erfc-based CDF in
   Agrid_stats.Goodness. *)
let a =
  [|
    -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
    1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00;
  |]

let b =
  [|
    -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
    6.680131188771972e+01; -1.328068155288572e+01;
  |]

let c =
  [|
    -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
    -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00;
  |]

let d =
  [|
    7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
    3.754408661907416e+00;
  |]

let p_low = 0.02425

let tail q =
  ((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
  +. c.(5)

let tail_den q =
  ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.

let normal_quantile p =
  if (not (Float.is_finite p)) || p <= 0. || p >= 1. then
    invalid_arg "Chance.normal_quantile: probability must lie strictly inside (0, 1)";
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    tail q /. tail_den q
  else if p > 1. -. p_low then
    let q = sqrt (-2. *. log (1. -. p)) in
    -.(tail q /. tail_den q)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
    +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
       +. 1.)

(* The multiplicative demand margin. p = 0.5 gives z = 0 exactly (the
   central branch is odd in q = p - 1/2), so the factor degenerates to 1
   and chance-mode feasibility coincides bit-for-bit with the nominal
   bound; p < 0.5 deliberately deflates (an optimistic service level).
   Clamped at 0 so an extreme (p, sigma) pair can never demand negative
   energy. *)
let inflation ~p ~sigma =
  if (not (Float.is_finite sigma)) || sigma < 0. then
    invalid_arg "Chance.inflation: sigma must be finite and nonnegative";
  Float.max 0. (1. +. (normal_quantile p *. sigma))
