(** Projected subgradient ascent on the Lagrangian dual: nonnegative
    per-constraint multipliers updated with the diminishing step schedule
    [c/sqrt(round)] (SNIPPETS.md Snippet 2, mocasin's LRSolver). The
    online scheduler ({!Agrid_core.Adapt}) and the offline tuner
    ({!Agrid_tuner.Adaptive}) both step through this module, so the two
    adaptation layers share one numerical core. *)

val step_size : c:float -> round:int -> float
(** [c /. sqrt (float_of_int round)], [round] 1-based. The exact float
    expression — callers replacing a private step computation with this
    one stay bit-identical. *)

val clamp_simplex : float * float -> float * float
(** Project [(alpha, beta)] onto [{a, b >= 0; a + b <= 1}]: clamp alpha
    into [0, 1] first, then beta into [0, 1 - alpha]. *)

type t
(** Mutable multiplier state: a vector of nonnegative multipliers plus
    the completed round count. *)

val create : ?c:float -> float array -> t
(** Fresh state from initial multipliers (copied). [c] defaults to 0.5.
    @raise Invalid_argument if [c] is nonpositive or non-finite, the
    vector is empty, or any multiplier is negative, nan or infinite. *)

val n_constraints : t -> int
val round : t -> int
(** Completed {!step} rounds (0 for a fresh state). *)

val get : t -> int -> float
val multipliers : t -> float array
(** A copy of the current vector. *)

val step : t -> float array -> float
(** One ascent round against a subgradient vector (positive component =
    constraint violated): advance the round counter, move every
    multiplier by [step_size ~c ~round] times its component, project back
    to nonnegative. Returns the step size used.
    @raise Invalid_argument on arity mismatch or a non-finite component. *)

val pp : Format.formatter -> t -> unit
