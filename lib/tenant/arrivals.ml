open Agrid_prng

type process = Poisson of float | Trace of int list

let process_to_string = function
  | Poisson rate -> Fmt.str "poisson(%g/cycle)" rate
  | Trace ts -> Fmt.str "trace[%d]" (List.length ts)

let pp_process ppf p = Fmt.string ppf (process_to_string p)

(* The expected-count cap keeps a mistyped rate ("1000" where "0.001" was
   meant) from generating millions of applications before anything runs. *)
let max_expected_arrivals = 10_000.

let validate_process ~horizon = function
  | Poisson rate ->
      if (not (Float.is_finite rate)) || rate <= 0. then
        Error (Fmt.str "poisson rate must be finite and positive, got %g" rate)
      else if rate *. float_of_int horizon > max_expected_arrivals then
        Error
          (Fmt.str "poisson rate %g over %d cycles expects %.0f arrivals (cap %.0f)"
             rate horizon
             (rate *. float_of_int horizon)
             max_expected_arrivals)
      else Ok ()
  | Trace ts -> (
      match List.find_opt (fun t -> t < 0) ts with
      | Some t -> Error (Fmt.str "trace arrival time %d is negative" t)
      | None -> Ok ())

type arrival = { at : int; stream : int; seq : int }

let pp_arrival ppf a = Fmt.pf ppf "t%d@%d#%d" a.stream a.at a.seq

(* Per-stream substream: the same golden-ratio/splitmix mixing constants
   the campaign uses for its replicate streams, with a distinct additive
   tag so a traffic stream never aliases a campaign stream at equal
   seeds. *)
let stream_rng ~seed ~stream =
  Splitmix64.create
    Int64.(
      add
        (mul (of_int seed) 0x9E3779B97F4A7C15L)
        (add (mul (of_int (stream + 1)) 0xBF58476D1CE4E5B9L) 0x7E3779B9L))

let stream_arrivals ~seed ~horizon ~stream = function
  | Trace ts ->
      List.filteri (fun _ t -> t >= 0 && t <= horizon) (List.sort compare ts)
      |> List.mapi (fun seq at -> { at; stream; seq })
  | Poisson rate ->
      let rng = stream_rng ~seed ~stream in
      let out = ref [] in
      let seq = ref 0 in
      let t = ref 0. in
      let continue_ = ref true in
      while !continue_ do
        t := !t +. Dist.exponential rng ~rate;
        let at = int_of_float !t in
        if at > horizon then continue_ := false
        else begin
          out := { at; stream; seq = !seq } :: !out;
          incr seq
        end
      done;
      List.rev !out

let generate ~seed ~horizon processes =
  if horizon < 0 then invalid_arg "Arrivals.generate: negative horizon";
  List.iteri
    (fun stream p ->
      match validate_process ~horizon p with
      | Ok () -> ()
      | Error msg -> invalid_arg (Fmt.str "Arrivals.generate: stream %d: %s" stream msg))
    processes;
  List.concat (List.mapi (fun stream p -> stream_arrivals ~seed ~horizon ~stream p) processes)
  |> List.sort (fun a b ->
         match compare a.at b.at with
         | 0 -> ( match compare a.stream b.stream with 0 -> compare a.seq b.seq | c -> c)
         | c -> c)
