(** Deficit round robin (Shreedhar & Varghese) over a fixed set of
    queues, one served item per call: queue [i] accrues [quantum * w_i]
    of credit each round it is backlogged, spends credit as it is
    served, and keeps (bounded) residual credit while backlogged.

    With weights >= 1 and per-item costs <= quantum, any two queues
    continuously backlogged over a whole number of rounds have weighted
    shares [served_i / w_i] within one quantum of each other at round
    boundaries — the fairness bound the QCheck suite pins. *)

type t

val create : quantum:float -> weights:float array -> t
(** @raise Invalid_argument on an empty queue set, a nonpositive or
    non-finite quantum, or any weight below 1. *)

val n : t -> int
val quantum : t -> float
val weight : t -> int -> float

val select : t -> backlogged:(int -> bool) -> cost:float -> int option
(** Pick the queue whose head item (of [cost]) is served next and charge
    the cost against its deficit. [None] iff no queue is backlogged; the
    internal cursor is unmoved in that case. A queue found empty on its
    turn forfeits its residual deficit (the classic reset — idle queues
    cannot bank credit).
    @raise Invalid_argument if [cost] is nonpositive, non-finite or
    exceeds the quantum. *)

val served : t -> int -> float
(** Total cost served to queue [i] so far. *)

val weighted_share : t -> int -> float
(** [served i /. weight i]. *)

val rounds : t -> int
(** Completed cursor passes over the whole queue set. *)

val boundary_served : t -> int -> float
(** [served i] as it stood at the last round boundary (the cursor wrap).
    Round-boundary fairness must be measured here: one {!select} call
    can cross the boundary and serve into the new round before it
    returns, so sampling {!served} after the call overshoots. *)

val boundary_share : t -> int -> float
(** [boundary_served i /. weight i]. *)

val weighted_gap : t -> over:(int -> bool) -> float
(** Max pairwise [|boundary_share i - boundary_share j|] across queues
    selected by [over]; [0.] when fewer than two qualify. *)
