(** The multi-application traffic engine (DESIGN.md section 14): a
    continuous stream of applications — one scaled paper workload each —
    arriving per tenant ({!Arrivals}), admitted against tenant quotas
    ({!Agrid_core.Feasibility.admit_quota}) and sharing one serial
    commit loop, with scheduler timesteps granted by deficit round robin
    ({!Drr}) weighted by priority class.

    Global time is scheduling time: every timestep the loop grants to
    some application advances the shared clock by that application's
    [delta_t]. Each application keeps its own virtual clock and [tau]
    deadline; an application that exhausts its deadline finishes
    incomplete. A leave/rejoin availability timeline (global time)
    masks machines at grant boundaries for every live application.

    Single-tenant steady state takes a fast path — one unchunked
    {!Agrid_core.Slrh.continue_run}, bit-identical to
    {!Agrid_core.Slrh.run} on the same workload and params (pinned by
    the differential suite), preserving the SoA zero-allocation
    budget. *)

type tenant_stream = { ts_tenant : Tenant.t; ts_process : Arrivals.process }

type spec = {
  seed : int;
  horizon : int;  (** arrival horizon, global cycles *)
  scale : float;  (** per-application workload scale factor, (0, 1] *)
  case : Agrid_platform.Grid.case;
  chunk : int;  (** scheduler timesteps per DRR grant (the quantum) *)
  events : Agrid_churn.Event.t list;  (** leave/rejoin only, global time *)
  tenants : tenant_stream list;
}

val default_scale : float
val default_chunk : int

val make_spec :
  ?scale:float ->
  ?case:Agrid_platform.Grid.case ->
  ?chunk:int ->
  ?events:Agrid_churn.Event.t list ->
  seed:int ->
  horizon:int ->
  tenant_stream list ->
  spec

val validate : spec -> (unit, string) result

(** {2 Wire format}

    Schema ["agrid-traffic/1"]: one JSON object. Parsing is total —
    malformed input yields [Error], never an exception — and
    [spec_of_json (spec_to_json s) = Ok s] (the fuzz suite's print/parse
    fixed point). *)

val schema : string

val spec_to_json : spec -> Agrid_obs.Json.t
val spec_of_json : Agrid_obs.Json.t -> (spec, string) result
val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result
(** Parse + validate. *)

(** {2 Running} *)

val app_seed : spec -> stream:int -> seq:int -> int
(** The workload seed of arrival [seq] on tenant stream [stream] —
    splitmix-mixed from the spec seed, so every application is a
    distinct deterministic scenario. *)

val app_workload : spec -> stream:int -> seq:int -> Agrid_workload.Workload.t
(** The exact workload the engine builds for that arrival. *)

type served = {
  s_completed : bool;
  s_t100 : int;
  s_mapped : int;
  s_aet : int;  (** app-virtual cycles *)
  s_tec : float;
  s_final_clock : int;  (** app-virtual cycles *)
  s_reservation : float;  (** energy charged against the tenant quota *)
  s_steps : int;  (** scheduler timesteps granted *)
  s_started : int;  (** global cycles at admission *)
  s_finished : int;  (** global cycles when the app finished *)
}

type verdict =
  | Rejected of Agrid_core.Feasibility.quota_breach
  | Served of served

type app = {
  a_tenant : string;
  a_stream : int;
  a_seq : int;
  a_arrived : int;  (** global cycles *)
  a_verdict : verdict;
}

type rollup = {
  r_id : string;
  r_priority : Tenant.priority;
  r_arrivals : int;
  r_admitted : int;
  r_rejected : int;
  r_completed : int;
  r_t100 : int;
  r_aet : int;
  r_tec : float;
  r_reserved : float;  (** cumulative energy reservation (never exceeds the quota) *)
  r_steps : int;
}

type outcome = {
  apps : app list;  (** arrival order *)
  rollups : rollup list;  (** spec tenant order *)
  fairness_gap : float;
      (** max weighted served-steps gap observed at DRR round boundaries
          across tenants continuously backlogged over the round *)
  rounds : int;
  total_steps : int;
  final_time : int;  (** global cycles consumed *)
}

val run :
  ?obs:Agrid_obs.Sink.t ->
  ?params_for:(tenant:Tenant.t -> seq:int -> Agrid_core.Slrh.params) ->
  spec ->
  outcome
(** Run the traffic to completion. [?obs] (default inert) receives the
    per-tenant rollups — counters [tenant/<id>/{arrivals,admitted,
    rejected,completed,t100,aet,steps}], gauges [tenant/<id>/{tec,
    reserved}], plus [tenant/{apps,steps,rounds}] and the
    [tenant/fairness_gap] max-gauge. Nothing wall-clock-dependent is
    recorded, so the export is byte-identical across runs of the same
    spec. [?params_for] supplies per-application scheduler params
    (default: paper weights, default SLRH params, inert scheduler sink);
    the fairness and determinism guarantees assume it is pure.
    @raise Invalid_argument on a spec {!validate} rejects. *)

val rollup_table : outcome -> Agrid_report.Table.t
(** The per-tenant rollup as a printable table. *)
