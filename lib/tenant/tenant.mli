(** The tenant model for continuous multi-application traffic (DESIGN.md
    section 14): a stable identity, a priority class that sets the
    tenant's weighted share of scheduler time, and per-tenant quotas
    ({!Agrid_core.Feasibility.quota}) enforced at application admission. *)

type priority = High | Normal | Low

val weight : priority -> int
(** DRR weight of the class: High = 4, Normal = 2, Low = 1. A High
    tenant receives 4x the scheduler timesteps of a Low tenant while
    both stay backlogged. *)

val priority_to_string : priority -> string
val priority_of_string : string -> (priority, string) result
val pp_priority : Format.formatter -> priority -> unit

type t = {
  id : string;  (** nonempty; [A-Za-z0-9_.-] only (wire- and metric-safe) *)
  priority : priority;
  quota : Agrid_core.Feasibility.quota;
}

val make :
  ?priority:priority -> ?energy_quota:float -> ?machine_quota:int -> string -> t
(** [make id] with priority [Normal] and no quotas by default. Does not
    validate — see {!validate}. *)

val validate : t -> (unit, string) result
(** Id well-formed, quota values admissible. *)

val pp : Format.formatter -> t -> unit
