type priority = High | Normal | Low

let weight = function High -> 4 | Normal -> 2 | Low -> 1

let priority_to_string = function
  | High -> "high"
  | Normal -> "normal"
  | Low -> "low"

let priority_of_string = function
  | "high" -> Ok High
  | "normal" -> Ok Normal
  | "low" -> Ok Low
  | s -> Error (Fmt.str "unknown priority %S (expected high|normal|low)" s)

let pp_priority ppf p = Fmt.string ppf (priority_to_string p)

type t = {
  id : string;
  priority : priority;
  quota : Agrid_core.Feasibility.quota;
}

let make ?(priority = Normal) ?energy_quota ?machine_quota id =
  {
    id;
    priority;
    quota =
      { Agrid_core.Feasibility.q_energy = energy_quota; q_machines = machine_quota };
  }

(* Ids end up in wire fields, metric names ("tenant/<id>/...") and CLI
   tables, so the alphabet is restricted to characters safe in all
   three. *)
let id_char_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let validate t =
  if String.length t.id = 0 then Error "tenant id must be nonempty"
  else if not (String.for_all id_char_ok t.id) then
    Error (Fmt.str "tenant id %S: only [A-Za-z0-9_.-] allowed" t.id)
  else Agrid_core.Feasibility.validate_quota t.quota

let pp ppf t =
  Fmt.pf ppf "%s (%a, %s)" t.id pp_priority t.priority
    (Agrid_core.Feasibility.quota_to_string t.quota)
