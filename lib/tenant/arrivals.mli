(** Deterministic application-arrival processes over the repo's splitmix
    streams: each stream draws from its own {!Agrid_prng.Splitmix64}
    substream derived from [(seed, stream index)], so arrival timelines
    are reproducible per seed, independent of stream count or evaluation
    order (the multi-app analogue of the campaign's replicate streams). *)

type process =
  | Poisson of float
      (** arrival rate in applications per cycle; inter-arrival gaps are
          exponential draws ({!Agrid_prng.Dist.exponential}) *)
  | Trace of int list
      (** explicit arrival cycles (sorted on generation; duplicates
          allowed — simultaneous arrivals) *)

val process_to_string : process -> string
val pp_process : Format.formatter -> process -> unit

val validate_process : horizon:int -> process -> (unit, string) result
(** Rates must be finite and positive with a bounded expected arrival
    count ([rate *. horizon <= 10_000] — a runaway-spec guard, not a
    tuning knob); trace times nonnegative. *)

type arrival = {
  at : int;  (** global cycles *)
  stream : int;  (** index of the originating process *)
  seq : int;  (** per-stream arrival ordinal (0-based) *)
}

val pp_arrival : Format.formatter -> arrival -> unit

val generate : seed:int -> horizon:int -> process list -> arrival list
(** All arrivals in [\[0, horizon\]] cycles, merged across streams and
    sorted by [(at, stream, seq)] — a total order, so the merged
    timeline is deterministic per seed. Trace entries beyond the horizon
    are dropped (they would arrive after the run stops admitting). *)
