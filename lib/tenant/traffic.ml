open Agrid_workload
open Agrid_core
module Json = Agrid_obs.Json
module Event = Agrid_churn.Event

type tenant_stream = { ts_tenant : Tenant.t; ts_process : Arrivals.process }

type spec = {
  seed : int;
  horizon : int;
  scale : float;
  case : Agrid_platform.Grid.case;
  chunk : int;
  events : Event.t list;
  tenants : tenant_stream list;
}

let default_scale = 0.05
let default_chunk = 8

let make_spec ?(scale = default_scale) ?(case = Agrid_platform.Grid.A)
    ?(chunk = default_chunk) ?(events = []) ~seed ~horizon tenants =
  { seed; horizon; scale; case; chunk; events; tenants }

let grid_machines case =
  Agrid_platform.Grid.n_machines (Agrid_platform.Grid.of_case case)

let validate spec =
  let ( let* ) = Result.bind in
  let* () = if spec.horizon > 0 then Ok () else Error "horizon must be positive" in
  let* () =
    if Float.is_finite spec.scale && spec.scale > 0. && spec.scale <= 1. then Ok ()
    else Error (Fmt.str "scale must be in (0, 1], got %g" spec.scale)
  in
  let* () = if spec.chunk > 0 then Ok () else Error "chunk must be positive" in
  let* () =
    match spec.tenants with [] -> Error "at least one tenant required" | _ -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc ts ->
        let* () = acc in
        let* () = Tenant.validate ts.ts_tenant in
        Result.map_error
          (fun m -> Fmt.str "tenant %s: %s" ts.ts_tenant.Tenant.id m)
          (Arrivals.validate_process ~horizon:spec.horizon ts.ts_process))
      (Ok ()) spec.tenants
  in
  let ids = List.map (fun ts -> ts.ts_tenant.Tenant.id) spec.tenants in
  let* () =
    if List.length (List.sort_uniq compare ids) = List.length ids then Ok ()
    else Error "tenant ids must be distinct"
  in
  let* () =
    List.fold_left
      (fun acc (e : Event.t) ->
        let* () = acc in
        match e.kind with
        | Event.Leave _ | Event.Rejoin _ -> Ok ()
        | Event.Battery_shock _ | Event.Bandwidth_degrade _ ->
            Error
              (Fmt.str "traffic events support leave/rejoin only, got %s"
                 (Event.kind_name e.kind)))
      (Ok ()) spec.events
  in
  try
    Event.validate ~n_machines:(grid_machines spec.case) (Event.sort spec.events);
    Ok ()
  with Invalid_argument m -> Error m

(* --- wire format (agrid-traffic/1) ------------------------------------- *)

let schema = "agrid-traffic/1"

let case_to_string = function
  | Agrid_platform.Grid.A -> "A"
  | Agrid_platform.Grid.B -> "B"
  | Agrid_platform.Grid.C -> "C"

let tenant_to_json ts =
  let t = ts.ts_tenant in
  let proc =
    match ts.ts_process with
    | Arrivals.Poisson rate -> [ ("rate", Json.Flt rate) ]
    | Arrivals.Trace times -> [ ("trace", Json.Arr (List.map (fun x -> Json.Int x) times)) ]
  in
  let quota =
    (match t.Tenant.quota.Feasibility.q_energy with
    | None -> []
    | Some e -> [ ("energy_quota", Json.Flt e) ])
    @
    match t.Tenant.quota.Feasibility.q_machines with
    | None -> []
    | Some m -> [ ("machines", Json.Int m) ]
  in
  Json.Obj
    ([
       ("id", Json.Str t.Tenant.id);
       ("priority", Json.Str (Tenant.priority_to_string t.Tenant.priority));
     ]
    @ proc @ quota)

let spec_to_json spec =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("seed", Json.Int spec.seed);
       ("horizon", Json.Int spec.horizon);
       ("scale", Json.Flt spec.scale);
       ("case", Json.Str (case_to_string spec.case));
       ("chunk", Json.Int spec.chunk);
     ]
    @ (match spec.events with
      | [] -> []
      | evs -> [ ("events", Json.Str (Event.trace_to_string evs)) ])
    @ [ ("tenants", Json.Arr (List.map tenant_to_json spec.tenants)) ])

let spec_to_string spec = Json.to_string (spec_to_json spec)

let case_of_string = function
  | "A" -> Ok Agrid_platform.Grid.A
  | "B" -> Ok Agrid_platform.Grid.B
  | "C" -> Ok Agrid_platform.Grid.C
  | s -> Error (Fmt.str "unknown case %S (expected A|B|C)" s)

(* Field accessors that distinguish "absent" (defaultable) from
   "present but mistyped" (an error) — the same totality discipline as
   the job codec. *)
let opt_field j name conv ~default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Fmt.str "field %S has the wrong type" name))

let req_field j name conv =
  match Json.member name j with
  | None | Some Json.Null -> Error (Fmt.str "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Fmt.str "field %S has the wrong type" name))

let tenant_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj _ ->
      let* id = req_field j "id" Json.to_string_value in
      let* prio_s = opt_field j "priority" Json.to_string_value ~default:"normal" in
      let* priority =
        Result.map_error (fun m -> Fmt.str "tenant %s: %s" id m)
          (Tenant.priority_of_string prio_s)
      in
      let* rate = opt_field j "rate" Json.to_float ~default:nan in
      let* trace =
        opt_field j "trace"
          (fun v ->
            Option.bind (Json.to_list v) (fun l ->
                let ints = List.filter_map Json.to_int l in
                if List.length ints = List.length l then Some ints else None))
          ~default:[]
      in
      let* process =
        match (Float.is_nan rate, Json.member "trace" j) with
        | false, Some _ -> Error (Fmt.str "tenant %s: rate and trace are exclusive" id)
        | false, None -> Ok (Arrivals.Poisson rate)
        | true, Some _ -> Ok (Arrivals.Trace trace)
        | true, None -> Error (Fmt.str "tenant %s: one of rate or trace required" id)
      in
      let* energy_quota =
        opt_field j "energy_quota" (fun v -> Option.map Option.some (Json.to_float v))
          ~default:None
      in
      let* machine_quota =
        opt_field j "machines" (fun v -> Option.map Option.some (Json.to_int v))
          ~default:None
      in
      Ok
        {
          ts_tenant = Tenant.make ?priority:(Some priority) ?energy_quota ?machine_quota id;
          ts_process = process;
        }
  | _ -> Error "tenant entries must be objects"

let spec_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj _ ->
      let* () =
        match Json.get_string "schema" j with
        | Some s when s = schema -> Ok ()
        | Some s -> Error (Fmt.str "unexpected schema %S (expected %S)" s schema)
        | None -> Error (Fmt.str "missing field \"schema\" (expected %S)" schema)
      in
      let* seed = req_field j "seed" Json.to_int in
      let* horizon = req_field j "horizon" Json.to_int in
      let* scale = opt_field j "scale" Json.to_float ~default:default_scale in
      let* case_s = opt_field j "case" Json.to_string_value ~default:"A" in
      let* case = case_of_string case_s in
      let* chunk = opt_field j "chunk" Json.to_int ~default:default_chunk in
      let* events_s = opt_field j "events" Json.to_string_value ~default:"" in
      let* events =
        if events_s = "" then Ok []
        else
          try Ok (Event.parse_trace events_s)
          with Invalid_argument m -> Error (Fmt.str "events: %s" m)
      in
      let* tenants_j = req_field j "tenants" Json.to_list in
      let* tenants =
        List.fold_left
          (fun acc tj ->
            let* acc = acc in
            let* t = tenant_of_json tj in
            Ok (t :: acc))
          (Ok []) tenants_j
      in
      Ok { seed; horizon; scale; case; chunk; events; tenants = List.rev tenants }
  | _ -> Error "traffic spec must be a JSON object"

let spec_of_string s =
  let ( let* ) = Result.bind in
  let* j = try Ok (Json.parse s) with Json.Parse_error m -> Error m in
  let* spec = spec_of_json j in
  let* () = validate spec in
  Ok spec

(* --- engine ------------------------------------------------------------ *)

(* Per-application scenario seed: the campaign's golden-ratio mixing with
   the (stream, seq) coordinates, truncated to a positive int so it is a
   valid [Spec.seed] on every platform. *)
let app_seed spec ~stream ~seq =
  Int64.to_int
    (Int64.logand
       Int64.(
         add
           (mul (of_int spec.seed) 0x9E3779B97F4A7C15L)
           (add (mul (of_int (stream + 1)) 0xBF58476D1CE4E5B9L) (of_int (seq + 1))))
       0x3FFFFFFFL)

let app_workload spec ~stream ~seq =
  let s = Spec.scaled ~seed:(app_seed spec ~stream ~seq) ~factor:spec.scale () in
  Workload.build s ~etc_index:0 ~dag_index:0 ~case:spec.case

type served = {
  s_completed : bool;
  s_t100 : int;
  s_mapped : int;
  s_aet : int;
  s_tec : float;
  s_final_clock : int;
  s_reservation : float;
  s_steps : int;
  s_started : int;
  s_finished : int;
}

type verdict = Rejected of Feasibility.quota_breach | Served of served

type app = {
  a_tenant : string;
  a_stream : int;
  a_seq : int;
  a_arrived : int;
  a_verdict : verdict;
}

type rollup = {
  r_id : string;
  r_priority : Tenant.priority;
  r_arrivals : int;
  r_admitted : int;
  r_rejected : int;
  r_completed : int;
  r_t100 : int;
  r_aet : int;
  r_tec : float;
  r_reserved : float;
  r_steps : int;
}

type outcome = {
  apps : app list;
  rollups : rollup list;
  fairness_gap : float;
  rounds : int;
  total_steps : int;
  final_time : int;
}

type live = {
  l_stream : int;
  l_app : int;  (* arrival index *)
  l_params : Slrh.params;
  l_sched : Agrid_sched.Schedule.t;
  l_tau : int;
  l_reservation : float;
  l_started : int;
  mutable l_clock : int;
  mutable l_steps : int;
}

let default_params_for ~tenant:_ ~seq:_ =
  Slrh.default_params (Objective.make_weights ~alpha:0.4 ~beta:0.3)

let run ?(obs = Agrid_obs.Sink.noop) ?(params_for = default_params_for) spec =
  (match validate spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Traffic.run: " ^ m));
  let tenants = Array.of_list spec.tenants in
  let n_t = Array.length tenants in
  let arrivals =
    Array.of_list
      (Arrivals.generate ~seed:spec.seed ~horizon:spec.horizon
         (List.map (fun ts -> ts.ts_process) spec.tenants))
  in
  let n_apps = Array.length arrivals in
  let verdicts = Array.make n_apps None in
  let n_machines = grid_machines spec.case in
  let events = ref (Event.sort spec.events) in
  let up = Array.make n_machines true in
  let used = Array.make n_t 0. in
  let steps_t = Array.make n_t 0 in
  let queues : live Queue.t array = Array.init n_t (fun _ -> Queue.create ()) in
  let live_count = ref 0 in
  let weights =
    Array.map (fun ts -> float_of_int (Tenant.weight ts.ts_tenant.Tenant.priority)) tenants
  in
  let drr = Drr.create ~quantum:(float_of_int spec.chunk) ~weights in
  let g = ref 0 in
  let total_steps = ref 0 in
  let max_gap = ref 0. in
  let last_rounds = ref 0 in
  let cont_backlogged = Array.make n_t true in
  let next_arrival = ref 0 in
  let backlogged i = not (Queue.is_empty queues.(i)) in
  let apply_due_events () =
    let rec go = function
      | ({ Event.at; kind } : Event.t) :: rest when at <= !g ->
          (match kind with
          | Event.Leave j -> up.(j) <- false
          | Event.Rejoin j -> up.(j) <- true
          | Event.Battery_shock _ | Event.Bandwidth_degrade _ -> ());
          go rest
      | rest -> events := rest
    in
    go !events
  in
  let next_event_at () =
    match !events with [] -> None | (e : Event.t) :: _ -> Some e.Event.at
  in
  (* The grant-time machine mask: quota prefix /\ availability. [None]
     when unrestricted, so the quota-free all-up case hands
     [continue_run] the exact argument the standalone path uses. *)
  let mask_for stream =
    let q = tenants.(stream).ts_tenant.Tenant.quota in
    let allowed = Feasibility.quota_machines q ~n_machines in
    if allowed >= n_machines && not (Array.exists not up) then None
    else Some (Array.init n_machines (fun j -> up.(j) && j < allowed))
  in
  let admit k =
    let a = arrivals.(k) in
    let ts = tenants.(a.Arrivals.stream) in
    let wl = app_workload spec ~stream:a.Arrivals.stream ~seq:a.Arrivals.seq in
    match Feasibility.admit_quota ts.ts_tenant.Tenant.quota ~used:used.(a.Arrivals.stream) wl with
    | Error breach -> verdicts.(k) <- Some (Rejected breach)
    | Ok r ->
        used.(a.Arrivals.stream) <- used.(a.Arrivals.stream) +. r;
        let params = params_for ~tenant:ts.ts_tenant ~seq:a.Arrivals.seq in
        Queue.push
          {
            l_stream = a.Arrivals.stream;
            l_app = k;
            l_params = params;
            l_sched = Agrid_sched.Schedule.create wl;
            l_tau = Workload.tau wl;
            l_reservation = r;
            l_started = !g;
            l_clock = 0;
            l_steps = 0;
          }
          queues.(a.Arrivals.stream);
        incr live_count
  in
  let finish live completed =
    let sched = live.l_sched in
    verdicts.(live.l_app) <-
      Some
        (Served
           {
             s_completed = completed;
             s_t100 = Agrid_sched.Schedule.n_primary sched;
             s_mapped = Agrid_sched.Schedule.n_mapped sched;
             s_aet = Agrid_sched.Schedule.aet sched;
             s_tec = Agrid_sched.Schedule.tec sched;
             s_final_clock = live.l_clock;
             s_reservation = live.l_reservation;
             s_steps = live.l_steps;
             s_started = live.l_started;
             s_finished = !g;
           });
    ignore (Queue.pop queues.(live.l_stream));
    decr live_count
  in
  let account live (o : Slrh.outcome) =
    let ran = o.Slrh.stats.Slrh.clock_steps in
    let dt = live.l_params.Slrh.delta_t in
    live.l_clock <- o.Slrh.final_clock;
    live.l_steps <- live.l_steps + ran;
    steps_t.(live.l_stream) <- steps_t.(live.l_stream) + ran;
    total_steps := !total_steps + ran;
    g := !g + (ran * dt);
    if o.Slrh.completed then finish live true
    else if live.l_clock > live.l_tau then finish live false
  in
  let grant live steps =
    let dt = live.l_params.Slrh.delta_t in
    let until = min (live.l_clock + (steps * dt) - 1) live.l_tau in
    let o =
      Slrh.continue_run ~start_clock:live.l_clock ?mask:(mask_for live.l_stream)
        ~until live.l_params live.l_sched
    in
    account live o
  in
  (* One live application, no pending arrivals, no future events: run it
     to completion in a single unchunked phase — the single-tenant
     steady state, bit-identical to [Slrh.run] (and allocation-identical:
     the SoA zero-allocation budget is measured through this path). *)
  let fast_path_ok () = !live_count = 1 && !next_arrival >= n_apps && !events = [] in
  let run_fast () =
    let rec find i = if backlogged i then Queue.peek queues.(i) else find (i + 1) in
    let live = find 0 in
    let o =
      Slrh.continue_run ~start_clock:live.l_clock ?mask:(mask_for live.l_stream)
        live.l_params live.l_sched
    in
    let completed = o.Slrh.completed in
    account live o;
    (* an unchunked run always ends the application *)
    if Option.is_none verdicts.(live.l_app) then finish live completed
  in
  while !next_arrival < n_apps || !live_count > 0 do
    apply_due_events ();
    while !next_arrival < n_apps && arrivals.(!next_arrival).Arrivals.at <= !g do
      admit !next_arrival;
      incr next_arrival
    done;
    if !live_count = 0 then begin
      if !next_arrival < n_apps then g := max !g arrivals.(!next_arrival).Arrivals.at
    end
    else if fast_path_ok () then run_fast ()
    else begin
      for i = 0 to n_t - 1 do
        if not (backlogged i) then cont_backlogged.(i) <- false
      done;
      match Drr.select drr ~backlogged ~cost:(float_of_int spec.chunk) with
      | None -> assert false (* live_count > 0 *)
      | Some i ->
          let live = Queue.peek queues.(i) in
          let dt = live.l_params.Slrh.delta_t in
          (* clip the grant at the next availability event so masks only
             change at grant boundaries *)
          let steps =
            match next_event_at () with
            | Some at when at > !g -> max 1 (min spec.chunk ((at - !g + dt - 1) / dt))
            | _ -> spec.chunk
          in
          grant live steps;
          if Drr.rounds drr > !last_rounds then begin
            let gap = Drr.weighted_gap drr ~over:(fun t -> cont_backlogged.(t)) in
            if gap > !max_gap then max_gap := gap;
            last_rounds := Drr.rounds drr;
            Array.iteri (fun t _ -> cont_backlogged.(t) <- backlogged t) cont_backlogged
          end
    end
  done;
  let apps =
    List.init n_apps (fun k ->
        let a = arrivals.(k) in
        {
          a_tenant = tenants.(a.Arrivals.stream).ts_tenant.Tenant.id;
          a_stream = a.Arrivals.stream;
          a_seq = a.Arrivals.seq;
          a_arrived = a.Arrivals.at;
          a_verdict =
            (match verdicts.(k) with
            | Some v -> v
            | None -> assert false (* every arrival is admitted or rejected *));
        })
  in
  let rollups =
    List.mapi
      (fun i ts ->
        let arr = ref 0
        and adm = ref 0
        and rej = ref 0
        and comp = ref 0
        and t100 = ref 0
        and aet = ref 0
        and tec = ref 0. in
        List.iter
          (fun a ->
            if a.a_stream = i then begin
              incr arr;
              match a.a_verdict with
              | Rejected _ -> incr rej
              | Served s ->
                  incr adm;
                  if s.s_completed then incr comp;
                  t100 := !t100 + s.s_t100;
                  aet := !aet + s.s_aet;
                  tec := !tec +. s.s_tec
            end)
          apps;
        {
          r_id = ts.ts_tenant.Tenant.id;
          r_priority = ts.ts_tenant.Tenant.priority;
          r_arrivals = !arr;
          r_admitted = !adm;
          r_rejected = !rej;
          r_completed = !comp;
          r_t100 = !t100;
          r_aet = !aet;
          r_tec = !tec;
          r_reserved = used.(i);
          r_steps = steps_t.(i);
        })
      spec.tenants
  in
  if Agrid_obs.Sink.enabled obs then begin
    List.iter
      (fun r ->
        let c name v = Agrid_obs.Sink.add obs (Fmt.str "tenant/%s/%s" r.r_id name) v in
        c "arrivals" r.r_arrivals;
        c "admitted" r.r_admitted;
        c "rejected" r.r_rejected;
        c "completed" r.r_completed;
        c "t100" r.r_t100;
        c "aet" r.r_aet;
        c "steps" r.r_steps;
        Agrid_obs.Sink.set_gauge obs (Fmt.str "tenant/%s/tec" r.r_id) r.r_tec;
        Agrid_obs.Sink.set_gauge obs (Fmt.str "tenant/%s/reserved" r.r_id) r.r_reserved)
      rollups;
    Agrid_obs.Sink.add obs "tenant/apps" n_apps;
    Agrid_obs.Sink.add obs "tenant/steps" !total_steps;
    Agrid_obs.Sink.add obs "tenant/rounds" (Drr.rounds drr);
    Agrid_obs.Sink.max_gauge obs "tenant/fairness_gap" !max_gap
  end;
  {
    apps;
    rollups;
    fairness_gap = !max_gap;
    rounds = Drr.rounds drr;
    total_steps = !total_steps;
    final_time = !g;
  }

let rollup_table outcome =
  let rows =
    List.map
      (fun r ->
        [
          r.r_id;
          Tenant.priority_to_string r.r_priority;
          string_of_int r.r_arrivals;
          string_of_int r.r_admitted;
          string_of_int r.r_rejected;
          string_of_int r.r_completed;
          string_of_int r.r_t100;
          string_of_int r.r_aet;
          Fmt.str "%.3f" r.r_tec;
          Fmt.str "%.3f" r.r_reserved;
          string_of_int r.r_steps;
        ])
      outcome.rollups
  in
  Agrid_report.Table.make ~title:"Per-tenant rollup"
    ~columns:
      [
        "tenant"; "priority"; "arrivals"; "admitted"; "rejected"; "completed";
        "T100"; "AET"; "TEC"; "reserved"; "steps";
      ]
    ~rows
