type t = {
  quantum : float;
  weights : float array;
  deficit : float array;
  served_ : float array;
  boundary_served : float array;
      (** copy of [served_] taken at the last cursor wrap — round-boundary
          accounting must be sampled at the wrap itself, because one
          [select] call can cross the boundary and serve into the new
          round before returning *)
  mutable cursor : int;
  mutable visiting : bool;  (** mid-visit at [cursor]: credit already granted *)
  mutable rounds_ : int;
}

let create ~quantum ~weights =
  if Array.length weights = 0 then invalid_arg "Drr.create: no queues";
  if (not (Float.is_finite quantum)) || quantum <= 0. then
    invalid_arg "Drr.create: quantum must be finite and positive";
  Array.iter
    (fun w ->
      if (not (Float.is_finite w)) || w < 1. then
        invalid_arg "Drr.create: weights must be >= 1")
    weights;
  {
    quantum;
    weights = Array.copy weights;
    deficit = Array.make (Array.length weights) 0.;
    served_ = Array.make (Array.length weights) 0.;
    boundary_served = Array.make (Array.length weights) 0.;
    cursor = 0;
    visiting = false;
    rounds_ = 0;
  }

let n t = Array.length t.weights
let quantum t = t.quantum
let weight t i = t.weights.(i)
let served t i = t.served_.(i)
let weighted_share t i = t.served_.(i) /. t.weights.(i)
let rounds t = t.rounds_

let advance t =
  t.visiting <- false;
  t.cursor <- (t.cursor + 1) mod n t;
  if t.cursor = 0 then begin
    t.rounds_ <- t.rounds_ + 1;
    Array.blit t.served_ 0 t.boundary_served 0 (n t)
  end

let boundary_served t i = t.boundary_served.(i)
let boundary_share t i = t.boundary_served.(i) /. t.weights.(i)

let select t ~backlogged ~cost =
  if (not (Float.is_finite cost)) || cost <= 0. then
    invalid_arg "Drr.select: cost must be finite and positive";
  if cost > t.quantum then invalid_arg "Drr.select: cost exceeds quantum";
  (* A full pass meeting only empty queues proves nothing is backlogged.
     Each pass over a backlogged queue serves it (weights >= 1 make one
     credit cover any admissible cost), so the scan terminates. *)
  let misses = ref 0 in
  let result = ref None in
  while Option.is_none !result && !misses < n t do
    let i = t.cursor in
    if backlogged i then begin
      if not t.visiting then begin
        t.deficit.(i) <- t.deficit.(i) +. (t.quantum *. t.weights.(i));
        t.visiting <- true
      end;
      if t.deficit.(i) >= cost then begin
        t.deficit.(i) <- t.deficit.(i) -. cost;
        t.served_.(i) <- t.served_.(i) +. cost;
        result := Some i
      end
      else begin
        (* backlogged but out of credit this visit: keep the residual *)
        misses := 0;
        advance t
      end
    end
    else begin
      t.deficit.(i) <- 0.;
      incr misses;
      advance t
    end
  done;
  !result

let weighted_gap t ~over =
  let lo = ref infinity and hi = ref neg_infinity and count = ref 0 in
  for i = 0 to n t - 1 do
    if over i then begin
      incr count;
      let s = boundary_share t i in
      if s < !lo then lo := s;
      if s > !hi then hi := s
    end
  done;
  if !count < 2 then 0. else !hi -. !lo
