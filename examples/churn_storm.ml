(* Churn storm demo: the general churn engine driving SLRH through a
   multi-event fault trace — overlapping outages, a battery shock and a
   link degrade — under both re-execution policies, then a small Monte
   Carlo campaign sweeping churn intensity.

     dune exec examples/churn_storm.exe

   This is the scenario the paper motivates ("assets connected to the grid
   can — and frequently do — appear and disappear at unanticipated times")
   but defers; the one-shot loss/outage runs of Dynamic are the two
   simplest traces this engine accepts. *)

open Agrid_workload
open Agrid_core
open Agrid_churn

let weights = Objective.make_weights ~alpha:0.4 ~beta:0.3

let () =
  let spec = Spec.default ~seed:42 () in
  let workload = Workload.build spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A in
  let params = Slrh.default_params weights in
  let tau = Workload.tau workload in

  (* a storm: both fast machines drop out (overlapping), the survivors take
     a battery shock and a degraded link while covering, then capacity
     returns *)
  let trace =
    Event.parse_trace
      (Fmt.str "leave@%d:1,degrade@%d:2:0.5,leave@%d:0,shock@%d:3:0.25,rejoin@%d:1,rejoin@%d:0"
         (tau / 10) (tau / 8) (tau / 6) (tau / 5) (tau / 3) (tau / 2))
  in
  Fmt.pr "trace: %s@.@." (Event.trace_to_string trace);

  let run_policy label policy =
    let o = Dynamic.run_churn ~policy params workload trace in
    Fmt.pr "%s policy:@." label;
    List.iter (fun a -> Fmt.pr "  %a@." Engine.pp_applied a) o.Engine.applied;
    Fmt.pr "  %a@." Engine.pp_outcome o;
    (match Engine.audit o with
    | [] -> Fmt.pr "  audit: clean@."
    | vs -> List.iter (fun v -> Fmt.pr "  audit: %s@." v) vs);
    Fmt.pr "@."
  in
  run_policy "immediate remap" Retry.default;
  run_policy "defer to rejoin" (Retry.make ~timing:Retry.Defer_to_rejoin ());
  run_policy "retry budget 1" (Retry.make ~budget:1 ());

  (* degradation curve: how completion probability and T100 fall off as
     random churn intensifies *)
  let config = Agrid_exper.Config.smoke ~seed:42 () in
  let levels =
    Agrid_exper.Campaign.run ~weights ~replicates:8
      ~intensities:[ 0.0; 1.0; 2.0; 4.0 ] ~seed:42 config
  in
  Fmt.pr "%a@." Agrid_report.Table.pp (Agrid_exper.Campaign.table levels)
