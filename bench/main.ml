(* Benchmark / reproduction harness: regenerates every table and figure of
   the paper's evaluation (Tables 1-4, Figures 2-7), runs the ablations
   called out in DESIGN.md, and finishes with bechamel micro-benchmarks of
   each experiment kernel.

   Default scale is the proportionally scaled workload (|T| = 128, 3 ETCs x
   3 DAGs); pass --full for the paper's |T| = 1024 with 10 x 10 scenarios
   (hours of compute on one core). See EXPERIMENTS.md for paper-vs-measured
   commentary on each artefact. *)

open Agrid_exper
open Agrid_report

type options = {
  full : bool;
  seed : int;
  quick : bool; (* smoke scale, used by CI *)
  skip_bechamel : bool;
  skip_figures : bool;
  obs_only : bool; (* just the observability profile (the CI perf gate input) *)
}

let parse_options () =
  let opts =
    ref
      {
        full = false;
        seed = 2004;
        quick = false;
        skip_bechamel = false;
        skip_figures = false;
        obs_only = false;
      }
  in
  let rec walk = function
    | [] -> ()
    | "--full" :: rest ->
        opts := { !opts with full = true };
        walk rest
    | "--quick" :: rest ->
        opts := { !opts with quick = true };
        walk rest
    | "--skip-bechamel" :: rest ->
        opts := { !opts with skip_bechamel = true };
        walk rest
    | "--skip-figures" :: rest ->
        opts := { !opts with skip_figures = true };
        walk rest
    | "--obs-only" :: rest ->
        opts := { !opts with obs_only = true };
        walk rest
    | "--seed" :: v :: rest ->
        opts := { !opts with seed = int_of_string v };
        walk rest
    | arg :: _ ->
        Fmt.epr "unknown argument %S@." arg;
        Fmt.epr
          "usage: main.exe [--full|--quick] [--seed N] [--skip-bechamel] [--skip-figures] [--obs-only]@.";
        exit 2
  in
  walk (List.tl (Array.to_list Sys.argv));
  !opts

let config_of options =
  if options.full then Config.full ~seed:options.seed ()
  else if options.quick then Config.smoke ~seed:options.seed ()
  else Config.default ~seed:options.seed ()

let section title = Fmt.pr "@.=== %s ===@.@." title

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Fmt.pr "[%s: %.1f s]@." name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)

let run_tables config =
  section "Table 1 (static configuration)";
  Fmt.pr "%a@." Table.pp (Experiments.table1 ());
  section "Table 2 (machine parameters)";
  Fmt.pr "%a@." Table.pp (Experiments.table2 ());
  section "Table 3 (average minimum relative speed)";
  timed "table3" (fun () -> Fmt.pr "%a@." Table.pp (Experiments.table3 config));
  section "Table 4 (upper bound on T100)";
  timed "table4" (fun () -> Fmt.pr "%a@." Table.pp (Experiments.table4 config))

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let run_figure2 config =
  section "Figure 2 (impact of delta-T on SLRH-1)";
  timed "figure2" (fun () ->
      Fmt.pr "%a@." Series.pp (Experiments.figure2 config))

let run_evaluation_figures config =
  section "Weight-search evaluation (drives Figures 3-7)";
  let total =
    List.length Agrid_platform.Grid.all_cases
    * List.length Evaluation.all_heuristics
    * List.length (Config.scenarios config)
  in
  Fmt.pr "tuning %d (case x heuristic x scenario) combinations...@." total;
  let ev =
    timed "evaluation" (fun () ->
        Evaluation.run
          ~on_progress:(fun n ->
            if n mod 9 = 0 || n = total then Fmt.pr "  tuned %d/%d@?@." n total)
          config)
  in
  section "Figure 3 (optimal weight ranges)";
  Fmt.pr "%a@." Table.pp (Experiments.figure3 ev);
  section "Figure 4 (mean T100 per heuristic per case)";
  let f4 = Experiments.figure4 ev in
  Fmt.pr "%a@." Series.pp f4;
  Fmt.pr "%a@." (Series.pp_bars ~width:40) f4;
  section "Figure 5 (mean T100 / upper bound)";
  let f5 = Experiments.figure5 ev in
  Fmt.pr "%a@." Series.pp f5;
  Fmt.pr "%a@." (Series.pp_bars ~width:40) f5;
  section "Figure 6 (mean heuristic execution time, seconds)";
  Fmt.pr "%a@." Series.pp (Experiments.figure6 ev);
  section "Figure 7 (T100 per unit heuristic execution time)";
  Fmt.pr "%a@." Series.pp (Experiments.figure7 ev);
  ev

let run_slrh2_check config =
  section "SLRH-2 feasibility check (paper: dropped for rarely mapping all subtasks)";
  timed "slrh2" (fun () ->
      let feasible, total = Experiments.slrh2_failure_rate config in
      Fmt.pr
        "SLRH-2 produced a feasible complete mapping at %d of %d (weight x scenario) points (%.0f%%)@."
        feasible total
        (100. *. float_of_int feasible /. float_of_int (max 1 total)))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation_horizon config =
  section "Ablation: receding horizon H (paper: negligible impact)";
  let open Agrid_workload in
  let workload = Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  let pts =
    Agrid_tuner.Sweep.horizon ~delta_t:config.Config.delta_t ~weights
      ~values:Agrid_tuner.Sweep.default_horizon_values workload
  in
  List.iter (fun p -> Fmt.pr "  H=%4d: %a@." p.Agrid_tuner.Sweep.value Agrid_tuner.Sweep.pp_point p) pts

let ablation_feasibility_mode config =
  section "Ablation: worst-case vs optimistic communication-energy feasibility";
  let open Agrid_workload in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  List.iter
    (fun mode ->
      let workload =
        Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
      in
      let params =
        {
          (Agrid_core.Slrh.default_params weights) with
          Agrid_core.Slrh.delta_t = config.Config.delta_t;
          horizon = config.Config.horizon;
          feas_mode = mode;
        }
      in
      let o = Agrid_core.Slrh.run params workload in
      let r = Agrid_sched.Validate.check o.Agrid_core.Slrh.schedule in
      Fmt.pr "  %-13s T100=%d feasible=%b wall=%.4fs@."
        (Agrid_core.Feasibility.mode_to_string mode)
        r.Agrid_sched.Validate.t100
        (Agrid_sched.Validate.feasible r)
        o.Agrid_core.Slrh.wall_seconds)
    [ Agrid_core.Feasibility.Conservative; Agrid_core.Feasibility.Optimistic ]

let ablation_maxmax_tau_gate config =
  section "Ablation: Max-Max per-placement tau gate (DESIGN.md section 5)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.6 ~beta:0.35 in
  List.iter
    (fun respect_tau ->
      let params =
        { (Agrid_baselines.Maxmax.default_params weights) with Agrid_baselines.Maxmax.respect_tau }
      in
      let o = Agrid_baselines.Maxmax.run params workload in
      let r = Agrid_sched.Validate.check o.Agrid_baselines.Maxmax.schedule in
      Fmt.pr "  respect_tau=%-5b T100=%d AET=%d/%d feasible=%b@." respect_tau
        r.Agrid_sched.Validate.t100 r.Agrid_sched.Validate.aet (Workload.tau workload)
        (Agrid_sched.Validate.feasible r))
    [ true; false ]

let ablation_adaptive config =
  section "Ablation: adaptive multiplier adjustment vs grid search (paper future work)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.C
  in
  let runner =
    Agrid_tuner.Weight_search.slrh_runner ~delta_t:config.Config.delta_t
      ~horizon:config.Config.horizon Agrid_core.Slrh.V1
  in
  let grid =
    timed "grid search" (fun () ->
        Agrid_tuner.Weight_search.search ~coarse_step:config.Config.coarse_step
          ~fine_step:config.Config.fine_step ~fine_radius:config.Config.fine_radius runner
          workload)
  in
  let adaptive = timed "adaptive" (fun () -> Agrid_tuner.Adaptive.tune runner workload) in
  let describe label best evaluations =
    match best with
    | None -> Fmt.pr "  %-9s no feasible point (%d evaluations)@." label evaluations
    | Some b ->
        Fmt.pr "  %-9s T100=%d at %a (%d evaluations)@." label
          b.Agrid_tuner.Weight_search.t100 Agrid_core.Objective.pp_weights
          b.Agrid_tuner.Weight_search.weights evaluations
  in
  describe "grid" grid.Agrid_tuner.Weight_search.best grid.Agrid_tuner.Weight_search.evaluations;
  describe "adaptive" adaptive.Agrid_tuner.Adaptive.best adaptive.Agrid_tuner.Adaptive.evaluations

(* The paper (Section IV): "the communications energy proved to be a
   negligible factor in the calculations". Measure the share directly. *)
let comm_energy_share config =
  section "Communication-energy share (paper: negligible)";
  let open Agrid_workload in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  List.iter
    (fun case ->
      let workload = Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case in
      let o = Agrid_core.Slrh.run (Agrid_core.Slrh.default_params weights) workload in
      let sched = o.Agrid_core.Slrh.schedule in
      let comm =
        Array.fold_left
          (fun acc (tr : Agrid_sched.Schedule.transfer) -> acc +. tr.Agrid_sched.Schedule.energy)
          0.
          (Agrid_sched.Schedule.transfers sched)
      in
      let total = Agrid_sched.Schedule.tec sched in
      Fmt.pr "  %-7s comm %.4f of %.2f total energy units (%.2f%%), %d transfers@."
        (Agrid_platform.Grid.name (Workload.grid workload))
        comm total
        (100. *. comm /. Float.max 1e-9 total)
        (Array.length (Agrid_sched.Schedule.transfers sched)))
    Agrid_platform.Grid.all_cases

(* Classical comparators outside the paper's evaluation: Min-Min [IbK77]
   (the template behind Max-Max) and the LRNN-style Lagrangian-relaxation
   static mapper [LuH93]/[LuZ00]/[CaS03] that SLRH grew out of. *)
let ablation_classical_baselines config =
  section "Ablation: classical baselines (Min-Min, Lagrangian relaxation static mapper)";
  let open Agrid_workload in
  List.iter
    (fun case ->
      let workload = Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case in
      Fmt.pr "  %s:@." (Agrid_platform.Grid.case_name case);
      List.iter
        (fun policy ->
          let params =
            { Agrid_baselines.Minmin.default_params with Agrid_baselines.Minmin.version_policy = policy }
          in
          let o = Agrid_baselines.Minmin.run ~params workload in
          let r = Agrid_sched.Validate.check o.Agrid_baselines.Minmin.schedule in
          Fmt.pr "    min-min %-17s T100=%3d AET=%6d feasible=%b@."
            (Agrid_baselines.Minmin.version_policy_to_string policy)
            r.Agrid_sched.Validate.t100 r.Agrid_sched.Validate.aet
            (Agrid_sched.Validate.feasible r))
        Agrid_baselines.Minmin.[ Secondary_allowed; Prefer_primary ];
      let o = Agrid_lrnn.Lrnn.run workload in
      let r = Agrid_sched.Validate.check o.Agrid_lrnn.Lrnn.schedule in
      Fmt.pr "    LRNN static mapper        T100=%3d AET=%6d feasible=%b (demoted %d, dual bound %.1f)@."
        r.Agrid_sched.Validate.t100 r.Agrid_sched.Validate.aet
        (Agrid_sched.Validate.feasible r) o.Agrid_lrnn.Lrnn.demoted
        o.Agrid_lrnn.Lrnn.dual_bound)
    Agrid_platform.Grid.all_cases

(* The paper's objective-sign discussion (Section IV): "Use of a negative
   sign on this term caused the heuristic to produce very short AET
   solutions, but with correspondingly lower T100 values." *)
let ablation_aet_sign config =
  section "Ablation: AET term sign (paper: negative sign -> short AET, low T100)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  List.iter
    (fun (label, sign) ->
      let weights =
        Agrid_core.Objective.with_aet_sign sign
          (Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3)
      in
      let params =
        {
          (Agrid_core.Slrh.default_params weights) with
          Agrid_core.Slrh.delta_t = config.Config.delta_t;
          horizon = config.Config.horizon;
        }
      in
      let o = Agrid_core.Slrh.run params workload in
      let r = Agrid_sched.Validate.check o.Agrid_core.Slrh.schedule in
      Fmt.pr "  %-8s T100=%3d AET=%6d feasible=%b@." label r.Agrid_sched.Validate.t100
        r.Agrid_sched.Validate.aet
        (Agrid_sched.Validate.feasible r))
    [ ("+gamma", Agrid_core.Objective.Reward); ("-gamma", Agrid_core.Objective.Penalise) ]

(* The paper sweeps machines "in simple numerical order"; how much does
   that choice matter? *)
let ablation_machine_order config =
  section "Ablation: machine sweep order (paper: simple numerical order)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  List.iter
    (fun order ->
      let params =
        {
          (Agrid_core.Slrh.default_params weights) with
          Agrid_core.Slrh.delta_t = config.Config.delta_t;
          horizon = config.Config.horizon;
          machine_order = order;
        }
      in
      let o = Agrid_core.Slrh.run params workload in
      let r = Agrid_sched.Validate.check o.Agrid_core.Slrh.schedule in
      Fmt.pr "  %-18s T100=%3d AET=%6d feasible=%b@."
        (Agrid_core.Slrh.machine_order_to_string order)
        r.Agrid_sched.Validate.t100 r.Agrid_sched.Validate.aet
        (Agrid_sched.Validate.feasible r))
    [ Agrid_core.Slrh.Numerical; Agrid_core.Slrh.Fast_first; Agrid_core.Slrh.Most_energy_first ]

(* Robustness extension: the ETC matrices are only ESTIMATES; execute the
   tuned plan under actual durations with increasing noise and measure how
   often the deadline survives. *)
let ablation_robustness config =
  section "Extension: schedule robustness under estimation error (ETC = estimated)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let params =
    {
      (Agrid_core.Slrh.default_params weights) with
      Agrid_core.Slrh.delta_t = config.Config.delta_t;
      horizon = config.Config.horizon;
    }
  in
  let sched = (Agrid_core.Slrh.run params workload).Agrid_core.Slrh.schedule in
  let trials = 40 in
  List.iter
    (fun cv ->
      let met = ref 0 and energy_ok = ref 0 and inflation = ref 0. in
      for seed = 0 to trials - 1 do
        let r =
          Agrid_sim.Executor.execute
            ~rng:(Agrid_prng.Splitmix64.of_int (1000 + seed))
            ~noise:(Agrid_sim.Executor.noise ~exec_cv:cv ~comm_cv:cv ())
            sched
        in
        if r.Agrid_sim.Executor.deadline_met then incr met;
        if r.Agrid_sim.Executor.energy_ok then incr energy_ok;
        inflation := !inflation +. r.Agrid_sim.Executor.aet_inflation
      done;
      Fmt.pr "  cv=%.2f: deadline met %d/%d, energy ok %d/%d, mean AET inflation x%.3f@."
        cv !met trials !energy_ok trials
        (!inflation /. float_of_int trials))
    [ 0.0; 0.05; 0.1; 0.2; 0.4; 0.8 ]

(* Dynamic-grid extension: loss and outage transitions between the static
   cases the paper evaluates. *)
let ablation_dynamic config =
  section "Extension: machine loss / outage mid-run (on-the-fly rescheduling)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let params = Agrid_core.Slrh.default_params weights in
  let tau = Workload.tau workload in
  List.iter
    (fun (label, machine) ->
      let o =
        Agrid_core.Dynamic.run_with_loss params workload
          { Agrid_core.Dynamic.at = tau / 4; machine }
      in
      Fmt.pr "  lose %-14s at tau/4: %a@." label Agrid_core.Dynamic.pp_outcome o)
    [ ("slow machine 3", 3); ("fast machine 1", 1) ];
  let o =
    Agrid_core.Dynamic.run_with_outage params workload ~machine:1 ~from_:(tau / 10)
      ~until_:(tau / 2)
  in
  Fmt.pr "  outage fast machine 1 [tau/10, tau/2): %a@." Agrid_core.Dynamic.pp_outage o;
  Fmt.pr "@.%a@." Agrid_report.Series.pp (Experiments.extension_loss_sweep config)

let report_tau_calibration config =
  section "tau calibration (paper method: greedy static heuristic experiments)";
  let spec = config.Config.spec in
  let open Agrid_workload in
  let tau = Spec.tau_cycles spec in
  let calibrated = Agrid_baselines.Calibrate.tau_cycles spec in
  Fmt.pr "  spec tau (paper-proportional) : %d cycles (%.0f s)@." tau spec.Spec.tau_seconds;
  Fmt.pr "  greedy-calibrated tau         : %d cycles (slack 1.0)@." calibrated;
  Fmt.pr "  ratio spec/greedy             : %.2f@."
    (float_of_int tau /. float_of_int (max 1 calibrated))

(* ------------------------------------------------------------------ *)
(* Observability profile                                               *)

(* One instrumented SLRH-1 run plus one churn run (leave + rejoin) through
   the telemetry sink; the span and counter aggregates land in
   BENCH_obs.json (format documented in DESIGN.md, "Observability"). *)
let run_obs_profile config ~total_seconds =
  section "Observability profile (BENCH_obs.json)";
  let open Agrid_workload in
  let workload =
    Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3 in
  let sink = Agrid_obs.Sink.create ~stride:8 () in
  let params =
    {
      (Agrid_core.Slrh.default_params weights) with
      Agrid_core.Slrh.delta_t = config.Config.delta_t;
      horizon = config.Config.horizon;
      obs = sink;
    }
  in
  let o = Agrid_core.Slrh.run params workload in
  (* Scheduler-quality counters for the CI regression gate: T100 and the
     mapped count are seed-deterministic, so check_regression compares
     them exactly while span timings get a hardware tolerance. *)
  Agrid_obs.Sink.add sink "bench/t100"
    (Agrid_sched.Schedule.n_primary o.Agrid_core.Slrh.schedule);
  Agrid_obs.Sink.add sink "bench/mapped"
    (Agrid_sched.Schedule.n_mapped o.Agrid_core.Slrh.schedule);
  let tau = Workload.tau workload in
  ignore
    (Agrid_core.Dynamic.run_churn params workload
       [
         { Agrid_churn.Event.at = tau / 8; kind = Agrid_churn.Event.Leave 1 };
         { Agrid_churn.Event.at = tau / 2; kind = Agrid_churn.Event.Rejoin 1 };
       ]);
  (* Pool-reuse rate of the incremental mode (the default above): both
     counters are seed-deterministic, so the CI gate pins them exactly —
     a drop in the reuse rate is a perf regression even before it shows
     up in span timings. *)
  let counter name =
    match
      List.assoc_opt name
        (List.filter_map
           (fun (n, m) ->
             match m with Agrid_obs.Registry.Counter c -> Some (n, c) | _ -> None)
           (Agrid_obs.Sink.metrics sink))
    with
    | Some c -> c
    | None -> 0
  in
  let reused = counter "slrh/pool_reused" and rebuilt = counter "slrh/pool_rebuilt" in
  if reused + rebuilt > 0 then
    Fmt.pr "pool reuse: %d of %d builds (%.1f%%)@." reused (reused + rebuilt)
      (100. *. float_of_int reused /. float_of_int (reused + rebuilt));
  (* Steady-state allocation budget of the SoA arena (the default mode
     above): two fresh runs of a commit-free scenario (batteries scaled
     to ~nothing, so every pool filters empty and the clock spins to tau)
     that differ only in timestep count. Per-run constants — arena
     construction, the schedule, the loop closures — cancel in the
     difference, leaving bytes per steady-state timestep. Committed as
     the "slrh/minor_alloc_bytes" gauge, which check_regression treats
     as an upper-bound budget: the committed value is 0, so any new
     per-timestep allocation fails the gate. *)
  let steady_workload =
    Workload.build
      {
        config.Config.spec with
        Spec.battery_scale = 1e-9 *. config.Config.spec.Spec.battery_scale;
      }
      ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A
  in
  let steady_run ~delta_t =
    let p = { params with Agrid_core.Slrh.delta_t; obs = Agrid_obs.Sink.noop } in
    let before = Gc.allocated_bytes () in
    let o = Agrid_core.Slrh.run p steady_workload in
    let after = Gc.allocated_bytes () in
    (o.Agrid_core.Slrh.stats.Agrid_core.Slrh.clock_steps, after -. before)
  in
  ignore (steady_run ~delta_t:config.Config.delta_t) (* warm-up *);
  let steps_a, bytes_a = steady_run ~delta_t:config.Config.delta_t in
  let steps_b, bytes_b = steady_run ~delta_t:(max 1 (config.Config.delta_t / 2)) in
  let per_step = (bytes_b -. bytes_a) /. float_of_int (max 1 (steps_b - steps_a)) in
  Agrid_obs.Sink.set_gauge sink "slrh/minor_alloc_bytes" per_step;
  Fmt.pr "steady-state allocation: %g bytes/timestep (%d vs %d steps)@." per_step
    steps_a steps_b;
  (* SoA vs boxed scoring latency, for the record: the regression gate
     pins the SoA p50 through the committed baseline plus the tightened
     "slrh/score" tolerance, so scoring cannot silently fall back to
     boxed-path speed. *)
  let score_p50 mode =
    let s = Agrid_obs.Sink.create ~stride:8 () in
    ignore
      (Agrid_core.Slrh.run { params with Agrid_core.Slrh.mode; obs = s } workload);
    match
      List.find_opt
        (fun (st : Agrid_obs.Span.stats) -> st.Agrid_obs.Span.name = "slrh/score")
        (Agrid_obs.Sink.span_stats s)
    with
    | Some st -> st.Agrid_obs.Span.p50_s
    | None -> Float.nan
  in
  let soa_p50 = score_p50 `Soa and boxed_p50 = score_p50 `Incremental in
  Fmt.pr "slrh/score p50: soa %.3gus, boxed %.3gus (%.1fx)@." (1e6 *. soa_p50)
    (1e6 *. boxed_p50)
    (boxed_p50 /. soa_p50);
  (* Sharded Monte Carlo campaign profile: a separate sink so the
     campaign's counters land in their own gated section. Counter totals
     are shard-count-invariant (pinned by the differential suite), so the
     gate compares them exactly even though the bench machine's domain
     count varies. *)
  let campaign_sink = Agrid_obs.Sink.create ~stride:8 () in
  let levels =
    Agrid_exper.Campaign.run ~obs:campaign_sink ~weights ~intensities:[ 0.0; 2.0 ]
      ~replicates:8 ~shards:2 ~seed:2004 config
  in
  Fmt.pr "campaign: %d levels, completion %s@." (List.length levels)
    (String.concat "/"
       (List.map
          (fun (l : Agrid_exper.Campaign.level) -> Fmt.str "%.2f" l.completion_rate)
          levels));
  (* Online dual-ascent profile: one adaptive-lagrange run plus one churn
     run with chance-constrained admission, in its own gated section. The
     controller's trajectory is seed-deterministic (the differential
     suite pins adaptive rescan and incremental modes bit-identical), so
     the gate compares lagrange/updates, lagrange/churn_updates and the
     final schedule counters exactly; the lambda gauges and the violation
     histogram never reach the summary (counters and spans only). A fresh
     controller per run — Adapt.t is mutable run state, not config. *)
  let lagrange_sink = Agrid_obs.Sink.create ~stride:8 () in
  let adapt_spec =
    { Agrid_core.Adapt.default_spec with Agrid_core.Adapt.prob = Some 0.9; sigma = 0.05 }
  in
  let adaptive_params () =
    {
      params with
      Agrid_core.Slrh.obs = lagrange_sink;
      adapt = Some (Agrid_core.Adapt.create adapt_spec weights);
      feas_mode = Agrid_core.Adapt.feas_mode adapt_spec;
    }
  in
  let ao = Agrid_core.Slrh.run (adaptive_params ()) workload in
  Agrid_obs.Sink.add lagrange_sink "bench/adaptive_t100"
    (Agrid_sched.Schedule.n_primary ao.Agrid_core.Slrh.schedule);
  Agrid_obs.Sink.add lagrange_sink "bench/adaptive_mapped"
    (Agrid_sched.Schedule.n_mapped ao.Agrid_core.Slrh.schedule);
  ignore
    (Agrid_core.Dynamic.run_churn (adaptive_params ()) workload
       [
         { Agrid_churn.Event.at = tau / 8; kind = Agrid_churn.Event.Leave 1 };
         { Agrid_churn.Event.at = tau / 2; kind = Agrid_churn.Event.Rejoin 1 };
       ]);
  (* Scenario-service profile: a fixed request mix through an in-process
     server, in its own gated section. Submissions happen before the
     worker pool starts (drain starts it lazily), so the queue overflow
     is deterministic; the gate pins the serve/* counters and the merged
     per-job scheduler counters exactly. Gauges and the latency histogram
     are excluded from the summary, so nothing timing-dependent lands in
     the gate. *)
  let serve_sink = Agrid_obs.Sink.create ~stride:8 () in
  let server =
    Agrid_serve.Server.create ~obs:serve_sink ~workers:2 ~queue_capacity:4 ()
  in
  let submit line = Agrid_serve.Server.submit server ~respond:ignore line in
  let job ?deadline_ms seed =
    let scenario =
      Serialize.Generated
        { seed; scale = 0.03; etc_index = 0; dag_index = 0; case = Agrid_platform.Grid.A }
    in
    let spec = { (Agrid_serve.Job.default scenario) with Agrid_serve.Job.deadline_ms } in
    Agrid_obs.Json.to_string (Agrid_serve.Codec.job_to_json spec)
  in
  submit "not json";
  submit "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}";
  submit (job 1);
  submit (job 2);
  submit (job ~deadline_ms:0. 3);
  submit (job 4);
  submit (job 5) (* fifth job overflows the capacity-4 queue: queue_full *);
  Agrid_serve.Server.drain server;
  let stats = Agrid_serve.Server.stats server in
  Fmt.pr "serve: %d requests, %d completed, %d deadline_missed, %d queue_full@."
    stats.Agrid_serve.Server.s_requests stats.Agrid_serve.Server.s_completed
    stats.Agrid_serve.Server.s_deadline_missed stats.Agrid_serve.Server.s_queue_full;
  (* Fleet-router profile: two in-process backends behind a router, in
     its own gated section. Submissions happen before the router starts
     (the dispatcher isn't running yet), so the capacity-4 admission
     overflow is deterministic; a huge probe interval means exactly the
     two connect-time probes ever run; backends deep enough for the
     in-flight cap mean saturation backpressure holds dispatches back
     instead of burning retry attempts, so fleet/retries is pinned at
     zero. Per-backend dispatch splits are timing-dependent and stay out
     of the sink (see Router), while the two backends' serve/* counters
     are deterministic in aggregate — so both backend sinks merge into
     the section sink and the gate compares everything exactly. *)
  let fleet_sink = Agrid_obs.Sink.create ~stride:8 () in
  let b0_sink = Agrid_obs.Sink.create ~stride:8 () in
  let b1_sink = Agrid_obs.Sink.create ~stride:8 () in
  let b0 = Agrid_fleet.Sim.create ~obs:b0_sink ~workers:2 ~queue_capacity:8 "b0" in
  let b1 = Agrid_fleet.Sim.create ~obs:b1_sink ~workers:2 ~queue_capacity:8 "b1" in
  let router =
    Agrid_fleet.Router.create ~obs:fleet_sink
      {
        Agrid_fleet.Router.default_config with
        Agrid_fleet.Router.queue_capacity = 4;
        inflight_cap = 4;
        probe_interval_s = 3600.;
        probe_timeout_s = 5.;
      }
      [ Agrid_fleet.Sim.spec b0; Agrid_fleet.Sim.spec b1 ]
  in
  let rsubmit line = Agrid_fleet.Router.submit router ~respond:ignore line in
  rsubmit "not json";
  rsubmit "{\"schema\":\"agrid-job/1\",\"kind\":\"health\"}";
  rsubmit (job 11);
  rsubmit (job 12);
  rsubmit (job 13);
  rsubmit (job 14);
  rsubmit (job 15) (* fifth job overflows the capacity-4 admission queue *);
  (match Agrid_fleet.Router.start router with
  | Ok () -> ()
  | Error msg -> failwith ("fleet bench: " ^ msg));
  Agrid_fleet.Router.drain router;
  let rstats = Agrid_fleet.Router.stats router in
  Fmt.pr "fleet: %d requests, %d completed, %d queue_full, %d retries, %d probes@."
    rstats.Agrid_fleet.Router.st_requests rstats.Agrid_fleet.Router.st_completed
    rstats.Agrid_fleet.Router.st_queue_full rstats.Agrid_fleet.Router.st_retries
    rstats.Agrid_fleet.Router.st_probes;
  Agrid_fleet.Sim.shutdown b0;
  Agrid_fleet.Sim.shutdown b1;
  Agrid_obs.Sink.merge_into ~into:fleet_sink b0_sink;
  Agrid_obs.Sink.merge_into ~into:fleet_sink b1_sink;
  (* Trace/window profile: a fixed event script through the trace
     collector and the rolling-window aggregator, in its own gated
     section. Event timestamps are wall-clock and stay out of the gate;
     the counts (ring occupancy, drop accounting on a deliberately tiny
     ring, exemplar retention, JSONL round-trip line count, window totals
     at explicit ~now stamps) are exact. *)
  let trace_sink = Agrid_obs.Sink.create ~stride:8 () in
  let module Trace = Agrid_obs.Trace in
  let script (tr : Trace.t) =
    for j = 0 to 9 do
      Trace.record tr ~job:j Trace.Enqueue;
      Trace.record tr ~job:j (Trace.Dispatch { backend = "b0"; attempt = 1 });
      if j mod 3 = 0 then
        Trace.record tr ~job:j (Trace.Retry { attempt = 2; delay_s = 0.01 });
      Trace.record tr ~job:j (Trace.Exec { queue_wait_s = 0.001 });
      Trace.record tr ~job:j (Trace.Respond { outcome = "result" })
    done
  in
  let tr = Trace.create ~nonce:7 ~capacity:64 ~exemplars:2 () in
  script tr;
  let tiny = Trace.create ~nonce:7 ~capacity:8 ~exemplars:2 () in
  script tiny;
  let roundtrip =
    match Trace.parse_jsonl (Trace.jsonl_lines tr) with
    | Ok lines -> List.length lines
    | Error _ -> 0
  in
  Agrid_obs.Sink.add trace_sink "trace/events" (Trace.length tr);
  Agrid_obs.Sink.add trace_sink "trace/pushed" (Trace.pushed tr);
  Agrid_obs.Sink.add trace_sink "trace/tiny_dropped" (Trace.dropped tiny);
  Agrid_obs.Sink.add trace_sink "trace/exemplars"
    (List.length (Trace.exemplars tr));
  Agrid_obs.Sink.add trace_sink "trace/roundtrip_lines" roundtrip;
  let w = Agrid_obs.Window.create ~slots:4 ~slot_s:1. () in
  let bounds = [| 0.01; 0.1; 1.0 |] in
  for i = 0 to 7 do
    let now = 0.5 +. float_of_int i in
    Agrid_obs.Window.incr w ~now "completed";
    Agrid_obs.Window.observe w ~now "latency_s" ~bounds
      (0.05 *. float_of_int (1 + (i mod 3)))
  done;
  (* slots 4 x 1 s at now = 7.5: only the writes at 4.5..7.5 survive *)
  Agrid_obs.Sink.add trace_sink "trace/window_total"
    (Agrid_obs.Window.total w ~now:7.5 "completed");
  Agrid_obs.Sink.add trace_sink "trace/window_count"
    (Agrid_obs.Window.count w ~now:7.5 "latency_s");
  Fmt.pr "trace: %d events (%d pushed), tiny ring dropped %d, %d exemplars, %d round-trip lines, window total %d@."
    (Trace.length tr) (Trace.pushed tr) (Trace.dropped tiny)
    (List.length (Trace.exemplars tr))
    roundtrip
    (Agrid_obs.Window.total w ~now:7.5 "completed");
  (* Multi-tenant traffic profile: a fixed two-tenant spec (one
     high-priority stream, one quota-capped stream) through the traffic
     engine, in its own gated section. The engine records only
     counters/gauges derived from the deterministic run — nothing
     wall-clock-dependent — so the gate compares the tenant/* counters
     exactly and the tec/reserved/fairness gauges ride along ungated
     (only slrh/-prefixed gauges are compared). *)
  let tenant_sink = Agrid_obs.Sink.create ~stride:8 () in
  let module Traffic = Agrid_tenant.Traffic in
  let module Tenant = Agrid_tenant.Tenant in
  let traffic_spec =
    Traffic.make_spec ~seed:2004 ~horizon:2000
      [
        {
          Traffic.ts_tenant = Tenant.make ~priority:Tenant.High "gold";
          ts_process = Agrid_tenant.Arrivals.Poisson 0.002;
        };
        {
          Traffic.ts_tenant =
            Tenant.make ~priority:Tenant.Low ~energy_quota:200. "bronze";
          ts_process = Agrid_tenant.Arrivals.Poisson 0.002;
        };
      ]
  in
  let to_ = Traffic.run ~obs:tenant_sink traffic_spec in
  Fmt.pr "tenant: %d apps, %d steps, %d rounds, fairness gap %.3f@."
    (List.length to_.Traffic.apps) to_.Traffic.total_steps to_.Traffic.rounds
    to_.Traffic.fairness_gap;
  let oc = open_out "BENCH_obs.json" in
  output_string oc
    (Agrid_obs.Export.summary_json ~total_seconds
       ~sections:
         [
           ("campaign", campaign_sink);
           ("lagrange", lagrange_sink);
           ("serve", serve_sink);
           ("fleet", fleet_sink);
           ("trace", trace_sink);
           ("tenant", tenant_sink);
         ]
       sink);
  close_out oc;
  Fmt.pr "wrote BENCH_obs.json (%d spans, %d metrics; campaign section: %d spans, %d metrics; lagrange section: %d metrics; serve section: %d metrics; fleet section: %d metrics; trace section: %d metrics; tenant section: %d metrics)@."
    (Agrid_obs.Sink.n_spans sink) (Agrid_obs.Sink.n_metrics sink)
    (Agrid_obs.Sink.n_spans campaign_sink)
    (Agrid_obs.Sink.n_metrics campaign_sink)
    (Agrid_obs.Sink.n_metrics lagrange_sink)
    (Agrid_obs.Sink.n_metrics serve_sink)
    (Agrid_obs.Sink.n_metrics fleet_sink)
    (Agrid_obs.Sink.n_metrics trace_sink)
    (Agrid_obs.Sink.n_metrics tenant_sink)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let bechamel_suite config =
  section "Bechamel micro-benchmarks (one kernel per experiment family)";
  let open Bechamel in
  let open Toolkit in
  let open Agrid_workload in
  let spec = config.Config.spec in
  let workload = Workload.build spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A in
  let weights = Agrid_core.Objective.make_weights ~alpha:0.3 ~beta:0.3 in
  let slrh variant () =
    let params =
      {
        (Agrid_core.Slrh.default_params ~variant weights) with
        Agrid_core.Slrh.delta_t = config.Config.delta_t;
        horizon = config.Config.horizon;
      }
    in
    ignore (Agrid_core.Slrh.run params workload)
  in
  let tests =
    [
      (* Tables 1-2 are constants; their kernel is grid construction *)
      Test.make ~name:"table12/grid_of_case"
        (Staged.stage (fun () -> ignore (Agrid_platform.Grid.of_case Agrid_platform.Grid.A)));
      (* Table 3 kernel: min-ratio scan of one ETC *)
      Test.make ~name:"table3/min_ratios"
        (Staged.stage (fun () ->
             ignore (Agrid_core.Upper_bound.min_ratios (Workload.etc workload))));
      (* Table 4 kernel: full upper-bound computation *)
      Test.make ~name:"table4/upper_bound"
        (Staged.stage (fun () ->
             ignore
               (Agrid_core.Upper_bound.compute ~etc:(Workload.etc workload)
                  ~grid:(Workload.grid workload) ~tau_seconds:spec.Spec.tau_seconds)));
      (* Figure 2 kernel: one SLRH-1 run (delta_t default) *)
      Test.make ~name:"figure2/slrh1_run" (Staged.stage (slrh Agrid_core.Slrh.V1));
      (* Figures 4-7 kernels: the three heuristics under comparison *)
      Test.make ~name:"figure4-7/slrh3_run" (Staged.stage (slrh Agrid_core.Slrh.V3));
      Test.make ~name:"figure4-7/maxmax_run"
        (Staged.stage (fun () ->
             ignore
               (Agrid_baselines.Maxmax.run (Agrid_baselines.Maxmax.default_params weights)
                  workload)));
      Test.make ~name:"calibration/greedy_mct"
        (Staged.stage (fun () -> ignore (Agrid_baselines.Greedy.run workload)));
      (* workload generation kernels *)
      Test.make ~name:"workload/build"
        (Staged.stage (fun () ->
             ignore
               (Workload.build spec ~etc_index:0 ~dag_index:0 ~case:Agrid_platform.Grid.A)));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"agrid" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ v ] -> Fmt.str "%.3f ms" (v /. 1e6)
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> Fmt.str "%.4f" r | None -> "-"
      in
      rows := [ name; est; r2 ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Fmt.pr "%a@." Table.pp
    (Table.make ~title:"Per-iteration cost (OLS on monotonic clock)"
       ~columns:[ "kernel"; "time/run"; "r^2" ] ~rows)

(* ------------------------------------------------------------------ *)

let () =
  let options = parse_options () in
  let config = config_of options in
  Fmt.pr "agrid reproduction bench — %a@." Config.pp config;
  let t0 = Unix.gettimeofday () in
  if options.obs_only then begin
    run_obs_profile config ~total_seconds:(Unix.gettimeofday () -. t0);
    exit 0
  end;
  run_tables config;
  if not options.skip_figures then begin
    run_figure2 config;
    ignore (run_evaluation_figures config);
    run_slrh2_check config
  end;
  report_tau_calibration config;
  comm_energy_share config;
  ablation_horizon config;
  ablation_feasibility_mode config;
  ablation_maxmax_tau_gate config;
  ablation_aet_sign config;
  ablation_machine_order config;
  ablation_adaptive config;
  ablation_classical_baselines config;
  ablation_robustness config;
  ablation_dynamic config;
  if not options.skip_bechamel then bechamel_suite config;
  run_obs_profile config ~total_seconds:(Unix.gettimeofday () -. t0);
  Fmt.pr "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0)
