(** Deterministic, splittable 64-bit pseudo-random number generator
    (splitmix64, Steele-Lea-Flood 2014).

    Every stochastic artefact in this repository (ETC matrices, DAGs, data
    sizes) is derived from a single integer seed through this module, so
    experiments are exactly reproducible. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s; use one split stream per independent artefact. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_unit_float : t -> float
(** Uniform float in [\[0,1)] with 53 random mantissa bits. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)]; rejection-sampled, no
    modulo bias. @raise Invalid_argument if [bound <= 0]. *)

val next_bool : t -> bool
(** Fair coin. *)

val state : t -> int64
(** Current internal state (for debugging / golden tests). *)

val pp : Format.formatter -> t -> unit
