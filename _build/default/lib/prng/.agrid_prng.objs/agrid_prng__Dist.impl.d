lib/prng/dist.ml: Array Float Fun Hashtbl Splitmix64
