lib/prng/dist.mli: Splitmix64
