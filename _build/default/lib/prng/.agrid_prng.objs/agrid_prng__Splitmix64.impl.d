lib/prng/splitmix64.ml: Fmt Int64
