(** Random variate sampling on top of {!Splitmix64}.

    Includes the Gamma sampler (Marsaglia-Tsang) that underlies the
    [AlS00]-style ETC matrix generation used throughout the paper. *)

type rng = Splitmix64.t

val uniform : rng -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. @raise Invalid_argument if [hi < lo]. *)

val standard_normal : rng -> float
(** N(0,1) via Box-Muller. *)

val normal : rng -> mean:float -> stddev:float -> float

val exponential : rng -> rate:float -> float

val gamma : rng -> shape:float -> scale:float -> float
(** Gamma with density x^(shape-1) e^(-x/scale); mean [shape *. scale]. *)

val gamma_mean_cv : rng -> mean:float -> cv:float -> float
(** Gamma parameterised by mean and coefficient of variation (the [AlS00]
    "CVB" parameterisation): shape [1/cv^2], scale [mean*cv^2]. *)

val bernoulli : rng -> p:float -> bool

val shuffle_in_place : rng -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample_distinct : rng -> n:int -> bound:int -> int array
(** [n] distinct integers uniformly from [\[0, bound)], unordered. *)
