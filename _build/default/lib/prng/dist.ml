(* Hand-rolled sampling for the distributions the workload generators need.
   The Gamma sampler is the one nontrivial algorithm here: Marsaglia & Tsang
   (2000) "A simple method for generating gamma variables", which needs only
   uniform and normal draws and is exact (rejection-based). *)

type rng = Splitmix64.t

let uniform rng ~lo ~hi =
  if not (hi >= lo) then invalid_arg "Dist.uniform: hi < lo";
  lo +. (hi -. lo) *. Splitmix64.next_unit_float rng

(* Box-Muller (polar form avoided on purpose: the basic form consumes a fixed
   number of uniforms, which keeps streams aligned across runs). *)
let standard_normal rng =
  let rec nonzero () =
    let u = Splitmix64.next_unit_float rng in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = Splitmix64.next_unit_float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let normal rng ~mean ~stddev =
  if stddev < 0. then invalid_arg "Dist.normal: negative stddev";
  mean +. (stddev *. standard_normal rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  let rec nonzero () =
    let u = Splitmix64.next_unit_float rng in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

(* Marsaglia-Tsang for shape >= 1; the shape < 1 case uses the standard
   boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1) then
   X * U^(1/shape) ~ Gamma(shape). Scale is theta (mean = shape * theta). *)
let gamma rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Dist.gamma: shape and scale must be positive";
  let rec sample_shape_ge_1 shape =
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec try_once () =
      let x = standard_normal rng in
      let v = 1. +. (c *. x) in
      if v <= 0. then try_once ()
      else
        let v = v *. v *. v in
        let u = Splitmix64.next_unit_float rng in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v
        else if u > 0. && log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then
          d *. v
        else try_once ()
    in
    try_once ()
  and sample shape =
    if shape >= 1. then sample_shape_ge_1 shape
    else
      let x = sample_shape_ge_1 (shape +. 1.) in
      let rec nonzero () =
        let u = Splitmix64.next_unit_float rng in
        if u > 0. then u else nonzero ()
      in
      x *. (nonzero () ** (1. /. shape))
  in
  scale *. sample shape

(* Gamma parameterised by mean and coefficient of variation, the form used by
   the [AlS00] ETC-generation method: shape = 1/cv^2, scale = mean * cv^2. *)
let gamma_mean_cv rng ~mean ~cv =
  if mean <= 0. then invalid_arg "Dist.gamma_mean_cv: mean must be positive";
  if cv <= 0. then invalid_arg "Dist.gamma_mean_cv: cv must be positive";
  let shape = 1. /. (cv *. cv) in
  let scale = mean *. cv *. cv in
  gamma rng ~shape ~scale

let bernoulli rng ~p =
  if p < 0. || p > 1. then invalid_arg "Dist.bernoulli: p outside [0,1]";
  Splitmix64.next_unit_float rng < p

(* Fisher-Yates shuffle, in place. *)
let shuffle_in_place rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Splitmix64.next_int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* [sample_distinct rng ~n ~bound] draws [n] distinct ints from [0, bound).
   Uses rejection for sparse draws and a partial shuffle otherwise. *)
let sample_distinct rng ~n ~bound =
  if n < 0 || n > bound then invalid_arg "Dist.sample_distinct";
  if n = 0 then [||]
  else if n * 3 < bound then begin
    let seen = Hashtbl.create (2 * n) in
    let out = Array.make n 0 in
    let filled = ref 0 in
    while !filled < n do
      let v = Splitmix64.next_int rng bound in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
  else begin
    let all = Array.init bound Fun.id in
    (* partial Fisher-Yates: the first n slots end up a uniform sample *)
    for i = 0 to n - 1 do
      let j = i + Splitmix64.next_int rng (bound - i) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Array.sub all 0 n
  end
