(* Splitmix64: the 64-bit mixing generator of Steele, Lea & Flood (2014).
   Chosen as the base generator because it is trivially seedable, splittable
   (each split stream is statistically independent for our purposes) and
   exactly reproducible across platforms — every experiment in this
   repository is keyed by a single integer seed. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* The 64-bit finalizer from MurmurHash3, with splitmix64's constants. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* A derived generator whose starting point is decorrelated from [t] by an
   extra mixing round; used to give every (etc, dag, machine, ...) index its
   own independent stream. *)
let split t =
  let s = next_int64 t in
  { state = mix (Int64.logxor s 0x2545F4914F6CDD1DL) }

(* 53-bit mantissa float in [0,1). *)
let next_unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

(* Uniform int in [0, bound) by rejection over 62 usable bits, which avoids
   modulo bias for every bound representable in an OCaml int. *)
let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound must be positive";
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = mask - (mask mod bound) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land mask in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

let state t = t.state

let pp ppf t = Fmt.pf ppf "splitmix64<%Lx>" t.state
