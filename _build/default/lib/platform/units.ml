(* Time in the simulator is measured in integer clock cycles; the paper's
   clock cycle represents 0.1 s. Keeping integer cycles everywhere in the
   schedule engine removes float-comparison hazards from interval logic;
   energies remain floats. *)

let cycles_per_second = 10

let seconds_of_cycles c = float_of_int c /. float_of_int cycles_per_second

(* Round up: a duration of any positive length occupies at least 1 cycle. *)
let cycles_of_seconds s =
  if s < 0. then invalid_arg "Units.cycles_of_seconds: negative duration";
  if s = 0. then 0
  else max 1 (int_of_float (Float.ceil (s *. float_of_int cycles_per_second)))

let pp_cycles ppf c = Fmt.pf ppf "%d cy (%.1f s)" c (seconds_of_cycles c)
