(** Point-to-point communication model: the time to move one bit from
    machine [i] to [j] is [CMT(i,j) = 1 / min(BW(i), BW(j))]; same-machine
    transfers are free and instantaneous (paper Section III). *)

val cmt : Grid.t -> src:int -> dst:int -> float
(** Seconds per bit; 0 when [src = dst]. *)

val transfer_seconds : Grid.t -> src:int -> dst:int -> bits:float -> float
val transfer_cycles : Grid.t -> src:int -> dst:int -> bits:float -> int

val transfer_energy : Grid.t -> src:int -> dst:int -> bits:float -> float
(** Billed to the sender over the integer-cycle duration; receiving is
    free (assumption (a)). *)

val worst_case_cycles : Grid.t -> bits:float -> int
val worst_case_energy : Grid.t -> src:int -> bits:float -> float
(** Cost if the recipient sat on the grid's lowest-bandwidth link — the
    feasibility check's conservative bound (paper Section IV). *)
