(* Point-to-point communication model. The paper defines the time to
   transmit one bit from machine i to machine j as
       CMT(i, j) = 1 / min(BW(i), BW(j))
   Same-machine transfers are free and instantaneous (assumption (a)). *)

let cmt grid ~src ~dst =
  if src = dst then 0.
  else begin
    let bw_src = (Grid.machine grid src).Machine.bandwidth in
    let bw_dst = (Grid.machine grid dst).Machine.bandwidth in
    1. /. Float.min bw_src bw_dst
  end

let transfer_seconds grid ~src ~dst ~bits =
  if bits < 0. then invalid_arg "Comm.transfer_seconds: negative size";
  bits *. cmt grid ~src ~dst

let transfer_cycles grid ~src ~dst ~bits =
  if src = dst then 0
  else Units.cycles_of_seconds (transfer_seconds grid ~src ~dst ~bits)

(* Energy billed to the sender for occupying its transmitter for the whole
   (integer-cycle) duration of the transfer; receiving costs nothing. *)
let transfer_energy grid ~src ~dst ~bits =
  if src = dst then 0.
  else begin
    let cycles = transfer_cycles grid ~src ~dst ~bits in
    Machine.transmit_energy (Grid.machine grid src)
      ~seconds:(Units.seconds_of_cycles cycles)
  end

(* Worst-case transfer cost out of [src]: the recipient is assumed to sit on
   the lowest-bandwidth link in the grid. Used by the SLRH feasibility
   check, which cannot know where children will be mapped. *)
let worst_case_cycles grid ~bits =
  Units.cycles_of_seconds (bits /. Grid.min_bandwidth grid)

let worst_case_energy grid ~src ~bits =
  let cycles = worst_case_cycles grid ~bits in
  Machine.transmit_energy (Grid.machine grid src)
    ~seconds:(Units.seconds_of_cycles cycles)
