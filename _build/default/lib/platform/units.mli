(** Time units: the simulator counts integer clock cycles; one cycle
    represents 0.1 s (paper Section IV). *)

val cycles_per_second : int

val seconds_of_cycles : int -> float

val cycles_of_seconds : float -> int
(** Rounds up; any positive duration occupies at least one cycle.
    @raise Invalid_argument on negative input. *)

val pp_cycles : Format.formatter -> int -> unit
