lib/platform/grid.mli: Format Machine
