lib/platform/machine.ml: Fmt
