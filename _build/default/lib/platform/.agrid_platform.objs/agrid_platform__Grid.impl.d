lib/platform/grid.ml: Array Float Fmt List Machine
