lib/platform/units.ml: Float Fmt
