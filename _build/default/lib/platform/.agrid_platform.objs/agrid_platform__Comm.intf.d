lib/platform/comm.mli: Grid
