lib/platform/comm.ml: Float Grid Machine Units
