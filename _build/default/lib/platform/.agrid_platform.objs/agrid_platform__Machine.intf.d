lib/platform/machine.mli: Format
