lib/platform/units.mli: Format
