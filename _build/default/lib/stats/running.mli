(** Welford single-pass mean/variance accumulator with extrema; mergeable for
    parallel reductions. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_all : t -> float array -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val merge : t -> t -> t
(** Combine two accumulators (Chan et al.); inputs are not mutated. *)

val to_summary : t -> Descriptive.summary
(** Median is [nan] (not tracked online). *)
