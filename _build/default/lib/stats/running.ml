(* Welford's online algorithm: single-pass mean/variance with extrema.
   Used by long sweeps that should not retain every sample. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  let delta2 = x -. t.mean in
  t.m2 <- t.m2 +. (delta *. delta2);
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_all t xs = Array.iter (add t) xs

let count t = t.n

let mean t =
  if t.n = 0 then invalid_arg "Running.mean: no samples";
  t.mean

let variance t =
  if t.n = 0 then invalid_arg "Running.variance: no samples";
  if t.n = 1 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Running.min: no samples";
  t.min

let max t =
  if t.n = 0 then invalid_arg "Running.max: no samples";
  t.max

(* Combine two accumulators (Chan et al. parallel variance update); the
   domain-pool reductions merge per-worker accumulators with this. *)
let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2; min = b.min; max = b.max }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2; min = a.min; max = a.max }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let fn = float_of_int n in
    let delta = b.mean -. a.mean in
    {
      n;
      mean = a.mean +. (delta *. fb /. fn);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn);
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let to_summary t : Descriptive.summary =
  {
    n = t.n;
    mean = mean t;
    stddev = stddev t;
    min = min t;
    max = max t;
    median = Float.nan (* not tracked online *);
  }
