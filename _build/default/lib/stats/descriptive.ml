(* Descriptive statistics over float arrays. All functions raise
   [Invalid_argument] on empty input rather than returning NaN, so that an
   empty experiment result set fails loudly. *)

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  let sum = Array.fold_left ( +. ) 0. xs in
  sum /. float_of_int (Array.length xs)

(* Two-pass variance: numerically stable enough for experiment aggregation
   and simpler to audit than Welford here (Running provides the online
   form). Sample variance (n-1 denominator); variance of a singleton is 0. *)
let variance xs =
  check_nonempty "Descriptive.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "Descriptive.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "Descriptive.max" xs;
  Array.fold_left Float.max xs.(0) xs

let sum xs = Array.fold_left ( +. ) 0. xs

(* Linear-interpolation quantile (type 7, the numpy/R default).
   [q] must lie in [0,1]. *)
let quantile xs q =
  check_nonempty "Descriptive.quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  check_nonempty "Descriptive.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs;
    median = median xs;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n s.mean
    s.stddev s.min s.median s.max

let of_int_array xs = Array.map float_of_int xs
