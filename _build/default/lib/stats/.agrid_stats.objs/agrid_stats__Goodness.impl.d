lib/stats/goodness.ml: Array Float
