lib/stats/histogram.ml: Array Fmt Stdlib String
