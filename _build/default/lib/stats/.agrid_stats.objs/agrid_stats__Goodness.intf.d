lib/stats/goodness.mli:
