lib/stats/running.ml: Array Descriptive Float
