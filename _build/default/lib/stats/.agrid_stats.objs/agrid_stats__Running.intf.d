lib/stats/running.mli: Descriptive
