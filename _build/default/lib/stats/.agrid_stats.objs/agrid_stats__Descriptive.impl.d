lib/stats/descriptive.ml: Array Float Fmt Stdlib
