(* Fixed-bin histogram over a closed range; values outside the range are
   clamped into the edge bins so sweep outputs never silently vanish. *)

type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let bin_of t x =
  let b =
    int_of_float (float_of_int (bins t) *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  if b < 0 then 0 else if b >= bins t then bins t - 1 else b

let add t x =
  let b = bin_of t x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let count t b = t.counts.(b)
let total t = t.total

let bin_lo t b = t.lo +. (float_of_int b *. (t.hi -. t.lo) /. float_of_int (bins t))
let bin_hi t b = bin_lo t (b + 1)

(* ASCII rendering used by the CLI `--histogram` flags: one row per bin with
   a proportional bar. *)
let pp ?(width = 40) ppf t =
  let max_count = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun b c ->
      let bar = c * width / max_count in
      Fmt.pf ppf "[%8.3g, %8.3g) %6d %s@." (bin_lo t b) (bin_hi t b) c
        (String.make bar '#'))
    t.counts
