(* Goodness-of-fit tests used to validate the hand-rolled samplers:
   one-sample Kolmogorov-Smirnov against an arbitrary CDF and a chi-square
   uniformity test. These are TEST utilities with test-grade accuracy: the
   KS p-value uses the standard asymptotic series, the chi-square
   comparison uses the Wilson-Hilferty normal approximation. *)

(* Empirical KS statistic D_n = sup |F_n(x) - F(x)| for a sorted sample. *)
let ks_statistic ~cdf sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Goodness.ks_statistic: empty sample";
  let sorted = Array.copy sample in
  Array.sort Float.compare sorted;
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let fn_hi = float_of_int (i + 1) /. float_of_int n in
      let fn_lo = float_of_int i /. float_of_int n in
      d := Float.max !d (Float.max (Float.abs (fn_hi -. f)) (Float.abs (f -. fn_lo))))
    sorted;
  !d

(* Asymptotic KS survival function: P(sqrt(n) D > x) ~ 2 sum (-1)^{k-1}
   exp(-2 k^2 x^2); adequate for the sample sizes the tests use (>= 500). *)
let ks_p_value ~n d =
  if n <= 0 then invalid_arg "Goodness.ks_p_value: n must be positive";
  let x = (sqrt (float_of_int n) +. 0.12 +. (0.11 /. sqrt (float_of_int n))) *. d in
  let rec series k acc =
    if k > 100 then acc
    else begin
      let term =
        (if k mod 2 = 1 then 2. else -2.)
        *. exp (-2. *. float_of_int (k * k) *. x *. x)
      in
      if Float.abs term < 1e-12 then acc +. term else series (k + 1) (acc +. term)
    end
  in
  Float.max 0. (Float.min 1. (series 1 0.))

let ks_test ~cdf sample =
  let d = ks_statistic ~cdf sample in
  (d, ks_p_value ~n:(Array.length sample) d)

(* Regularised lower incomplete gamma via series/continued fraction would
   be overkill here; the chi-square test instead uses the Wilson-Hilferty
   cube-root normal approximation, good to ~1e-3 for df >= 3. *)
let chi_square_survival ~df x =
  if df <= 0 then invalid_arg "Goodness.chi_square_survival: df must be positive";
  if x <= 0. then 1.
  else begin
    let k = float_of_int df in
    let z =
      ((x /. k) ** (1. /. 3.)) -. (1. -. (2. /. (9. *. k)))
      |> fun v -> v /. sqrt (2. /. (9. *. k))
    in
    (* standard normal survival via erfc *)
    0.5 *. Float.erfc (z /. sqrt 2.)
  end

(* Chi-square statistic of observed counts against expected proportions. *)
let chi_square_statistic ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Goodness.chi_square_statistic: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      if e <= 0. then invalid_arg "Goodness.chi_square_statistic: nonpositive expectation";
      let d = float_of_int o -. e in
      acc := !acc +. (d *. d /. e))
    observed;
  !acc

let chi_square_uniform_test counts =
  let k = Array.length counts in
  if k < 2 then invalid_arg "Goodness.chi_square_uniform_test: need >= 2 bins";
  let total = Array.fold_left ( + ) 0 counts in
  let expected = Array.make k (float_of_int total /. float_of_int k) in
  let stat = chi_square_statistic ~observed:counts ~expected in
  (stat, chi_square_survival ~df:(k - 1) stat)

(* Reference CDFs for the samplers under test. *)
let uniform_cdf ~lo ~hi x =
  if x <= lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo)

let exponential_cdf ~rate x = if x <= 0. then 0. else 1. -. exp (-.rate *. x)

let normal_cdf ~mean ~stddev x =
  0.5 *. Float.erfc ((mean -. x) /. (stddev *. sqrt 2.))
