(** Descriptive statistics over float arrays (empty input raises
    [Invalid_argument] — experiment aggregation should fail loudly). *)

val mean : float array -> float
val variance : float array -> float
(** Sample variance (n-1 denominator); 0 for a singleton. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float

val quantile : float array -> float -> float
(** Linear-interpolation quantile (numpy/R type 7). *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val of_int_array : int array -> float array
