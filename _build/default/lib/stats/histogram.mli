(** Fixed-bin histogram over [\[lo, hi\]]; out-of-range samples clamp into the
    edge bins. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
val bins : t -> int
val bin_of : t -> float -> int
val add : t -> float -> unit
val count : t -> int -> int
val total : t -> int
val bin_lo : t -> int -> float
val bin_hi : t -> int -> float
val pp : ?width:int -> Format.formatter -> t -> unit
