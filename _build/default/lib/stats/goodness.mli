(** Goodness-of-fit tests (test-grade accuracy) used to validate the
    hand-rolled samplers: one-sample Kolmogorov-Smirnov and chi-square
    uniformity. *)

val ks_statistic : cdf:(float -> float) -> float array -> float
(** Empirical [D_n = sup |F_n - F|]. @raise Invalid_argument on empty. *)

val ks_p_value : n:int -> float -> float
(** Asymptotic p-value of a KS statistic at sample size [n]. *)

val ks_test : cdf:(float -> float) -> float array -> float * float
(** [(statistic, p_value)]. *)

val chi_square_statistic : observed:int array -> expected:float array -> float
val chi_square_survival : df:int -> float -> float
(** Wilson-Hilferty approximation; good to ~1e-3 for [df >= 3]. *)

val chi_square_uniform_test : int array -> float * float
(** [(statistic, p_value)] for equal expected bin counts. *)

val uniform_cdf : lo:float -> hi:float -> float -> float
val exponential_cdf : rate:float -> float -> float
val normal_cdf : mean:float -> stddev:float -> float -> float
