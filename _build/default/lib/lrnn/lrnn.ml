(* Lagrangian-relaxation static mapper, in the lineage the paper builds on:
   Luh & Hoitomt's Lagrangian relaxation with list-scheduling repair
   [LuH93], the Lagrangian-relaxation "neural network" multiplier iteration
   of Luh, Zhao & Thakur [LuZ00], and the authors' own unpublished static
   mapper [CaS03] that the SLRH paper cites as its starting point
   (Section II).

   The static mapping problem: choose a (machine, version) pair for every
   subtask, maximising the number of primary versions subject to
   per-machine energy budgets B(j) and the deadline tau. Relaxing the
   coupling constraints with nonnegative multipliers gives

     L(x, lambda, nu) =  sum_i primary(x_i)
                       - sum_j lambda_j (E_j(x) - B_j)
                       - sum_j nu_j     (T_j(x) - tau)

   where E_j / T_j are machine j's total assigned energy / busy time (the
   per-machine time load is the classical surrogate for the makespan
   constraint; precedence is ignored in the relaxation and restored by the
   repair phase, exactly as in [LuH93]). For fixed multipliers the problem
   decouples into one trivial argmax per subtask; the multipliers follow a
   projected subgradient ascent on the dual ("neural network" update in
   [LuZ00]'s terminology). Because the relaxed solution is usually
   infeasible, a final list-scheduling pass builds a real schedule from the
   chosen pairs and, if energy or time is still violated, greedily demotes
   the costliest primaries to secondaries. *)

open Agrid_workload
open Agrid_sched
open Agrid_platform

type params = {
  iterations : int;  (** subgradient steps (default 60) *)
  eta : float;  (** initial multiplier step size (default 0.5) *)
  repair_demotions : int;
      (** max primaries demoted to secondary during repair (default: all) *)
}

let default_params = { iterations = 60; eta = 0.5; repair_demotions = max_int }

type dual_point = {
  iteration : int;
  dual_value : float;
  n_primary : int;  (** primaries chosen by the relaxed solution *)
  max_energy_violation : float;  (** relative, over machines *)
  max_time_violation : float;
}

type outcome = {
  schedule : Schedule.t;
  completed : bool;
  demoted : int;  (** primaries demoted during repair *)
  dual_bound : float;
      (** best dual value seen: an upper bound on the optimal T100 of the
          relaxed (precedence-free) problem *)
  dual_trace : dual_point list;
  wall_seconds : float;
}

(* Energy and busy-time of one (task, machine, version) choice. *)
let cost wl ~task ~machine ~version =
  let cycles = Workload.exec_cycles wl ~task ~machine ~version in
  let energy = Workload.exec_energy wl ~task ~machine ~version in
  (energy, float_of_int cycles)

(* Per-task argmax of the relaxed objective for fixed multipliers. *)
let relaxed_choice wl ~lambda ~nu ~task =
  let m = Workload.n_machines wl in
  let best = ref None in
  for machine = 0 to m - 1 do
    List.iter
      (fun version ->
        let energy, time = cost wl ~task ~machine ~version in
        let reward = if Version.is_primary version then 1. else 0. in
        let value = reward -. (lambda.(machine) *. energy) -. (nu.(machine) *. time) in
        match !best with
        | Some (_, _, v) when v >= value -> ()
        | _ -> best := Some (machine, version, value))
      Version.all
  done;
  match !best with Some c -> c | None -> assert false (* m >= 1 *)

(* One dual evaluation: relaxed assignment, its loads, and the dual value
   L(x*, lambda, nu). *)
let dual_step wl ~lambda ~nu =
  let n = Workload.n_tasks wl and m = Workload.n_machines wl in
  let grid = Workload.grid wl in
  let tau = float_of_int (Workload.tau wl) in
  let assignment = Array.make n (0, Version.Secondary) in
  let energy_load = Array.make m 0. and time_load = Array.make m 0. in
  let primal_reward = ref 0. and relaxed_value = ref 0. in
  for task = 0 to n - 1 do
    let machine, version, value = relaxed_choice wl ~lambda ~nu ~task in
    assignment.(task) <- (machine, version);
    let energy, time = cost wl ~task ~machine ~version in
    energy_load.(machine) <- energy_load.(machine) +. energy;
    time_load.(machine) <- time_load.(machine) +. time;
    if Version.is_primary version then primal_reward := !primal_reward +. 1.;
    relaxed_value := !relaxed_value +. value
  done;
  (* dual value: relaxed sum plus the constant multiplier terms *)
  let dual = ref !relaxed_value in
  for j = 0 to m - 1 do
    let b = (Grid.machine grid j).Agrid_platform.Machine.battery in
    dual := !dual +. (lambda.(j) *. b) +. (nu.(j) *. tau)
  done;
  (assignment, energy_load, time_load, !dual, int_of_float !primal_reward)

(* Projected subgradient ascent on (lambda, nu). *)
let optimise params wl =
  let m = Workload.n_machines wl in
  let grid = Workload.grid wl in
  let tau = float_of_int (Workload.tau wl) in
  let lambda = Array.make m 0. and nu = Array.make m 0. in
  let trace = ref [] in
  let last_assignment = ref None and best_dual = ref infinity in
  for k = 0 to params.iterations - 1 do
    let assignment, energy_load, time_load, dual, n_primary =
      dual_step wl ~lambda ~nu
    in
    (* weak duality: the smallest dual value seen is the tightest upper
       bound on the primal optimum. The repair candidate is the FINAL
       iteration's assignment — its multipliers have absorbed the
       constraint pressure (early iterations, multipliers near 0, pick
       all-primary assignments that the repair would shred). *)
    if dual < !best_dual then best_dual := dual;
    last_assignment := Some assignment;
    let step = params.eta /. sqrt (float_of_int (k + 1)) in
    let max_ev = ref 0. and max_tv = ref 0. in
    for j = 0 to m - 1 do
      let b = (Grid.machine grid j).Agrid_platform.Machine.battery in
      let energy_violation = (energy_load.(j) -. b) /. b in
      let time_violation = (time_load.(j) -. tau) /. tau in
      if energy_violation > !max_ev then max_ev := energy_violation;
      if time_violation > !max_tv then max_tv := time_violation;
      lambda.(j) <- Float.max 0. (lambda.(j) +. (step *. energy_violation /. b));
      nu.(j) <- Float.max 0. (nu.(j) +. (step *. time_violation /. tau))
    done;
    trace :=
      {
        iteration = k;
        dual_value = dual;
        n_primary;
        max_energy_violation = !max_ev;
        max_time_violation = !max_tv;
      }
      :: !trace
  done;
  let assignment =
    match !last_assignment with Some a -> a | None -> assert false (* iterations >= 1 *)
  in
  (assignment, !best_dual, List.rev !trace)

(* Repair phase 1 ([LuH93]): realise the relaxed assignment as an actual
   schedule by list-scheduling in topological order with the chosen
   (machine, version) pairs — precedence, channels and machine exclusivity
   come back here. *)
let realise wl assignment =
  let sched = Schedule.create wl in
  Array.iter
    (fun task ->
      let machine, version = assignment.(task) in
      let plan = Schedule.plan sched ~task ~version ~machine ~not_before:0 in
      Schedule.commit sched plan)
    (Agrid_dag.Dag.topological_order (Workload.dag wl));
  sched

(* Repair phase 2: while the realised schedule violates energy or time,
   demote the primary with the largest (energy + time) footprint on an
   overloaded resource and rebuild. Terminates: each pass removes one
   primary, and an all-secondary assignment is the fallback. *)
let violations wl sched =
  let m = Workload.n_machines wl in
  let grid = Workload.grid wl in
  let over_energy = ref [] in
  for j = 0 to m - 1 do
    if Schedule.energy_used sched j > (Grid.machine grid j).Agrid_platform.Machine.battery
    then over_energy := j :: !over_energy
  done;
  let over_time = Schedule.aet sched > Workload.tau wl in
  (!over_energy, over_time)

let demote_candidate wl sched ~over_energy ~over_time assignment =
  let worst = ref None in
  Array.iter
    (fun (p : Schedule.placement) ->
      let machine, version = assignment.(p.Schedule.task) in
      if Version.is_primary version then begin
        let relevant =
          List.mem machine over_energy
          || (over_time && p.Schedule.stop = Schedule.aet sched)
          || (over_time && over_energy = [])
        in
        if relevant then begin
          let energy, time = cost wl ~task:p.Schedule.task ~machine ~version in
          let footprint = energy +. (time /. float_of_int (Workload.tau wl)) in
          match !worst with
          | Some (_, f) when f >= footprint -> ()
          | _ -> worst := Some (p.Schedule.task, footprint)
        end
      end)
    (Schedule.placements sched);
  Option.map fst !worst

let run ?(params = default_params) wl =
  if params.iterations <= 0 then invalid_arg "Lrnn.run: iterations must be positive";
  let t0 = Unix.gettimeofday () in
  let assignment, dual_bound, dual_trace = optimise params wl in
  let assignment = Array.copy assignment in
  let demoted = ref 0 in
  let sched = ref (realise wl assignment) in
  let continue_ = ref true in
  while !continue_ do
    let over_energy, over_time = violations wl !sched in
    if over_energy = [] && not over_time then continue_ := false
    else if !demoted >= params.repair_demotions then continue_ := false
    else begin
      match demote_candidate wl !sched ~over_energy ~over_time assignment with
      | None -> continue_ := false (* nothing left to demote *)
      | Some task ->
          let machine, _ = assignment.(task) in
          assignment.(task) <- (machine, Version.Secondary);
          incr demoted;
          sched := realise wl assignment
    end
  done;
  {
    schedule = !sched;
    completed = Schedule.all_mapped !sched;
    demoted = !demoted;
    dual_bound;
    dual_trace;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let pp_dual_point ppf p =
  Fmt.pf ppf "it=%d dual=%.3f primaries=%d ev=%.3f tv=%.3f" p.iteration
    p.dual_value p.n_primary p.max_energy_violation p.max_time_violation

let pp_outcome ppf o =
  Fmt.pf ppf "%a completed=%b demoted=%d wall=%.3fs" Schedule.pp o.schedule
    o.completed o.demoted o.wall_seconds
