(** Lagrangian-relaxation static mapper with subgradient multiplier
    iteration and list-scheduling repair — the [LuH93]/[LuZ00]/[CaS03]
    lineage the paper builds SLRH on (Section II).

    Energy and per-machine time-load constraints are relaxed with
    multipliers; per-task subproblems decouple; multipliers follow
    projected subgradient ascent; the best relaxed assignment is realised
    by list scheduling and repaired by demoting costly primaries until the
    schedule is feasible. *)

open Agrid_sched

type params = {
  iterations : int;  (** subgradient steps (default 60) *)
  eta : float;  (** initial step size (default 0.5) *)
  repair_demotions : int;  (** cap on repair demotions (default: unlimited) *)
}

val default_params : params

type dual_point = {
  iteration : int;
  dual_value : float;  (** upper bound on the primal optimum (weak duality) *)
  n_primary : int;
  max_energy_violation : float;  (** relative, over machines *)
  max_time_violation : float;
}

type outcome = {
  schedule : Schedule.t;
  completed : bool;
  demoted : int;
  dual_bound : float;
      (** best dual value: upper bound on the relaxed problem's optimum *)
  dual_trace : dual_point list;
  wall_seconds : float;
}

val run : ?params:params -> Agrid_workload.Workload.t -> outcome
(** @raise Invalid_argument when [iterations <= 0]. *)

val pp_dual_point : Format.formatter -> dual_point -> unit
val pp_outcome : Format.formatter -> outcome -> unit
