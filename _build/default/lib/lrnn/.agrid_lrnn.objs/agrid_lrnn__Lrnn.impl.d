lib/lrnn/lrnn.ml: Agrid_dag Agrid_platform Agrid_sched Agrid_workload Array Float Fmt Grid List Option Schedule Unix Version Workload
