lib/lrnn/lrnn.mli: Agrid_sched Agrid_workload Format Schedule
