lib/par/parallel.ml: Array Atomic Domain Fun List
