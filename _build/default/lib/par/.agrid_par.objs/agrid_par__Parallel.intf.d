lib/par/parallel.mli:
