(** Fork-join parallel iteration on OCaml 5 domains with dynamic
    (work-pulling) scheduling. Hand-rolled substrate: domainslib is not
    available in this environment.

    [?domains] caps the total number of domains used, including the calling
    one; the default is [Domain.recommended_domain_count ()]. *)

exception Worker_failure of exn
(** Wraps the first exception raised by any worker; raised only after all
    worker domains have been joined. *)

val default_domains : unit -> int

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
val iter : ?domains:int -> ('a -> unit) -> 'a array -> unit
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

val map_reduce :
  ?domains:int ->
  map:('a -> 'b) ->
  fold:('c -> 'b -> 'c) ->
  init:'c ->
  'a array ->
  'c
(** Parallel map, then a sequential left fold over the results in index
    order (so the fold is deterministic). *)
