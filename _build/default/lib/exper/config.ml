(* Experiment-suite configuration. The paper's full study is |T| = 1024
   with 10 ETC matrices x 10 DAGs = 100 scenarios per case and an
   exhaustive per-scenario weight search — hours of compute. The default
   runs the identical pipeline proportionally scaled (see Spec.scaled);
   [full] is the paper-scale configuration. *)

open Agrid_workload

type t = {
  spec : Spec.t;
  n_etcs : int;
  n_dags : int;
  delta_t : int;  (** SLRH timestep (paper: 10 cycles) *)
  horizon : int;  (** SLRH receding horizon (paper: 100 cycles) *)
  coarse_step : float;
  fine_step : float;
  fine_radius : float;
  domains : int option;  (** worker domains for scenario parallelism *)
}

let default ?(seed = 2004) () =
  {
    spec = Spec.scaled ~seed ~factor:0.125 ();
    n_etcs = 3;
    n_dags = 3;
    delta_t = 10;
    horizon = 100;
    coarse_step = 0.1;
    fine_step = 0.02;
    fine_radius = 0.06;
    domains = None;
  }

(* Paper scale: |T|=1024, 10x10 scenarios, full refinement radius. *)
let full ?(seed = 2004) () =
  {
    spec = Spec.paper_scale ~seed ();
    n_etcs = 10;
    n_dags = 10;
    delta_t = 10;
    horizon = 100;
    coarse_step = 0.1;
    fine_step = 0.02;
    fine_radius = 0.1;
    domains = None;
  }

(* A minimal smoke configuration for tests: tiny scenario count. *)
let smoke ?(seed = 2004) () =
  {
    (default ~seed ()) with
    spec = Spec.scaled ~seed ~factor:(48. /. 1024.) ();
    n_etcs = 2;
    n_dags = 1;
    coarse_step = 0.2;
    fine_step = 0.1;
    fine_radius = 0.1;
  }

let scenarios t =
  List.concat_map
    (fun etc_index -> List.init t.n_dags (fun dag_index -> (etc_index, dag_index)))
    (List.init t.n_etcs Fun.id)

let pp ppf t =
  Fmt.pf ppf "config<%a %dx%d scenarios dt=%d H=%d>" Spec.pp t.spec t.n_etcs
    t.n_dags t.delta_t t.horizon
