(** The shared evaluation sweep behind paper Figures 3-7: per (case,
    heuristic, scenario), the paper's two-stage weight search plus that
    scenario's upper bound. Computed once; the figures are projections. *)

open Agrid_platform
open Agrid_tuner

type heuristic = Slrh1 | Slrh3 | Maxmax

val all_heuristics : heuristic list
val heuristic_name : heuristic -> string
val runner_of : Config.t -> heuristic -> Weight_search.runner

type tuned = {
  case : Grid.case;
  heuristic : heuristic;
  etc_index : int;
  dag_index : int;
  best : Weight_search.run_result option;
      (** best feasible run; [None] when no weight point was feasible *)
  upper_bound : int;
}

type t = {
  config : Config.t;
  tuned : tuned list;
  upper_bounds : (Grid.case * int * int) list;  (** case, etc_index, bound *)
}

val upper_bound_for : Config.t -> case:Grid.case -> etc_index:int -> int

val tune_one :
  Config.t ->
  case:Grid.case ->
  heuristic:heuristic ->
  etc_index:int ->
  dag_index:int ->
  upper_bound:int ->
  tuned

val run :
  ?heuristics:heuristic list -> ?on_progress:(int -> unit) -> Config.t -> t
(** Full sweep, scenario-parallel over the configured domains. *)

val select : t -> case:Grid.case -> heuristic:heuristic -> tuned list

type aggregate = {
  n_scenarios : int;
  n_failed : int;  (** scenarios with no feasible weight point *)
  mean_t100 : float;
  mean_t100_over_ub : float;
  mean_wall_seconds : float;
  mean_t100_per_second : float;
}

val aggregate : t -> case:Grid.case -> heuristic:heuristic -> aggregate
(** Means are [nan] when every scenario failed. *)

type weight_stats = {
  n : int;
  alpha_mean : float;
  alpha_min : float;
  alpha_max : float;
  beta_mean : float;
  beta_min : float;
  beta_max : float;
}

val weight_stats : t -> case:Grid.case -> heuristic:heuristic -> weight_stats option
(** Figure 3's statistic; [None] when no scenario had a feasible best. *)
