(* The shared evaluation sweep behind Figures 3-7: for every (case,
   heuristic, ETC, DAG) combination, run the paper's two-stage weight
   search and keep the best feasible result together with that scenario's
   upper bound. Figures 3-7 are different projections of this one dataset,
   so it is computed once and reused. *)

open Agrid_platform
open Agrid_workload
open Agrid_tuner

type heuristic = Slrh1 | Slrh3 | Maxmax

let all_heuristics = [ Slrh1; Slrh3; Maxmax ]

let heuristic_name = function
  | Slrh1 -> "SLRH-1"
  | Slrh3 -> "SLRH-3"
  | Maxmax -> "Max-Max"

let runner_of (config : Config.t) = function
  | Slrh1 ->
      Weight_search.slrh_runner ~delta_t:config.Config.delta_t
        ~horizon:config.Config.horizon Agrid_core.Slrh.V1
  | Slrh3 ->
      Weight_search.slrh_runner ~delta_t:config.Config.delta_t
        ~horizon:config.Config.horizon Agrid_core.Slrh.V3
  | Maxmax -> Weight_search.maxmax_runner

type tuned = {
  case : Grid.case;
  heuristic : heuristic;
  etc_index : int;
  dag_index : int;
  best : Weight_search.run_result option;
      (** best feasible run; None when no weight point was feasible *)
  upper_bound : int;
}

type t = {
  config : Config.t;
  tuned : tuned list;
  upper_bounds : (Grid.case * int * int) list; (* case, etc_index, bound *)
}

let upper_bound_for (config : Config.t) ~case ~etc_index =
  let etc_full = Workload.etc_for_spec config.Config.spec ~etc_index in
  let etc = Agrid_etc.Etc.for_case etc_full case in
  let grid = Grid.of_case ~battery_scale:config.Config.spec.Spec.battery_scale case in
  (Agrid_core.Upper_bound.compute ~etc ~grid
     ~tau_seconds:config.Config.spec.Spec.tau_seconds)
    .Agrid_core.Upper_bound.t100_bound

let tune_one (config : Config.t) ~case ~heuristic ~etc_index ~dag_index ~upper_bound =
  let workload = Workload.build config.Config.spec ~etc_index ~dag_index ~case in
  let result =
    Weight_search.search ~coarse_step:config.Config.coarse_step
      ~fine_step:config.Config.fine_step ~fine_radius:config.Config.fine_radius
      (runner_of config heuristic) workload
  in
  { case; heuristic; etc_index; dag_index; best = result.Weight_search.best; upper_bound }

(* Full sweep: cases x heuristics x scenarios, scenario-parallel. *)
let run ?(heuristics = all_heuristics) ?(on_progress = fun _ -> ()) (config : Config.t) =
  let upper_bounds =
    List.concat_map
      (fun case ->
        List.init config.Config.n_etcs (fun etc_index ->
            (case, etc_index, upper_bound_for config ~case ~etc_index)))
      Grid.all_cases
  in
  let ub_of case etc_index =
    let _, _, b =
      List.find (fun (c, e, _) -> c = case && e = etc_index) upper_bounds
    in
    b
  in
  let jobs =
    List.concat_map
      (fun case ->
        List.concat_map
          (fun heuristic ->
            List.map
              (fun (etc_index, dag_index) -> (case, heuristic, etc_index, dag_index))
              (Config.scenarios config))
          heuristics)
      Grid.all_cases
    |> Array.of_list
  in
  let done_count = Atomic.make 0 in
  let tuned =
    Agrid_par.Parallel.map ?domains:config.Config.domains
      (fun (case, heuristic, etc_index, dag_index) ->
        let r =
          tune_one config ~case ~heuristic ~etc_index ~dag_index
            ~upper_bound:(ub_of case etc_index)
        in
        on_progress (Atomic.fetch_and_add done_count 1 + 1);
        r)
      jobs
  in
  { config; tuned = Array.to_list tuned; upper_bounds }

let select t ~case ~heuristic =
  List.filter (fun r -> r.case = case && r.heuristic = heuristic) t.tuned

(* Per-(case, heuristic) aggregates over scenarios with a feasible best.
   [n_failed] counts scenarios where no weight point was feasible. *)
type aggregate = {
  n_scenarios : int;
  n_failed : int;
  mean_t100 : float;
  mean_t100_over_ub : float;
  mean_wall_seconds : float;
  mean_t100_per_second : float;
}

let aggregate t ~case ~heuristic =
  let rs = select t ~case ~heuristic in
  let ok = List.filter_map (fun r -> Option.map (fun b -> (r, b)) r.best) rs in
  let n_scenarios = List.length rs in
  let n_failed = n_scenarios - List.length ok in
  if ok = [] then
    {
      n_scenarios;
      n_failed;
      mean_t100 = Float.nan;
      mean_t100_over_ub = Float.nan;
      mean_wall_seconds = Float.nan;
      mean_t100_per_second = Float.nan;
    }
  else begin
    let mean f =
      List.fold_left (fun acc x -> acc +. f x) 0. ok /. float_of_int (List.length ok)
    in
    {
      n_scenarios;
      n_failed;
      mean_t100 = mean (fun (_, b) -> float_of_int b.Weight_search.t100);
      mean_t100_over_ub =
        mean (fun (r, b) ->
            float_of_int b.Weight_search.t100 /. float_of_int (max 1 r.upper_bound));
      mean_wall_seconds = mean (fun (_, b) -> b.Weight_search.wall_seconds);
      mean_t100_per_second =
        mean (fun (_, b) ->
            float_of_int b.Weight_search.t100
            /. Float.max 1e-9 b.Weight_search.wall_seconds);
    }
  end

(* Optimal-weight statistics for Figure 3: avg/min/max alpha and beta over
   scenarios with a feasible best. *)
type weight_stats = {
  n : int;
  alpha_mean : float;
  alpha_min : float;
  alpha_max : float;
  beta_mean : float;
  beta_min : float;
  beta_max : float;
}

let weight_stats t ~case ~heuristic =
  let open Agrid_core in
  let ws =
    List.filter_map
      (fun r ->
        Option.map
          (fun b -> (b.Weight_search.weights.Objective.alpha, b.Weight_search.weights.Objective.beta))
          r.best)
      (select t ~case ~heuristic)
  in
  match ws with
  | [] -> None
  | _ ->
      let alphas = Array.of_list (List.map fst ws) in
      let betas = Array.of_list (List.map snd ws) in
      let open Agrid_stats.Descriptive in
      Some
        {
          n = List.length ws;
          alpha_mean = mean alphas;
          alpha_min = min alphas;
          alpha_max = max alphas;
          beta_mean = mean betas;
          beta_min = min betas;
          beta_max = max betas;
        }
