lib/exper/experiments.mli: Agrid_core Agrid_report Config Evaluation Series Table
