lib/exper/evaluation.ml: Agrid_core Agrid_etc Agrid_par Agrid_platform Agrid_stats Agrid_tuner Agrid_workload Array Atomic Config Float Grid List Objective Option Spec Weight_search Workload
