lib/exper/config.mli: Agrid_workload Format Spec
