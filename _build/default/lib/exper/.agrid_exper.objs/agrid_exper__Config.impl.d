lib/exper/config.ml: Agrid_workload Fmt Fun List Spec
