lib/exper/evaluation.mli: Agrid_platform Agrid_tuner Config Grid Weight_search
