(** Experiment-suite configuration: workload spec, scenario counts, SLRH
    knobs and weight-search resolution. [default] is the proportionally
    scaled study; [full] the paper's |T| = 1024, 10 x 10 scenarios. *)

open Agrid_workload

type t = {
  spec : Spec.t;
  n_etcs : int;
  n_dags : int;
  delta_t : int;
  horizon : int;
  coarse_step : float;
  fine_step : float;
  fine_radius : float;
  domains : int option;
}

val default : ?seed:int -> unit -> t
(** |T| = 128, 3 ETCs x 3 DAGs. *)

val full : ?seed:int -> unit -> t
(** Paper scale: |T| = 1024, 10 x 10 scenarios. *)

val smoke : ?seed:int -> unit -> t
(** CI-sized: |T| = 48, 2 x 1 scenarios, coarse search. *)

val scenarios : t -> (int * int) list
(** All (etc_index, dag_index) pairs. *)

val pp : Format.formatter -> t -> unit
