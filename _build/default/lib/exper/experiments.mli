(** One function per paper table/figure (the per-experiment index lives in
    DESIGN.md section 4). Tables 1-2 are constants, Tables 3-4 derive from
    generated ETCs, Figure 2 is a delta-T sweep, Figures 3-7 project the
    shared {!Evaluation} sweep. *)

open Agrid_report

val table1 : unit -> Table.t
val table2 : unit -> Table.t
val table3 : Config.t -> Table.t
val table4 : Config.t -> Table.t

val figure2 :
  ?weights:Agrid_core.Objective.weights -> ?values:int list -> Config.t -> Series.t

val figure3 : Evaluation.t -> Table.t
val figure4 : Evaluation.t -> Series.t
val figure5 : Evaluation.t -> Series.t
val figure6 : Evaluation.t -> Series.t
val figure7 : Evaluation.t -> Series.t

val extension_loss_sweep :
  ?weights:Agrid_core.Objective.weights ->
  ?fractions:float list ->
  Config.t ->
  Series.t
(** Extension study: final T100 vs the loss instant of a slow/fast machine
    out of Case A (the dynamic transition Cases B/C bracket). *)

val slrh2_failure_rate : Config.t -> int * int
(** [(feasible, total)] over a coarse weight grid x Case A scenarios — the
    paper's reason for dropping SLRH-2. *)
