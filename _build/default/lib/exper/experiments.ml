(* One function per paper table/figure, each returning a renderable
   Table/Series (the per-experiment index lives in DESIGN.md section 4).
   Tables 1-2 are static constants; Tables 3-4 derive from the generated
   ETC matrices; Figure 2 is a delta_t sweep; Figures 3-7 are projections
   of the shared Evaluation sweep. *)

open Agrid_platform
open Agrid_workload
open Agrid_report

let f2 v = Fmt.str "%.2f" v
let f3 v = Fmt.str "%.3f" v

(* ---- Table 1: simulation configurations ---- *)

let table1 () =
  let row case =
    let g = Grid.of_case case in
    [
      Grid.case_name case;
      string_of_int (Grid.count_klass g Machine.Fast);
      string_of_int (Grid.count_klass g Machine.Slow);
    ]
  in
  Table.make ~title:"Table 1. Simulation configurations"
    ~columns:[ "Configuration"; "# \"Fast\" Machines"; "# \"Slow\" Machines" ]
    ~rows:(List.map row Grid.all_cases)

(* ---- Table 2: machine parameters ---- *)

let table2 () =
  let f = Machine.fast_profile and s = Machine.slow_profile in
  Table.make ~title:"Table 2. B(j), C(j), E(j), BW(j) for fast and slow machines"
    ~columns:[ ""; "\"Fast\" Machines"; "\"Slow\" Machines" ]
    ~rows:
      [
        [ "B(j)"; Fmt.str "%g energy units" f.Machine.battery;
          Fmt.str "%g energy units" s.Machine.battery ];
        [ "C(j)"; Fmt.str "%g energy units/sec" f.Machine.transmit_rate;
          Fmt.str "%g energy units/sec" s.Machine.transmit_rate ];
        [ "E(j)"; Fmt.str "%g energy units/sec" f.Machine.compute_rate;
          Fmt.str "%g energy units/sec" s.Machine.compute_rate ];
        [ "BW(j)"; Fmt.str "%g megabits/sec" (f.Machine.bandwidth /. 1e6);
          Fmt.str "%g megabits/sec" (s.Machine.bandwidth /. 1e6) ];
      ]

(* ---- Table 3: average minimum relative speed ---- *)

(* Per case: mean (std) of MR(j) for each non-reference machine across the
   configured ETC matrices. Machine 0 is the reference (MR = 1). *)
let table3 (config : Config.t) =
  let case_stats case =
    let columns = Agrid_etc.Etc.case_columns case in
    let per_etc =
      Array.init config.Config.n_etcs (fun etc_index ->
          let etc =
            Agrid_etc.Etc.for_case (Workload.etc_for_spec config.Config.spec ~etc_index) case
          in
          Agrid_core.Upper_bound.min_ratios etc)
    in
    (* machine labels from the Case A column identity *)
    List.filteri
      (fun j _ -> j > 0)
      (Array.to_list
         (Array.mapi
            (fun j col ->
              let label =
                match col with
                | 1 -> "\"Fast\" Machine 1"
                | 2 -> "\"Slow\" Machine 1"
                | 3 -> "\"Slow\" Machine 2"
                | _ -> Fmt.str "Machine %d" col
              in
              let vals = Array.map (fun mr -> mr.(j)) per_etc in
              (label, Agrid_stats.Descriptive.mean vals, Agrid_stats.Descriptive.stddev vals))
            columns))
  in
  let labels =
    [ "\"Fast\" Machine 1"; "\"Slow\" Machine 1"; "\"Slow\" Machine 2" ]
  in
  let row case =
    let stats = case_stats case in
    Grid.case_name case
    :: List.map
         (fun label ->
           match List.find_opt (fun (l, _, _) -> l = label) stats with
           | Some (_, mean, std) -> Fmt.str "%s (%s)" (f2 mean) (f2 std)
           | None -> "-")
         labels
  in
  Table.make ~title:"Table 3. Average minimum relative speed (mean (std) across ETCs)"
    ~columns:("Case" :: labels)
    ~rows:(List.map row Grid.all_cases)

(* ---- Table 4: upper bound per ETC per case ---- *)

let table4 (config : Config.t) =
  let bound case etc_index = Evaluation.upper_bound_for config ~case ~etc_index in
  let rows =
    List.init config.Config.n_etcs (fun etc_index ->
        string_of_int etc_index
        :: List.map (fun case -> string_of_int (bound case etc_index)) Grid.all_cases)
  in
  Table.make
    ~title:
      (Fmt.str "Table 4. Upper bound on T100 (|T| = %d)" config.Config.spec.Spec.n_tasks)
    ~columns:
      [
        "ETC";
        "Case A (2 fast, 2 slow)";
        "Case B (2 fast, 1 slow)";
        "Case C (1 fast, 2 slow)";
      ]
    ~rows

(* ---- Figure 2: impact of delta_t on SLRH-1 ---- *)

(* T100 and heuristic execution time vs delta_t, SLRH-1, ETC 0, two DAGs,
   Case A (fixed weights; the paper ran this sweep before the weight
   study). *)
let figure2 ?(weights = Agrid_core.Objective.make_weights ~alpha:0.3 ~beta:0.3)
    ?(values = Agrid_tuner.Sweep.figure2_delta_t_values) (config : Config.t) =
  let sweep dag_index =
    let workload =
      Workload.build config.Config.spec ~etc_index:0 ~dag_index ~case:Grid.A
    in
    Agrid_tuner.Sweep.delta_t ~horizon:config.Config.horizon ~weights ~values workload
  in
  let s0 = sweep 0 and s1 = sweep 1 in
  let t100 pts = List.map (fun p -> Some (float_of_int p.Agrid_tuner.Sweep.t100)) pts in
  let wall pts = List.map (fun p -> Some p.Agrid_tuner.Sweep.wall_seconds) pts in
  Series.make
    ~title:"Figure 2. Impact of delta-T on SLRH-1 (ETC 0, Case A)"
    ~x_label:"delta_t (cycles)"
    ~xs:(List.map string_of_int values)
    ~series:
      [
        ("T100 (DAG 0)", t100 s0);
        ("T100 (DAG 1)", t100 s1);
        ("exec time s (DAG 0)", wall s0);
        ("exec time s (DAG 1)", wall s1);
      ]

(* ---- Figure 3: optimal weight ranges ---- *)

let figure3 (ev : Evaluation.t) =
  let heuristics = [ Evaluation.Slrh1; Evaluation.Maxmax ] in
  let rows =
    List.concat_map
      (fun heuristic ->
        List.map
          (fun case ->
            match Evaluation.weight_stats ev ~case ~heuristic with
            | None ->
                [ Evaluation.heuristic_name heuristic; Grid.case_name case;
                  "-"; "-"; "-"; "-"; "-"; "-" ]
            | Some s ->
                [
                  Evaluation.heuristic_name heuristic;
                  Grid.case_name case;
                  f3 s.Evaluation.alpha_mean;
                  f3 s.Evaluation.alpha_min;
                  f3 s.Evaluation.alpha_max;
                  f3 s.Evaluation.beta_mean;
                  f3 s.Evaluation.beta_min;
                  f3 s.Evaluation.beta_max;
                ])
          Grid.all_cases)
      heuristics
  in
  Table.make
    ~title:
      "Figure 3. Optimal objective-function weights per case (avg/min/max across scenarios)"
    ~columns:
      [ "Heuristic"; "Case"; "a mean"; "a min"; "a max"; "b mean"; "b min"; "b max" ]
    ~rows

(* ---- Figures 4-7: per-case heuristic comparisons ---- *)

let comparison_series (ev : Evaluation.t) ~title ~metric =
  let xs = List.map Grid.case_name Grid.all_cases in
  let series =
    List.map
      (fun heuristic ->
        ( Evaluation.heuristic_name heuristic,
          List.map
            (fun case ->
              let a = Evaluation.aggregate ev ~case ~heuristic in
              let v = metric a in
              if Float.is_nan v then None else Some v)
            Grid.all_cases ))
      Evaluation.all_heuristics
  in
  Series.make ~title ~x_label:"Configuration" ~xs ~series

let figure4 ev =
  comparison_series ev
    ~title:"Figure 4. Heuristic performance: mean number of primary versions mapped (T100)"
    ~metric:(fun a -> a.Evaluation.mean_t100)

let figure5 ev =
  comparison_series ev
    ~title:"Figure 5. Heuristic performance vs calculated upper bound (mean T100 / UB)"
    ~metric:(fun a -> a.Evaluation.mean_t100_over_ub)

let figure6 ev =
  comparison_series ev
    ~title:"Figure 6. Mean heuristic execution time at optimal weights (seconds)"
    ~metric:(fun a -> a.Evaluation.mean_wall_seconds)

let figure7 ev =
  comparison_series ev
    ~title:"Figure 7. Performance per unit execution time (mean T100 / second)"
    ~metric:(fun a -> a.Evaluation.mean_t100_per_second)

(* ---- Extension study: machine loss mid-run ---- *)

(* Final T100 as a function of the loss instant, for losing a slow or a
   fast machine out of Case A — the dynamic transition the paper's static
   Cases B and C bracket. One series per lost machine class. *)
let extension_loss_sweep ?(weights = Agrid_core.Objective.make_weights ~alpha:0.4 ~beta:0.3)
    ?(fractions = [ 0.0; 0.1; 0.25; 0.5; 0.75 ]) (config : Config.t) =
  let workload = Workload.build config.Config.spec ~etc_index:0 ~dag_index:0 ~case:Grid.A in
  let params =
    {
      (Agrid_core.Slrh.default_params weights) with
      Agrid_core.Slrh.delta_t = config.Config.delta_t;
      horizon = config.Config.horizon;
    }
  in
  let tau = Workload.tau workload in
  let sweep machine =
    List.map
      (fun fraction ->
        let at = int_of_float (float_of_int tau *. fraction) in
        let o = Agrid_core.Dynamic.run_with_loss params workload { Agrid_core.Dynamic.at; machine } in
        Some (float_of_int (Agrid_sched.Schedule.n_primary o.Agrid_core.Dynamic.schedule)))
      fractions
  in
  Series.make
    ~title:"Extension: final T100 vs machine-loss instant (Case A, fixed weights)"
    ~x_label:"loss at (fraction of tau)"
    ~xs:(List.map (Fmt.str "%.2f") fractions)
    ~series:[ ("lose slow machine 3", sweep 3); ("lose fast machine 1", sweep 1) ]

(* ---- SLRH-2 failure-rate check (paper: "rarely produced a successful
   mapping ... regardless of the choice of alpha and beta") ---- *)

let slrh2_failure_rate (config : Config.t) =
  let points = Agrid_tuner.Weight_search.simplex_grid ~step:0.2 in
  let scenarios = Config.scenarios config in
  let total = ref 0 and feasible = ref 0 in
  List.iter
    (fun (etc_index, dag_index) ->
      let workload =
        Workload.build config.Config.spec ~etc_index ~dag_index ~case:Grid.A
      in
      List.iter
        (fun (alpha, beta) ->
          incr total;
          let r =
            Agrid_tuner.Weight_search.slrh_runner ~delta_t:config.Config.delta_t
              ~horizon:config.Config.horizon Agrid_core.Slrh.V2
              (Agrid_core.Objective.make_weights ~alpha ~beta)
              workload
          in
          if r.Agrid_tuner.Weight_search.feasible then incr feasible)
        points)
    scenarios;
  (!feasible, !total)
