lib/dag/metrics.mli: Dag Format
