lib/dag/metrics.ml: Array Dag Float Fmt List
