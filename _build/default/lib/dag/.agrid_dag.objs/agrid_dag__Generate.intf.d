lib/dag/generate.mli: Agrid_prng Dag
