lib/dag/dot.ml: Dag Fmt
