lib/dag/dot.mli: Dag Format
