lib/dag/generate.ml: Agrid_prng Array Dag Dist Float Hashtbl Splitmix64
