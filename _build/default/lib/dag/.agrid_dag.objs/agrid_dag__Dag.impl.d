lib/dag/dag.ml: Array Fmt Fun List Queue
