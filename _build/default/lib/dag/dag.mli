(** Immutable DAG of subtask dependencies.

    Tasks are integers [0, n); every edge [(src, dst)] has a stable edge id
    so per-edge payloads (the paper's global data items [g(i,j)]) can be
    stored in plain arrays alongside the structure. *)

type t

exception Cycle of int list
(** Raised by {!of_edges} when the edge list is cyclic, carrying the nodes
    still locked in cycles. *)

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list (duplicates collapsed).
    @raise Invalid_argument on out-of-range endpoints or self edges.
    @raise Cycle if the edges are not acyclic. *)

val n_tasks : t -> int
val n_edges : t -> int

val edges : t -> (int * int) array
(** All edges, lexicographically sorted; index = edge id. *)

val edge : t -> int -> int * int
(** [(src, dst)] of an edge id. *)

val parents : t -> int -> int array
val children : t -> int -> int array

val parent_edges : t -> int -> (int * int) array
(** Per task: [(parent, edge_id)] pairs, sorted by parent. *)

val child_edges : t -> int -> (int * int) array
(** Per task: [(child, edge_id)] pairs, sorted by child. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int
val is_edge : t -> src:int -> dst:int -> bool
val iter_edges : (int -> src:int -> dst:int -> unit) -> t -> unit

val topological_order : t -> int array
(** Kahn order; deterministic for a given structure. *)

val roots : t -> int list
val leaves : t -> int list

val levels : t -> int array
(** Longest-path level of each task (roots at level 0). *)

val depth : t -> int
(** Number of levels, i.e. longest path node count; 0 for the empty DAG. *)

val pp : Format.formatter -> t -> unit
