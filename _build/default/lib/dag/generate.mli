(** Layered random DAG generation ([ShC04]-style; see DESIGN.md section 3 for
    the substitution rationale) and per-edge data-item sizing. *)

type params = {
  n : int;  (** number of subtasks *)
  n_levels : int;  (** target number of levels (>= 1) *)
  max_parents : int;  (** max in-degree of non-root tasks (>= 1) *)
  prev_level_bias : float;
      (** probability each parent is drawn from the immediately preceding
          level rather than any earlier one *)
}

val default_params : n:int -> params
(** [sqrt n] levels, max 3 parents, 0.8 previous-level bias. *)

val generate : ?params_check:bool -> Agrid_prng.Splitmix64.t -> params -> Dag.t
(** Generate a DAG; task ids are assigned in level order, hence already
    topologically sorted. Every non-level-0 task has at least one parent. *)

val data_sizes :
  Agrid_prng.Splitmix64.t -> Dag.t -> mean_bits:float -> cv:float -> float array
(** Gamma-distributed global data item size (bits) for each edge id. *)
