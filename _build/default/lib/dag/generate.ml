(* Layered random DAG generation in the style of the [ShC04] companion paper
   (Shivle et al., "Static mapping of subtasks in a heterogeneous ad hoc grid
   environment", HCW 2004): subtasks are partitioned into levels and each
   non-root subtask draws its parents from earlier levels with a bias toward
   the immediately preceding level, which yields the mostly-forward,
   communication-dominated structures that paper describes. The exact
   generator is not public; DESIGN.md section 3 records the substitution. *)

open Agrid_prng

type params = {
  n : int;  (** number of subtasks *)
  n_levels : int;  (** target number of levels (>= 1) *)
  max_parents : int;  (** max in-degree for non-root tasks (>= 1) *)
  prev_level_bias : float;  (** probability a parent comes from level-1 *)
}

let default_params ~n =
  {
    n;
    n_levels = max 1 (int_of_float (Float.round (sqrt (float_of_int n))));
    max_parents = 3;
    prev_level_bias = 0.8;
  }

let validate_params p =
  if p.n <= 0 then invalid_arg "Generate: n must be positive";
  if p.n_levels <= 0 || p.n_levels > p.n then
    invalid_arg "Generate: n_levels must be in [1, n]";
  if p.max_parents < 1 then invalid_arg "Generate: max_parents must be >= 1";
  if p.prev_level_bias < 0. || p.prev_level_bias > 1. then
    invalid_arg "Generate: prev_level_bias outside [0,1]"

(* Partition [0, n) into [n_levels] contiguous, nonempty levels of random
   sizes. Returning contiguous index ranges means task ids are already in
   topological order, which downstream code relies on for readability of
   traces (it is not a correctness requirement). *)
let random_level_bounds rng ~n ~n_levels =
  (* one guaranteed slot per level, the rest multinomial-ish *)
  let sizes = Array.make n_levels 1 in
  for _ = 1 to n - n_levels do
    let l = Splitmix64.next_int rng n_levels in
    sizes.(l) <- sizes.(l) + 1
  done;
  let bounds = Array.make (n_levels + 1) 0 in
  for l = 0 to n_levels - 1 do
    bounds.(l + 1) <- bounds.(l) + sizes.(l)
  done;
  bounds

let generate ?(params_check = true) rng (p : params) =
  if params_check then validate_params p;
  if p.n_levels = 1 then Dag.of_edges ~n:p.n [] (* independent tasks *)
  else begin
    let bounds = random_level_bounds rng ~n:p.n ~n_levels:p.n_levels in
    let level_of = Array.make p.n 0 in
    for l = 0 to p.n_levels - 1 do
      for i = bounds.(l) to bounds.(l + 1) - 1 do
        level_of.(i) <- l
      done
    done;
    let edges = ref [] in
    for i = bounds.(1) to p.n - 1 do
      let l = level_of.(i) in
      let n_parents = 1 + Splitmix64.next_int rng p.max_parents in
      let chosen = Hashtbl.create 8 in
      for _ = 1 to n_parents do
        let from_prev = Dist.bernoulli rng ~p:p.prev_level_bias in
        let lo, hi =
          if from_prev then (bounds.(l - 1), bounds.(l))
          else (0, bounds.(l)) (* any earlier level *)
        in
        let parent = lo + Splitmix64.next_int rng (hi - lo) in
        if not (Hashtbl.mem chosen parent) then begin
          Hashtbl.add chosen parent ();
          edges := (parent, i) :: !edges
        end
      done
    done;
    Dag.of_edges ~n:p.n !edges
  end

(* Per-edge global data item sizes in bits, gamma distributed. The default
   mean (see Workload.Spec) is calibrated so communication energy stays a
   small fraction of compute energy, matching the paper's observation. *)
let data_sizes rng dag ~mean_bits ~cv =
  Array.init (Dag.n_edges dag) (fun _ -> Dist.gamma_mean_cv rng ~mean:mean_bits ~cv)
