(* Graphviz export, used by the CLI `dot` subcommand for eyeballing
   generated workloads. *)

let pp ?(name = "dag") ?label_task ?label_edge ppf dag =
  Fmt.pf ppf "digraph %s {@." name;
  Fmt.pf ppf "  rankdir=TB;@.  node [shape=circle, fontsize=10];@.";
  for i = 0 to Dag.n_tasks dag - 1 do
    match label_task with
    | None -> Fmt.pf ppf "  t%d;@." i
    | Some f -> Fmt.pf ppf "  t%d [label=%S];@." i (f i)
  done;
  Dag.iter_edges
    (fun e ~src ~dst ->
      match label_edge with
      | None -> Fmt.pf ppf "  t%d -> t%d;@." src dst
      | Some f -> Fmt.pf ppf "  t%d -> t%d [label=%S];@." src dst (f e))
    dag;
  Fmt.pf ppf "}@."

let to_string ?name ?label_task ?label_edge dag =
  Fmt.str "%a" (pp ?name ?label_task ?label_edge) dag
