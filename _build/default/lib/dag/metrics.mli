(** Structural metrics of a DAG (workload reports and test invariants). *)

type t = {
  n_tasks : int;
  n_edges : int;
  depth : int;
  max_width : int;
  n_roots : int;
  n_leaves : int;
  mean_in_degree : float;
  max_in_degree : int;
  mean_out_degree : float;
  max_out_degree : int;
}

val width_per_level : Dag.t -> int array
val compute : Dag.t -> t

val critical_path : Dag.t -> weight:(int -> float) -> float
(** Longest node-weighted path; lower bound on makespan at that speed. *)

val pp : Format.formatter -> t -> unit
