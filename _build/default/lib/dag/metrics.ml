(* Structural metrics used in workload reports and as qcheck invariants. *)

type t = {
  n_tasks : int;
  n_edges : int;
  depth : int;
  max_width : int;
  n_roots : int;
  n_leaves : int;
  mean_in_degree : float;
  max_in_degree : int;
  mean_out_degree : float;
  max_out_degree : int;
}

let width_per_level dag =
  let levels = Dag.levels dag in
  let depth = Dag.depth dag in
  let widths = Array.make (max 1 depth) 0 in
  Array.iter (fun l -> widths.(l) <- widths.(l) + 1) levels;
  widths

let compute dag =
  let n = Dag.n_tasks dag in
  let in_degrees = Array.init n (Dag.in_degree dag) in
  let out_degrees = Array.init n (Dag.out_degree dag) in
  let sum = Array.fold_left ( + ) 0 in
  let fmean xs = if n = 0 then 0. else float_of_int (sum xs) /. float_of_int n in
  {
    n_tasks = n;
    n_edges = Dag.n_edges dag;
    depth = Dag.depth dag;
    max_width = Array.fold_left max 0 (width_per_level dag);
    n_roots = List.length (Dag.roots dag);
    n_leaves = List.length (Dag.leaves dag);
    mean_in_degree = fmean in_degrees;
    max_in_degree = Array.fold_left max 0 in_degrees;
    mean_out_degree = fmean out_degrees;
    max_out_degree = Array.fold_left max 0 out_degrees;
  }

(* Longest path through the DAG where each task contributes [weight i]; this
   is the critical-path lower bound on makespan for a given machine speed. *)
let critical_path dag ~weight =
  let order = Dag.topological_order dag in
  let n = Dag.n_tasks dag in
  let finish = Array.make n 0. in
  let best = ref 0. in
  Array.iter
    (fun i ->
      let ready =
        Array.fold_left
          (fun acc (p, _) -> Float.max acc finish.(p))
          0. (Dag.parent_edges dag i)
      in
      finish.(i) <- ready +. weight i;
      if finish.(i) > !best then best := finish.(i))
    order;
  !best

let pp ppf m =
  Fmt.pf ppf
    "tasks=%d edges=%d depth=%d width=%d roots=%d leaves=%d in(mean=%.2f \
     max=%d) out(mean=%.2f max=%d)"
    m.n_tasks m.n_edges m.depth m.max_width m.n_roots m.n_leaves
    m.mean_in_degree m.max_in_degree m.mean_out_degree m.max_out_degree
